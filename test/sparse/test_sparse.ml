(* Tests for the sparse-matrix substrate: formats, sparse LU, graphs. *)

open Sparse

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* COO / CSR *)

let test_coo_duplicates_sum () =
  let c = Coo.create ~rows:2 ~cols:2 in
  Coo.add c 0 0 1.5;
  Coo.add c 0 0 2.5;
  Coo.add c 1 0 (-1.);
  let m = Csr.of_coo c in
  check_float "summed" 4. (Csr.get m 0 0);
  check_float "single" (-1.) (Csr.get m 1 0);
  check_float "absent" 0. (Csr.get m 1 1);
  Alcotest.(check int) "nnz" 2 (Csr.nnz m)

let test_coo_bounds () =
  let c = Coo.create ~rows:2 ~cols:2 in
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Coo.add: index out of bounds") (fun () ->
      Coo.add c 2 0 1.)

let test_csr_cancellation_dropped () =
  let c = Coo.create ~rows:1 ~cols:1 in
  Coo.add c 0 0 3.;
  Coo.add c 0 0 (-3.);
  let m = Csr.of_coo c in
  Alcotest.(check int) "cancelled entry dropped" 0 (Csr.nnz m)

let test_csr_matvec () =
  let d =
    Linalg.Matrix.of_rows [ [ 1.; 0.; 2. ]; [ 0.; 3.; 0. ]; [ 4.; 0.; 5. ] ]
  in
  let m = Csr.of_dense d in
  Alcotest.(check int) "nnz" 5 (Csr.nnz m);
  let x = [| 1.; 2.; 3. |] in
  Alcotest.(check bool) "matvec" true
    (Linalg.Vec.approx_equal (Linalg.Matrix.mul_vec d x) (Csr.mul_vec m x));
  Alcotest.(check bool) "transpose matvec" true
    (Linalg.Vec.approx_equal
       (Linalg.Matrix.mul_vec (Linalg.Matrix.transpose d) x)
       (Csr.mul_vec_transpose m x))

let test_csr_roundtrip_dense () =
  let d = Linalg.Matrix.of_rows [ [ 0.; 1. ]; [ 2.; 0. ] ] in
  Alcotest.(check bool) "round trip" true
    (Linalg.Matrix.approx_equal d (Csr.to_dense (Csr.of_dense d)))

let test_csr_transpose () =
  let d = Linalg.Matrix.of_rows [ [ 1.; 2. ]; [ 0.; 3. ]; [ 4.; 0. ] ] in
  let t = Csr.transpose (Csr.of_dense d) in
  Alcotest.(check bool) "transpose" true
    (Linalg.Matrix.approx_equal (Linalg.Matrix.transpose d) (Csr.to_dense t))

let test_csr_get_bounds () =
  let m = Csr.of_dense (Linalg.Matrix.identity 2) in
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Csr.get: index out of bounds") (fun () ->
      ignore (Csr.get m 2 0))

let test_csr_permute () =
  let d = Linalg.Matrix.of_rows [ [ 1.; 2. ]; [ 3.; 4. ] ] in
  let p = Csr.permute (Csr.of_dense d) ~rows:[| 1; 0 |] ~cols:[| 1; 0 |] in
  Alcotest.(check bool) "symmetric permutation" true
    (Linalg.Matrix.approx_equal
       (Linalg.Matrix.of_rows [ [ 4.; 3. ]; [ 2.; 1. ] ])
       (Csr.to_dense p))

(* ------------------------------------------------------------------ *)
(* Sparse LU *)

let rand_state = Random.State.make [| 0xfeed |]

let random_sparse_dd n density =
  (* random sparse, diagonally dominant: always factorable *)
  let d = Linalg.Matrix.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && Random.State.float rand_state 1. < density then
        Linalg.Matrix.set d i j (Random.State.float rand_state 2. -. 1.)
    done
  done;
  for i = 0 to n - 1 do
    let rowsum =
      Array.fold_left (fun s v -> s +. Float.abs v) 0. d.(i)
    in
    Linalg.Matrix.set d i i (rowsum +. 1.)
  done;
  d

let test_slu_known () =
  let d = Linalg.Matrix.of_rows [ [ 4.; 1. ]; [ 2.; 5. ] ] in
  let x = Slu.solve_system (Csr.of_dense d) [| 6.; 12. |] in
  Alcotest.(check bool) "solution" true
    (Linalg.Vec.approx_equal ~tol:1e-12 [| 1.; 2. |] x)

let test_slu_permutation_matrix () =
  (* pure permutation exercises pivoting with no arithmetic *)
  let d =
    Linalg.Matrix.of_rows [ [ 0.; 0.; 1. ]; [ 1.; 0.; 0. ]; [ 0.; 1.; 0. ] ]
  in
  let x = Slu.solve_system (Csr.of_dense d) [| 1.; 2.; 3. |] in
  Alcotest.(check bool) "permuted" true
    (Linalg.Vec.approx_equal [| 2.; 3.; 1. |] x)

let test_slu_singular () =
  let d = Linalg.Matrix.of_rows [ [ 1.; 2. ]; [ 2.; 4. ] ] in
  (match Slu.factor (Csr.of_dense d) with
  | _ -> Alcotest.fail "expected Singular"
  | exception Slu.Singular _ -> ())

let test_slu_structurally_singular () =
  let d = Linalg.Matrix.of_rows [ [ 1.; 0. ]; [ 2.; 0. ] ] in
  (match Slu.factor (Csr.of_dense d) with
  | _ -> Alcotest.fail "expected Singular"
  | exception Slu.Singular _ -> ())

(* symbolic/numeric split: the cache's correctness contract is that
   routing a matrix through a shared pattern analysis changes nothing
   — factors, and therefore solves, are bit-identical *)

let test_slu_refactor_matches_factor () =
  for n = 3 to 8 do
    let a = Csr.of_dense (random_sparse_dd n 0.4) in
    let s = Slu.symbolic a in
    let b = Array.init n (fun i -> float_of_int (i + 1)) in
    Alcotest.(check bool)
      (Printf.sprintf "n=%d bit-identical solves" n)
      true
      (Slu.solve (Slu.factor a) b = Slu.solve (Slu.refactor s a) b)
  done

let test_slu_symbolic_reuse_across_values () =
  (* many value sets, one pattern: refactor through one shared
     analysis vs a fresh factorization per matrix *)
  let d = random_sparse_dd 9 0.35 in
  let a = Csr.of_dense d in
  let s = Slu.symbolic a in
  Alcotest.(check bool) "same pattern -> interchangeable analyses" true
    (Slu.same_analysis s (Slu.symbolic a));
  let n = Linalg.Matrix.rows d in
  let b = Array.init n (fun i -> 1. /. float_of_int (i + 2)) in
  List.iter
    (fun scale ->
      let d' = Array.map (Array.map (fun v -> v *. scale)) d in
      let a' = Csr.of_dense d' in
      Alcotest.(check bool) "scaled matrix keeps the pattern" true
        (Slu.pattern_matches s a');
      Alcotest.(check bool)
        (Printf.sprintf "scale %g bit-identical" scale)
        true
        (Slu.solve (Slu.refactor s a') b = Slu.solve (Slu.factor a') b))
    [ 2.; 0.5; 1e3 ]

let test_slu_refactor_rejects_mismatch () =
  let a = Csr.of_dense (Linalg.Matrix.of_rows [ [ 4.; 1. ]; [ 2.; 5. ] ]) in
  let s = Slu.symbolic a in
  let b = Csr.of_dense (Linalg.Matrix.of_rows [ [ 4.; 0. ]; [ 2.; 5. ] ]) in
  Alcotest.(check bool) "pattern_matches detects the difference" false
    (Slu.pattern_matches s b);
  Alcotest.(check bool) "analyses of different patterns differ" false
    (Slu.same_analysis s (Slu.symbolic b));
  match Slu.refactor s b with
  | _ -> Alcotest.fail "mismatched refactor accepted"
  | exception Invalid_argument msg ->
    (* the diagnostic must name the first mismatching column *)
    let contains s sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "message locates the mismatch (%s)" msg)
      true
      (contains msg "column 1" && contains msg "row 0")

let test_slu_fill_reported () =
  let d = random_sparse_dd 20 0.15 in
  let f = Slu.factor (Csr.of_dense d) in
  Alcotest.(check bool) "fill at least diagonal" true
    (Slu.nnz_factors f >= 20)

let prop_slu_matches_dense =
  QCheck2.Test.make ~name:"sparse LU agrees with dense LU" ~count:100
    QCheck2.Gen.(pair (int_range 1 25) (float_range 0.05 0.5))
    (fun (n, density) ->
      let d = random_sparse_dd n density in
      let b =
        Array.init n (fun _ -> Random.State.float rand_state 2. -. 1.)
      in
      let dense = Linalg.Lu.solve_system d b in
      let sparse = Slu.solve_system (Csr.of_dense d) b in
      Linalg.Vec.dist_inf dense sparse
      <= 1e-8 *. Float.max 1. (Linalg.Vec.norm_inf dense))

let prop_slu_residual =
  QCheck2.Test.make ~name:"sparse LU residual is small" ~count:100
    QCheck2.Gen.(int_range 2 40)
    (fun n ->
      let d = random_sparse_dd n 0.1 in
      let m = Csr.of_dense d in
      let x = Array.init n (fun i -> Float.of_int (i + 1)) in
      let b = Csr.mul_vec m x in
      let x' = Slu.solve_system m b in
      Linalg.Vec.dist_inf x x' <= 1e-8 *. Float.of_int n)

(* ------------------------------------------------------------------ *)
(* Graph *)

let test_graph_spanning_tree_path () =
  (* a 4-chain: 0 - 1 - 2 - 3 with labels 10, 11, 12 *)
  let g = Graph.create 4 in
  Graph.add_edge g 0 1 ~label:10;
  Graph.add_edge g 1 2 ~label:11;
  Graph.add_edge g 2 3 ~label:12;
  let forest = Graph.spanning_forest g in
  Alcotest.(check (list int)) "path from leaf" [ 12; 11; 10 ]
    (Graph.path_to_root forest 3);
  Alcotest.(check (list int)) "path from root" [] (Graph.path_to_root forest 0)

let test_graph_components () =
  let g = Graph.create 5 in
  Graph.add_edge g 0 1 ~label:0;
  Graph.add_edge g 3 4 ~label:1;
  Alcotest.(check int) "three components" 3 (Graph.component_count g);
  Alcotest.(check bool) "not connected" false (Graph.is_connected g);
  let comp = Graph.components g in
  Alcotest.(check bool) "0 and 1 together" true (comp.(0) = comp.(1));
  Alcotest.(check bool) "0 and 3 apart" true (comp.(0) <> comp.(3))

let test_graph_cycles () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1 ~label:0;
  Graph.add_edge g 1 2 ~label:1;
  Alcotest.(check bool) "tree has no cycle" false (Graph.has_cycle g);
  Graph.add_edge g 2 0 ~label:2;
  Alcotest.(check bool) "triangle has cycle" true (Graph.has_cycle g)

let test_graph_parallel_edges_cycle () =
  let g = Graph.create 2 in
  Graph.add_edge g 0 1 ~label:0;
  Graph.add_edge g 0 1 ~label:1;
  Alcotest.(check bool) "parallel edges form a cycle" true (Graph.has_cycle g)

let test_graph_self_loop_cycle () =
  let g = Graph.create 2 in
  Graph.add_edge g 1 1 ~label:7;
  Alcotest.(check bool) "self loop is a cycle" true (Graph.has_cycle g)

let test_graph_forest_covers_all () =
  let g = Graph.create 6 in
  Graph.add_edge g 0 1 ~label:0;
  Graph.add_edge g 1 2 ~label:1;
  Graph.add_edge g 2 0 ~label:2;
  (* second component *)
  Graph.add_edge g 4 5 ~label:3;
  let forest = Graph.spanning_forest g in
  let tree_edges =
    Array.to_list forest |> List.filter_map (fun e -> e)
  in
  (* n - components = 6 - 3 = 3 tree edges (vertex 3 is isolated) *)
  Alcotest.(check int) "tree edge count" 3 (List.length tree_edges)

let prop_forest_edge_count =
  QCheck2.Test.make
    ~name:"spanning forest has n - components edges" ~count:100
    QCheck2.Gen.(
      pair (int_range 1 30) (list_size (int_range 0 60) (pair nat nat)))
    (fun (n, raw_edges) ->
      let g = Graph.create n in
      List.iteri
        (fun i (a, b) -> Graph.add_edge g (a mod n) (b mod n) ~label:i)
        raw_edges;
      let forest = Graph.spanning_forest g in
      let tree_edges =
        Array.to_list forest |> List.filter_map (fun e -> e) |> List.length
      in
      tree_edges = n - Graph.component_count g)

(* ------------------------------------------------------------------ *)
(* structural rank via maximum bipartite matching *)

let test_matching_full_rank () =
  let m = Csr.of_dense (Linalg.Matrix.identity 4) in
  Alcotest.(check int) "identity rank" 4 (Matching.structural_rank m);
  Alcotest.(check bool) "identity regular" false
    (Matching.structurally_singular m);
  (* an antidiagonal pattern is a permutation: still full rank *)
  let anti =
    Linalg.Matrix.init 4 4 (fun i j -> if i + j = 3 then 1. else 0.)
  in
  Alcotest.(check int) "antidiagonal rank" 4
    (Matching.structural_rank (Csr.of_dense anti))

let test_matching_deficient () =
  (* two rows sharing their only column: rank 2, not 3 *)
  let d =
    Linalg.Matrix.of_rows
      [ [ 1.; 1.; 0. ]; [ 5.; 0.; 0. ]; [ 7.; 0.; 0. ] ]
  in
  let m = Csr.of_dense d in
  Alcotest.(check int) "collision rank" 2 (Matching.structural_rank m);
  Alcotest.(check bool) "collision singular" true
    (Matching.structurally_singular m);
  let r = Matching.max_matching m in
  Alcotest.(check int) "one unmatched row" 1
    (Array.fold_left (fun n c -> if c < 0 then n + 1 else n) 0 r.Matching.col_of_row);
  Alcotest.(check (list int)) "column 2 unmatched" [ 2 ]
    (Matching.unmatched_cols m)

let test_matching_zero_row () =
  let d = Linalg.Matrix.of_rows [ [ 1.; 0. ]; [ 0.; 0. ] ] in
  let m = Csr.of_dense d in
  Alcotest.(check int) "zero row rank" 1 (Matching.structural_rank m);
  Alcotest.(check (list int)) "row 1 unmatched" [ 1 ]
    (Matching.unmatched_rows m)

let test_matching_rectangular () =
  (* a non-square pattern is singular by definition even when the
     matching saturates the short side *)
  let d = Linalg.Matrix.of_rows [ [ 1.; 0.; 1. ]; [ 0.; 1.; 0. ] ] in
  let m = Csr.of_dense d in
  Alcotest.(check int) "wide rank" 2 (Matching.structural_rank m);
  Alcotest.(check bool) "wide singular" true
    (Matching.structurally_singular m)

(* note: a structurally singular matrix with random values need not
   make [Slu.factor] raise — the generically-zero pivot can surface as
   rounding noise instead of an exact zero (which is precisely why the
   lint layer runs this check instead of trusting the numeric verdict).
   So the property checked here is agreement with an independent
   reference implementation, plus validity of the matching itself. *)
let prop_matching_agrees_with_reference =
  QCheck2.Test.make
    ~name:"matching is valid and agrees with reference Kuhn" ~count:200
    QCheck2.Gen.(pair (int_range 1 20) (int_range 0 99))
    (fun (n, salt) ->
      let st = Random.State.make [| n; salt |] in
      let d =
        Linalg.Matrix.init n n (fun _ _ ->
            if Random.State.int st 100 < 30 then
              Random.State.float st 2. -. 1.
            else 0.)
      in
      let m = Csr.of_dense d in
      let r = Matching.max_matching m in
      (* reference: textbook Kuhn on adjacency lists *)
      let adj =
        Array.init n (fun i ->
            let acc = ref [] in
            Csr.row_iter m i (fun j _ -> acc := j :: !acc);
            List.rev !acc)
      in
      let roc = Array.make n (-1) in
      let rec aug i vis =
        List.exists
          (fun j ->
            if vis.(j) then false
            else begin
              vis.(j) <- true;
              if roc.(j) < 0 || aug roc.(j) vis then begin
                roc.(j) <- i;
                true
              end
              else false
            end)
          adj.(i)
      in
      let ref_size = ref 0 in
      for i = 0 to n - 1 do
        if aug i (Array.make n false) then incr ref_size
      done;
      (* sizes agree, and the matching is mutual and edge-supported *)
      r.Matching.size = !ref_size
      && Array.for_all
           (fun j -> j < 0 || r.Matching.row_of_col.(j) >= 0)
           r.Matching.col_of_row
      && (let ok = ref true and matched = ref 0 in
          Array.iteri
            (fun i j ->
              if j >= 0 then begin
                incr matched;
                if r.Matching.row_of_col.(j) <> i then ok := false;
                if Csr.get m i j = 0. then ok := false
              end)
            r.Matching.col_of_row;
          !ok && !matched = r.Matching.size))

(* ------------------------------------------------------------------ *)
(* minimum-degree ordering: the degree-bucket pivot pick against the
   naive linear-scan reference it replaced *)

module Iset = Set.Make (Int)

(* the former implementation, kept verbatim as the fill reference:
   scan all remaining vertices, lowest degree (lowest index on ties) *)
let naive_min_degree_order a =
  let n = Csr.rows a in
  let adj = Array.make n Iset.empty in
  for i = 0 to n - 1 do
    Csr.row_iter a i (fun j _ ->
        if i <> j then begin
          adj.(i) <- Iset.add j adj.(i);
          adj.(j) <- Iset.add i adj.(j)
        end)
  done;
  let eliminated = Array.make n false in
  let order = Array.make n 0 in
  for k = 0 to n - 1 do
    let best = ref (-1) and best_deg = ref max_int in
    for v = 0 to n - 1 do
      if not eliminated.(v) then begin
        let d = Iset.cardinal adj.(v) in
        if d < !best_deg then begin
          best_deg := d;
          best := v
        end
      end
    done;
    let v = !best in
    order.(k) <- v;
    eliminated.(v) <- true;
    let nbrs = Iset.filter (fun w -> not eliminated.(w)) adj.(v) in
    Iset.iter
      (fun w ->
        adj.(w) <- Iset.remove v adj.(w);
        adj.(w) <- Iset.union adj.(w) (Iset.remove w nbrs))
      nbrs
  done;
  order

(* diagonally dominant test matrices over classic graph shapes *)
let path_matrix n =
  let c = Coo.create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    Coo.add c i i 4.;
    if i + 1 < n then begin
      Coo.add c i (i + 1) (-1.);
      Coo.add c (i + 1) i (-1.)
    end
  done;
  Csr.of_coo c

let star_matrix n =
  let c = Coo.create ~rows:n ~cols:n in
  Coo.add c 0 0 (float_of_int n);
  for i = 1 to n - 1 do
    Coo.add c i i 4.;
    Coo.add c 0 i (-1.);
    Coo.add c i 0 (-1.)
  done;
  Csr.of_coo c

let grid_matrix k =
  (* k x k five-point stencil *)
  let n = k * k in
  let c = Coo.create ~rows:n ~cols:n in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      let v = (i * k) + j in
      Coo.add c v v 8.;
      let link w =
        Coo.add c v w (-1.);
        Coo.add c w v (-1.)
      in
      if j + 1 < k then link (v + 1);
      if i + 1 < k then link (v + k)
    done
  done;
  Csr.of_coo c

let is_permutation o =
  let n = Array.length o in
  let seen = Array.make n false in
  Array.for_all
    (fun v -> v >= 0 && v < n && not seen.(v) && (seen.(v) <- true; true))
    o

let test_min_degree_vs_naive () =
  List.iter
    (fun (name, a) ->
      let bucket = Slu.min_degree_order a in
      Alcotest.(check bool)
        (name ^ ": bucket order is a permutation")
        true (is_permutation bucket);
      let nnz_bucket = Slu.nnz_factors (Slu.factor ~order:bucket a) in
      let nnz_naive =
        Slu.nnz_factors (Slu.factor ~order:(naive_min_degree_order a) a)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: bucket fill %d <= naive fill %d" name nnz_bucket
           nnz_naive)
        true
        (nnz_bucket <= nnz_naive))
    [ ("path", path_matrix 30);
      ("star", star_matrix 30);
      ("grid", grid_matrix 7) ]

let test_factor_order_validation () =
  let a = path_matrix 4 in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Slu.symbolic: order is not a permutation of the columns")
    (fun () -> ignore (Slu.factor ~order:[| 0; 1 |] a))

let test_factor_explicit_order_solves () =
  (* any permutation must still solve the system exactly *)
  let n = 20 in
  let a = grid_matrix 4 in
  let x = Array.init 16 (fun i -> float_of_int (i + 1)) in
  let b = Csr.mul_vec a x in
  List.iter
    (fun (name, order) ->
      let x' = Slu.solve (Slu.factor ~order a) b in
      Alcotest.(check bool) (name ^ " order solves") true
        (Linalg.Vec.dist_inf x x' <= 1e-9))
    [ ("natural", Array.init 16 Fun.id);
      ("reversed", Array.init 16 (fun i -> 15 - i));
      ("min-degree", Slu.min_degree_order a) ];
  ignore n

let test_factor_repeatable () =
  (* the reused visit-stamp array must leave no state between calls:
     factoring the same matrix twice gives identical factors *)
  let a = grid_matrix 6 in
  let f1 = Slu.factor a and f2 = Slu.factor a in
  Alcotest.(check int) "same fill" (Slu.nnz_factors f1) (Slu.nnz_factors f2);
  let b = Array.init (Csr.rows a) (fun i -> Float.of_int (i - 7)) in
  Alcotest.(check bool) "bit-identical solves" true
    (Slu.solve f1 b = Slu.solve f2 b)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "sparse"
    [ ( "formats",
        [ Alcotest.test_case "duplicates sum" `Quick test_coo_duplicates_sum;
          Alcotest.test_case "bounds" `Quick test_coo_bounds;
          Alcotest.test_case "cancellation dropped" `Quick
            test_csr_cancellation_dropped;
          Alcotest.test_case "matvec" `Quick test_csr_matvec;
          Alcotest.test_case "dense round trip" `Quick
            test_csr_roundtrip_dense;
          Alcotest.test_case "transpose" `Quick test_csr_transpose;
          Alcotest.test_case "get bounds" `Quick test_csr_get_bounds;
          Alcotest.test_case "permute" `Quick test_csr_permute ] );
      ( "slu",
        [ Alcotest.test_case "known system" `Quick test_slu_known;
          Alcotest.test_case "permutation matrix" `Quick
            test_slu_permutation_matrix;
          Alcotest.test_case "singular" `Quick test_slu_singular;
          Alcotest.test_case "structurally singular" `Quick
            test_slu_structurally_singular;
          Alcotest.test_case "refactor = factor" `Quick
            test_slu_refactor_matches_factor;
          Alcotest.test_case "symbolic reuse across values" `Quick
            test_slu_symbolic_reuse_across_values;
          Alcotest.test_case "refactor rejects mismatched pattern" `Quick
            test_slu_refactor_rejects_mismatch;
          Alcotest.test_case "fill metric" `Quick test_slu_fill_reported;
          Alcotest.test_case "min-degree vs naive fill" `Quick
            test_min_degree_vs_naive;
          Alcotest.test_case "order validation" `Quick
            test_factor_order_validation;
          Alcotest.test_case "explicit orders solve" `Quick
            test_factor_explicit_order_solves;
          Alcotest.test_case "factor repeatable" `Quick
            test_factor_repeatable ]
        @ qsuite [ prop_slu_matches_dense; prop_slu_residual ] );
      ( "graph",
        [ Alcotest.test_case "spanning tree path" `Quick
            test_graph_spanning_tree_path;
          Alcotest.test_case "components" `Quick test_graph_components;
          Alcotest.test_case "cycles" `Quick test_graph_cycles;
          Alcotest.test_case "parallel edges" `Quick
            test_graph_parallel_edges_cycle;
          Alcotest.test_case "self loop" `Quick test_graph_self_loop_cycle;
          Alcotest.test_case "forest covers all" `Quick
            test_graph_forest_covers_all ]
        @ qsuite [ prop_forest_edge_count ] );
      ( "matching",
        [ Alcotest.test_case "full rank" `Quick test_matching_full_rank;
          Alcotest.test_case "deficient" `Quick test_matching_deficient;
          Alcotest.test_case "zero row" `Quick test_matching_zero_row;
          Alcotest.test_case "rectangular" `Quick test_matching_rectangular ]
        @ qsuite [ prop_matching_agrees_with_reference ] ) ]
