(* Tests for the AWE-based static timing analyzer. *)

let inv = Sta.cell ~name:"inv" ~drive_res:500. ~input_cap:20e-15 ~intrinsic:50e-12

let buf = Sta.cell ~name:"buf" ~drive_res:200. ~input_cap:40e-15 ~intrinsic:80e-12

let seg ~from_ ~to_ ~r ~c =
  { Sta.seg_from = from_; seg_to = to_; res = r; cap = c }

(* a two-stage chain: PI -> net_in -> u1(inv) -> net_mid -> u2(buf)
   -> net_out -> u3(inv, acts as load/PO) *)
let chain ?(in_slew = 0.) () =
  let d = Sta.create ~vdd:5. ~threshold:0.5 () in
  Sta.add_gate d ~inst:"u1" ~cell:inv ~inputs:[ "net_in" ] ~output:"net_mid";
  Sta.add_gate d ~inst:"u2" ~cell:buf ~inputs:[ "net_mid" ] ~output:"net_out";
  Sta.add_gate d ~inst:"u3" ~cell:inv ~inputs:[ "net_out" ] ~output:"net_po";
  Sta.add_net d ~name:"net_in" ~segments:[ seg ~from_:"drv" ~to_:"u1" ~r:100. ~c:30e-15 ];
  Sta.add_net d ~name:"net_mid"
    ~segments:
      [ seg ~from_:"drv" ~to_:"w1" ~r:200. ~c:50e-15;
        seg ~from_:"w1" ~to_:"u2" ~r:150. ~c:40e-15 ];
  Sta.add_net d ~name:"net_out" ~segments:[ seg ~from_:"drv" ~to_:"u3" ~r:300. ~c:60e-15 ];
  Sta.add_net d ~name:"net_po" ~segments:[ seg ~from_:"drv" ~to_:"end" ~r:10. ~c:1e-15 ];
  Sta.add_primary_input d ~net:"net_in" ~slew:in_slew ();
  Sta.add_primary_output d ~net:"net_out";
  d

let test_chain_arrival_monotone () =
  let d = chain () in
  let r = Sta.analyze d in
  let find net =
    List.find (fun nt -> nt.Sta.net_name = net) r.Sta.nets
  in
  let a_in = (List.hd (find "net_in").Sta.sinks).Sta.arrival in
  let a_mid = (List.hd (find "net_mid").Sta.sinks).Sta.arrival in
  let a_out = (List.hd (find "net_out").Sta.sinks).Sta.arrival in
  Alcotest.(check bool) "arrivals increase" true (a_in < a_mid && a_mid < a_out);
  Alcotest.(check bool) "positive critical" true (r.Sta.critical_arrival > 0.);
  Alcotest.(check bool) "critical >= out arrival" true
    (r.Sta.critical_arrival >= a_out -. 1e-15)

let test_chain_critical_path () =
  let d = chain () in
  let r = Sta.analyze d in
  Alcotest.(check (list string)) "path follows the chain"
    [ "net_in"; "net_mid"; "net_out" ] r.Sta.critical_path

let test_models_agree_roughly () =
  let d = chain () in
  let r_elmore = Sta.analyze ~model:Sta.Elmore_model d in
  let r_awe = Sta.analyze ~model:(Sta.Awe_model 3) d in
  let rel_diff =
    Float.abs (r_elmore.Sta.critical_arrival -. r_awe.Sta.critical_arrival)
    /. r_awe.Sta.critical_arrival
  in
  Alcotest.(check bool)
    (Printf.sprintf "elmore within 60%% of AWE (diff %.3f)" rel_diff)
    true (rel_diff < 0.6);
  (* on the step-driven first stage the Elmore 50% estimate
     (T_D ln 2) is pessimistic relative to the AWE crossing *)
  let first r = (List.hd (List.find (fun nt -> nt.Sta.net_name = "net_in") r.Sta.nets).Sta.sinks).Sta.net_delay in
  Alcotest.(check bool) "elmore pessimistic on the step stage" true
    (first r_elmore >= first r_awe)

let test_awe_delay_matches_simulation () =
  let d = chain () in
  (* the slew arriving at u1 is what net_mid is actually driven with *)
  let r0 = Sta.analyze ~model:(Sta.Awe_model 3) d in
  let in_net = List.find (fun nt -> nt.Sta.net_name = "net_in") r0.Sta.nets in
  let slew = (List.hd in_net.Sta.sinks).Sta.sink_slew in
  let circuit, sink_nodes =
    Sta.net_circuit d ~net:"net_mid" ~driver_res:inv.Sta.drive_res ~slew
  in
  let node = List.assoc "u2" sink_nodes in
  let sys = Circuit.Mna.build circuit in
  let res = Transim.Transient.simulate sys ~t_stop:5e-9 ~steps:5000 in
  let w = Transim.Transient.node_waveform res node in
  let sim_delay =
    match Waveform.crossing_time w 2.5 with
    | Some t -> t
    | None -> Alcotest.fail "no crossing in simulation"
  in
  let r = Sta.analyze ~model:(Sta.Awe_model 3) d in
  let nt = List.find (fun nt -> nt.Sta.net_name = "net_mid") r.Sta.nets in
  let awe_delay = (List.hd nt.Sta.sinks).Sta.net_delay in
  Alcotest.(check bool)
    (Printf.sprintf "delays match (awe %.4g sim %.4g)" awe_delay sim_delay)
    true
    (Float.abs (awe_delay -. sim_delay) < 0.03 *. sim_delay)

let test_fanout_net () =
  (* one driver, two sinks on different branches *)
  let d = Sta.create () in
  Sta.add_gate d ~inst:"u1" ~cell:buf ~inputs:[ "a" ] ~output:"y";
  Sta.add_gate d ~inst:"u2" ~cell:inv ~inputs:[ "y" ] ~output:"z1";
  Sta.add_gate d ~inst:"u3" ~cell:inv ~inputs:[ "y" ] ~output:"z2";
  Sta.add_net d ~name:"a" ~segments:[ seg ~from_:"drv" ~to_:"u1" ~r:50. ~c:10e-15 ];
  Sta.add_net d ~name:"y"
    ~segments:
      [ seg ~from_:"drv" ~to_:"u2" ~r:100. ~c:20e-15;
        seg ~from_:"drv" ~to_:"fork" ~r:400. ~c:80e-15;
        seg ~from_:"fork" ~to_:"u3" ~r:400. ~c:80e-15 ];
  Sta.add_net d ~name:"z1" ~segments:[ seg ~from_:"drv" ~to_:"o1" ~r:10. ~c:1e-15 ];
  Sta.add_net d ~name:"z2" ~segments:[ seg ~from_:"drv" ~to_:"o2" ~r:10. ~c:1e-15 ];
  Sta.add_primary_input d ~net:"a" ();
  let r = Sta.analyze d in
  let y = List.find (fun nt -> nt.Sta.net_name = "y") r.Sta.nets in
  Alcotest.(check int) "two sinks" 2 (List.length y.Sta.sinks);
  let near =
    List.find (fun s -> s.Sta.sink_inst = "u2") y.Sta.sinks
  in
  let far = List.find (fun s -> s.Sta.sink_inst = "u3") y.Sta.sinks in
  Alcotest.(check bool) "far sink slower" true
    (far.Sta.net_delay > near.Sta.net_delay)

let test_slew_propagates () =
  (* a slow primary-input slew increases downstream arrivals *)
  let fast = chain () in
  let slow = chain ~in_slew:2e-9 () in
  let rf = Sta.analyze fast in
  let rs = Sta.analyze slow in
  Alcotest.(check bool)
    (Printf.sprintf "slew slows arrival (%.4g vs %.4g)"
       rs.Sta.critical_arrival rf.Sta.critical_arrival)
    true
    (rs.Sta.critical_arrival > rf.Sta.critical_arrival)

let test_cycle_detected () =
  let d = Sta.create () in
  Sta.add_gate d ~inst:"u1" ~cell:inv ~inputs:[ "a" ] ~output:"b";
  Sta.add_gate d ~inst:"u2" ~cell:inv ~inputs:[ "b" ] ~output:"a";
  Sta.add_net d ~name:"a" ~segments:[ seg ~from_:"drv" ~to_:"u1" ~r:10. ~c:1e-15 ];
  Sta.add_net d ~name:"b" ~segments:[ seg ~from_:"drv" ~to_:"u2" ~r:10. ~c:1e-15 ];
  match Sta.analyze d with
  | _ -> Alcotest.fail "expected cycle detection"
  | exception Sta.Not_a_dag nets ->
    Alcotest.(check int) "both nets blocked" 2 (List.length nets)

let test_malformed_detected () =
  let d = Sta.create () in
  Sta.add_gate d ~inst:"u1" ~cell:inv ~inputs:[ "missing" ] ~output:"y";
  Sta.add_net d ~name:"y" ~segments:[ seg ~from_:"drv" ~to_:"o" ~r:10. ~c:1e-15 ];
  match Sta.analyze d with
  | _ -> Alcotest.fail "expected malformed"
  | exception Sta.Malformed _ -> ()

let design_text = {|
* a two-stage chain in the text format
vdd 5.0
threshold 0.5
cell inv 500 20f 50p
cell buf 200 40f 80p
gate u1 inv net_mid net_in
gate u2 buf net_out net_mid
gate u3 inv net_po net_out
net net_in drv u1 100 30f
net net_mid drv w1 200 50f ; w1 u2 150 40f
net net_out drv u3 300 60f
net net_po drv end 10 1f
input net_in
output net_out
|}

let test_design_file_matches_api () =
  (* the text design above is the [chain ()] fixture; reports agree *)
  let d_text = Sta.Design_file.parse_string design_text in
  let d_api = chain () in
  let r_text = Sta.analyze ~model:(Sta.Awe_model 2) d_text in
  let r_api = Sta.analyze ~model:(Sta.Awe_model 2) d_api in
  Alcotest.(check bool)
    (Printf.sprintf "critical arrivals equal (%.5g vs %.5g)"
       r_text.Sta.critical_arrival r_api.Sta.critical_arrival)
    true
    (Float.abs (r_text.Sta.critical_arrival -. r_api.Sta.critical_arrival)
    < 1e-12);
  Alcotest.(check (list string)) "same critical path"
    r_api.Sta.critical_path r_text.Sta.critical_path

let test_design_file_header_values () =
  let d =
    Sta.Design_file.parse_string
      "vdd 3.3\nthreshold 0.4\ncell c 100 1f 1p\ngate u1 c y a\nnet a drv u1 10 1f\nnet y drv o 10 1f\ninput a\n"
  in
  (* indirectly observable: analysis runs and the threshold crossing is
     to 0.4 * 3.3 V; just check it analyzes cleanly *)
  let r = Sta.analyze ~model:(Sta.Awe_model 1) d in
  Alcotest.(check bool) "analyzes" true (r.Sta.critical_arrival > 0.)

let test_design_file_errors () =
  (match Sta.Design_file.parse_string "cell bad 100\n" with
  | _ -> Alcotest.fail "short cell accepted"
  | exception Sta.Design_file.Parse_error (1, _) -> ());
  (match Sta.Design_file.parse_string "gate u1 nocell y a\n" with
  | _ -> Alcotest.fail "unknown cell accepted"
  | exception Sta.Design_file.Parse_error _ -> ());
  match Sta.Design_file.parse_string "frobnicate x\n" with
  | _ -> Alcotest.fail "unknown card accepted"
  | exception Sta.Design_file.Parse_error _ -> ()

let test_design_file_input_params () =
  let d =
    Sta.Design_file.parse_string
      ("cell c 100 1f 1p\ngate u1 c y a\nnet a drv u1 10 1f\n"
      ^ "net y drv o 10 1f\ninput a arrival=1n slew=2n\n")
  in
  let r = Sta.analyze ~model:(Sta.Awe_model 1) d in
  (* arrival offset of 1 ns must dominate *)
  Alcotest.(check bool) "arrival offset honored" true
    (r.Sta.critical_arrival > 1e-9)

let test_cell_validation () =
  Alcotest.check_raises "bad cell"
    (Invalid_argument
       "Sta.cell: drive_res must be positive, input_cap and intrinsic \
        non-negative") (fun () ->
      ignore (Sta.cell ~name:"bad" ~drive_res:0. ~input_cap:1. ~intrinsic:1.));
  (* zero input_cap and intrinsic are legal (an ideal probe cell) *)
  let c = Sta.cell ~name:"probe" ~drive_res:1. ~input_cap:0. ~intrinsic:0. in
  Alcotest.(check string) "zero caps accepted" "probe" c.Sta.cell_name

let test_duplicate_io_rejected () =
  (match
     let d = chain () in
     Sta.add_primary_input d ~net:"net_in" ~slew:1e-9 ()
   with
  | () -> Alcotest.fail "duplicate primary input accepted"
  | exception Sta.Malformed _ -> ());
  (match
     let d = chain () in
     Sta.add_primary_output d ~net:"net_out"
   with
  | () -> Alcotest.fail "duplicate primary output accepted"
  | exception Sta.Malformed _ -> ());
  (match
     Sta.add_primary_input (Sta.create ()) ~net:"x" ~arrival:(-1e-9) ()
   with
  | () -> Alcotest.fail "negative arrival accepted"
  | exception Sta.Malformed _ -> ());
  match Sta.add_primary_input (Sta.create ()) ~net:"x" ~slew:(-1e-12) () with
  | () -> Alcotest.fail "negative slew accepted"
  | exception Sta.Malformed _ -> ()

let test_design_file_duplicate_cards () =
  (match
     Sta.Design_file.parse_string
       "cell c 100 1f 1p\ngate u1 c y a\nnet a drv u1 10 1f\nnet y drv o 10 \
        1f\ninput a\ninput a slew=1n\n"
   with
  | _ -> Alcotest.fail "duplicate input card accepted"
  | exception Sta.Design_file.Parse_error _ -> ()
  | exception Sta.Malformed _ -> ());
  match
    Sta.Design_file.parse_string
      "cell c 100 1f 1p\ngate u1 c y a\nnet a drv u1 10 1f\nnet y drv o 10 \
       1f\ninput a\noutput y\noutput y\n"
  with
  | _ -> Alcotest.fail "duplicate output card accepted"
  | exception Sta.Design_file.Parse_error _ -> ()
  | exception Sta.Malformed _ -> ()

(* ------------------------------------------------------------------ *)
(* Shared-engine regression tests: the batched kernel must cost one
   MNA build + one factorization per net regardless of fanout, and its
   per-sink numbers must match the pre-refactor per-sink pipeline. *)

(* `dune runtest` runs in the test's build directory (decks two levels
   up); `dune exec` runs from the workspace root *)
let adder_deck () =
  let candidates = [ "../../decks/adder_stage.sta"; "decks/adder_stage.sta" ] in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> Sta.Design_file.parse_file path
  | None -> Alcotest.failf "decks/adder_stage.sta not found"

let test_one_factorization_per_net () =
  (* fanout fixture: net y has two sinks but must cost one engine *)
  let d = Sta.create () in
  Sta.add_gate d ~inst:"u1" ~cell:buf ~inputs:[ "a" ] ~output:"y";
  Sta.add_gate d ~inst:"u2" ~cell:inv ~inputs:[ "y" ] ~output:"z1";
  Sta.add_gate d ~inst:"u3" ~cell:inv ~inputs:[ "y" ] ~output:"z2";
  Sta.add_net d ~name:"a" ~segments:[ seg ~from_:"drv" ~to_:"u1" ~r:50. ~c:10e-15 ];
  Sta.add_net d ~name:"y"
    ~segments:
      [ seg ~from_:"drv" ~to_:"u2" ~r:100. ~c:20e-15;
        seg ~from_:"drv" ~to_:"fork" ~r:400. ~c:80e-15;
        seg ~from_:"fork" ~to_:"u3" ~r:400. ~c:80e-15 ];
  Sta.add_net d ~name:"z1" ~segments:[ seg ~from_:"drv" ~to_:"o1" ~r:10. ~c:1e-15 ];
  Sta.add_net d ~name:"z2" ~segments:[ seg ~from_:"drv" ~to_:"o2" ~r:10. ~c:1e-15 ];
  Sta.add_primary_input d ~net:"a" ();
  let r = Sta.analyze ~model:(Sta.Awe_model 2) d in
  (* nets with at least one sink: a, y; z1/z2 feed no gate *)
  Alcotest.(check int) "one MNA build per timed net" 2
    r.Sta.stats.Awe.Stats.mna_builds;
  Alcotest.(check int) "one factorization per timed net" 2
    r.Sta.stats.Awe.Stats.factorizations;
  (* and the multi-sink adder deck: 6 nets feed gate inputs *)
  let r = Sta.analyze ~model:Sta.Awe_auto (adder_deck ()) in
  Alcotest.(check int) "adder: one MNA build per timed net" 6
    r.Sta.stats.Awe.Stats.mna_builds;
  Alcotest.(check int) "adder: one factorization per timed net" 6
    r.Sta.stats.Awe.Stats.factorizations

(* the pre-refactor per-sink pipeline, reconstructed from the public
   one-shot API: fresh MNA build + fresh factorization per sink *)
let legacy_sink_timing ~vdd ~threshold ~slew ~circuit ~node ~q =
  let sys = Circuit.Mna.build circuit in
  let threshold_v = threshold *. vdd in
  let a = Awe.approximate sys ~node ~q in
  let tau = Float.max (Awe.elmore_equivalent sys ~node) 1e-15 in
  let t_max = (50. *. tau) +. (2. *. slew) in
  let delay =
    match Awe.delay a ~threshold:threshold_v ~t_max with
    | Some t -> t
    | None -> Alcotest.fail "legacy path: no crossing"
  in
  let t10 =
    Awe.Approx.crossing_time a.Awe.response ~threshold:(0.1 *. vdd) ~t_max
  in
  let t90 =
    Awe.Approx.crossing_time a.Awe.response ~threshold:(0.9 *. vdd) ~t_max
  in
  let slew_out =
    match (t10, t90) with
    | Some a, Some b when b > a -> b -. a
    | _ -> tau *. log 9.
  in
  (delay, slew_out)

let test_batch_matches_per_sink_adder () =
  let d = adder_deck () in
  let q = 3 in
  (* reduce off: the legacy pipeline below recomputes each sink on the
     unreduced stage circuit, and this test pins batching, not the
     reduction pass (test_reduce_* covers that) *)
  let r = Sta.analyze ~model:(Sta.Awe_model q) ~reduce:false d in
  let find_net net = List.find (fun nt -> nt.Sta.net_name = net) r.Sta.nets in
  let sink_of net inst =
    List.find (fun s -> s.Sta.sink_inst = inst) (find_net net).Sta.sinks
  in
  (* the deck's topology, restated: per net, the driver's output
     resistance and the slew arriving at the driver pin *)
  let slew_into net =
    (* worst input sink of the driving gate, by arrival (analyze's
       propagation rule); PIs carry the deck's input slews *)
    match net with
    | "a" -> 100e-12
    | "b" -> 250e-12
    | "n1" -> (sink_of "a" "u1").Sta.sink_slew
    | "n2" -> (sink_of "b" "u2").Sta.sink_slew
    | "n3" ->
      let s1 = sink_of "n1" "u3" and s2 = sink_of "n2" "u3" in
      if s2.Sta.arrival > s1.Sta.arrival then s2.Sta.sink_slew
      else s1.Sta.sink_slew
    | "out" -> (sink_of "n3" "u4").Sta.sink_slew
    | "sink" -> (sink_of "out" "u5").Sta.sink_slew
    | _ -> Alcotest.failf "unexpected net %s" net
  in
  let driver_res = function
    | "a" | "b" -> 1e-3 (* ideal primary input *)
    | "n1" | "n2" -> 600. (* inv *)
    | "n3" -> 350. (* nand2 *)
    | "out" -> 150. (* buf *)
    | "sink" -> 600. (* inv *)
    | net -> Alcotest.failf "unexpected net %s" net
  in
  let checked = ref 0 in
  List.iter
    (fun nt ->
      let net = nt.Sta.net_name in
      let slew = slew_into net in
      let circuit, sink_nodes =
        Sta.net_circuit d ~net ~driver_res:(driver_res net) ~slew
      in
      List.iter
        (fun s ->
          let node = List.assoc s.Sta.sink_inst sink_nodes in
          let delay, slew_out =
            legacy_sink_timing ~vdd:5. ~threshold:0.5 ~slew ~circuit ~node ~q
          in
          let close name a b =
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s %s (batched %.6e legacy %.6e)" net
                 s.Sta.sink_inst name a b)
              true
              (Float.abs (a -. b) <= 1e-9 *. Float.abs b)
          in
          close "delay" s.Sta.net_delay delay;
          close "slew" s.Sta.sink_slew slew_out;
          incr checked)
        nt.Sta.sinks)
    r.Sta.nets;
  Alcotest.(check bool) "covered all sinks" true (!checked >= 6)

(* ------------------------------------------------------------------ *)
(* Parallel determinism and failure isolation.  Reports, critical
   paths, and merged engine counters must be bit-identical for any
   [jobs]; a failing net in non-strict mode must not abort its
   siblings.  Worker domains are forced so the cross-domain paths run
   even on single-core machines (see [Parallel.create]). *)

let () = Unix.putenv "AWESIM_FORCE_DOMAINS" "1"

(* the parallel side of every jobs-1-vs-N comparison; CI runs the
   suite twice, once with AWESIM_TEST_JOBS=4 and once with =1, so the
   same assertions also pin the pure-sequential path *)
let test_jobs =
  match Sys.getenv_opt "AWESIM_TEST_JOBS" with
  | Some s -> ( try Stdlib.max 1 (int_of_string s) with _ -> 4)
  | None -> 4

let counters (s : Awe.Stats.snapshot) =
  Awe.Stats.
    ( s.factorizations,
      s.moment_solves,
      s.fits,
      s.fit_retries,
      s.order_escalations,
      s.mna_builds )

let check_reports_equal name (r1 : Sta.report) (rn : Sta.report) =
  Alcotest.(check bool) (name ^ ": nets bit-identical") true
    (r1.Sta.nets = rn.Sta.nets);
  Alcotest.(check bool) (name ^ ": critical arrival bit-identical") true
    (r1.Sta.critical_arrival = rn.Sta.critical_arrival);
  Alcotest.(check (list string)) (name ^ ": critical path")
    r1.Sta.critical_path rn.Sta.critical_path;
  Alcotest.(check bool) (name ^ ": failures identical") true
    (r1.Sta.failures = rn.Sta.failures);
  Alcotest.(check bool) (name ^ ": slacks bit-identical") true
    (r1.Sta.slacks = rn.Sta.slacks);
  Alcotest.(check bool) (name ^ ": worst slack bit-identical") true
    (r1.Sta.worst_slack = rn.Sta.worst_slack);
  (* the integer engine counters; phase_seconds is wall-clock
     measurement and legitimately varies *)
  Alcotest.(check bool) (name ^ ": merged stats identical") true
    (counters r1.Sta.stats = counters rn.Sta.stats)

let test_jobs_deterministic_adder () =
  let d = adder_deck () in
  let run jobs = Sta.analyze ~model:Sta.Awe_auto ~jobs d in
  check_reports_equal "adder dense" (run 1) (run test_jobs);
  let run jobs = Sta.analyze ~model:Sta.Awe_auto ~sparse:true ~jobs d in
  check_reports_equal "adder sparse" (run 1) (run test_jobs)

(* a random layered DAG: net [n0] is the primary input; every later
   net is driven by a gate with one or two random earlier nets as
   inputs.  Wires are a short random trunk plus one branch per sink. *)
let random_design st ~nets =
  let d = Sta.create () in
  let name i = Printf.sprintf "n%d" i in
  let cells = [| inv; buf |] in
  let sinks = Array.make nets [] in
  for i = 1 to nets - 1 do
    let a = Random.State.int st i in
    let ins =
      if i > 1 && Random.State.bool st then
        let b = Random.State.int st i in
        if b = a then [ a ] else [ a; b ]
      else [ a ]
    in
    let inst = Printf.sprintf "g%d" i in
    Sta.add_gate d ~inst
      ~cell:cells.(Random.State.int st 2)
      ~inputs:(List.map name ins) ~output:(name i);
    List.iter (fun j -> sinks.(j) <- inst :: sinks.(j)) ins
  done;
  for i = 0 to nets - 1 do
    let r () = 50. +. Random.State.float st 450. in
    let c () = 5e-15 +. Random.State.float st 45e-15 in
    let trunk = 1 + Random.State.int st 2 in
    let segs = ref [] and last = ref "drv" in
    for k = 1 to trunk do
      let node = Printf.sprintf "w%d" k in
      segs := seg ~from_:!last ~to_:node ~r:(r ()) ~c:(c ()) :: !segs;
      last := node
    done;
    List.iter
      (fun s -> segs := seg ~from_:!last ~to_:s ~r:(r ()) ~c:(c ()) :: !segs)
      sinks.(i);
    if sinks.(i) = [] then
      segs := seg ~from_:!last ~to_:"end" ~r:10. ~c:1e-15 :: !segs;
    Sta.add_net d ~name:(name i) ~segments:(List.rev !segs)
  done;
  Sta.add_primary_input d ~net:(name 0) ~slew:(Random.State.float st 1e-9) ();
  d

let test_jobs_deterministic_random () =
  for seed = 0 to 7 do
    let st = Random.State.make [| 0x57A; seed |] in
    let d = random_design st ~nets:12 in
    let sparse = seed mod 2 = 1 in
    let run jobs = Sta.analyze ~model:Sta.Awe_auto ~sparse ~jobs d in
    check_reports_equal (Printf.sprintf "seed %d" seed) (run 1) (run test_jobs)
  done

(* two independent chains; chain B's first net never reaches its sink
   pin, so timing it raises Malformed inside the pool task *)
let broken_sibling_design () =
  let d = Sta.create () in
  Sta.add_gate d ~inst:"ua1" ~cell:inv ~inputs:[ "a1" ] ~output:"a2";
  Sta.add_gate d ~inst:"ua2" ~cell:buf ~inputs:[ "a2" ] ~output:"a3";
  Sta.add_net d ~name:"a1" ~segments:[ seg ~from_:"drv" ~to_:"ua1" ~r:100. ~c:20e-15 ];
  Sta.add_net d ~name:"a2" ~segments:[ seg ~from_:"drv" ~to_:"ua2" ~r:150. ~c:30e-15 ];
  Sta.add_net d ~name:"a3" ~segments:[ seg ~from_:"drv" ~to_:"end" ~r:10. ~c:1e-15 ];
  Sta.add_gate d ~inst:"ub1" ~cell:inv ~inputs:[ "b1" ] ~output:"b2";
  Sta.add_gate d ~inst:"ub2" ~cell:inv ~inputs:[ "b2" ] ~output:"b3";
  Sta.add_net d ~name:"b1" ~segments:[ seg ~from_:"drv" ~to_:"oops" ~r:100. ~c:20e-15 ];
  Sta.add_net d ~name:"b2" ~segments:[ seg ~from_:"drv" ~to_:"ub2" ~r:100. ~c:20e-15 ];
  Sta.add_net d ~name:"b3" ~segments:[ seg ~from_:"drv" ~to_:"end" ~r:10. ~c:1e-15 ];
  Sta.add_primary_input d ~net:"a1" ();
  Sta.add_primary_input d ~net:"b1" ();
  Sta.add_primary_output d ~net:"a3";
  d

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_strict_raises () =
  let d = broken_sibling_design () in
  match Sta.analyze ~jobs:test_jobs d with
  | _ -> Alcotest.fail "expected Malformed"
  | exception Sta.Malformed msg ->
    Alcotest.(check bool)
      (Printf.sprintf "diagnostic names the broken net (%s)" msg)
      true (contains msg "b1")

let test_non_strict_isolates () =
  let d = broken_sibling_design () in
  let r = Sta.analyze ~jobs:test_jobs ~strict:false d in
  let timed = List.map (fun nt -> nt.Sta.net_name) r.Sta.nets in
  Alcotest.(check bool) "healthy chain fully timed" true
    (List.mem "a1" timed && List.mem "a2" timed);
  Alcotest.(check bool) "critical arrival comes from the healthy chain"
    true
    (r.Sta.critical_arrival > 0.);
  let reason net =
    match List.find_opt (fun f -> f.Sta.failed_net = net) r.Sta.failures with
    | Some f -> f.Sta.reason
    | None -> Alcotest.failf "net %s missing from failures" net
  in
  Alcotest.(check bool) "broken net keeps its own diagnostic" true
    (contains (reason "b1") "no segment reaching sink");
  Alcotest.(check string) "downstream net marked untimed"
    "not timed: an upstream net failed" (reason "b2");
  Alcotest.(check string) "transitively downstream net marked untimed"
    "not timed: an upstream net failed" (reason "b3");
  Alcotest.(check bool) "broken chain absent from timed nets" true
    (not (List.mem "b1" timed) && not (List.mem "b2" timed));
  (* and the verdicts themselves are jobs-independent *)
  let r1 = Sta.analyze ~jobs:1 ~strict:false d in
  check_reports_equal "broken siblings" r1 r

(* ------------------------------------------------------------------ *)
(* Structure-sharing cache: caching is an execution detail.  Reports
   and the engine work counters must be bit-identical with the cache
   on (cold and warm) and off, for every jobs value; the cache's own
   hit/miss counters must be jobs-independent too. *)

let cache_counters (s : Awe.Stats.snapshot) =
  Awe.Stats.(s.cache_exact_hits, s.cache_pattern_hits, s.cache_misses)

let check_cache_identity name d ~sparse =
  List.iter
    (fun jobs ->
      let run ?cache () =
        Sta.analyze ~model:Sta.Awe_auto ~sparse ~jobs ?cache d
      in
      let off = run () in
      let cache = Sta.create_cache () in
      let cold = run ~cache () in
      let warm = run ~cache () in
      let tag s = Printf.sprintf "%s %s jobs=%d" name s jobs in
      check_reports_equal (tag "cold") off cold;
      check_reports_equal (tag "warm") off warm;
      Alcotest.(check bool)
        (tag "warm serves every net from the exact tier")
        true
        (warm.Sta.stats.Awe.Stats.cache_misses = 0
        && warm.Sta.stats.Awe.Stats.cache_exact_hits > 0))
    [ 1; test_jobs ]

let test_cache_identity_adder () =
  let d = adder_deck () in
  check_cache_identity "adder dense" d ~sparse:false;
  check_cache_identity "adder sparse" d ~sparse:true

let test_cache_identity_random () =
  for seed = 0 to 5 do
    let st = Random.State.make [| 0xCAC; seed |] in
    let d = random_design st ~nets:10 in
    check_cache_identity
      (Printf.sprintf "random seed %d" seed)
      d
      ~sparse:(seed mod 2 = 1)
  done

let test_cache_jobs_deterministic () =
  let d = adder_deck () in
  let run jobs =
    let cache = Sta.create_cache () in
    let cold = Sta.analyze ~model:Sta.Awe_auto ~sparse:true ~jobs ~cache d in
    let warm = Sta.analyze ~model:Sta.Awe_auto ~sparse:true ~jobs ~cache d in
    (cold, warm)
  in
  let c1, w1 = run 1 in
  let cn, wn = run test_jobs in
  check_reports_equal "cached cold" c1 cn;
  check_reports_equal "cached warm" w1 wn;
  Alcotest.(check bool) "cold cache counters jobs-independent" true
    (cache_counters c1.Sta.stats = cache_counters cn.Sta.stats);
  Alcotest.(check bool) "warm cache counters jobs-independent" true
    (cache_counters w1.Sta.stats = cache_counters wn.Sta.stats)

(* ------------------------------------------------------------------ *)
(* Model-order reduction inside the timing loop: jobs-deterministic
   (including the new reduce counters), actually firing on the ladder
   generator, and agreeing with the unreduced pipeline within the
   lumping tolerance. *)

let test_reduce_jobs_deterministic () =
  let d = Sta.Synth.rc_ladder ~stages:9 ~length:5 ~fanout:3 () in
  let run jobs = Sta.analyze ~model:(Sta.Awe_model 3) ~jobs d in
  let r1 = run 1 and rn = run test_jobs in
  check_reports_equal "reduced ladder" r1 rn;
  let red (s : Awe.Stats.snapshot) =
    Awe.Stats.
      ( s.reduce_nodes_eliminated,
        s.reduce_elements_eliminated,
        s.reduce_parallel_merges,
        s.reduce_series_merges,
        s.reduce_chain_lumps,
        s.reduce_star_merges )
  in
  Alcotest.(check bool) "reduce counters jobs-independent" true
    (red r1.Sta.stats = red rn.Sta.stats);
  Alcotest.(check bool) "reduction fires on the ladder" true
    (r1.Sta.stats.Awe.Stats.reduce_nodes_eliminated > 0);
  (* against the unreduced pipeline: same nets, arrivals within the
     moment-preserving lumps' tolerance *)
  let off = Sta.analyze ~model:(Sta.Awe_model 3) ~reduce:false ~jobs:1 d in
  Alcotest.(check int) "same net count" (List.length off.Sta.nets)
    (List.length r1.Sta.nets);
  Alcotest.(check int) "no reduce counters when off" 0
    off.Sta.stats.Awe.Stats.reduce_nodes_eliminated;
  let rel a b = abs_float (a -. b) /. Float.max 1e-30 (abs_float b) in
  if rel r1.Sta.critical_arrival off.Sta.critical_arrival > 0.1 then
    Alcotest.failf "critical arrival drifted: %.6g reduced vs %.6g"
      r1.Sta.critical_arrival off.Sta.critical_arrival

(* ------------------------------------------------------------------ *)
(* Synthetic designs at scale (Sta.Synth): the generators behind the
   sta_scale bench.  Small instances here — the shapes (wide waves,
   repeated templates, ragged meshes) are what matters, and the
   determinism contract must hold on them at every jobs value. *)

let synth_designs () =
  [ ("grid", Sta.Synth.grid ~rows:6 ~cols:6 (), false);
    ("clock_tree", Sta.Synth.clock_tree ~levels:4 ~fanout:3 (), true);
    ("buffered_mesh", Sta.Synth.buffered_mesh ~seed:7 ~rows:5 ~cols:5 (), true)
  ]

let test_jobs_deterministic_synth () =
  List.iter
    (fun (name, d, sparse) ->
      let run_cached jobs =
        let cache = Sta.create_cache () in
        Sta.analyze ~model:Sta.Awe_auto ~sparse ~jobs ~cache d
      in
      let r1 = run_cached 1 in
      List.iter
        (fun jobs ->
          let rn = run_cached jobs in
          check_reports_equal (Printf.sprintf "%s cached jobs=%d" name jobs) r1
            rn;
          Alcotest.(check bool)
            (Printf.sprintf "%s cache counters jobs-independent (jobs=%d)"
               name jobs)
            true
            (cache_counters r1.Sta.stats = cache_counters rn.Sta.stats))
        [ test_jobs; 8 ];
      let u1 = Sta.analyze ~sparse ~jobs:1 d in
      let un = Sta.analyze ~sparse ~jobs:8 d in
      check_reports_equal (name ^ " uncached") u1 un)
    (synth_designs ())

let test_shard_merge_property () =
  (* the tentpole property: absorbing per-chunk shards in chunk order
     yields exactly the contents sequential publication produces, for
     any chunking (i.e. any jobs value) *)
  List.iter
    (fun (name, d, sparse) ->
      let contents jobs =
        let cache = Sta.create_cache () in
        ignore (Sta.analyze ~model:Sta.Awe_auto ~sparse ~jobs ~cache d);
        Sta.cache_fingerprint cache
      in
      let seq = contents 1 in
      Alcotest.(check bool) (name ^ ": sequential cache is non-empty") true
        (fst seq <> []);
      List.iter
        (fun jobs ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: shard-merged contents = sequential (jobs=%d)"
               name jobs)
            true
            (contents jobs = seq))
        [ test_jobs; 8 ])
    (synth_designs ())

let test_synth_shapes () =
  let grid = Sta.Synth.grid ~rows:6 ~cols:6 () in
  Alcotest.(check int) "grid nets = rows*cols + rows + cols" 48
    (Sta.Synth.net_count grid);
  let ct = Sta.Synth.clock_tree ~levels:3 ~fanout:2 () in
  (* (2^3 - 1) buffers, one net each, plus the clk root net *)
  Alcotest.(check int) "clock tree nets" 8 (Sta.Synth.net_count ct);
  let mesh seed = Sta.Synth.buffered_mesh ~seed ~rows:5 ~cols:5 () in
  let r a = Sta.analyze ~jobs:1 (mesh a) in
  check_reports_equal "same seed, same design" (r 7) (r 7);
  Alcotest.(check bool) "different seed, different wires" true
    ((r 7).Sta.critical_arrival <> (r 8).Sta.critical_arrival)

(* ------------------------------------------------------------------ *)
(* Slack, required times and top-K critical paths.  The backward
   required-time pass is the min-plus dual of the forward max-plus
   arrival pass; the properties below are metamorphic consequences of
   that duality, checked at jobs 1 and [test_jobs] on the handcrafted
   fixtures, the synthetic generators and random DAGs. *)

let slack_at (r : Sta.report) ~net ~pin =
  List.find_opt
    (fun s -> s.Sta.sp_net = net && s.Sta.sp_pin = pin)
    r.Sta.slacks

(* leaf nets: timed nets no gate consumes.  Their single slack entry
   sits on the driver pin and binds solely to the endpoint
   requirement, which makes Δ-tightening on them exact. *)
let leaf_nets d (r : Sta.report) =
  let consumed = Hashtbl.create 16 in
  List.iter
    (fun gv ->
      List.iter (fun n -> Hashtbl.replace consumed n ()) gv.Sta.gv_inputs)
    (Sta.gate_views d);
  List.filter_map
    (fun nt ->
      let n = nt.Sta.net_name in
      if Hashtbl.mem consumed n then None else Some n)
    r.Sta.nets

(* a clock makes every primary output an endpoint; decks that carry
   their own clock card (the adder) keep it *)
let ensure_clock d =
  if Sta.clock_period d = None then Sta.set_clock d ~period:2e-9

(* every slack-bearing design used by the property wall: a name, a
   thunk that rebuilds the identical design from scratch (designs are
   mutable, so metamorphic pairs need two fresh copies), and the
   sparse flag the fixture usually runs with *)
let slack_fixtures () =
  [ ("chain", (fun () -> chain ()), false);
    ("adder", (fun () -> adder_deck ()), false);
    ("grid", (fun () -> Sta.Synth.grid ~rows:4 ~cols:4 ()), false);
    ( "clock_tree",
      (fun () -> Sta.Synth.clock_tree ~levels:3 ~fanout:3 ()),
      true );
    ( "buffered_mesh",
      (fun () -> Sta.Synth.buffered_mesh ~seed:11 ~rows:4 ~cols:4 ()),
      true );
    ( "random",
      (fun () ->
        let d =
          random_design (Random.State.make [| 0x51AC; 3 |]) ~nets:10
        in
        Sta.add_primary_output d ~net:"n9";
        d),
      false ) ]

let test_slack_consistency () =
  (* invariants of a single report: slacks sorted worst-first,
     worst_slack = head = min, every slack = required - arrival *)
  List.iter
    (fun (name, build, sparse) ->
      List.iter
        (fun jobs ->
          let d = build () in
          ensure_clock d;
          let r = Sta.analyze ~sparse ~jobs d in
          let tag s = Printf.sprintf "%s jobs=%d: %s" name jobs s in
          Alcotest.(check bool) (tag "has slack entries") true
            (r.Sta.slacks <> []);
          let rec sorted = function
            | a :: (b :: _ as rest) ->
              a.Sta.sp_slack <= b.Sta.sp_slack && sorted rest
            | _ -> true
          in
          Alcotest.(check bool) (tag "sorted worst-first") true
            (sorted r.Sta.slacks);
          let min_slack =
            List.fold_left
              (fun acc s -> Float.min acc s.Sta.sp_slack)
              infinity r.Sta.slacks
          in
          Alcotest.(check bool) (tag "worst = min over entries") true
            (r.Sta.worst_slack = min_slack);
          List.iter
            (fun s ->
              Alcotest.(check bool) (tag "slack = required - arrival") true
                (s.Sta.sp_slack = s.Sta.sp_required -. s.Sta.sp_arrival))
            r.Sta.slacks)
        [ 1; test_jobs ])
    (slack_fixtures ())

let test_slack_tightening_metamorphic () =
  (* Δ-tightening an endpoint constraint on a leaf net decreases that
     endpoint's slack by exactly Δ and never increases any other
     pin's slack (requirements propagate through min and minus, both
     monotone — so monotonicity holds bitwise, not just to
     tolerance) *)
  let delta = 0.125e-9 in
  List.iter
    (fun (name, build, sparse) ->
      let probe = build () in
      (* decks that already carry constraint cards (the adder) can't
         be re-constrained; the golden test covers them instead *)
      if Sta.constraints probe <> [] then ()
      else begin
      let r0 = Sta.analyze ~sparse ~jobs:1 probe in
      let target =
        match leaf_nets probe r0 with
        | n :: _ -> n
        | [] -> Alcotest.failf "%s: no leaf net to constrain" name
      in
      let arr =
        (List.find (fun nt -> nt.Sta.net_name = target) r0.Sta.nets)
          .Sta.driver_arrival
      in
      let r_base = arr +. 0.4e-9 in
      List.iter
        (fun jobs ->
          let da = build () and db = build () in
          ensure_clock da;
          ensure_clock db;
          Sta.add_constraint da ~net:target ~required:r_base;
          Sta.add_constraint db ~net:target ~required:(r_base -. delta);
          let ra = Sta.analyze ~sparse ~jobs da in
          let rb = Sta.analyze ~sparse ~jobs db in
          let tag s = Printf.sprintf "%s jobs=%d: %s" name jobs s in
          (let sa =
             match slack_at ra ~net:target ~pin:None with
             | Some s -> s
             | None -> Alcotest.failf "%s: no entry for %s" name target
           and sb =
             match slack_at rb ~net:target ~pin:None with
             | Some s -> s
             | None -> Alcotest.failf "%s: no entry for %s" name target
           in
           Alcotest.(check bool)
             (tag
                (Printf.sprintf
                   "target slack drops by exactly delta (%.17g vs %.17g)"
                   (sa.Sta.sp_slack -. sb.Sta.sp_slack)
                   delta))
             true
             (Float.abs (sa.Sta.sp_slack -. sb.Sta.sp_slack -. delta)
             <= 1e-12 *. Float.abs sa.Sta.sp_slack
                +. epsilon_float *. Float.abs sa.Sta.sp_slack));
          Alcotest.(check int) (tag "same pin population")
            (List.length ra.Sta.slacks)
            (List.length rb.Sta.slacks);
          List.iter
            (fun sa ->
              match slack_at rb ~net:sa.Sta.sp_net ~pin:sa.Sta.sp_pin with
              | None ->
                Alcotest.failf "%s: pin vanished under tightening" name
              | Some sb ->
                Alcotest.(check bool)
                  (tag "no pin's slack increases (bitwise)") true
                  (sb.Sta.sp_slack <= sa.Sta.sp_slack))
            ra.Sta.slacks;
          Alcotest.(check bool) (tag "worst slack monotone") true
            (rb.Sta.worst_slack <= ra.Sta.worst_slack))
        [ 1; test_jobs ]
      end)
    (slack_fixtures ())

let test_top_k_paths_properties () =
  (* top-K extraction: sorted by slack, distinct endpoint pins, the
     worst path's slack equals the report's worst slack, and k only
     truncates — it never reorders *)
  List.iter
    (fun (name, build, sparse) ->
      let d = build () in
      ensure_clock d;
      let r = Sta.analyze ~sparse ~jobs:test_jobs d in
      let all = Sta.critical_paths d r ~k:max_int in
      let tag s = Printf.sprintf "%s: %s" name s in
      Alcotest.(check bool) (tag "at least one path") true (all <> []);
      let rec sorted = function
        | a :: (b :: _ as rest) ->
          a.Sta.path_slack <= b.Sta.path_slack && sorted rest
        | _ -> true
      in
      Alcotest.(check bool) (tag "paths sorted worst-first") true
        (sorted all);
      let endpoints =
        List.map (fun p -> (p.Sta.path_endpoint, p.Sta.path_pin)) all
      in
      Alcotest.(check bool) (tag "endpoint pins distinct") true
        (List.length endpoints
        = List.length (List.sort_uniq compare endpoints));
      (* the worst path's slack is the report's worst slack — to
         rounding: the worst pin entry may sit on an *internal* pin of
         the same path, where the forward (+) and backward (-) passes
         round differently by an ulp *)
      let w = (List.hd all).Sta.path_slack in
      Alcotest.(check bool)
        (tag
           (Printf.sprintf "worst path slack = report worst slack (%.17g/%.17g)"
              w r.Sta.worst_slack))
        true
        (Float.abs (w -. r.Sta.worst_slack)
        <= 1e-9 *. Float.max 1e-12 (Float.abs w));
      (* each path's slack is its own endpoint arithmetic, and never
         better than that pin's report entry (which additionally binds
         requirements arriving through downstream logic) *)
      List.iter
        (fun p ->
          Alcotest.(check bool) (tag "path slack = required - arrival") true
            (p.Sta.path_slack = p.Sta.path_required -. p.Sta.path_arrival);
          match slack_at r ~net:p.Sta.path_endpoint ~pin:p.Sta.path_pin with
          | None -> Alcotest.failf "%s: path endpoint has no slack entry" name
          | Some s ->
            Alcotest.(check bool) (tag "pin entry <= path slack") true
              (s.Sta.sp_slack
              <= p.Sta.path_slack
                 +. 1e-9 *. Float.max 1e-12 (Float.abs p.Sta.path_slack)))
        all;
      List.iteri
        (fun k _ ->
          let prefix = Sta.critical_paths d r ~k in
          Alcotest.(check bool)
            (tag (Printf.sprintf "k=%d is a prefix of the full list" k))
            true
            (prefix
            = List.filteri (fun i _ -> i < k) all))
        all;
      match Sta.critical_paths d r ~k:(-1) with
      | _ -> Alcotest.fail (tag "negative k accepted")
      | exception Invalid_argument _ -> ())
    (slack_fixtures ())

let test_path_trace_oracle () =
  (* re-summing a traced path's per-stage contributions must
     reproduce the endpoint arrival: the trace replays the forward
     fold, so the telescoped sum closes to rounding *)
  List.iter
    (fun (name, build, sparse) ->
      let d = build () in
      ensure_clock d;
      let r = Sta.analyze ~sparse ~jobs:test_jobs d in
      List.iter
        (fun p ->
          let total =
            List.fold_left
              (fun acc st -> acc +. st.Sta.st_gate_delay +. st.Sta.st_net_delay)
              p.Sta.path_input_arrival p.Sta.path_stages
          in
          Alcotest.(check bool)
            (Printf.sprintf
               "%s %s/%s: stage delays re-sum to the arrival (%.17g vs %.17g)"
               name p.Sta.path_endpoint
               (match p.Sta.path_pin with Some i -> i | None -> "(driver)")
               total p.Sta.path_arrival)
            true
            (Float.abs (total -. p.Sta.path_arrival)
            <= 1e-9 *. Float.max 1e-12 (Float.abs p.Sta.path_arrival));
          (* the last stage is the endpoint itself *)
          match List.rev p.Sta.path_stages with
          | [] -> Alcotest.failf "%s: empty path" name
          | last :: _ ->
            Alcotest.(check string) (name ^ ": trace ends at the endpoint")
              p.Sta.path_endpoint last.Sta.st_net;
            Alcotest.(check bool) (name ^ ": last stage carries the arrival")
              true
              (last.Sta.st_arrival = p.Sta.path_arrival))
        (Sta.critical_paths d r ~k:5))
    (slack_fixtures ())

let test_adder_golden_path () =
  (* hand-checked golden on decks/adder_stage.sta: the deck pins
     [constraint sink 1.4n] and [clock 1.5n]; the worst path ends on
     the [sink] stub's driver pin and walks the five-net chain with
     the cells' intrinsic delays (inv 40p, nand2 60p, buf 90p) as the
     per-stage gate contributions *)
  let d = adder_deck () in
  let r = Sta.analyze ~jobs:test_jobs d in
  let p =
    match Sta.critical_paths d r ~k:1 with
    | [ p ] -> p
    | _ -> Alcotest.fail "expected exactly one worst path"
  in
  Alcotest.(check string) "endpoint is the constrained stub" "sink"
    p.Sta.path_endpoint;
  Alcotest.(check bool) "endpoint pin is the driver" true
    (p.Sta.path_pin = None);
  Alcotest.(check (float 1e-15)) "required = the deck's constraint card" 1.4e-9
    p.Sta.path_required;
  (* the path is the critical chain extended by the stub *)
  Alcotest.(check (list string)) "stage nets extend the critical path"
    (r.Sta.critical_path @ [ "sink" ])
    (List.map (fun st -> st.Sta.st_net) p.Sta.path_stages);
  (* gate contributions, stage by stage: PI first (no gate), then
     inv, nand2, buf, inv intrinsics straight from the cell cards *)
  Alcotest.(check (list (float 1e-15))) "per-stage intrinsics"
    [ 0.; 40e-12; 60e-12; 90e-12; 40e-12 ]
    (List.map (fun st -> st.Sta.st_gate_delay) p.Sta.path_stages);
  (* endpoint arrival is the stub's driver arrival from the report *)
  let sink_nt = List.find (fun nt -> nt.Sta.net_name = "sink") r.Sta.nets in
  Alcotest.(check bool) "arrival = stub driver arrival" true
    (p.Sta.path_arrival = sink_nt.Sta.driver_arrival);
  Alcotest.(check bool) "slack = required - arrival" true
    (p.Sta.path_slack = p.Sta.path_required -. p.Sta.path_arrival);
  (* the deck meets its constraints at nominal values *)
  Alcotest.(check bool) "deck meets timing" true (r.Sta.worst_slack > 0.);
  (* every non-PI stage's wire delay is the report's sink delay for
     that (net, pin) at the path's transition *)
  List.iter
    (fun st ->
      match st.Sta.st_pin with
      | None -> ()
      | Some inst ->
        let nt =
          List.find (fun nt -> nt.Sta.net_name = st.Sta.st_net) r.Sta.nets
        in
        let s = List.find (fun s -> s.Sta.sink_inst = inst) nt.Sta.sinks in
        let expect =
          match p.Sta.path_transition with
          | Sta.Rise -> s.Sta.net_delay
          | Sta.Fall -> s.Sta.net_delay_fall
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s/%s wire delay matches the report" st.Sta.st_net
             inst)
          true
          (st.Sta.st_net_delay = expect))
    p.Sta.path_stages

let test_rise_fall_symmetric_at_half () =
  (* at threshold 0.5 the linear-symmetry fall model coincides with
     the rise model, so both transitions carry identical numbers *)
  let d = adder_deck () in
  let r = Sta.analyze ~jobs:1 d in
  List.iter
    (fun nt ->
      Alcotest.(check bool)
        (nt.Sta.net_name ^ ": driver arrivals coincide at 0.5") true
        (nt.Sta.driver_arrival = nt.Sta.driver_arrival_fall);
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: sink delays coincide at 0.5"
               nt.Sta.net_name s.Sta.sink_inst)
            true
            (s.Sta.net_delay = s.Sta.net_delay_fall
            && s.Sta.arrival = s.Sta.arrival_fall))
        nt.Sta.sinks)
    r.Sta.nets;
  (* away from 0.5 the two transitions split, and the binding one is
     the slower (lesser-slack) of the pair *)
  let d4 = Sta.create ~vdd:5. ~threshold:0.35 () in
  Sta.add_gate d4 ~inst:"u1" ~cell:inv ~inputs:[ "a" ] ~output:"y";
  Sta.add_net d4 ~name:"a"
    ~segments:[ seg ~from_:"drv" ~to_:"u1" ~r:100. ~c:30e-15 ];
  Sta.add_net d4 ~name:"y"
    ~segments:[ seg ~from_:"drv" ~to_:"end" ~r:150. ~c:40e-15 ];
  Sta.add_primary_input d4 ~net:"a" ();
  Sta.add_constraint d4 ~net:"y" ~required:2e-9;
  let r4 = Sta.analyze ~jobs:1 d4 in
  let y = List.find (fun nt -> nt.Sta.net_name = "y") r4.Sta.nets in
  Alcotest.(check bool) "transitions split off 0.5" true
    (y.Sta.driver_arrival <> y.Sta.driver_arrival_fall);
  let s = Option.get (slack_at r4 ~net:"y" ~pin:None) in
  let slower =
    Float.max y.Sta.driver_arrival y.Sta.driver_arrival_fall
  in
  Alcotest.(check bool) "slack binds at the slower transition" true
    (s.Sta.sp_arrival = slower);
  Alcotest.(check bool) "binding transition labeled" true
    (s.Sta.sp_transition
    = (if y.Sta.driver_arrival_fall > y.Sta.driver_arrival then Sta.Fall
       else Sta.Rise))

(* ------------------------------------------------------------------ *)
(* Multi-corner analysis: [analyze_corners] must be bit-identical —
   reports, counters and cache contents — to N sequential [analyze]
   calls over [corner_design]s whose caches share one patterns store,
   at every jobs value.  Corners derate values, never topology. *)

let test_corners () =
  [ Circuit.Corner.nominal;
    Circuit.Corner.make ~name:"slow" ~wire_res:1.25 ~wire_cap:1.15
      ~cell_drive:1.3 ~cell_cap:1.1 ~cell_intrinsic:1.2 ();
    Circuit.Corner.make ~name:"fast" ~wire_res:0.85 ~wire_cap:0.9
      ~cell_drive:0.75 ~cell_cap:0.95 ~cell_intrinsic:0.85 () ]

let test_corners_match_sequential () =
  let corners = test_corners () in
  List.iter
    (fun (name, build, sparse) ->
      let d = build () in
      ensure_clock d;
      List.iter
        (fun jobs ->
          let cr = Sta.analyze_corners ~sparse ~jobs d corners in
          (* the reference: N independent analyze calls whose private
             caches share one pattern store, in spec order *)
          let patterns = Awe.Cache.create_patterns () in
          let refs =
            List.map
              (fun c ->
                let cache = Sta.create_cache ~patterns () in
                let r =
                  Sta.analyze ~sparse ~jobs ~cache (Sta.corner_design d c)
                in
                (c, r, cache))
              corners
          in
          let tag s = Printf.sprintf "%s jobs=%d: %s" name jobs s in
          Alcotest.(check int) (tag "one run per corner")
            (List.length corners)
            (List.length cr.Sta.runs);
          List.iter2
            (fun run (c, r_ref, cache_ref) ->
              Alcotest.(check string) (tag "spec order preserved")
                c.Circuit.Corner.name run.Sta.run_corner.Circuit.Corner.name;
              check_reports_equal
                (tag ("corner " ^ c.Circuit.Corner.name))
                r_ref run.Sta.run_report;
              Alcotest.(check bool) (tag "cache counters identical") true
                (cache_counters run.Sta.run_report.Sta.stats
                = cache_counters r_ref.Sta.stats);
              match run.Sta.run_cache with
              | None -> Alcotest.fail (tag "corner run lost its cache")
              | Some cache ->
                Alcotest.(check bool)
                  (tag "cache fingerprint identical (incl. pattern tier)")
                  true
                  (Sta.cache_fingerprint cache
                  = Sta.cache_fingerprint cache_ref))
            cr.Sta.runs refs;
          (* summary lines agree with the per-corner reports *)
          List.iter2
            (fun cs run ->
              Alcotest.(check string) (tag "summary order") cs.Sta.cs_name
                run.Sta.run_corner.Circuit.Corner.name;
              Alcotest.(check bool) (tag "summary mirrors the report") true
                (cs.Sta.cs_worst_slack = run.Sta.run_report.Sta.worst_slack
                && cs.Sta.cs_critical_arrival
                   = run.Sta.run_report.Sta.critical_arrival))
            cr.Sta.summary cr.Sta.runs;
          let worst =
            List.fold_left
              (fun acc run ->
                Float.min acc run.Sta.run_report.Sta.worst_slack)
              infinity cr.Sta.runs
          and latest =
            List.fold_left
              (fun acc run ->
                Float.max acc run.Sta.run_report.Sta.critical_arrival)
              neg_infinity cr.Sta.runs
          in
          Alcotest.(check bool) (tag "worst slack overall = min") true
            (cr.Sta.worst_slack_overall = worst);
          Alcotest.(check bool) (tag "critical arrival overall = max") true
            (cr.Sta.critical_arrival_overall = latest);
          Alcotest.(check bool) (tag "worst corner names the min") true
            (List.exists
               (fun run ->
                 run.Sta.run_corner.Circuit.Corner.name = cr.Sta.worst_corner
                 && run.Sta.run_report.Sta.worst_slack = worst)
               cr.Sta.runs))
        [ 1; test_jobs; 8 ])
    [ ("adder", (fun () -> adder_deck ()), true);
      ("grid", (fun () -> Sta.Synth.grid ~rows:4 ~cols:4 ()), true) ]

let test_corners_share_patterns () =
  (* the point of the shared tier: later corners pattern-hit the
     symbolic work corner 1 paid for, so they do strictly fewer
     symbolic factorizations than a corner analyzed with a private
     patterns store *)
  let d = Sta.Synth.grid ~rows:4 ~cols:4 () in
  ensure_clock d;
  let corners = test_corners () in
  let cr = Sta.analyze_corners ~sparse:true ~jobs:1 d corners in
  (match cr.Sta.runs with
  | first :: rest ->
    let hits r = r.Sta.run_report.Sta.stats.Awe.Stats.cache_pattern_hits in
    List.iter
      (fun run ->
        Alcotest.(check bool)
          (run.Sta.run_corner.Circuit.Corner.name
          ^ ": later corner pattern-hits every net")
          true
          (hits run >= hits first))
      rest
  | [] -> Alcotest.fail "no runs");
  (* derates are value-only: per-corner delays differ (critical nets
     may legitimately re-rank — wire and cell derates scale
     unevenly, and the grid has near-symmetric path races) *)
  (match cr.Sta.runs with
  | a :: b :: _ ->
    Alcotest.(check bool) "different delays across corners" true
      (a.Sta.run_report.Sta.critical_arrival
      <> b.Sta.run_report.Sta.critical_arrival)
  | _ -> Alcotest.fail "expected >= 2 runs");
  (* validation *)
  (match Sta.analyze_corners d [] with
  | _ -> Alcotest.fail "empty corner list accepted"
  | exception Invalid_argument _ -> ());
  match
    Sta.analyze_corners d [ Circuit.Corner.nominal; Circuit.Corner.nominal ]
  with
  | _ -> Alcotest.fail "duplicate corner names accepted"
  | exception Invalid_argument _ -> ()

let test_corner_design_derates () =
  (* slow corner: every derate > 1 pushes arrivals out; fast pulls
     them in; nominal is the identity *)
  let d = adder_deck () in
  let base = Sta.analyze ~jobs:1 d in
  let at c = Sta.analyze ~jobs:1 (Sta.corner_design d c) in
  let nominal = at Circuit.Corner.nominal in
  check_reports_equal "nominal corner is the identity" base nominal;
  match test_corners () with
  | [ _; slow; fast ] ->
    Alcotest.(check bool) "slow corner is slower" true
      ((at slow).Sta.critical_arrival > base.Sta.critical_arrival);
    Alcotest.(check bool) "fast corner is faster" true
      ((at fast).Sta.critical_arrival < base.Sta.critical_arrival)
  | _ -> Alcotest.fail "fixture shape"

let test_corner_spec_parser () =
  let spec =
    {|{ "corners": [
        { "name": "typ" },
        { "name": "slow", "wire_res": 1.25, "cell_intrinsic": 1.2 }
    ] }|}
  in
  (match Circuit.Corner.parse_string spec with
  | [ typ; slow ] ->
    Alcotest.(check string) "first name" "typ" typ.Circuit.Corner.name;
    Alcotest.(check (float 0.)) "omitted scale defaults to 1" 1.
      typ.Circuit.Corner.cell_drive;
    Alcotest.(check (float 0.)) "wire_res read" 1.25
      slow.Circuit.Corner.wire_res;
    Alcotest.(check (float 0.)) "cell_intrinsic read" 1.2
      slow.Circuit.Corner.cell_intrinsic;
    Alcotest.(check (float 0.)) "omitted wire_cap defaults to 1" 1.
      slow.Circuit.Corner.wire_cap
  | _ -> Alcotest.fail "expected two corners");
  (* a bare top-level array is also accepted *)
  (match Circuit.Corner.parse_string {|[ { "name": "only" } ]|} with
  | [ c ] -> Alcotest.(check string) "bare array" "only" c.Circuit.Corner.name
  | _ -> Alcotest.fail "bare array rejected");
  let rejects label s =
    match Circuit.Corner.parse_string s with
    | _ -> Alcotest.fail (label ^ " accepted")
    | exception Circuit.Corner.Parse_error _ -> ()
  in
  rejects "unknown field" {|[ { "name": "a", "wire_ohms": 2 } ]|};
  rejects "duplicate name" {|[ { "name": "a" }, { "name": "a" } ]|};
  rejects "empty name" {|[ { "name": "" } ]|};
  rejects "empty list" {|{ "corners": [] }|};
  rejects "non-positive scale" {|[ { "name": "a", "wire_res": 0 } ]|};
  rejects "non-finite scale" {|[ { "name": "a", "wire_cap": 1e999 } ]|};
  rejects "missing name" {|[ { "wire_res": 1.1 } ]|};
  rejects "trailing garbage" {|[ { "name": "a" } ] x|};
  rejects "not json at all" "corner: fast";
  match Circuit.Corner.make ~name:"bad" ~cell_drive:(-1.) () with
  | _ -> Alcotest.fail "negative scale accepted by make"
  | exception Invalid_argument _ -> ()

let test_constraint_cards () =
  (* constraint/clock cards round-trip through the design file and
     feed the same API the programmatic path uses *)
  let d =
    Sta.Design_file.parse_string
      (design_text ^ "constraint net_out 2n\nclock 3n\n")
  in
  Alcotest.(check (list (pair string (float 1e-15)))) "constraint card parsed"
    [ ("net_out", 2e-9) ]
    (Sta.constraints d);
  (match Sta.clock_period d with
  | Some p -> Alcotest.(check (float 1e-15)) "clock card parsed" 3e-9 p
  | None -> Alcotest.fail "clock card dropped");
  let rejects label s =
    match Sta.Design_file.parse_string (design_text ^ s) with
    | _ -> Alcotest.fail (label ^ " accepted")
    | exception Sta.Design_file.Parse_error _ -> ()
    | exception Sta.Malformed _ -> ()
  in
  rejects "negative required" "constraint net_out -1n\n";
  rejects "short constraint" "constraint net_out\n";
  rejects "long constraint" "constraint net_out 1n 2n\n";
  rejects "duplicate constraint"
    "constraint net_out 1n\nconstraint net_out 2n\n";
  rejects "non-positive clock" "clock 0\n";
  rejects "short clock" "clock\n";
  rejects "duplicate clock" "clock 1n\nclock 2n\n";
  (* without any constraint or clock, analysis reports no slacks *)
  let r = Sta.analyze ~jobs:1 (Sta.Design_file.parse_string design_text) in
  Alcotest.(check bool) "unconstrained design has no slack entries" true
    (r.Sta.slacks = [] && r.Sta.worst_slack = infinity)

(* ----- Session: incremental ECO re-timing -------------------------

   The contract under test: after any accepted edit sequence, the
   session's dirty-cone re-time is bit-identical — every report field
   except [stats], whose engine counters legitimately shrink (that is
   the point) — to a cold [Sta.analyze] of the edited design with a
   fresh cache, at every [jobs] value; and the session cache converges
   to the same fingerprint the cold run builds (key refcounting). *)

let check_reports_match name (inc : Sta.report) (cold : Sta.report) =
  Alcotest.(check bool) (name ^ ": nets bit-identical") true
    (inc.Sta.nets = cold.Sta.nets);
  Alcotest.(check bool) (name ^ ": critical arrival bit-identical") true
    (inc.Sta.critical_arrival = cold.Sta.critical_arrival);
  Alcotest.(check (list string)) (name ^ ": critical path")
    cold.Sta.critical_path inc.Sta.critical_path;
  Alcotest.(check bool) (name ^ ": slacks bit-identical") true
    (inc.Sta.slacks = cold.Sta.slacks);
  Alcotest.(check bool) (name ^ ": worst slack bit-identical") true
    (inc.Sta.worst_slack = cold.Sta.worst_slack);
  Alcotest.(check bool) (name ^ ": no failures") true
    (inc.Sta.failures = [] && cold.Sta.failures = [])

let check_session_cold ?(sparse = false) name s =
  let d = Sta.Session.design s in
  let cache = Sta.create_cache () in
  let cold =
    Sta.analyze ~model:Sta.Awe_auto ~sparse ~reduce:false ~jobs:1 ~cache d
  in
  (match Sta.Session.retime s with
  | Ok r -> check_reports_match name r cold
  | Error msg -> Alcotest.failf "%s: retime failed: %s" name msg);
  Alcotest.(check bool) (name ^ ": cache fingerprints equal") true
    (Sta.cache_fingerprint (Sta.Session.cache s) = Sta.cache_fingerprint cache)

let ap s e =
  match Sta.Session.apply s e with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "apply failed: %s" msg

let constrained_chain () =
  let d = chain () in
  Sta.add_constraint d ~net:"net_out" ~required:2e-9;
  Sta.set_clock d ~period:3e-9;
  d

let test_session_initial () =
  let s = Sta.Session.create ~reduce:false (constrained_chain ()) in
  check_session_cold "initial analysis" s;
  Alcotest.(check int) "nothing pending" 0 (Sta.Session.pending_edits s)

let test_session_value_edits () =
  let s = Sta.Session.create ~reduce:false (constrained_chain ()) in
  let step name e =
    ap s e;
    check_session_cold name s
  in
  step "set_r" (Sta.Session.Set_resistance { net = "net_mid"; index = 0; value = 350. });
  step "set_c" (Sta.Session.Set_capacitance { net = "net_out"; index = 0; value = 80e-15 });
  step "set_drive" (Sta.Session.Set_drive { inst = "u1"; value = 420. });
  step "set_pin_cap" (Sta.Session.Set_pin_cap { inst = "u2"; value = 55e-15 });
  step "set_intrinsic" (Sta.Session.Set_intrinsic { inst = "u3"; value = 95e-12 });
  step "set_constraint" (Sta.Session.Set_constraint { net = "net_out"; required = 1.5e-9 });
  step "set_clock" (Sta.Session.Set_clock { period = 2.5e-9 });
  step "remove_clock" Sta.Session.Remove_clock;
  step "remove_constraint" (Sta.Session.Remove_constraint { net = "net_out" });
  (* a burst of edits pays one propagation at the next retime *)
  ap s (Sta.Session.Set_resistance { net = "net_in"; index = 0; value = 120. });
  ap s (Sta.Session.Set_clock { period = 2e-9 });
  Alcotest.(check int) "two pending" 2 (Sta.Session.pending_edits s);
  check_session_cold "batched edits" s

let test_session_dirty_cone () =
  (* a single deep edit must not re-solve the whole design *)
  let s = Sta.Session.create ~reduce:false (constrained_chain ()) in
  ap s (Sta.Session.Set_resistance { net = "net_out"; index = 0; value = 400. });
  (match Sta.Session.retime s with
  | Error m -> Alcotest.failf "retime: %s" m
  | Ok r ->
    let dirty = r.Sta.stats.Awe.Stats.eco_dirty_nets
    and reused = r.Sta.stats.Awe.Stats.eco_reused_nets in
    Alcotest.(check int) "every net classified once" 4 (dirty + reused);
    Alcotest.(check bool)
      (Printf.sprintf "cone is partial (dirty %d)" dirty)
      true
      (dirty >= 1 && dirty <= 2));
  let tot = Sta.Session.totals s in
  Alcotest.(check int) "edits counted" 1 tot.Sta.Session.total_edits;
  Alcotest.(check int) "no fallbacks" 0 tot.Sta.Session.total_fallbacks

let test_session_revert () =
  let s = Sta.Session.create ~reduce:false (constrained_chain ()) in
  let r0 = Sta.Session.report s in
  let fp0 = Sta.cache_fingerprint (Sta.Session.cache s) in
  ap s (Sta.Session.Set_resistance { net = "net_mid"; index = 1; value = 900. });
  ap s (Sta.Session.Set_drive { inst = "u2"; value = 333. });
  ap s (Sta.Session.Set_clock { period = 9e-9 });
  (match Sta.Session.retime s with
  | Ok r ->
    Alcotest.(check bool) "edited report differs" true (r.Sta.nets <> r0.Sta.nets)
  | Error m -> Alcotest.failf "retime: %s" m);
  Alcotest.(check int) "three reverts" 3 (Sta.Session.revert_all s);
  (match Sta.Session.retime s with
  | Ok r -> check_reports_match "revert restores the report" r r0
  | Error m -> Alcotest.failf "retime after revert: %s" m);
  Alcotest.(check bool) "revert restores the cache fingerprint" true
    (Sta.cache_fingerprint (Sta.Session.cache s) = fp0)

(* two parallel routes into u3; only one is a logical input, so a
   sink swap is a pure connectivity edit on prebuilt wires *)
let swap_fixture () =
  let d = Sta.create () in
  Sta.add_gate d ~inst:"u1" ~cell:buf ~inputs:[ "a" ] ~output:"y1";
  Sta.add_gate d ~inst:"u2" ~cell:inv ~inputs:[ "a" ] ~output:"y2";
  Sta.add_gate d ~inst:"u3" ~cell:inv ~inputs:[ "y1" ] ~output:"z";
  Sta.add_net d ~name:"a"
    ~segments:
      [ seg ~from_:"drv" ~to_:"u1" ~r:100. ~c:25e-15;
        seg ~from_:"drv" ~to_:"u2" ~r:140. ~c:30e-15 ];
  Sta.add_net d ~name:"y1"
    ~segments:
      [ seg ~from_:"drv" ~to_:"w1" ~r:200. ~c:40e-15;
        seg ~from_:"w1" ~to_:"u3" ~r:150. ~c:35e-15;
        seg ~from_:"w1" ~to_:"stub" ~r:50. ~c:8e-15 ];
  Sta.add_net d ~name:"y2" ~segments:[ seg ~from_:"drv" ~to_:"u3" ~r:320. ~c:60e-15 ];
  Sta.add_net d ~name:"z" ~segments:[ seg ~from_:"drv" ~to_:"end" ~r:10. ~c:1e-15 ];
  Sta.add_primary_input d ~net:"a" ~slew:120e-12 ();
  Sta.add_primary_output d ~net:"z";
  Sta.set_clock d ~period:2e-9;
  d

let test_session_topology_edits () =
  let s = Sta.Session.create ~reduce:false (swap_fixture ()) in
  check_session_cold "pre-swap" s;
  ap s (Sta.Session.Swap_sink { inst = "u3"; from_net = "y1"; to_net = "y2" });
  check_session_cold "swap_sink" s;
  (* the swap's undo image is a Set_inputs edit *)
  (match Sta.Session.revert s with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "revert swap: %s" m);
  check_session_cold "swap reverted" s;
  ap s (Sta.Session.Set_inputs { inst = "u3"; inputs = [ "y1"; "y2" ] });
  check_session_cold "set_inputs widens the cone" s;
  (* rehang y1's stub off the driver root instead of w1 *)
  ap s (Sta.Session.Reroute { net = "y1"; index = 2; seg_from = "drv"; seg_to = "stub" });
  check_session_cold "reroute" s

let test_session_apply_validation () =
  let s = Sta.Session.create ~reduce:false (chain ()) in
  let r0 = Sta.Session.report s in
  let rejects label e =
    match Sta.Session.apply s e with
    | Ok () -> Alcotest.failf "%s accepted" label
    | Error _ -> ()
  in
  rejects "unknown net" (Sta.Session.Set_resistance { net = "nope"; index = 0; value = 1. });
  rejects "index out of range" (Sta.Session.Set_resistance { net = "net_in"; index = 5; value = 1. });
  rejects "non-positive resistance" (Sta.Session.Set_resistance { net = "net_in"; index = 0; value = 0. });
  rejects "negative capacitance" (Sta.Session.Set_capacitance { net = "net_in"; index = 0; value = -1e-15 });
  rejects "non-finite value" (Sta.Session.Set_resistance { net = "net_in"; index = 0; value = nan });
  rejects "unknown inst" (Sta.Session.Set_drive { inst = "nope"; value = 100. });
  rejects "non-positive drive" (Sta.Session.Set_drive { inst = "u1"; value = 0. });
  rejects "negative required" (Sta.Session.Set_constraint { net = "net_out"; required = -1. });
  rejects "absent constraint" (Sta.Session.Remove_constraint { net = "net_out" });
  rejects "absent clock" Sta.Session.Remove_clock;
  rejects "detached swap target"
    (Sta.Session.Swap_sink { inst = "u2"; from_net = "net_mid"; to_net = "net_in" });
  rejects "not an input"
    (Sta.Session.Swap_sink { inst = "u2"; from_net = "net_out"; to_net = "net_mid" });
  rejects "empty inputs" (Sta.Session.Set_inputs { inst = "u2"; inputs = [] });
  Alcotest.(check int) "rejected edits leave nothing pending" 0
    (Sta.Session.pending_edits s);
  match Sta.Session.retime s with
  | Ok r -> check_reports_match "rejected edits mutate nothing" r r0
  | Error m -> Alcotest.failf "retime: %s" m

(* random edit stream over the shared random layered DAGs *)
let random_edit st d =
  let pick l = List.nth l (Random.State.int st (List.length l)) in
  let nets = Sta.net_names d in
  let seg_edit mk =
    let net = pick nets in
    let segs = Option.get (Sta.net_segments d net) in
    mk net (Random.State.int st (List.length segs))
  in
  let gate () =
    let inst, _, _, _ = pick (Sta.gate_details d) in
    inst
  in
  match Random.State.int st 8 with
  | 0 | 1 ->
    seg_edit (fun net index ->
        Sta.Session.Set_resistance
          { net; index; value = 20. +. Random.State.float st 800. })
  | 2 | 3 ->
    seg_edit (fun net index ->
        Sta.Session.Set_capacitance
          { net; index; value = Random.State.float st 80e-15 })
  | 4 -> Sta.Session.Set_drive { inst = gate (); value = 100. +. Random.State.float st 900. }
  | 5 -> Sta.Session.Set_pin_cap { inst = gate (); value = Random.State.float st 60e-15 }
  | 6 -> Sta.Session.Set_intrinsic { inst = gate (); value = Random.State.float st 120e-12 }
  | _ ->
    if Random.State.bool st then
      Sta.Session.Set_clock { period = 1e-9 +. Random.State.float st 4e-9 }
    else
      Sta.Session.Set_constraint
        { net = pick nets; required = Random.State.float st 3e-9 }

let test_session_metamorphic () =
  List.iter
    (fun jobs ->
      for seed = 0 to 3 do
        let st = Random.State.make [| 0xEC0; seed |] in
        let d = random_design st ~nets:12 in
        (* give the fabric endpoints so constraint edits bite *)
        let consumed =
          List.concat_map (fun (_, _, ins, _) -> ins) (Sta.gate_details d)
        in
        List.iter
          (fun n -> if not (List.mem n consumed) then Sta.add_primary_output d ~net:n)
          (Sta.net_names d);
        let sparse = seed mod 2 = 1 in
        let s = Sta.Session.create ~sparse ~reduce:false ~jobs d in
        let tag round =
          Printf.sprintf "jobs %d seed %d round %d" jobs seed round
        in
        for round = 0 to 5 do
          for _ = 0 to Random.State.int st 2 do
            ap s (random_edit st d)
          done;
          (* interleave user-level undo with fresh edits *)
          if round = 3 then
            match Sta.Session.revert s with
            | Ok _ | Error _ -> ()
          else ();
          check_session_cold ~sparse (tag round) s
        done;
        let tot = Sta.Session.totals s in
        Alcotest.(check int) (tag 9 ^ ": no fallbacks") 0
          tot.Sta.Session.total_fallbacks
      done)
    [ 1; 4; 8 ]

let test_session_revert_all_metamorphic () =
  for seed = 0 to 3 do
    let st = Random.State.make [| 0x0EC0; seed |] in
    let d = random_design st ~nets:10 in
    let s = Sta.Session.create ~reduce:false ~jobs:test_jobs d in
    let r0 = Sta.Session.report s in
    let fp0 = Sta.cache_fingerprint (Sta.Session.cache s) in
    for _ = 0 to 7 do
      ap s (random_edit st d)
    done;
    (match Sta.Session.retime s with
    | Ok _ -> ()
    | Error m -> Alcotest.failf "seed %d: retime: %s" seed m);
    ignore (Sta.Session.revert_all s);
    (match Sta.Session.retime s with
    | Ok r -> check_reports_match (Printf.sprintf "seed %d restored" seed) r r0
    | Error m -> Alcotest.failf "seed %d: retime after revert: %s" seed m);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: fingerprint restored" seed)
      true
      (Sta.cache_fingerprint (Sta.Session.cache s) = fp0)
  done

(* ----- Serve: the line protocol over a session --------------------- *)

let deck_path () =
  match
    List.find_opt Sys.file_exists
      [ "../../decks/adder_stage.sta"; "decks/adder_stage.sta" ]
  with
  | Some p -> p
  | None -> Alcotest.failf "decks/adder_stage.sta not found"

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let expect_ok t name line =
  let r = Sta.Serve.handle t line in
  Alcotest.(check bool)
    (Printf.sprintf "%s: ok response (%s)" name r.Sta.Serve.body)
    true
    (starts_with {|{"ok":true|} r.Sta.Serve.body);
  r

let expect_err t name line =
  let r = Sta.Serve.handle t line in
  Alcotest.(check bool)
    (Printf.sprintf "%s: error response (%s)" name r.Sta.Serve.body)
    true
    (starts_with {|{"ok":false,"error":|} r.Sta.Serve.body);
  Alcotest.(check bool) (name ^ ": does not quit") false r.Sta.Serve.quit;
  r

let test_serve_protocol () =
  let t = Sta.Serve.create ~reduce:false () in
  ignore (expect_err t "timing before load" "timing");
  ignore (expect_err t "edit before load" "edit set_clock 1n");
  ignore (expect_err t "bare load" "load");
  ignore (expect_err t "missing file" "load /nonexistent/x.sta");
  let r = expect_ok t "load" ("load " ^ deck_path ()) in
  Alcotest.(check bool) "load reports nets" true
    (contains {|"nets":7|} r.Sta.Serve.body);
  Alcotest.(check bool) "session live" true (Sta.Serve.session t <> None);
  ignore (expect_err t "bad float" "edit set_r out 0 abc");
  ignore (expect_err t "bad index" "edit set_r out nine 100");
  ignore (expect_err t "unknown net" "edit set_r nonesuch 0 100");
  ignore (expect_err t "unknown edit kind" "edit teleport out");
  ignore (expect_err t "truncated edit" "edit set_r out");
  ignore (expect_ok t "value edit" "edit set_r out 0 450");
  ignore (expect_ok t "second edit" "edit set_c n3 0 40e-15");
  let r = expect_ok t "timing" "timing" in
  Alcotest.(check bool) "timing reports the dirty cone" true
    (contains {|"dirty_nets":|} r.Sta.Serve.body);
  let r = expect_ok t "timing with options" "timing --slack --top-k 3" in
  Alcotest.(check bool) "slack table present" true
    (contains {|"slacks":[|} r.Sta.Serve.body);
  Alcotest.(check bool) "paths present" true
    (contains {|"paths":[|} r.Sta.Serve.body);
  ignore (expect_err t "bad top-k" "timing --top-k many");
  ignore (expect_err t "unknown option" "timing --fast");
  let r = expect_ok t "stats" "stats" in
  Alcotest.(check bool) "stats counts edits" true
    (contains {|"eco_edits":2|} r.Sta.Serve.body);
  ignore (expect_ok t "revert" "revert");
  ignore (expect_ok t "revert all" "revert all");
  ignore (expect_err t "revert empty" "revert");
  ignore (expect_err t "unknown command" "frobnicate 1 2");
  ignore (expect_err t "empty line" "");
  ignore (expect_err t "blank line" " \t ");
  let r = expect_ok t "quit" "quit" in
  Alcotest.(check bool) "quit closes" true r.Sta.Serve.quit

let test_serve_matches_session () =
  (* the protocol surface drives the same session the API does *)
  let t = Sta.Serve.create ~reduce:false () in
  ignore (expect_ok t "load" ("load " ^ deck_path ()));
  ignore (expect_ok t "edit" "edit set_drive u4 240");
  ignore (expect_ok t "timing" "timing");
  match Sta.Serve.session t with
  | None -> Alcotest.fail "no session after load"
  | Some s -> check_session_cold "serve-driven session" s

let () =
  Alcotest.run "sta"
    [ ( "timing",
        [ Alcotest.test_case "chain arrivals" `Quick
            test_chain_arrival_monotone;
          Alcotest.test_case "critical path" `Quick test_chain_critical_path;
          Alcotest.test_case "elmore vs awe" `Quick test_models_agree_roughly;
          Alcotest.test_case "awe matches simulation" `Quick
            test_awe_delay_matches_simulation;
          Alcotest.test_case "fanout" `Quick test_fanout_net;
          Alcotest.test_case "slew propagation" `Quick test_slew_propagates ] );
      ( "design_file",
        [ Alcotest.test_case "matches API build" `Quick
            test_design_file_matches_api;
          Alcotest.test_case "header values" `Quick
            test_design_file_header_values;
          Alcotest.test_case "errors" `Quick test_design_file_errors;
          Alcotest.test_case "input parameters" `Quick
            test_design_file_input_params ] );
      ( "validation",
        [ Alcotest.test_case "cycle detection" `Quick test_cycle_detected;
          Alcotest.test_case "malformed" `Quick test_malformed_detected;
          Alcotest.test_case "cell values" `Quick test_cell_validation;
          Alcotest.test_case "duplicate primary I/O" `Quick
            test_duplicate_io_rejected;
          Alcotest.test_case "duplicate file cards" `Quick
            test_design_file_duplicate_cards ] );
      ( "shared_engine",
        [ Alcotest.test_case "one factorization per net" `Quick
            test_one_factorization_per_net;
          Alcotest.test_case "batch matches per-sink (adder)" `Quick
            test_batch_matches_per_sink_adder ] );
      ( "parallel",
        [ Alcotest.test_case "jobs-deterministic (adder deck)" `Quick
            test_jobs_deterministic_adder;
          Alcotest.test_case "jobs-deterministic (random designs)" `Quick
            test_jobs_deterministic_random;
          Alcotest.test_case "strict aborts on a broken net" `Quick
            test_strict_raises;
          Alcotest.test_case "non-strict isolates the broken net" `Quick
            test_non_strict_isolates ] );
      ( "cache",
        [ Alcotest.test_case "cache-on/off identity (adder deck)" `Quick
            test_cache_identity_adder;
          Alcotest.test_case "cache-on/off identity (random designs)" `Quick
            test_cache_identity_random;
          Alcotest.test_case "cached runs jobs-deterministic" `Quick
            test_cache_jobs_deterministic ] );
      ( "reduce",
        [ Alcotest.test_case "jobs-deterministic, off-agreement" `Quick
            test_reduce_jobs_deterministic ] );
      ( "synth",
        [ Alcotest.test_case "generator shapes" `Quick test_synth_shapes;
          Alcotest.test_case "jobs-deterministic (synthetic designs)" `Quick
            test_jobs_deterministic_synth;
          Alcotest.test_case "sharded merge = sequential publication" `Quick
            test_shard_merge_property ] );
      ( "slack",
        [ Alcotest.test_case "report invariants" `Quick test_slack_consistency;
          Alcotest.test_case "delta-tightening metamorphic" `Quick
            test_slack_tightening_metamorphic;
          Alcotest.test_case "top-K path properties" `Quick
            test_top_k_paths_properties;
          Alcotest.test_case "path-trace re-sum oracle" `Quick
            test_path_trace_oracle;
          Alcotest.test_case "adder golden path" `Quick test_adder_golden_path;
          Alcotest.test_case "rise/fall symmetry" `Quick
            test_rise_fall_symmetric_at_half;
          Alcotest.test_case "constraint and clock cards" `Quick
            test_constraint_cards ] );
      ( "corners",
        [ Alcotest.test_case "bit-identical to sequential analyses" `Quick
            test_corners_match_sequential;
          Alcotest.test_case "pattern tier shared across corners" `Quick
            test_corners_share_patterns;
          Alcotest.test_case "corner derates move arrivals" `Quick
            test_corner_design_derates;
          Alcotest.test_case "spec parser" `Quick test_corner_spec_parser ] );
      ( "session",
        [ Alcotest.test_case "initial analysis matches cold" `Quick
            test_session_initial;
          Alcotest.test_case "value edits, every kind" `Quick
            test_session_value_edits;
          Alcotest.test_case "dirty cone is partial" `Quick
            test_session_dirty_cone;
          Alcotest.test_case "revert restores report and cache" `Quick
            test_session_revert;
          Alcotest.test_case "topology edits" `Quick test_session_topology_edits;
          Alcotest.test_case "rejected edits mutate nothing" `Quick
            test_session_apply_validation;
          Alcotest.test_case "metamorphic edit streams" `Slow
            test_session_metamorphic;
          Alcotest.test_case "edit/revert-all fingerprint identity" `Quick
            test_session_revert_all_metamorphic ] );
      ( "serve",
        [ Alcotest.test_case "protocol round-trip" `Quick test_serve_protocol;
          Alcotest.test_case "protocol drives the same session" `Quick
            test_serve_matches_session ] ) ]
