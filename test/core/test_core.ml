(* Tests for the AWE core: moments, matching, residues, error
   estimation, the driver, and the paper-specific claims. *)

open Circuit

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let rel ?(tol = 1e-6) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s (want %.6g got %.6g)" msg expected actual)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1. (Float.abs expected))

(* exact-vs-approx error of the transient part, the paper's error
   measure: both waveforms relative to the exact final value *)
let transient_error wex wap =
  let vf = Waveform.final_value wex in
  let num = Waveform.l2_error wex wap in
  let den =
    Waveform.l2_norm
      (Waveform.create wex.Waveform.times
         (Array.map (fun v -> v -. vf) wex.Waveform.values))
  in
  num /. den

let simulate_node sys node ~t_stop ~steps =
  let r = Transim.Transient.simulate sys ~t_stop ~steps in
  Transim.Transient.node_waveform r node

(* ------------------------------------------------------------------ *)
(* Moments *)

let single_rc ~r ~c ~v =
  let b = Netlist.create () in
  Netlist.add_v b "v1" "in" "0" (Element.Step { v0 = 0.; v1 = v });
  Netlist.add_r b "r1" "in" "out" r;
  Netlist.add_c b "c1" "out" "0" c;
  let out = Netlist.node b "out" in
  (Mna.build (Netlist.freeze b), out)

let moments_of sys node count =
  let e = Awe.Moments.make sys in
  let op0 = Dc.initial sys in
  let op0p = Dc.at_zero_plus sys op0 in
  let prob = Awe.Moments.base_problem e op0p in
  Awe.Moments.mu
    (Awe.Moments.vectors e prob ~count)
    ~out_var:(Mna.node_var sys node)

let test_moments_single_rc () =
  (* mu_j = -v (-RC)^j analytically *)
  let r = 1e3 and c = 1e-6 and v = 5. in
  let sys, out = single_rc ~r ~c ~v in
  let mu = moments_of sys out 5 in
  Array.iteri
    (fun j got ->
      rel ~tol:1e-12
        (Printf.sprintf "mu_%d" j)
        (-.v *. Float.pow (-.(r *. c)) (float_of_int j))
        got)
    mu

let test_moments_fig4_first_moment_is_elmore () =
  let f4 = Samples.fig4 () in
  let sys = Mna.build f4.Samples.circuit in
  let mu = moments_of sys f4.Samples.n4 2 in
  check_close "mu0 = -5" (-5.) mu.(0);
  check_close ~tol:1e-12 "mu1 = 5 T_D" (5. *. Samples.fig4_elmore_n4) mu.(1)

let test_moments_charge_neutral_on_floating_group () =
  let f22, _ = Samples.fig22 () in
  let sys = Mna.build f22.Samples.circuit in
  let e = Awe.Moments.make sys in
  let op0 = Dc.initial sys in
  let op0p = Dc.at_zero_plus sys op0 in
  let prob = Awe.Moments.base_problem e op0p in
  (* the homogeneous initial vector carries no conserved group charge *)
  let q = Mna.charges_of sys prob.Awe.Moments.x_h0 in
  check_close ~tol:1e-22 "neutral x_h0" 0. q.(0);
  (* and stays neutral under the recursion *)
  let w1 = Awe.Moments.advance e prob.Awe.Moments.x_h0 in
  let q1 = Mna.charges_of sys w1 in
  check_close ~tol:1e-30 "neutral w1" 0. q1.(0)

let test_ramp_kernel_zero_state () =
  let f4 = Samples.fig4 () in
  let sys = Mna.build f4.Samples.circuit in
  let e = Awe.Moments.make sys in
  let k = Awe.Moments.ramp_kernel e ~src_col:0 in
  (* x(0) = 0 means x_h(0) = -d0 *)
  Alcotest.(check bool) "x_h0 = -d0" true
    (Linalg.Vec.approx_equal ~tol:1e-12
       (Linalg.Vec.neg k.Awe.Moments.d0)
       k.Awe.Moments.x_h0)

let test_mu_slope_rc () =
  (* at 0+ an RC output starts rising at V/(RC); transient slope is
     xdot - d1 = V/(RC) for a step (d1 = 0) *)
  let sys, out = single_rc ~r:1e3 ~c:1e-6 ~v:5. in
  let e = Awe.Moments.make sys in
  let op0 = Dc.initial sys in
  let op0p = Dc.at_zero_plus sys op0 in
  let prob = Awe.Moments.base_problem e op0p in
  match Awe.Moments.mu_slope prob ~out_var:(Mna.node_var sys out) with
  | Some s -> rel ~tol:1e-9 "slope" 5e3 s
  | None -> Alcotest.fail "slope should be available"

(* ------------------------------------------------------------------ *)
(* Moment matching *)

let mu_from poles residues count =
  Array.init count (fun j ->
      List.fold_left2
        (fun acc p k -> acc +. (k *. Float.pow (1. /. p) (float_of_int j)))
        0. poles residues)

let test_match_two_poles () =
  let mu = mu_from [ -2.; -30. ] [ 1.5; -0.5 ] 4 in
  let terms = Awe.Moment_match.fit ~q:2 mu in
  let poles = Awe.Approx.transient_poles terms in
  (match poles with
  | [ p1; p2 ] ->
    rel ~tol:1e-9 "p1" (-2.) p1.Linalg.Cx.re;
    rel ~tol:1e-9 "p2" (-30.) p2.Linalg.Cx.re
  | _ -> Alcotest.fail "expected 2 poles");
  (* time-domain evaluation matches the source model *)
  List.iter
    (fun t ->
      rel ~tol:1e-9
        (Printf.sprintf "value at %g" t)
        ((1.5 *. exp (-2. *. t)) -. (0.5 *. exp (-30. *. t)))
        (Awe.Approx.eval_transient terms t))
    [ 0.; 0.1; 0.5; 2. ]

let test_match_scaling_invariance () =
  let sorted terms =
    List.sort Linalg.Cx.compare_by_magnitude
      (Awe.Approx.transient_poles terms)
  in
  (* O(1) poles: scaled and unscaled paths agree *)
  let mu_slow = mu_from [ -2.; -30. ] [ 4.; 1. ] 4 in
  List.iter2
    (fun pa pb ->
      Alcotest.(check bool)
        (Format.asprintf "poles equal (%a vs %a)" Linalg.Cx.pp pa
           Linalg.Cx.pp pb)
        true
        (Linalg.Cx.abs Linalg.Cx.(pa -: pb) < 1e-6 *. Linalg.Cx.abs pa))
    (sorted (Awe.Moment_match.fit ~scale:true ~q:2 mu_slow))
    (sorted (Awe.Moment_match.fit ~scale:false ~q:2 mu_slow));
  (* GHz-scale poles (paper Section 3.5): the unscaled moment matrix
     collapses numerically while the scaled one succeeds *)
  let mu_fast = mu_from [ -2e9; -3e10 ] [ 4.; 1. ] 4 in
  (match Awe.Moment_match.fit ~scale:false ~q:2 mu_fast with
  | _ -> Alcotest.fail "unscaled fit should collapse"
  | exception Awe.Moment_match.No_fit _ -> ());
  match sorted (Awe.Moment_match.fit ~scale:true ~q:2 mu_fast) with
  | [ p1; p2 ] ->
    rel ~tol:1e-6 "fast p1" (-2e9) p1.Linalg.Cx.re;
    rel ~tol:1e-6 "fast p2" (-3e10) p2.Linalg.Cx.re
  | _ -> Alcotest.fail "expected two poles"

let test_match_detects_instability () =
  (* moments of a growing exponential *)
  let mu = mu_from [ 2. ] [ 1. ] 2 in
  match Awe.Moment_match.fit ~q:1 mu with
  | _ -> Alcotest.fail "expected Unstable"
  | exception Awe.Moment_match.Unstable _ -> ()

let test_match_degenerate_detected () =
  let mu = mu_from [ -2. ] [ 1. ] 4 in
  match Awe.Moment_match.fit ~q:2 mu with
  | _ -> Alcotest.fail "expected No_fit"
  | exception Awe.Moment_match.No_fit _ -> ()

let test_match_slope_condition () =
  (* q = 2 with slope matching: model value and slope at 0 are pinned *)
  let mu = mu_from [ -1.; -8. ] [ 2.; 1. ] 4 in
  let slope = (2. *. -1.) +. (1. *. -8.) in
  let terms = Awe.Moment_match.fit ~slope ~q:2 mu in
  let dt = 1e-7 in
  let v0 = Awe.Approx.eval_transient terms 0. in
  let v1 = Awe.Approx.eval_transient terms dt in
  rel ~tol:1e-9 "initial value" 3. v0;
  rel ~tol:1e-4 "initial slope" slope ((v1 -. v0) /. dt)

let test_scale_factor () =
  let mu = mu_from [ -1e9 ] [ 1. ] 4 in
  rel ~tol:1e-9 "tau estimate" 1e-9 (Awe.Moment_match.scale_factor mu)

let test_condition_number_improves_with_scaling () =
  let mu = mu_from [ -1e9; -4e9; -4e10 ] [ 1.; 2.; 0.5 ] 6 in
  let unscaled = Awe.Moment_match.condition_number ~scale:false ~q:3 mu in
  let scaled = Awe.Moment_match.condition_number ~scale:true ~q:3 mu in
  Alcotest.(check bool)
    (Printf.sprintf "scaling helps (%g vs %g)" scaled unscaled)
    true (scaled > unscaled)

(* ------------------------------------------------------------------ *)
(* Approx evaluation *)

let test_approx_complex_pair_real_eval () =
  let terms =
    [ { Awe.Approx.pole = Linalg.Cx.make (-1.) 3.;
        coeffs = [| Linalg.Cx.make 0.5 (-0.2) |] };
      { Awe.Approx.pole = Linalg.Cx.make (-1.) (-3.);
        coeffs = [| Linalg.Cx.make 0.5 0.2 |] } ]
  in
  (* 2 Re(k e^(pt)) with k = 0.5-0.2j, p = -1+3j *)
  List.iter
    (fun t ->
      let expected =
        2. *. exp (-.t) *. ((0.5 *. cos (3. *. t)) +. (0.2 *. sin (3. *. t)))
      in
      rel ~tol:1e-9
        (Printf.sprintf "t=%g" t)
        expected
        (Awe.Approx.eval_transient terms t))
    [ 0.; 0.3; 1.; 2.5 ]

let test_approx_repeated_pole_eval () =
  (* (2 + 3t) e^(-t): coeffs are [2; 3] with the t^i/i! convention *)
  let terms =
    [ { Awe.Approx.pole = Linalg.Cx.re (-1.);
        coeffs = [| Linalg.Cx.re 2.; Linalg.Cx.re 3. |] } ]
  in
  List.iter
    (fun t ->
      rel ~tol:1e-12
        (Printf.sprintf "t=%g" t)
        ((2. +. (3. *. t)) *. exp (-.t))
        (Awe.Approx.eval_transient terms t))
    [ 0.; 0.5; 1.; 4. ]

let test_zeros_two_pole () =
  (* N(s) = k1 (s - p2) + k2 (s - p1): zero at (k1 p2 + k2 p1)/(k1+k2) *)
  let terms =
    [ { Awe.Approx.pole = Linalg.Cx.re (-2.); coeffs = [| Linalg.Cx.re 3. |] };
      { Awe.Approx.pole = Linalg.Cx.re (-10.); coeffs = [| Linalg.Cx.re 1. |] } ]
  in
  (match Awe.Approx.zeros terms with
  | [ z ] ->
    rel ~tol:1e-9 "zero location" ((3. *. -10. +. 1. *. -2.) /. 4.) z.Linalg.Cx.re
  | zs -> Alcotest.failf "expected one zero, got %d" (List.length zs));
  (* single pole: no zeros *)
  Alcotest.(check int) "single pole" 0
    (List.length
       (Awe.Approx.zeros
          [ { Awe.Approx.pole = Linalg.Cx.re (-1.);
              coeffs = [| Linalg.Cx.re 2. |] } ]))

let test_zeros_of_fitted_models () =
  (* the order-2 fit of a monotone RC response has one real zero lying
     between its two poles (the zero is the residue-weighted average of
     the opposite poles); with a nonequilibrium IC the zero moves,
     reweighting how much each natural frequency contributes (the
     mechanism the paper describes in Section 5.2) *)
  let fit v_c6 =
    let f = Samples.fig16 ~v_c6 ~wave:(Element.Step { v0 = 0.; v1 = 5. }) () in
    let sys = Mna.build f.Samples.circuit in
    (Awe.approximate sys ~node:f.Samples.output ~q:2).Awe.base
  in
  let zero_of terms =
    match Awe.Approx.zeros terms with
    | [ z ] -> z
    | zs -> Alcotest.failf "expected one zero, got %d" (List.length zs)
  in
  let no_ic = fit 0. in
  (match Awe.Approx.transient_poles no_ic with
  | [ p1; p2 ] ->
    (* the smooth no-IC response barely excites the fast pole, so the
       fit's zero sits near it (within a factor of 2), far above the
       dominant pole *)
    let z = zero_of no_ic in
    let ratio = Linalg.Cx.abs z /. Linalg.Cx.abs p2 in
    Alcotest.(check bool)
      (Format.asprintf "zero %a shadows the fast pole %a (ratio %.2f)"
         Linalg.Cx.pp z Linalg.Cx.pp p2 ratio)
      true
      (ratio > 0.5 && ratio < 2. && Linalg.Cx.abs z > 3. *. Linalg.Cx.abs p1)
  | _ -> Alcotest.fail "expected two poles");
  let with_ic = fit 5.0 in
  let z0 = zero_of no_ic and z1 = zero_of with_ic in
  Alcotest.(check bool)
    (Format.asprintf "IC moves the zero (%a vs %a)" Linalg.Cx.pp z0
       Linalg.Cx.pp z1)
    true
    (Linalg.Cx.abs (Linalg.Cx.( -: ) z0 z1) > 0.05 *. Linalg.Cx.abs z0)

let test_response_superposition () =
  (* two shifted copies of a decaying component cancel in steady state *)
  let tr = [ { Awe.Approx.pole = Linalg.Cx.re (-1.); coeffs = [| Linalg.Cx.re (-1.) |] } ] in
  let comps =
    [ { Awe.Approx.t_shift = 0.; scale = 1.; p_const = 0.; p_slope = 1.; transient = tr };
      { Awe.Approx.t_shift = 1.; scale = -1.; p_const = 0.; p_slope = 1.; transient = tr } ]
  in
  (* before t = 1 only the first component is active:
     v = t - e^(-t) *)
  rel ~tol:1e-12 "at 0.5" (0.5 -. exp (-0.5)) (Awe.Approx.eval comps 0.5);
  (* after t = 1 the slopes cancel *)
  rel ~tol:1e-12 "at 3"
    ((3. -. exp (-3.)) -. (2. -. exp (-2.)))
    (Awe.Approx.eval comps 3.);
  check_close ~tol:1e-12 "steady value" 1. (Awe.Approx.steady_value comps)

let test_steady_value_rejects_unbounded () =
  let comps =
    [ { Awe.Approx.t_shift = 0.; scale = 2.; p_const = 0.; p_slope = 1.; transient = [] } ]
  in
  match Awe.Approx.steady_value comps with
  | _ -> Alcotest.fail "expected failure"
  | exception Invalid_argument _ -> ()

let test_crossing_time_bisection () =
  let tr = [ { Awe.Approx.pole = Linalg.Cx.re (-1e3); coeffs = [| Linalg.Cx.re (-5.) |] } ] in
  let comps = [ { Awe.Approx.t_shift = 0.; scale = 1.; p_const = 5.; p_slope = 0.; transient = tr } ] in
  match Awe.Approx.crossing_time comps ~threshold:2.5 ~t_max:0.01 with
  | Some t -> rel ~tol:1e-9 "50% crossing" (log 2. /. 1e3) t
  | None -> Alcotest.fail "expected crossing"

(* ------------------------------------------------------------------ *)
(* Error estimation *)

let term p k =
  { Awe.Approx.pole = Linalg.Cx.re p; coeffs = [| Linalg.Cx.re k |] }

let test_l2_norm_single_exponential () =
  (* integral of (k e^(pt))^2 = k^2 / (-2p) *)
  rel ~tol:1e-12 "norm" (4. /. 6.) (Awe.Error_est.l2_norm_sq [ term (-3.) 2. ])

let test_l2_distance_identical_zero () =
  let a = [ term (-1.) 2.; term (-5.) (-1.) ] in
  check_close ~tol:1e-12 "self distance" 0. (Awe.Error_est.l2_distance a a)

let test_l2_distance_analytic () =
  (* || e^-t - e^-2t ||^2 = 1/2 - 2/3 + 1/4 = 1/12 *)
  rel ~tol:1e-12 "distance" (sqrt (1. /. 12.))
    (Awe.Error_est.l2_distance [ term (-1.) 1. ] [ term (-2.) 1. ])

let test_l2_complex_pair_norm () =
  (* f(t) = 2 e^-t cos t; ||f||^2 = 4 * integral e^-2t cos^2 t = 4*(1/4 + ...) *)
  let a =
    [ { Awe.Approx.pole = Linalg.Cx.make (-1.) 1.; coeffs = [| Linalg.Cx.one |] };
      { Awe.Approx.pole = Linalg.Cx.make (-1.) (-1.); coeffs = [| Linalg.Cx.one |] } ]
  in
  (* integral of 4 e^-2t cos^2 t dt = 4 * (1/4 + 2/(4*(4+4))) ... compute
     directly: cos^2 = (1+cos 2t)/2; int e^-2t/2 = 1/4;
     int e^-2t cos(2t)/2 = (1/2) * 2/(4+4) = 1/8; total 4*(1/4+1/8) = 1.5 *)
  rel ~tol:1e-12 "complex pair norm" 1.5 (Awe.Error_est.l2_norm_sq a)

let test_relative_error_orders_correctly () =
  let exact = [ term (-1.) 5.; term (-10.) 1. ] in
  let good = [ term (-1.05) 5.1; term (-9.) 0.9 ] in
  let bad = [ term (-2.) 6. ] in
  let eg = Awe.Error_est.relative_error ~exact good in
  let eb = Awe.Error_est.relative_error ~exact bad in
  Alcotest.(check bool)
    (Printf.sprintf "good < bad (%g vs %g)" eg eb)
    true (eg < eb)

let test_cauchy_bound_dominates_exact () =
  let exact = [ term (-1.) 5.; term (-10.) 1.; term (-40.) 0.3 ] in
  let approx = [ term (-1.1) 5.2; term (-12.) 1.1 ] in
  let exact_err = Awe.Error_est.relative_error ~exact approx in
  let bound = Awe.Error_est.cauchy_bound ~exact approx in
  Alcotest.(check bool)
    (Printf.sprintf "bound %g >= exact %g" bound exact_err)
    true (bound >= exact_err -. 1e-12)

let test_cauchy_repeated_pole_fallback () =
  (* a confluent (repeated-pole) chain has no simple-pole pairing, so
     the bound must fall back to the exact relative error — on either
     side of the comparison — instead of mispairing or failing *)
  let confluent =
    [ { Awe.Approx.pole = Linalg.Cx.re (-1.);
        coeffs = [| Linalg.Cx.re 5.; Linalg.Cx.re 2. |] };
      term (-10.) 1. ]
  in
  let simple = [ term (-1.2) 5.4; term (-9.) 1.1 ] in
  check_close ~tol:1e-15 "fallback (repeated exact)"
    (Awe.Error_est.relative_error ~exact:confluent simple)
    (Awe.Error_est.cauchy_bound ~exact:confluent simple);
  let exact = [ term (-1.) 5.; term (-10.) 1. ] in
  check_close ~tol:1e-15 "fallback (repeated approx)"
    (Awe.Error_est.relative_error ~exact confluent)
    (Awe.Error_est.cauchy_bound ~exact confluent)

let test_error_est_rejects_unstable () =
  match Awe.Error_est.l2_norm_sq [ term 1. 1. ] with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Driver: paper claims *)

let test_awe_q1_is_elmore_on_fig4 () =
  let f4 = Samples.fig4 () in
  let sys = Mna.build f4.Samples.circuit in
  let a = Awe.approximate sys ~node:f4.Samples.n4 ~q:1 in
  (match Awe.poles a with
  | [ p ] -> rel ~tol:1e-9 "pole = -1/T_D" (-1. /. 7e-4) p.Linalg.Cx.re
  | _ -> Alcotest.fail "expected one pole");
  (match Awe.residues a with
  | [ (_, k) ] -> rel ~tol:1e-9 "residue" (-5.) k.Linalg.Cx.re
  | _ -> Alcotest.fail "expected one residue");
  check_close ~tol:1e-9 "v(0) = 0" 0. (Awe.eval a 0.);
  check_close ~tol:1e-9 "steady = 5" 5. (Awe.steady_state a);
  rel ~tol:1e-9 "elmore equivalent" 7e-4 (Awe.elmore_equivalent sys ~node:f4.Samples.n4)

let test_awe_final_value_always_exact () =
  (* moment-0 matching forces the exact final value (paper 3.3) *)
  List.iter
    (fun q ->
      let f9 = Samples.fig9 () in
      let sys = Mna.build f9.Samples.circuit in
      let a = Awe.approximate sys ~node:f9.Samples.n4 ~q in
      rel ~tol:1e-9
        (Printf.sprintf "fig9 steady at q=%d" q)
        (5. *. 4. /. 7.) (Awe.steady_state a))
    [ 1; 2; 3 ]

let test_awe_exact_at_full_order () =
  (* fig4 has 4 states: q=4 must recover the actual poles *)
  let f4 = Samples.fig4 () in
  let sys = Mna.build f4.Samples.circuit in
  let a = Awe.approximate sys ~node:f4.Samples.n4 ~q:4 in
  let got = Awe.poles a in
  (* actual poles via the eigensolver on -G^-1 C *)
  let g = Mna.g sys and c = Mna.c sys in
  let f = Linalg.Lu.factor g in
  let n = Mna.size sys in
  let m =
    Linalg.Matrix.init n n (fun _ _ -> 0.)
  in
  for j = 0 to n - 1 do
    let col = Linalg.Lu.solve f (Linalg.Matrix.col c j) in
    for i = 0 to n - 1 do
      m.(i).(j) <- -.col.(i)
    done
  done;
  let actual = Linalg.Eigen.circuit_poles m in
  List.iter2
    (fun got want ->
      Alcotest.(check bool) "pole match" true
        (Linalg.Cx.abs Linalg.Cx.(got -: want) < 1e-4 *. Linalg.Cx.abs want))
    got actual

let test_awe_waveform_matches_sim_fig4 () =
  let f4 = Samples.fig4 () in
  let sys = Mna.build f4.Samples.circuit in
  let wex = simulate_node sys f4.Samples.n4 ~t_stop:5e-3 ~steps:4000 in
  let a2 = Awe.approximate sys ~node:f4.Samples.n4 ~q:2 in
  let w2 = Awe.waveform a2 ~t_stop:5e-3 ~samples:4001 in
  Alcotest.(check bool) "q2 close" true (transient_error wex w2 < 0.02)

let test_awe_ramp_superposition_fig4 () =
  let wave = Element.Ramp { v0 = 0.; v1 = 5.; t_delay = 0.; t_rise = 1e-3 } in
  let f4 = Samples.fig4 ~wave () in
  let sys = Mna.build f4.Samples.circuit in
  let wex = simulate_node sys f4.Samples.n4 ~t_stop:6e-3 ~steps:6000 in
  let a1 = Awe.approximate sys ~node:f4.Samples.n4 ~q:1 in
  let w1 = Awe.waveform a1 ~t_stop:6e-3 ~samples:6001 in
  Alcotest.(check bool) "ramp q1 close" true (transient_error wex w1 < 0.08);
  (* the paper's unit-ramp residue: r * tau = 5e3 * 0.7e-3 = 3.5 (eq. 64) *)
  let a = Awe.approximate sys ~node:f4.Samples.n4 ~q:1 in
  match a.Awe.response with
  | _ :: { Awe.Approx.transient = [ t ]; scale; _ } :: _ ->
    rel ~tol:1e-6 "kernel residue * slope" 3.5
      (Float.abs (scale *. t.Awe.Approx.coeffs.(0).Linalg.Cx.re))
  | _ -> Alcotest.fail "expected a break component"

let test_awe_slope_matching_removes_glitch () =
  let wave = Element.Ramp { v0 = 0.; v1 = 5.; t_delay = 0.; t_rise = 1e-3 } in
  let f4 = Samples.fig4 ~wave () in
  let sys = Mna.build f4.Samples.circuit in
  let a_plain = Awe.approximate sys ~node:f4.Samples.n4 ~q:1 in
  let a_slope =
    Awe.approximate
      ~options:{ Awe.default_options with match_slope = true }
      sys ~node:f4.Samples.n4 ~q:1
  in
  let dt = 1e-7 in
  let slope_plain = (Awe.eval a_plain dt -. Awe.eval a_plain 0.) /. dt in
  let slope_match = (Awe.eval a_slope dt -. Awe.eval a_slope 0.) /. dt in
  (* paper Section 4.3: the plain approximation starts with a wrong
     (negative) slope; the m_(-2)-matched one starts flat *)
  Alcotest.(check bool) "plain glitch present" true (slope_plain < -1.);
  Alcotest.(check bool)
    (Printf.sprintf "matched slope ~ 0 (%g)" slope_match)
    true
    (Float.abs slope_match < 20.)

let test_awe_nonequilibrium_ic () =
  let f16 = Samples.fig16 ~v_c6:5.0 ~wave:(Element.Step { v0 = 0.; v1 = 5. }) () in
  let sys = Mna.build f16.Samples.circuit in
  let wex = simulate_node sys f16.Samples.output ~t_stop:5e-9 ~steps:4000 in
  let a2 = Awe.approximate sys ~node:f16.Samples.output ~q:2 in
  let w2 = Awe.waveform a2 ~t_stop:5e-9 ~samples:4001 in
  Alcotest.(check bool) "ic q2 close" true (transient_error wex w2 < 0.05)

let test_awe_charge_sharing_glitch () =
  (* input held low, C6 charged: the nonmonotone waveform of Figs 20-21 *)
  let f = Samples.fig16 ~v_c6:5.0 ~wave:(Element.Dc 0.) () in
  let sys = Mna.build f.Samples.circuit in
  let wex = simulate_node sys f.Samples.output ~t_stop:5e-9 ~steps:4000 in
  Alcotest.(check bool) "glitch nonmonotone" false (Waveform.is_monotone wex);
  (* first order cannot fit (zero initial transient value, nonzero area) *)
  (match Awe.approximate sys ~node:f.Samples.output ~q:1 with
  | _ -> Alcotest.fail "expected degeneracy at q=1"
  | exception Awe.Degenerate _ -> ());
  let a2 = Awe.approximate sys ~node:f.Samples.output ~q:2 in
  let w2 = Awe.waveform a2 ~t_stop:5e-9 ~samples:4001 in
  (* error relative to the glitch's own scale *)
  let peak = Array.fold_left Float.max 0. wex.Waveform.values in
  Alcotest.(check bool) "q2 captures glitch" true
    (Waveform.max_abs_error wex w2 < 0.2 *. peak)

let test_awe_floating_cap_victim () =
  let f22, victim = Samples.fig22 () in
  let sys = Mna.build f22.Samples.circuit in
  let a = Awe.approximate sys ~node:victim ~q:3 in
  (* charge conservation fixes the victim's final value exactly *)
  rel ~tol:1e-6 "victim steady" 1.25 (Awe.steady_state a);
  let wex = simulate_node sys victim ~t_stop:8e-9 ~steps:6000 in
  let wap = Awe.waveform a ~t_stop:8e-9 ~samples:6001 in
  Alcotest.(check bool) "victim waveform" true
    (Waveform.max_abs_error wex wap < 0.05)

let test_awe_complex_poles_fig25 () =
  let f25 = Samples.fig25 () in
  let sys = Mna.build f25.Samples.circuit in
  let a2 = Awe.approximate sys ~node:f25.Samples.out ~q:2 in
  (match Awe.poles a2 with
  | [ p1; p2 ] ->
    Alcotest.(check bool) "complex pair" true
      (Float.abs p1.Linalg.Cx.im > 0.
      && Linalg.Cx.approx_equal p1 (Linalg.Cx.conj p2))
  | _ -> Alcotest.fail "expected 2 poles");
  (* the approximation detects the overshoot (paper Fig. 26) *)
  let w2 = Awe.waveform a2 ~t_stop:10e-9 ~samples:4001 in
  Alcotest.(check bool) "overshoot detected" true (Waveform.overshoot w2 > 0.3)

let test_awe_error_decreases_with_order_fig25 () =
  let f25 = Samples.fig25 () in
  let sys = Mna.build f25.Samples.circuit in
  let wex = simulate_node sys f25.Samples.out ~t_stop:10e-9 ~steps:8000 in
  let err q =
    let a = Awe.approximate sys ~node:f25.Samples.out ~q in
    transient_error wex (Awe.waveform a ~t_stop:10e-9 ~samples:8001)
  in
  let e1 = err 1 and e2 = err 2 and e4 = err 4 in
  Alcotest.(check bool)
    (Printf.sprintf "e1 %.3f > e2 %.3f > e4 %.3f" e1 e2 e4)
    true
    (e1 > e2 && e2 > e4 && e4 < 0.05)

let test_awe_auto_escalates () =
  let f25 = Samples.fig25 () in
  let sys = Mna.build f25.Samples.circuit in
  let a, err = Awe.auto ~tol:0.02 sys ~node:f25.Samples.out in
  Alcotest.(check bool) "order above 1" true (a.Awe.q > 1);
  Alcotest.(check bool) (Printf.sprintf "err %.4f" err) true (err <= 0.02)

let test_awe_error_estimate_tracks_truth () =
  let f25 = Samples.fig25 () in
  let sys = Mna.build f25.Samples.circuit in
  let wex = simulate_node sys f25.Samples.out ~t_stop:10e-9 ~steps:8000 in
  let est = Awe.error_estimate sys ~node:f25.Samples.out ~q:2 in
  let a2 = Awe.approximate sys ~node:f25.Samples.out ~q:2 in
  let true_err = transient_error wex (Awe.waveform a2 ~t_stop:10e-9 ~samples:8001) in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.3f within 3x of truth %.3f" est true_err)
    true
    (est > true_err /. 3. && est < true_err *. 3.)

let test_awe_rejects_ground_output () =
  let f4 = Samples.fig4 () in
  let sys = Mna.build f4.Samples.circuit in
  match Awe.approximate sys ~node:0 ~q:1 with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Baselines *)

let test_elmore_walk_fig4 () =
  let f4 = Samples.fig4 () in
  let tds = Awe.Elmore.delays f4.Samples.circuit in
  check_close ~tol:1e-12 "n1" 4e-4 tds.(f4.Samples.n1);
  check_close ~tol:1e-12 "n2" 5e-4 tds.(f4.Samples.n2);
  check_close ~tol:1e-12 "n3" 6e-4 tds.(f4.Samples.n3);
  check_close ~tol:1e-12 "n4" 7e-4 tds.(f4.Samples.n4)

let test_elmore_rejects_non_tree () =
  let f25 = Samples.fig25 () in
  match Awe.Elmore.delays f25.Samples.circuit with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let test_elmore_scaled_matches_eq3 () =
  (* fig9: scaled Elmore = -mu1/mu0; verify against direct moments *)
  let f9 = Samples.fig9 () in
  let sys = Mna.build f9.Samples.circuit in
  let mu = moments_of sys f9.Samples.n4 2 in
  rel ~tol:1e-12 "scaled delay" (-.(mu.(1) /. mu.(0)))
    (Awe.Elmore.scaled_delay sys ~node:f9.Samples.n4)

let test_elmore_matches_q1_awe_on_random_trees () =
  for seed = 1 to 8 do
    let ckt, leaf = Samples.random_rc_tree ~seed ~n:12 () in
    let sys = Mna.build ckt in
    let td = Awe.Elmore.delay ckt leaf in
    let a = Awe.approximate sys ~node:leaf ~q:1 in
    match Awe.poles a with
    | [ p ] -> rel ~tol:1e-9 "q1 pole is -1/T_D" (-1. /. td) p.Linalg.Cx.re
    | _ -> Alcotest.fail "expected one pole"
  done

let test_tree_link_matches_engine () =
  List.iter
    (fun seed ->
      let ckt, leaf = Samples.random_rc_tree ~seed ~n:15 () in
      let sys = Mna.build ckt in
      let mu_engine = moments_of sys leaf 6 in
      let tl = Awe.Tree_link.prepare ckt in
      let mu_tl = Awe.Tree_link.moments tl ~node:leaf ~count:6 in
      Array.iteri
        (fun j v ->
          rel ~tol:1e-9 (Printf.sprintf "seed %d mu_%d" seed j) v mu_tl.(j))
        mu_engine)
    [ 3; 4; 5 ]

let test_tree_link_with_links_matches_engine () =
  let f9 = Samples.fig9 () in
  let sys = Mna.build f9.Samples.circuit in
  let mu_engine = moments_of sys f9.Samples.n4 6 in
  let tl = Awe.Tree_link.prepare f9.Samples.circuit in
  Alcotest.(check int) "one link" 1 (Awe.Tree_link.link_count tl);
  let mu_tl = Awe.Tree_link.moments tl ~node:f9.Samples.n4 ~count:6 in
  Array.iteri
    (fun j v -> rel ~tol:1e-9 (Printf.sprintf "mu_%d" j) v mu_tl.(j))
    mu_engine

let test_tree_link_eq56 () =
  (* the first moment vector is 5 * T_D per node (eq. 56) *)
  let f4 = Samples.fig4 () in
  let tl = Awe.Tree_link.prepare f4.Samples.circuit in
  let w1 = Awe.Tree_link.moment_vector tl ~k:1 in
  let tds = Awe.Elmore.delays f4.Samples.circuit in
  List.iter
    (fun node ->
      rel ~tol:1e-12 "eq56" (5. *. tds.(node)) w1.(node))
    [ f4.Samples.n1; f4.Samples.n2; f4.Samples.n3; f4.Samples.n4 ]

let test_tree_link_rejects_out_of_scope () =
  let f25 = Samples.fig25 () in
  (match Awe.Tree_link.prepare f25.Samples.circuit with
  | _ -> Alcotest.fail "expected rejection"
  | exception Awe.Tree_link.Unsupported _ -> ());
  let f22, _ = Samples.fig22 () in
  match Awe.Tree_link.prepare f22.Samples.circuit with
  | _ -> Alcotest.fail "floating caps rejected"
  | exception Awe.Tree_link.Unsupported _ -> ()

let test_two_pole_fig4 () =
  let f4 = Samples.fig4 () in
  let sys = Mna.build f4.Samples.circuit in
  let tp = Awe.Two_pole.fit sys ~node:f4.Samples.n4 in
  Alcotest.(check bool) "stable" true (tp.Awe.Two_pole.p1 < 0. && tp.Awe.Two_pole.p2 < 0.);
  rel ~tol:1e-9 "final" 5. tp.Awe.Two_pole.v_final;
  (* its 50% delay is close to the simulated one *)
  let wex = simulate_node sys f4.Samples.n4 ~t_stop:5e-3 ~steps:4000 in
  match (Awe.Two_pole.delay_50pct tp, Waveform.delay_50pct wex) with
  | Some d1, Some d2 ->
    Alcotest.(check bool)
      (Printf.sprintf "delays close (%.4g vs %.4g)" d1 d2)
      true
      (Float.abs (d1 -. d2) < 0.05 *. d2)
  | _ -> Alcotest.fail "both delays should exist"

let test_two_pole_rejects_complex () =
  let f25 = Samples.fig25 () in
  let sys = Mna.build f25.Samples.circuit in
  match Awe.Two_pole.fit sys ~node:f25.Samples.out with
  | _ -> Alcotest.fail "expected Not_applicable"
  | exception Awe.Two_pole.Not_applicable _ -> ()

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_q1_equals_elmore =
  QCheck2.Test.make ~name:"q=1 AWE pole is -1/Elmore on random RC trees"
    ~count:40
    QCheck2.Gen.(int_range 2 20)
    (fun n ->
      let ckt, leaf = Samples.random_rc_tree ~seed:(1000 + n) ~n () in
      let sys = Mna.build ckt in
      let td = Awe.Elmore.delay ckt leaf in
      match Awe.poles (Awe.approximate sys ~node:leaf ~q:1) with
      | [ p ] -> Float.abs ((p.Linalg.Cx.re *. td) +. 1.) < 1e-6
      | _ -> false)

let prop_final_value_exact =
  QCheck2.Test.make
    ~name:"AWE final value equals DC solution on random meshes" ~count:30
    QCheck2.Gen.(pair (int_range 2 12) (int_range 0 4))
    (fun (n, extra) ->
      let ckt, leaf = Samples.random_rc_mesh ~seed:(n + (17 * extra)) ~n ~extra () in
      let sys = Mna.build ckt in
      let op = Dc.initial sys in
      ignore op;
      match Awe.approximate sys ~node:leaf ~q:2 with
      | a ->
        (* DC solution with the source at its final value *)
        let solver = Mna.dc_factor sys in
        let rhs = Linalg.Matrix.mul_vec (Mna.b sys) (Mna.u_at sys 1e9) in
        let x = Mna.dc_solve solver ~rhs ~charges:(Array.make (Mna.charge_group_count sys) 0.) in
        let want = Mna.voltage sys x leaf in
        Float.abs (Awe.steady_state a -. want) < 1e-6 *. Float.max 1. (Float.abs want)
      | exception (Awe.Degenerate _ | Awe.Unstable_fit _) -> true)

let prop_moments_match_tree_link =
  QCheck2.Test.make
    ~name:"tree/link moments equal engine moments on random trees"
    ~count:25
    QCheck2.Gen.(int_range 2 25)
    (fun n ->
      let ckt, leaf = Samples.random_rc_tree ~seed:(31 * n) ~n () in
      let sys = Mna.build ckt in
      let mu_e = moments_of sys leaf 5 in
      let tl = Awe.Tree_link.prepare ckt in
      let mu_t = Awe.Tree_link.moments tl ~node:leaf ~count:5 in
      Array.for_all2
        (fun a b ->
          Float.abs (a -. b) <= 1e-7 *. Float.max 1e-30 (Float.abs a))
        mu_e mu_t)

let prop_tree_link_eq56_on_random_trees =
  QCheck2.Test.make
    ~name:"tree/link w_1 is the Elmore vector on random trees (eq. 56)"
    ~count:25
    QCheck2.Gen.(int_range 2 25)
    (fun n ->
      let ckt, _ = Samples.random_rc_tree ~seed:(53 * n) ~n () in
      let tl = Awe.Tree_link.prepare ckt in
      let w1 = Awe.Tree_link.moment_vector tl ~k:1 in
      let tds = Awe.Elmore.delays ckt in
      (* the sample trees drive a unit step, so w_1(i) = 1 * T_D(i) *)
      Array.for_all2
        (fun td w ->
          td <= 0. || Float.abs (w -. td) <= 1e-9 *. Float.max 1e-30 td)
        tds w1)

let prop_two_pole_tracks_sim_on_random_trees =
  QCheck2.Test.make
    ~name:"two-pole baseline tracks simulation on random RC trees"
    ~count:20
    QCheck2.Gen.(int_range 2 10)
    (fun n ->
      let ckt, leaf = Samples.random_rc_tree ~seed:(101 * n) ~n () in
      let sys = Mna.build ckt in
      match Awe.Two_pole.fit sys ~node:leaf with
      | exception Awe.Two_pole.Not_applicable _ ->
        (* outside the Chu/Horowitz model's scope — the situation the
           paper motivates AWE with; not a fit failure *)
        true
      | tp ->
        tp.Awe.Two_pole.p1 < 0.
        && tp.Awe.Two_pole.p2 < 0.
        && Float.abs (tp.Awe.Two_pole.v_final -. 1.) <= 1e-6
        &&
        let t_stop = 10. *. Awe.Elmore.delay ckt leaf in
        let wex = simulate_node sys leaf ~t_stop ~steps:4000 in
        (match (Awe.Two_pole.delay_50pct tp, Waveform.delay_50pct wex) with
        | Some d1, Some d2 -> Float.abs (d1 -. d2) <= 0.1 *. d2
        | _ -> false))

let prop_cauchy_bound_dominates_on_random_trees =
  QCheck2.Test.make
    ~name:"Cauchy pairing bound dominates the exact error on random trees"
    ~count:25
    QCheck2.Gen.(int_range 3 15)
    (fun n ->
      let ckt, leaf = Samples.random_rc_tree ~seed:(211 * n) ~n () in
      let sys = Mna.build ckt in
      let engine = Awe.Engine.create sys in
      let a, _ = Awe.Engine.auto engine ~node:leaf in
      match Awe.Engine.approximate engine ~node:leaf ~q:(a.Awe.q + 1) with
      | exception (Awe.Degenerate _ | Awe.Unstable_fit _) -> true
      | a1 ->
        let exact = a1.Awe.base in
        let err = Awe.Error_est.relative_error ~exact a.Awe.base in
        let bound = Awe.Error_est.cauchy_bound ~exact a.Awe.base in
        (* below rounding noise both quantities compare two numerically
           identical models *)
        err <= 1e-6 || bound >= err *. (1. -. 1e-6))

let prop_sparse_moments_match_dense =
  QCheck2.Test.make ~name:"sparse moment path equals dense path" ~count:20
    QCheck2.Gen.(int_range 2 15)
    (fun n ->
      let ckt, leaf = Samples.random_rc_mesh ~seed:(7 * n) ~n ~extra:2 () in
      let sys = Mna.build ckt in
      let mu_of sparse =
        let e = Awe.Moments.make ~sparse sys in
        let op0 = Dc.initial sys in
        let op0p = Dc.at_zero_plus sys op0 in
        let prob = Awe.Moments.base_problem e op0p in
        Awe.Moments.mu
          (Awe.Moments.vectors e prob ~count:5)
          ~out_var:(Mna.node_var sys leaf)
      in
      let d = mu_of false and s = mu_of true in
      Array.for_all2
        (fun a b -> Float.abs (a -. b) <= 1e-7 *. Float.max 1e-30 (Float.abs a))
        d s)

let prop_waveform_matches_sim =
  QCheck2.Test.make
    ~name:"order-3 AWE tracks simulation on random RC trees" ~count:15
    QCheck2.Gen.(int_range 3 12)
    (fun n ->
      let ckt, leaf = Samples.random_rc_tree ~seed:(53 * n) ~n () in
      let sys = Mna.build ckt in
      match Awe.approximate sys ~node:leaf ~q:3 with
      | a ->
        let td = Awe.Elmore.delay ckt leaf in
        let t_stop = 10. *. td in
        let wex = simulate_node sys leaf ~t_stop ~steps:2000 in
        let wap = Awe.waveform a ~t_stop ~samples:2001 in
        transient_error wex wap < 0.05
      | exception (Awe.Degenerate _ | Awe.Unstable_fit _) ->
        (* acceptable: escalation simply continues in auto mode *)
        true)

let test_branch_current_observable () =
  (* RC charging current through the source: i(t) = -(V/R) e^(-t/RC)
     in the branch convention (current flows + -> - inside the source,
     i.e. opposite to the delivered load current) *)
  let b = Netlist.create () in
  Netlist.add_v b "v1" "in" "0" (Element.Step { v0 = 0.; v1 = 5. });
  Netlist.add_r b "r1" "in" "out" 1e3;
  Netlist.add_c b "c1" "out" "0" 1e-6;
  let ckt = Netlist.freeze b in
  let sys = Mna.build ckt in
  let a =
    Awe.approximate_observable sys ~observable:(Awe.Branch_current 0) ~q:1
  in
  (match Awe.poles a with
  | [ p ] -> rel ~tol:1e-9 "current pole" (-1000.) p.Linalg.Cx.re
  | _ -> Alcotest.fail "expected one pole");
  rel ~tol:1e-9 "current at 0+" (-5e-3) (Awe.eval a 0.);
  check_close ~tol:1e-12 "steady current" 0. (Awe.steady_state a);
  (* total delivered charge = integral of load current = C dV *)
  let r = Transim.Transient.simulate sys ~t_stop:10e-3 ~steps:4000 in
  let wi = Transim.Transient.branch_current_waveform r 0 in
  let awe_q =
    (* integral of the AWE current: k / (-p) *)
    match (Awe.residues a, Awe.poles a) with
    | [ (_, k) ], [ p ] -> k.Linalg.Cx.re /. -.p.Linalg.Cx.re
    | _ -> nan
  in
  let sim_q =
    let acc = ref 0. in
    Array.iteri
      (fun i t ->
        if i > 0 then
          acc :=
            !acc
            +. (0.5
               *. (t -. wi.Waveform.times.(i - 1))
               *. (wi.Waveform.values.(i) +. wi.Waveform.values.(i - 1))))
      wi.Waveform.times;
    !acc
  in
  rel ~tol:1e-3 "delivered charge" sim_q awe_q;
  rel ~tol:1e-6 "charge = -C dV" (-5e-6) awe_q

let test_branch_current_rejects_resistor () =
  let f4 = Samples.fig4 () in
  let sys = Mna.build f4.Samples.circuit in
  (* element 1 is r1: no branch unknown *)
  match
    Awe.approximate_observable sys ~observable:(Awe.Branch_current 1) ~q:1
  with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let prop_full_order_recovers_actual_poles =
  QCheck2.Test.make
    ~name:"full-order AWE recovers the exact poles of random RC trees"
    ~count:20
    QCheck2.Gen.(int_range 2 6)
    (fun n ->
      let ckt, leaf = Samples.random_rc_tree ~seed:(977 * n) ~n () in
      let sys = Mna.build ckt in
      (* actual poles via the eigensolver *)
      let g = Mna.g sys and c = Mna.c sys in
      let f = Linalg.Lu.factor g in
      let sz = Mna.size sys in
      let m = Linalg.Matrix.create sz sz in
      for j = 0 to sz - 1 do
        let col = Linalg.Lu.solve f (Linalg.Matrix.col c j) in
        for i = 0 to sz - 1 do
          m.(i).(j) <- -.col.(i)
        done
      done;
      let actual = Linalg.Eigen.circuit_poles m in
      match Awe.approximate sys ~node:leaf ~q:n with
      | a ->
        (* every recovered pole must coincide with some actual pole;
           the fit may legitimately return fewer than n poles when one
           is unobservable at the leaf (the moment matrix degenerates
           and the order self-reduces) *)
        let got = Awe.poles a in
        (* the dominant poles are well conditioned in the moment data;
           the fastest ones may carry larger matching error at full
           order, so check the three most dominant tightly *)
        let dominant = List.filteri (fun i _ -> i < 3) got in
        dominant <> []
        && List.for_all
             (fun p ->
               List.exists
                 (fun w ->
                   Linalg.Cx.abs (Linalg.Cx.( -: ) p w)
                   <= 1e-3 *. Linalg.Cx.abs w)
                 actual)
             dominant
      | exception (Awe.Degenerate _ | Awe.Unstable_fit _) -> true)

let prop_delay_monotone_in_load =
  QCheck2.Test.make
    ~name:"adding load capacitance never speeds a node up" ~count:25
    QCheck2.Gen.(float_range 10e-15 500e-15)
    (fun extra ->
      let build extra_cap =
        let b = Netlist.create () in
        Netlist.add_v b "v" "in" "0" (Element.Step { v0 = 0.; v1 = 1. });
        Netlist.add_r b "r1" "in" "x" 500.;
        Netlist.add_c b "c1" "x" "0" 100e-15;
        Netlist.add_r b "r2" "x" "y" 500.;
        Netlist.add_c b "c2" "y" "0" (100e-15 +. extra_cap);
        let y = Netlist.node b "y" in
        (Mna.build (Netlist.freeze b), y)
      in
      let delay extra_cap =
        let sys, y = build extra_cap in
        let a = Awe.approximate sys ~node:y ~q:2 in
        match Awe.delay a ~threshold:0.5 ~t_max:1e-8 with
        | Some d -> d
        | None -> infinity
      in
      delay extra >= delay 0. -. 1e-15)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let test_shifted_moments_analytic () =
  (* single RC about s0: mu_j = -v z^j with z = 1/(p - s0), p = -1/RC *)
  let sys, out = single_rc ~r:1e3 ~c:1e-6 ~v:5. in
  let s0 = -500. in
  let e = Awe.Moments.make ~shift:s0 sys in
  rel ~tol:1e-12 "engine records shift" s0 (Awe.Moments.shift e);
  let op0 = Dc.initial sys in
  let op0p = Dc.at_zero_plus sys op0 in
  let prob = Awe.Moments.base_problem e op0p in
  let mu =
    Awe.Moments.mu
      (Awe.Moments.vectors e prob ~count:4)
      ~out_var:(Mna.node_var sys out)
  in
  let z = 1. /. (-1000. -. s0) in
  Array.iteri
    (fun j v ->
      rel ~tol:1e-12
        (Printf.sprintf "shifted mu_%d" j)
        (-5. *. Float.pow z (float_of_int j))
        v)
    mu;
  (* the fit maps z back to the true pole *)
  match
    Awe.Approx.transient_poles (Awe.Moment_match.fit ~shift:s0 ~q:1 mu)
  with
  | [ p ] -> rel ~tol:1e-9 "pole recovered" (-1000.) p.Linalg.Cx.re
  | _ -> Alcotest.fail "expected one pole"

let test_shifted_full_order_invariance () =
  (* at full order the recovered poles are exact for ANY expansion
     point; compare shift 0 and a shift of the order of the poles *)
  let f4 = Samples.fig4 () in
  let sys = Mna.build f4.Samples.circuit in
  let poles_with s0 =
    let opts = { Awe.default_options with Awe.expansion_shift = s0 } in
    Awe.poles (Awe.approximate ~options:opts sys ~node:f4.Samples.n4 ~q:4)
  in
  List.iter2
    (fun p0 ps ->
      Alcotest.(check bool)
        (Format.asprintf "pole %a invariant" Linalg.Cx.pp p0)
        true
        (Linalg.Cx.abs (Linalg.Cx.( -: ) p0 ps)
        < 1e-5 *. Linalg.Cx.abs p0))
    (poles_with 0.) (poles_with (-3e3))

let test_shifted_waveform_still_matches () =
  let f = Samples.fig25 () in
  let sys = Mna.build f.Samples.circuit in
  let wex = simulate_node sys f.Samples.out ~t_stop:10e-9 ~steps:8000 in
  let opts = { Awe.default_options with Awe.expansion_shift = -1e9 } in
  let a = Awe.approximate ~options:opts sys ~node:f.Samples.out ~q:4 in
  let w = Awe.waveform a ~t_stop:10e-9 ~samples:8001 in
  Alcotest.(check bool) "shifted q4 accurate" true
    (transient_error wex w < 0.05)

let test_awe_repeated_pole_cascade () =
  (* two identical RC sections isolated by a unity-gain buffer: exactly
     repeated pole; the response is 1 - (1 + t/tau) e^(-t/tau), which
     requires the confluent residue system (paper, eqs. 26-29) *)
  let b = Netlist.create () in
  Netlist.add_v b "v1" "in" "0" (Element.Step { v0 = 0.; v1 = 1. });
  Netlist.add_r b "r1" "in" "x" 1e3;
  Netlist.add_c b "c1" "x" "0" 1e-6;
  Netlist.add_vcvs b "e1" "y" "0" "x" "0" 1.;
  Netlist.add_r b "r2" "y" "out" 1e3;
  Netlist.add_c b "c2" "out" "0" 1e-6;
  let out = Netlist.node b "out" in
  let sys = Mna.build (Netlist.freeze b) in
  let a = Awe.approximate sys ~node:out ~q:2 in
  Alcotest.(check bool) "confluent chain present" true
    (List.exists (fun t -> Array.length t.Awe.Approx.coeffs > 1) a.Awe.base);
  let tau = 1e-3 in
  List.iter
    (fun t ->
      rel ~tol:1e-12
        (Printf.sprintf "double-pole value at %g" t)
        (1. -. ((1. +. (t /. tau)) *. exp (-.t /. tau)))
        (Awe.eval a t))
    [ 0.; 0.3e-3; 1e-3; 3e-3 ]

(* ------------------------------------------------------------------ *)
(* Batch (multi-output) *)

let test_batch_matches_individual () =
  let f = Samples.fig16 ~wave:(Element.Step { v0 = 0.; v1 = 5. }) () in
  let sys = Mna.build f.Samples.circuit in
  let nodes = Array.to_list f.Samples.nodes in
  let batched = Awe.Batch.approximate_all sys ~nodes ~q:2 in
  List.iter
    (fun r ->
      match r.Awe.Batch.outcome with
      | Awe.Batch.Approximation a ->
        let solo = Awe.approximate sys ~node:r.Awe.Batch.node ~q:2 in
        List.iter2
          (fun p p' ->
            Alcotest.(check bool) "pole agrees" true
              (Linalg.Cx.abs Linalg.Cx.(p -: p') <= 1e-9 *. Linalg.Cx.abs p))
          (Awe.poles a) (Awe.poles solo)
      | Awe.Batch.Failed _ -> (
        (* the individual path must fail identically *)
        match Awe.approximate sys ~node:r.Awe.Batch.node ~q:2 with
        | _ -> Alcotest.fail "batch failed where individual succeeded"
        | exception (Awe.Degenerate _ | Awe.Unstable_fit _) -> ()))
    batched

let test_batch_elmore_all_fig4 () =
  let f = Samples.fig4 () in
  let sys = Mna.build f.Samples.circuit in
  let all = Awe.Batch.elmore_all sys in
  let tds = Awe.Elmore.delays f.Samples.circuit in
  List.iter
    (fun (node, td) ->
      if node <> 1 (* the driven node "in" has no meaningful delay *) then
        rel ~tol:1e-9 (Printf.sprintf "node %d" node) tds.(node) td)
    (List.filter (fun (n, _) -> tds.(n) > 0.) all)

let test_batch_delays_ordered_along_path () =
  let f = Samples.fig4 () in
  let sys = Mna.build f.Samples.circuit in
  let nodes = [ f.Samples.n1; f.Samples.n3; f.Samples.n4 ] in
  match
    Awe.Batch.delays_all sys ~nodes ~q:2 ~threshold:2.5 ~t_max:5e-3
  with
  | [ (_, Some d1); (_, Some d3); (_, Some d4) ] ->
    Alcotest.(check bool) "delays increase downstream" true
      (d1 < d3 && d3 < d4)
  | _ -> Alcotest.fail "all three delays should exist"

let test_batch_rejects_ground () =
  let f = Samples.fig4 () in
  let sys = Mna.build f.Samples.circuit in
  match Awe.Batch.approximate_all sys ~nodes:[ 0 ] ~q:1 with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Shared engine: incremental order escalation over one factorization *)

let test_engine_incremental_auto_matches_scratch () =
  (* adaptive escalation on a shared engine must return exactly what a
     recompute-from-scratch loop (fresh factorization and fresh moments
     at every order) returns *)
  let f25 = Samples.fig25 () in
  let sys = Mna.build f25.Samples.circuit in
  let node = f25.Samples.out in
  let tol = 0.02 and q_max = 8 in
  let e = Awe.Engine.create sys in
  let a_inc, err_inc = Awe.Engine.auto ~tol ~q_max e ~node in
  (* scratch loop: the pre-refactor policy, one-shot API per order *)
  let rec scratch q best =
    if q > q_max then
      match best with
      | Some (a, err) -> (a, err)
      | None -> Alcotest.fail "scratch loop found no fit"
    else
      match
        let a = Awe.approximate sys ~node ~q in
        (a, Awe.error_estimate sys ~node ~q)
      with
      | a, err when err <= tol -> (a, err)
      | a, err ->
        let best =
          match best with
          | Some (_, be) when be <= err -> best
          | _ -> Some (a, err)
        in
        scratch (q + 1) best
      | exception (Awe.Unstable_fit _ | Awe.Degenerate _) ->
        scratch (q + 1) best
  in
  let a_scr, err_scr = scratch 1 None in
  Alcotest.(check int) "same order" a_scr.Awe.q a_inc.Awe.q;
  rel ~tol:1e-12 "same error estimate" err_scr err_inc;
  List.iter2
    (fun p p' ->
      Alcotest.(check bool) "same poles" true
        (Linalg.Cx.abs Linalg.Cx.(p -: p') <= 1e-12 *. Linalg.Cx.abs p))
    (Awe.poles a_scr) (Awe.poles a_inc);
  List.iter
    (fun t ->
      rel ~tol:1e-12
        (Printf.sprintf "same waveform at %g" t)
        (Awe.eval a_scr t) (Awe.eval a_inc t))
    [ 0.; 1e-9; 3e-9; 8e-9 ]

let test_engine_escalation_cost_two_solves () =
  (* going q -> q+1 on a shared sequence costs exactly two extra
     forward/back substitutions (the two new moments) *)
  let f25 = Samples.fig25 () in
  let sys = Mna.build f25.Samples.circuit in
  let node = f25.Samples.out in
  let e = Awe.Engine.create sys in
  let s0 = Awe.Stats.snapshot () in
  ignore (Awe.Engine.approximate e ~node ~q:2);
  let s1 = Awe.Stats.snapshot () in
  ignore (Awe.Engine.approximate e ~node ~q:3);
  let s2 = Awe.Stats.snapshot () in
  (* order 2 needs mu_0..mu_3 = w_0..w_3; w_0 is the free homogeneous
     start, so three substitutions *)
  Alcotest.(check int) "q=2 costs three solves" 3
    (Awe.Stats.diff s1 s0).Awe.Stats.moment_solves;
  Alcotest.(check int) "q=2->3 costs two more" 2
    (Awe.Stats.diff s2 s1).Awe.Stats.moment_solves;
  (* and re-fitting any order from the shared prefix is free *)
  ignore (Awe.Engine.approximate e ~node ~q:2);
  ignore (Awe.Engine.elmore e ~node);
  let s3 = Awe.Stats.snapshot () in
  Alcotest.(check int) "refit is free" 0
    (Awe.Stats.diff s3 s2).Awe.Stats.moment_solves

let test_engine_auto_solve_budget () =
  (* acceptance bound: Awe.auto reaching order q spends one
     factorization and at most 2q+2 moment solves *)
  let f25 = Samples.fig25 () in
  let sys = Mna.build f25.Samples.circuit in
  let s0 = Awe.Stats.snapshot () in
  let a, _ = Awe.auto ~tol:0.02 sys ~node:f25.Samples.out in
  let d = Awe.Stats.diff (Awe.Stats.snapshot ()) s0 in
  Alcotest.(check int) "one factorization" 1 d.Awe.Stats.factorizations;
  Alcotest.(check bool)
    (Printf.sprintf "solves %d <= 2q+2 = %d" d.Awe.Stats.moment_solves
       ((2 * a.Awe.q) + 2))
    true
    (d.Awe.Stats.moment_solves <= (2 * a.Awe.q) + 2);
  Alcotest.(check bool) "escalations recorded" true
    (d.Awe.Stats.order_escalations >= a.Awe.q - 1)

(* ------------------------------------------------------------------ *)
(* Stats: the merge algebra and scoped windows that make parallel
   counter totals schedule-independent *)

let snap ?(phases = []) f m fi r e b =
  { Awe.Stats.factorizations = f;
    moment_solves = m;
    fits = fi;
    fit_retries = r;
    order_escalations = e;
    mna_builds = b;
    cache_exact_hits = 0;
    cache_pattern_hits = 0;
    cache_misses = 0;
    cache_bytes = 0;
    reduce_nodes_eliminated = 0;
    reduce_elements_eliminated = 0;
    reduce_parallel_merges = 0;
    reduce_series_merges = 0;
    reduce_chain_lumps = 0;
    reduce_star_merges = 0;
    eco_edits = 0;
    eco_dirty_nets = 0;
    eco_reused_nets = 0;
    eco_full_fallbacks = 0;
    phase_seconds = phases }

let stat_ints (s : Awe.Stats.snapshot) =
  Awe.Stats.
    ( s.factorizations,
      s.moment_solves,
      s.fits,
      s.fit_retries,
      s.order_escalations,
      s.mna_builds,
      s.cache_exact_hits,
      s.cache_pattern_hits,
      s.cache_misses,
      s.cache_bytes )

let test_stats_merge_algebra () =
  let phases (s : Awe.Stats.snapshot) =
    List.sort compare s.Awe.Stats.phase_seconds
  in
  let a = snap ~phases:[ ("lu", 0.25) ] 1 2 3 4 5 6
  and b = snap ~phases:[ ("lu", 0.5); ("fit", 1.) ] 10 20 30 40 50 60
  and c = snap 100 0 1 0 2 7 in
  let m1 = Awe.Stats.merge a b and m2 = Awe.Stats.merge b a in
  Alcotest.(check bool) "commutative counters" true
    (stat_ints m1 = stat_ints m2);
  Alcotest.(check bool) "commutative phases" true (phases m1 = phases m2);
  check_close "shared phase sums" 0.75
    (List.assoc "lu" m1.Awe.Stats.phase_seconds);
  check_close "disjoint phase kept" 1.
    (List.assoc "fit" m1.Awe.Stats.phase_seconds);
  let l = Awe.Stats.merge (Awe.Stats.merge a b) c
  and r = Awe.Stats.merge a (Awe.Stats.merge b c) in
  Alcotest.(check bool) "associative" true
    (stat_ints l = stat_ints r && phases l = phases r);
  Alcotest.(check bool) "zero is the identity" true
    (stat_ints (Awe.Stats.merge a Awe.Stats.zero) = stat_ints a
    && stat_ints (Awe.Stats.merge Awe.Stats.zero a) = stat_ints a)

let test_stats_scoped_window () =
  (* pre-existing counts must not leak into the window, and the window
     must fold back so an enclosing snapshot/diff still sees the work *)
  Awe.Stats.record_fit ();
  let s0 = Awe.Stats.snapshot () in
  let f25 = Samples.fig25 () in
  let sys = Mna.build f25.Samples.circuit in
  let _, w =
    Awe.Stats.scoped (fun () -> Awe.auto ~tol:0.02 sys ~node:f25.Samples.out)
  in
  Alcotest.(check int) "window: exactly one factorization" 1
    w.Awe.Stats.factorizations;
  Alcotest.(check bool) "window: no leaked prior counts" true
    (w.Awe.Stats.moment_solves >= 2);
  let d = Awe.Stats.diff (Awe.Stats.snapshot ()) s0 in
  Alcotest.(check bool) "outer diff sees the scoped work" true
    (stat_ints d = stat_ints w)

let test_stats_scoped_exception_safe () =
  let s0 = Awe.Stats.snapshot () in
  (match
     Awe.Stats.scoped (fun () ->
         Awe.Stats.record_mna_build ();
         failwith "boom")
   with
  | _ -> Alcotest.fail "expected the exception to re-raise"
  | exception Failure _ -> ());
  let d = Awe.Stats.diff (Awe.Stats.snapshot ()) s0 in
  Alcotest.(check int) "window folded back on exception" 1
    d.Awe.Stats.mna_builds

(* ------------------------------------------------------------------ *)
(* AC analysis *)

let test_ac_exact_rc_lowpass () =
  (* RC lowpass: |H| = 1/sqrt(1 + (w RC)^2) *)
  let b = Netlist.create () in
  Netlist.add_v b "v" "in" "0" (Element.Step { v0 = 0.; v1 = 1. });
  Netlist.add_r b "r" "in" "out" 1e3;
  Netlist.add_c b "c" "out" "0" 1e-6;
  let out = Netlist.node b "out" in
  let sys = Mna.build (Netlist.freeze b) in
  let omegas = [| 1.; 1e3; 1e4 |] in
  let h = Awe.Ac.exact_response sys ~src_col:0 ~node:out ~omegas in
  Array.iteri
    (fun i omega ->
      let want = 1. /. sqrt (1. +. ((omega *. 1e-3) ** 2.)) in
      rel ~tol:1e-9 (Printf.sprintf "|H| at %g" omega) want
        (Linalg.Cx.abs h.(i)))
    omegas

let test_ac_model_matches_exact_at_low_freq () =
  (* the reduced model's transfer function must agree with the exact
     one near s = 0 (that is what moment matching means) *)
  let f = Samples.fig16 ~wave:(Element.Step { v0 = 0.; v1 = 5. }) () in
  let sys = Mna.build f.Samples.circuit in
  let a = Awe.approximate sys ~node:f.Samples.output ~q:3 in
  (* normalize: the source is 5 V, the model's dc gain is v_inf/v_src *)
  let omegas = Awe.Ac.log_sweep ~f_start:1e6 ~f_stop:3e8 ~points:12 in
  let exact = Awe.Ac.exact_response sys ~src_col:0 ~node:f.Samples.output ~omegas in
  (* model response of the unit-step-normalized transient *)
  let scaled_terms =
    List.map
      (fun t ->
        { t with
          Awe.Approx.coeffs =
            Array.map (fun k -> Linalg.Cx.scale 0.2 k) t.Awe.Approx.coeffs })
      a.Awe.base
  in
  let model =
    Awe.Ac.model_response ~dc_gain:(Awe.steady_state a /. 5.) scaled_terms
      ~omegas
  in
  Array.iteri
    (fun idx _ ->
      let diff = Linalg.Cx.abs (Linalg.Cx.( -: ) exact.(idx) model.(idx)) in
      Alcotest.(check bool)
        (Printf.sprintf "H match at %g rad/s (diff %g)" omegas.(idx) diff)
        true (diff < 0.02))
    omegas

let test_ac_low_frequency_is_dc () =
  (* H(jw) -> DC transfer as w -> 0 *)
  let f9 = Samples.fig9 () in
  let sys = Mna.build f9.Samples.circuit in
  let h =
    Awe.Ac.exact_response sys ~src_col:0 ~node:f9.Samples.n4 ~omegas:[| 1. |]
  in
  (* divider 4/(3+4) *)
  rel ~tol:1e-6 "dc gain" (4. /. 7.) (Linalg.Cx.abs h.(0))

let test_cauchy_with_complex_pairs () =
  (* exact has a complex pair + a real pole; approx has only the pair:
     the bound must still dominate the exact error *)
  let pair sigma omega k =
    [ { Awe.Approx.pole = Linalg.Cx.make sigma omega;
        coeffs = [| Linalg.Cx.make k 0.1 |] };
      { Awe.Approx.pole = Linalg.Cx.make sigma (-.omega);
        coeffs = [| Linalg.Cx.make k (-0.1) |] } ]
  in
  let exact = pair (-1.) 3. 1. @ [ term (-8.) 0.4 ] in
  let approx = pair (-1.1) 2.9 1.05 in
  let e = Awe.Error_est.relative_error ~exact approx in
  let b = Awe.Error_est.cauchy_bound ~exact approx in
  Alcotest.(check bool)
    (Printf.sprintf "bound %.3f >= exact %.3f" b e)
    true (b >= e -. 1e-12)

let test_ac_log_sweep () =
  let w = Awe.Ac.log_sweep ~f_start:1. ~f_stop:100. ~points:3 in
  rel ~tol:1e-12 "start" (2. *. Float.pi) w.(0);
  rel ~tol:1e-12 "mid" (20. *. Float.pi) w.(1);
  rel ~tol:1e-12 "stop" (200. *. Float.pi) w.(2);
  Alcotest.check_raises "bad sweep"
    (Invalid_argument "Ac.log_sweep: need 0 < f_start < f_stop") (fun () ->
      ignore (Awe.Ac.log_sweep ~f_start:10. ~f_stop:1. ~points:5))

let test_ac_magnitude_db () =
  let db = Awe.Ac.magnitude_db [| Linalg.Cx.re 10.; Linalg.Cx.re 0.1 |] in
  rel ~tol:1e-9 "20 dB" 20. db.(0);
  rel ~tol:1e-9 "-20 dB" (-20.) db.(1)

let () =
  Alcotest.run "core"
    [ ( "moments",
        [ Alcotest.test_case "single RC analytic" `Quick
            test_moments_single_rc;
          Alcotest.test_case "fig4 first moment" `Quick
            test_moments_fig4_first_moment_is_elmore;
          Alcotest.test_case "floating group neutrality" `Quick
            test_moments_charge_neutral_on_floating_group;
          Alcotest.test_case "ramp kernel zero state" `Quick
            test_ramp_kernel_zero_state;
          Alcotest.test_case "initial slope" `Quick test_mu_slope_rc ] );
      ( "matching",
        [ Alcotest.test_case "two real poles" `Quick test_match_two_poles;
          Alcotest.test_case "scaling invariance" `Quick
            test_match_scaling_invariance;
          Alcotest.test_case "instability detection" `Quick
            test_match_detects_instability;
          Alcotest.test_case "degeneracy detection" `Quick
            test_match_degenerate_detected;
          Alcotest.test_case "slope condition" `Quick
            test_match_slope_condition;
          Alcotest.test_case "scale factor" `Quick test_scale_factor;
          Alcotest.test_case "conditioning" `Quick
            test_condition_number_improves_with_scaling ] );
      ( "approx",
        [ Alcotest.test_case "complex pair evaluation" `Quick
            test_approx_complex_pair_real_eval;
          Alcotest.test_case "repeated pole evaluation" `Quick
            test_approx_repeated_pole_eval;
          Alcotest.test_case "superposition" `Quick
            test_response_superposition;
          Alcotest.test_case "unbounded rejected" `Quick
            test_steady_value_rejects_unbounded;
          Alcotest.test_case "crossing bisection" `Quick
            test_crossing_time_bisection;
          Alcotest.test_case "model zeros" `Quick test_zeros_two_pole;
          Alcotest.test_case "fitted-model zeros" `Quick
            test_zeros_of_fitted_models ] );
      ( "error",
        [ Alcotest.test_case "single exponential norm" `Quick
            test_l2_norm_single_exponential;
          Alcotest.test_case "self distance" `Quick
            test_l2_distance_identical_zero;
          Alcotest.test_case "analytic distance" `Quick
            test_l2_distance_analytic;
          Alcotest.test_case "complex pair norm" `Quick
            test_l2_complex_pair_norm;
          Alcotest.test_case "cauchy repeated-pole fallback" `Quick
            test_cauchy_repeated_pole_fallback;
          Alcotest.test_case "ordering" `Quick
            test_relative_error_orders_correctly;
          Alcotest.test_case "cauchy dominates" `Quick
            test_cauchy_bound_dominates_exact;
          Alcotest.test_case "cauchy with complex pairs" `Quick
            test_cauchy_with_complex_pairs;
          Alcotest.test_case "unstable rejected" `Quick
            test_error_est_rejects_unstable ] );
      ( "driver",
        [ Alcotest.test_case "q1 = Elmore (fig4)" `Quick
            test_awe_q1_is_elmore_on_fig4;
          Alcotest.test_case "final value exact" `Quick
            test_awe_final_value_always_exact;
          Alcotest.test_case "exact at full order" `Quick
            test_awe_exact_at_full_order;
          Alcotest.test_case "fig4 waveform" `Quick
            test_awe_waveform_matches_sim_fig4;
          Alcotest.test_case "ramp superposition" `Quick
            test_awe_ramp_superposition_fig4;
          Alcotest.test_case "slope matching glitch" `Quick
            test_awe_slope_matching_removes_glitch;
          Alcotest.test_case "nonequilibrium IC" `Quick
            test_awe_nonequilibrium_ic;
          Alcotest.test_case "charge-sharing glitch" `Quick
            test_awe_charge_sharing_glitch;
          Alcotest.test_case "floating-cap victim" `Quick
            test_awe_floating_cap_victim;
          Alcotest.test_case "complex poles (fig25)" `Quick
            test_awe_complex_poles_fig25;
          Alcotest.test_case "error vs order (fig25)" `Quick
            test_awe_error_decreases_with_order_fig25;
          Alcotest.test_case "auto escalation" `Quick test_awe_auto_escalates;
          Alcotest.test_case "error estimate sanity" `Quick
            test_awe_error_estimate_tracks_truth;
          Alcotest.test_case "ground output rejected" `Quick
            test_awe_rejects_ground_output;
          Alcotest.test_case "repeated-pole cascade" `Quick
            test_awe_repeated_pole_cascade;
          Alcotest.test_case "shifted moments analytic" `Quick
            test_shifted_moments_analytic;
          Alcotest.test_case "shifted full-order invariance" `Quick
            test_shifted_full_order_invariance;
          Alcotest.test_case "shifted waveform accuracy" `Quick
            test_shifted_waveform_still_matches;
          Alcotest.test_case "branch-current observable" `Quick
            test_branch_current_observable;
          Alcotest.test_case "branch current scope" `Quick
            test_branch_current_rejects_resistor ] );
      ( "baselines",
        [ Alcotest.test_case "elmore walk fig4" `Quick test_elmore_walk_fig4;
          Alcotest.test_case "elmore rejects non-tree" `Quick
            test_elmore_rejects_non_tree;
          Alcotest.test_case "scaled elmore eq3" `Quick
            test_elmore_scaled_matches_eq3;
          Alcotest.test_case "elmore = q1 AWE" `Quick
            test_elmore_matches_q1_awe_on_random_trees;
          Alcotest.test_case "tree/link vs engine" `Quick
            test_tree_link_matches_engine;
          Alcotest.test_case "tree/link with links" `Quick
            test_tree_link_with_links_matches_engine;
          Alcotest.test_case "tree/link eq56" `Quick test_tree_link_eq56;
          Alcotest.test_case "tree/link scope" `Quick
            test_tree_link_rejects_out_of_scope;
          Alcotest.test_case "two-pole fig4" `Quick test_two_pole_fig4;
          Alcotest.test_case "two-pole rejects complex" `Quick
            test_two_pole_rejects_complex ] );
      ( "batch",
        [ Alcotest.test_case "matches individual" `Quick
            test_batch_matches_individual;
          Alcotest.test_case "elmore_all" `Quick test_batch_elmore_all_fig4;
          Alcotest.test_case "path delays ordered" `Quick
            test_batch_delays_ordered_along_path;
          Alcotest.test_case "ground rejected" `Quick
            test_batch_rejects_ground ] );
      ( "shared_engine",
        [ Alcotest.test_case "incremental auto = scratch" `Quick
            test_engine_incremental_auto_matches_scratch;
          Alcotest.test_case "escalation costs two solves" `Quick
            test_engine_escalation_cost_two_solves;
          Alcotest.test_case "auto solve budget" `Quick
            test_engine_auto_solve_budget ] );
      ( "stats",
        [ Alcotest.test_case "merge algebra" `Quick test_stats_merge_algebra;
          Alcotest.test_case "scoped window" `Quick test_stats_scoped_window;
          Alcotest.test_case "scoped exception safety" `Quick
            test_stats_scoped_exception_safe ] );
      ( "ac",
        [ Alcotest.test_case "exact RC lowpass" `Quick
            test_ac_exact_rc_lowpass;
          Alcotest.test_case "model matches exact near s=0" `Quick
            test_ac_model_matches_exact_at_low_freq;
          Alcotest.test_case "low-frequency limit" `Quick
            test_ac_low_frequency_is_dc;
          Alcotest.test_case "log sweep" `Quick test_ac_log_sweep;
          Alcotest.test_case "magnitude dB" `Quick test_ac_magnitude_db ] );
      ( "properties",
        qsuite
          [ prop_q1_equals_elmore;
            prop_full_order_recovers_actual_poles;
            prop_delay_monotone_in_load;
            prop_final_value_exact;
            prop_moments_match_tree_link;
            prop_tree_link_eq56_on_random_trees;
            prop_two_pole_tracks_sim_on_random_trees;
            prop_cauchy_bound_dominates_on_random_trees;
            prop_sparse_moments_match_dense;
            prop_waveform_matches_sim ] ) ]
