(* CLI contract tests: the shared option record used by
   analyze/timing/serve validates its flags in one place, and invalid
   values exit 2 (usage error) before any command body runs.  Run
   against the real binary so the contract covers cmdliner wiring, not
   just the helpers. *)

(* `dune runtest` runs in the test's build directory; `dune exec` runs
   from the workspace root *)
let locate candidates =
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "fixture not found: %s" (List.hd candidates)

let exe () =
  locate [ "../../bin/awesim.exe"; "_build/default/bin/awesim.exe" ]

let deck () = locate [ "../../decks/fig16.sp"; "decks/fig16.sp" ]
let design () = locate [ "../../decks/adder_stage.sta"; "decks/adder_stage.sta" ]

(* run the binary, feeding [stdin_text]; returns (exit code, stdout) *)
let run ?(stdin_text = "") args =
  let cmd =
    String.concat " " (List.map Filename.quote (exe () :: args))
    ^ " 2>/dev/null"
  in
  let out, inp = Unix.open_process cmd in
  (* a command that exits during validation closes the pipe first *)
  (try
     output_string inp stdin_text;
     close_out inp
   with Sys_error _ -> ());
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf out 1
     done
   with End_of_file -> ());
  let status = Unix.close_process (out, inp) in
  let code =
    match status with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED n -> 128 + n
    | Unix.WSTOPPED n -> 128 + n
  in
  (code, Buffer.contents buf)

let check_exit name expected args =
  let code, _ = run args in
  Alcotest.(check int) name expected code

let test_bad_jobs () =
  (* every command sharing the option record rejects a negative --jobs
     identically, before reading anything *)
  check_exit "timing --jobs=-1" 2 [ "timing"; "--jobs=-1"; design () ];
  check_exit "analyze --jobs -1" 2 [ "analyze"; "--jobs=-1"; deck () ];
  check_exit "serve --jobs -1" 2 [ "serve"; "--jobs=-1" ]

let test_bad_model () =
  check_exit "timing --model bogus" 2 [ "timing"; "--model"; "bogus"; design () ];
  check_exit "timing --model 0" 2 [ "timing"; "--model"; "0"; design () ];
  check_exit "serve --model bogus" 2 [ "serve"; "--model"; "bogus" ]

let test_bad_top_k () =
  check_exit "timing --top-k -3" 2 [ "timing"; "--top-k=-3"; design () ]

let test_cache_flag_scope () =
  (* --no-cache belongs to commands that can run cacheless; commands
     whose sessions own their cache reject it as an unknown flag *)
  check_exit "timing --no-cache" 0 [ "timing"; "--no-cache"; design () ];
  check_exit "serve --no-cache" 124 [ "serve"; "--no-cache" ]

let test_serve_stdio () =
  let code, out =
    run
      ~stdin_text:"edit set_r out 0 500\ntiming\nrevert all\nquit\n"
      [ "serve"; design () ]
  in
  Alcotest.(check int) "serve exits cleanly" 0 code;
  let lines =
    String.split_on_char '\n' out |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one response per request (plus the preload)" 5
    (List.length lines);
  List.iteri
    (fun i l ->
      Alcotest.(check bool)
        (Printf.sprintf "line %d is an ok JSON response (%s)" i l)
        true
        (String.length l > 10 && String.sub l 0 10 = {|{"ok":true|}))
    lines

let test_serve_eof () =
  (* closing stdin without quit is a clean shutdown, not a hang *)
  let code, _ = run ~stdin_text:"timing\n" [ "serve"; design () ] in
  Alcotest.(check int) "EOF ends the server" 0 code

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Alcotest.run "cli"
    [ ( "exit-2 contract",
        [ Alcotest.test_case "negative --jobs" `Quick test_bad_jobs;
          Alcotest.test_case "bad --model" `Quick test_bad_model;
          Alcotest.test_case "negative --top-k" `Quick test_bad_top_k;
          Alcotest.test_case "--cache flag scope" `Quick test_cache_flag_scope
        ] );
      ( "serve transport",
        [ Alcotest.test_case "stdio round-trip" `Quick test_serve_stdio;
          Alcotest.test_case "EOF shutdown" `Quick test_serve_eof ] ) ]
