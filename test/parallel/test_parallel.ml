(* The domain pool's contract: ordered results, lowest-index failure
   funneling, schedule-independence, reusability.  The suite forces
   real worker domains even on single-core machines so the cross-domain
   paths are exercised wherever CI runs. *)

let () = Unix.putenv "AWESIM_FORCE_DOMAINS" "1"

let check = Alcotest.check

(* a mildly uneven workload, so tasks finish out of order under real
   parallelism *)
let work i =
  let acc = ref (float_of_int i) in
  for k = 1 to 1000 + (317 * (i mod 7)) do
    acc := !acc +. (1. /. float_of_int k)
  done;
  !acc

let test_ordered_map () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      let xs = Array.init 100 Fun.id in
      let expected = Array.map work xs in
      let got = Parallel.map pool work xs in
      check (Alcotest.array (Alcotest.float 0.)) "input order" expected got)

let test_jobs_equivalence () =
  let xs = Array.init 64 Fun.id in
  let run jobs = Parallel.with_pool ~jobs (fun p -> Parallel.map p work xs) in
  let r1 = run 1 and r4 = run 4 in
  check Alcotest.bool "bit-identical across jobs" true (r1 = r4)

let test_mapi_index () =
  Parallel.with_pool ~jobs:3 (fun pool ->
      let got = Parallel.mapi pool (fun i x -> i + x) (Array.make 20 100) in
      check (Alcotest.array Alcotest.int) "index threading"
        (Array.init 20 (fun i -> i + 100))
        got)

let test_lowest_index_failure () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      match
        Parallel.map
          ~label:(fun i -> Printf.sprintf "task-%d" i)
          pool
          (fun i -> if i = 3 || i = 10 then failwith "boom" else i)
          (Array.init 16 Fun.id)
      with
      | _ -> Alcotest.fail "expected Task_failure"
      | exception Parallel.Task_failure { index; label; exn } ->
        check Alcotest.int "lowest failing index" 3 index;
        check Alcotest.string "label" "task-3" label;
        check Alcotest.bool "carries the original exception" true
          (exn = Failure "boom"))

let test_siblings_complete () =
  (* a failure must not abort sibling tasks: every slot runs *)
  let ran = Array.make 32 false in
  Parallel.with_pool ~jobs:4 (fun pool ->
      (match
         Parallel.map pool
           (fun i ->
             ran.(i) <- true;
             if i = 0 then failwith "first task fails")
           (Array.init 32 Fun.id)
       with
      | _ -> Alcotest.fail "expected Task_failure"
      | exception Parallel.Task_failure _ -> ());
      check Alcotest.bool "all siblings ran" true
        (Array.for_all Fun.id ran))

let test_map_reduce () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      let n = 200 in
      let total =
        Parallel.map_reduce pool
          ~map:(fun i -> i * i)
          ~reduce:( + ) ~init:0
          (Array.init n Fun.id)
      in
      check Alcotest.int "sum of squares" (n * (n - 1) * ((2 * n) - 1) / 6)
        total)

let test_pool_reuse () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      for round = 1 to 5 do
        let got = Parallel.map pool (fun x -> x * round) (Array.init 10 Fun.id) in
        check (Alcotest.array Alcotest.int)
          (Printf.sprintf "round %d" round)
          (Array.init 10 (fun i -> i * round))
          got
      done)

let test_empty_and_singleton () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      check (Alcotest.array Alcotest.int) "empty" [||]
        (Parallel.map pool (fun x -> x) [||]);
      check (Alcotest.array Alcotest.int) "singleton" [| 7 |]
        (Parallel.map pool (fun x -> x + 1) [| 6 |]))

let test_sequential_fallback () =
  let pool = Parallel.create ~jobs:1 () in
  let got = Parallel.map pool (fun x -> x * 2) (Array.init 8 Fun.id) in
  check (Alcotest.array Alcotest.int) "jobs=1 works"
    (Array.init 8 (fun i -> 2 * i)) got;
  Parallel.shutdown pool;
  Parallel.shutdown pool (* idempotent *);
  (* a shut-down pool is dead: mapping on it is a lifecycle bug, not a
     silent sequential run *)
  (match Parallel.map pool (fun x -> x + 1) [| 1; 2 |] with
  | _ -> Alcotest.fail "map on a shut-down pool must raise"
  | exception Invalid_argument _ -> ());
  (* even an empty map is rejected — uniformity over array size *)
  match Parallel.map pool Fun.id ([||] : int array) with
  | _ -> Alcotest.fail "empty map on a shut-down pool must raise"
  | exception Invalid_argument _ -> ()

let test_jobs_validation () =
  (* 0 = the machine's recommended count, negatives are caller bugs *)
  Parallel.with_pool ~jobs:0 (fun pool ->
      check Alcotest.int "jobs=0 means recommended"
        (Parallel.default_jobs ())
        (Parallel.jobs pool));
  match Parallel.create ~jobs:(-3) () with
  | _ -> Alcotest.fail "negative jobs must raise"
  | exception Invalid_argument _ -> ()

let test_jobs_accessor () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      check Alcotest.int "jobs" 4 (Parallel.jobs pool));
  check Alcotest.bool "default_jobs >= 1" true (Parallel.default_jobs () >= 1)

let () =
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "ordered map" `Quick test_ordered_map;
          Alcotest.test_case "jobs equivalence" `Quick test_jobs_equivalence;
          Alcotest.test_case "mapi index" `Quick test_mapi_index;
          Alcotest.test_case "lowest-index failure" `Quick
            test_lowest_index_failure;
          Alcotest.test_case "siblings complete" `Quick test_siblings_complete;
          Alcotest.test_case "map_reduce" `Quick test_map_reduce;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
          Alcotest.test_case "empty and singleton" `Quick
            test_empty_and_singleton;
          Alcotest.test_case "sequential fallback" `Quick
            test_sequential_fallback;
          Alcotest.test_case "jobs validation" `Quick test_jobs_validation;
          Alcotest.test_case "jobs accessor" `Quick test_jobs_accessor ] ) ]
