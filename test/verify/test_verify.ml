(* Tests for the verification harness itself: the oracle passes on
   fixed seeds and is deterministic, the metamorphic properties hold,
   the fuzzers find no parser escapes, and the estimator regression
   deck stays fixed. *)

(* `dune runtest` runs in the test's build directory (decks two levels
   up); `dune exec` runs from the workspace root *)
let deck_path name =
  let candidates =
    [ Filename.concat "../../decks" name; Filename.concat "decks" name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> Alcotest.failf "deck %s not found" name

(* --- oracle ------------------------------------------------------- *)

let test_oracle_fixed_seeds () =
  (* a fixed slice of the sweep the CI smoke also runs; failures print
     the full outcome for reproduction by `awesim verify --seed N` *)
  for seed = 1000 to 1014 do
    let o = Verify.Oracle.check (Verify.Cases.random_case ~seed) in
    if not (Verify.Oracle.passed o) then
      Alcotest.failf "%s" (Format.asprintf "%a" Verify.Oracle.pp_outcome o)
  done

let test_oracle_deterministic () =
  let run () = Verify.Oracle.check (Verify.Cases.random_case ~seed:77) in
  let a = run () and b = run () in
  Alcotest.(check int) "q" a.Verify.Oracle.q b.Verify.Oracle.q;
  Alcotest.(check (float 0.)) "est" a.Verify.Oracle.est b.Verify.Oracle.est;
  Alcotest.(check (float 0.)) "measured" a.Verify.Oracle.measured
    b.Verify.Oracle.measured

let test_case_generator_reproducible () =
  (* the circuit itself, not just the outcome, is a pure function of
     the seed: identical printed decks *)
  List.iter
    (fun seed ->
      let c1 = Verify.Cases.random_case ~seed in
      let c2 = Verify.Cases.random_case ~seed in
      Alcotest.(check string)
        (Printf.sprintf "deck for seed %d" seed)
        (Circuit.Parser.print_deck c1.Verify.Cases.circuit)
        (Circuit.Parser.print_deck c2.Verify.Cases.circuit);
      Alcotest.(check string) "label" c1.Verify.Cases.label
        c2.Verify.Cases.label)
    [ 0; 1; 42; 999 ]

(* --- the estimator regression deck -------------------------------- *)

let test_regress_est_blindspot () =
  (* pins the error-estimate fix: with the base-only estimate this PWL
     tree was accepted at q=1 with a true relative L2 error of ~0.055;
     the grid-based estimate must escalate and land an accurate fit *)
  let d = Circuit.Parser.parse_file (deck_path "regress_est_blindspot.sp") in
  let circuit = d.Circuit.Parser.circuit in
  let node =
    match Circuit.Netlist.find_node circuit "n6" with
    | Some n -> n
    | None -> Alcotest.fail "deck lost its output node"
  in
  let sys = Circuit.Mna.build circuit in
  let a, est = Awe.auto sys ~node in
  Alcotest.(check bool)
    (Printf.sprintf "escalated past q=1 (q=%d)" a.Awe.q)
    true (a.Awe.q > 1);
  let t_stop = 40e-9 in
  let sim = Transim.Transient.simulate_adaptive sys ~t_stop in
  let w = Transim.Transient.node_waveform sim node in
  let wa =
    Waveform.create w.Waveform.times
      (Array.map (Awe.eval a) w.Waveform.times)
  in
  let err = Waveform.relative_l2_error w wa in
  Alcotest.(check bool)
    (Printf.sprintf "accurate fit (rel L2 %.3g, est %.3g)" err est)
    true
    (err <= 0.02)

(* --- metamorphic properties --------------------------------------- *)

let test_props_fixed_seeds () =
  (* every property over a deterministic seed window, so a regression
     names the property and seed directly *)
  List.iter
    (fun (name, prop) ->
      for seed = 0 to 24 do
        try prop ~seed
        with e ->
          Alcotest.failf "property %s failed at seed %d: %s" name seed
            (Printexc.to_string e)
      done)
    Verify.Props.all

(* --- fuzzing ------------------------------------------------------ *)

let test_fuzz_no_escapes () =
  match Verify.Fuzz.run ~seed:7 ~count:400 with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "%s parser escaped on %S: %s" f.Verify.Fuzz.parser
      f.Verify.Fuzz.input f.Verify.Fuzz.exn_text

(* --- the full driver ---------------------------------------------- *)

let test_run_small_sweep () =
  let config =
    { Verify.seed = 5;
      count = 8;
      prop_count = 3;
      fuzz_count = 100;
      tol = Verify.Oracle.default_tol;
      repro_dir = None;
      jobs = 1 }
  in
  let r = Verify.run config in
  Alcotest.(check int) "oracle cases" 8 r.Verify.oracle_run;
  Alcotest.(check int) "prop runs"
    (3 * List.length Verify.Props.all)
    r.Verify.prop_run;
  Alcotest.(check int) "fuzz inputs" 300 r.Verify.fuzz_run;
  if not (Verify.passed r) then
    Alcotest.failf "%s" (Format.asprintf "%a" Verify.pp_report r)

let test_run_jobs_equivalence () =
  (* the parallel fan-out must not change a single verdict: every
     report field folds in index order, so jobs=1 and jobs=2 agree
     bit-for-bit.  Worker domains are forced so the cross-domain path
     runs even on single-core machines (see [Parallel.create]). *)
  Unix.putenv "AWESIM_FORCE_DOMAINS" "1";
  let config jobs =
    { Verify.seed = 11;
      count = 6;
      prop_count = 2;
      fuzz_count = 60;
      tol = Verify.Oracle.default_tol;
      repro_dir = None;
      jobs }
  in
  let r1 = Verify.run (config 1) and r2 = Verify.run (config 2) in
  Alcotest.(check int) "oracle cases" r1.Verify.oracle_run r2.Verify.oracle_run;
  Alcotest.(check bool) "oracle failures identical" true
    (r1.Verify.oracle_failures = r2.Verify.oracle_failures);
  Alcotest.(check bool) "worst error bit-identical" true
    (r1.Verify.worst_measured = r2.Verify.worst_measured);
  let label = function
    | Some c -> c.Verify.Cases.label
    | None -> "<none>"
  in
  Alcotest.(check string) "same worst case" (label r1.Verify.worst_case)
    (label r2.Verify.worst_case);
  Alcotest.(check int) "prop runs" r1.Verify.prop_run r2.Verify.prop_run;
  Alcotest.(check bool) "prop failures identical" true
    (r1.Verify.prop_failures = r2.Verify.prop_failures);
  Alcotest.(check int) "fuzz inputs" r1.Verify.fuzz_run r2.Verify.fuzz_run;
  Alcotest.(check bool) "fuzz failures identical" true
    (r1.Verify.fuzz_failures = r2.Verify.fuzz_failures)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "verify"
    [ ( "oracle",
        [ Alcotest.test_case "fixed seeds pass" `Quick test_oracle_fixed_seeds;
          Alcotest.test_case "deterministic" `Quick test_oracle_deterministic;
          Alcotest.test_case "generator reproducible" `Quick
            test_case_generator_reproducible ] );
      ( "regressions",
        [ Alcotest.test_case "estimator blind spot deck" `Quick
            test_regress_est_blindspot ] );
      ( "props",
        Alcotest.test_case "fixed seed window" `Quick test_props_fixed_seeds
        :: qsuite (Verify.Props.tests ~count:15) );
      ( "fuzz",
        [ Alcotest.test_case "no parser escapes" `Quick test_fuzz_no_escapes ] );
      ( "driver",
        [ Alcotest.test_case "small sweep passes" `Quick test_run_small_sweep;
          Alcotest.test_case "jobs-deterministic sweep" `Quick
            test_run_jobs_equivalence ] )
    ]
