(* Tests for the circuit substrate: elements, netlists, topology, MNA,
   operating points, deck parsing, and the paper's sample circuits. *)

open Circuit

let check_float = Alcotest.(check (float 1e-9))

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Element waveforms *)

let test_waveform_eval () =
  let step = Element.Step { v0 = 1.; v1 = 5. } in
  check_float "step before" 1. (Element.eval step (-1.));
  check_float "step at 0" 5. (Element.eval step 0.);
  let ramp = Element.Ramp { v0 = 0.; v1 = 4.; t_delay = 1.; t_rise = 2. } in
  check_float "ramp before delay" 0. (Element.eval ramp 0.5);
  check_float "ramp midpoint" 2. (Element.eval ramp 2.);
  check_float "ramp after" 4. (Element.eval ramp 10.);
  let pwl = Element.Pwl [ (0., 0.); (1., 2.); (3., -2.) ] in
  check_float "pwl interp" 1. (Element.eval pwl 0.5);
  check_float "pwl second segment" 0. (Element.eval pwl 2.);
  check_float "pwl hold" (-2.) (Element.eval pwl 99.)

let test_canonicalize_step () =
  let c = Element.canonicalize (Element.Step { v0 = 1.; v1 = 5. }) in
  check_float "pre" 1. c.Element.pre;
  check_float "v0" 5. c.Element.v0;
  check_float "slope" 0. c.Element.slope0;
  Alcotest.(check int) "no breaks" 0 (List.length c.Element.breaks)

let test_canonicalize_ramp_zero_delay () =
  let c =
    Element.canonicalize
      (Element.Ramp { v0 = 0.; v1 = 5.; t_delay = 0.; t_rise = 1e-3 })
  in
  check_float "slope" 5e3 c.Element.slope0;
  (match c.Element.breaks with
  | [ (t, dr) ] ->
    check_float "break time" 1e-3 t;
    check_float "slope change" (-5e3) dr
  | _ -> Alcotest.fail "expected one break")

let test_canonicalize_matches_eval () =
  let waves =
    [ Element.Dc 3.;
      Element.Step { v0 = -1.; v1 = 2. };
      Element.Ramp { v0 = 1.; v1 = 5.; t_delay = 0.5; t_rise = 2. };
      Element.Pwl [ (0., 0.); (1., 3.); (2., 3.); (4., -1.) ] ]
  in
  List.iter
    (fun w ->
      let c = Element.canonicalize w in
      List.iter
        (fun t ->
          check_close ~tol:1e-9
            (Printf.sprintf "t=%g" t)
            (Element.eval w t)
            (Element.eval_canonical c t))
        [ 0.; 0.3; 0.9; 1.5; 2.5; 3.7; 10. ])
    waves

let test_canonicalize_rejects_bad () =
  Alcotest.check_raises "non-positive rise"
    (Invalid_argument "Element: ramp rise time must be positive") (fun () ->
      ignore
        (Element.canonicalize
           (Element.Ramp { v0 = 0.; v1 = 1.; t_delay = 0.; t_rise = 0. })));
  Alcotest.check_raises "non-increasing PWL"
    (Invalid_argument "Element: PWL times must be strictly increasing")
    (fun () ->
      ignore (Element.canonicalize (Element.Pwl [ (1., 0.); (1., 2.) ])))

(* ------------------------------------------------------------------ *)
(* Netlist *)

let test_netlist_ground_aliases () =
  let b = Netlist.create () in
  Alcotest.(check int) "0" 0 (Netlist.node b "0");
  Alcotest.(check int) "gnd" 0 (Netlist.node b "gnd");
  Alcotest.(check int) "GROUND" 0 (Netlist.node b "GROUND");
  Alcotest.(check int) "case insensitive" (Netlist.node b "N1")
    (Netlist.node b "n1")

let test_netlist_duplicate_names () =
  let b = Netlist.create () in
  Netlist.add_r b "r1" "a" "b" 1.;
  Netlist.add_r b "R1" "b" "c" 2.;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Netlist: duplicate element name r1") (fun () ->
      ignore (Netlist.freeze b))

let test_netlist_value_validation () =
  let b = Netlist.create () in
  Netlist.add_r b "r1" "a" "0" (-5.);
  Alcotest.check_raises "negative resistance"
    (Invalid_argument "Netlist: resistor r1 must have a positive value")
    (fun () -> ignore (Netlist.freeze b))

let test_netlist_unknown_vctrl () =
  let b = Netlist.create () in
  Netlist.add_r b "r1" "a" "0" 5.;
  Netlist.add_cccs b "f1" "a" "0" "vmissing" 2.;
  (match Netlist.freeze b with
  | _ -> Alcotest.fail "expected failure"
  | exception Invalid_argument _ -> ())

let test_netlist_lookups () =
  let f4 = Samples.fig4 () in
  Alcotest.(check bool) "find element" true
    (Netlist.find_element f4.Samples.circuit "R3" <> None);
  Alcotest.(check bool) "find node" true
    (Netlist.find_node f4.Samples.circuit "n4" = Some f4.Samples.n4);
  Alcotest.(check int) "caps" 4 (List.length (Netlist.caps f4.Samples.circuit));
  Alcotest.(check int) "sources" 1
    (List.length (Netlist.sources f4.Samples.circuit))

(* ------------------------------------------------------------------ *)
(* Topology *)

let test_topology_fig4_is_tree () =
  let f4 = Samples.fig4 () in
  let p = Topology.analyze f4.Samples.circuit in
  Alcotest.(check bool) "rc tree" true p.Topology.is_rc_tree;
  Alcotest.(check bool) "no floating caps" false p.Topology.has_floating_caps;
  Alcotest.(check bool) "no grounded R" false
    p.Topology.has_grounded_resistors;
  Alcotest.(check bool) "no loops" false p.Topology.has_resistor_loops

let test_topology_fig9_grounded_r () =
  let f9 = Samples.fig9 () in
  let p = Topology.analyze f9.Samples.circuit in
  Alcotest.(check bool) "not a tree" false p.Topology.is_rc_tree;
  Alcotest.(check bool) "grounded R" true p.Topology.has_grounded_resistors

let test_topology_fig22_floating () =
  let f22, _ = Samples.fig22 () in
  let p = Topology.analyze f22.Samples.circuit in
  Alcotest.(check bool) "floating caps" true p.Topology.has_floating_caps;
  Alcotest.(check int) "one floating group" 1
    (List.length p.Topology.floating_groups)

let test_topology_fig25_inductors () =
  let f25 = Samples.fig25 () in
  let p = Topology.analyze f25.Samples.circuit in
  Alcotest.(check bool) "inductors" true p.Topology.has_inductors;
  Alcotest.(check bool) "not a tree" false p.Topology.is_rc_tree

let test_topology_resistor_loop () =
  let b = Netlist.create () in
  Netlist.add_v b "v1" "in" "0" (Element.Dc 1.);
  Netlist.add_r b "r1" "in" "a" 1.;
  Netlist.add_r b "r2" "a" "b" 1.;
  Netlist.add_r b "r3" "b" "in" 1.;
  Netlist.add_c b "c1" "b" "0" 1.;
  let p = Topology.analyze (Netlist.freeze b) in
  Alcotest.(check bool) "loop detected" true p.Topology.has_resistor_loops;
  Alcotest.(check bool) "not a tree" false p.Topology.is_rc_tree

let test_rc_tree_parent () =
  let f4 = Samples.fig4 () in
  let parents = Topology.rc_tree_parent f4.Samples.circuit in
  (match parents.(f4.Samples.n4) with
  | Some (p, r) ->
    Alcotest.(check int) "n4 parent" f4.Samples.n3 p;
    check_float "n4 edge" 1e3 r
  | None -> Alcotest.fail "n4 should have a parent");
  let f25 = Samples.fig25 () in
  (match Topology.rc_tree_parent f25.Samples.circuit with
  | _ -> Alcotest.fail "fig25 is not an RC tree"
  | exception Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* MNA *)

let test_mna_voltage_divider () =
  (* V 1V -- R 1k -- out -- R 1k -- gnd: DC solve gives 0.5 *)
  let b = Netlist.create () in
  Netlist.add_v b "v1" "in" "0" (Element.Dc 1.);
  Netlist.add_r b "r1" "in" "out" 1e3;
  Netlist.add_r b "r2" "out" "0" 1e3;
  let out = Netlist.node b "out" in
  let sys = Mna.build (Netlist.freeze b) in
  let solver = Mna.dc_factor sys in
  let rhs = Linalg.Matrix.mul_vec (Mna.b sys) (Mna.u_at sys 0.) in
  let x = Mna.dc_solve solver ~rhs ~charges:[||] in
  check_close "divider" 0.5 (Mna.voltage sys x out)

let test_mna_source_current () =
  (* the V-source branch current equals the load current *)
  let b = Netlist.create () in
  Netlist.add_v b "v1" "in" "0" (Element.Dc 2.);
  Netlist.add_r b "r1" "in" "0" 100.;
  let ckt = Netlist.freeze b in
  let sys = Mna.build ckt in
  let solver = Mna.dc_factor sys in
  let rhs = Linalg.Matrix.mul_vec (Mna.b sys) (Mna.u_at sys 0.) in
  let x = Mna.dc_solve solver ~rhs ~charges:[||] in
  (match Mna.branch_var sys 0 with
  | Some bv -> check_close "branch current" (-0.02) x.(bv)
  | None -> Alcotest.fail "V source must have a branch variable")

let test_mna_controlled_sources () =
  (* VCVS doubling a divider: E = 2 * v(mid); v(mid) = 0.5 *)
  let b = Netlist.create () in
  Netlist.add_v b "v1" "in" "0" (Element.Dc 1.);
  Netlist.add_r b "r1" "in" "mid" 1e3;
  Netlist.add_r b "r2" "mid" "0" 1e3;
  Netlist.add_vcvs b "e1" "out" "0" "mid" "0" 2.;
  Netlist.add_r b "r3" "out" "0" 1e3;
  let out = Netlist.node b "out" in
  let sys = Mna.build (Netlist.freeze b) in
  let solver = Mna.dc_factor sys in
  let rhs = Linalg.Matrix.mul_vec (Mna.b sys) (Mna.u_at sys 0.) in
  let x = Mna.dc_solve solver ~rhs ~charges:[||] in
  check_close "vcvs output" 1. (Mna.voltage sys x out)

let test_mna_vccs () =
  (* G element: i = gm * v(in); into 1 ohm load: v(out) = -gm * v(in) *)
  let b = Netlist.create () in
  Netlist.add_v b "v1" "in" "0" (Element.Dc 1.);
  Netlist.add_vccs b "g1" "out" "0" "in" "0" 0.5;
  Netlist.add_r b "rl" "out" "0" 1. ;
  let out = Netlist.node b "out" in
  let sys = Mna.build (Netlist.freeze b) in
  let solver = Mna.dc_factor sys in
  let rhs = Linalg.Matrix.mul_vec (Mna.b sys) (Mna.u_at sys 0.) in
  let x = Mna.dc_solve solver ~rhs ~charges:[||] in
  check_close "vccs output" (-0.5) (Mna.voltage sys x out)

let test_mna_cccs () =
  (* F element mirrors the current of v-source branch *)
  let b = Netlist.create () in
  Netlist.add_v b "v1" "in" "0" (Element.Dc 1.);
  Netlist.add_r b "r1" "in" "0" 1.;
  (* i(v1) = -1 A *)
  Netlist.add_cccs b "f1" "out" "0" "v1" 1.;
  Netlist.add_r b "rl" "out" "0" 2.;
  let out = Netlist.node b "out" in
  let sys = Mna.build (Netlist.freeze b) in
  let solver = Mna.dc_factor sys in
  let rhs = Linalg.Matrix.mul_vec (Mna.b sys) (Mna.u_at sys 0.) in
  let x = Mna.dc_solve solver ~rhs ~charges:[||] in
  (* current -1 (flowing out->gnd through F) over 2 ohm *)
  check_close "cccs output" 2. (Mna.voltage sys x out)

let test_mna_charge_group_fig22 () =
  let f22, victim = Samples.fig22 () in
  let sys = Mna.build f22.Samples.circuit in
  Alcotest.(check int) "one group" 1 (Mna.charge_group_count sys);
  let coeffs = Mna.charge_coeffs sys 0 in
  (* the conserved-charge row weights the victim node by C11 + C12 and
     the aggressor by -C11 *)
  let v_victim = Mna.node_var sys victim in
  let v_out = Mna.node_var sys f22.Samples.output in
  check_close ~tol:1e-25 "victim coeff" (85e-15 +. 255e-15) coeffs.(v_victim);
  check_close ~tol:1e-25 "aggressor coeff" (-85e-15) coeffs.(v_out)

let test_mna_reject_floating () =
  let f22, _ = Samples.fig22 () in
  (match Mna.build ~floating:`Reject f22.Samples.circuit with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ())

let test_mna_isource_into_floating_group () =
  let b = Netlist.create () in
  Netlist.add_v b "v1" "in" "0" (Element.Dc 1.);
  Netlist.add_r b "r1" "in" "a" 1.;
  Netlist.add_c b "c1" "a" "x" 1e-12;
  Netlist.add_i b "i1" "x" "0" (Element.Dc 1e-3);
  (match Mna.build (Netlist.freeze b) with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ())

let test_mna_state_derivative_rc () =
  (* RC charging: at t=0+, dv/dt = V/(RC) *)
  let b = Netlist.create () in
  Netlist.add_v b "v1" "in" "0" (Element.Step { v0 = 0.; v1 = 1. });
  Netlist.add_r b "r1" "in" "out" 1e3;
  Netlist.add_c b "c1" "out" "0" 1e-6;
  let out = Netlist.node b "out" in
  let sys = Mna.build (Netlist.freeze b) in
  let op0 = Dc.initial sys in
  let op0p = Dc.at_zero_plus sys op0 in
  match Mna.state_derivative sys ~x:op0p.Dc.x ~u:(Mna.u_at sys 0.) with
  | Some (xdot, mask) ->
    let v = Mna.node_var sys out in
    Alcotest.(check bool) "dynamic" true mask.(v);
    check_close ~tol:1e-6 "initial slope" 1e3 xdot.(v)
  | None -> Alcotest.fail "derivative should exist"

let coupled_tanks k =
  (* two identical LC tanks coupled magnetically *)
  let b = Netlist.create () in
  Netlist.add_r b "rs" "a" "0" 1e6;
  Netlist.add_l b "l1" "a" "0" 1e-6;
  Netlist.add_c ~ic:1. b "c1" "a" "0" 1e-9;
  Netlist.add_l b "l2" "bb" "0" 1e-6;
  Netlist.add_c ~ic:0. b "c2" "bb" "0" 1e-9;
  Netlist.add_r b "rs2" "bb" "0" 1e6;
  Netlist.add_k b "k12" "l1" "l2" k;
  Netlist.freeze b

let test_mutual_split_modes () =
  (* coupled tanks resonate at w± = 1/sqrt(L(1±k)C) *)
  let k = 0.5 and l = 1e-6 and cc = 1e-9 in
  let sys = Mna.build (coupled_tanks k) in
  let g = Mna.g sys and cm = Mna.c sys in
  let f = Linalg.Lu.factor g in
  let n = Mna.size sys in
  let m = Linalg.Matrix.create n n in
  for j = 0 to n - 1 do
    let col = Linalg.Lu.solve f (Linalg.Matrix.col cm j) in
    for i = 0 to n - 1 do
      m.(i).(j) <- -.col.(i)
    done
  done;
  let mags =
    Linalg.Eigen.circuit_poles m
    |> List.map Linalg.Cx.abs
    |> List.sort_uniq (fun a b ->
           if Float.abs (a -. b) < 1. then 0 else Float.compare a b)
  in
  match mags with
  | [ w_low; w_high ] ->
    check_close ~tol:1e1 "low mode" (1. /. sqrt (l *. 1.5 *. cc)) w_low;
    check_close ~tol:1e1 "high mode" (1. /. sqrt (l *. 0.5 *. cc)) w_high
  | ms -> Alcotest.failf "expected 2 mode magnitudes, got %d" (List.length ms)

let test_mutual_symmetric_storage () =
  let sys = Mna.build (coupled_tanks 0.3) in
  Alcotest.(check bool) "C symmetric with coupling" true
    (Linalg.Matrix.is_symmetric ~tol:1e-18 (Mna.c sys))

let test_mutual_validation () =
  let bad k =
    let b = Netlist.create () in
    Netlist.add_v b "v" "in" "0" (Element.Dc 1.);
    Netlist.add_l b "l1" "in" "a" 1e-6;
    Netlist.add_r b "r1" "a" "0" 50.;
    Netlist.add_l b "l2" "a" "0" 1e-6;
    Netlist.add_k b "kx" "l1" "l2" k;
    Netlist.freeze b
  in
  (match bad 1.5 with
  | _ -> Alcotest.fail "k >= 1 accepted"
  | exception Invalid_argument _ -> ());
  let missing () =
    let b = Netlist.create () in
    Netlist.add_l b "l1" "a" "0" 1e-6;
    Netlist.add_r b "r1" "a" "0" 50.;
    Netlist.add_k b "kx" "l1" "nope" 0.5;
    Netlist.freeze b
  in
  (match missing () with
  | _ -> Alcotest.fail "unknown inductor accepted"
  | exception Invalid_argument _ -> ());
  let selfref () =
    let b = Netlist.create () in
    Netlist.add_l b "l1" "a" "0" 1e-6;
    Netlist.add_r b "r1" "a" "0" 50.;
    Netlist.add_k b "kx" "l1" "L1" 0.5;
    Netlist.freeze b
  in
  match selfref () with
  | _ -> Alcotest.fail "self coupling accepted"
  | exception Invalid_argument _ -> ()

let test_parse_k_card () =
  let deck =
    Parser.parse_string
      "v1 in 0 dc 1\nl1 in a 10n\nr1 a 0 50\nl2 b 0 10n\nr2 b 0 50\nkx l1 l2 0.8\n"
  in
  match Netlist.find_element deck.Parser.circuit "kx" with
  | Some (Element.Mutual { k; _ }) ->
    check_close "coupling coefficient" 0.8 k
  | _ -> Alcotest.fail "K card not parsed"

(* ------------------------------------------------------------------ *)
(* DC operating points *)

let test_dc_initial_equilibrium () =
  let f4 = Samples.fig4 () in
  let sys = Mna.build f4.Samples.circuit in
  let op = Dc.initial sys in
  (* pre-step input is 0: everything rests at 0 *)
  Array.iter (fun (_, v) -> check_close "cap voltage" 0. v) op.Dc.cap_v;
  Array.iter (fun (_, i) -> check_close "cap current" 0. i) op.Dc.cap_i

let test_dc_initial_with_ic () =
  let f16 = Samples.fig16 ~v_c6:5.0 () in
  let sys = Mna.build f16.Samples.circuit in
  let op = Dc.initial sys in
  let c6_idx, _ =
    List.find
      (fun (_, e) -> Element.name e = "c6")
      (Netlist.caps f16.Samples.circuit)
  in
  let _, v6 = Array.to_list op.Dc.cap_v |> List.find (fun (i, _) -> i = c6_idx) in
  check_close "c6 pinned" 5.0 v6

let test_dc_zero_plus_jump () =
  (* at 0+ the source has stepped but cap voltages have not moved *)
  let f4 = Samples.fig4 () in
  let sys = Mna.build f4.Samples.circuit in
  let op0 = Dc.initial sys in
  let op0p = Dc.at_zero_plus sys op0 in
  Array.iter (fun (_, v) -> check_close "caps still at 0" 0. v) op0p.Dc.cap_v;
  (* but current now flows through the caps *)
  let total_current =
    Array.fold_left (fun acc (_, i) -> acc +. Float.abs i) 0. op0p.Dc.cap_i
  in
  Alcotest.(check bool) "caps charging" true (total_current > 1e-6)

let test_dc_inductor_short () =
  (* at DC an inductor is a short: divider through it *)
  let b = Netlist.create () in
  Netlist.add_v b "v1" "in" "0" (Element.Dc 1.);
  Netlist.add_r b "r1" "in" "a" 1e3;
  Netlist.add_l b "l1" "a" "out" 1e-9;
  Netlist.add_r b "r2" "out" "0" 1e3;
  let a = Netlist.node b "a" in
  let out = Netlist.node b "out" in
  let sys = Mna.build (Netlist.freeze b) in
  let op = Dc.initial sys in
  check_close "l shorts" (Mna.voltage sys op.Dc.x a)
    (Mna.voltage sys op.Dc.x out);
  check_close "divider" 0.5 (Mna.voltage sys op.Dc.x out);
  let _, i_l = op.Dc.ind_i.(0) in
  check_close ~tol:1e-9 "inductor current" 5e-4 i_l

let test_dc_floating_defaults_zero () =
  let f22, victim = Samples.fig22 () in
  let sys = Mna.build f22.Samples.circuit in
  let op = Dc.initial sys in
  check_close "victim at 0" 0. (Mna.voltage sys op.Dc.x victim)

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_values () =
  let cases =
    [ ("1k", 1e3); ("2.2meg", 2.2e6); ("100n", 1e-7); ("0.5p", 5e-13);
      ("3", 3.); ("1e-9", 1e-9); ("4ohm", 4.); ("10nF", 1e-8);
      ("-2.5m", -2.5e-3); ("1g", 1e9); ("2f", 2e-15); ("5u", 5e-6) ]
  in
  List.iter
    (fun (s, want) ->
      match Parser.parse_value s with
      | Some got ->
        check_close ~tol:(1e-12 *. Float.max 1. (Float.abs want)) s want got
      | None -> Alcotest.failf "failed to parse %S" s)
    cases;
  Alcotest.(check bool) "garbage rejected" true
    (Parser.parse_value "abc" = None)

let fig4_deck =
  {|* fig 4 RC tree
vin in 0 step(0 5)
r1 in n1 1k
c1 n1 0 0.1u
r2 n1 n2 1k
c2 n2 0 0.1u
r3 n1 n3 1k
c3 n3 0 0.1u
r4 n3 n4 1k
c4 n4 0 0.1u
.tran 5m 1000
.awe n4 2
.end
|}

let test_parse_fig4_deck () =
  let deck = Parser.parse_string fig4_deck in
  Alcotest.(check int) "elements" 9
    (Netlist.element_count deck.Parser.circuit);
  Alcotest.(check int) "directives" 2 (List.length deck.Parser.directives);
  let p = Topology.analyze deck.Parser.circuit in
  Alcotest.(check bool) "is rc tree" true p.Topology.is_rc_tree;
  (match deck.Parser.directives with
  | [ Parser.Tran { t_stop; steps } ; Parser.Awe_node { node; order } ] ->
    check_float "tstop" 5e-3 t_stop;
    Alcotest.(check (option int)) "steps" (Some 1000) steps;
    Alcotest.(check string) "awe node" "n4" node;
    Alcotest.(check (option int)) "order" (Some 2) order
  | _ -> Alcotest.fail "directives parsed wrong")

let test_parse_continuation_and_comments () =
  let deck =
    Parser.parse_string
      "v1 a 0 pwl(0 0\n+ 1n 5) ; trailing comment\nr1 a 0 1k\n* comment\n"
  in
  Alcotest.(check int) "elements" 2 (Netlist.element_count deck.Parser.circuit);
  match Netlist.find_element deck.Parser.circuit "v1" with
  | Some (Element.Vsource { wave = Element.Pwl pts; _ }) ->
    Alcotest.(check int) "pwl points" 2 (List.length pts)
  | _ -> Alcotest.fail "v1 should be a PWL source"

let test_parse_ic_variants () =
  let deck =
    Parser.parse_string
      "v1 in 0 step(0 5)\nr1 in a 1k\nc1 a 0 1p ic=2.5\nr2 a b 1k\nc2 b 0 1p\n.ic v(b)=1.5\n"
  in
  let caps = Netlist.caps deck.Parser.circuit in
  let ic_of name =
    match
      List.find_map
        (fun (_, e) ->
          match e with
          | Element.Capacitor { name = n; ic; _ } when n = name -> Some ic
          | _ -> None)
        caps
    with
    | Some ic -> ic
    | None -> Alcotest.failf "cap %s missing" name
  in
  Alcotest.(check (option (float 1e-12))) "inline IC" (Some 2.5) (ic_of "c1");
  Alcotest.(check (option (float 1e-12))) ".ic directive" (Some 1.5)
    (ic_of "c2")

let test_parse_controlled_sources () =
  let deck =
    Parser.parse_string
      "v1 in 0 dc 1\nr1 in m 1k\nr2 m 0 1k\ne1 o 0 m 0 2\nrload o 0 1k\nh1 p 0 v1 50\nrp p 0 1k\n"
  in
  Alcotest.(check int) "elements" 7 (Netlist.element_count deck.Parser.circuit)

let test_parse_errors_carry_line () =
  (match Parser.parse_string "v1 in 0 dc 1\nrbroken in\n" with
  | _ -> Alcotest.fail "expected parse error"
  | exception Parser.Parse_error (line, _) ->
    Alcotest.(check int) "line number" 2 line);
  (* an unknown first card is absorbed as the title; the same card on a
     later line is an error *)
  (match Parser.parse_string "q1 a b c\nv1 a 0 dc 1\nr1 a 0 1k\n" with
  | deck -> Alcotest.(check (option string)) "title" (Some "q1 a b c")
              deck.Parser.title
  | exception Parser.Parse_error _ -> Alcotest.fail "title line rejected");
  match Parser.parse_string "v1 a 0 dc 1\nq1 a b c\n" with
  | _ -> Alcotest.fail "unknown card accepted"
  | exception Parser.Parse_error (line, _) ->
    Alcotest.(check int) "unknown card line" 2 line

let test_parse_title_line () =
  let deck = Parser.parse_string "my test circuit\nv1 a 0 dc 1\nr1 a 0 1k\n" in
  Alcotest.(check (option string)) "title" (Some "my test circuit")
    deck.Parser.title

let test_print_deck_roundtrip_samples () =
  (* every paper circuit serializes and parses back identically *)
  let circuits =
    [ (Samples.fig4 ()).Samples.circuit;
      (Samples.fig9 ()).Samples.circuit;
      (Samples.fig16 ~v_c6:5.0 ()).Samples.circuit;
      (fst (Samples.fig22 ())).Samples.circuit;
      (Samples.fig25 ()).Samples.circuit;
      Samples.fig8 () ]
  in
  List.iter
    (fun ckt ->
      let text = Parser.print_deck ~title:"roundtrip" ckt in
      let back = (Parser.parse_string text).Parser.circuit in
      Alcotest.(check int) "node count" ckt.Netlist.node_count
        back.Netlist.node_count;
      Alcotest.(check int) "element count"
        (Netlist.element_count ckt)
        (Netlist.element_count back);
      Array.iteri
        (fun i e ->
          let e' = back.Netlist.elements.(i) in
          Alcotest.(check string) "element repr"
            (Format.asprintf "%a" Element.pp e)
            (Format.asprintf "%a" Element.pp e'))
        ckt.Netlist.elements)
    circuits

let prop_print_parse_roundtrip =
  QCheck2.Test.make ~name:"random circuits survive print/parse" ~count:60
    QCheck2.Gen.(pair (int_range 1 12) (int_range 0 1000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed |] in
      let b = Netlist.create () in
      let wave =
        match Random.State.int st 4 with
        | 0 -> Element.Dc (Random.State.float st 10. -. 5.)
        | 1 -> Element.Step { v0 = 0.; v1 = Random.State.float st 5. }
        | 2 ->
          Element.Ramp
            { v0 = 0.;
              v1 = Random.State.float st 5.;
              t_delay = Random.State.float st 1e-9;
              t_rise = 1e-10 +. Random.State.float st 1e-9 }
        | _ -> Element.Pwl [ (0., 0.); (1e-9, Random.State.float st 5.) ]
      in
      Netlist.add_v b "v1" "in" "0" wave;
      for k = 1 to n do
        let parent =
          if k = 1 then "in" else Printf.sprintf "n%d" (1 + Random.State.int st (k - 1))
        in
        let me = Printf.sprintf "n%d" k in
        Netlist.add_r b (Printf.sprintf "r%d" k) parent me
          (1. +. Random.State.float st 1e4);
        match Random.State.int st 3 with
        | 0 -> Netlist.add_c b (Printf.sprintf "c%d" k) me "0"
                 (1e-15 +. Random.State.float st 1e-11)
        | 1 -> Netlist.add_c ~ic:(Random.State.float st 5.) b
                 (Printf.sprintf "c%d" k) me "0"
                 (1e-15 +. Random.State.float st 1e-11)
        | _ -> Netlist.add_l b (Printf.sprintf "l%d" k) me "0"
                 (1e-12 +. Random.State.float st 1e-8)
      done;
      let ckt = Netlist.freeze b in
      let back = (Parser.parse_string (Parser.print_deck ckt)).Parser.circuit in
      Netlist.element_count back = Netlist.element_count ckt
      && back.Netlist.node_count = ckt.Netlist.node_count
      && Array.for_all2
           (fun e e' ->
             Format.asprintf "%a" Element.pp e
             = Format.asprintf "%a" Element.pp e')
           ckt.Netlist.elements back.Netlist.elements)

let test_parse_negative_cases () =
  let rejects deck what =
    match Parser.parse_string deck with
    | _ -> Alcotest.failf "%s accepted" what
    | exception Parser.Parse_error _ -> ()
  in
  rejects "v1 a 0 dc 1\nr1 a 0 pwl(1 2\n" "unbalanced parentheses";
  rejects "r0 a 0 1\nv1 a 0 pulse(0 5)\n" "unknown waveform";
  rejects "r0 a 0 1\nv1 a 0 pwl(0 0 1n)\n" "odd PWL args";
  rejects "v1 a 0 dc 1\nc1 a 0 1p ic=1 ic=2\n" "duplicate IC";
  rejects "v1 a 0 dc 1\nc1 a 0 1p frob=2\n" "unknown parameter";
  rejects "v1 a 0 dc 1\nr1 a 0 1k\n.ic w(a)=1\n" "malformed .ic";
  rejects "v1 a 0 dc 1\nr1 a 0 1k\n.ic v(zz)=1\n" ".ic unknown node";
  rejects "v1 a 0 dc 1\nr1 a 0 1k\n.frobnicate\n" "unknown directive";
  rejects "+ continuation first\nv1 a 0 dc 1\n" "leading continuation";
  rejects "r1 a 0 1k\nv1 a 0 dc abc\n" "garbage value"

let test_parse_empty_deck () =
  match Parser.parse_string "" with
  | _ -> Alcotest.fail "empty deck accepted"
  | exception Parser.Parse_error (0, _) -> ()
  | exception Parser.Parse_error _ -> ()
  | exception Invalid_argument _ -> ()

let test_tree_link_scope_rejections () =
  let open Awe in
  (* two sources *)
  let b = Netlist.create () in
  Netlist.add_v b "v1" "a" "0" (Element.Step { v0 = 0.; v1 = 1. });
  Netlist.add_v b "v2" "b" "0" (Element.Step { v0 = 0.; v1 = 1. });
  Netlist.add_r b "r1" "a" "b" 1e3;
  Netlist.add_c b "c1" "b" "0" 1e-12;
  (match Tree_link.prepare (Netlist.freeze b) with
  | _ -> Alcotest.fail "two sources accepted"
  | exception Tree_link.Unsupported _ -> ());
  (* ramp source *)
  let b2 = Netlist.create () in
  Netlist.add_v b2 "v1" "a" "0"
    (Element.Ramp { v0 = 0.; v1 = 1.; t_delay = 0.; t_rise = 1e-9 });
  Netlist.add_r b2 "r1" "a" "x" 1e3;
  Netlist.add_c b2 "c1" "x" "0" 1e-12;
  (match Tree_link.prepare (Netlist.freeze b2) with
  | _ -> Alcotest.fail "ramp source accepted"
  | exception Tree_link.Unsupported _ -> ());
  (* mixed ICs: some capacitors initialized, some not *)
  let b3 = Netlist.create () in
  Netlist.add_v b3 "v1" "a" "0" (Element.Step { v0 = 0.; v1 = 1. });
  Netlist.add_r b3 "r1" "a" "x" 1e3;
  Netlist.add_c ~ic:1. b3 "c1" "x" "0" 1e-12;
  Netlist.add_r b3 "r2" "x" "y" 1e3;
  Netlist.add_c b3 "c2" "y" "0" 1e-12;
  match Tree_link.prepare (Netlist.freeze b3) with
  | _ -> Alcotest.fail "mixed ICs accepted"
  | exception Tree_link.Unsupported _ -> ()

let test_mna_accessors () =
  let f4 = Samples.fig4 () in
  let sys = Mna.build f4.Samples.circuit in
  Alcotest.(check int) "one source" 1 (Mna.source_count sys);
  Alcotest.(check int) "source element is vin" 0 (Mna.source_element sys 0);
  (match Mna.source_waveform sys 0 with
  | Element.Step { v1; _ } -> check_close "step level" 5. v1
  | _ -> Alcotest.fail "expected a step");
  let u = Mna.u_at sys 1. in
  check_close "u(1)" 5. u.(0);
  Alcotest.(check int) "no charge groups" 0 (Mna.charge_group_count sys);
  (* ground voltage reads 0 from any state vector *)
  check_close "ground" 0. (Mna.voltage sys (Array.make (Mna.size sys) 7.) 0)

(* ------------------------------------------------------------------ *)
(* Samples sanity *)

let test_samples_fig4_elmore_constant () =
  check_float "elmore closed form" 7e-4 Samples.fig4_elmore_n4

let test_samples_random_tree_is_tree () =
  for seed = 1 to 5 do
    let ckt, _ = Samples.random_rc_tree ~seed ~n:20 () in
    let p = Topology.analyze ckt in
    Alcotest.(check bool) "random tree is a tree" true p.Topology.is_rc_tree
  done

let test_samples_random_mesh_has_loops () =
  let ckt, _ = Samples.random_rc_mesh ~seed:7 ~n:15 ~extra:5 () in
  let p = Topology.analyze ckt in
  Alcotest.(check bool) "mesh has loops" true p.Topology.has_resistor_loops

let prop_mna_dc_matches_divider =
  QCheck2.Test.make ~name:"series RC ladder DC equals source" ~count:50
    QCheck2.Gen.(int_range 1 20)
    (fun n ->
      (* at DC with caps open, no current flows: all nodes at source *)
      let b = Netlist.create () in
      Netlist.add_v b "v1" "n0" "0" (Element.Dc 3.3);
      for k = 1 to n do
        Netlist.add_r b
          (Printf.sprintf "r%d" k)
          (Printf.sprintf "n%d" (k - 1))
          (Printf.sprintf "n%d" k)
          (float_of_int (100 * k));
        Netlist.add_c b
          (Printf.sprintf "c%d" k)
          (Printf.sprintf "n%d" k)
          "0" 1e-12
      done;
      let last = Netlist.node b (Printf.sprintf "n%d" n) in
      let sys = Mna.build (Netlist.freeze b) in
      let op = Dc.initial sys in
      Float.abs (Mna.voltage sys op.Dc.x last -. 3.3) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Canonical hashing: the structure cache's keys must be invariant
   under node relabeling (internal node ids are an artifact of
   insertion order) and the exact tier must see every value bit. *)

(* a random RC-tree net spec: node k = 1..n hangs off a random earlier
   node through a resistor, with a grounded capacitor at k *)
let canon_net_spec st ~n =
  Array.init n (fun k ->
      ( Random.State.int st (k + 1),
        50. +. Random.State.float st 450.,
        1e-15 +. Random.State.float st 40e-15 ))

(* materialize a spec; [node_order] pre-registers node names so the
   internal numbering permutes without changing the circuit, [perturb]
   nudges one resistor by 1 ulp-scale relative step *)
let canon_build spec ~node_order ~perturb =
  let b = Netlist.create () in
  List.iter (fun s -> ignore (Netlist.node b s)) node_order;
  Netlist.add_v b "vdrv" "in" "0" (Element.Step { v0 = 0.; v1 = 5. });
  Netlist.add_r b "rdrv" "in" "w0" 500.;
  Array.iteri
    (fun i (parent, r, c) ->
      let k = i + 1 in
      let r = if perturb = Some k then r *. (1. +. 1e-12) else r in
      Netlist.add_r b
        (Printf.sprintf "r%d" k)
        (Printf.sprintf "w%d" parent)
        (Printf.sprintf "w%d" k)
        r;
      Netlist.add_c b (Printf.sprintf "c%d" k) (Printf.sprintf "w%d" k) "0" c)
    spec;
  Netlist.freeze b

let canon_shuffled_names st n =
  let names =
    Array.of_list ("in" :: List.init (n + 1) (Printf.sprintf "w%d"))
  in
  for i = Array.length names - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = names.(i) in
    names.(i) <- names.(j);
    names.(j) <- t
  done;
  Array.to_list names

let prop_canon_relabel_invariant =
  QCheck2.Test.make ~name:"canonical hashes survive node relabeling"
    ~count:80
    QCheck2.Gen.(pair (int_range 2 14) (int_range 0 100000))
    (fun (n, seed) ->
      let st = Random.State.make [| 0xCA90; seed |] in
      let spec = canon_net_spec st ~n in
      let a = canon_build spec ~node_order:[] ~perturb:None in
      let b =
        canon_build spec
          ~node_order:(canon_shuffled_names st n)
          ~perturb:None
      in
      Canon.pattern_hash a = Canon.pattern_hash b
      && Canon.exact_hash a = Canon.exact_hash b)

let prop_canon_value_sensitive =
  QCheck2.Test.make
    ~name:"exact hash sees a 1e-12 value nudge; pattern hash does not"
    ~count:80
    QCheck2.Gen.(pair (int_range 2 14) (int_range 0 100000))
    (fun (n, seed) ->
      let st = Random.State.make [| 0xCA91; seed |] in
      let spec = canon_net_spec st ~n in
      let k = 1 + Random.State.int st n in
      let a = canon_build spec ~node_order:[] ~perturb:None in
      let b = canon_build spec ~node_order:[] ~perturb:(Some k) in
      Canon.pattern_hash a = Canon.pattern_hash b
      && Canon.exact_hash a <> Canon.exact_hash b
      && Canon.exact_signature a <> Canon.exact_signature b)

let test_canon_signature_guards_relabeling () =
  (* isomorphic-but-relabeled instances share the canonical hash; the
     construction-order signature tells them apart, which is exactly
     what keeps exact-tier hits bit-identical (a permuted matrix
     rounds differently) *)
  let st = Random.State.make [| 0xCA92 |] in
  let spec = canon_net_spec st ~n:6 in
  let a = canon_build spec ~node_order:[] ~perturb:None in
  let order = [ "w3"; "in"; "w6"; "w0"; "w1"; "w5"; "w2"; "w4" ] in
  let b = canon_build spec ~node_order:order ~perturb:None in
  Alcotest.(check bool) "hashes agree" true
    (Canon.exact_hash a = Canon.exact_hash b);
  Alcotest.(check bool) "signatures differ (node ids permuted)" true
    (Canon.exact_signature a <> Canon.exact_signature b);
  Alcotest.(check bool) "signature is deterministic" true
    (Canon.exact_signature a
    = Canon.exact_signature (canon_build spec ~node_order:[] ~perturb:None))

let prop_canon_combined_matches_single =
  QCheck2.Test.make
    ~name:"Canon.hashes equals the three single-form functions"
    ~count:80
    QCheck2.Gen.(pair (int_range 2 14) (int_range 0 100000))
    (fun (n, seed) ->
      let st = Random.State.make [| 0xCA93; seed |] in
      let spec = canon_net_spec st ~n in
      let c =
        canon_build spec ~node_order:(canon_shuffled_names st n) ~perturb:None
      in
      let h = Canon.hashes c in
      h.Canon.pattern = Canon.pattern_hash c
      && h.Canon.exact = Canon.exact_hash c
      && h.Canon.signature = Canon.exact_signature c)

(* ------------------------------------------------------------------ *)
(* Circuit.Reduce: the pre-AWE model-order reduction pass *)

let reduce_step = Element.Step { v0 = 0.; v1 = 1. }

let reduce_node c name =
  match Netlist.find_node c name with
  | Some n -> n
  | None -> Alcotest.failf "reduce tests: no node %s" name

(* responses of the original and reduced circuits at a preserved port,
   compared by discrete relative L2 over the transient (the verify
   harness's metric); exact transforms pass [~tol:1e-12], the
   moment-preserving lumps the oracle-style [~tol:0.1] *)
let reduce_response_check ~tol msg c (r : Reduce.result) name =
  let node = reduce_node c name in
  let node' = r.Reduce.node_map.(node) in
  Alcotest.(check bool) (msg ^ ": port survives") true (node' >= 0);
  let a, _ = Awe.auto (Mna.build c) ~node in
  let a', _ = Awe.auto (Mna.build r.Reduce.circuit) ~node:node' in
  let tau =
    match Awe.poles a with
    | p :: _ when p.Linalg.Cx.re <> 0. -> 1. /. abs_float p.Linalg.Cx.re
    | _ -> Alcotest.failf "%s: no finite dominant pole" msg
  in
  let t_stop = 8. *. tau in
  let samples = 33 in
  let num = ref 0. and den = ref 0. in
  for k = 1 to samples do
    let t = t_stop *. float_of_int k /. float_of_int samples in
    let v = Awe.eval a t and v' = Awe.eval a' t in
    num := !num +. ((v -. v') *. (v -. v'));
    den := !den +. (v *. v)
  done;
  let rel = sqrt (!num /. !den) in
  if rel > tol then
    Alcotest.failf "%s: rel L2 %.3g exceeds %.3g" msg rel tol

let test_reduce_plan_chain () =
  let b = Netlist.create () in
  Netlist.add_v b "vin" "in" "0" reduce_step;
  Netlist.add_r b "r0" "in" "a" 100.;
  Netlist.add_c b "ca" "a" "0" 1e-12;
  Netlist.add_r b "r1" "a" "m1" 150.;
  Netlist.add_c b "c1" "m1" "0" 2e-12;
  Netlist.add_r b "r2" "m1" "m2" 200.;
  Netlist.add_c b "c2" "m2" "0" 3e-12;
  Netlist.add_r b "r3" "m2" "b" 250.;
  Netlist.add_c b "cb" "b" "0" 1e-12;
  let c = Netlist.freeze b in
  let members = List.map (reduce_node c) [ "a"; "m1"; "m2" ] in
  (match Reduce.analyze c with
  | [ Reduce.Chain { members = m } ] ->
    Alcotest.(check (list int)) "chain members" (List.sort compare members) m
  | plans -> Alcotest.failf "expected one chain plan, got %d" (List.length plans));
  let plan = Reduce.Chain { members } in
  Alcotest.(check int) "chain savings" 2 (Reduce.plan_savings plan);
  (* with b preserved the run lumps to a T section: 2 nodes go *)
  let r = Reduce.reduce ~ports:[ reduce_node c "b" ] c in
  Alcotest.(check int) "nodes eliminated" 2
    r.Reduce.report.Reduce.nodes_eliminated;
  Alcotest.(check int) "chain lumps" 1 r.Reduce.report.Reduce.chain_lumps;
  reduce_response_check ~tol:0.1 "chain lump response" c r "b"

let test_reduce_plan_star () =
  let b = Netlist.create () in
  Netlist.add_v b "vin" "in" "0" reduce_step;
  Netlist.add_r b "rdrv" "in" "h" 50.;
  Netlist.add_r b "rl1" "h" "l1" 80.;
  Netlist.add_c b "cl1" "l1" "0" 1e-12;
  Netlist.add_r b "rl2" "h" "l2" 120.;
  Netlist.add_c b "cl2" "l2" "0" 2e-12;
  Netlist.add_r b "rl3" "h" "l3" 160.;
  Netlist.add_c b "cl3" "l3" "0" 3e-12;
  let c = Netlist.freeze b in
  let hub = reduce_node c "h" in
  let legs = List.sort compare (List.map (reduce_node c) [ "l1"; "l2"; "l3" ]) in
  (match Reduce.analyze c with
  | [ Reduce.Star { hub = h; legs = l } ] ->
    Alcotest.(check int) "hub" hub h;
    Alcotest.(check (list int)) "legs" legs l
  | plans -> Alcotest.failf "expected one star plan, got %d" (List.length plans));
  Alcotest.(check int) "star savings" 2
    (Reduce.plan_savings (Reduce.Star { hub; legs }));
  let r = Reduce.reduce ~ports:[ hub ] c in
  Alcotest.(check int) "nodes eliminated" 2
    r.Reduce.report.Reduce.nodes_eliminated;
  Alcotest.(check int) "star merges" 1 r.Reduce.report.Reduce.star_merges;
  (* the hub sees the merged leg through its first two admittance
     moments; the response there tracks the original closely *)
  reduce_response_check ~tol:0.1 "star merge response" c r "h"

let test_reduce_exact_parallel () =
  let b = Netlist.create () in
  Netlist.add_v b "vin" "in" "0" reduce_step;
  Netlist.add_r b "ra" "in" "x" 2e3;
  Netlist.add_r b "rb" "in" "x" 2e3;
  Netlist.add_r b "rc" "in" "x" 1e3;
  Netlist.add_c b "c1" "x" "0" 1e-12;
  Netlist.add_c b "c2" "x" "0" 3e-12;
  let c = Netlist.freeze b in
  let r = Reduce.reduce ~ports:[ reduce_node c "x" ] c in
  Alcotest.(check int) "parallel groups" 2
    r.Reduce.report.Reduce.parallel_merges;
  Alcotest.(check int) "elements eliminated" 3
    r.Reduce.report.Reduce.elements_eliminated;
  Alcotest.(check int) "no nodes eliminated" 0
    r.Reduce.report.Reduce.nodes_eliminated;
  (* merged values land exactly: 2k || 2k || 1k = 500, 1p + 3p = 4p *)
  Array.iter
    (function
      | Element.Resistor { r = ohms; _ } ->
        check_close ~tol:1e-9 "parallel R value" 500. ohms
      | Element.Capacitor { c = farads; _ } ->
        check_close ~tol:1e-24 "parallel C value" 4e-12 farads
      | _ -> ())
    r.Reduce.circuit.Netlist.elements;
  reduce_response_check ~tol:1e-12 "parallel merge response" c r "x"

let test_reduce_exact_series () =
  (* a capacitor-free interior run is an exact series merge: every run
     node goes and one resistor of the summed resistance remains *)
  let b = Netlist.create () in
  Netlist.add_v b "vin" "in" "0" reduce_step;
  Netlist.add_r b "r1" "in" "s1" 100.;
  Netlist.add_r b "r2" "s1" "s2" 200.;
  Netlist.add_r b "r3" "s2" "out" 300.;
  Netlist.add_c b "cout" "out" "0" 1e-12;
  let c = Netlist.freeze b in
  let r = Reduce.reduce ~ports:[ reduce_node c "out" ] c in
  Alcotest.(check int) "series merges" 1 r.Reduce.report.Reduce.series_merges;
  Alcotest.(check int) "nodes eliminated" 2
    r.Reduce.report.Reduce.nodes_eliminated;
  Array.iter
    (function
      | Element.Resistor { r = ohms; _ } ->
        check_close ~tol:1e-9 "summed resistance" 600. ohms
      | _ -> ())
    r.Reduce.circuit.Netlist.elements;
  reduce_response_check ~tol:1e-12 "series merge response" c r "out"

let test_reduce_chain_preserves_elmore () =
  (* the T lump preserves the first moment at the preserved ports, so
     the Elmore-equivalent delay there is bit-close *)
  let b = Netlist.create () in
  Netlist.add_v b "vin" "in" "0" reduce_step;
  Netlist.add_r b "r0" "in" "a" 60.;
  Netlist.add_c b "ca" "a" "0" 1e-12;
  Netlist.add_r b "r1" "a" "m1" 110.;
  Netlist.add_c b "c1" "m1" "0" 2e-12;
  Netlist.add_r b "r2" "m1" "m2" 90.;
  Netlist.add_c b "c2" "m2" "0" 4e-12;
  Netlist.add_r b "r3" "m2" "m3" 70.;
  Netlist.add_c b "c3" "m3" "0" 1e-12;
  Netlist.add_r b "r4" "m3" "b" 130.;
  Netlist.add_c b "cb" "b" "0" 5e-12;
  let c = Netlist.freeze b in
  let node = reduce_node c "b" in
  let r = Reduce.reduce ~ports:[ node ] c in
  Alcotest.(check bool) "reduction applied" true
    (r.Reduce.report.Reduce.nodes_eliminated > 0);
  let td = Awe.elmore_equivalent (Mna.build c) ~node in
  let td' =
    Awe.elmore_equivalent
      (Mna.build r.Reduce.circuit)
      ~node:r.Reduce.node_map.(node)
  in
  if abs_float (td -. td') > 1e-12 *. td then
    Alcotest.failf "elmore drifted: %.17g vs %.17g" td' td

let test_reduce_idempotent () =
  let check_fixpoint msg c ports =
    let r = Reduce.reduce ~ports c in
    let r2 = Reduce.reduce ~ports:(List.map (fun p -> r.Reduce.node_map.(p)) ports)
        r.Reduce.circuit
    in
    Alcotest.(check bool) (msg ^ ": second pass is a no-op") true
      (r2.Reduce.report = Reduce.empty_report);
    (* physically the same circuit, not just an equal one *)
    Alcotest.(check bool) (msg ^ ": circuit unchanged") true
      (r2.Reduce.circuit == r.Reduce.circuit)
  in
  let ladder, out = Samples.rc_ladder ~length:6 ~fanout:4 () in
  check_fixpoint "ladder" ladder [ out ];
  let tree, leaf = Samples.random_rc_tree ~seed:7 ~n:12 () in
  check_fixpoint "random tree" tree [ leaf ];
  let grid, far = Samples.rc_grid ~rows:4 ~cols:4 () in
  check_fixpoint "grid" grid [ far ]

let test_reduce_refusals () =
  let untouched msg c ports =
    let r = Reduce.reduce ~ports c in
    Alcotest.(check bool) (msg ^ ": empty report") true
      (r.Reduce.report = Reduce.empty_report);
    Alcotest.(check bool) (msg ^ ": input returned") true
      (r.Reduce.circuit == c)
  in
  (* inductor adjacency protects the whole ladder *)
  let rlc, out = Samples.random_rlc_ladder ~seed:5 ~sections:4 () in
  untouched "rlc ladder" rlc [ out ];
  (* an IC-carrying capacitor pins its chain node *)
  let b = Netlist.create () in
  Netlist.add_v b "vin" "in" "0" reduce_step;
  Netlist.add_r b "r1" "in" "m1" 100.;
  Netlist.add_c ~ic:1.5 b "c1" "m1" "0" 1e-12;
  Netlist.add_r b "r2" "m1" "out" 100.;
  Netlist.add_c b "cout" "out" "0" 1e-12;
  let c = Netlist.freeze b in
  untouched "ic cap" c [ reduce_node c "out" ];
  (* a controlling terminal of a controlled source is load-bearing even
     though no current flows: the node must survive *)
  let b = Netlist.create () in
  Netlist.add_v b "vin" "in" "0" reduce_step;
  Netlist.add_r b "r1" "in" "m1" 100.;
  Netlist.add_c b "c1" "m1" "0" 1e-12;
  Netlist.add_r b "r2" "m1" "out" 100.;
  Netlist.add_c b "cout" "out" "0" 1e-12;
  Netlist.add_vcvs b "e1" "amp" "0" "m1" "0" 2.;
  Netlist.add_r b "rload" "amp" "0" 1e3;
  let c = Netlist.freeze b in
  untouched "vcvs controlling node" c [ reduce_node c "out" ];
  (* mutual-coupled inductors never merge even in parallel *)
  let b = Netlist.create () in
  Netlist.add_v b "vin" "in" "0" reduce_step;
  Netlist.add_r b "r1" "in" "x" 50.;
  Netlist.add_l b "l1" "x" "0" 1e-9;
  Netlist.add_l b "l2" "x" "0" 1e-9;
  Netlist.add_k b "k1" "l1" "l2" 0.5;
  Netlist.add_c b "cx" "x" "0" 1e-12;
  let c = Netlist.freeze b in
  untouched "coupled inductors" c [ reduce_node c "x" ]

let test_reduce_ladder_sample () =
  (* the standing bench example: with one preserved leg the trunk lumps
     and the remaining legs merge, killing well over half the nodes *)
  let c, out = Samples.rc_ladder ~length:10 ~fanout:4 () in
  let r = Reduce.reduce ~ports:[ out ] c in
  let before = c.Netlist.node_count in
  let gone = r.Reduce.report.Reduce.nodes_eliminated in
  Alcotest.(check bool)
    (Printf.sprintf "eliminates >= 50%% of nodes (%d of %d)" gone before)
    true
    (2 * gone >= before);
  Alcotest.(check bool) "chain lumped" true
    (r.Reduce.report.Reduce.chain_lumps > 0);
  Alcotest.(check bool) "star merged" true
    (r.Reduce.report.Reduce.star_merges > 0);
  reduce_response_check ~tol:0.1 "ladder response" c r "f1"

let prop_reduce_tree_savings_match =
  (* on any random RC tree the plans' claimed node savings equal the
     rewriter's actual eliminations when nothing is protected *)
  QCheck2.Test.make ~name:"plan savings = actual eliminations (ports=[])"
    ~count:60
    QCheck2.Gen.(pair (int_range 3 20) (int_range 0 100000))
    (fun (n, seed) ->
      let c, _ = Samples.random_rc_tree ~seed ~n () in
      let plans = Reduce.analyze c in
      let claimed =
        List.fold_left
          (fun acc p ->
            match p with
            | Reduce.Chain { members } when List.length members < 2 -> acc
            | Reduce.Parallel _ -> acc
            | p -> acc + Reduce.plan_savings p)
          0 plans
      in
      let r = Reduce.reduce ~ports:[] c in
      (* first-round eliminations can exceed the advisory claim only
         through capless series runs (none in an RC tree) or later
         rounds cascading; require at least the claimed savings *)
      r.Reduce.report.Reduce.nodes_eliminated >= claimed)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "circuit"
    [ ( "element",
        [ Alcotest.test_case "waveform eval" `Quick test_waveform_eval;
          Alcotest.test_case "canonicalize step" `Quick
            test_canonicalize_step;
          Alcotest.test_case "canonicalize ramp" `Quick
            test_canonicalize_ramp_zero_delay;
          Alcotest.test_case "canonical matches eval" `Quick
            test_canonicalize_matches_eval;
          Alcotest.test_case "rejects malformed" `Quick
            test_canonicalize_rejects_bad ] );
      ( "netlist",
        [ Alcotest.test_case "ground aliases" `Quick
            test_netlist_ground_aliases;
          Alcotest.test_case "duplicate names" `Quick
            test_netlist_duplicate_names;
          Alcotest.test_case "value validation" `Quick
            test_netlist_value_validation;
          Alcotest.test_case "unknown vctrl" `Quick test_netlist_unknown_vctrl;
          Alcotest.test_case "lookups" `Quick test_netlist_lookups ] );
      ( "topology",
        [ Alcotest.test_case "fig4 tree" `Quick test_topology_fig4_is_tree;
          Alcotest.test_case "fig9 grounded R" `Quick
            test_topology_fig9_grounded_r;
          Alcotest.test_case "fig22 floating" `Quick
            test_topology_fig22_floating;
          Alcotest.test_case "fig25 inductors" `Quick
            test_topology_fig25_inductors;
          Alcotest.test_case "resistor loop" `Quick
            test_topology_resistor_loop;
          Alcotest.test_case "rc tree parents" `Quick test_rc_tree_parent ] );
      ( "mna",
        [ Alcotest.test_case "voltage divider" `Quick
            test_mna_voltage_divider;
          Alcotest.test_case "source current" `Quick test_mna_source_current;
          Alcotest.test_case "VCVS" `Quick test_mna_controlled_sources;
          Alcotest.test_case "VCCS" `Quick test_mna_vccs;
          Alcotest.test_case "CCCS" `Quick test_mna_cccs;
          Alcotest.test_case "fig22 charge row" `Quick
            test_mna_charge_group_fig22;
          Alcotest.test_case "reject floating" `Quick
            test_mna_reject_floating;
          Alcotest.test_case "I source into floating group" `Quick
            test_mna_isource_into_floating_group;
          Alcotest.test_case "state derivative" `Quick
            test_mna_state_derivative_rc;
          Alcotest.test_case "mutual split modes" `Quick
            test_mutual_split_modes;
          Alcotest.test_case "mutual symmetric storage" `Quick
            test_mutual_symmetric_storage;
          Alcotest.test_case "mutual validation" `Quick
            test_mutual_validation;
          Alcotest.test_case "accessors" `Quick test_mna_accessors;
          Alcotest.test_case "tree/link scope rejections" `Quick
            test_tree_link_scope_rejections ]
        @ qsuite [ prop_mna_dc_matches_divider ] );
      ( "dc",
        [ Alcotest.test_case "equilibrium start" `Quick
            test_dc_initial_equilibrium;
          Alcotest.test_case "explicit IC" `Quick test_dc_initial_with_ic;
          Alcotest.test_case "0+ jump" `Quick test_dc_zero_plus_jump;
          Alcotest.test_case "inductor short" `Quick test_dc_inductor_short;
          Alcotest.test_case "floating defaults to 0" `Quick
            test_dc_floating_defaults_zero ] );
      ( "parser",
        [ Alcotest.test_case "values" `Quick test_parse_values;
          Alcotest.test_case "fig4 deck" `Quick test_parse_fig4_deck;
          Alcotest.test_case "continuation/comments" `Quick
            test_parse_continuation_and_comments;
          Alcotest.test_case "initial conditions" `Quick
            test_parse_ic_variants;
          Alcotest.test_case "controlled sources" `Quick
            test_parse_controlled_sources;
          Alcotest.test_case "error line numbers" `Quick
            test_parse_errors_carry_line;
          Alcotest.test_case "title line" `Quick test_parse_title_line;
          Alcotest.test_case "K card" `Quick test_parse_k_card;
          Alcotest.test_case "print/parse round trip (samples)" `Quick
            test_print_deck_roundtrip_samples;
          Alcotest.test_case "negative cases" `Quick test_parse_negative_cases;
          Alcotest.test_case "empty deck" `Quick test_parse_empty_deck ]
        @ qsuite [ prop_print_parse_roundtrip ] );
      ( "samples",
        [ Alcotest.test_case "fig4 elmore" `Quick
            test_samples_fig4_elmore_constant;
          Alcotest.test_case "random tree" `Quick
            test_samples_random_tree_is_tree;
          Alcotest.test_case "random mesh" `Quick
            test_samples_random_mesh_has_loops ] );
      ( "canon",
        [ Alcotest.test_case "signature guards relabeled instances" `Quick
            test_canon_signature_guards_relabeling ]
        @ qsuite
            [ prop_canon_relabel_invariant; prop_canon_value_sensitive;
              prop_canon_combined_matches_single ]
      );
      ( "reduce",
        [ Alcotest.test_case "chain plan and lump" `Quick
            test_reduce_plan_chain;
          Alcotest.test_case "star plan and merge" `Quick
            test_reduce_plan_star;
          Alcotest.test_case "parallel merge is exact" `Quick
            test_reduce_exact_parallel;
          Alcotest.test_case "series merge is exact" `Quick
            test_reduce_exact_series;
          Alcotest.test_case "chain lump preserves Elmore" `Quick
            test_reduce_chain_preserves_elmore;
          Alcotest.test_case "idempotent" `Quick test_reduce_idempotent;
          Alcotest.test_case "refusal cases" `Quick test_reduce_refusals;
          Alcotest.test_case "ladder sample reduces >= 50%" `Quick
            test_reduce_ladder_sample ]
        @ qsuite [ prop_reduce_tree_savings_match ] ) ]
