(* The pre-Lint-2.0 check implementations, copied verbatim from the
   original lib/lint/lint.ml (git history): the qcheck differential
   property pins Lint.check_circuit_core / Lint.check_design_core to
   byte-identical output against these on random circuits and
   designs.  Do not "improve" this file — its value is being frozen. *)

module D = Lint.Diagnostic

let spread_limit = 1e10
(* decades of node time-constant spread tolerated before warning; at
   1e10 the q-th moment ratio between extreme nodes reaches 1e(10q),
   past double precision by order 16 even after eq. 47 scaling *)

let nname (c : Circuit.Netlist.circuit) n = c.Circuit.Netlist.node_names.(n)

(* ------------------------------------------------------------------ *)
(* union-find over node ids, for loop detection                        *)

module Uf = struct
  let create n = Array.init n (fun i -> i)

  let rec find uf i =
    if uf.(i) = i then i
    else begin
      let r = find uf uf.(i) in
      uf.(i) <- r;
      r
    end

  (* [union uf a b] merges; [false] when already connected, i.e. the
     edge closes a loop *)
  let union uf a b =
    let ra = find uf a and rb = find uf b in
    if ra = rb then false
    else begin
      uf.(ra) <- rb;
      true
    end
end

(* ------------------------------------------------------------------ *)
(* circuit-level checks                                                *)

let check_values ~emit ~line (c : Circuit.Netlist.circuit) =
  Array.iteri
    (fun idx e ->
      let bad kind v name =
        emit
          (D.make ?line:(line idx) ~element:name
             ~hint:
               (Printf.sprintf "give %s a positive, finite %s" name kind)
             D.Nonpositive_value
             (Printf.sprintf
                "%s has %s %g; element values must be strictly positive"
                name kind v))
      in
      match e with
      | Circuit.Element.Resistor { name; r; _ } ->
        if not (Float.is_finite r && r > 0.) then bad "resistance" r name
      | Circuit.Element.Capacitor { name; c = cv; _ } ->
        if not (Float.is_finite cv && cv > 0.) then
          bad "capacitance" cv name
      | Circuit.Element.Inductor { name; l; _ } ->
        if not (Float.is_finite l && l > 0.) then bad "inductance" l name
      | _ -> ())
    c.Circuit.Netlist.elements

let check_shorts ~emit ~line (c : Circuit.Netlist.circuit) =
  Array.iteri
    (fun idx e ->
      let shorted_source name node =
        emit
          (D.make ?line:(line idx) ~element:name ~nodes:[ nname c node ]
             ~hint:"remove the source or reroute one terminal"
             D.Shorted_source
             (Printf.sprintf
                "voltage source %s connects node %s to itself: its \
                 branch equation is structurally empty and LU must fail"
                name (nname c node)))
      and shorted_element name kind node =
        emit
          (D.make ?line:(line idx) ~element:name ~nodes:[ nname c node ]
             ~hint:"remove the element or reroute one terminal"
             D.Shorted_element
             (Printf.sprintf
                "%s %s has both terminals on node %s and stamps nothing"
                kind name (nname c node)))
      in
      match e with
      | Circuit.Element.Vsource { name; np; nn; _ } when np = nn ->
        shorted_source name np
      | Circuit.Element.Resistor { name; np; nn; _ } when np = nn ->
        shorted_element name "resistor" np
      | Circuit.Element.Capacitor { name; np; nn; _ } when np = nn ->
        shorted_element name "capacitor" np
      | Circuit.Element.Inductor { name; np; nn; _ } when np = nn ->
        (* the branch row v_p - v_n = s L i degenerates to an empty
           G-row: flagged here and again by the structural-rank check *)
        shorted_element name "inductor" np
      | Circuit.Element.Isource { name; np; nn; _ } when np = nn ->
        shorted_element name "current source" np
      | _ -> ())
    c.Circuit.Netlist.elements

let check_floating ~emit ~line (c : Circuit.Netlist.circuit) =
  let groups = Circuit.Topology.floating_groups c in
  List.iter
    (fun members ->
      let in_group = Hashtbl.create 8 in
      List.iter (fun n -> Hashtbl.replace in_group n ()) members;
      let mem n = Hashtbl.mem in_group n in
      let names = List.map (nname c) members in
      (* a current source with a terminal in the group violates charge
         conservation: Mna.build rejects exactly this configuration *)
      Array.iteri
        (fun idx e ->
          match e with
          | Circuit.Element.Isource { name; np; nn; _ }
            when np <> nn && (mem np || mem nn) ->
            emit
              (D.make ?line:(line idx) ~element:name ~nodes:names
                 ~hint:
                   "give the group a DC path to ground so the source \
                    current can return"
                 D.Isrc_cutset
                 (Printf.sprintf
                    "current source %s drives the DC-floating group \
                     {%s}: the injected charge has no return path and \
                     grows without bound"
                    name (String.concat ", " names)))
          | _ -> ())
        c.Circuit.Netlist.elements;
      (* charge conservation only determines the group's potential when
         some capacitor bridges it to the outside: group-internal caps
         cancel in the summed charge row *)
      let bridged =
        Array.exists
          (fun e ->
            match e with
            | Circuit.Element.Capacitor { np; nn; _ } -> mem np <> mem nn
            | _ -> false)
          c.Circuit.Netlist.elements
      in
      if bridged then
        emit
          (D.make ~nodes:names D.Float_group
             (Printf.sprintf
                "nodes {%s} have no DC path to ground; their steady \
                 state is resolved by charge conservation and the \
                 response has a pole at s = 0"
                (String.concat ", " names)))
      else
        emit
          (D.make ~nodes:names
             ~hint:
               "bridge the group to the rest of the circuit with a \
                capacitor or resistor"
             D.Float_no_cap
             (Printf.sprintf
                "nodes {%s} have no DC path to ground and no bridging \
                 capacitance: the charge-conservation row is empty and \
                 the augmented system stays singular"
                (String.concat ", " names))))
    groups

let check_loops ~emit ~line (c : Circuit.Netlist.circuit) =
  let uf = Uf.create c.Circuit.Netlist.node_count in
  (* inductor edges first: a closing L edge is a pure inductor loop *)
  Array.iteri
    (fun idx e ->
      match e with
      | Circuit.Element.Inductor { name; np; nn; _ }
        when np <> nn && not (Uf.union uf np nn) ->
        emit
          (D.make ?line:(line idx) ~element:name
             ~nodes:[ nname c np; nname c nn ]
             ~hint:"break the loop with a small series resistance"
             D.Ind_loop
             (Printf.sprintf
                "inductor %s closes a loop of inductors: the DC \
                 circulating current is undetermined and the response \
                 has a repeated pole at s = 0"
                name))
      | _ -> ())
    c.Circuit.Netlist.elements;
  (* then V-source edges: a closure now is a zero-resistance loop
     through at least one voltage source (possibly via inductors) *)
  Array.iteri
    (fun idx e ->
      match e with
      | Circuit.Element.Vsource { name; np; nn; _ }
        when np <> nn && not (Uf.union uf np nn) ->
        emit
          (D.make ?line:(line idx) ~element:name
             ~nodes:[ nname c np; nname c nn ]
             ~hint:
               "add series resistance or remove the redundant source"
             D.Vsrc_loop
             (Printf.sprintf
                "voltage source %s closes a zero-resistance loop \
                 through voltage sources/inductors: the loop current \
                 is undetermined (the branch rows are linearly \
                 dependent for every value choice)"
                name))
      | _ -> ())
    c.Circuit.Netlist.elements

let check_dangling ~emit ~line (c : Circuit.Netlist.circuit) =
  (* count current-carrying terminal incidences per node; VCVS/VCCS
     control pins are high-impedance and deliberately excluded *)
  let deg = Array.make c.Circuit.Netlist.node_count 0 in
  let sole = Array.make c.Circuit.Netlist.node_count (-1) in
  Array.iteri
    (fun idx e ->
      let touch n =
        deg.(n) <- deg.(n) + 1;
        sole.(n) <- idx
      in
      match e with
      | Circuit.Element.Resistor { np; nn; _ }
      | Circuit.Element.Capacitor { np; nn; _ }
      | Circuit.Element.Inductor { np; nn; _ }
      | Circuit.Element.Vsource { np; nn; _ }
      | Circuit.Element.Isource { np; nn; _ }
      | Circuit.Element.Vcvs { np; nn; _ }
      | Circuit.Element.Vccs { np; nn; _ }
      | Circuit.Element.Ccvs { np; nn; _ }
      | Circuit.Element.Cccs { np; nn; _ } ->
        touch np;
        touch nn
      | Circuit.Element.Mutual _ -> ())
    c.Circuit.Netlist.elements;
  for n = 1 to c.Circuit.Netlist.node_count - 1 do
    if deg.(n) = 1 then begin
      match c.Circuit.Netlist.elements.(sole.(n)) with
      | Circuit.Element.Resistor { name; _ } ->
        emit
          (D.make ?line:(line sole.(n)) ~element:name
             ~nodes:[ nname c n ]
             ~hint:"remove the dead-end resistor or attach a load"
             D.Dangling_node
             (Printf.sprintf
                "node %s is reached only by one terminal of resistor \
                 %s: no current flows and the node voltage merely \
                 copies its neighbour"
                (nname c n) name))
      | _ -> ()
    end
    else if deg.(n) = 0 then
      emit
        (D.make ~nodes:[ nname c n ]
           ~hint:
             "attach a current-carrying element or remove the node"
           D.Dangling_node
           (Printf.sprintf
              "node %s is attached only to high-impedance control \
               pins: its KCL row is empty and LU must fail"
              (nname c n)))
  done

(* structural-rank check on the very pattern [Mna.dc_factor] factors,
   plus the eq. 47 conditioning heuristic — both need the assembled
   system, so they share one [Mna.build] *)
let check_mna ~emit (c : Circuit.Netlist.circuit) =
  match Circuit.Mna.build c with
  | exception Invalid_argument _ ->
    (* an I source drives a floating group: already diagnosed, with
       better locality, by [check_floating] *)
    ()
  | sys ->
    let pat = Sparse.Csr.of_dense (Circuit.Mna.augmented_g sys) in
    let m = Sparse.Matching.max_matching pat in
    let n = Sparse.Csr.rows pat in
    if m.Sparse.Matching.size < n then
      Array.iteri
        (fun row col ->
          if col < 0 then
            emit
              (D.make
                 ~hint:
                   "the factorization fails for every choice of \
                    element values; fix the structural defect"
                 D.Structural_rank
                 (Printf.sprintf
                    "the MNA pattern is structurally singular: the \
                     equation of %s cannot be matched to any unknown \
                     (structural rank %d < %d)"
                    (Circuit.Mna.describe_var sys row)
                    m.Sparse.Matching.size n)))
        m.Sparse.Matching.col_of_row;
    (* eq. 47 scales moments by a single frequency; when node time
       constants spread over many decades no single scale fits and the
       moment matrix of eq. 21 turns numerically rank-deficient *)
    let gm = Circuit.Mna.g sys and cm = Circuit.Mna.c sys in
    let extreme = ref None in
    for node = 1 to c.Circuit.Netlist.node_count - 1 do
      let v = Circuit.Mna.node_var sys node in
      if v >= 0 then begin
        let gii = Linalg.Matrix.get gm v v
        and cii = Linalg.Matrix.get cm v v in
        if gii > 0. && cii > 0. then begin
          let tau = cii /. gii in
          extreme :=
            Some
              (match !extreme with
              | None -> ((tau, node), (tau, node))
              | Some ((tmin, nmin), (tmax, nmax)) ->
                ( (if tau < tmin then (tau, node) else (tmin, nmin)),
                  if tau > tmax then (tau, node) else (tmax, nmax) ))
        end
      end
    done;
    (match !extreme with
    | Some ((tmin, nmin), (tmax, nmax))
      when nmin <> nmax && tmax > spread_limit *. tmin ->
      emit
        (D.make
           ~nodes:[ nname c nmin; nname c nmax ]
           ~hint:
             "rescale the extreme elements or split the analysis per \
              time scale"
           D.Scale_spread
           (Printf.sprintf
              "node time constants span %.1f decades (%.3g s at node \
               %s, %.3g s at node %s): moment ratios overflow double \
               precision despite eq. 47 frequency scaling"
              (Float.log10 (tmax /. tmin))
              tmin (nname c nmin) tmax (nname c nmax)))
    | _ -> ())

let check_circuit (c : Circuit.Netlist.circuit) =
  let acc = ref [] in
  let emit d = acc := d :: !acc in
  let line idx = Circuit.Netlist.element_line c idx in
  check_values ~emit ~line c;
  check_shorts ~emit ~line c;
  check_floating ~emit ~line c;
  check_loops ~emit ~line c;
  check_dangling ~emit ~line c;
  check_mna ~emit c;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* design-level checks (.sta)                                          *)

let check_design (d : Sta.design) =
  let acc = ref [] in
  let emit x = acc := x :: !acc in
  let gates = Sta.gate_views d in
  let nets = Sta.net_names d in
  let pis = Sta.primary_input_nets d in
  let pos = Sta.primary_output_nets d in
  let have_net n = Sta.net_segments d n <> None in
  let is_pi n = List.mem n pis in
  (* every referenced net needs a wire model *)
  List.iter
    (fun g ->
      List.iter
        (fun n ->
          if not (have_net n) then
            emit
              (D.make ~element:g.Sta.gv_inst ~nodes:[ n ]
                 ~hint:"add a net card for it" D.Unknown_net
                 (Printf.sprintf
                    "gate %s references net %s, which has no wire model"
                    g.Sta.gv_inst n)))
        (g.Sta.gv_output :: g.Sta.gv_inputs))
    gates;
  List.iter
    (fun n ->
      if not (have_net n) then
        emit
          (D.make ~nodes:[ n ] ~hint:"add a net card for it"
             D.Unknown_net
             (Printf.sprintf
                "primary input drives net %s, which has no wire model" n)))
    pis;
  List.iter
    (fun n ->
      if not (have_net n) then
        emit
          (D.make ~nodes:[ n ] ~hint:"add a net card for it"
             D.Unknown_net
             (Printf.sprintf
                "primary output taps net %s, which has no wire model" n)))
    pos;
  (* every net needs exactly one source of a signal *)
  let driver_of n =
    List.find_opt (fun g -> g.Sta.gv_output = n) gates
  in
  List.iter
    (fun n ->
      if driver_of n = None && not (is_pi n) then
        emit
          (D.make ~nodes:[ n ]
             ~hint:
               "drive it from a gate output or declare it a primary \
                input"
             D.Undriven_net
             (Printf.sprintf
                "net %s is neither a gate output nor a primary input: \
                 no arrival time can ever reach it"
                n)))
    nets;
  (* sink attachment and reachability through the wire segments *)
  List.iter
    (fun n ->
      match Sta.net_segments d n with
      | None -> ()
      | Some segs ->
        let ids = Hashtbl.create 16 in
        let intern name =
          match Hashtbl.find_opt ids name with
          | Some i -> i
          | None ->
            let i = Hashtbl.length ids in
            Hashtbl.replace ids name i;
            i
        in
        let drv = intern "drv" in
        List.iter
          (fun s ->
            ignore (intern s.Sta.seg_from);
            ignore (intern s.Sta.seg_to))
          segs;
        let uf = Uf.create (Hashtbl.length ids) in
        List.iter
          (fun s ->
            ignore
              (Uf.union uf (intern s.Sta.seg_from) (intern s.Sta.seg_to)))
          segs;
        List.iter
          (fun g ->
            if List.mem n g.Sta.gv_inputs then begin
              match Hashtbl.find_opt ids g.Sta.gv_inst with
              | None ->
                emit
                  (D.make ~element:g.Sta.gv_inst ~nodes:[ n ]
                     ~hint:
                       (Printf.sprintf
                          "add a segment of net %s ending at node %s"
                          n g.Sta.gv_inst)
                     D.Sink_unattached
                     (Printf.sprintf
                        "no wire segment of net %s ends at sink %s: \
                         the sink pin has no attachment node"
                        n g.Sta.gv_inst))
              | Some pin ->
                if Uf.find uf pin <> Uf.find uf drv then
                  emit
                    (D.make ~element:g.Sta.gv_inst ~nodes:[ n ]
                       ~hint:
                         "connect the sink's wire island to the drv \
                          pin"
                       D.Sink_unreachable
                       (Printf.sprintf
                          "sink %s of net %s is not connected to the \
                           driver pin through the net's wire segments"
                          g.Sta.gv_inst n))
            end)
          gates)
    nets;
  (* timing constraints must name nets an arrival can actually reach:
     a constraint on an unknown or undriven net is dead — back-
     propagation starts from it, but no forward arrival ever meets it *)
  List.iter
    (fun (n, _t) ->
      if not (have_net n) then
        emit
          (D.make ~nodes:[ n ]
             ~hint:"constrain an existing net, or add a net card for it"
             D.Constraint_target
             (Printf.sprintf
                "timing constraint names net %s, which has no wire model"
                n))
      else if driver_of n = None && not (is_pi n) then
        emit
          (D.make ~nodes:[ n ]
             ~hint:
               "drive the constrained net from a gate output or declare \
                it a primary input"
             D.Constraint_target
             (Printf.sprintf
                "timing constraint names net %s, which is undriven: no \
                 arrival can ever meet (or miss) the required time"
                n)))
    (Sta.constraints d);
  (* combinational cycles: propagate readiness the way Sta.analyze
     propagates arrival times; nets already blamed above (undriven or
     unknown) are seeded as ready so each defect is reported once *)
  let ready = Hashtbl.create 16 in
  let mark n = Hashtbl.replace ready n () in
  List.iter mark pis;
  List.iter (fun n -> if driver_of n = None then mark n) nets;
  List.iter
    (fun g ->
      List.iter
        (fun n -> if not (have_net n) then mark n)
        g.Sta.gv_inputs)
    gates;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun g ->
        if
          (not (Hashtbl.mem ready g.Sta.gv_output))
          && List.for_all (Hashtbl.mem ready) g.Sta.gv_inputs
        then begin
          mark g.Sta.gv_output;
          changed := true
        end)
      gates
  done;
  let stuck = List.filter (fun n -> not (Hashtbl.mem ready n)) nets in
  if stuck <> [] then
    emit
      (D.make ~nodes:stuck
         ~hint:"break the feedback loop or register it"
         D.Design_cycle
         (Printf.sprintf
            "nets {%s} lie on (or downstream of) a combinational \
             cycle: no topological order can time them"
            (String.concat ", " stuck)));
  List.rev !acc
