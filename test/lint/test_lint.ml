(* The lint layer's output contract: every crafted bad deck under
   decks/lint/ is flagged with its registry code, the structural-rank
   check predicts the sparse LU's singular verdict with zero false
   negatives, shipped good decks stay clean, and lint-clean random
   circuits never hit a singular factorization. *)

module D = Lint.Diagnostic

(* `dune runtest` runs in the test's build directory (decks two levels
   up); `dune exec` runs from the workspace root *)
let deck_path name =
  let candidates =
    [ Filename.concat "../../decks" name; Filename.concat "decks" name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> Alcotest.failf "deck %s not found" name

let lint_sp name =
  let path = deck_path name in
  match Circuit.Parser.parse_file path with
  | deck -> Lint.check_circuit deck.Circuit.Parser.circuit
  | exception Circuit.Parser.Parse_error (line, msg) -> (
    match Lint.diagnostic_of_parse_error ~line msg with
    | Some d -> [ d ]
    | None -> Alcotest.failf "%s: unexpected parse error: %s" name msg)

let lint_sta name =
  Lint.check_design (Sta.Design_file.parse_file (deck_path name))

let ids diags = List.map (fun d -> D.id d.D.code) diags

let check_codes name diags expected =
  List.iter
    (fun code ->
      Alcotest.(check bool)
        (Printf.sprintf "%s reports %s" name code)
        true
        (List.mem code (ids diags)))
    expected

(* --- every crafted deck flags its registry code -------------------- *)

(* (deck, expected codes, gate fails plainly, gate fails under strict) *)
let sp_cases =
  [ ("lint/nonpositive.sp", [ "AWE-E001" ], true, true);
    ("lint/shorted_vsrc.sp", [ "AWE-E002"; "AWE-E007" ], true, true);
    ("lint/float_nocap.sp", [ "AWE-E003"; "AWE-E007" ], true, true);
    ("lint/float_cap.sp", [ "AWE-I001" ], false, false);
    ("lint/isrc_cutset.sp", [ "AWE-E004" ], true, true);
    ("lint/ind_loop.sp", [ "AWE-E005"; "AWE-E007" ], true, true);
    ("lint/vsrc_loop.sp", [ "AWE-E006"; "AWE-E007" ], true, true);
    ("lint/shorted_r.sp", [ "AWE-W001" ], false, true);
    ("lint/dangling.sp", [ "AWE-W002" ], false, true);
    ("lint/scale_spread.sp", [ "AWE-W003" ], false, true) ]

let sta_cases =
  [ ("lint/unknown_net.sta", [ "AWE-E101" ]);
    ("lint/undriven.sta", [ "AWE-E102" ]);
    ("lint/sink_unattached.sta", [ "AWE-E103" ]);
    ("lint/sink_unreachable.sta", [ "AWE-E104" ]);
    ("lint/cycle.sta", [ "AWE-E105" ]);
    (* the orphan net also trips E102; E106 blames the constraint *)
    ("lint/constraint_target.sta", [ "AWE-E106"; "AWE-E102" ]) ]

let test_crafted_sp () =
  List.iter
    (fun (name, codes, fails, fails_strict) ->
      let diags = lint_sp name in
      check_codes name diags codes;
      Alcotest.(check bool)
        (name ^ " gate")
        fails
        (Lint.gate ~strict:false diags = Ok () |> not);
      Alcotest.(check bool)
        (name ^ " gate --strict")
        fails_strict
        (Lint.gate ~strict:true diags = Ok () |> not))
    sp_cases

let test_crafted_sta () =
  List.iter
    (fun (name, codes) ->
      let diags = lint_sta name in
      check_codes name diags codes;
      Alcotest.(check bool)
        (name ^ " gate")
        true
        (Lint.gate ~strict:false diags = Ok () |> not))
    sta_cases

(* constraint targets that CAN bind an arrival must not trip E106: a
   gate-driven net, and a primary input (externally driven).  The
   crafted deck's two dead constraints are the only E106s it emits. *)
let test_constraint_lint_negative () =
  let base =
    "cell inv 100 1f 10p\ngate g1 inv out in\nnet in drv g1 100 1f\n\
     net out drv x 100 1f\ninput in\noutput out\n"
  in
  let e106 src =
    List.filter
      (fun d -> d.D.code = D.Constraint_target)
      (Lint.check_design (Sta.Design_file.parse_string src))
  in
  Alcotest.(check int) "constraint on a driven net is clean" 0
    (List.length (e106 (base ^ "constraint out 1n\n")));
  Alcotest.(check int) "constraint on a primary input is clean" 0
    (List.length (e106 (base ^ "constraint in 1n\n")));
  Alcotest.(check int) "clock alone never trips E106" 0
    (List.length (e106 (base ^ "clock 2n\n")));
  let diags = lint_sta "lint/constraint_target.sta" in
  Alcotest.(check int) "one E106 per dead constraint" 2
    (List.length (List.filter (fun d -> d.D.code = D.Constraint_target) diags));
  (* each diagnostic names its net *)
  List.iter
    (fun net ->
      Alcotest.(check bool)
        (Printf.sprintf "E106 names %s" net)
        true
        (List.exists
           (fun d -> d.D.code = D.Constraint_target && d.D.nodes = [ net ])
           diags))
    [ "ghost"; "orphan" ]

(* --- the structural-rank check predicts Slu.factor ----------------- *)

(* decks whose singularity is visible in the sparsity pattern itself:
   the matching check must claim them (no false negatives), the
   augmented pattern must have deficient structural rank, and the
   sparse LU must actually fail on it *)
let structural_decks =
  [ "lint/shorted_vsrc.sp"; "lint/float_nocap.sp"; "lint/ind_loop.sp";
    "lint/vsrc_loop.sp" ]

let test_structural_rank_predicts () =
  List.iter
    (fun name ->
      let deck = Circuit.Parser.parse_file (deck_path name) in
      let sys = Circuit.Mna.build deck.Circuit.Parser.circuit in
      let pat = Sparse.Csr.of_dense (Circuit.Mna.augmented_g sys) in
      Alcotest.(check bool)
        (name ^ " structurally singular")
        true
        (Sparse.Matching.structurally_singular pat);
      (* the prediction comes true: both LU paths refuse the system *)
      (match Circuit.Mna.dc_factor sys with
      | _ -> Alcotest.failf "%s: dense dc_factor succeeded" name
      | exception Circuit.Mna.Singular_dc _ -> ());
      (match Circuit.Mna.dc_factor ~sparse:true sys with
      | _ -> Alcotest.failf "%s: sparse dc_factor succeeded" name
      | exception Circuit.Mna.Singular_dc _ -> ());
      (* and lint reported it under the registry code *)
      check_codes name (lint_sp name) [ "AWE-E007" ])
    structural_decks

(* every crafted deck that fails to factor (or build) must carry at
   least one lint error: the gate has zero false negatives over the
   whole bad-deck corpus, not just the structural subset *)
let test_no_false_negatives () =
  List.iter
    (fun (name, _, _, _) ->
      match Circuit.Parser.parse_file (deck_path name) with
      | exception Circuit.Parser.Parse_error _ -> ()
      | deck ->
        let circuit = deck.Circuit.Parser.circuit in
        let solve_fails =
          match Circuit.Mna.build circuit with
          | exception Invalid_argument _ -> true
          | sys -> (
            match Circuit.Mna.dc_factor sys with
            | _ -> false
            | exception Circuit.Mna.Singular_dc _ -> true)
        in
        if solve_fails then
          Alcotest.(check bool)
            (name ^ " failing solve is lint-visible")
            true
            (Lint.errors (lint_sp name) <> []))
    sp_cases

(* --- shipped good decks stay clean --------------------------------- *)

let good_sp =
  [ "fig4.sp"; "fig9.sp"; "fig16.sp"; "fig22.sp"; "fig25.sp";
    "charge_share.sp"; "coupled_lines.sp"; "regress_est_blindspot.sp" ]

let test_good_decks_clean () =
  List.iter
    (fun name ->
      Alcotest.(check (list string))
        (name ^ " has no lint errors")
        []
        (ids (Lint.errors (lint_sp name))))
    good_sp;
  Alcotest.(check (list string))
    "adder_stage.sta has no lint errors" []
    (ids (Lint.errors (lint_sta "adder_stage.sta")))

(* --- line attribution ---------------------------------------------- *)

let test_line_numbers () =
  let deck =
    Circuit.Parser.parse_string
      "v1 1 0 dc 1\nr1 1 2 1k\nc1 2 0 1p\n\nr2 2 3 1k\n.awe v(2)\n.end\n"
  in
  let c = deck.Circuit.Parser.circuit in
  Alcotest.(check (option int)) "v1 on line 1" (Some 1)
    (Circuit.Netlist.element_line c 0);
  Alcotest.(check (option int)) "r2 on line 5" (Some 5)
    (Circuit.Netlist.element_line c 3);
  Alcotest.(check (option int)) "out of range" None
    (Circuit.Netlist.element_line c 99);
  (* the dangling-node diagnostic points at r2's defining line *)
  let diags = Lint.check_circuit c in
  match
    List.find_opt (fun d -> d.D.code = D.Dangling_node) diags
  with
  | Some d -> Alcotest.(check (option int)) "W002 line" (Some 5) d.D.line
  | None -> Alcotest.fail "expected a dangling-node diagnostic"

(* --- registry sanity ----------------------------------------------- *)

let test_registry () =
  let all_ids = List.map D.id D.all_codes in
  Alcotest.(check int)
    "ids unique"
    (List.length all_ids)
    (List.length (List.sort_uniq compare all_ids));
  List.iter
    (fun code ->
      let id = D.id code in
      let expected_sev =
        match id.[4] with
        | 'E' -> D.Error
        | 'W' -> D.Warning
        | _ -> D.Info
      in
      Alcotest.(check bool)
        (id ^ " severity matches prefix")
        true
        (D.default_severity code = expected_sev))
    D.all_codes;
  let d =
    D.make ~element:"r1" ~nodes:[ "a"; "b" ] ~line:3 ~hint:"fix \"it\""
      D.Nonpositive_value "value is \"bad\""
  in
  let json = D.to_json d in
  let contains needle =
    let nl = String.length needle and jl = String.length json in
    let rec go i =
      i + nl <= jl && (String.sub json i nl = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun frag ->
      Alcotest.(check bool)
        (Printf.sprintf "json has %s" frag)
        true (contains frag))
    [ "\"AWE-E001\""; "\\\"bad\\\""; "\"line\": 3" ];
  Alcotest.(check bool)
    "strict promotes warnings" true
    (D.effective_severity ~strict:true
       (D.make D.Shorted_element "x")
    = D.Error);
  Alcotest.(check bool)
    "strict leaves info alone" true
    (D.effective_severity ~strict:true (D.make D.Float_group "x") = D.Info)

(* --- lint-clean random circuits never hit a singular solve --------- *)

let qcheck_lint_clean_factors =
  QCheck2.Test.make
    ~name:"lint-clean random circuits factor (dense and sparse)" ~count:120
    ~print:string_of_int
    QCheck2.Gen.(0 -- 1_000_000)
    (fun seed ->
      let circuit, _ =
        match seed mod 3 with
        | 0 -> Circuit.Samples.random_rc_tree ~seed ~n:(2 + (seed mod 9)) ()
        | 1 ->
          Circuit.Samples.random_coupled_tree ~seed
            ~n:(3 + (seed mod 7))
            ~couplings:(1 + (seed mod 3))
            ()
        | _ ->
          Circuit.Samples.random_rc_mesh ~seed
            ~n:(3 + (seed mod 7))
            ~extra:(1 + (seed mod 3))
            ()
      in
      match Lint.errors (Lint.check_circuit circuit) with
      | _ :: _ -> true (* lint objects: no promise to keep *)
      | [] ->
        let sys = Circuit.Mna.build circuit in
        ignore (Circuit.Mna.dc_factor sys);
        ignore (Circuit.Mna.dc_factor ~sparse:true sys);
        true)

let () =
  Alcotest.run "lint"
    [ ( "crafted decks",
        [ Alcotest.test_case "sp codes and gates" `Quick test_crafted_sp;
          Alcotest.test_case "sta codes and gates" `Quick test_crafted_sta;
          Alcotest.test_case "constraint targets (E106 negatives)" `Quick
            test_constraint_lint_negative ] );
      ( "singularity prediction",
        [ Alcotest.test_case "structural rank predicts Slu" `Quick
            test_structural_rank_predicts;
          Alcotest.test_case "no false negatives" `Quick
            test_no_false_negatives ] );
      ( "good decks",
        [ Alcotest.test_case "shipped decks stay clean" `Quick
            test_good_decks_clean ] );
      ( "provenance",
        [ Alcotest.test_case "line attribution" `Quick test_line_numbers;
          Alcotest.test_case "registry" `Quick test_registry ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ qcheck_lint_clean_factors ] )
    ]
