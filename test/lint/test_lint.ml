(* The lint layer's output contract: every crafted bad deck under
   decks/lint/ is flagged with its registry code, the structural-rank
   check predicts the sparse LU's singular verdict with zero false
   negatives, shipped good decks stay clean, and lint-clean random
   circuits never hit a singular factorization. *)

module D = Lint.Diagnostic

(* `dune runtest` runs in the test's build directory (decks two levels
   up); `dune exec` runs from the workspace root *)
let deck_path name =
  let candidates =
    [ Filename.concat "../../decks" name; Filename.concat "decks" name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> Alcotest.failf "deck %s not found" name

let lint_sp name =
  let path = deck_path name in
  match Circuit.Parser.parse_file path with
  | deck -> Lint.check_circuit deck.Circuit.Parser.circuit
  | exception Circuit.Parser.Parse_error (line, msg) -> (
    match Lint.diagnostic_of_parse_error ~line msg with
    | Some d -> [ d ]
    | None -> Alcotest.failf "%s: unexpected parse error: %s" name msg)

let lint_sta name =
  Lint.check_design (Sta.Design_file.parse_file (deck_path name))

let ids diags = List.map (fun d -> D.id d.D.code) diags

let check_codes name diags expected =
  List.iter
    (fun code ->
      Alcotest.(check bool)
        (Printf.sprintf "%s reports %s" name code)
        true
        (List.mem code (ids diags)))
    expected

(* --- every crafted deck flags its registry code -------------------- *)

(* (deck, expected codes, gate fails plainly, gate fails under strict) *)
let sp_cases =
  [ ("lint/nonpositive.sp", [ "AWE-E001" ], true, true);
    ("lint/shorted_vsrc.sp", [ "AWE-E002"; "AWE-E007" ], true, true);
    ("lint/float_nocap.sp", [ "AWE-E003"; "AWE-E007" ], true, true);
    ("lint/float_cap.sp", [ "AWE-I001" ], false, false);
    ("lint/isrc_cutset.sp", [ "AWE-E004" ], true, true);
    ("lint/ind_loop.sp", [ "AWE-E005"; "AWE-E007" ], true, true);
    ("lint/vsrc_loop.sp", [ "AWE-E006"; "AWE-E007" ], true, true);
    ("lint/shorted_r.sp", [ "AWE-W001" ], false, true);
    ("lint/dangling.sp", [ "AWE-W002" ], false, true);
    ("lint/scale_spread.sp", [ "AWE-W003" ], false, true);
    (* the structural estimate and the post-assembly verdict agree *)
    ("lint/w201_spread.sp", [ "AWE-W201"; "AWE-W003" ], false, true);
    ("lint/w202_underdamped.sp", [ "AWE-W202" ], false, true);
    (* 7 decades of taus but only ~6 decades of spread: escalation
       without a conditioning complaint *)
    ("lint/w203_escalation.sp", [ "AWE-W203"; "AWE-I201" ], false, true);
    ("lint/i201_chain.sp", [ "AWE-I201" ], false, false);
    ("lint/i202_star.sp", [ "AWE-I202" ], false, false);
    ("lint/i203_parallel.sp", [ "AWE-I203" ], false, false) ]

let sta_cases =
  [ ("lint/unknown_net.sta", [ "AWE-E101" ], true, true);
    ("lint/undriven.sta", [ "AWE-E102" ], true, true);
    ("lint/sink_unattached.sta", [ "AWE-E103" ], true, true);
    ("lint/sink_unreachable.sta", [ "AWE-E104" ], true, true);
    ("lint/cycle.sta", [ "AWE-E105" ], true, true);
    (* the orphan net also trips E102; E106 blames the constraint *)
    ("lint/constraint_target.sta", [ "AWE-E106"; "AWE-E102" ], true, true);
    ("lint/w131_unconstrained.sta", [ "AWE-W131" ], false, true);
    ("lint/w132_dominated.sta", [ "AWE-W132" ], false, true);
    ("lint/w133_uncovered.sta", [ "AWE-W133" ], false, true) ]

let test_crafted_sp () =
  List.iter
    (fun (name, codes, fails, fails_strict) ->
      let diags = lint_sp name in
      check_codes name diags codes;
      Alcotest.(check bool)
        (name ^ " gate")
        fails
        (Lint.gate ~strict:false diags = Ok () |> not);
      Alcotest.(check bool)
        (name ^ " gate --strict")
        fails_strict
        (Lint.gate ~strict:true diags = Ok () |> not))
    sp_cases

let test_crafted_sta () =
  List.iter
    (fun (name, codes, fails, fails_strict) ->
      let diags = lint_sta name in
      check_codes name diags codes;
      Alcotest.(check bool)
        (name ^ " gate")
        fails
        (Lint.gate ~strict:false diags = Ok () |> not);
      Alcotest.(check bool)
        (name ^ " gate --strict")
        fails_strict
        (Lint.gate ~strict:true diags = Ok () |> not))
    sta_cases

(* constraint targets that CAN bind an arrival must not trip E106: a
   gate-driven net, and a primary input (externally driven).  The
   crafted deck's two dead constraints are the only E106s it emits. *)
let test_constraint_lint_negative () =
  let base =
    "cell inv 100 1f 10p\ngate g1 inv out in\nnet in drv g1 100 1f\n\
     net out drv x 100 1f\ninput in\noutput out\n"
  in
  let e106 src =
    List.filter
      (fun d -> d.D.code = D.Constraint_target)
      (Lint.check_design (Sta.Design_file.parse_string src))
  in
  Alcotest.(check int) "constraint on a driven net is clean" 0
    (List.length (e106 (base ^ "constraint out 1n\n")));
  Alcotest.(check int) "constraint on a primary input is clean" 0
    (List.length (e106 (base ^ "constraint in 1n\n")));
  Alcotest.(check int) "clock alone never trips E106" 0
    (List.length (e106 (base ^ "clock 2n\n")));
  let diags = lint_sta "lint/constraint_target.sta" in
  Alcotest.(check int) "one E106 per dead constraint" 2
    (List.length (List.filter (fun d -> d.D.code = D.Constraint_target) diags));
  (* each diagnostic names its net *)
  List.iter
    (fun net ->
      Alcotest.(check bool)
        (Printf.sprintf "E106 names %s" net)
        true
        (List.exists
           (fun d -> d.D.code = D.Constraint_target && d.D.nodes = [ net ])
           diags))
    [ "ghost"; "orphan" ]

(* --- the structural-rank check predicts Slu.factor ----------------- *)

(* decks whose singularity is visible in the sparsity pattern itself:
   the matching check must claim them (no false negatives), the
   augmented pattern must have deficient structural rank, and the
   sparse LU must actually fail on it *)
let structural_decks =
  [ "lint/shorted_vsrc.sp"; "lint/float_nocap.sp"; "lint/ind_loop.sp";
    "lint/vsrc_loop.sp" ]

let test_structural_rank_predicts () =
  List.iter
    (fun name ->
      let deck = Circuit.Parser.parse_file (deck_path name) in
      let sys = Circuit.Mna.build deck.Circuit.Parser.circuit in
      let pat = Sparse.Csr.of_dense (Circuit.Mna.augmented_g sys) in
      Alcotest.(check bool)
        (name ^ " structurally singular")
        true
        (Sparse.Matching.structurally_singular pat);
      (* the prediction comes true: both LU paths refuse the system *)
      (match Circuit.Mna.dc_factor sys with
      | _ -> Alcotest.failf "%s: dense dc_factor succeeded" name
      | exception Circuit.Mna.Singular_dc _ -> ());
      (match Circuit.Mna.dc_factor ~sparse:true sys with
      | _ -> Alcotest.failf "%s: sparse dc_factor succeeded" name
      | exception Circuit.Mna.Singular_dc _ -> ());
      (* and lint reported it under the registry code *)
      check_codes name (lint_sp name) [ "AWE-E007" ])
    structural_decks

(* every crafted deck that fails to factor (or build) must carry at
   least one lint error: the gate has zero false negatives over the
   whole bad-deck corpus, not just the structural subset *)
let test_no_false_negatives () =
  List.iter
    (fun (name, _, _, _) ->
      match Circuit.Parser.parse_file (deck_path name) with
      | exception Circuit.Parser.Parse_error _ -> ()
      | deck ->
        let circuit = deck.Circuit.Parser.circuit in
        let solve_fails =
          match Circuit.Mna.build circuit with
          | exception Invalid_argument _ -> true
          | sys -> (
            match Circuit.Mna.dc_factor sys with
            | _ -> false
            | exception Circuit.Mna.Singular_dc _ -> true)
        in
        if solve_fails then
          Alcotest.(check bool)
            (name ^ " failing solve is lint-visible")
            true
            (Lint.errors (lint_sp name) <> []))
    sp_cases

(* --- shipped good decks stay clean --------------------------------- *)

let good_sp =
  [ "fig4.sp"; "fig9.sp"; "fig16.sp"; "fig22.sp"; "fig25.sp";
    "charge_share.sp"; "coupled_lines.sp"; "regress_est_blindspot.sp" ]

let test_good_decks_clean () =
  List.iter
    (fun name ->
      Alcotest.(check (list string))
        (name ^ " has no lint errors")
        []
        (ids (Lint.errors (lint_sp name))))
    good_sp;
  Alcotest.(check (list string))
    "adder_stage.sta has no lint errors" []
    (ids (Lint.errors (lint_sta "adder_stage.sta")))

(* --- line attribution ---------------------------------------------- *)

let test_line_numbers () =
  let deck =
    Circuit.Parser.parse_string
      "v1 1 0 dc 1\nr1 1 2 1k\nc1 2 0 1p\n\nr2 2 3 1k\n.awe v(2)\n.end\n"
  in
  let c = deck.Circuit.Parser.circuit in
  Alcotest.(check (option int)) "v1 on line 1" (Some 1)
    (Circuit.Netlist.element_line c 0);
  Alcotest.(check (option int)) "r2 on line 5" (Some 5)
    (Circuit.Netlist.element_line c 3);
  Alcotest.(check (option int)) "out of range" None
    (Circuit.Netlist.element_line c 99);
  (* the dangling-node diagnostic points at r2's defining line *)
  let diags = Lint.check_circuit c in
  match
    List.find_opt (fun d -> d.D.code = D.Dangling_node) diags
  with
  | Some d -> Alcotest.(check (option int)) "W002 line" (Some 5) d.D.line
  | None -> Alcotest.fail "expected a dangling-node diagnostic"

(* --- registry sanity ----------------------------------------------- *)

let test_registry () =
  let all_ids = List.map D.id D.all_codes in
  Alcotest.(check int)
    "ids unique"
    (List.length all_ids)
    (List.length (List.sort_uniq compare all_ids));
  List.iter
    (fun code ->
      let id = D.id code in
      let expected_sev =
        match id.[4] with
        | 'E' -> D.Error
        | 'W' -> D.Warning
        | _ -> D.Info
      in
      Alcotest.(check bool)
        (id ^ " severity matches prefix")
        true
        (D.default_severity code = expected_sev))
    D.all_codes;
  let d =
    D.make ~element:"r1" ~nodes:[ "a"; "b" ] ~line:3 ~hint:"fix \"it\""
      D.Nonpositive_value "value is \"bad\""
  in
  let json = D.to_json d in
  let contains needle =
    let nl = String.length needle and jl = String.length json in
    let rec go i =
      i + nl <= jl && (String.sub json i nl = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun frag ->
      Alcotest.(check bool)
        (Printf.sprintf "json has %s" frag)
        true (contains frag))
    [ "\"AWE-E001\""; "\\\"bad\\\""; "\"line\": 3" ];
  Alcotest.(check bool)
    "strict promotes warnings" true
    (D.effective_severity ~strict:true
       (D.make D.Shorted_element "x")
    = D.Error);
  Alcotest.(check bool)
    "strict leaves info alone" true
    (D.effective_severity ~strict:true (D.make D.Float_group "x") = D.Info)

(* --- the structural health estimate agrees with the assembled one -- *)

let all_sp_decks = good_sp @ List.map (fun (n, _, _, _) -> n) sp_cases

(* W201 predicts eq. 47 conditioning trouble from structural Elmore
   bounds alone; W003 measures it on the assembled MNA diagonals.  On
   the whole deck corpus the two verdicts must coincide — the bound is
   loose in absolute value but tight in decades *)
let test_w201_agrees_w003 () =
  List.iter
    (fun name ->
      match Circuit.Parser.parse_file (deck_path name) with
      | exception Circuit.Parser.Parse_error _ -> ()
      | deck ->
        let codes = ids (Lint.check_circuit deck.Circuit.Parser.circuit) in
        Alcotest.(check bool)
          (name ^ ": W201 iff W003")
          (List.mem "AWE-W003" codes)
          (List.mem "AWE-W201" codes))
    all_sp_decks

(* --- differential: refactored checks == legacy implementations ----- *)

let circuit_identical c =
  D.list_to_json (Lint.check_circuit_core c)
  = D.list_to_json (Legacy_lint.check_circuit c)

let design_identical d =
  D.list_to_json (Lint.check_design_core d)
  = D.list_to_json (Legacy_lint.check_design d)

(* parsed designs now carry constraint-card lines on E106 (the one
   intentional divergence from legacy); mask lines before comparing *)
let design_identical_mod_lines d =
  let strip ds = List.map (fun x -> { x with D.line = None }) ds in
  D.list_to_json (strip (Lint.check_design_core d))
  = D.list_to_json (strip (Legacy_lint.check_design d))

let qcheck_differential_circuit =
  QCheck2.Test.make
    ~name:"circuit checks byte-identical to legacy (random circuits)"
    ~count:150 ~print:string_of_int
    QCheck2.Gen.(0 -- 1_000_000)
    (fun seed ->
      circuit_identical (Verify.Cases.random_case ~seed).Verify.Cases.circuit)

(* small randomly-defective designs, built programmatically (so no
   source lines exist and the comparison is byte-exact): random gate
   wiring that freely produces cycles, dropped net cards, duplicate
   and island segments, ghost constraints — every E10x path *)
let random_defective_design seed =
  let st = Random.State.make [| 0x5741; seed |] in
  let d = Sta.create () in
  let inv =
    Sta.cell ~name:"inv" ~drive_res:100. ~input_cap:1e-15 ~intrinsic:1e-11
  in
  let n_gates = 2 + Random.State.int st 6 in
  let n_nets = n_gates + 2 in
  let net i = Printf.sprintf "n%d" i in
  let rand_net () = net (Random.State.int st n_nets) in
  let pin () = Printf.sprintf "g%d" (Random.State.int st n_gates) in
  for i = 0 to n_gates - 1 do
    let ins = List.init (1 + Random.State.int st 2) (fun _ -> rand_net ()) in
    Sta.add_gate d
      ~inst:(Printf.sprintf "g%d" i)
      ~cell:inv ~inputs:ins ~output:(net i)
  done;
  for i = 0 to n_nets - 1 do
    if Random.State.int st 6 > 0 then begin
      let seg seg_from seg_to res cap = { Sta.seg_from; seg_to; res; cap } in
      let segs = ref [ seg "drv" (pin ()) 100. 1e-14 ] in
      if Random.State.bool st then
        segs := seg "drv" (pin ()) 150. 2e-14 :: !segs;
      if Random.State.int st 4 = 0 then
        segs := seg "islA" "islB" 50. 5e-15 :: !segs;
      Sta.add_net d ~name:(net i) ~segments:(List.rev !segs)
    end
  done;
  if Random.State.bool st then Sta.add_primary_input d ~net:(net n_gates) ();
  if Random.State.bool st then
    Sta.add_primary_input d ~net:(net (n_gates + 1)) ();
  if Random.State.bool st then Sta.add_primary_output d ~net:(net 0);
  if Random.State.int st 3 = 0 then
    Sta.add_constraint d ~net:"ghost" ~required:1e-9;
  if Random.State.int st 3 = 0 then
    Sta.add_constraint d ~net:(rand_net ()) ~required:2e-9;
  if Random.State.int st 3 = 0 then Sta.set_clock d ~period:5e-9;
  d

let qcheck_differential_design =
  QCheck2.Test.make
    ~name:"design checks byte-identical to legacy (random designs)"
    ~count:300 ~print:string_of_int
    QCheck2.Gen.(0 -- 1_000_000)
    (fun seed ->
      match random_defective_design seed with
      | exception Sta.Malformed _ -> true (* builder refused: no claim *)
      | d -> design_identical d)

let test_differential_fixed () =
  (* the deck corpus, deterministically *)
  List.iter
    (fun name ->
      match Circuit.Parser.parse_file (deck_path name) with
      | exception Circuit.Parser.Parse_error _ -> ()
      | deck ->
        Alcotest.(check bool)
          (name ^ " identical to legacy")
          true
          (circuit_identical deck.Circuit.Parser.circuit))
    all_sp_decks;
  List.iter
    (fun (name, _, _, _) ->
      Alcotest.(check bool)
        (name ^ " identical to legacy (mod E106 lines)")
        true
        (design_identical_mod_lines
           (Sta.Design_file.parse_file (deck_path name))))
    sta_cases;
  (* synthetic designs at a less toy-like scale *)
  List.iter
    (fun (label, d) ->
      Alcotest.(check bool) (label ^ " identical to legacy") true
        (design_identical d))
    [ ("synth grid 6x6", Sta.Synth.grid ~rows:6 ~cols:6 ());
      ("synth clock_tree", Sta.Synth.clock_tree ~levels:3 ~fanout:3 ());
      ( "synth buffered_mesh",
        Sta.Synth.buffered_mesh ~seed:7 ~rows:5 ~cols:5 () ) ]

(* --- the dataflow engine ------------------------------------------- *)

let test_dataflow () =
  let module Df = Lint.Dataflow in
  let module B = Df.Make (Df.Bool_or) in
  (* a diamond with a back edge: 0 -> 1 <-> 2, 1 -> 3 *)
  let g = Df.of_edges ~nodes:4 [ (0, 1); (1, 2); (2, 1); (1, 3) ] in
  let fwd =
    B.solve g ~init:(fun i -> i = 0) ~edge:(fun ~from:_ ~into:_ v -> v)
  in
  Alcotest.(check (list bool))
    "forward reachability from 0"
    [ true; true; true; true ]
    (Array.to_list fwd);
  let bwd =
    B.solve ~direction:Df.Backward g
      ~init:(fun i -> i = 3)
      ~edge:(fun ~from:_ ~into:_ v -> v)
  in
  Alcotest.(check (list bool))
    "backward reachability to 3"
    [ true; true; true; true ]
    (Array.to_list bwd);
  let isolated =
    B.solve g ~init:(fun i -> i = 3) ~edge:(fun ~from:_ ~into:_ v -> v)
  in
  Alcotest.(check (list bool))
    "nothing reachable from the sink"
    [ false; false; false; true ]
    (Array.to_list isolated);
  (* min-plus shortest paths on an undirected triangle *)
  let module M = Df.Make (Df.Min_float) in
  let gu = Df.undirected ~nodes:3 [ (0, 1); (1, 2) ] in
  let dist =
    M.solve gu
      ~init:(fun i -> if i = 0 then 0. else infinity)
      ~edge:(fun ~from:_ ~into:_ v -> v +. 1.)
  in
  Alcotest.(check (float 1e-12)) "two hops" 2. dist.(2);
  (* the general fixpoint: all-preds-ready AND, seeded at 0 — the
     cycle 1 <-> 2 must stay unready *)
  let and_ready =
    B.fixpoint ~direction:Df.Forward g
      ~init:(fun i -> i = 0)
      ~transfer:(fun i ~get ->
        i = 0
        || Array.length g.Df.preds.(i) > 0
           && Array.for_all get g.Df.preds.(i))
  in
  Alcotest.(check (list bool))
    "conjunctive readiness stalls on the cycle"
    [ true; false; false; false ]
    (Array.to_list and_ready);
  Df.reset_work ();
  ignore (B.solve g ~init:(fun _ -> false) ~edge:(fun ~from:_ ~into:_ v -> v));
  Alcotest.(check bool) "transfers are counted" true (Df.work () > 0)

(* --- output normalization: stable sort + identity dedup ------------ *)

let test_normalize () =
  let a = D.make ~line:5 D.Nonpositive_value "x" in
  let b = D.make ~line:2 D.Undriven_net "y" in
  let c = D.make ~line:2 D.Unknown_net "z" in
  Alcotest.(check int) "dedup collapses identical findings" 1
    (List.length (Lint.dedup [ a; a; a ]));
  Alcotest.(check int) "dedup keeps distinct messages" 2
    (List.length
       (Lint.dedup [ D.make D.Structural_rank "m1"; D.make D.Structural_rank "m2" ]));
  Alcotest.(check (list string))
    "sorted by (line, code)"
    [ "AWE-E101"; "AWE-E102"; "AWE-E001" ]
    (ids (Lint.normalize [ a; c; b; a ]));
  (* normalization is idempotent *)
  let once = Lint.normalize [ a; c; b; a ] in
  Alcotest.(check bool) "idempotent" true (Lint.normalize once = once)

(* --- SARIF output -------------------------------------------------- *)

(* a minimal JSON reader: enough to structurally validate the report
   against the SARIF 2.1.0 required-property set (the toolchain has
   no JSON dependency, and well-formedness is half the point) *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else '\000' in
    let skip_ws () =
      while
        !pos < n
        && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
      do
        incr pos
      done
    in
    let expect c =
      if peek () = c then incr pos
      else raise (Bad (Printf.sprintf "expected %c at %d" c !pos))
    in
    let lit w v =
      let l = String.length w in
      if !pos + l <= n && String.sub s !pos l = w then begin
        pos := !pos + l;
        v
      end
      else raise (Bad "literal")
    in
    let num () =
      let start = !pos in
      while
        !pos < n
        &&
        match s.[!pos] with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      do
        incr pos
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> raise (Bad "number")
    in
    let str () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then raise (Bad "eof in string");
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          (match s.[!pos] with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            Buffer.add_string b (String.sub s (!pos - 1) 6);
            pos := !pos + 4
          | c -> Buffer.add_char b c);
          incr pos;
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
      in
      go ();
      Buffer.contents b
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | '{' -> obj ()
      | '[' -> arr ()
      | '"' -> Str (str ())
      | 't' -> lit "true" (Bool true)
      | 'f' -> lit "false" (Bool false)
      | 'n' -> lit "null" Null
      | _ -> num ()
    and arr () =
      expect '[';
      skip_ws ();
      if peek () = ']' then begin
        incr pos;
        Arr []
      end
      else
        let rec items acc =
          let v = value () in
          skip_ws ();
          if peek () = ',' then begin
            incr pos;
            items (v :: acc)
          end
          else begin
            expect ']';
            Arr (List.rev (v :: acc))
          end
        in
        items []
    and obj () =
      expect '{';
      skip_ws ();
      if peek () = '}' then begin
        incr pos;
        Obj []
      end
      else
        let rec fields acc =
          skip_ws ();
          let k = str () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          if peek () = ',' then begin
            incr pos;
            fields ((k, v) :: acc)
          end
          else begin
            expect '}';
            Obj (List.rev ((k, v) :: acc))
          end
        in
        fields []
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v

  let field k = function Obj fs -> List.assoc_opt k fs | _ -> None

  let field_exn name k j =
    match field k j with
    | Some v -> v
    | None -> Alcotest.failf "SARIF: missing %s.%s" name k

  let str_exn name = function
    | Str s -> s
    | _ -> Alcotest.failf "SARIF: %s is not a string" name

  let arr_exn name = function
    | Arr l -> l
    | _ -> Alcotest.failf "SARIF: %s is not an array" name
end

let test_sarif () =
  let files =
    [ "lint/scale_spread.sp"; "lint/w132_dominated.sta"; "fig22.sp" ]
  in
  let results =
    List.map
      (fun name ->
        let diags =
          if Filename.check_suffix name ".sta" then lint_sta name
          else lint_sp name
        in
        (deck_path name, Lint.normalize diags))
      files
  in
  let total = List.fold_left (fun k (_, ds) -> k + List.length ds) 0 results in
  Alcotest.(check bool) "fixture produces results" true (total > 0);
  let log = Json.parse (Lint.Sarif.report results) in
  Alcotest.(check string)
    "$schema" Lint.Sarif.schema_uri
    (Json.str_exn "$schema" (Json.field_exn "log" "$schema" log));
  Alcotest.(check string)
    "version" "2.1.0"
    (Json.str_exn "version" (Json.field_exn "log" "version" log));
  let run =
    match Json.arr_exn "runs" (Json.field_exn "log" "runs" log) with
    | [ r ] -> r
    | rs -> Alcotest.failf "expected 1 run, got %d" (List.length rs)
  in
  let driver =
    Json.field_exn "tool" "driver" (Json.field_exn "run" "tool" run)
  in
  Alcotest.(check string)
    "tool name" Lint.Sarif.tool_name
    (Json.str_exn "name" (Json.field_exn "driver" "name" driver));
  let rules = Json.arr_exn "rules" (Json.field_exn "driver" "rules" driver) in
  Alcotest.(check int)
    "one rule per registry code"
    (List.length D.all_codes)
    (List.length rules);
  let rule_ids =
    List.map
      (fun r -> Json.str_exn "rule.id" (Json.field_exn "rule" "id" r))
      rules
  in
  Alcotest.(check (list string))
    "rule table is the registry, in order"
    (List.map D.id D.all_codes)
    rule_ids;
  let sarif_results =
    Json.arr_exn "results" (Json.field_exn "run" "results" run)
  in
  Alcotest.(check int) "one result per diagnostic" total
    (List.length sarif_results);
  List.iter
    (fun r ->
      let rule_id =
        Json.str_exn "ruleId" (Json.field_exn "result" "ruleId" r)
      in
      (* ruleIndex points back into the rule table *)
      (match Json.field_exn "result" "ruleIndex" r with
      | Json.Num i ->
        Alcotest.(check string)
          "ruleIndex resolves to ruleId" rule_id
          (List.nth rule_ids (int_of_float i))
      | _ -> Alcotest.fail "ruleIndex is not a number");
      (match
         Json.str_exn "level" (Json.field_exn "result" "level" r)
       with
      | "error" | "warning" | "note" -> ()
      | l -> Alcotest.failf "bad level %s" l);
      let msg =
        Json.str_exn "text"
          (Json.field_exn "message" "text"
             (Json.field_exn "result" "message" r))
      in
      Alcotest.(check bool) "message nonempty" true (String.length msg > 0);
      let loc =
        match
          Json.arr_exn "locations" (Json.field_exn "result" "locations" r)
        with
        | [ l ] -> l
        | _ -> Alcotest.fail "expected exactly one location"
      in
      let phys = Json.field_exn "location" "physicalLocation" loc in
      let uri =
        Json.str_exn "uri"
          (Json.field_exn "artifactLocation" "uri"
             (Json.field_exn "physicalLocation" "artifactLocation" phys))
      in
      Alcotest.(check bool) "uri is one of the inputs" true
        (List.exists (fun (f, _) -> f = uri) results);
      match
        Json.field "awesimLint/v1"
          (Json.field_exn "result" "partialFingerprints" r)
      with
      | Some (Json.Str fp) ->
        Alcotest.(check bool) "fingerprint mentions the rule" true
          (String.length fp > String.length rule_id
          && String.sub fp 0 (String.length rule_id) = rule_id)
      | _ -> Alcotest.fail "missing partialFingerprints.awesimLint/v1")
    sarif_results

(* --- baseline files ------------------------------------------------ *)

let test_baseline () =
  let file = deck_path "lint/w201_spread.sp" in
  let ds = Lint.normalize (lint_sp "lint/w201_spread.sp") in
  Alcotest.(check bool) "fixture produces findings" true (ds <> []);
  let tmp = Filename.temp_file "awesim_baseline" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Lint.Baseline.save tmp [ (file, ds) ];
      let b = Lint.Baseline.load tmp in
      Alcotest.(check int) "roundtrip suppresses everything" 0
        (List.length (Lint.Baseline.filter b ~file ds));
      Alcotest.(check int)
        "same findings in another file are not suppressed"
        (List.length ds)
        (List.length (Lint.Baseline.filter b ~file:"other.sp" ds));
      Alcotest.(check int)
        "the empty baseline suppresses nothing"
        (List.length ds)
        (List.length (Lint.Baseline.filter Lint.Baseline.empty ~file ds));
      (* fingerprints ignore lines/messages: a moved finding stays
         suppressed *)
      let moved = List.map (fun d -> { d with D.line = Some 999 }) ds in
      Alcotest.(check int) "line changes don't resurrect findings" 0
        (List.length (Lint.Baseline.filter b ~file moved)))

(* --- source-line attribution of constraint diagnostics ------------- *)

let test_constraint_lines () =
  let find code diags = List.filter (fun d -> d.D.code = code) diags in
  (* constraint_target.sta: `constraint ghost` on line 11, `constraint
     orphan` on line 12 — E106 must blame the cards themselves *)
  let diags = lint_sta "lint/constraint_target.sta" in
  let lines =
    find D.Constraint_target diags
    |> List.map (fun d -> (d.D.nodes, d.D.line))
    |> List.sort compare
  in
  Alcotest.(check bool)
    "E106 carries the constraint cards' lines" true
    (lines = [ ([ "ghost" ], Some 11); ([ "orphan" ], Some 12) ]);
  (match find D.Dominated_constraint (lint_sta "lint/w132_dominated.sta") with
  | [ d ] ->
    Alcotest.(check (option int)) "W132 blames its card" (Some 12) d.D.line
  | _ -> Alcotest.fail "expected exactly one W132");
  match find D.Constraint_unreachable (lint_sta "lint/w133_uncovered.sta") with
  | [ d ] ->
    Alcotest.(check (option int)) "W133 points at the clock card"
      (Some 12) d.D.line
  | _ -> Alcotest.fail "expected exactly one W133"

(* --- reduce advisories vs the rewriter ----------------------------- *)

(* the I2xx advisories and Circuit.Reduce share one detector; on every
   fixture the advisory's claimed node/element savings must equal what
   the rewriter actually eliminates when nothing is protected *)
let test_reduce_advice_savings_match () =
  List.iter
    (fun name ->
      let deck = Circuit.Parser.parse_file (deck_path name) in
      let c = deck.Circuit.Parser.circuit in
      let plans = Circuit.Reduce.analyze c in
      let node_savings, element_savings =
        List.fold_left
          (fun (nodes, elts) p ->
            match p with
            | Circuit.Reduce.Chain { members } when List.length members < 2 ->
              (nodes, elts)
            | Circuit.Reduce.Parallel _ ->
              (nodes, elts + Circuit.Reduce.plan_savings p)
            | p -> (nodes + Circuit.Reduce.plan_savings p, elts))
          (0, 0) plans
      in
      let r = Circuit.Reduce.reduce ~ports:[] c in
      Alcotest.(check int)
        (name ^ ": advisory node savings = actual")
        node_savings r.Circuit.Reduce.report.Circuit.Reduce.nodes_eliminated;
      if element_savings > 0 then
        Alcotest.(check int)
          (name ^ ": advisory element savings = parallel eliminations")
          element_savings
          r.Circuit.Reduce.report.Circuit.Reduce.elements_eliminated)
    [ "lint/i201_chain.sp"; "lint/i202_star.sp"; "lint/i203_parallel.sp" ]

(* lint always sees the netlist as written: running the rewriter first
   must not change a single diagnostic or SARIF byte *)
let test_reduce_lint_purity () =
  List.iter
    (fun name ->
      let path = deck_path name in
      let deck = Circuit.Parser.parse_file path in
      let c = deck.Circuit.Parser.circuit in
      let before = Lint.normalize (Lint.check_circuit c) in
      let sarif_before = Lint.Sarif.report [ (path, before) ] in
      ignore (Circuit.Reduce.reduce ~ports:[] c);
      let after = Lint.normalize (Lint.check_circuit c) in
      Alcotest.(check bool)
        (name ^ ": diagnostics unchanged by reduction")
        true (before = after);
      Alcotest.(check string)
        (name ^ ": SARIF unchanged by reduction")
        sarif_before
        (Lint.Sarif.report [ (path, after) ]);
      (* and the advisories are still present: the rewriter consumed a
         copy, not the netlist lint reports on *)
      Alcotest.(check bool)
        (name ^ ": advisory still fires")
        true
        (List.exists
           (fun d ->
             match d.D.code with
             | D.Series_chain | D.Star_reduce | D.Parallel_merge -> true
             | _ -> false)
           after))
    [ "lint/i201_chain.sp"; "lint/i202_star.sp"; "lint/i203_parallel.sp" ]

(* --- lint-clean random circuits never hit a singular solve --------- *)

let qcheck_lint_clean_factors =
  QCheck2.Test.make
    ~name:"lint-clean random circuits factor (dense and sparse)" ~count:120
    ~print:string_of_int
    QCheck2.Gen.(0 -- 1_000_000)
    (fun seed ->
      let circuit, _ =
        match seed mod 3 with
        | 0 -> Circuit.Samples.random_rc_tree ~seed ~n:(2 + (seed mod 9)) ()
        | 1 ->
          Circuit.Samples.random_coupled_tree ~seed
            ~n:(3 + (seed mod 7))
            ~couplings:(1 + (seed mod 3))
            ()
        | _ ->
          Circuit.Samples.random_rc_mesh ~seed
            ~n:(3 + (seed mod 7))
            ~extra:(1 + (seed mod 3))
            ()
      in
      match Lint.errors (Lint.check_circuit circuit) with
      | _ :: _ -> true (* lint objects: no promise to keep *)
      | [] ->
        let sys = Circuit.Mna.build circuit in
        ignore (Circuit.Mna.dc_factor sys);
        ignore (Circuit.Mna.dc_factor ~sparse:true sys);
        true)

let () =
  Alcotest.run "lint"
    [ ( "crafted decks",
        [ Alcotest.test_case "sp codes and gates" `Quick test_crafted_sp;
          Alcotest.test_case "sta codes and gates" `Quick test_crafted_sta;
          Alcotest.test_case "constraint targets (E106 negatives)" `Quick
            test_constraint_lint_negative ] );
      ( "singularity prediction",
        [ Alcotest.test_case "structural rank predicts Slu" `Quick
            test_structural_rank_predicts;
          Alcotest.test_case "no false negatives" `Quick
            test_no_false_negatives ] );
      ( "good decks",
        [ Alcotest.test_case "shipped decks stay clean" `Quick
            test_good_decks_clean ] );
      ( "provenance",
        [ Alcotest.test_case "line attribution" `Quick test_line_numbers;
          Alcotest.test_case "constraint-card lines" `Quick
            test_constraint_lines;
          Alcotest.test_case "registry" `Quick test_registry ] );
      ( "numerical health",
        [ Alcotest.test_case "W201 agrees with W003" `Quick
            test_w201_agrees_w003 ] );
      ( "dataflow engine",
        [ Alcotest.test_case "fixpoints" `Quick test_dataflow ] );
      ( "reduce advisories",
        [ Alcotest.test_case "savings match the rewriter" `Quick
            test_reduce_advice_savings_match;
          Alcotest.test_case "reduction never touches lint output" `Quick
            test_reduce_lint_purity ] );
      ( "output",
        [ Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "SARIF 2.1.0 structure" `Quick test_sarif;
          Alcotest.test_case "baseline roundtrip" `Quick test_baseline ] );
      ( "differential vs legacy",
        Alcotest.test_case "deck corpus and synth designs" `Quick
          test_differential_fixed
        :: List.map QCheck_alcotest.to_alcotest
             [ qcheck_differential_circuit; qcheck_differential_design ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ qcheck_lint_clean_factors ] )
    ]
