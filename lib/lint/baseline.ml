(* Baseline files: suppress previously-accepted findings so CI can
   gate on new diagnostics only.

   A baseline is a line-oriented set of fingerprints, one per
   accepted finding.  The fingerprint deliberately excludes the line
   number and message text — both churn under unrelated edits — and
   keys on what identifies a finding across revisions: the file, the
   registry code, the offending element and the involved nodes.
   Plain text (sorted, unique, '#' comments) so baselines diff
   cleanly under review. *)

module D = Diagnostic

let header = "# awesim lint baseline v1"

let fingerprint ~file (d : D.t) =
  String.concat "|"
    [ D.id d.code;
      file;
      Option.value d.element ~default:"-";
      String.concat "," d.nodes ]

type t = (string, unit) Hashtbl.t

let empty : t = Hashtbl.create 1

let mem (t : t) fp = Hashtbl.mem t fp

let load path : t =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let t = Hashtbl.create 64 in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" && line.[0] <> '#' then Hashtbl.replace t line ()
         done
       with End_of_file -> ());
      t)

let save path results =
  let fps =
    List.concat_map
      (fun (file, ds) -> List.map (fingerprint ~file) ds)
      results
    |> List.sort_uniq compare
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (header ^ "\n");
      List.iter (fun fp -> output_string oc (fp ^ "\n")) fps)

let filter (t : t) ~file ds =
  List.filter (fun d -> not (mem t (fingerprint ~file d))) ds
