(* A small generic dataflow engine: monotone transfer functions over a
   finite graph, solved to the least fixpoint with a deterministic
   worklist.  The lint passes run it over two very different graphs —
   the element graph of a parsed deck and the net-level timing DAG of a
   .sta design — which is why the graph is just adjacency arrays and
   the lattice is a functor argument.

   Determinism contract: nodes are seeded in index order and the
   worklist is FIFO, so for a fixed graph and transfer the sequence of
   applications (and hence [work ()]) is reproducible.  The fixpoint
   itself is order-independent as long as the transfer is monotone. *)

type graph = {
  nodes : int;
  succs : int array array;
  preds : int array array;
}

type direction = Forward | Backward

let of_edges ~nodes edges =
  let sdeg = Array.make nodes 0 and pdeg = Array.make nodes 0 in
  List.iter
    (fun (a, b) ->
      sdeg.(a) <- sdeg.(a) + 1;
      pdeg.(b) <- pdeg.(b) + 1)
    edges;
  let succs = Array.init nodes (fun i -> Array.make sdeg.(i) 0)
  and preds = Array.init nodes (fun i -> Array.make pdeg.(i) 0) in
  let si = Array.make nodes 0 and pi = Array.make nodes 0 in
  List.iter
    (fun (a, b) ->
      succs.(a).(si.(a)) <- b;
      si.(a) <- si.(a) + 1;
      preds.(b).(pi.(b)) <- a;
      pi.(b) <- pi.(b) + 1)
    edges;
  { nodes; succs; preds }

let undirected ~nodes edges =
  let deg = Array.make nodes 0 in
  List.iter
    (fun (a, b) ->
      deg.(a) <- deg.(a) + 1;
      if a <> b then deg.(b) <- deg.(b) + 1)
    edges;
  let adj = Array.init nodes (fun i -> Array.make deg.(i) 0) in
  let fill = Array.make nodes 0 in
  List.iter
    (fun (a, b) ->
      adj.(a).(fill.(a)) <- b;
      fill.(a) <- fill.(a) + 1;
      if a <> b then begin
        adj.(b).(fill.(b)) <- a;
        fill.(b) <- fill.(b) + 1
      end)
    edges;
  { nodes; succs = adj; preds = adj }

(* --- work accounting ----------------------------------------------- *)

(* One counter for the whole lint layer: fixpoint transfer applications
   plus the explicit [tick]s the passes charge for their linear scans.
   Counter-based (not wall-clock), so the near-linearity gate in
   [bench lint_scale] is stable on loaded single-core runners. *)

let work_counter = ref 0

let reset_work () = work_counter := 0

let work () = !work_counter

let tick ?(n = 1) () = work_counter := !work_counter + n

(* --- the engine ---------------------------------------------------- *)

module type LATTICE = sig
  type t

  val bottom : t

  val join : t -> t -> t

  val equal : t -> t -> bool
end

module Make (L : LATTICE) = struct
  let fixpoint ?(direction = Forward) g ~init ~transfer =
    let n = g.nodes in
    let value = Array.init n init in
    (* when [i]'s value changes, who must be revisited *)
    let deps =
      match direction with Forward -> g.succs | Backward -> g.preds
    in
    let on_queue = Array.make n true in
    let q = Queue.create () in
    for i = 0 to n - 1 do
      Queue.add i q
    done;
    let get j = value.(j) in
    while not (Queue.is_empty q) do
      let i = Queue.pop q in
      on_queue.(i) <- false;
      incr work_counter;
      let v' = transfer i ~get in
      if not (L.equal v' value.(i)) then begin
        value.(i) <- v';
        Array.iter
          (fun j ->
            if not on_queue.(j) then begin
              on_queue.(j) <- true;
              Queue.add j q
            end)
          deps.(i)
      end
    done;
    value

  let solve ?(direction = Forward) g ~init ~edge =
    (* join-over-incoming-edges form: forward passes read predecessors,
       backward passes read successors *)
    let incoming =
      match direction with Forward -> g.preds | Backward -> g.succs
    in
    fixpoint ~direction g ~init
      ~transfer:(fun i ~get ->
        Array.fold_left
          (fun acc j -> L.join acc (edge ~from:j ~into:i (get j)))
          (init i) incoming.(i))
end

(* --- stock lattices ------------------------------------------------ *)

module Bool_or = struct
  type t = bool

  let bottom = false

  let join = ( || )

  let equal = Bool.equal
end

module Min_int = struct
  type t = int

  let bottom = max_int

  let join = Int.min

  let equal = Int.equal
end

module Min_float = struct
  type t = float

  let bottom = infinity

  let join = Float.min

  let equal (a : float) b = a = b
end
