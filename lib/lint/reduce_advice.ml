(* AWE-I2xx reducibility advisories: the static work-list for the
   planned Circuit.Reduce pass (ROADMAP item 3).

   Three structure families are provably collapsible into smaller
   moment-preserving equivalents (the RC-chain-recognition literature
   — arXiv 2508.13159 — and the DCM signal-line model — arXiv
   2401.08430 — both hinge on spotting exactly these):

   - I201 series chains: maximal runs of interior nodes carrying
     exactly two resistor terminals and at most grounded capacitance;
     a run of k interior nodes collapses to one equivalent node
     (saves k-1 nodes).
   - I202 stars: two or more single-resistor RC legs hanging off one
     hub merge into one equivalent leg (saves legs-1 nodes).
   - I203 parallel merges: same-kind two-terminal elements sharing
     both endpoints combine by the usual series/parallel rules
     (saves k-1 elements).

   Everything is advisory (Info): the findings point at reductions, a
   later PR performs them. *)

module D = Diagnostic

let nname (c : Circuit.Netlist.circuit) n = c.Circuit.Netlist.node_names.(n)

(* a node is chain-interior / leg-leaf material only when resistors
   and grounded caps are its whole story *)
let rc_only (p : Circuit.Flowgraph.node_profile) =
  p.Circuit.Flowgraph.np_others = 0
  && p.Circuit.Flowgraph.np_floating_caps = 0

let check_chains ~emit (c : Circuit.Netlist.circuit) profiles neighbors =
  let nodes = c.Circuit.Netlist.node_count in
  let ground = Circuit.Element.ground in
  let interior = Array.make nodes false in
  for n = 0 to nodes - 1 do
    Dataflow.tick ();
    interior.(n) <-
      n <> ground
      && rc_only profiles.(n)
      && profiles.(n).Circuit.Flowgraph.np_resistors = 2
  done;
  (* connected runs of interior nodes, joined by the resistors between
     them: min-label propagation over the interior-restricted graph *)
  let edges = ref [] in
  for n = 0 to nodes - 1 do
    if interior.(n) then
      List.iter
        (fun m -> if m > n && interior.(m) then edges := (n, m) :: !edges)
        neighbors.(n)
  done;
  let g = Dataflow.undirected ~nodes !edges in
  let module M = Dataflow.Make (Dataflow.Min_int) in
  let label =
    M.solve g
      ~init:(fun n -> if interior.(n) then n else max_int)
      ~edge:(fun ~from:_ ~into:_ v -> v)
  in
  let runs = Hashtbl.create 8 in
  for n = nodes - 1 downto 0 do
    if interior.(n) then
      Hashtbl.replace runs label.(n)
        (n :: Option.value (Hashtbl.find_opt runs label.(n)) ~default:[])
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) runs []
  |> List.sort compare
  |> List.iter (fun members ->
         let k = List.length members in
         if k >= 2 then
           let names = List.map (nname c) members in
           emit
             (D.make ~nodes:names
                ~hint:
                  "collapse the run into a moment-preserving 2-port \
                   equivalent before MNA stamping"
                D.Series_chain
                (Printf.sprintf
                   "series RC chain: interior nodes {%s} carry only two \
                    resistors and grounded capacitance each; the run \
                    collapses to one equivalent node (saves %d node%s)"
                   (String.concat ", " names)
                   (k - 1)
                   (if k = 2 then "" else "s"))))

let check_stars ~emit (c : Circuit.Netlist.circuit) profiles neighbors =
  let nodes = c.Circuit.Netlist.node_count in
  let ground = Circuit.Element.ground in
  let leaf = Array.make nodes false in
  for n = 0 to nodes - 1 do
    Dataflow.tick ();
    (* a leg tip: one resistor in, grounded cap(s) only — a tip with
       no cap at all is a dangling node, W002's business *)
    leaf.(n) <-
      n <> ground
      && rc_only profiles.(n)
      && profiles.(n).Circuit.Flowgraph.np_resistors = 1
      && profiles.(n).Circuit.Flowgraph.np_grounded_caps >= 1
  done;
  for hub = 0 to nodes - 1 do
    if not leaf.(hub) then begin
      let leaves =
        List.filter (fun m -> m <> hub && leaf.(m)) neighbors.(hub)
        |> List.sort_uniq compare
      in
      let k = List.length leaves in
      if k >= 2 then
        let names = List.map (nname c) leaves in
        emit
          (D.make
             ~nodes:(nname c hub :: names)
             ~hint:"merge the legs into one equivalent RC leg"
             D.Star_reduce
             (Printf.sprintf
                "star at node %s: %d single-resistor RC legs ({%s}) \
                 merge into one equivalent leg (saves %d node%s)"
                (nname c hub) k
                (String.concat ", " names)
                (k - 1)
                (if k = 2 then "" else "s")))
    end
  done

let check_parallel ~emit (c : Circuit.Netlist.circuit) =
  let groups = Hashtbl.create 16 in
  let add kind np nn name =
    if np <> nn then begin
      let k = (kind, min np nn, max np nn) in
      Hashtbl.replace groups k
        (name :: Option.value (Hashtbl.find_opt groups k) ~default:[])
    end
  in
  Array.iter
    (fun e ->
      Dataflow.tick ();
      match e with
      | Circuit.Element.Resistor { name; np; nn; _ } ->
        add "resistor" np nn name
      | Circuit.Element.Capacitor { name; np; nn; _ } ->
        add "capacitor" np nn name
      | Circuit.Element.Inductor { name; np; nn; _ } ->
        add "inductor" np nn name
      | _ -> ())
    c.Circuit.Netlist.elements;
  Hashtbl.fold
    (fun (kind, a, b) names acc -> ((kind, a, b), List.rev names) :: acc)
    groups []
  |> List.sort compare
  |> List.iter (fun ((kind, a, b), names) ->
         let k = List.length names in
         if k >= 2 then
           emit
             (D.make
                ~element:(List.hd names)
                ~nodes:[ nname c a; nname c b ]
                ~hint:"combine them into one equivalent element"
                D.Parallel_merge
                (Printf.sprintf
                   "%d parallel %ss (%s) between nodes %s and %s \
                    collapse into one equivalent element (saves %d)"
                   k kind
                   (String.concat ", " names)
                   (nname c a) (nname c b) (k - 1))))

let check_circuit (c : Circuit.Netlist.circuit) =
  let acc = ref [] in
  let emit d = acc := d :: !acc in
  let profiles = Circuit.Flowgraph.profiles c in
  let neighbors = Circuit.Flowgraph.resistor_neighbors c in
  check_chains ~emit c profiles neighbors;
  check_stars ~emit c profiles neighbors;
  check_parallel ~emit c;
  List.rev !acc
