(* AWE-I2xx reducibility advisories, formatted from the shared
   detector in Circuit.Reduce (ROADMAP item 3: the lint layer reports
   the structures, Circuit.Reduce rewrites them — one analysis, so the
   two can never drift).

   Three structure families are provably collapsible into smaller
   moment-preserving equivalents (the RC-chain-recognition literature
   — arXiv 2508.13159 — and the DCM signal-line model — arXiv
   2401.08430 — both hinge on spotting exactly these):

   - I201 series chains: maximal runs of interior nodes carrying
     exactly two resistor terminals and at most grounded capacitance;
     a run of k interior nodes collapses to one equivalent node
     (saves k-1 nodes).
   - I202 stars: two or more single-resistor RC legs hanging off one
     hub merge into one equivalent leg (saves legs-1 nodes).
   - I203 parallel merges: same-kind two-terminal elements sharing
     both endpoints combine by the usual series/parallel rules
     (saves k-1 elements).

   Everything is advisory (Info): the findings point at reductions;
   `Sta.analyze --reduce` (default on) performs them. *)

module D = Diagnostic

let nname (c : Circuit.Netlist.circuit) n = c.Circuit.Netlist.node_names.(n)

let check_circuit (c : Circuit.Netlist.circuit) =
  let plans = Circuit.Reduce.analyze ~tick:(fun () -> Dataflow.tick ()) c in
  List.filter_map
    (fun plan ->
      let savings = Circuit.Reduce.plan_savings plan in
      match plan with
      | Circuit.Reduce.Chain { members } ->
        let k = List.length members in
        if k >= 2 then
          let names = List.map (nname c) members in
          Some
            (D.make ~nodes:names
               ~hint:
                 "collapse the run into a moment-preserving 2-port \
                  equivalent before MNA stamping"
               D.Series_chain
               (Printf.sprintf
                  "series RC chain: interior nodes {%s} carry only two \
                   resistors and grounded capacitance each; the run \
                   collapses to one equivalent node (saves %d node%s)"
                  (String.concat ", " names)
                  savings
                  (if savings = 1 then "" else "s")))
        else None
      | Circuit.Reduce.Star { hub; legs } ->
        let k = List.length legs in
        let names = List.map (nname c) legs in
        Some
          (D.make
             ~nodes:(nname c hub :: names)
             ~hint:"merge the legs into one equivalent RC leg"
             D.Star_reduce
             (Printf.sprintf
                "star at node %s: %d single-resistor RC legs ({%s}) \
                 merge into one equivalent leg (saves %d node%s)"
                (nname c hub) k
                (String.concat ", " names)
                savings
                (if savings = 1 then "" else "s")))
      | Circuit.Reduce.Parallel { kind; np; nn; names } ->
        Some
          (D.make
             ~element:(List.hd names)
             ~nodes:[ nname c np; nname c nn ]
             ~hint:"combine them into one equivalent element"
             D.Parallel_merge
             (Printf.sprintf
                "%d parallel %ss (%s) between nodes %s and %s \
                 collapse into one equivalent element (saves %d)"
                (List.length names) kind
                (String.concat ", " names)
                (nname c np) (nname c nn) savings)))
    plans
