(** Structured static diagnostics.

    Every finding of the lint layer is a [t]: a registry code with a
    stable string id, a severity, the offending element/nodes/deck
    line, a message, and a fix hint.  The registry ids ([AWE-Exxx],
    [AWE-Wxxx], [AWE-Ixxx]) are an output contract — tests and CI
    gates key on them — so codes are appended, never renumbered.
    docs/LINT.md maps each code to the paper section it guards. *)

type severity = Error | Warning | Info

type code =
  | Nonpositive_value  (** R/C/L value <= 0 or non-finite *)
  | Shorted_source  (** V source with both terminals on one node *)
  | Shorted_element  (** R/C/L/I self-loop: stamps nothing *)
  | Dangling_node  (** dead-end resistor node, carries no current *)
  | Float_group
      (** DC-floating group (capacitor cutset) resolved by charge
          conservation — paper Section 3.1 *)
  | Float_no_cap
      (** DC-floating group with no bridging capacitance: singular even
          after charge augmentation *)
  | Isrc_cutset  (** current source drives a floating group *)
  | Ind_loop  (** inductor loop: repeated pole at s = 0 *)
  | Vsrc_loop  (** zero-resistance V/L loop *)
  | Structural_rank
      (** MNA pattern admits no perfect matching: LU must fail *)
  | Scale_spread
      (** extreme node time-constant spread (eq. 47 conditioning) *)
  | Unknown_net
  | Undriven_net
  | Sink_unattached
  | Sink_unreachable
  | Design_cycle
  | Constraint_target
      (** a timing constraint names an unknown or undriven net *)
  | Unconstrained_endpoint
      (** a primary output with no required time and no design clock *)
  | Dominated_constraint
      (** a constraint dominated by a tighter downstream requirement *)
  | Constraint_unreachable
      (** nets from which no timing endpoint is reachable *)
  | Structural_spread
      (** eq. 47 conditioning risk predicted from structural Elmore
          bounds, without factoring *)
  | Underdamped_net
      (** an LC tank with a near-zero-resistance damping path:
          pole-instability risk for low-order fits *)
  | Order_hotspot
      (** time constants in many distinct decades: predicted order
          escalation of the adaptive fit *)
  | Series_chain  (** collapsible series RC chain (reduction candidate) *)
  | Star_reduce  (** mergeable single-resistor RC legs on one hub *)
  | Parallel_merge  (** parallel same-kind elements between one pair *)

val id : code -> string
(** Stable registry id, e.g. ["AWE-E007"]. *)

val default_severity : code -> severity

val doc : code -> string
(** One-line registry description. *)

val all_codes : code list

type t = {
  code : code;
  severity : severity;
  element : string option;
  nodes : string list;
  line : int option;
  message : string;
  hint : string option;
}

val make :
  ?element:string ->
  ?nodes:string list ->
  ?line:int ->
  ?hint:string ->
  ?severity:severity ->
  code ->
  string ->
  t
(** [severity] defaults to the registry's default for the code. *)

val is_error : t -> bool

val effective_severity : strict:bool -> t -> severity
(** [strict] promotes warnings to errors. *)

val severity_string : severity -> string

val pp : Format.formatter -> t -> unit

val pp_list : Format.formatter -> t list -> unit

val json_escape : string -> string
(** JSON string-body escaping, shared with the SARIF writer. *)

val to_json : t -> string

val list_to_json : ?file:string -> t list -> string
(** A [{"file": ..., "diagnostics": [...]}] object. *)
