(* SARIF 2.1.0 output: one run, the full registry as the tool's rule
   table, one result per diagnostic.  Hand-rolled JSON on top of
   Diagnostic.json_escape-style quoting (the toolchain has no JSON
   dependency), emitting exactly the subset the schema requires:
   version + runs[].tool.driver{name,rules} + results[] with ruleId,
   level, message.text and a physical location.  Each result carries
   the Baseline fingerprint under partialFingerprints, so SARIF
   consumers and the --baseline flow agree on finding identity. *)

module D = Diagnostic

let schema_uri = "https://json.schemastore.org/sarif-2.1.0.json"

let tool_name = "awesim-lint"

let tool_version = "2.0.0"

let level_of = function
  | D.Error -> "error"
  | D.Warning -> "warning"
  | D.Info -> "note"

let q s = "\"" ^ D.json_escape s ^ "\""

let rules_json () =
  D.all_codes
  |> List.map (fun code ->
         Printf.sprintf
           "{\"id\": %s, \"shortDescription\": {\"text\": %s}, \
            \"defaultConfiguration\": {\"level\": %s}}"
           (q (D.id code))
           (q (D.doc code))
           (q (level_of (D.default_severity code))))
  |> String.concat ", "

let rule_index =
  (* registry order is stable, so indices are part of the contract *)
  let tbl = Hashtbl.create 32 in
  List.iteri (fun i code -> Hashtbl.replace tbl code i) D.all_codes;
  fun code -> Hashtbl.find tbl code

let result_json ~file (d : D.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"ruleId\": %s, \"ruleIndex\": %d, \"level\": %s, \
        \"message\": {\"text\": %s}"
       (q (D.id d.code))
       (rule_index d.code)
       (q (level_of d.severity))
       (q d.message));
  let region =
    match d.line with
    | Some ln when ln >= 1 ->
      Printf.sprintf ", \"region\": {\"startLine\": %d}" ln
    | _ -> ""
  in
  Buffer.add_string buf
    (Printf.sprintf
       ", \"locations\": [{\"physicalLocation\": {\"artifactLocation\": \
        {\"uri\": %s}%s}}]"
       (q file) region);
  Buffer.add_string buf
    (Printf.sprintf ", \"partialFingerprints\": {\"awesimLint/v1\": %s}"
       (q (Baseline.fingerprint ~file d)));
  (* element/nodes ride in the property bag for downstream tooling *)
  let props = Buffer.create 64 in
  (match d.element with
  | Some e -> Buffer.add_string props (Printf.sprintf "\"element\": %s" (q e))
  | None -> ());
  if d.nodes <> [] then begin
    if Buffer.length props > 0 then Buffer.add_string props ", ";
    Buffer.add_string props
      (Printf.sprintf "\"nodes\": [%s]"
         (String.concat ", " (List.map q d.nodes)))
  end;
  if Buffer.length props > 0 then
    Buffer.add_string buf
      (Printf.sprintf ", \"properties\": {%s}" (Buffer.contents props));
  Buffer.add_char buf '}';
  Buffer.contents buf

let report results =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"$schema\": %s, \"version\": \"2.1.0\", \"runs\": [{\"tool\": \
        {\"driver\": {\"name\": %s, \"version\": %s, \"rules\": [%s]}}, \
        \"results\": ["
       (q schema_uri) (q tool_name) (q tool_version) (rules_json ()));
  let first = ref true in
  List.iter
    (fun (file, ds) ->
      List.iter
        (fun d ->
          if not !first then Buffer.add_string buf ", ";
          first := false;
          Buffer.add_string buf (result_json ~file d))
        ds)
    results;
  Buffer.add_string buf "]}]}";
  Buffer.contents buf
