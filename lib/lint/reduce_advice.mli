(** AWE-I2xx reducibility advisories — the static work-list for the
    planned [Circuit.Reduce] model-order-reduction pass (ROADMAP
    item 3).

    - [AWE-I201] ({!Diagnostic.Series_chain}): maximal series RC
      chain runs (interior nodes with exactly two resistor terminals
      and only grounded capacitance), with estimated node savings.
    - [AWE-I202] ({!Diagnostic.Star_reduce}): two or more
      single-resistor RC legs on one hub node, mergeable into one
      equivalent leg.
    - [AWE-I203] ({!Diagnostic.Parallel_merge}): parallel same-kind
      two-terminal elements between one node pair.

    The detection itself lives in {!Circuit.Reduce.analyze} — the same
    plans this module formats are the ones [Sta.analyze --reduce]
    rewrites, so advisory and rewriter cannot drift.  All findings are
    Info severity; lint always reports against the {e original}
    netlist (reduction happens later, inside the analysis). *)

val check_circuit : Circuit.Netlist.circuit -> Diagnostic.t list
