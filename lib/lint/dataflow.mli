(** A generic forward/backward dataflow fixpoint engine.

    The lint layer's graph analyses — floating-group discovery, sink
    reachability, combinational-cycle readiness, constraint coverage,
    and the structural numerical-health estimates — are all least
    fixpoints of monotone transfer functions over small finite graphs.
    This module is the shared substrate: a graph is plain adjacency
    arrays, a lattice is a [bottom]/[join]/[equal] triple, and
    {!Make.fixpoint} runs a deterministic FIFO worklist to the least
    fixpoint.

    Monotonicity of the transfer function is the caller's obligation;
    with it, termination is guaranteed for finite-height lattices and
    the result is iteration-order independent. *)

type graph = {
  nodes : int;
  succs : int array array;
  preds : int array array;
}

type direction = Forward | Backward

val of_edges : nodes:int -> (int * int) list -> graph
(** Directed graph from an edge list (parallel edges preserved,
    insertion order kept within each adjacency row). *)

val undirected : nodes:int -> (int * int) list -> graph
(** Symmetric graph: every edge appears in both adjacency directions
    ([succs == preds]); self-loops appear once. *)

(** {1 Work accounting}

    A process-wide counter of fixpoint transfer applications plus any
    explicit {!tick}s the passes charge for their linear scans.  The
    [bench lint_scale] near-linearity gate is counter-based so it
    stays meaningful on loaded or single-core runners. *)

val reset_work : unit -> unit

val work : unit -> int

val tick : ?n:int -> unit -> unit

(** {1 The engine} *)

module type LATTICE = sig
  type t

  val bottom : t
  (** Least element; {!Make.solve} uses it implicitly via [init]. *)

  val join : t -> t -> t

  val equal : t -> t -> bool
end

module Make (L : LATTICE) : sig
  val fixpoint :
    ?direction:direction ->
    graph ->
    init:(int -> L.t) ->
    transfer:(int -> get:(int -> L.t) -> L.t) ->
    L.t array
  (** Least fixpoint of [transfer] (which must be monotone in every
      [get] it reads and satisfy [transfer i >= init i]).  [direction]
      names the dependence orientation: [Forward] means a node's value
      depends on its predecessors (so its successors are re-queued
      when it changes); [Backward] the reverse.  The general [get]
      form exists for transfers that are not plain joins — e.g. the
      all-inputs-ready AND of the cycle check. *)

  val solve :
    ?direction:direction ->
    graph ->
    init:(int -> L.t) ->
    edge:(from:int -> into:int -> L.t -> L.t) ->
    L.t array
  (** The common join-over-incoming-edges special case:
      [v(i) = join (init i) (join over incoming edges e of
      edge ~from ~into:(i) v(from))].  [Forward] reads predecessor
      edges, [Backward] successor edges.  [edge] must be monotone
      (e.g. identity for reachability, [fun v -> v +. w] for
      min-plus shortest paths with {!Min_float}). *)
end

(** {1 Stock lattices} *)

module Bool_or : LATTICE with type t = bool
(** Reachability: [false < true], join = or. *)

module Min_int : LATTICE with type t = int
(** Minimum label propagation: bottom = [max_int]. *)

module Min_float : LATTICE with type t = float
(** Min-plus paths: bottom = [infinity]. *)
