(* AWE-W13x constraint coverage: backward dataflow over the net-level
   timing DAG (Sta.Dag — the same graph the analysis engine schedules
   its Kahn waves on).

   Endpoints are the nets carrying a required time: explicit
   constraint cards, plus the clock default on unconstrained primary
   outputs.  Three passes:

   - W131: with no clock card, a primary output without an explicit
     constraint has no required time at all — its whole input cone
     reports no slack.
   - W132: stage delays are non-negative, so an explicit constraint
     with a tighter (or equal) requirement strictly downstream can
     never be the binding endpoint: any arrival meeting the
     downstream card meets this one with margin to spare.  Backward
     min-propagation of (requirement, endpoint) pairs; clock defaults
     count as dominators but are never themselves flagged (a default
     is not a card the designer wrote).
   - W133: a net from which no endpoint is reachable gets no required
     time from the backward pass — a coverage hole, reported once as
     a sorted net list (like the cycle check).  Skipped entirely when
     the design has no endpoints: then W131 is the actionable
     finding, not a per-net flood. *)

module D = Diagnostic

(* backward-min lattice over (requirement, endpoint index); the index
   breaks ties deterministically and names the dominating endpoint *)
module Min_req = struct
  type t = (float * int) option

  let bottom = None

  let join a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some (va, ia), Some (vb, ib) ->
      if va < vb || (va = vb && ia <= ib) then a else b

  let equal (a : t) b = a = b
end

let check_design (d : Sta.design) =
  let acc = ref [] in
  let emit x = acc := x :: !acc in
  let dag = Sta.Dag.of_design d in
  let n = Array.length dag.Sta.Dag.nets in
  let g =
    { Dataflow.nodes = n;
      succs = dag.Sta.Dag.succs;
      preds = dag.Sta.Dag.preds }
  in
  let cons = Sta.constraints d in
  let con_tbl = Hashtbl.create 8 in
  List.iter (fun (net, t) -> Hashtbl.replace con_tbl net t) cons;
  let clock = Sta.clock_period d in
  let pos = Sta.primary_output_nets d in
  let endpoint = Array.make n None in
  List.iter
    (fun (net, t) ->
      match Sta.Dag.index dag net with
      | Some i -> endpoint.(i) <- Some t
      | None -> ())
    cons;
  (match clock with
  | Some p ->
    List.iter
      (fun po ->
        match Sta.Dag.index dag po with
        | Some i when endpoint.(i) = None -> endpoint.(i) <- Some p
        | _ -> ())
      pos
  | None -> ());
  (* W131 — only meaningful without a clock default *)
  if clock = None then
    List.iter
      (fun po ->
        Dataflow.tick ();
        if not (Hashtbl.mem con_tbl po) then
          emit
            (D.make ~nodes:[ po ]
               ~hint:
                 "add a `constraint` card for it, or a design-wide \
                  `clock` card"
               D.Unconstrained_endpoint
               (Printf.sprintf
                  "primary output %s has no required time (no \
                   constraint card and no clock): no slack is reported \
                   for its input cone"
                  po)))
      pos;
  let module M = Dataflow.Make (Min_req) in
  (* best.(i) = tightest requirement at i or any descendant *)
  let best =
    M.solve ~direction:Dataflow.Backward g
      ~init:(fun i ->
        match endpoint.(i) with Some t -> Some (t, i) | None -> None)
      ~edge:(fun ~from:_ ~into:_ v -> v)
  in
  (* W132 — explicit constraints dominated strictly downstream *)
  List.iter
    (fun (net, t) ->
      Dataflow.tick ();
      match Sta.Dag.index dag net with
      | None -> ()
      | Some i ->
        let down =
          Array.fold_left
            (fun acc j -> Min_req.join acc best.(j))
            None
            dag.Sta.Dag.succs.(i)
        in
        (match down with
        | Some (v, j) when v <= t ->
          let by = dag.Sta.Dag.nets.(j) in
          emit
            (D.make ~element:net
               ~nodes:[ net; by ]
               ?line:(Sta.constraint_line d net)
               ~hint:
                 "drop the dominated card, or tighten it below the \
                  downstream requirement"
               D.Dominated_constraint
               (Printf.sprintf
                  "constraint %s <= %.4g s is dominated: every path \
                   through it must already meet %.4g s at %s downstream, \
                   and stage delays are non-negative"
                  net t v by))
        | _ -> ()))
    cons;
  (* W133 — declared nets from which no endpoint is reachable *)
  let module B = Dataflow.Make (Dataflow.Bool_or) in
  if Array.exists (fun e -> e <> None) endpoint then begin
    let covered =
      B.solve ~direction:Dataflow.Backward g
        ~init:(fun i -> endpoint.(i) <> None)
        ~edge:(fun ~from:_ ~into:_ v -> v)
    in
    let uncovered =
      List.filter
        (fun net ->
          Dataflow.tick ();
          match Sta.Dag.index dag net with
          | Some i -> not covered.(i)
          | None -> false)
        (Sta.net_names d)
    in
    if uncovered <> [] then
      emit
        (D.make ~nodes:uncovered
           ?line:(Sta.clock_line d)
           ~hint:
             "constrain a net downstream of them, declare an output, \
              or drop the dead logic"
           D.Constraint_unreachable
           (Printf.sprintf
              "no timing endpoint is reachable from nets {%s}: their \
               slacks go unreported (constraint-coverage hole)"
              (String.concat ", " uncovered)))
  end;
  List.rev !acc
