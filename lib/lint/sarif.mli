(** SARIF 2.1.0 output for lint findings.

    One run per report: the tool driver carries the full diagnostic
    registry as its rule table (stable registry order, so
    [ruleIndex] is a contract), and each diagnostic becomes a
    [result] with [ruleId], [level], [message.text], a physical
    location (file URI + [startLine] when known) and the
    {!Baseline.fingerprint} under [partialFingerprints]. *)

val schema_uri : string

val tool_name : string

val report : (string * Diagnostic.t list) list -> string
(** The complete SARIF log for [(file, diagnostics)] pairs, as a
    compact JSON string. *)
