type severity = Error | Warning | Info

type code =
  (* circuit-level *)
  | Nonpositive_value
  | Shorted_source
  | Shorted_element
  | Dangling_node
  | Float_group
  | Float_no_cap
  | Isrc_cutset
  | Ind_loop
  | Vsrc_loop
  | Structural_rank
  | Scale_spread
  (* design-level (.sta) *)
  | Unknown_net
  | Undriven_net
  | Sink_unattached
  | Sink_unreachable
  | Design_cycle
  | Constraint_target
  (* constraint coverage (W13x, backward dataflow over the timing DAG) *)
  | Unconstrained_endpoint
  | Dominated_constraint
  | Constraint_unreachable
  (* numerical health (W2xx, structural estimates — no factorization) *)
  | Structural_spread
  | Underdamped_net
  | Order_hotspot
  (* reducibility advisories (I2xx, the Circuit.Reduce work-list) *)
  | Series_chain
  | Star_reduce
  | Parallel_merge

(* The stable registry: id strings are part of the tool's output
   contract (tests, CI gates, downstream JSON consumers key on them) —
   append new codes, never renumber. *)
let registry =
  [ ( Nonpositive_value,
      "AWE-E001",
      Error,
      "an R, C or L element has a non-positive or non-finite value" );
    ( Shorted_source,
      "AWE-E002",
      Error,
      "a voltage source has both terminals on one node: its branch \
       equation is structurally empty" );
    ( Float_no_cap,
      "AWE-E003",
      Error,
      "a DC-floating node group carries no bridging capacitance, so no \
       charge equation determines its potential" );
    ( Isrc_cutset,
      "AWE-E004",
      Error,
      "a current source drives a DC-floating node group (a cutset of \
       current sources/capacitors): its charge grows without bound" );
    ( Ind_loop,
      "AWE-E005",
      Error,
      "a loop of inductors: the DC circulating current is undetermined \
       (repeated pole at s = 0)" );
    ( Vsrc_loop,
      "AWE-E006",
      Error,
      "a zero-resistance loop through voltage sources (and inductors): \
       the loop current is undetermined" );
    ( Structural_rank,
      "AWE-E007",
      Error,
      "the assembled MNA pattern has no perfect row/column matching: LU \
       factorization fails for every choice of element values" );
    ( Unknown_net,
      "AWE-E101",
      Error,
      "a gate references a net with no wire model" );
    ( Undriven_net,
      "AWE-E102",
      Error,
      "a net is neither a gate output nor a primary input" );
    ( Sink_unattached,
      "AWE-E103",
      Error,
      "no wire segment ends at a sink instance's attachment node" );
    ( Sink_unreachable,
      "AWE-E104",
      Error,
      "a sink's attachment node is not connected to the driver through \
       the net's wire segments" );
    ( Design_cycle,
      "AWE-E105",
      Error,
      "the gate/net graph has a combinational cycle" );
    ( Constraint_target,
      "AWE-E106",
      Error,
      "a timing constraint names a net that is unknown or undriven: the \
       required time can never bind an arrival" );
    ( Shorted_element,
      "AWE-W001",
      Warning,
      "an element has both terminals on one node and stamps nothing" );
    ( Dangling_node,
      "AWE-W002",
      Warning,
      "a node is reached by exactly one resistor terminal and carries \
       no current" );
    ( Scale_spread,
      "AWE-W003",
      Warning,
      "node time constants spread over so many decades that the moment \
       matrix may be numerically rank-deficient despite eq. 47 scaling" );
    ( Float_group,
      "AWE-I001",
      Info,
      "a DC-floating node group (capacitor cutset) resolved by charge \
       conservation; its response has a pole at s = 0" );
    ( Unconstrained_endpoint,
      "AWE-W131",
      Warning,
      "a primary output has no required time (no constraint card and no \
       design clock): its cone reports no slack" );
    ( Dominated_constraint,
      "AWE-W132",
      Warning,
      "a constraint is dominated by a tighter (or equal) requirement \
       strictly downstream: with non-negative stage delays it can never \
       be the binding endpoint" );
    ( Constraint_unreachable,
      "AWE-W133",
      Warning,
      "nets from which no timing endpoint is reachable: their slacks go \
       unreported (a constraint-coverage hole)" );
    ( Structural_spread,
      "AWE-W201",
      Warning,
      "structural Elmore-bound node time constants (sum C / sum 1/R per \
       node) spread over so many decades that eq. 47 scaling cannot \
       condition the moment matrix — predicted without factoring" );
    ( Underdamped_net,
      "AWE-W202",
      Warning,
      "an LC tank sees almost no series resistance on its damping path: \
       pole quality factor is high and low-order AWE fits risk unstable \
       (right-half-plane) pole estimates" );
    ( Order_hotspot,
      "AWE-W203",
      Warning,
      "structural time constants cluster in many distinct decades: the \
       adaptive order estimator will escalate q toward one order per \
       cluster (an order-escalation hotspot)" );
    ( Series_chain,
      "AWE-I201",
      Info,
      "a series RC chain whose interior nodes are collapsible into a \
       moment-preserving 2-port equivalent (model-order-reduction \
       candidate)" );
    ( Star_reduce,
      "AWE-I202",
      Info,
      "several single-resistor RC legs hang off one hub node and can \
       merge into one equivalent leg (model-order-reduction candidate)" );
    ( Parallel_merge,
      "AWE-I203",
      Info,
      "parallel same-kind two-terminal elements between one node pair \
       collapse into a single equivalent element" ) ]

let id code =
  let rec go = function
    | (c, id, _, _) :: rest -> if c = code then id else go rest
    | [] -> assert false
  in
  go registry

let default_severity code =
  let rec go = function
    | (c, _, sev, _) :: rest -> if c = code then sev else go rest
    | [] -> assert false
  in
  go registry

let doc code =
  let rec go = function
    | (c, _, _, d) :: rest -> if c = code then d else go rest
    | [] -> assert false
  in
  go registry

let all_codes = List.map (fun (c, _, _, _) -> c) registry

type t = {
  code : code;
  severity : severity;
  element : string option;  (** offending element, gate or net name *)
  nodes : string list;  (** involved node names *)
  line : int option;  (** deck line when the source is a parsed deck *)
  message : string;
  hint : string option;  (** how to fix the deck *)
}

let make ?element ?(nodes = []) ?line ?hint ?severity code message =
  { code;
    severity =
      (match severity with Some s -> s | None -> default_severity code);
    element;
    nodes;
    line;
    message;
    hint }

let is_error d = d.severity = Error

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* [strict] promotes warnings to errors, the CI gate's mode *)
let effective_severity ~strict d =
  match d.severity with
  | Warning when strict -> Error
  | s -> s

let pp ppf d =
  (match d.line with
  | Some ln -> Format.fprintf ppf "line %d: " ln
  | None -> ());
  Format.fprintf ppf "%s[%s]: %s" (severity_string d.severity) (id d.code)
    d.message;
  (match d.nodes with
  | [] -> ()
  | ns -> Format.fprintf ppf " (nodes: %s)" (String.concat ", " ns));
  match d.hint with
  | Some h -> Format.fprintf ppf "@,  hint: %s" h
  | None -> ()

let pp_list ppf ds =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i d ->
      if i > 0 then Format.fprintf ppf "@,";
      pp ppf d)
    ds;
  Format.fprintf ppf "@]"

(* --- JSON ---------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let buf = Buffer.create 128 in
  let field ?(sep = true) k v =
    if sep then Buffer.add_string buf ", ";
    Buffer.add_string buf (Printf.sprintf "%S: %s" k v)
  in
  Buffer.add_char buf '{';
  field ~sep:false "code" (Printf.sprintf "%S" (id d.code));
  field "severity" (Printf.sprintf "%S" (severity_string d.severity));
  (match d.element with
  | Some e -> field "element" (Printf.sprintf "\"%s\"" (json_escape e))
  | None -> ());
  if d.nodes <> [] then
    field "nodes"
      (Printf.sprintf "[%s]"
         (String.concat ", "
            (List.map (fun n -> Printf.sprintf "\"%s\"" (json_escape n))
               d.nodes)));
  (match d.line with
  | Some ln -> field "line" (string_of_int ln)
  | None -> ());
  field "message" (Printf.sprintf "\"%s\"" (json_escape d.message));
  (match d.hint with
  | Some h -> field "hint" (Printf.sprintf "\"%s\"" (json_escape h))
  | None -> ());
  Buffer.add_char buf '}';
  Buffer.contents buf

let list_to_json ?file ds =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{";
  (match file with
  | Some f -> Buffer.add_string buf (Printf.sprintf "\"file\": \"%s\", " (json_escape f))
  | None -> ());
  Buffer.add_string buf "\"diagnostics\": [";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (to_json d))
    ds;
  Buffer.add_string buf "]}";
  Buffer.contents buf
