(* AWE-W2xx numerical health: predict, from structure alone, where the
   numerics of the paper's moment pipeline will hurt.

   None of these checks assemble or factor anything.  The node time
   constant is bounded structurally as tau_i ~ (sum C at i) / (sum 1/R
   at i) — the diagonal Elmore bound — and for a .sta net as
   (driver resistance + min-plus wire resistance from the drv pin) *
   (local capacitance), which is the classic Elmore path bound.  Three
   families:

   - W201: the structural version of the post-assembly eq. 47
     conditioning warning (W003): when the bound already spreads past
     [Lint.spread_limit] decades, no single frequency scale can keep
     the moment matrix well-conditioned.  On every shipped deck W201
     agrees with W003 — the bound is loose in absolute value but tight
     in decades (a regression test pins the agreement).
   - W202: an LC tank whose min-plus damping path from the nearest
     zero-impedance reference (ground / an ideal V source) carries
     almost no series resistance has quality factor Q ~ sqrt(L/C)/R;
     past [q_limit] the dominant poles sit close to the imaginary axis
     and low-order fits are prone to unstable (RHP) pole estimates —
     the failure mode the paper's Section 5 stabilization discusses.
   - W203: the adaptive order estimator needs roughly one matched pole
     per distinct time-constant cluster; when structural taus occupy
     [escalation_limit]+ distinct decades, predict order escalation
     (the per-net moment budget grows with 2q). *)

module D = Diagnostic

let q_limit = 5.
(* fig25 / coupled_lines — intentionally ringing shipped decks — sit
   near Q ~ 2; a tank only trips this with essentially no damping *)

let escalation_limit = 6
(* distinct decades of structural tau before we predict escalation;
   shipped decks cluster within <= 5 decades *)

(* --- shared helpers ------------------------------------------------ *)

(* min/max tau with a representative node each, as check_mna tracks *)
let extremes taus =
  let ext = ref None in
  List.iter
    (fun (node, tau) ->
      ext :=
        Some
          (match !ext with
          | None -> ((tau, node), (tau, node))
          | Some ((tmin, nmin), (tmax, nmax)) ->
            ( (if tau < tmin then (tau, node) else (tmin, nmin)),
              if tau > tmax then (tau, node) else (tmax, nmax) )))
    taus;
  !ext

let decade_buckets taus =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (_, tau) ->
      if tau > 0. && Float.is_finite tau then
        Hashtbl.replace seen (int_of_float (Float.floor (Float.log10 tau))) ())
    taus;
  Hashtbl.length seen

(* --- circuit-level passes ------------------------------------------ *)

let circuit_taus (c : Circuit.Netlist.circuit) =
  let g = Circuit.Flowgraph.node_conductance c
  and cap = Circuit.Flowgraph.node_capacitance c in
  let acc = ref [] in
  for n = c.Circuit.Netlist.node_count - 1 downto 1 do
    Dataflow.tick ();
    if g.(n) > 0. && cap.(n) > 0. then acc := (n, cap.(n) /. g.(n)) :: !acc
  done;
  !acc

let check_spread ~emit ~spread_limit (c : Circuit.Netlist.circuit) taus =
  let nname n = c.Circuit.Netlist.node_names.(n) in
  match extremes taus with
  | Some ((tmin, nmin), (tmax, nmax))
    when nmin <> nmax && tmax > spread_limit *. tmin ->
    emit
      (D.make
         ~nodes:[ nname nmin; nname nmax ]
         ~hint:
           "rescale the extreme elements or split the analysis per time \
            scale"
         D.Structural_spread
         (Printf.sprintf
            "structural node time constants span %.1f decades (Elmore \
             bound: %.3g s at node %s, %.3g s at node %s): eq. 47 \
             frequency scaling cannot condition the moment matrix"
            (Float.log10 (tmax /. tmin))
            tmin (nname nmin) tmax (nname nmax)))
  | _ -> ()

let check_escalation ~emit (c : Circuit.Netlist.circuit) taus =
  let nname n = c.Circuit.Netlist.node_names.(n) in
  let buckets = decade_buckets taus in
  if buckets >= escalation_limit then
    match extremes taus with
    | Some ((tmin, nmin), (tmax, nmax)) ->
      emit
        (D.make
           ~nodes:[ nname nmin; nname nmax ]
           ~hint:
             "expect order escalation; consider splitting the deck per \
              time scale or reducing the slow subtree first"
           D.Order_hotspot
           (Printf.sprintf
              "structural time constants occupy %d distinct decades \
               (%.3g s at node %s to %.3g s at node %s): the adaptive \
               fit will escalate toward q ~ %d to resolve every cluster"
              buckets tmin (nname nmin) tmax (nname nmax) buckets))
    | None -> ()

let check_underdamped ~emit ~line (c : Circuit.Netlist.circuit) =
  let nodes = c.Circuit.Netlist.node_count in
  let nname n = c.Circuit.Netlist.node_names.(n) in
  let redges = Circuit.Flowgraph.resistor_edges c in
  let zedges = Circuit.Flowgraph.low_impedance_pairs c in
  let pairs =
    List.map (fun (a, b, _) -> (a, b)) redges @ zedges
  in
  let g = Dataflow.undirected ~nodes pairs in
  (* min-plus series resistance from the nearest zero-impedance
     reference; resistor edges carry their ohms, source/inductor edges
     carry zero.  Weights live in a side table keyed by endpoints —
     parallel resistors take the smaller. *)
  let w = Hashtbl.create 16 in
  let key a b = (min a b, max a b) in
  List.iter
    (fun (a, b, r) ->
      let k = key a b in
      match Hashtbl.find_opt w k with
      | Some r' when r' <= r -> ()
      | _ -> Hashtbl.replace w k r)
    redges;
  List.iter (fun (a, b) -> Hashtbl.replace w (key a b) 0.) zedges;
  let seeds = Array.make nodes false in
  List.iter (fun n -> seeds.(n) <- true) (Circuit.Flowgraph.source_nodes c);
  let module M = Dataflow.Make (Dataflow.Min_float) in
  let dist =
    M.solve g
      ~init:(fun n -> if seeds.(n) then 0. else infinity)
      ~edge:(fun ~from ~into v ->
        v +. (try Hashtbl.find w (key from into) with Not_found -> 0.))
  in
  let cap = Circuit.Flowgraph.node_capacitance c in
  Array.iteri
    (fun idx e ->
      Dataflow.tick ();
      match e with
      | Circuit.Element.Inductor { name; l; np; nn; _ } when np <> nn ->
        let c_local = Float.max cap.(np) cap.(nn) in
        let r_damp = Float.min dist.(np) dist.(nn) in
        if c_local > 0. && Float.is_finite r_damp && l > 0. then begin
          let char_z = sqrt (l /. c_local) in
          let q = if r_damp <= 0. then infinity else char_z /. r_damp in
          if q > q_limit then
            emit
              (D.make ?line:(line idx) ~element:name
                 ~nodes:[ nname np; nname nn ]
                 ~hint:
                   "add series damping resistance, or expect the solver \
                    to escalate order / shift the expansion point"
                 D.Underdamped_net
                 (Printf.sprintf
                    "LC tank at inductor %s sees only %.3g ohm of series \
                     damping (Q ~ %s): dominant poles hug the imaginary \
                     axis and low-order AWE fits risk unstable pole \
                     estimates"
                    name r_damp
                    (if Float.is_finite q then Printf.sprintf "%.3g" q
                     else "infinite")))
        end
      | _ -> ())
    c.Circuit.Netlist.elements

let check_circuit (c : Circuit.Netlist.circuit) ~spread_limit =
  let acc = ref [] in
  let emit d = acc := d :: !acc in
  let line idx = Circuit.Netlist.element_line c idx in
  let taus = circuit_taus c in
  check_spread ~emit ~spread_limit c taus;
  check_underdamped ~emit ~line c;
  check_escalation ~emit c taus;
  List.rev !acc

(* --- design-level passes (.sta) ------------------------------------ *)

(* Per net: Elmore path bound tau(node) = (R_drive + min-plus wire
   resistance drv->node) * (grounded wire cap at node + attached sink
   pin caps).  The same W201/W203 verdicts as the circuit side, scoped
   to one net so the offender is named. *)

let pi_drive_res = 1e-3
(* an ideal primary input drives through (almost) zero ohms, matching
   the analysis engine's ideal-drive convention *)

let check_design (d : Sta.design) ~spread_limit =
  let acc = ref [] in
  let emit x = acc := x :: !acc in
  let cells = Hashtbl.create 32 in
  List.iter
    (fun (inst, cl) -> Hashtbl.replace cells inst cl)
    (Sta.gate_cells d);
  let drivers = Hashtbl.create 32 in
  List.iter
    (fun g ->
      if not (Hashtbl.mem drivers g.Sta.gv_output) then
        Hashtbl.replace drivers g.Sta.gv_output g.Sta.gv_inst)
    (Sta.gate_views d);
  let pis = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace pis n ()) (Sta.primary_input_nets d);
  (* net -> (pin-node name -> attached input capacitance): grouped per
     net up front so the per-net pass below stays linear overall *)
  let sink_caps = Hashtbl.create 32 in
  List.iter
    (fun g ->
      match Hashtbl.find_opt cells g.Sta.gv_inst with
      | None -> ()
      | Some cl ->
        List.iter
          (fun n ->
            Dataflow.tick ();
            let pins =
              match Hashtbl.find_opt sink_caps n with
              | Some pins -> pins
              | None ->
                let pins = Hashtbl.create 4 in
                Hashtbl.replace sink_caps n pins;
                pins
            in
            let prev =
              Option.value
                (Hashtbl.find_opt pins g.Sta.gv_inst)
                ~default:0.
            in
            Hashtbl.replace pins g.Sta.gv_inst (prev +. cl.Sta.input_cap))
          g.Sta.gv_inputs)
    (Sta.gate_views d);
  let module M = Dataflow.Make (Dataflow.Min_float) in
  List.iter
    (fun net ->
      Dataflow.tick ();
      match Sta.net_segments d net with
      | None -> ()
      | Some segs ->
        let r_drive =
          match Hashtbl.find_opt drivers net with
          | Some inst -> (
            match Hashtbl.find_opt cells inst with
            | Some cl -> Some cl.Sta.drive_res
            | None -> None)
          | None -> if Hashtbl.mem pis net then Some pi_drive_res else None
        in
        (match r_drive with
        | None -> () (* undriven: E102's business *)
        | Some r0 ->
          let ids = Hashtbl.create 16 in
          let names = ref [] in
          let intern name =
            match Hashtbl.find_opt ids name with
            | Some i -> i
            | None ->
              let i = Hashtbl.length ids in
              Hashtbl.replace ids name i;
              names := name :: !names;
              i
          in
          let drv = intern "drv" in
          let edges =
            List.map
              (fun s ->
                (intern s.Sta.seg_from, intern s.Sta.seg_to, s.Sta.res))
              segs
          in
          let node_names =
            Array.of_list (List.rev !names)
          in
          let n = Hashtbl.length ids in
          let g =
            Dataflow.undirected ~nodes:n
              (List.map (fun (a, b, _) -> (a, b)) edges)
          in
          let w = Hashtbl.create 16 in
          let key a b = (min a b, max a b) in
          List.iter
            (fun (a, b, r) ->
              let k = key a b in
              match Hashtbl.find_opt w k with
              | Some r' when r' <= r -> ()
              | _ -> Hashtbl.replace w k r)
            edges;
          let dist =
            M.solve g
              ~init:(fun i -> if i = drv then r0 else infinity)
              ~edge:(fun ~from ~into v ->
                v
                +.
                try Hashtbl.find w (key from into) with Not_found -> 0.)
          in
          let cap = Array.make n 0. in
          List.iter
            (fun s ->
              let i = Hashtbl.find ids s.Sta.seg_to in
              cap.(i) <- cap.(i) +. s.Sta.cap)
            segs;
          (match Hashtbl.find_opt sink_caps net with
          | None -> ()
          | Some pins ->
            Hashtbl.iter
              (fun pin c ->
                match Hashtbl.find_opt ids pin with
                | Some i -> cap.(i) <- cap.(i) +. c
                | None -> ())
              pins);
          let taus = ref [] in
          for i = n - 1 downto 0 do
            if cap.(i) > 0. && Float.is_finite dist.(i) then
              taus := (i, dist.(i) *. cap.(i)) :: !taus
          done;
          let taus = !taus in
          (match extremes taus with
          | Some ((tmin, imin), (tmax, imax))
            when imin <> imax && tmax > spread_limit *. tmin ->
            emit
              (D.make ~element:net
                 ~nodes:[ node_names.(imin); node_names.(imax) ]
                 ~hint:
                   "rescale the extreme segments or split the net per \
                    time scale"
                 D.Structural_spread
                 (Printf.sprintf
                    "net %s: Elmore path bounds span %.1f decades \
                     (%.3g s at %s, %.3g s at %s): eq. 47 scaling \
                     cannot condition this net's moment matrix"
                    net
                    (Float.log10 (tmax /. tmin))
                    tmin node_names.(imin) tmax node_names.(imax)))
          | _ -> ());
          let buckets = decade_buckets taus in
          if buckets >= escalation_limit then
            match extremes taus with
            | Some ((tmin, imin), (tmax, imax)) ->
              emit
                (D.make ~element:net
                   ~nodes:[ node_names.(imin); node_names.(imax) ]
                   ~hint:
                     "expect order escalation on this net; consider \
                      splitting or reducing its slow branch"
                   D.Order_hotspot
                   (Printf.sprintf
                      "net %s: Elmore path bounds occupy %d distinct \
                       decades (%.3g s at %s to %.3g s at %s): the \
                       adaptive fit will escalate toward q ~ %d"
                      net buckets tmin node_names.(imin) tmax
                      node_names.(imax) buckets))
            | None -> ()))
    (Sta.net_names d);
  List.rev !acc
