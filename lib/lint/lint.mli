(** Static circuit lint.

    Predicts, from the parsed deck alone, the failures a solve would
    hit only at factorization time (or never report cleanly at all):
    singular DC systems, degenerate AWE models with poles at s = 0,
    and numerically hopeless moment scalings.  No check here runs a
    factorization or a solve.

    The singularity prediction is two-tiered, because singularity is:

    - {b structural} when the MNA sparsity pattern itself admits no
      perfect row/column matching (a shorted V source, a floating
      group with no bridging capacitance, a control-only node) — the
      structural-rank check ({!Diagnostic.Structural_rank}) proves LU
      failure for {e every} choice of element values; or
    - {b numerical} when the pattern is full structural rank but the
      rows are linearly dependent for every value choice (a loop of
      voltage sources, a loop of inductors) — only the topological
      checks can see these.

    The union of both tiers is what the lint gate relies on: a deck
    with no lint errors must not raise [Sparse.Slu.Singular] or
    [Circuit.Mna.Singular_dc] when analyzed.

    Lint 2.0 layers three advisory pass families on the shared
    {!Dataflow} fixpoint engine: {!Health} (AWE-W2xx numerical-health
    predictions from structural Elmore bounds), {!Reduce_advice}
    (AWE-I2xx network-reduction candidates) and {!Coverage}
    (AWE-W13x timing-constraint coverage). *)

module Diagnostic = Diagnostic
(** Re-exported so clients of the library's main module can write
    [Lint.Diagnostic.pp_list]. *)

module Dataflow = Dataflow
(** The shared forward/backward fixpoint engine the graph-walking
    checks run on (plus its work counter, which [bench lint_scale]
    gates on). *)

module Health = Health

module Reduce_advice = Reduce_advice

module Coverage = Coverage

module Sarif = Sarif

module Baseline = Baseline

val check_circuit_core : Circuit.Netlist.circuit -> Diagnostic.t list
(** The pre-Lint-2.0 circuit check set, in deterministic order:
    element values, self-loops, DC-floating groups (with the paper's
    Section 3.1 charge-conservation classification), inductor and
    V-source loops, dangling nodes, structural rank of the augmented
    MNA pattern, and the eq. 47 time-constant-spread heuristic.
    Diagnostic-identical to the original traversal implementations (a
    qcheck differential property in test/lint pins this).  Never
    raises on a frozen circuit. *)

val check_circuit : Circuit.Netlist.circuit -> Diagnostic.t list
(** {!check_circuit_core} followed by the {!Health} (AWE-W2xx) and
    {!Reduce_advice} (AWE-I2xx) advisory passes. *)

val check_design_core : Sta.design -> Diagnostic.t list
(** The pre-Lint-2.0 design check set for [.sta] timing designs:
    unknown nets, undriven nets, sinks with no attachment segment,
    sinks not connected to the driver pin, dead constraint targets,
    and combinational cycles. *)

val check_design : Sta.design -> Diagnostic.t list
(** {!check_design_core} followed by the {!Health} per-net Elmore
    passes (AWE-W2xx) and the {!Coverage} constraint-coverage pass
    (AWE-W13x). *)

val dedup : Diagnostic.t list -> Diagnostic.t list
(** Collapse duplicates per finding identity
    (code, element, nodes, message), keeping the first occurrence. *)

val sort_diagnostics : Diagnostic.t list -> Diagnostic.t list
(** Stable sort by (line, code id, element, nodes) — the order the
    CLI's text and [--json] output promise. *)

val normalize : Diagnostic.t list -> Diagnostic.t list
(** [sort_diagnostics (dedup ds)]: what the CLI and the
    analyze/timing lint gates print.  The raw [check_*] results stay
    in traversal order for the differential identity tests. *)

val diagnostic_of_parse_error : line:int -> string -> Diagnostic.t option
(** Classify a [Circuit.Parser.Parse_error] message: element-value
    complaints (zero/negative/non-finite R, C, L, out-of-range
    coupling) become a {!Diagnostic.Nonpositive_value} diagnostic;
    anything else ([None]) is a genuine syntax error the caller should
    report as such. *)

val errors : Diagnostic.t list -> Diagnostic.t list

val gate : strict:bool -> Diagnostic.t list -> (unit, Diagnostic.t list) result
(** The go/no-go decision: [Error ds] lists the diagnostics whose
    {!Diagnostic.effective_severity} is [Error] ([strict] promotes
    warnings). *)
