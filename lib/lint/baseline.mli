(** Baseline suppression files: gate CI on {e new} findings only.

    A baseline is a plain-text set of finding fingerprints (sorted,
    unique, ['#'] comments allowed, one header line).  Fingerprints
    key on (code, file, element, nodes) and deliberately exclude line
    numbers and message text, so unrelated edits to a deck don't
    resurrect accepted findings. *)

val fingerprint : file:string -> Diagnostic.t -> string

type t

val empty : t

val load : string -> t
(** Read a baseline file.  Raises [Sys_error] when unreadable. *)

val save : string -> (string * Diagnostic.t list) list -> unit
(** Write the fingerprints of every [(file, diagnostics)] pair,
    sorted and deduplicated. *)

val mem : t -> string -> bool

val filter : t -> file:string -> Diagnostic.t list -> Diagnostic.t list
(** The diagnostics {e not} suppressed by the baseline. *)
