(** AWE-W2xx numerical-health passes: structural predictions of where
    the moment pipeline's numerics will hurt, made {e without}
    assembling or factoring anything.

    - [AWE-W201] ({!Diagnostic.Structural_spread}): the structural
      version of the post-assembly eq. 47 conditioning warning — node
      time constants bounded as (sum C)/(sum 1/R) per node (circuit
      decks) or as Elmore path bounds per net (.sta designs).
    - [AWE-W202] ({!Diagnostic.Underdamped_net}): LC tanks whose
      min-plus damping path from the nearest zero-impedance reference
      carries almost no series resistance (Q beyond {!q_limit}) —
      pole-instability risk for low-order fits.
    - [AWE-W203] ({!Diagnostic.Order_hotspot}): structural taus
      clustering in {!escalation_limit}+ distinct decades — predicted
      order escalation of the adaptive fit.

    Both entry points run on the {!Dataflow} engine (reachability and
    min-plus lattices) and charge the shared work counter. *)

val q_limit : float
(** Quality-factor threshold for [AWE-W202]; shipped ringing decks sit
    near Q ~ 2, so only near-undamped tanks trip it. *)

val escalation_limit : int
(** Distinct decades of structural tau before [AWE-W203] predicts
    order escalation. *)

val check_circuit :
  Circuit.Netlist.circuit -> spread_limit:float -> Diagnostic.t list
(** W201/W202/W203 over a parsed deck.  [spread_limit] is
    [Lint.spread_limit], shared with the post-assembly W003 check so
    the two warnings agree on every deck. *)

val check_design : Sta.design -> spread_limit:float -> Diagnostic.t list
(** Per-net W201/W203 over a timing design, using Elmore path bounds
    (driver resistance + min-plus wire resistance, times local
    capacitance including sink pin caps). *)
