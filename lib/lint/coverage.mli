(** AWE-W13x constraint-coverage passes: backward dataflow over the
    exported net-level timing DAG ({!Sta.Dag}).

    - [AWE-W131] ({!Diagnostic.Unconstrained_endpoint}): primary
      outputs with no required time when the design has no [clock]
      card.
    - [AWE-W132] ({!Diagnostic.Dominated_constraint}): explicit
      constraints dominated by a tighter-or-equal requirement strictly
      downstream (stage delays are non-negative, so the card can
      never bind); the diagnostic names the dominating endpoint and
      carries the constraint card's source line.
    - [AWE-W133] ({!Diagnostic.Constraint_unreachable}): declared
      nets from which no endpoint is reachable, reported once as a
      sorted list; skipped when the design has no endpoints at all
      (W131 is then the actionable finding).

    Safe on cyclic designs: the fixpoints converge regardless, so
    coverage can be reported alongside the cycle diagnostic. *)

val check_design : Sta.design -> Diagnostic.t list
