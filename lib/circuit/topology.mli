(** Structural analysis of circuits.

    The paper's method hierarchy is topological: RC trees admit the
    O(n) Elmore tree walk; grounded resistors and resistor loops force
    an implicit steady-state solve; floating capacitors create floating
    nodes whose steady state needs charge conservation (paper,
    Sections II, 3.1, IV).  This module answers those structural
    questions. *)

type properties = {
  is_rc_tree : bool;
      (** only R, C and driving V sources; every capacitor grounded; no
          resistor to ground; resistor/source graph is a spanning tree
          (no loops) — the class of [7] *)
  has_floating_caps : bool;  (** some capacitor with both terminals off ground *)
  has_grounded_resistors : bool;
  has_resistor_loops : bool;
      (** a cycle in the conductive graph restricted to R/V elements *)
  has_inductors : bool;
  has_controlled_sources : bool;
  floating_groups : Element.node list list;
      (** DC-floating node groups: connected components of the
          conductive graph that contain no ground reference; their
          steady state requires charge conservation *)
}

val floating_groups : Netlist.circuit -> Element.node list list
(** The DC-floating node groups alone (cheaper than [analyze]). *)

val conductive_edge : Element.t -> (Element.node * Element.node) option
(** The element's terminal pair when it conducts at DC (resistors,
    inductors, V sources, VCVS/CCVS output branches), [None]
    otherwise. *)

val conductive_graph : Netlist.circuit -> Sparse.Graph.t
(** Graph over circuit nodes whose edges are the elements that conduct
    at DC: resistors, inductors, voltage sources and the output branches
    of VCVS/CCVS.  Edge labels are element indices. *)

val analyze : Netlist.circuit -> properties

val spanning_tree :
  Netlist.circuit -> Sparse.Graph.tree_edge option array
(** Spanning forest of the conductive graph rooted at ground — the
    "tree" of the paper's tree/link partition (Section IV): voltage
    sources and resistors become tree branches, capacitors (replaced by
    current sources) are links. *)

val rc_tree_parent :
  Netlist.circuit -> (Element.node * float) option array
(** For an RC tree (caller must have checked [is_rc_tree]): for each
    node, its parent node and the resistance of the connecting branch,
    walking toward the driving source; [None] for ground and source
    nodes.  Raises [Invalid_argument] if the circuit is not an RC
    tree. *)

val pp_properties : Format.formatter -> properties -> unit
