open Linalg

type floating_mode = [ `Charge_rows | `Pin_to_zero | `Reject ]

type t = {
  circuit : Netlist.circuit;
  n : int;
  node_var : int array; (* node id -> unknown index; ground -> -1 *)
  branch_var : int array; (* element idx -> branch unknown or -1 *)
  gm : Matrix.t;
  cm : Matrix.t;
  bm : Matrix.t;
  src_elems : int array; (* source column -> element index *)
  charge_rows : int array; (* replaced KCL row per floating group *)
  charge_coeffs : Vec.t array;
}

let circuit m = m.circuit

let size m = m.n

let node_var m node = m.node_var.(node)

let branch_var m idx =
  let v = m.branch_var.(idx) in
  if v < 0 then None else Some v

let g m = Matrix.copy m.gm

let c m = Matrix.copy m.cm

let b m = Matrix.copy m.bm

let c_csr m = Sparse.Csr.of_dense m.cm

let source_count m = Array.length m.src_elems

let source_element m col = m.src_elems.(col)

let source_waveform m col =
  match m.circuit.Netlist.elements.(m.src_elems.(col)) with
  | Element.Vsource { wave; _ } | Element.Isource { wave; _ } -> wave
  | _ -> assert false

let u_at m t =
  Array.init (source_count m) (fun col ->
      Element.eval (source_waveform m col) t)

let voltage m x node =
  let v = m.node_var.(node) in
  if v < 0 then 0. else x.(v)

let charge_group_count m = Array.length m.charge_rows

let charge_row m i = m.charge_rows.(i)

let charge_coeffs m i = Vec.copy m.charge_coeffs.(i)

let charges_of m x = Array.map (fun q -> Vec.dot q x) m.charge_coeffs

let build ?(floating = `Charge_rows) (ckt : Netlist.circuit) =
  let nnodes = ckt.Netlist.node_count in
  let node_var =
    Array.init nnodes (fun node -> if node = Element.ground then -1 else node - 1)
  in
  let nv = nnodes - 1 in
  (* assign branch-current unknowns *)
  let nelems = Array.length ckt.Netlist.elements in
  let branch_var = Array.make nelems (-1) in
  let next = ref nv in
  Array.iteri
    (fun idx e ->
      match e with
      | Element.Vsource _ | Element.Inductor _ | Element.Vcvs _
      | Element.Ccvs _ ->
        branch_var.(idx) <- !next;
        incr next
      | Element.Resistor _ | Element.Capacitor _ | Element.Isource _
      | Element.Vccs _ | Element.Cccs _ | Element.Mutual _ -> ())
    ckt.Netlist.elements;
  let n = !next in
  let src_elems =
    Array.of_list
      (List.filter_map
         (fun (i, e) ->
           match e with
           | Element.Vsource _ | Element.Isource _ -> Some i
           | _ -> None)
         (Array.to_list ckt.Netlist.elements |> List.mapi (fun i e -> (i, e))))
  in
  let src_col = Array.make nelems (-1) in
  Array.iteri (fun col idx -> src_col.(idx) <- col) src_elems;
  let gm = Matrix.create n n in
  let cm = Matrix.create n n in
  let bm = Matrix.create n (Array.length src_elems) in
  let nvar node = node_var.(node) in
  let stamp mat i j v = if i >= 0 && j >= 0 then Matrix.add_to mat i j v in
  let stamp_b i col v = if i >= 0 then Matrix.add_to bm i col v in
  let branch_of_vsource name =
    let key = String.lowercase_ascii name in
    let found = ref (-1) in
    Array.iteri
      (fun idx e ->
        match e with
        | Element.Vsource { name = n'; _ }
          when String.lowercase_ascii n' = key -> found := branch_var.(idx)
        | _ -> ())
      ckt.Netlist.elements;
    if !found < 0 then
      invalid_arg ("Mna: unknown controlling source " ^ name);
    !found
  in
  Array.iteri
    (fun idx e ->
      match e with
      | Element.Resistor { np; nn; r; _ } ->
        let gcond = 1. /. r in
        let p = nvar np and q = nvar nn in
        stamp gm p p gcond;
        stamp gm q q gcond;
        stamp gm p q (-.gcond);
        stamp gm q p (-.gcond)
      | Element.Capacitor { np; nn; c; _ } ->
        let p = nvar np and q = nvar nn in
        stamp cm p p c;
        stamp cm q q c;
        stamp cm p q (-.c);
        stamp cm q p (-.c)
      | Element.Inductor { np; nn; l; _ } ->
        let ib = branch_var.(idx) in
        let p = nvar np and q = nvar nn in
        (* KCL: current ib leaves np, enters nn *)
        stamp gm p ib 1.;
        stamp gm q ib (-1.);
        (* branch: v_np - v_nn - L di/dt = 0 *)
        stamp gm ib p 1.;
        stamp gm ib q (-1.);
        Matrix.add_to cm ib ib (-.l)
      | Element.Vsource { np; nn; _ } ->
        let ib = branch_var.(idx) in
        let p = nvar np and q = nvar nn in
        stamp gm p ib 1.;
        stamp gm q ib (-1.);
        stamp gm ib p 1.;
        stamp gm ib q (-1.);
        (* branch: v_np - v_nn = u *)
        stamp_b ib src_col.(idx) 1.
      | Element.Isource { np; nn; _ } ->
        (* current u flows np -> nn through the source: KCL at np gets
           +u leaving, moved to the right-hand side *)
        let p = nvar np and q = nvar nn in
        stamp_b p src_col.(idx) (-1.);
        stamp_b q src_col.(idx) 1.
      | Element.Vcvs { np; nn; cp; cn; gain; _ } ->
        let ib = branch_var.(idx) in
        let p = nvar np and q = nvar nn in
        stamp gm p ib 1.;
        stamp gm q ib (-1.);
        stamp gm ib p 1.;
        stamp gm ib q (-1.);
        stamp gm ib (nvar cp) (-.gain);
        stamp gm ib (nvar cn) gain
      | Element.Vccs { np; nn; cp; cn; gm = transconductance; _ } ->
        let p = nvar np and q = nvar nn in
        stamp gm p (nvar cp) transconductance;
        stamp gm p (nvar cn) (-.transconductance);
        stamp gm q (nvar cp) (-.transconductance);
        stamp gm q (nvar cn) transconductance
      | Element.Ccvs { np; nn; vctrl; r; _ } ->
        let ib = branch_var.(idx) in
        let p = nvar np and q = nvar nn in
        stamp gm p ib 1.;
        stamp gm q ib (-1.);
        stamp gm ib p 1.;
        stamp gm ib q (-1.);
        Matrix.add_to gm ib (branch_of_vsource vctrl) (-.r)
      | Element.Cccs { np; nn; vctrl; gain; _ } ->
        let p = nvar np and q = nvar nn in
        let ictrl = branch_of_vsource vctrl in
        stamp gm p ictrl gain;
        stamp gm q ictrl (-.gain)
      | Element.Mutual { l1; l2; k; name } ->
        (* v_1 gains -M di_2/dt and vice versa: off-diagonal entries in
           the energy-storage matrix at the two branch currents *)
        let find_inductor lname =
          let key = String.lowercase_ascii lname in
          let res = ref None in
          Array.iteri
            (fun i e' ->
              match e' with
              | Element.Inductor { name = n'; l; _ }
                when String.lowercase_ascii n' = key ->
                res := Some (branch_var.(i), l)
              | _ -> ())
            ckt.Netlist.elements;
          match !res with
          | Some r -> r
          | None -> invalid_arg ("Mna: unknown coupled inductor in " ^ name)
        in
        let ib1, lv1 = find_inductor l1 in
        let ib2, lv2 = find_inductor l2 in
        let mv = k *. sqrt (lv1 *. lv2) in
        (* inductor branch rows read v_p - v_n - L di/dt - M di_other/dt *)
        Matrix.add_to cm ib1 ib2 (-.mv);
        Matrix.add_to cm ib2 ib1 (-.mv))
    ckt.Netlist.elements;
  (* floating-group treatment *)
  let groups = Topology.floating_groups ckt in
  (match (floating, groups) with
  | `Reject, _ :: _ ->
    invalid_arg "Mna: circuit has floating node groups (no DC path to ground)"
  | _ -> ());
  let charge_rows = ref [] in
  let charge_coeffs = ref [] in
  List.iter
    (fun group ->
      match group with
      | [] -> ()
      | rep :: _ ->
        let row = nvar rep in
        if row < 0 then () (* cannot happen: ground is never floating *)
        else begin
          (* a current source driving a floating group would violate
             charge conservation *)
          List.iter
            (fun node ->
              let v = nvar node in
              if v >= 0 then
                for col = 0 to Array.length src_elems - 1 do
                  (match
                     ckt.Netlist.elements.(src_elems.(col))
                   with
                  | Element.Isource { name; _ }
                    when Matrix.get bm v col <> 0. ->
                    invalid_arg
                      (Printf.sprintf
                         "Mna: current source %s drives the floating node \
                          group at %s"
                         name ckt.Netlist.node_names.(node))
                  | _ -> ())
                done)
            group;
          match floating with
          | `Charge_rows ->
            (* conserved charge = sum of the group's C rows *)
            let coeffs = Vec.create n in
            List.iter
              (fun node ->
                let v = nvar node in
                if v >= 0 then
                  for j = 0 to n - 1 do
                    coeffs.(j) <- coeffs.(j) +. Matrix.get cm v j
                  done)
              group;
            charge_rows := row :: !charge_rows;
            charge_coeffs := coeffs :: !charge_coeffs
          | `Pin_to_zero ->
            let coeffs = Vec.create n in
            coeffs.(row) <- 1.;
            charge_rows := row :: !charge_rows;
            charge_coeffs := coeffs :: !charge_coeffs
          | `Reject -> assert false
        end)
    groups;
  { circuit = ckt;
    n;
    node_var;
    branch_var;
    gm;
    cm;
    bm;
    src_elems;
    charge_rows = Array.of_list (List.rev !charge_rows);
    charge_coeffs = Array.of_list (List.rev !charge_coeffs) }

(* ------------------------------------------------------------------ *)
(* DC solves with floating-row replacement *)

exception Singular_dc of string

(* human-readable name of unknown [v]: the node voltages come first,
   then one branch current per voltage-defined element *)
let describe_var m v =
  if v < 0 || v >= m.n then Printf.sprintf "unknown #%d" v
  else begin
    let found = ref None in
    Array.iteri
      (fun node var -> if var = v && !found = None then found := Some node)
      m.node_var;
    match !found with
    | Some node ->
      Printf.sprintf "node %s" m.circuit.Netlist.node_names.(node)
    | None ->
      let elem = ref None in
      Array.iteri
        (fun idx var -> if var = v && !elem = None then elem := Some idx)
        m.branch_var;
      (match !elem with
      | Some idx ->
        Printf.sprintf "branch current of %s"
          (Element.name m.circuit.Netlist.elements.(idx))
      | None -> Printf.sprintf "unknown #%d" v)
  end

type dc_solver = {
  sys : t;
  solver : [ `Dense of Lu.t | `Sparse of Sparse.Slu.t ];
  dc_symbolic : Sparse.Slu.symbolic option;
      (* the analysis the sparse path factored through, for reuse by
         structurally identical systems *)
}

let augmented_g m =
  let ga = Matrix.copy m.gm in
  Array.iteri
    (fun i row ->
      let coeffs = m.charge_coeffs.(i) in
      for j = 0 to m.n - 1 do
        Matrix.set ga row j coeffs.(j)
      done)
    m.charge_rows;
  ga

let singular_dc m v =
  raise
    (Singular_dc
       (Printf.sprintf
          "DC conductance matrix is singular at %s (no unique DC solution)"
          (describe_var m v)))

let dc_factor ?(sparse = false) ?symbolic m =
  let ga = augmented_g m in
  if sparse then begin
    let a = Sparse.Csr.of_dense ga in
    (* reuse a caller-supplied analysis only when this matrix has
       exactly the pattern it was derived from; otherwise analyze
       fresh.  Either way the numeric phase is the same [refactor],
       so a reused symbolic changes nothing numerically. *)
    let sym =
      match symbolic with
      | Some s when Sparse.Slu.pattern_matches s a -> s
      | _ -> (
        try Sparse.Slu.symbolic a
        with Sparse.Slu.Singular v -> singular_dc m v)
    in
    let f =
      try Sparse.Slu.refactor sym a
      with Sparse.Slu.Singular v -> singular_dc m v
    in
    { sys = m; solver = `Sparse f; dc_symbolic = Some sym }
  end
  else
    let f = try Lu.factor ga with Lu.Singular v -> singular_dc m v in
    { sys = m; solver = `Dense f; dc_symbolic = None }

let dc_symbolic s = s.dc_symbolic

let dc_solve s ~rhs ~charges =
  let m = s.sys in
  if Array.length charges <> Array.length m.charge_rows then
    invalid_arg "Mna.dc_solve: wrong number of charge values";
  let rhs' = Vec.copy rhs in
  Array.iteri (fun i row -> rhs'.(row) <- charges.(i)) m.charge_rows;
  match s.solver with
  | `Dense f -> Lu.solve f rhs'
  | `Sparse f -> Sparse.Slu.solve f rhs'

(* ------------------------------------------------------------------ *)

let state_derivative m ~x ~u =
  (* dynamic positions: any row/column of C with a nonzero entry *)
  let dynamic = Array.make m.n false in
  for i = 0 to m.n - 1 do
    for j = 0 to m.n - 1 do
      if Matrix.get m.cm i j <> 0. then begin
        dynamic.(i) <- true;
        dynamic.(j) <- true
      end
    done
  done;
  let idx = ref [] in
  for i = m.n - 1 downto 0 do
    if dynamic.(i) then idx := i :: !idx
  done;
  let idx = Array.of_list !idx in
  let nd = Array.length idx in
  if nd = 0 then Some (Vec.create m.n, Array.make m.n false)
  else begin
    let csub = Matrix.submatrix m.cm idx idx in
    let residual = Vec.sub (Matrix.mul_vec m.bm u) (Matrix.mul_vec m.gm x) in
    let rsub = Array.map (fun i -> residual.(i)) idx in
    (* the capacitance block is symmetric positive definite, so try the
       cheaper Cholesky first; inductor rows carry -L on the diagonal
       and fall back to LU *)
    let solve_sub () =
      if Matrix.is_symmetric ~tol:0. csub then
        match Cholesky.factor csub with
        | f -> Some (Cholesky.solve f rsub)
        | exception Cholesky.Not_positive_definite _ -> (
          match Lu.factor csub with
          | f -> Some (Lu.solve f rsub)
          | exception Lu.Singular _ -> None)
      else
        match Lu.factor csub with
        | f -> Some (Lu.solve f rsub)
        | exception Lu.Singular _ -> None
    in
    match solve_sub () with
    | Some dsub ->
      let out = Vec.create m.n in
      let mask = Array.make m.n false in
      Array.iteri
        (fun k i ->
          out.(i) <- dsub.(k);
          mask.(i) <- true)
        idx;
      Some (out, mask)
    | None -> None
  end
