exception Parse_error of int * string

type directive =
  | Tran of { t_stop : float; steps : int option }
  | Awe_node of { node : string; order : int option }

type deck = {
  circuit : Netlist.circuit;
  directives : directive list;
  title : string option;
}

let fail line fmt = Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

(* ------------------------------------------------------------------ *)
(* values with SPICE suffixes *)

let suffixes =
  [ ("meg", 1e6); ("mil", 25.4e-6); ("t", 1e12); ("g", 1e9); ("k", 1e3);
    ("m", 1e-3); ("u", 1e-6); ("n", 1e-9); ("p", 1e-12); ("f", 1e-15) ]

let parse_value raw =
  let s = String.lowercase_ascii (String.trim raw) in
  if s = "" then None
  else begin
    (* split the numeric prefix from the alphabetic tail *)
    let n = String.length s in
    let i = ref 0 in
    let numeric c =
      (c >= '0' && c <= '9') || c = '.' || c = '+' || c = '-' || c = 'e'
    in
    (* consume mantissa; 'e' only counts as numeric when followed by a
       digit or sign (exponent), otherwise it starts the suffix *)
    while
      !i < n
      &&
      let c = s.[!i] in
      numeric c
      && (c <> 'e'
         || (!i + 1 < n
            &&
            let d = s.[!i + 1] in
            (d >= '0' && d <= '9') || d = '+' || d = '-'))
    do
      incr i
    done;
    let num = String.sub s 0 !i in
    let tail = String.sub s !i (n - !i) in
    match float_of_string_opt num with
    | None -> None
    | Some v ->
      let mult =
        let rec pick = function
          | [] -> Some 1. (* bare units like "ohm", "v", "hz" *)
          | (suf, m) :: rest ->
            if String.length tail >= String.length suf
               && String.sub tail 0 (String.length suf) = suf
            then Some m
            else pick rest
        in
        if tail = "" then Some 1. else pick suffixes
      in
      Option.map (fun m -> v *. m) mult
  end

(* ------------------------------------------------------------------ *)
(* tokenization: join continuations, strip comments, split respecting
   parentheses so PWL(0 0 1n 5) is one token group *)

let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let numbered = List.mapi (fun i l -> (i + 1, l)) raw in
  let strip_comment l =
    match String.index_opt l ';' with
    | Some i -> String.sub l 0 i
    | None -> l
  in
  let rec join acc = function
    | [] -> List.rev acc
    | (ln, l) :: rest ->
      let l = strip_comment l in
      let trimmed = String.trim l in
      if trimmed = "" || trimmed.[0] = '*' then join acc rest
      else if trimmed.[0] = '+' then begin
        match acc with
        | (ln0, prev) :: acc' ->
          join
            ((ln0, prev ^ " " ^ String.sub trimmed 1 (String.length trimmed - 1))
            :: acc')
            rest
        | [] -> fail ln "continuation line with nothing to continue"
      end
      else join ((ln, trimmed) :: acc) rest
  in
  join [] numbered

(* split a card into tokens; parenthesized argument lists stay attached
   to their keyword: "pwl(0 0 1n 5)" is one token *)
let tokenize line s =
  let n = String.length s in
  let tokens = ref [] in
  let buf = Buffer.create 16 in
  let depth = ref 0 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | '(' ->
        incr depth;
        Buffer.add_char buf c
      | ')' ->
        decr depth;
        if !depth < 0 then fail line "unbalanced parentheses";
        Buffer.add_char buf c
      | ' ' | '\t' | ',' | '\r' ->
        if !depth > 0 then Buffer.add_char buf ' ' else flush ()
      | '=' ->
        (* keep key=value together *)
        Buffer.add_char buf '='
      | c -> Buffer.add_char buf c)
    s;
  if !depth <> 0 then fail line "unbalanced parentheses";
  flush ();
  ignore n;
  List.rev !tokens

let value_exn line tok =
  match parse_value tok with
  | Some v -> v
  | None -> fail line "cannot parse value %S" tok

(* a value that must be a usable element/waveform number: finite (the
   suffix grammar accepts "nan" and "1e999" as floats; neither makes a
   simulatable circuit) *)
let finite_exn line ~what tok =
  let v = value_exn line tok in
  if not (Float.is_finite v) then
    fail line "%s value %S is not finite" what tok;
  v

(* element values (R, C, L) must additionally be positive *)
let positive_exn line ~what tok =
  let v = finite_exn line ~what tok in
  if v <= 0. then fail line "%s value %S must be positive" what tok;
  v

(* integer card arguments (.tran steps, .awe order) arrive as SPICE
   numbers; reject NaN/huge floats before the int conversion truncates
   them into nonsense *)
let int_exn line ~what ~min ~max tok =
  let v = value_exn line tok in
  if not (Float.is_finite v) || v < float_of_int min || v > float_of_int max
  then fail line "%s must be an integer in [%d, %d], got %S" what min max tok;
  int_of_float v

(* waveform tokens: either ["5"], ["dc"; "5"], or one function token *)
let parse_waveform line tokens =
  let fn_args tok =
    (* "pwl(0 0 1n 5)" -> ("pwl", ["0";"0";"1n";"5"]) *)
    match String.index_opt tok '(' with
    | None -> None
    | Some i ->
      let name = String.lowercase_ascii (String.sub tok 0 i) in
      let inner = String.sub tok (i + 1) (String.length tok - i - 2) in
      let args =
        String.split_on_char ' ' inner |> List.filter (fun s -> s <> "")
      in
      Some (name, args)
  in
  let wave =
    match tokens with
    | [ tok ] -> (
      match fn_args tok with
      | None -> Element.Dc (finite_exn line ~what:"DC" tok)
      | Some ("step", [ v0; v1 ]) ->
        Element.Step
          { v0 = finite_exn line ~what:"STEP" v0;
            v1 = finite_exn line ~what:"STEP" v1 }
      | Some ("ramp", [ v0; v1; td; tr ]) ->
        let t_delay = finite_exn line ~what:"RAMP delay" td in
        let t_rise = finite_exn line ~what:"RAMP rise" tr in
        if t_delay < 0. then fail line "RAMP delay must be non-negative";
        if t_rise <= 0. then fail line "RAMP rise time must be positive";
        Element.Ramp
          { v0 = finite_exn line ~what:"RAMP" v0;
            v1 = finite_exn line ~what:"RAMP" v1;
            t_delay;
            t_rise }
      | Some ("pwl", args) ->
        if List.length args < 2 || List.length args mod 2 <> 0 then
          fail line "PWL needs an even number of arguments";
        let rec pairs = function
          | [] -> []
          | t :: v :: rest ->
            ( finite_exn line ~what:"PWL time" t,
              finite_exn line ~what:"PWL" v )
            :: pairs rest
          | [ _ ] -> assert false
        in
        let points = pairs args in
        let rec increasing = function
          | (t0, _) :: ((t1, _) :: _ as rest) ->
            if t1 <= t0 then
              fail line "PWL times must be strictly increasing";
            increasing rest
          | _ -> ()
        in
        increasing points;
        Element.Pwl points
      | Some (name, _) -> fail line "unknown waveform %S" name)
    | [ dc; v ] when String.lowercase_ascii dc = "dc" ->
      Element.Dc (finite_exn line ~what:"DC" v)
    | _ -> fail line "cannot parse source waveform"
  in
  (* the canonical decomposition is what MNA assembly consumes; probe
     it here so a malformed waveform is a deck error, not a crash in a
     later analysis stage *)
  (match Element.canonicalize wave with
  | _ -> ()
  | exception Invalid_argument msg -> fail line "%s" msg);
  wave

let split_params tokens =
  (* separate positional tokens from key=value parameters *)
  List.partition (fun t -> not (String.contains t '=')) tokens

let param_ic line params =
  List.fold_left
    (fun acc p ->
      match String.split_on_char '=' p with
      | [ k; v ] when String.lowercase_ascii k = "ic" -> (
        match acc with
        | Some _ -> fail line "duplicate IC parameter"
        | None -> Some (finite_exn line ~what:"IC" v))
      | _ -> fail line "unknown parameter %S" p)
    None params

(* .ic v(node)=value *)
let parse_ic_directive line tok =
  let low = String.lowercase_ascii tok in
  match String.index_opt low '=' with
  | None -> fail line ".ic expects v(<node>)=<value>"
  | Some eq ->
    let lhs = String.sub low 0 eq in
    let rhs = String.sub tok (eq + 1) (String.length tok - eq - 1) in
    if String.length lhs < 4 || String.sub lhs 0 2 <> "v(" || lhs.[String.length lhs - 1] <> ')'
    then fail line ".ic expects v(<node>)=<value>";
    let node = String.sub lhs 2 (String.length lhs - 3) in
    if node = "" then fail line ".ic expects v(<node>)=<value>";
    (node, finite_exn line ~what:".ic" rhs)

let parse_string text =
  let lines = logical_lines text in
  let b = Netlist.create () in
  let directives = ref [] in
  let pending_ics = ref [] in
  let title = ref None in
  (* lowercased element name -> defining line, so duplicates and
     dangling cross-references (H/F control sources, K couplings) get
     the offending card's line instead of a bare exception at freeze *)
  let element_lines = Hashtbl.create 16 in
  let vsource_names = Hashtbl.create 4 in
  let inductor_names = Hashtbl.create 4 in
  let cross_checks = ref [] in
  let declare line head =
    let key = String.lowercase_ascii head in
    (match Hashtbl.find_opt element_lines key with
    | Some first -> fail line "duplicate element name %S (line %d)" head first
    | None -> Hashtbl.replace element_lines key line);
    key
  in
  let handle_card is_first (line, text) =
    let tokens = tokenize line text in
    match tokens with
    | [] -> ()
    | head :: rest -> (
      let kind = Char.lowercase_ascii head.[0] in
      match kind with
      | '.' -> (
        match String.lowercase_ascii head :: rest with
        | ".end" :: _ -> ()
        | ".ic" :: args ->
          if args = [] then fail line ".ic expects v(<node>)=<value>";
          List.iter
            (fun a -> pending_ics := (line, parse_ic_directive line a) :: !pending_ics)
            args
        | ".tran" :: args -> (
          match args with
          | [ t ] ->
            directives :=
              Tran { t_stop = positive_exn line ~what:".tran tstop" t;
                     steps = None }
              :: !directives
          | [ t; s ] ->
            directives :=
              Tran
                { t_stop = positive_exn line ~what:".tran tstop" t;
                  steps =
                    Some
                      (int_exn line ~what:".tran steps" ~min:1
                         ~max:100_000_000 s) }
              :: !directives
          | _ -> fail line ".tran expects <tstop> [steps]")
        | ".awe" :: args -> (
          match args with
          | [ node ] ->
            directives := Awe_node { node; order = None } :: !directives
          | [ node; q ] ->
            directives :=
              Awe_node
                { node;
                  order = Some (int_exn line ~what:".awe order" ~min:1 ~max:64 q) }
              :: !directives
          | _ -> fail line ".awe expects <node> [order]")
        | d :: _ -> fail line "unknown directive %S" d
        | [] -> ())
      | 'r' -> (
        match rest with
        | [ np; nn; v ] ->
          ignore (declare line head);
          Netlist.add_r ~line b head np nn (positive_exn line ~what:"resistor" v)
        | _ -> fail line "R card: R<name> <n+> <n-> <value>")
      | 'c' -> (
        let pos, params = split_params rest in
        match pos with
        | [ np; nn; v ] ->
          let ic = param_ic line params in
          ignore (declare line head);
          Netlist.add_c ?ic ~line b head np nn
            (positive_exn line ~what:"capacitor" v)
        | _ -> fail line "C card: C<name> <n+> <n-> <value> [IC=v]")
      | 'l' -> (
        let pos, params = split_params rest in
        match pos with
        | [ np; nn; v ] ->
          let ic = param_ic line params in
          Hashtbl.replace inductor_names (declare line head) ();
          Netlist.add_l ?ic ~line b head np nn
            (positive_exn line ~what:"inductor" v)
        | _ -> fail line "L card: L<name> <n+> <n-> <value> [IC=i]")
      | 'v' -> (
        match rest with
        | np :: nn :: wave when wave <> [] ->
          let wave = parse_waveform line wave in
          Hashtbl.replace vsource_names (declare line head) ();
          Netlist.add_v ~line b head np nn wave
        | _ -> fail line "V card: V<name> <n+> <n-> <waveform>")
      | 'i' -> (
        match rest with
        | np :: nn :: wave when wave <> [] ->
          let wave = parse_waveform line wave in
          ignore (declare line head);
          Netlist.add_i ~line b head np nn wave
        | _ -> fail line "I card: I<name> <n+> <n-> <waveform>")
      | 'e' -> (
        match rest with
        | [ np; nn; cp; cn; g ] ->
          ignore (declare line head);
          Netlist.add_vcvs ~line b head np nn cp cn (finite_exn line ~what:"gain" g)
        | _ -> fail line "E card: E<name> <n+> <n-> <cp> <cn> <gain>")
      | 'g' -> (
        match rest with
        | [ np; nn; cp; cn; g ] ->
          ignore (declare line head);
          Netlist.add_vccs ~line b head np nn cp cn (finite_exn line ~what:"gm" g)
        | _ -> fail line "G card: G<name> <n+> <n-> <cp> <cn> <gm>")
      | 'h' -> (
        match rest with
        | [ np; nn; vsrc; r ] ->
          ignore (declare line head);
          cross_checks := (line, `Vsource vsrc) :: !cross_checks;
          Netlist.add_ccvs ~line b head np nn vsrc (finite_exn line ~what:"r" r)
        | _ -> fail line "H card: H<name> <n+> <n-> <vsrc> <r>")
      | 'f' -> (
        match rest with
        | [ np; nn; vsrc; g ] ->
          ignore (declare line head);
          cross_checks := (line, `Vsource vsrc) :: !cross_checks;
          Netlist.add_cccs ~line b head np nn vsrc (finite_exn line ~what:"gain" g)
        | _ -> fail line "F card: F<name> <n+> <n-> <vsrc> <gain>")
      | 'k' -> (
        match rest with
        | [ l1; l2; k ] ->
          let kv = finite_exn line ~what:"coupling" k in
          if not (kv > 0. && kv < 1.) then
            fail line "coupling %S must satisfy 0 < k < 1" head;
          if String.lowercase_ascii l1 = String.lowercase_ascii l2 then
            fail line "coupling %S couples inductor %S to itself" head l1;
          ignore (declare line head);
          cross_checks :=
            (line, `Inductor l1) :: (line, `Inductor l2) :: !cross_checks;
          Netlist.add_k ~line b head l1 l2 kv
        | _ -> fail line "K card: K<name> <l1> <l2> <k>")
      | _ ->
        if is_first then title := Some text
        else fail line "unknown card %S" head)
  in
  (match lines with
  | [] -> raise (Parse_error (0, "empty deck"))
  | first :: rest ->
    (* a first line that parses as a card is a card; otherwise a title.
       A failed first card may have left partial state behind (a half-
       processed .ic list, an interned element name); reset it so the
       rejected line is a title and nothing more *)
    let saved_directives = !directives and saved_ics = !pending_ics in
    (try handle_card true first
     with Parse_error _ ->
       directives := saved_directives;
       pending_ics := saved_ics;
       Hashtbl.reset element_lines;
       Hashtbl.reset vsource_names;
       Hashtbl.reset inductor_names;
       cross_checks := [];
       title := Some (snd first));
    List.iter (handle_card false) rest);
  (* dangling cross-references, with the referencing card's line *)
  List.iter
    (fun (line, check) ->
      match check with
      | `Vsource name ->
        if not (Hashtbl.mem vsource_names (String.lowercase_ascii name)) then
          fail line "controlling voltage source %S is not defined" name
      | `Inductor name ->
        if not (Hashtbl.mem inductor_names (String.lowercase_ascii name)) then
          fail line "coupled inductor %S is not defined" name)
    (List.rev !cross_checks);
  if Hashtbl.length element_lines = 0 then
    raise (Parse_error (0, "deck contains no elements"));
  (* the card-level checks above mirror everything [Netlist.freeze]
     validates, so this is a safety net: any residual builder complaint
     still surfaces as a deck error, never an escaping exception *)
  let freeze_exn builder =
    match Netlist.freeze builder with
    | circuit -> circuit
    | exception Invalid_argument msg -> raise (Parse_error (0, msg))
  in
  (* apply .ic node directives: attach to the grounded capacitor *)
  let elements_with_ics raw_circuit =
    match !pending_ics with
    | [] -> raw_circuit
    | ics ->
      let b2 = Netlist.create () in
      Array.iteri
        (fun i name ->
          if i > 0 then ignore (Netlist.node b2 name))
        raw_circuit.Netlist.node_names;
      let ic_for_node = Hashtbl.create 4 in
      List.iter
        (fun (line, (name, v)) ->
          match Netlist.find_node raw_circuit name with
          | Some n -> Hashtbl.replace ic_for_node n (line, v)
          | None -> fail line ".ic references unknown node %S" name)
        ics;
      let nm node = raw_circuit.Netlist.node_names.(node) in
      Array.iteri
        (fun idx e ->
          let line = raw_circuit.Netlist.element_lines.(idx) in
          match e with
          | Element.Capacitor { name; np; nn; c; ic } ->
            let ic =
              match ic with
              | Some _ -> ic
              | None ->
                if nn = Element.ground then
                  Option.map snd (Hashtbl.find_opt ic_for_node np)
                else if np = Element.ground then
                  Option.map (fun (_, v) -> -.v)
                    (Hashtbl.find_opt ic_for_node nn)
                else None
            in
            Netlist.add_c ?ic ~line b2 name (nm np) (nm nn) c
          | Element.Resistor { name; np; nn; r } ->
            Netlist.add_r ~line b2 name (nm np) (nm nn) r
          | Element.Inductor { name; np; nn; l; ic } ->
            Netlist.add_l ?ic ~line b2 name (nm np) (nm nn) l
          | Element.Vsource { name; np; nn; wave } ->
            Netlist.add_v ~line b2 name (nm np) (nm nn) wave
          | Element.Isource { name; np; nn; wave } ->
            Netlist.add_i ~line b2 name (nm np) (nm nn) wave
          | Element.Vcvs { name; np; nn; cp; cn; gain } ->
            Netlist.add_vcvs ~line b2 name (nm np) (nm nn) (nm cp) (nm cn) gain
          | Element.Vccs { name; np; nn; cp; cn; gm } ->
            Netlist.add_vccs ~line b2 name (nm np) (nm nn) (nm cp) (nm cn) gm
          | Element.Ccvs { name; np; nn; vctrl; r } ->
            Netlist.add_ccvs ~line b2 name (nm np) (nm nn) vctrl r
          | Element.Cccs { name; np; nn; vctrl; gain } ->
            Netlist.add_cccs ~line b2 name (nm np) (nm nn) vctrl gain
          | Element.Mutual { name; l1; l2; k } ->
            Netlist.add_k ~line b2 name l1 l2 k)
        raw_circuit.Netlist.elements;
      freeze_exn b2
  in
  let circuit = elements_with_ics (freeze_exn b) in
  { circuit; directives = List.rev !directives; title = !title }

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_string (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* serialization *)

let print_wave buf wave =
  match wave with
  | Element.Dc v -> Buffer.add_string buf (Printf.sprintf "dc %.17g" v)
  | Element.Step { v0; v1 } ->
    Buffer.add_string buf (Printf.sprintf "step(%.17g %.17g)" v0 v1)
  | Element.Ramp { v0; v1; t_delay; t_rise } ->
    Buffer.add_string buf
      (Printf.sprintf "ramp(%.17g %.17g %.17g %.17g)" v0 v1 t_delay t_rise)
  | Element.Pwl points ->
    Buffer.add_string buf "pwl(";
    List.iteri
      (fun i (t, v) ->
        if i > 0 then Buffer.add_char buf ' ';
        Buffer.add_string buf (Printf.sprintf "%.17g %.17g" t v))
      points;
    Buffer.add_char buf ')'

let print_deck ?title (ckt : Netlist.circuit) =
  let buf = Buffer.create 512 in
  (match title with
  | Some t -> Buffer.add_string buf ("* " ^ t ^ "\n")
  | None -> ());
  let nm node = ckt.Netlist.node_names.(node) in
  Array.iter
    (fun e ->
      (match e with
      | Element.Resistor { name; np; nn; r } ->
        Buffer.add_string buf
          (Printf.sprintf "%s %s %s %.17g" name (nm np) (nm nn) r)
      | Element.Capacitor { name; np; nn; c; ic } ->
        Buffer.add_string buf
          (Printf.sprintf "%s %s %s %.17g%s" name (nm np) (nm nn) c
             (match ic with
             | Some v -> Printf.sprintf " ic=%.17g" v
             | None -> ""))
      | Element.Inductor { name; np; nn; l; ic } ->
        Buffer.add_string buf
          (Printf.sprintf "%s %s %s %.17g%s" name (nm np) (nm nn) l
             (match ic with
             | Some v -> Printf.sprintf " ic=%.17g" v
             | None -> ""))
      | Element.Vsource { name; np; nn; wave } ->
        Buffer.add_string buf (Printf.sprintf "%s %s %s " name (nm np) (nm nn));
        print_wave buf wave
      | Element.Isource { name; np; nn; wave } ->
        Buffer.add_string buf (Printf.sprintf "%s %s %s " name (nm np) (nm nn));
        print_wave buf wave
      | Element.Vcvs { name; np; nn; cp; cn; gain } ->
        Buffer.add_string buf
          (Printf.sprintf "%s %s %s %s %s %.17g" name (nm np) (nm nn) (nm cp)
             (nm cn) gain)
      | Element.Vccs { name; np; nn; cp; cn; gm } ->
        Buffer.add_string buf
          (Printf.sprintf "%s %s %s %s %s %.17g" name (nm np) (nm nn) (nm cp)
             (nm cn) gm)
      | Element.Ccvs { name; np; nn; vctrl; r } ->
        Buffer.add_string buf
          (Printf.sprintf "%s %s %s %s %.17g" name (nm np) (nm nn) vctrl r)
      | Element.Cccs { name; np; nn; vctrl; gain } ->
        Buffer.add_string buf
          (Printf.sprintf "%s %s %s %s %.17g" name (nm np) (nm nn) vctrl gain)
      | Element.Mutual { name; l1; l2; k } ->
        Buffer.add_string buf (Printf.sprintf "%s %s %s %.17g" name l1 l2 k));
      Buffer.add_char buf '\n')
    ckt.Netlist.elements;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf
