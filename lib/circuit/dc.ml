open Linalg

type op = {
  x : Vec.t;
  cap_v : (int * float) array;
  cap_i : (int * float) array;
  ind_i : (int * float) array;
  ind_v : (int * float) array;
}

(* Build the auxiliary DC circuit: sources frozen to [source_value],
   capacitors pinned (voltage source) or open, inductors pinned
   (current source) or shorted (0 V source). *)
let build_aux (ckt : Netlist.circuit) ~source_value ~cap_pin ~ind_pin =
  let baux = Netlist.create () in
  (* intern nodes in the original order so ids coincide *)
  Array.iteri
    (fun i name -> if i > 0 then ignore (Netlist.node baux name))
    ckt.Netlist.node_names;
  let name_of node = ckt.Netlist.node_names.(node) in
  Array.iteri
    (fun idx e ->
      match e with
      | Element.Resistor { name; np; nn; r } ->
        Netlist.add_r baux name (name_of np) (name_of nn) r
      | Element.Capacitor { name; np; nn; _ } -> (
        match cap_pin idx e with
        | Some v ->
          Netlist.add_v baux name (name_of np) (name_of nn) (Element.Dc v)
        | None -> ())
      | Element.Inductor { name; np; nn; _ } -> (
        match ind_pin idx e with
        | Some i ->
          Netlist.add_i baux name (name_of np) (name_of nn) (Element.Dc i)
        | None ->
          Netlist.add_v baux name (name_of np) (name_of nn) (Element.Dc 0.))
      | Element.Vsource { name; np; nn; wave } ->
        Netlist.add_v baux name (name_of np) (name_of nn)
          (Element.Dc (source_value wave))
      | Element.Isource { name; np; nn; wave } ->
        Netlist.add_i baux name (name_of np) (name_of nn)
          (Element.Dc (source_value wave))
      | Element.Vcvs { name; np; nn; cp; cn; gain } ->
        Netlist.add_vcvs baux name (name_of np) (name_of nn) (name_of cp)
          (name_of cn) gain
      | Element.Vccs { name; np; nn; cp; cn; gm } ->
        Netlist.add_vccs baux name (name_of np) (name_of nn) (name_of cp)
          (name_of cn) gm
      | Element.Ccvs { name; np; nn; vctrl; r } ->
        Netlist.add_ccvs baux name (name_of np) (name_of nn) vctrl r
      | Element.Cccs { name; np; nn; vctrl; gain } ->
        Netlist.add_cccs baux name (name_of np) (name_of nn) vctrl gain
      | Element.Mutual _ ->
        (* no DC effect: coupled voltage is M di/dt = 0 at a DC point *)
        ())
    ckt.Netlist.elements;
  Netlist.freeze baux

(* Inductors pinned as current sources in a circuit whose controlled
   sources reference a voltage source by name still type-check because
   the referenced V sources are preserved by name. *)

let solve_aux aux =
  let maux = Mna.build ~floating:`Pin_to_zero aux in
  let solver = Mna.dc_factor maux in
  let rhs = Linalg.Matrix.mul_vec (Mna.b maux) (Mna.u_at maux 0.) in
  let charges = Array.make (Mna.charge_group_count maux) 0. in
  let x = Mna.dc_solve solver ~rhs ~charges in
  (maux, x)

let extract (m : Mna.t) (maux : Mna.t) (xaux : Vec.t) ~ind_current =
  let ckt = Mna.circuit m in
  let aux_ckt = Mna.circuit maux in
  let vnode node = Mna.voltage maux xaux node in
  (* current through a named aux element that has a branch variable *)
  let aux_branch_current name =
    let key = String.lowercase_ascii name in
    let result = ref None in
    Array.iteri
      (fun idx e ->
        if String.lowercase_ascii (Element.name e) = key then
          match Mna.branch_var maux idx with
          | Some bv -> result := Some xaux.(bv)
          | None -> ())
      aux_ckt.Netlist.elements;
    !result
  in
  let x = Vec.create (Mna.size m) in
  (* node voltages share ids between main and aux *)
  for node = 1 to ckt.Netlist.node_count - 1 do
    let v = Mna.node_var m node in
    if v >= 0 then x.(v) <- vnode node
  done;
  let cap_v = ref [] and cap_i = ref [] in
  let ind_i = ref [] and ind_v = ref [] in
  Array.iteri
    (fun idx e ->
      match e with
      | Element.Capacitor { name; np; nn; _ } ->
        cap_v := (idx, vnode np -. vnode nn) :: !cap_v;
        let i = match aux_branch_current name with Some i -> i | None -> 0. in
        cap_i := (idx, i) :: !cap_i
      | Element.Inductor { name; np; nn; _ } ->
        let i =
          match ind_current idx with
          | Some i -> i (* pinned value *)
          | None -> (
            match aux_branch_current name with Some i -> i | None -> 0.)
        in
        ind_i := (idx, i) :: !ind_i;
        ind_v := (idx, vnode np -. vnode nn) :: !ind_v;
        (match Mna.branch_var m idx with
        | Some bv -> x.(bv) <- i
        | None -> ())
      | Element.Vsource { name; _ }
      | Element.Vcvs { name; _ }
      | Element.Ccvs { name; _ } -> (
        match (Mna.branch_var m idx, aux_branch_current name) with
        | Some bv, Some i -> x.(bv) <- i
        | _ -> ())
      | Element.Resistor _ | Element.Isource _ | Element.Vccs _
      | Element.Cccs _ | Element.Mutual _ -> ())
    ckt.Netlist.elements;
  { x;
    cap_v = Array.of_list (List.rev !cap_v);
    cap_i = Array.of_list (List.rev !cap_i);
    ind_i = Array.of_list (List.rev !ind_i);
    ind_v = Array.of_list (List.rev !ind_v) }

let initial m =
  let ckt = Mna.circuit m in
  let attempt ~uic =
    let pins_i = Hashtbl.create 8 in
    let aux =
      build_aux ckt
        ~source_value:(fun wave -> (Element.canonicalize wave).Element.pre)
        ~cap_pin:(fun _ e ->
          match e with Element.Capacitor { ic; _ } -> ic | _ -> None)
        ~ind_pin:(fun idx e ->
          match e with
          | Element.Inductor { ic = Some i; _ } ->
            Hashtbl.replace pins_i idx i;
            Some i
          | Element.Inductor { ic = None; _ } when uic ->
            Hashtbl.replace pins_i idx 0.;
            Some 0.
          | _ -> None)
    in
    let maux, xaux = solve_aux aux in
    extract m maux xaux ~ind_current:(fun idx -> Hashtbl.find_opt pins_i idx)
  in
  (* a capacitor initial condition can contradict the DC inductor short
     (e.g. a charged LC tank); fall back to UIC semantics where
     unspecified inductor currents start at zero *)
  try attempt ~uic:false with Mna.Singular_dc _ -> attempt ~uic:true

let at_zero_plus m (op0 : op) =
  let ckt = Mna.circuit m in
  let cap_v = Hashtbl.create 8 and ind_i = Hashtbl.create 8 in
  Array.iter (fun (idx, v) -> Hashtbl.replace cap_v idx v) op0.cap_v;
  Array.iter (fun (idx, i) -> Hashtbl.replace ind_i idx i) op0.ind_i;
  (* Pinning every capacitor as a voltage source creates source loops
     whenever the capacitive graph has a cycle (e.g. a coupling path
     C_out->victim->ground in parallel with the grounded output cap).
     Pin only a spanning forest of the capacitive graph; the voltages
     of cycle-closing capacitors are implied by the 0- node voltages,
     so nothing is lost. *)
  let n = ckt.Netlist.node_count in
  let dsu = Array.init n (fun i -> i) in
  let rec find i = if dsu.(i) = i then i else find dsu.(i) in
  let union a b = dsu.(find a) <- find b in
  let pinned = Hashtbl.create 8 in
  (* voltage-defined elements already fix their node pair; a capacitor
     across one would form a source loop too *)
  Array.iter
    (fun e ->
      match e with
      | Element.Vsource { np; nn; _ }
      | Element.Vcvs { np; nn; _ }
      | Element.Ccvs { np; nn; _ } -> if find np <> find nn then union np nn
      | _ -> ())
    ckt.Netlist.elements;
  Array.iteri
    (fun idx e ->
      match e with
      | Element.Capacitor { np; nn; _ } ->
        if find np <> find nn then begin
          union np nn;
          Hashtbl.replace pinned idx ()
        end
      | _ -> ())
    ckt.Netlist.elements;
  let aux =
    build_aux ckt
      ~source_value:(fun wave -> (Element.canonicalize wave).Element.v0)
      ~cap_pin:(fun idx _ ->
        if Hashtbl.mem pinned idx then Some (Hashtbl.find cap_v idx)
        else None)
      ~ind_pin:(fun idx _ -> Some (Hashtbl.find ind_i idx))
  in
  let maux, xaux = solve_aux aux in
  extract m maux xaux ~ind_current:(fun idx -> Hashtbl.find_opt ind_i idx)
