(** Model-order reduction: rewrite a netlist into a provably
    equivalent smaller one before MNA stamping.

    The pass consumes exactly the structures the AWE-I2xx reducibility
    advisories detect (the RC-chain-recognition literature — arXiv
    2508.13159 — and the DCM signal-line model — arXiv 2401.08430 —
    both hinge on spotting these):

    - {b parallel merges} (I203): same-kind two-terminal elements
      sharing both endpoints combine by the series/parallel rules —
      {e exact}, the stamped matrix is value-identical.
    - {b series-resistor merges}: a capacitor-free interior run of
      resistors collapses to one resistor of the summed resistance —
      {e exact}.
    - {b series RC chain lumping} (I201): a maximal run of interior
      nodes carrying two resistors and grounded capacitance each lumps
      into a single T section [A --R_left-- M --R_right-- B] with the
      run's total capacitance at [M], where
      [R_left = (sum_i c_i S_i) / C_tot] ([S_i] = cumulative
      resistance from [A]).  This preserves the total series
      resistance, the total capacitance, and the first moment of the
      charge distribution seen from {e both} ports exactly; higher
      moments are approximated (order-limited equivalence).
    - {b star-leg merging} (I202): [k >= 2] single-resistor RC legs on
      one hub merge into one leg with [C = sum C_i] and
      [R = (sum R_i C_i^2) / (sum C_i)^2], matching the first two
      moments of the summed leg driving admittance.

    Safety is by construction: a node is only eliminated when every
    incident element is a plain resistor or an IC-free grounded
    capacitor.  Ground, caller-supplied ports, and every node touched
    by an inductor, source, controlled source (including controlling
    terminals), or IC-carrying capacitor are protected; inductors
    referenced by a mutual coupling are never merged. *)

(** One reducible structure, in the same order and with the same
    node/element sets the AWE-I2xx advisories report. *)
type plan =
  | Chain of { members : int list }
      (** maximal run of chain-interior nodes, ascending ids; the
          advisories report runs of [>= 2], the rewriter also consumes
          singletons (a lone capacitor-free interior node is a
          series-resistor merge) *)
  | Star of { hub : int; legs : int list }
      (** [>= 2] single-resistor RC legs (sorted unique leaf ids) on
          [hub] *)
  | Parallel of { kind : string; np : int; nn : int; names : string list }
      (** same-[kind] two-terminal elements between one node pair
          ([np < nn]), element names in element order *)

val analyze : ?tick:(unit -> unit) -> Netlist.circuit -> plan list
(** Detect every reducible structure: chains (runs sorted
    lexicographically), then stars (hub ascending), then parallels
    (sorted by [(kind, np, nn)]).  [tick] is called once per node for
    the chain and star scans and once per element for the parallel
    scan — the lint layer threads its dataflow work counter through
    it.  Port-unaware: protection is the rewriter's business. *)

val plan_savings : plan -> int
(** Estimated savings of a plan as the advisories state it: nodes for
    chains and stars ([k - 1]), elements for parallels ([k - 1]). *)

type report = {
  nodes_eliminated : int;
  elements_eliminated : int;
  parallel_merges : int;  (** parallel groups merged *)
  series_merges : int;  (** capacitor-free runs collapsed to one R *)
  chain_lumps : int;  (** RC runs lumped to a T section *)
  star_merges : int;  (** hubs whose legs were merged *)
}

val empty_report : report

type result = {
  circuit : Netlist.circuit;
      (** the reduced circuit; physically the input circuit when
          nothing applied, so [reduce] is idempotent by construction *)
  node_map : int array;
      (** old node id -> new node id, or [-1] for eliminated nodes;
          protected nodes (ports, sources, ground) always survive *)
  report : report;
}

val reduce : ?ports:Element.node list -> Netlist.circuit -> result
(** Apply the transforms to a fixpoint.  Each round applies one family
    — parallels, then chains/series, then stars — and rebuilds the
    netlist; rounds repeat until nothing applies (each applied round
    strictly shrinks nodes + elements, so this terminates).  [ports]
    are never eliminated (sinks, drivers, observation nodes). *)
