(* Model-order reduction as a netlist -> netlist rewrite.

   The detector (analyze) is shared with the lint AWE-I2xx advisories
   so the two can never drift: lint formats the plans as diagnostics,
   this module consumes them.  The rewriter applies one transform
   family per round — parallels, then chains/series, then stars — and
   rebuilds the netlist through a fresh builder; every applied round
   strictly decreases nodes + elements, so the fixpoint terminates,
   and a round that finds nothing returns the input circuit
   physically, which makes [reduce] idempotent by construction. *)

type plan =
  | Chain of { members : int list }
  | Star of { hub : int; legs : int list }
  | Parallel of { kind : string; np : int; nn : int; names : string list }

type report = {
  nodes_eliminated : int;
  elements_eliminated : int;
  parallel_merges : int;
  series_merges : int;
  chain_lumps : int;
  star_merges : int;
}

let empty_report =
  { nodes_eliminated = 0;
    elements_eliminated = 0;
    parallel_merges = 0;
    series_merges = 0;
    chain_lumps = 0;
    star_merges = 0 }

let add_report a b =
  { nodes_eliminated = a.nodes_eliminated + b.nodes_eliminated;
    elements_eliminated = a.elements_eliminated + b.elements_eliminated;
    parallel_merges = a.parallel_merges + b.parallel_merges;
    series_merges = a.series_merges + b.series_merges;
    chain_lumps = a.chain_lumps + b.chain_lumps;
    star_merges = a.star_merges + b.star_merges }

type result = {
  circuit : Netlist.circuit;
  node_map : int array;
  report : report;
}

(* ---------------------------------------------------------------- *)
(* detection (shared with Lint.Reduce_advice)                        *)
(* ---------------------------------------------------------------- *)

(* a node is chain-interior / leg-leaf material only when resistors
   and grounded caps are its whole story *)
let rc_only (p : Flowgraph.node_profile) =
  p.Flowgraph.np_others = 0 && p.Flowgraph.np_floating_caps = 0

(* connected components of the interior-restricted resistor graph:
   members ascending within a run, runs sorted lexicographically
   (equivalently, by their minimum node id) *)
let chain_runs ~interior (c : Netlist.circuit) neighbors =
  let nodes = c.Netlist.node_count in
  let comp = Array.make nodes (-1) in
  let runs = ref [] in
  for n = 0 to nodes - 1 do
    if interior.(n) && comp.(n) < 0 then begin
      let members = ref [] in
      let q = Queue.create () in
      Queue.add n q;
      comp.(n) <- n;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        members := u :: !members;
        List.iter
          (fun v ->
            if v <> u && interior.(v) && comp.(v) < 0 then begin
              comp.(v) <- n;
              Queue.add v q
            end)
          neighbors.(u)
      done;
      runs := List.sort compare !members :: !runs
    end
  done;
  List.sort compare !runs

let chain_interior (c : Netlist.circuit) profiles =
  let interior = Array.make c.Netlist.node_count false in
  for n = 0 to c.Netlist.node_count - 1 do
    interior.(n) <-
      n <> Element.ground
      && rc_only profiles.(n)
      && profiles.(n).Flowgraph.np_resistors = 2
  done;
  interior

let star_leaf (c : Netlist.circuit) profiles =
  let leaf = Array.make c.Netlist.node_count false in
  for n = 0 to c.Netlist.node_count - 1 do
    (* a leg tip: one resistor in, grounded cap(s) only — a tip with
       no cap at all is a dangling node, W002's business *)
    leaf.(n) <-
      n <> Element.ground
      && rc_only profiles.(n)
      && profiles.(n).Flowgraph.np_resistors = 1
      && profiles.(n).Flowgraph.np_grounded_caps >= 1
  done;
  leaf

let analyze ?(tick = fun () -> ()) (c : Netlist.circuit) =
  let nodes = c.Netlist.node_count in
  let profiles = Flowgraph.profiles c in
  let neighbors = Flowgraph.resistor_neighbors c in
  (* chains: one tick per node for the interior scan *)
  for _ = 0 to nodes - 1 do
    tick ()
  done;
  let interior = chain_interior c profiles in
  let chains =
    List.map (fun members -> Chain { members }) (chain_runs ~interior c neighbors)
  in
  (* stars: one tick per node for the leaf scan *)
  for _ = 0 to nodes - 1 do
    tick ()
  done;
  let leaf = star_leaf c profiles in
  let stars = ref [] in
  for hub = nodes - 1 downto 0 do
    if not leaf.(hub) then begin
      let legs =
        List.filter (fun m -> m <> hub && leaf.(m)) neighbors.(hub)
        |> List.sort_uniq compare
      in
      if List.length legs >= 2 then stars := Star { hub; legs } :: !stars
    end
  done;
  (* parallels: one tick per element *)
  let groups = Hashtbl.create 16 in
  let add kind np nn name =
    if np <> nn then begin
      let k = (kind, min np nn, max np nn) in
      Hashtbl.replace groups k
        (name :: Option.value (Hashtbl.find_opt groups k) ~default:[])
    end
  in
  Array.iter
    (fun e ->
      tick ();
      match e with
      | Element.Resistor { name; np; nn; _ } -> add "resistor" np nn name
      | Element.Capacitor { name; np; nn; _ } -> add "capacitor" np nn name
      | Element.Inductor { name; np; nn; _ } -> add "inductor" np nn name
      | _ -> ())
    c.Netlist.elements;
  let parallels =
    Hashtbl.fold
      (fun (kind, a, b) names acc -> ((kind, a, b), List.rev names) :: acc)
      groups []
    |> List.sort compare
    |> List.filter_map (fun ((kind, np, nn), names) ->
           if List.length names >= 2 then Some (Parallel { kind; np; nn; names })
           else None)
  in
  chains @ !stars @ parallels

let plan_savings = function
  | Chain { members } -> max 0 (List.length members - 1)
  | Star { legs; _ } -> List.length legs - 1
  | Parallel { names; _ } -> List.length names - 1

(* ---------------------------------------------------------------- *)
(* safety                                                            *)
(* ---------------------------------------------------------------- *)

(* Protected nodes can never be eliminated: ground, caller ports, and
   every node an inductor, source, controlled source (controlling
   terminals included — Flowgraph profiles don't count those), mutual
   coupling, IC-carrying capacitor, or self-loop element touches. *)
let protected_nodes ~ports (c : Netlist.circuit) =
  let p = Array.make c.Netlist.node_count false in
  p.(Element.ground) <- true;
  List.iter (fun n -> if n >= 0 && n < Array.length p then p.(n) <- true) ports;
  Array.iter
    (fun e ->
      match e with
      | Element.Resistor { np; nn; _ } -> if np = nn then p.(np) <- true
      | Element.Capacitor { np; nn; ic; _ } ->
        if np = nn then p.(np) <- true
        else if ic <> None then begin
          p.(np) <- true;
          p.(nn) <- true
        end
      | e -> List.iter (fun n -> p.(n) <- true) (Element.nodes e))
    c.Netlist.elements;
  p

let lc = String.lowercase_ascii

(* inductors referenced by a K card must survive merging by name *)
let coupled_inductors (c : Netlist.circuit) =
  Array.fold_left
    (fun acc e ->
      match e with
      | Element.Mutual { l1; l2; _ } -> lc l1 :: lc l2 :: acc
      | _ -> acc)
    [] c.Netlist.elements

(* ---------------------------------------------------------------- *)
(* incidence helpers                                                 *)
(* ---------------------------------------------------------------- *)

(* per node, incident non-self-loop resistor element indices,
   ascending *)
let resistor_incidence (c : Netlist.circuit) =
  let inc = Array.make c.Netlist.node_count [] in
  Array.iteri
    (fun i e ->
      match e with
      | Element.Resistor { np; nn; _ } when np <> nn ->
        inc.(np) <- i :: inc.(np);
        inc.(nn) <- i :: inc.(nn)
      | _ -> ())
    c.Netlist.elements;
  Array.map List.rev inc

(* per node, incident IC-free grounded-capacitor element indices,
   ascending *)
let grounded_cap_incidence (c : Netlist.circuit) =
  let inc = Array.make c.Netlist.node_count [] in
  Array.iteri
    (fun i e ->
      match e with
      | Element.Capacitor { np; nn; ic = None; _ } when np <> nn ->
        if nn = Element.ground then inc.(np) <- i :: inc.(np)
        else if np = Element.ground then inc.(nn) <- i :: inc.(nn)
      | _ -> ())
    c.Netlist.elements;
  Array.map List.rev inc

let resistance (c : Netlist.circuit) i =
  match c.Netlist.elements.(i) with
  | Element.Resistor { r; _ } -> r
  | _ -> invalid_arg "Reduce: not a resistor"

let capacitance (c : Netlist.circuit) i =
  match c.Netlist.elements.(i) with
  | Element.Capacitor { c = v; _ } -> v
  | _ -> invalid_arg "Reduce: not a capacitor"

let other_end (c : Netlist.circuit) i n =
  match c.Netlist.elements.(i) with
  | Element.Resistor { np; nn; _ } -> if np = n then nn else np
  | _ -> invalid_arg "Reduce: not a resistor"

let element_name (c : Netlist.circuit) i = Element.name c.Netlist.elements.(i)

(* ---------------------------------------------------------------- *)
(* rebuilding                                                        *)
(* ---------------------------------------------------------------- *)

let rebind map e =
  let m n = map.(n) in
  match e with
  | Element.Resistor r -> Element.Resistor { r with np = m r.np; nn = m r.nn }
  | Element.Capacitor r -> Element.Capacitor { r with np = m r.np; nn = m r.nn }
  | Element.Inductor r -> Element.Inductor { r with np = m r.np; nn = m r.nn }
  | Element.Vsource r -> Element.Vsource { r with np = m r.np; nn = m r.nn }
  | Element.Isource r -> Element.Isource { r with np = m r.np; nn = m r.nn }
  | Element.Vcvs r ->
    Element.Vcvs
      { r with np = m r.np; nn = m r.nn; cp = m r.cp; cn = m r.cn }
  | Element.Vccs r ->
    Element.Vccs
      { r with np = m r.np; nn = m r.nn; cp = m r.cp; cn = m r.cn }
  | Element.Ccvs r -> Element.Ccvs { r with np = m r.np; nn = m r.nn }
  | Element.Cccs r -> Element.Cccs { r with np = m r.np; nn = m r.nn }
  | Element.Mutual _ as e -> e

(* One round's edits: elements to drop, in-place replacements
   (parallel merges, old-id space), appended elements (old-id space),
   nodes eliminated.  Rebuilds through a fresh builder, pre-interning
   surviving node names in old id order so surviving ids stay in the
   same relative order; returns the circuit and the old->new map. *)
let rebuild (c : Netlist.circuit) ~eliminated ~drop ~replace ~appends =
  let b = Netlist.create () in
  let map = Array.make c.Netlist.node_count (-1) in
  for n = 0 to c.Netlist.node_count - 1 do
    if not eliminated.(n) then
      map.(n) <- Netlist.node b c.Netlist.node_names.(n)
  done;
  Array.iteri
    (fun i e ->
      if not drop.(i) then begin
        let e =
          match Hashtbl.find_opt replace i with Some e' -> e' | None -> e
        in
        Netlist.add ?line:(Netlist.element_line c i) b (rebind map e)
      end)
    c.Netlist.elements;
  List.iter (fun e -> Netlist.add b (rebind map e)) appends;
  (Netlist.freeze b, map)

(* ---------------------------------------------------------------- *)
(* transform families (one per round)                                *)
(* ---------------------------------------------------------------- *)

type edits = {
  e_drop : bool array;
  e_replace : (int, Element.t) Hashtbl.t;
  mutable e_appends : Element.t list;  (* reversed; old-id space *)
  e_eliminated : bool array;
  mutable e_report : report;
}

let fresh_edits (c : Netlist.circuit) =
  { e_drop = Array.make (Array.length c.Netlist.elements) false;
    e_replace = Hashtbl.create 8;
    e_appends = [];
    e_eliminated = Array.make c.Netlist.node_count false;
    e_report = empty_report }

let changed ed = ed.e_report <> empty_report

(* parallels: merge every group's mergeable members into the first *)
let apply_parallels c plans ed =
  let by_name = Hashtbl.create 32 in
  Array.iteri
    (fun i e -> Hashtbl.replace by_name (Element.name e) i)
    c.Netlist.elements;
  let coupled = coupled_inductors c in
  let mergeable e =
    match e with
    | Element.Resistor _ -> true
    | Element.Capacitor { ic; _ } -> ic = None
    | Element.Inductor { name; ic; _ } ->
      ic = None && not (List.mem (lc name) coupled)
    | _ -> false
  in
  List.iter
    (fun plan ->
      match plan with
      | Parallel { names; _ } -> (
        let idxs =
          List.filter_map (fun n -> Hashtbl.find_opt by_name n) names
        in
        let ok =
          List.filter (fun i -> mergeable c.Netlist.elements.(i)) idxs
        in
        match ok with
        | keep :: (_ :: _ as rest) ->
          let merged =
            match c.Netlist.elements.(keep) with
            | Element.Resistor rr ->
              let g =
                List.fold_left
                  (fun acc i -> acc +. (1. /. resistance c i))
                  0. ok
              in
              Element.Resistor { rr with r = 1. /. g }
            | Element.Capacitor cc ->
              let v =
                List.fold_left (fun acc i -> acc +. capacitance c i) 0. ok
              in
              Element.Capacitor { cc with c = v }
            | Element.Inductor ll ->
              let inv =
                List.fold_left
                  (fun acc i ->
                    match c.Netlist.elements.(i) with
                    | Element.Inductor { l; _ } -> acc +. (1. /. l)
                    | _ -> acc)
                  0. ok
              in
              Element.Inductor { ll with l = 1. /. inv }
            | e -> e
          in
          Hashtbl.replace ed.e_replace keep merged;
          List.iter (fun i -> ed.e_drop.(i) <- true) rest;
          ed.e_report <-
            add_report ed.e_report
              { empty_report with
                parallel_merges = 1;
                elements_eliminated = List.length rest }
        | _ -> ())
      | _ -> ())
    plans

(* chains: walk each eliminable sub-run from its lowest-index boundary
   resistor, then either collapse a capacitor-free run to one resistor
   (exact) or lump the run to a T section (first-moment preserving at
   both ports) *)
let apply_chains c plans ~protected ed =
  let rinc = resistor_incidence c in
  let gcaps = grounded_cap_incidence c in
  (* regroup a plan's surviving members into connected sub-runs *)
  let sub_runs members =
    let ok = List.filter (fun n -> not protected.(n)) members in
    let in_set = Hashtbl.create 8 in
    List.iter (fun n -> Hashtbl.replace in_set n ()) ok;
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun n ->
        if Hashtbl.mem seen n then None
        else begin
          let acc = ref [] in
          let q = Queue.create () in
          Queue.add n q;
          Hashtbl.replace seen n ();
          while not (Queue.is_empty q) do
            let u = Queue.pop q in
            acc := u :: !acc;
            List.iter
              (fun i ->
                let v = other_end c i u in
                if Hashtbl.mem in_set v && not (Hashtbl.mem seen v) then begin
                  Hashtbl.replace seen v ();
                  Queue.add v q
                end)
              rinc.(u)
          done;
          Some (List.sort compare !acc)
        end)
      ok
  in
  let apply_run members =
    let in_run = Hashtbl.create 8 in
    List.iter (fun n -> Hashtbl.replace in_run n ()) members;
    let mem n = Hashtbl.mem in_run n in
    (* boundary resistors: exactly one endpoint inside the run *)
    let boundary =
      List.concat_map
        (fun n ->
          List.filter_map
            (fun i ->
              let o = other_end c i n in
              if mem o then None else Some (i, n, o))
            rinc.(n))
        members
      |> List.sort compare
    in
    match boundary with
    | [ (ia, na, a); (ib, _, b) ] when a <> b -> (
      (* walk from A accumulating cumulative resistance per member *)
      let walk () =
        let rec go acc cur prev s =
          let acc = (cur, s) :: acc in
          match List.filter (fun i -> i <> prev) rinc.(cur) with
          | [ i ] ->
            let o = other_end c i cur in
            if mem o then go acc o i (s +. resistance c i)
            else (List.rev acc, s +. resistance c i)
          | _ -> raise Exit
        in
        go [] na ia (resistance c ia)
      in
      match walk () with
      | exception Exit -> ()
      | stations, r_tot ->
        if List.length stations <> List.length members then ()
        else begin
          let k = List.length members in
          let cap_idxs = List.concat_map (fun n -> gcaps.(n)) members in
          let c_tot =
            List.fold_left (fun acc i -> acc +. capacitance c i) 0. cap_idxs
          in
          let n_res = k + 1 in
          (* every resistor incident to a member is consumed: internal
             ones from both sides, boundary ones once *)
          let res_idxs =
            List.concat_map (fun n -> rinc.(n)) members
            |> List.sort_uniq compare
          in
          if c_tot = 0. then begin
            (* capacitor-free run: exact series merge to one resistor *)
            List.iter (fun i -> ed.e_drop.(i) <- true) res_idxs;
            List.iter (fun n -> ed.e_eliminated.(n) <- true) members;
            ed.e_appends <-
              Element.Resistor
                { name = element_name c ia; np = a; nn = b; r = r_tot }
              :: ed.e_appends;
            ed.e_report <-
              add_report ed.e_report
                { empty_report with
                  series_merges = 1;
                  nodes_eliminated = k;
                  elements_eliminated = n_res - 1 }
          end
          else if k >= 2 then begin
            (* T lump: M keeps the lowest member's identity *)
            let m = List.hd members in
            let weighted =
              List.fold_left
                (fun acc (n, s) ->
                  let cn =
                    List.fold_left
                      (fun a i -> a +. capacitance c i)
                      0. gcaps.(n)
                  in
                  acc +. (cn *. s))
                0. stations
            in
            let r_left = weighted /. c_tot in
            let r_right = r_tot -. r_left in
            List.iter (fun i -> ed.e_drop.(i) <- true) res_idxs;
            List.iter (fun i -> ed.e_drop.(i) <- true) cap_idxs;
            List.iter
              (fun n -> if n <> m then ed.e_eliminated.(n) <- true)
              members;
            ed.e_appends <-
              Element.Capacitor
                { name = element_name c (List.hd cap_idxs);
                  np = m;
                  nn = Element.ground;
                  c = c_tot;
                  ic = None }
              :: Element.Resistor
                   { name = element_name c ib; np = m; nn = b; r = r_right }
              :: Element.Resistor
                   { name = element_name c ia; np = a; nn = m; r = r_left }
              :: ed.e_appends;
            ed.e_report <-
              add_report ed.e_report
                { empty_report with
                  chain_lumps = 1;
                  nodes_eliminated = k - 1;
                  elements_eliminated =
                    n_res + List.length cap_idxs - 3 }
          end
          (* k = 1 with capacitance: the T lump is the identity *)
        end)
    | _ -> ()
    (* cycles (no boundary) and runs closing on one external node are
       refused *)
  in
  List.iter
    (fun plan ->
      match plan with
      | Chain { members } -> List.iter apply_run (sub_runs members)
      | _ -> ())
    plans

(* stars: merge all eliminable legs of a hub into one leg that matches
   the first two moments of their summed driving admittance *)
let apply_stars c plans ~protected ed =
  let rinc = resistor_incidence c in
  let gcaps = grounded_cap_incidence c in
  List.iter
    (fun plan ->
      match plan with
      | Star { hub; legs } -> (
        let elig = List.filter (fun l -> not protected.(l)) legs in
        match elig with
        | keep :: _ :: _ ->
          let leg_data =
            List.map
              (fun l ->
                let ri =
                  match rinc.(l) with
                  | [ i ] -> i
                  | _ -> invalid_arg "Reduce: star leaf with /= 1 resistor"
                in
                let ci =
                  List.fold_left
                    (fun acc i -> acc +. capacitance c i)
                    0. gcaps.(l)
                in
                (l, ri, ci))
              elig
          in
          let c_tot =
            List.fold_left (fun acc (_, _, ci) -> acc +. ci) 0. leg_data
          in
          let r_eq =
            List.fold_left
              (fun acc (_, ri, ci) -> acc +. (resistance c ri *. ci *. ci))
              0. leg_data
            /. (c_tot *. c_tot)
          in
          let cap_idxs = List.concat_map (fun l -> gcaps.(l)) elig in
          let keep_r =
            match rinc.(keep) with [ i ] -> i | _ -> assert false
          in
          List.iter (fun (_, ri, _) -> ed.e_drop.(ri) <- true) leg_data;
          List.iter (fun i -> ed.e_drop.(i) <- true) cap_idxs;
          List.iter
            (fun l -> if l <> keep then ed.e_eliminated.(l) <- true)
            elig;
          ed.e_appends <-
            Element.Capacitor
              { name = element_name c (List.hd (List.sort compare cap_idxs));
                np = keep;
                nn = Element.ground;
                c = c_tot;
                ic = None }
            :: Element.Resistor
                 { name = element_name c keep_r;
                   np = hub;
                   nn = keep;
                   r = r_eq }
            :: ed.e_appends;
          ed.e_report <-
            add_report ed.e_report
              { empty_report with
                star_merges = 1;
                nodes_eliminated = List.length elig - 1;
                elements_eliminated =
                  List.length leg_data + List.length cap_idxs - 2 }
        | _ -> ())
      | _ -> ())
    plans

(* ---------------------------------------------------------------- *)
(* driver                                                            *)
(* ---------------------------------------------------------------- *)

(* one round: the first family with applicable work wins *)
let round ~ports c =
  let protected = protected_nodes ~ports c in
  let plans = analyze c in
  let try_family apply =
    let ed = fresh_edits c in
    apply ed;
    if changed ed then
      let circuit, map =
        rebuild c ~eliminated:ed.e_eliminated ~drop:ed.e_drop
          ~replace:ed.e_replace
          ~appends:(List.rev ed.e_appends)
      in
      Some (circuit, map, ed.e_report)
    else None
  in
  match try_family (apply_parallels c plans) with
  | Some _ as r -> r
  | None -> (
    match try_family (apply_chains c plans ~protected) with
    | Some _ as r -> r
    | None -> try_family (apply_stars c plans ~protected))

let reduce ?(ports = []) (c0 : Netlist.circuit) =
  let total_map = Array.init c0.Netlist.node_count (fun i -> i) in
  let rec loop c ports rep =
    match round ~ports c with
    | None -> (c, rep)
    | Some (c', map, drep) ->
      Array.iteri
        (fun i m -> if m >= 0 then total_map.(i) <- map.(m))
        total_map;
      let ports' =
        List.filter_map
          (fun p ->
            if p >= 0 && p < Array.length map && map.(p) >= 0 then
              Some map.(p)
            else None)
          ports
      in
      loop c' ports' (add_report rep drep)
  in
  let circuit, report = loop c0 ports empty_report in
  { circuit; node_map = total_map; report }
