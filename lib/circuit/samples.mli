(** The paper's example circuits.

    The published figures give schematics but not element values (the
    originals are unrecoverable from the scanned figures), so each
    builder here uses values chosen to reproduce the *published
    characteristics* — pole spreads, error-term ordering, delay shifts —
    as documented per function and in DESIGN.md.  All builders return
    the frozen circuit plus the named observation nodes. *)

type fig4 = {
  circuit : Netlist.circuit;
  n1 : Element.node;
  n2 : Element.node;
  n3 : Element.node;
  n4 : Element.node;  (** the observed output, across C4 *)
}

val fig4 : ?wave:Element.waveform -> unit -> fig4
(** The 4-capacitor RC tree of Fig. 4: driver V1 -> R1 -> n1 branching
    to (R2 -> n2) and (R3 -> n3 -> R4 -> n4), each node loaded by a
    grounded capacitor.  Values: R = 1 kOhm each, C = 0.1 uF each, so
    the Elmore delay at n4 is [R1*(C1+C2+C3+C4) + R3*(C3+C4) + R4*C4 =
    0.7 ms] and the paper's 1 ms-ramp residue [r*tau = 3.5 V]
    (eq. 64) is matched exactly.  Default input: 5 V ideal step. *)

val fig4_elmore_n4 : float
(** The closed-form Elmore delay at [n4] for the values above. *)

val fig9 : ?wave:Element.waveform -> unit -> fig4
(** Fig. 9: the Fig. 4 tree with a grounded resistor R5 at [n4].  The
    paper uses R5 = 4 Ohm against Ohm-scale tree resistances; we keep
    the same ratio against our kOhm-scale tree (R5 = 4 kOhm), giving a
    non-trivial steady state of [5 * 4/(3+4) = 2.857 V] at [n4]. *)

type fig16 = {
  circuit : Netlist.circuit;
  nodes : Element.node array;  (** [nodes.(k)] carries capacitor C(k+1) *)
  output : Element.node;  (** the node across C7 *)
  shared : Element.node;  (** the node across C6, the charge-sharing site *)
}

val fig16 : ?v_c6 : float -> ?wave:Element.waveform -> unit -> fig16
(** Fig. 16: a 10-capacitor MOS-interconnect RC tree with widely
    varying time constants (the paper's Table I spreads the actual
    poles over four decades, -1.78e9 to -1.64e13 rad/s).  [v_c6]
    (default 0) sets the nonequilibrium initial voltage on C6 used in
    Section 5.2.  Default input: 5 V ramp with 1 ns rise time
    (Section 5.1). *)

val fig22 : ?v_c6:float -> ?wave:Element.waveform -> unit -> fig16 * Element.node
(** Fig. 22: Fig. 16 plus a floating coupling capacitor C11 from the
    output node to a victim node, and C12 from the victim to ground
    (Section 5.3).  Returns the circuit and the victim node. *)

type fig25 = {
  circuit : Netlist.circuit;
  out : Element.node;  (** across C3 *)
}

val fig25 : ?wave:Element.waveform -> unit -> fig25
(** Fig. 25: a three-section underdamped RLC ladder with three complex
    pole pairs (Table II).  Default input: 5 V ideal step. *)

val fig8 : unit -> Netlist.circuit
(** Fig. 8: an RLC ladder whose links are all capacitors, so the
    steady-state solution is explicit (Section 4.2). *)

val random_rc_tree :
  ?seed:int ->
  ?wave:Element.waveform ->
  ?ic_frac:float ->
  n:int ->
  unit ->
  Netlist.circuit * Element.node
(** A random [n]-capacitor RC tree driven by a 1 V step, for property
    tests and scaling benchmarks; returns the circuit and a leaf
    observation node.  Resistances are 50-2000 Ohm, capacitances
    1-500 fF.  [wave] replaces the driving waveform; [ic_frac]
    (default 0) gives each capacitor that probability of carrying a
    random nonequilibrium initial voltage in [-2.5, 2.5] V (the
    Section 5.2 charge-sharing configuration).  With the defaults the
    random stream is unchanged, so a given [seed] builds the same
    circuit it always has. *)

val random_coupled_tree :
  ?seed:int ->
  ?wave:Element.waveform ->
  n:int ->
  couplings:int ->
  unit ->
  Netlist.circuit * Element.node
(** A random RC tree plus [couplings] floating coupling capacitors in
    the Fig. 22 pattern: each either bridges two driven tree nodes or
    hangs a capacitively loaded victim node off an aggressor — a
    DC-floating group resolved by charge conservation (Section 3.1).
    The observation node is a victim when one exists (chosen by the
    seeded stream), otherwise the tree leaf. *)

val random_rlc_ladder :
  ?seed:int ->
  ?wave:Element.waveform ->
  sections:int ->
  unit ->
  Netlist.circuit * Element.node
(** A random series-R/series-L/shunt-C ladder in the Fig. 25 value
    regime (tens of ohms, nanohenries, picofarads): underdamped complex
    pole pairs, strictly stable.  Returns the circuit and the final
    section's output node. *)

val random_rc_mesh :
  ?seed:int -> n:int -> extra:int -> unit -> Netlist.circuit * Element.node
(** A random RC tree with [extra] additional resistors closing loops —
    an RC mesh in the sense of Section 2.2. *)

val rc_grid :
  ?seed:int ->
  ?wave:Element.waveform ->
  rows:int ->
  cols:int ->
  unit ->
  Netlist.circuit * Element.node
(** A [rows] x [cols] power/clock-style RC grid: every node carries a
    grounded capacitor (5-50 fF) and connects to its right and lower
    neighbors through 50-200 Ohm resistors; a 25 Ohm driver feeds one
    corner.  Heavily looped (the Section 2.2 mesh case, at scale) —
    the building block for the 10k-100k-element scaling studies.
    Returns the circuit and the far-corner observation node.  Values
    come from the seeded stream, so a given [seed] always builds the
    identical circuit. *)

val rc_ladder :
  ?seed:int ->
  ?wave:Element.waveform ->
  length:int ->
  fanout:int ->
  unit ->
  Netlist.circuit * Element.node
(** A distributed-wire model in the shape [Reduce] targets: a driver
    feeding a [length]-section series RC trunk (every interior node
    carries exactly two resistors plus a grounded capacitor — the I201
    chain pattern) ending in a hub with [fanout] single-resistor RC
    stub legs (the I202 star pattern).  Values come from the seeded
    stream.  Returns the circuit and the first leg's end node; with
    that node as the only preserved port, reduction lumps the trunk to
    a T-section and merges the remaining legs, eliminating most of the
    ladder.  The standing example for reduction tests and the
    [sta_reduce] bench. *)
