type builder = {
  mutable names : string list; (* reversed list of interned names *)
  tbl : (string, int) Hashtbl.t;
  mutable next : int;
  mutable elems : (Element.t * int) list; (* reversed, with source lines *)
}

type circuit = {
  node_count : int;
  elements : Element.t array;
  node_names : string array;
  element_lines : int array;
}

let normalize_node_name s =
  let s = String.lowercase_ascii (String.trim s) in
  if s = "0" || s = "gnd" || s = "ground" then "0" else s

let create () =
  let b =
    { names = []; tbl = Hashtbl.create 16; next = 0; elems = [] }
  in
  (* ground is always node 0 *)
  Hashtbl.add b.tbl "0" 0;
  b.names <- [ "0" ];
  b.next <- 1;
  b

let node b raw =
  let key = normalize_node_name raw in
  match Hashtbl.find_opt b.tbl key with
  | Some id -> id
  | None ->
    let id = b.next in
    Hashtbl.add b.tbl key id;
    b.names <- key :: b.names;
    b.next <- id + 1;
    id

(* [line] is the defining source line in the deck the element came
   from, when there is one; 0 means "no location" (programmatic
   construction) *)
let add ?(line = 0) b e = b.elems <- (e, line) :: b.elems

let add_r ?line b name np nn r =
  add ?line b (Element.Resistor { name; np = node b np; nn = node b nn; r })

let add_c ?ic ?line b name np nn c =
  add ?line b
    (Element.Capacitor { name; np = node b np; nn = node b nn; c; ic })

let add_l ?ic ?line b name np nn l =
  add ?line b
    (Element.Inductor { name; np = node b np; nn = node b nn; l; ic })

let add_v ?line b name np nn wave =
  add ?line b (Element.Vsource { name; np = node b np; nn = node b nn; wave })

let add_i ?line b name np nn wave =
  add ?line b (Element.Isource { name; np = node b np; nn = node b nn; wave })

let add_vcvs ?line b name np nn cp cn gain =
  add ?line b
    (Element.Vcvs
       { name;
         np = node b np;
         nn = node b nn;
         cp = node b cp;
         cn = node b cn;
         gain })

let add_vccs ?line b name np nn cp cn gm =
  add ?line b
    (Element.Vccs
       { name;
         np = node b np;
         nn = node b nn;
         cp = node b cp;
         cn = node b cn;
         gm })

let add_ccvs ?line b name np nn vctrl r =
  add ?line b (Element.Ccvs { name; np = node b np; nn = node b nn; vctrl; r })

let add_cccs ?line b name np nn vctrl gain =
  add ?line b
    (Element.Cccs { name; np = node b np; nn = node b nn; vctrl; gain })

let add_k ?line b name l1 l2 k = add ?line b (Element.Mutual { name; l1; l2; k })

let check_value ~what name v =
  if not (Float.is_finite v) then
    invalid_arg (Printf.sprintf "Netlist: %s %s has non-finite value" what name);
  if v <= 0. then
    invalid_arg
      (Printf.sprintf "Netlist: %s %s must have a positive value" what name)

let check_ic ~what name ic =
  match ic with
  | Some v when not (Float.is_finite v) ->
    invalid_arg
      (Printf.sprintf "Netlist: %s %s has a non-finite initial condition"
         what name)
  | _ -> ()

let freeze b =
  let tagged = Array.of_list (List.rev b.elems) in
  let elements = Array.map fst tagged in
  let element_lines = Array.map snd tagged in
  if Array.length elements = 0 then invalid_arg "Netlist: empty circuit";
  let seen = Hashtbl.create 16 in
  let vsource_names = Hashtbl.create 8 in
  Array.iter
    (fun e ->
      let n = String.lowercase_ascii (Element.name e) in
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Netlist: duplicate element name %s" n);
      Hashtbl.add seen n ();
      match e with
      | Element.Vsource { name; _ } ->
        Hashtbl.add vsource_names (String.lowercase_ascii name) ()
      | _ -> ())
    elements;
  let inductor_names = Hashtbl.create 4 in
  Array.iter
    (fun e ->
      match e with
      | Element.Inductor { name; _ } ->
        Hashtbl.add inductor_names (String.lowercase_ascii name) ()
      | _ -> ())
    elements;
  Array.iter
    (fun e ->
      match e with
      | Element.Resistor { name; r; _ } -> check_value ~what:"resistor" name r
      | Element.Capacitor { name; c; ic; _ } ->
        check_value ~what:"capacitor" name c;
        check_ic ~what:"capacitor" name ic
      | Element.Inductor { name; l; ic; _ } ->
        check_value ~what:"inductor" name l;
        check_ic ~what:"inductor" name ic
      | Element.Ccvs { vctrl; name; _ } | Element.Cccs { vctrl; name; _ } ->
        if not (Hashtbl.mem vsource_names (String.lowercase_ascii vctrl)) then
          invalid_arg
            (Printf.sprintf
               "Netlist: %s controls through unknown voltage source %s" name
               vctrl)
      | Element.Mutual { name; l1; l2; k } ->
        if not (k > 0. && k < 1.) then
          invalid_arg
            (Printf.sprintf
               "Netlist: coupling %s must have 0 < k < 1" name);
        List.iter
          (fun l ->
            if not (Hashtbl.mem inductor_names (String.lowercase_ascii l))
            then
              invalid_arg
                (Printf.sprintf "Netlist: %s couples unknown inductor %s"
                   name l))
          [ l1; l2 ];
        if String.lowercase_ascii l1 = String.lowercase_ascii l2 then
          invalid_arg
            (Printf.sprintf "Netlist: %s couples an inductor to itself" name)
      | Element.Vsource _ | Element.Isource _ | Element.Vcvs _
      | Element.Vccs _ -> ())
    elements;
  { node_count = b.next;
    elements;
    node_names = Array.of_list (List.rev b.names);
    element_lines }

let node_name c n = c.node_names.(n)

let element_line c idx =
  if idx < 0 || idx >= Array.length c.element_lines then None
  else
    let ln = c.element_lines.(idx) in
    if ln > 0 then Some ln else None

let find_node c name =
  let key = normalize_node_name name in
  let found = ref None in
  Array.iteri (fun i n -> if n = key then found := Some i) c.node_names;
  !found

let find_element c name =
  let key = String.lowercase_ascii name in
  Array.fold_left
    (fun acc e ->
      match acc with
      | Some _ -> acc
      | None ->
        if String.lowercase_ascii (Element.name e) = key then Some e else None)
    None c.elements

let element_count c = Array.length c.elements

let filter_indexed pred c =
  Array.to_list c.elements
  |> List.mapi (fun i e -> (i, e))
  |> List.filter (fun (_, e) -> pred e)

let caps c =
  filter_indexed (function Element.Capacitor _ -> true | _ -> false) c

let inductors c =
  filter_indexed (function Element.Inductor _ -> true | _ -> false) c

let sources c =
  filter_indexed
    (function Element.Vsource _ | Element.Isource _ -> true | _ -> false)
    c

let pp ppf c =
  Format.fprintf ppf "@[<v>circuit: %d nodes, %d elements@," c.node_count
    (Array.length c.elements);
  Array.iter (fun e -> Format.fprintf ppf "  %a@," Element.pp e) c.elements;
  Format.fprintf ppf "@]"
