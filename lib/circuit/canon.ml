(* Relabeling-invariant circuit hashing (see canon.mli).  The two
   hashes are Weisfeiler-Leman color refinement runs differing only in
   whether element values are folded into the per-element signatures;
   the exact signature is a separate, order-preserving serialization
   used as the collision guard. *)

let add_float buf x =
  (* IEEE-754 bit pattern: distinguishes values that print alike and
     keeps -0.0 /= 0.0 and NaN payloads stable *)
  Buffer.add_string buf (Printf.sprintf "%Lx;" (Int64.bits_of_float x))

let add_wave buf (w : Element.waveform) =
  match w with
  | Dc v ->
    Buffer.add_char buf 'D';
    add_float buf v
  | Step { v0; v1 } ->
    Buffer.add_char buf 'S';
    add_float buf v0;
    add_float buf v1
  | Ramp { v0; v1; t_delay; t_rise } ->
    Buffer.add_char buf 'M';
    add_float buf v0;
    add_float buf v1;
    add_float buf t_delay;
    add_float buf t_rise
  | Pwl pts ->
    Buffer.add_char buf 'P';
    List.iter
      (fun (t, v) ->
        add_float buf t;
        add_float buf v)
      pts;
    Buffer.add_char buf '.'

let add_ic buf = function
  | None -> Buffer.add_char buf 'n'
  | Some v ->
    Buffer.add_char buf 's';
    add_float buf v

(* Kind tag plus, when [with_values], the element's numeric payload.
   Names and node ids are deliberately absent. *)
let add_static ~with_values buf (e : Element.t) =
  match e with
  | Resistor { r; _ } ->
    Buffer.add_char buf 'R';
    if with_values then add_float buf r
  | Capacitor { c; ic; _ } ->
    Buffer.add_char buf 'C';
    if with_values then begin
      add_float buf c;
      add_ic buf ic
    end
  | Inductor { l; ic; _ } ->
    Buffer.add_char buf 'L';
    if with_values then begin
      add_float buf l;
      add_ic buf ic
    end
  | Vsource { wave; _ } ->
    Buffer.add_char buf 'V';
    if with_values then add_wave buf wave
  | Isource { wave; _ } ->
    Buffer.add_char buf 'I';
    if with_values then add_wave buf wave
  | Vcvs { gain; _ } ->
    Buffer.add_char buf 'E';
    if with_values then add_float buf gain
  | Vccs { gm; _ } ->
    Buffer.add_char buf 'G';
    if with_values then add_float buf gm
  | Ccvs { r; _ } ->
    Buffer.add_char buf 'H';
    if with_values then add_float buf r
  | Cccs { gain; _ } ->
    Buffer.add_char buf 'F';
    if with_values then add_float buf gain
  | Mutual { k; _ } ->
    Buffer.add_char buf 'K';
    if with_values then add_float buf k

(* Connection ports in the element's defining order.  Ordered on
   purpose: treating [np]/[nn] as interchangeable for symmetric
   elements would need sign-aware canonicalization for the rest; the
   ordered treatment is sound for a cache (misses, never wrong hits). *)
let ports (e : Element.t) =
  match e with
  | Resistor { np; nn; _ }
  | Capacitor { np; nn; _ }
  | Inductor { np; nn; _ }
  | Vsource { np; nn; _ }
  | Isource { np; nn; _ }
  | Ccvs { np; nn; _ }
  | Cccs { np; nn; _ } ->
    [| np; nn |]
  | Vcvs { np; nn; cp; cn; _ } | Vccs { np; nn; cp; cn; _ } ->
    [| np; nn; cp; cn |]
  | Mutual _ -> [||]

(* Elements referenced by name rather than by node. *)
let refs (e : Element.t) =
  match e with
  | Ccvs { vctrl; _ } | Cccs { vctrl; _ } -> [ vctrl ]
  | Mutual { l1; l2; _ } -> [ l1; l2 ]
  | _ -> []

let name_index (c : Netlist.circuit) =
  let tbl = Hashtbl.create 16 in
  Array.iteri
    (fun i e -> Hashtbl.replace tbl (String.lowercase_ascii (Element.name e)) i)
    c.elements;
  tbl

(* One element's contribution under the current node coloring: static
   signature, port colors in port order, and for each named reference
   the referenced element's static signature and port colors. *)
let elem_context ~esig ~by_name ~color (c : Netlist.circuit) i =
  let b = Buffer.create 64 in
  let add_elem j =
    Buffer.add_string b esig.(j);
    Array.iter
      (fun v ->
        Buffer.add_string b color.(v);
        Buffer.add_char b ',')
      (ports c.elements.(j))
  in
  add_elem i;
  List.iter
    (fun r ->
      Buffer.add_char b '>';
      match Hashtbl.find_opt by_name (String.lowercase_ascii r) with
      | Some j -> add_elem j
      | None -> Buffer.add_char b '?')
    (refs c.elements.(i));
  Buffer.contents b

let distinct_count colors =
  List.length (List.sort_uniq String.compare (Array.to_list colors))

let static_sigs ~with_values elems =
  Array.map
    (fun e ->
      let b = Buffer.create 16 in
      add_static ~with_values b e;
      Buffer.contents b)
    elems

(* per-node incidence: (element index, port role) *)
let incidence n elems =
  let inc = Array.make n [] in
  Array.iteri
    (fun i e ->
      Array.iteri (fun role v -> inc.(v) <- (i, role) :: inc.(v)) (ports e))
    elems;
  inc

(* One refinement run over prebuilt tables, so {!hashes} can share the
   structural setup between the pattern and exact runs. *)
let wl_hash_with ~by_name ~inc ~esig (c : Netlist.circuit) =
  let n = c.node_count in
  let elems = c.elements in
  let color =
    Array.init n (fun v -> if v = Element.ground then "g" else "n")
  in
  (* Refine until the partition stops splitting.  The count sequence is
     isomorphism-invariant, so relabeled copies run the same number of
     rounds and end with identical color multisets. *)
  let rec refine rounds prev =
    if rounds > 0 then begin
      let ctx = Array.mapi (fun i _ -> elem_context ~esig ~by_name ~color c i) elems in
      let next =
        Array.mapi
          (fun v old ->
            let contribs =
              List.sort String.compare
                (List.map
                   (fun (i, role) -> string_of_int role ^ "@" ^ ctx.(i))
                   inc.(v))
            in
            Digest.to_hex
              (Digest.string (old ^ "|" ^ String.concat ";" contribs)))
          color
      in
      Array.blit next 0 color 0 n;
      let cnt = distinct_count color in
      if cnt > prev then refine (rounds - 1) cnt
    end
  in
  refine n (distinct_count color);
  let b = Buffer.create 256 in
  Buffer.add_string b (string_of_int n);
  Buffer.add_char b '#';
  List.iter
    (fun col ->
      Buffer.add_string b col;
      Buffer.add_char b ' ')
    (List.sort String.compare (Array.to_list color));
  Buffer.add_char b '#';
  let ctx =
    Array.to_list
      (Array.mapi (fun i _ -> elem_context ~esig ~by_name ~color c i) elems)
  in
  List.iter
    (fun s ->
      Buffer.add_string b s;
      Buffer.add_char b '\n')
    (List.sort String.compare ctx);
  Digest.to_hex (Digest.string (Buffer.contents b))

let wl_hash ~with_values (c : Netlist.circuit) =
  wl_hash_with ~by_name:(name_index c)
    ~inc:(incidence c.node_count c.elements)
    ~esig:(static_sigs ~with_values c.elements)
    c

let pattern_hash c = wl_hash ~with_values:false c

let exact_hash c = wl_hash ~with_values:true c

(* The signature body over a prebuilt name index; [vsig] is the
   with-values static signature of each element (shared with the exact
   refinement run by {!hashes}). *)
let signature_with ~by_name ~vsig (c : Netlist.circuit) =
  let b = Buffer.create 512 in
  Buffer.add_string b (string_of_int c.node_count);
  Buffer.add_char b '#';
  Array.iteri
    (fun i e ->
      Buffer.add_string b vsig.(i);
      Array.iter
        (fun v ->
          Buffer.add_string b (string_of_int v);
          Buffer.add_char b '.')
        (ports e);
      List.iter
        (fun r ->
          Buffer.add_char b '>';
          match Hashtbl.find_opt by_name (String.lowercase_ascii r) with
          | Some j -> Buffer.add_string b (string_of_int j)
          | None -> Buffer.add_char b '?')
        (refs e);
      Buffer.add_char b '\n')
    c.elements;
  Buffer.contents b

let exact_signature (c : Netlist.circuit) =
  signature_with ~by_name:(name_index c)
    ~vsig:(static_sigs ~with_values:true c.elements)
    c

type hashes = {
  pattern : string;
  exact : string;
  signature : string;
}

(* The ECO hot path re-canons a net on every re-solve, so the three
   forms share one setup: the name index and node incidence are built
   once (they do not depend on values), and the with-values static
   signatures feed both the exact refinement and the signature
   serialization.  Each output is string-identical to its single-form
   function — only the redundant setup work is removed. *)
let hashes (c : Netlist.circuit) =
  let by_name = name_index c in
  let inc = incidence c.node_count c.elements in
  let psig = static_sigs ~with_values:false c.elements in
  let vsig = static_sigs ~with_values:true c.elements in
  { pattern = wl_hash_with ~by_name ~inc ~esig:psig c;
    exact = wl_hash_with ~by_name ~inc ~esig:vsig c;
    signature = signature_with ~by_name ~vsig c }
