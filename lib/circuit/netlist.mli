(** Netlist builder and frozen circuits.

    A [builder] interns node names ("0", "gnd", "GND" all map to the
    ground node) and accumulates elements; [freeze] validates the
    result into an immutable [circuit] consumed by topology analysis,
    MNA assembly, the transient simulator and AWE. *)

type builder

type circuit = {
  node_count : int;  (** nodes are [0 .. node_count - 1]; 0 is ground *)
  elements : Element.t array;
  node_names : string array;  (** canonical name per node id *)
  element_lines : int array;
      (** per-element defining source line in the originating deck
          ([0] when the element was built programmatically); use
          {!element_line} for option-typed access *)
}

val create : unit -> builder

val node : builder -> string -> Element.node
(** Intern a node name (idempotent). *)

val node_name : circuit -> Element.node -> string

val element_line : circuit -> int -> int option
(** Deck line of element [idx], when it came from a parsed deck. *)

val find_node : circuit -> string -> Element.node option

val find_element : circuit -> string -> Element.t option
(** Case-insensitive element lookup by name. *)

val add : ?line:int -> builder -> Element.t -> unit
(** Add a fully constructed element; rarely needed directly.  [line]
    records the defining deck line for diagnostics. *)

val add_r : ?line:int -> builder -> string -> string -> string -> float -> unit
(** [add_r b name np nn ohms] *)

val add_c :
  ?ic:float -> ?line:int -> builder -> string -> string -> string -> float ->
  unit

val add_l :
  ?ic:float -> ?line:int -> builder -> string -> string -> string -> float ->
  unit

val add_v :
  ?line:int -> builder -> string -> string -> string -> Element.waveform ->
  unit

val add_i :
  ?line:int -> builder -> string -> string -> string -> Element.waveform ->
  unit

val add_vcvs :
  ?line:int ->
  builder -> string -> string -> string -> string -> string -> float -> unit
(** [add_vcvs b name np nn cp cn gain] *)

val add_vccs :
  ?line:int ->
  builder -> string -> string -> string -> string -> string -> float -> unit

val add_ccvs :
  ?line:int -> builder -> string -> string -> string -> string -> float -> unit
(** [add_ccvs b name np nn vctrl r] *)

val add_cccs :
  ?line:int -> builder -> string -> string -> string -> string -> float -> unit

val add_k : ?line:int -> builder -> string -> string -> string -> float -> unit
(** [add_k b name l1 l2 k] couples two named inductors with mutual
    coefficient [0 < k < 1]. *)

val freeze : builder -> circuit
(** Validates and returns the immutable circuit.  Raises
    [Invalid_argument] when: an element value is non-positive (R, C, L)
    or not finite; two elements share a name; a controlled source
    references an unknown controlling voltage source; or the circuit is
    empty. *)

val element_count : circuit -> int

val caps : circuit -> (int * Element.t) list
(** Capacitors with their element indices. *)

val inductors : circuit -> (int * Element.t) list

val sources : circuit -> (int * Element.t) list
(** Independent V and I sources with their element indices. *)

val pp : Format.formatter -> circuit -> unit
