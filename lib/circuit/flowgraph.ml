(* Graph views of a frozen netlist for fixpoint analyses.

   The lint layer's dataflow passes need the circuit as plain graphs
   and per-node incidence sums, not as MNA matrices: conductive edges
   for DC-connectivity, resistor edges with their values for min-plus
   damping paths, and the structural diagonal sums sum(1/R) / sum(C)
   that bound the node time constants without assembling (or
   factoring) anything.  Everything here is a linear scan over the
   element array; self-loops are excluded from the sums because their
   MNA stamps cancel. *)

type node_profile = {
  np_resistors : int;  (* resistor terminal incidences, self-loops excluded *)
  np_grounded_caps : int;  (* caps whose other terminal is ground *)
  np_floating_caps : int;  (* caps to another non-ground node *)
  np_others : int;  (* L / source / controlled-source terminal incidences *)
}

let conductive_pairs (c : Netlist.circuit) =
  Array.to_list c.Netlist.elements
  |> List.filter_map Topology.conductive_edge

let resistor_edges (c : Netlist.circuit) =
  Array.to_list c.Netlist.elements
  |> List.filter_map (function
       | Element.Resistor { np; nn; r; _ } when np <> nn -> Some (np, nn, r)
       | _ -> None)

let low_impedance_pairs (c : Netlist.circuit) =
  (* the conductive edges that add no series resistance: ideal sources
     and inductors (zero DC impedance), plus the controlled-source
     branches Topology treats as conductive *)
  Array.to_list c.Netlist.elements
  |> List.filter_map (function
       | Element.Resistor _ -> None
       | e -> (
         match Topology.conductive_edge e with
         | Some (np, nn) when np <> nn -> Some (np, nn)
         | _ -> None))

let node_conductance (c : Netlist.circuit) =
  let g = Array.make c.Netlist.node_count 0. in
  Array.iter
    (function
      | Element.Resistor { np; nn; r; _ } when np <> nn ->
        g.(np) <- g.(np) +. (1. /. r);
        g.(nn) <- g.(nn) +. (1. /. r)
      | _ -> ())
    c.Netlist.elements;
  g

let node_capacitance (c : Netlist.circuit) =
  let cap = Array.make c.Netlist.node_count 0. in
  Array.iter
    (function
      | Element.Capacitor { np; nn; c = cv; _ } when np <> nn ->
        cap.(np) <- cap.(np) +. cv;
        cap.(nn) <- cap.(nn) +. cv
      | _ -> ())
    c.Netlist.elements;
  cap

let profiles (c : Netlist.circuit) =
  let p =
    Array.make c.Netlist.node_count
      { np_resistors = 0;
        np_grounded_caps = 0;
        np_floating_caps = 0;
        np_others = 0 }
  in
  let ground = Element.ground in
  let res n = p.(n) <- { (p.(n)) with np_resistors = p.(n).np_resistors + 1 }
  and gcap n =
    p.(n) <- { (p.(n)) with np_grounded_caps = p.(n).np_grounded_caps + 1 }
  and fcap n =
    p.(n) <- { (p.(n)) with np_floating_caps = p.(n).np_floating_caps + 1 }
  and other n = p.(n) <- { (p.(n)) with np_others = p.(n).np_others + 1 } in
  Array.iter
    (function
      | Element.Resistor { np; nn; _ } when np <> nn ->
        res np;
        res nn
      | Element.Resistor _ -> ()
      | Element.Capacitor { np; nn; _ } when np <> nn ->
        if nn = ground then gcap np
        else if np = ground then gcap nn
        else begin
          fcap np;
          fcap nn
        end
      | Element.Capacitor _ -> ()
      | Element.Inductor { np; nn; _ }
      | Element.Vsource { np; nn; _ }
      | Element.Isource { np; nn; _ }
      | Element.Vcvs { np; nn; _ }
      | Element.Vccs { np; nn; _ }
      | Element.Ccvs { np; nn; _ }
      | Element.Cccs { np; nn; _ } ->
        other np;
        other nn
      | Element.Mutual _ -> ())
    c.Netlist.elements;
  p

let resistor_neighbors (c : Netlist.circuit) =
  let adj = Array.make c.Netlist.node_count [] in
  Array.iter
    (function
      | Element.Resistor { np; nn; _ } when np <> nn ->
        adj.(np) <- nn :: adj.(np);
        adj.(nn) <- np :: adj.(nn)
      | _ -> ())
    c.Netlist.elements;
  Array.map List.rev adj

let source_nodes (c : Netlist.circuit) =
  (* terminals held at (or referenced to) a driven potential: ideal V
     sources are the zero-impedance drive points of a deck *)
  let seen = Hashtbl.create 8 in
  let acc = ref [ Element.ground ] in
  Hashtbl.replace seen Element.ground ();
  Array.iter
    (function
      | Element.Vsource { np; nn; _ } ->
        List.iter
          (fun n ->
            if not (Hashtbl.mem seen n) then begin
              Hashtbl.replace seen n ();
              acc := n :: !acc
            end)
          [ np; nn ]
      | _ -> ())
    c.Netlist.elements;
  List.rev !acc
