(** Modified nodal analysis.

    Assembles a circuit into the descriptor system

    {v G x + C x' = B u(t) v}

    where [x] stacks the non-ground node voltages followed by one branch
    current per voltage-defined element (independent V sources,
    inductors, VCVS, CCVS), and [u] stacks the independent source
    values.  [G] holds the conductive stamps, [C] the energy-storage
    stamps (the paper's "energy storage matrix", eq. 31, never
    inverted), and [B] routes sources into equations.

    {b Floating nodes.}  Node groups with no DC path to ground make [G]
    singular; the paper (Section 3.1) resolves their steady state with
    charge conservation.  [build] detects such groups and, in
    [`Charge_rows] mode, designates one KCL row per group to be
    replaced — in every DC-type solve — by the group's conserved-charge
    equation [Q_row . x = q].  The replaced KCL row is redundant (the
    group's KCL rows sum to zero at DC), so no information is lost.
    [`Pin_to_zero] instead replaces the row with [v_rep = 0], the
    convention used for 0- operating points when no initial condition
    determines the group.  [`Reject] raises on any floating group. *)

type floating_mode = [ `Charge_rows | `Pin_to_zero | `Reject ]

type t

val build : ?floating:floating_mode -> Netlist.circuit -> t
(** Assemble.  Raises [Invalid_argument] if a current source drives a
    floating group (its charge would grow without bound), or when
    [floating = `Reject] and a floating group exists. *)

val circuit : t -> Netlist.circuit

val size : t -> int
(** Number of unknowns. *)

val node_var : t -> Element.node -> int
(** Unknown index of a node voltage; [-1] for ground. *)

val branch_var : t -> int -> int option
(** [branch_var m elem_idx] is the branch-current unknown of element
    [elem_idx] (V source, inductor, VCVS, CCVS), if any.  The current
    flows from the positive to the negative node through the element. *)

val g : t -> Linalg.Matrix.t
(** The conductive part (fresh copy). *)

val c : t -> Linalg.Matrix.t
(** The energy-storage part (fresh copy). *)

val b : t -> Linalg.Matrix.t
(** Source incidence, [size x source count] (fresh copy). *)

val c_csr : t -> Sparse.Csr.t
(** Sparse view of [C] for the moment recursion's products. *)

val source_count : t -> int

val source_element : t -> int -> int
(** Element index of a source column. *)

val source_waveform : t -> int -> Element.waveform

val u_at : t -> float -> Linalg.Vec.t
(** Source vector [u(t)]. *)

val voltage : t -> Linalg.Vec.t -> Element.node -> float
(** Node voltage from a solution vector ([0.] for ground). *)

val charge_group_count : t -> int

val charge_row : t -> int -> int
(** MNA row replaced by charge conservation for group [i]. *)

val charge_coeffs : t -> int -> Linalg.Vec.t
(** The conserved-charge row [Q] of group [i]: [Q . x] is the group's
    total charge. *)

val charges_of : t -> Linalg.Vec.t -> float array
(** Conserved charge of each group evaluated on a state vector. *)

val describe_var : t -> int -> string
(** Human-readable name of unknown index [v] — ["node n3"] for a node
    voltage, ["branch current of L2"] for a voltage-defined element's
    current — used to map sparse-layer pivot failures back to the
    circuit. *)

val augmented_g : t -> Linalg.Matrix.t
(** The matrix [dc_factor] actually factors: [G] with each floating
    group's designated KCL row replaced by its charge (or pin) row.
    Exposed so the lint layer can run a structural-rank check on the
    very pattern whose factorization it is predicting. *)

type dc_solver
(** A reusable factorization of [G] with the floating-group rows
    replaced (charge rows in [`Charge_rows] mode, pin rows in
    [`Pin_to_zero] mode) — the single LU factorization that the moment
    recursion reuses for every moment (paper, Section 3.2). *)

exception Singular_dc of string
(** The (augmented) conductance matrix is singular: the circuit has no
    unique DC solution even after floating-group treatment (e.g. a
    cutset of current sources).  The message names the offending
    unknown via {!describe_var}. *)

val dc_factor : ?sparse:bool -> ?symbolic:Sparse.Slu.symbolic -> t -> dc_solver
(** Factor the augmented [G].  [sparse] (default [false]) selects the
    sparse Gilbert-Peierls path used by the scaling benchmark.
    [symbolic] offers a previously computed analysis to the sparse
    path; it is used only when this matrix's stored pattern is
    identical to the one it analyzed (checked with
    {!Sparse.Slu.pattern_matches}), so supplying it never changes the
    numbers — both paths run the same [symbolic]-then-[refactor]
    pipeline, and identical patterns yield identical analyses. *)

val dc_symbolic : dc_solver -> Sparse.Slu.symbolic option
(** The analysis the sparse path factored through ([None] on the dense
    path) — physically equal to a [symbolic] argument that was
    accepted, so callers can detect reuse and publish new analyses. *)

val dc_solve : dc_solver -> rhs:Linalg.Vec.t -> charges:float array -> Linalg.Vec.t
(** Solve [G' x = rhs'] where the floating-group rows of [rhs] are
    replaced by the given per-group values ([charges] must have length
    [charge_group_count]; pass [[||]] when there are no groups). *)

val state_derivative :
  t -> x:Linalg.Vec.t -> u:Linalg.Vec.t -> (Linalg.Vec.t * bool array) option
(** [state_derivative m ~x ~u] solves the dynamic rows of
    [C x' = B u - G x] for [x'].  Returns the derivative vector (zero
    in non-dynamic positions) and a per-position validity mask, or
    [None] when the dynamic submatrix is singular (a purely floating
    capacitive island).  Used to match the paper's [m_(-2)] initial
    slope term (Section 4.3). *)
