(** Process/operating corners for multi-corner timing analysis.

    A corner is a named set of multiplicative derates applied to a
    design's element values — wire resistance and capacitance, cell
    drive resistance, pin capacitance and intrinsic delay.  Corners
    never change topology: a derated design stamps matrices with the
    same sparsity pattern as the nominal one, which is exactly why
    corner analyses can share the pattern tier of the structure cache
    (one symbolic factorization per topology across all corners).

    The spec file is a small JSON subset:

    {v
    { "corners": [
        { "name": "typ" },
        { "name": "slow", "wire_res": 1.25, "wire_cap": 1.15,
          "cell_drive": 1.30, "cell_cap": 1.10, "cell_intrinsic": 1.20 },
        { "name": "fast", "wire_res": 0.85, "wire_cap": 0.90,
          "cell_drive": 0.75, "cell_cap": 0.95, "cell_intrinsic": 0.85 }
    ] }
    v}

    A bare top-level array of corner objects is also accepted.  Omitted
    scale fields default to 1.0; every scale must be positive and
    finite; names must be non-empty and unique. *)

type t = {
  name : string;
  wire_res : float;  (** wire segment resistance multiplier *)
  wire_cap : float;  (** wire segment capacitance multiplier *)
  cell_drive : float;  (** cell drive-resistance multiplier *)
  cell_cap : float;  (** cell input-pin capacitance multiplier *)
  cell_intrinsic : float;  (** cell intrinsic-delay multiplier *)
}

val make :
  name:string ->
  ?wire_res:float ->
  ?wire_cap:float ->
  ?cell_drive:float ->
  ?cell_cap:float ->
  ?cell_intrinsic:float ->
  unit ->
  t
(** All scales default to 1.0.  Raises [Invalid_argument] on an empty
    name or a non-positive / non-finite scale. *)

val nominal : t
(** The identity corner, named ["nominal"]: every scale 1.0. *)

exception Parse_error of int * string
(** [(line, message)] — same shape as the deck parsers, so front ends
    report spec-file problems uniformly. *)

val parse_string : string -> t list
(** Parse a corner spec.  Raises {!Parse_error} on malformed JSON, an
    unknown field, a bad scale value, a duplicate or empty name, or an
    empty corner list. *)

val parse_file : string -> t list
