(** Canonical per-net circuit forms for the structure-sharing cache.

    Timing designs instantiate the same few interconnect templates
    thousands of times, differing only in node and element names.  This
    module condenses a frozen circuit into hashes that are invariant
    under such relabelings, so the analysis done for one instance can be
    found again from any other:

    - {!pattern_hash} keys the {e pattern} tier: element kinds and
      topology only, no values.  Two circuits with equal pattern hashes
      are expected to assemble MNA matrices with the same sparsity
      pattern, so one symbolic factorization ({!Sparse.Slu.symbolic})
      serves both.
    - {!exact_hash} keys the {e exact} tier: values and source
      waveforms are folded in (as IEEE-754 bit patterns, so [0.1] and
      a value merely printed the same never collide), so equal hashes
      identify circuits that are electrically identical up to
      relabeling.
    - {!exact_signature} is the collision guard for the exact tier: a
      bit-exact, construction-order serialization with all names
      stripped.  Equal signatures mean the two circuits stamp
      element-for-element identical MNA systems — same node ids, same
      value bits — so every downstream result (factors, moments, fitted
      models) is bitwise reusable.

    Both hashes use Weisfeiler-Leman color refinement on the
    element/node incidence structure, with the ground node
    distinguished, so they are invariant under any renumbering of the
    non-ground nodes and any renaming of elements.  Ports are treated
    as ordered (a resistor's [np]/[nn] swap changes the hash): this can
    split some true isomorphism classes, which only costs a cache miss,
    never a wrong hit.

    Controlled-source references ([Ccvs]/[Cccs] controlling sources,
    [Mutual] inductor pairs) are resolved through the circuit and
    contribute the referenced element's own structural signature, not
    its name.  STA-built interconnect nets contain none of these; the
    resolution exists so the hashes stay well-defined (and still
    name-invariant) on full decks. *)

val pattern_hash : Netlist.circuit -> string
(** Hex digest of kinds + topology, invariant under node relabeling and
    element renaming; blind to element values and waveforms. *)

val exact_hash : Netlist.circuit -> string
(** Hex digest of kinds + topology + exact value bits + waveforms,
    invariant under node relabeling and element renaming.  Any value
    perturbation, however small, changes the hash. *)

type hashes = {
  pattern : string;
  exact : string;
  signature : string;
}

val hashes : Netlist.circuit -> hashes
(** All three canonical forms from one shared traversal: the node
    incidence tables and element name index are built once and reused
    by both refinement runs and the signature serialization.  Each
    field is string-identical to the corresponding single-form
    function; callers that need more than one form (the solve path
    re-canons every net it touches) should use this. *)

val exact_signature : Netlist.circuit -> string
(** Bit-exact serialization of the circuit in construction order with
    names stripped: node count, then each element's kind, port node
    ids, IEEE-754 value bits, waveform, and resolved references (by
    element index).  Two circuits with equal signatures build identical
    MNA systems entry for entry; the exact cache tier compares full
    signatures (not digests) before reusing an engine, so a hash
    collision can never smuggle in wrong results. *)
