type t = {
  name : string;
  wire_res : float;
  wire_cap : float;
  cell_drive : float;
  cell_cap : float;
  cell_intrinsic : float;
}

let check_scale ~what v =
  if not (Float.is_finite v && v > 0.) then
    invalid_arg
      (Printf.sprintf "Circuit.Corner: %s scale must be positive (got %g)"
         what v)

let make ~name ?(wire_res = 1.) ?(wire_cap = 1.) ?(cell_drive = 1.)
    ?(cell_cap = 1.) ?(cell_intrinsic = 1.) () =
  if name = "" then invalid_arg "Circuit.Corner: corner name must be non-empty";
  check_scale ~what:"wire_res" wire_res;
  check_scale ~what:"wire_cap" wire_cap;
  check_scale ~what:"cell_drive" cell_drive;
  check_scale ~what:"cell_cap" cell_cap;
  check_scale ~what:"cell_intrinsic" cell_intrinsic;
  { name; wire_res; wire_cap; cell_drive; cell_cap; cell_intrinsic }

let nominal = make ~name:"nominal" ()

exception Parse_error of int * string

(* ------------------------------------------------------------------ *)
(* A recursive-descent parser for the JSON subset the spec needs:
   objects, arrays, strings (escapes limited to quote, backslash,
   slash, newline, tab), and numbers.  Line numbers are tracked for
   error reporting. *)

type json =
  | J_obj of (string * json) list
  | J_arr of json list
  | J_str of string
  | J_num of float

type cursor = { text : string; mutable pos : int; mutable line : int }

let fail cur fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (cur.line, s))) fmt

let peek cur =
  if cur.pos < String.length cur.text then Some cur.text.[cur.pos] else None

let advance cur =
  (match peek cur with
  | Some '\n' -> cur.line <- cur.line + 1
  | _ -> ());
  cur.pos <- cur.pos + 1

let skip_ws cur =
  let rec go () =
    match peek cur with
    | Some (' ' | '\t' | '\r' | '\n') ->
      advance cur;
      go ()
    | _ -> ()
  in
  go ()

let expect cur c =
  skip_ws cur;
  match peek cur with
  | Some c' when c' = c -> advance cur
  | Some c' -> fail cur "expected %C, got %C" c c'
  | None -> fail cur "expected %C, got end of input" c

let parse_str cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
      advance cur;
      (match peek cur with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some c -> fail cur "unsupported escape \\%C in string" c
      | None -> fail cur "unterminated string");
      advance cur;
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance cur;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_num cur =
  let start = cur.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek cur with Some c -> is_num_char c | None -> false) do
    advance cur
  done;
  let tok = String.sub cur.text start (cur.pos - start) in
  match float_of_string_opt tok with
  | Some v -> v
  | None -> fail cur "cannot parse number %S" tok

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      J_obj []
    end
    else begin
      let rec members acc =
        let k = (skip_ws cur; parse_str cur) in
        expect cur ':';
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          members ((k, v) :: acc)
        | Some '}' ->
          advance cur;
          List.rev ((k, v) :: acc)
        | _ -> fail cur "expected ',' or '}' in object"
      in
      J_obj (members [])
    end
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      J_arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          elements (v :: acc)
        | Some ']' ->
          advance cur;
          List.rev (v :: acc)
        | _ -> fail cur "expected ',' or ']' in array"
      in
      J_arr (elements [])
    end
  | Some '"' -> J_str (parse_str cur)
  | Some ('0' .. '9' | '-' | '+' | '.') -> J_num (parse_num cur)
  | Some c -> fail cur "unexpected character %C" c
  | None -> fail cur "unexpected end of input"

let corner_of_obj cur fields =
  let name = ref None in
  let scales =
    [ ("wire_res", ref 1.);
      ("wire_cap", ref 1.);
      ("cell_drive", ref 1.);
      ("cell_cap", ref 1.);
      ("cell_intrinsic", ref 1.) ]
  in
  List.iter
    (fun (k, v) ->
      match (k, v) with
      | "name", J_str s ->
        if !name <> None then fail cur "duplicate \"name\" field";
        name := Some s
      | "name", _ -> fail cur "\"name\" must be a string"
      | k, J_num x -> (
        match List.assoc_opt k scales with
        | Some r -> r := x
        | None -> fail cur "unknown corner field %S" k)
      | k, _ -> fail cur "corner field %S must be a number" k)
    fields;
  let name =
    match !name with
    | Some s -> s
    | None -> fail cur "corner object needs a \"name\" field"
  in
  let s k = !(List.assoc k scales) in
  match
    make ~name ~wire_res:(s "wire_res") ~wire_cap:(s "wire_cap")
      ~cell_drive:(s "cell_drive") ~cell_cap:(s "cell_cap")
      ~cell_intrinsic:(s "cell_intrinsic") ()
  with
  | c -> c
  | exception Invalid_argument msg -> fail cur "%s" msg

let parse_string text =
  let cur = { text; pos = 0; line = 1 } in
  let root = parse_value cur in
  skip_ws cur;
  if peek cur <> None then fail cur "trailing content after corner spec";
  let arr =
    match root with
    | J_arr items -> items
    | J_obj fields -> (
      match List.assoc_opt "corners" fields with
      | Some (J_arr items) -> items
      | Some _ -> fail cur "\"corners\" must be an array"
      | None -> fail cur "top-level object needs a \"corners\" array")
    | J_str _ | J_num _ ->
      fail cur "corner spec must be an object or an array"
  in
  let corners =
    List.map
      (function
        | J_obj fields -> corner_of_obj cur fields
        | _ -> fail cur "each corner must be an object")
      arr
  in
  if corners = [] then fail cur "corner spec lists no corners";
  let names = List.map (fun c -> c.name) corners in
  let dup =
    List.find_opt
      (fun n -> List.length (List.filter (String.equal n) names) > 1)
      names
  in
  (match dup with
  | Some n -> fail cur "duplicate corner name %S" n
  | None -> ());
  corners

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_string (really_input_string ic (in_channel_length ic)))
