type fig4 = {
  circuit : Netlist.circuit;
  n1 : Element.node;
  n2 : Element.node;
  n3 : Element.node;
  n4 : Element.node;
}

let default_step = Element.Step { v0 = 0.; v1 = 5. }

let kohm = 1e3

let fig4_r = kohm

let fig4_c = 0.1e-6

let fig4_elmore_n4 =
  (fig4_r *. (4. *. fig4_c)) +. (fig4_r *. (2. *. fig4_c)) +. (fig4_r *. fig4_c)

let fig4_build ~wave ~grounded_r5 =
  let b = Netlist.create () in
  Netlist.add_v b "vin" "in" "0" wave;
  Netlist.add_r b "r1" "in" "n1" fig4_r;
  Netlist.add_c b "c1" "n1" "0" fig4_c;
  Netlist.add_r b "r2" "n1" "n2" fig4_r;
  Netlist.add_c b "c2" "n2" "0" fig4_c;
  Netlist.add_r b "r3" "n1" "n3" fig4_r;
  Netlist.add_c b "c3" "n3" "0" fig4_c;
  Netlist.add_r b "r4" "n3" "n4" fig4_r;
  Netlist.add_c b "c4" "n4" "0" fig4_c;
  if grounded_r5 then Netlist.add_r b "r5" "n4" "0" (4. *. kohm);
  let n1 = Netlist.node b "n1" in
  let n2 = Netlist.node b "n2" in
  let n3 = Netlist.node b "n3" in
  let n4 = Netlist.node b "n4" in
  { circuit = Netlist.freeze b; n1; n2; n3; n4 }

let fig4 ?(wave = default_step) () = fig4_build ~wave ~grounded_r5:false

let fig9 ?(wave = default_step) () = fig4_build ~wave ~grounded_r5:true

type fig16 = {
  circuit : Netlist.circuit;
  nodes : Element.node array;
  output : Element.node;
  shared : Element.node;
}

let default_ramp_1ns =
  Element.Ramp { v0 = 0.; v1 = 5.; t_delay = 0.; t_rise = 1e-9 }

(* Topology: a clock-tree-like segment.
     in -R1- n1 -R2- n2 -R3- n3 -R5- n5 -R7- n7(out)
     n1 -R4- n4        n3 -R6- n6(shared)
     n5 -R8- n8        n7 -R9- n9 -R10- n10
   Values spread the time constants over ~4 decades like Table I. *)
let fig16_elements ~v_c6 b =
  let r = Netlist.add_r b in
  (* when C6 carries a nonequilibrium initial voltage, every other
     capacitor is explicitly initialized to 0 V so the t = 0 state is
     the charge-sharing configuration of Section 5.2 (one charged
     capacitor, the rest empty) rather than a resistive-divider DC
     point *)
  let explicit_ics = v_c6 <> 0. in
  let c name node value ic =
    if ic <> 0. then Netlist.add_c ~ic b name node "0" value
    else if explicit_ics then Netlist.add_c ~ic:0. b name node "0" value
    else Netlist.add_c b name node "0" value
  in
  r "r1" "in" "n1" 100.;
  r "r2" "n1" "n2" 200.;
  r "r3" "n2" "n3" 200.;
  r "r4" "n1" "n4" 1000.;
  r "r5" "n3" "n5" 300.;
  r "r6" "n3" "n6" 500.;
  r "r7" "n5" "n7" 200.;
  r "r8" "n5" "n8" 50.;
  r "r9" "n7" "n9" 400.;
  r "r10" "n9" "n10" 600.;
  c "c1" "n1" 42e-15 0.;
  c "c2" "n2" 85e-15 0.;
  c "c3" "n3" 128e-15 0.;
  c "c4" "n4" 17e-15 0.;
  c "c5" "n5" 170e-15 0.;
  c "c6" "n6" 340e-15 v_c6;
  c "c7" "n7" 212e-15 0.;
  c "c8" "n8" 0.85e-15 0.;
  c "c9" "n9" 68e-15 0.;
  c "c10" "n10" 25e-15 0.

let fig16 ?(v_c6 = 0.) ?(wave = default_ramp_1ns) () =
  let b = Netlist.create () in
  Netlist.add_v b "vin" "in" "0" wave;
  fig16_elements ~v_c6 b;
  let nodes =
    Array.init 10 (fun k -> Netlist.node b (Printf.sprintf "n%d" (k + 1)))
  in
  { circuit = Netlist.freeze b;
    nodes;
    output = nodes.(6);
    shared = nodes.(5) }

let fig22 ?(v_c6 = 0.) ?(wave = default_ramp_1ns) () =
  let b = Netlist.create () in
  Netlist.add_v b "vin" "in" "0" wave;
  fig16_elements ~v_c6 b;
  (* floating coupling path: C11 output -> victim, C12 victim -> ground *)
  Netlist.add_c b "c11" "n7" "n12" 85e-15;
  Netlist.add_c b "c12" "n12" "0" 255e-15;
  let nodes =
    Array.init 10 (fun k -> Netlist.node b (Printf.sprintf "n%d" (k + 1)))
  in
  let victim = Netlist.node b "n12" in
  ( { circuit = Netlist.freeze b;
      nodes;
      output = nodes.(6);
      shared = nodes.(5) },
    victim )

type fig25 = { circuit : Netlist.circuit; out : Element.node }

let fig25 ?(wave = default_step) () =
  let b = Netlist.create () in
  Netlist.add_v b "vin" "in" "0" wave;
  (* tapered sections: the two dominant complex pairs carry nearly all
     of the output residue, so fourth order suffices (Table II / Fig. 26) *)
  Netlist.add_r b "r1" "in" "m1" 45.;
  Netlist.add_l b "l1" "m1" "n1" 7e-9;
  Netlist.add_c b "c1" "n1" "0" 1e-12;
  Netlist.add_l b "l2" "n1" "n2" 10e-9;
  Netlist.add_c b "c2" "n2" "0" 1.8e-12;
  Netlist.add_l b "l3" "n2" "n3" 16e-9;
  Netlist.add_c b "c3" "n3" "0" 4.4e-12;
  let out = Netlist.node b "n3" in
  { circuit = Netlist.freeze b; out }

let fig8 () =
  let b = Netlist.create () in
  Netlist.add_v b "vin" "in" "0" default_step;
  Netlist.add_r b "r1" "in" "m1" 50.;
  Netlist.add_l b "l1" "m1" "n1" 1e-9;
  Netlist.add_c b "c1" "n1" "0" 1e-12;
  Netlist.add_l b "l2" "n1" "n2" 1e-9;
  Netlist.add_c b "c2" "n2" "0" 1e-12;
  Netlist.freeze b

let random_rc_tree ?(seed = 42) ?(wave = Element.Step { v0 = 0.; v1 = 1. })
    ?(ic_frac = 0.) ~n () =
  if n < 1 then invalid_arg "Samples.random_rc_tree: need n >= 1";
  let st = Random.State.make [| seed |] in
  let b = Netlist.create () in
  Netlist.add_v b "vin" "in" "0" wave;
  let node_name k = Printf.sprintf "n%d" k in
  for k = 1 to n do
    (* attach node k under a random earlier node (or the driver) *)
    let parent = if k = 1 then "in" else node_name (1 + Random.State.int st (k - 1)) in
    let r = 50. +. Random.State.float st 1950. in
    let c = 1e-15 +. Random.State.float st 499e-15 in
    Netlist.add_r b (Printf.sprintf "r%d" k) parent (node_name k) r;
    (* extra draws happen only when ICs are requested, so the default
       stream — and every circuit existing tests pin by seed — is
       unchanged *)
    if ic_frac > 0. && Random.State.float st 1. < ic_frac then
      Netlist.add_c ~ic:(Random.State.float st 5. -. 2.5) b
        (Printf.sprintf "c%d" k) (node_name k) "0" c
    else Netlist.add_c b (Printf.sprintf "c%d" k) (node_name k) "0" c
  done;
  let leaf = Netlist.node b (node_name n) in
  (Netlist.freeze b, leaf)

let random_coupled_tree ?(seed = 44) ?(wave = Element.Step { v0 = 0.; v1 = 1. })
    ~n ~couplings () =
  if n < 1 then invalid_arg "Samples.random_coupled_tree: need n >= 1";
  if couplings < 1 then
    invalid_arg "Samples.random_coupled_tree: need couplings >= 1";
  let st = Random.State.make [| seed |] in
  let b = Netlist.create () in
  Netlist.add_v b "vin" "in" "0" wave;
  let node_name k = Printf.sprintf "n%d" k in
  for k = 1 to n do
    let parent = if k = 1 then "in" else node_name (1 + Random.State.int st (k - 1)) in
    let r = 50. +. Random.State.float st 1950. in
    let c = 1e-15 +. Random.State.float st 499e-15 in
    Netlist.add_r b (Printf.sprintf "r%d" k) parent (node_name k) r;
    Netlist.add_c b (Printf.sprintf "c%d" k) (node_name k) "0" c
  done;
  (* the Fig. 22 pattern: a floating cap from an aggressor tree node
     into either another tree node (coupling between two driven nets)
     or a fresh capacitively-loaded victim node with no resistive path
     to ground — the DC-floating group of Section 3.1 *)
  let victim = ref 0 in
  for j = 1 to couplings do
    let aggressor = node_name (1 + Random.State.int st n) in
    let cc = 10e-15 +. Random.State.float st 150e-15 in
    if Random.State.bool st then begin
      let vname = Printf.sprintf "v%d" j in
      Netlist.add_c b (Printf.sprintf "cc%d" j) aggressor vname cc;
      Netlist.add_c b
        (Printf.sprintf "cv%d" j)
        vname "0"
        (20e-15 +. Random.State.float st 400e-15);
      victim := Netlist.node b vname
    end
    else begin
      let other = node_name (1 + Random.State.int st n) in
      if other <> aggressor then
        Netlist.add_c b (Printf.sprintf "cc%d" j) aggressor other cc
      else
        Netlist.add_c b
          (Printf.sprintf "cc%d" j)
          aggressor
          (Printf.sprintf "w%d" j)
          cc;
      if other = aggressor then
        Netlist.add_c b
          (Printf.sprintf "cw%d" j)
          (Printf.sprintf "w%d" j)
          "0"
          (20e-15 +. Random.State.float st 400e-15)
    end
  done;
  let leaf = Netlist.node b (node_name n) in
  let observe = if !victim <> 0 && Random.State.bool st then !victim else leaf in
  (Netlist.freeze b, observe)

let random_rlc_ladder ?(seed = 45) ?(wave = Element.Step { v0 = 0.; v1 = 1. })
    ~sections () =
  if sections < 1 then
    invalid_arg "Samples.random_rlc_ladder: need sections >= 1";
  let st = Random.State.make [| seed |] in
  let b = Netlist.create () in
  Netlist.add_v b "vin" "in" "0" wave;
  (* one series R per section keeps every complex pair strictly damped
     (values in the fig25 regime: tens of ohms, nH, pF) *)
  let prev = ref "in" in
  for k = 1 to sections do
    let mid = Printf.sprintf "m%d" k and out = Printf.sprintf "n%d" k in
    Netlist.add_r b (Printf.sprintf "r%d" k) !prev mid
      (20. +. Random.State.float st 120.);
    Netlist.add_l b (Printf.sprintf "l%d" k) mid out
      (2e-9 +. Random.State.float st 18e-9);
    Netlist.add_c b (Printf.sprintf "c%d" k) out "0"
      (0.5e-12 +. Random.State.float st 4.5e-12);
    prev := out
  done;
  let out = Netlist.node b !prev in
  (Netlist.freeze b, out)

let random_rc_mesh ?(seed = 43) ~n ~extra () =
  if n < 2 then invalid_arg "Samples.random_rc_mesh: need n >= 2";
  let st = Random.State.make [| seed |] in
  let b = Netlist.create () in
  Netlist.add_v b "vin" "in" "0" (Element.Step { v0 = 0.; v1 = 1. });
  let node_name k = Printf.sprintf "n%d" k in
  for k = 1 to n do
    let parent = if k = 1 then "in" else node_name (1 + Random.State.int st (k - 1)) in
    let r = 50. +. Random.State.float st 1950. in
    let c = 1e-15 +. Random.State.float st 499e-15 in
    Netlist.add_r b (Printf.sprintf "r%d" k) parent (node_name k) r;
    Netlist.add_c b (Printf.sprintf "c%d" k) (node_name k) "0" c
  done;
  for j = 1 to extra do
    let a = 1 + Random.State.int st n in
    let c = 1 + Random.State.int st n in
    if a <> c then
      Netlist.add_r b
        (Printf.sprintf "rx%d" j)
        (node_name a) (node_name c)
        (100. +. Random.State.float st 4900.)
  done;
  let leaf = Netlist.node b (node_name n) in
  (Netlist.freeze b, leaf)

let rc_grid ?(seed = 47) ?wave ~rows ~cols () =
  if rows < 2 || cols < 2 then
    invalid_arg "Samples.rc_grid: need rows >= 2 and cols >= 2";
  let st = Random.State.make [| seed |] in
  let b = Netlist.create () in
  let wave =
    match wave with
    | Some w -> w
    | None -> Element.Step { v0 = 0.; v1 = 1. }
  in
  Netlist.add_v b "vin" "in" "0" wave;
  let node_name r c = Printf.sprintf "g%d_%d" r c in
  Netlist.add_r b "rdrv" "in" (node_name 0 0) 25.;
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then
        Netlist.add_r b
          (Printf.sprintf "rh%d_%d" r c)
          (node_name r c)
          (node_name r (c + 1))
          (50. +. Random.State.float st 150.);
      if r + 1 < rows then
        Netlist.add_r b
          (Printf.sprintf "rv%d_%d" r c)
          (node_name r c)
          (node_name (r + 1) c)
          (50. +. Random.State.float st 150.);
      Netlist.add_c b
        (Printf.sprintf "cg%d_%d" r c)
        (node_name r c) "0"
        (5e-15 +. Random.State.float st 45e-15)
    done
  done;
  let far = Netlist.node b (node_name (rows - 1) (cols - 1)) in
  (Netlist.freeze b, far)

let rc_ladder ?(seed = 53) ?(wave = Element.Step { v0 = 0.; v1 = 1. })
    ~length ~fanout () =
  if length < 1 then invalid_arg "Samples.rc_ladder: need length >= 1";
  if fanout < 1 then invalid_arg "Samples.rc_ladder: need fanout >= 1";
  let st = Random.State.make [| seed |] in
  let b = Netlist.create () in
  Netlist.add_v b "vin" "in" "0" wave;
  let trunk k = Printf.sprintf "t%d" k in
  Netlist.add_r b "rdrv" "in" (trunk 0) 25.;
  Netlist.add_c b "cdrv" (trunk 0) "0" (2e-15 +. Random.State.float st 2e-15);
  for k = 1 to length do
    Netlist.add_r b
      (Printf.sprintf "rt%d" k)
      (trunk (k - 1)) (trunk k)
      (40. +. Random.State.float st 60.);
    Netlist.add_c b
      (Printf.sprintf "ct%d" k)
      (trunk k) "0"
      (2e-15 +. Random.State.float st 3e-15)
  done;
  let hub = trunk length in
  for j = 1 to fanout do
    let leg = Printf.sprintf "f%d" j in
    Netlist.add_r b
      (Printf.sprintf "rf%d" j)
      hub leg
      (80. +. Random.State.float st 40.);
    Netlist.add_c b
      (Printf.sprintf "cf%d" j)
      leg "0"
      (4e-15 +. Random.State.float st 2e-15)
  done;
  let out = Netlist.node b "f1" in
  (Netlist.freeze b, out)
