(** Graph views of a frozen netlist for fixpoint analyses.

    The lint layer's dataflow passes consume the circuit as plain
    edge lists and per-node incidence sums rather than as assembled
    MNA matrices: this is what lets the numerical-health checks bound
    eq. 47 conditioning {e without factoring anything}.  All views are
    one linear scan over the element array.  Self-loop terminals are
    excluded from sums and edge lists because their MNA stamps cancel
    (they are separately diagnosed by the shorted-element checks). *)

type node_profile = {
  np_resistors : int;
      (** resistor terminal incidences (self-loops excluded) *)
  np_grounded_caps : int;  (** capacitors whose other terminal is ground *)
  np_floating_caps : int;  (** capacitors to another non-ground node *)
  np_others : int;
      (** inductor / source / controlled-source terminal incidences *)
}

val conductive_pairs : Netlist.circuit -> (int * int) list
(** Endpoints of every DC-conductive element ({!Topology.conductive_edge}),
    in element order. *)

val resistor_edges : Netlist.circuit -> (int * int * float) list
(** [(np, nn, ohms)] per non-self-loop resistor, in element order. *)

val low_impedance_pairs : Netlist.circuit -> (int * int) list
(** Conductive edges contributing no series resistance: V sources,
    inductors and the controlled branches — the zero-weight edges of
    the damping-path metric. *)

val node_conductance : Netlist.circuit -> float array
(** Per node, the structural G diagonal: sum of [1/R] over incident
    resistors. *)

val node_capacitance : Netlist.circuit -> float array
(** Per node, the structural C diagonal: sum of incident capacitance. *)

val profiles : Netlist.circuit -> node_profile array
(** Per-node incidence summary, the raw material of the reducibility
    advisories. *)

val resistor_neighbors : Netlist.circuit -> int list array
(** Per node, the other endpoint of each incident resistor (one entry
    per resistor, so parallels repeat), in element order. *)

val source_nodes : Netlist.circuit -> int list
(** Ground plus every ideal-V-source terminal: the zero-impedance
    reference points damping paths start from. *)
