(* Re-export the library's submodules so [Awe.Moments], [Awe.Approx],
   etc. are reachable from the single entry module. *)
module Moments = Moments
module Approx = Approx
module Moment_match = Moment_match
module Error_est = Error_est
module Elmore = Elmore
module Tree_link = Tree_link
module Two_pole = Two_pole
module Ac = Ac
module Stats = Stats
module Cache = Cache

open Linalg

type options = {
  match_slope : bool;
  scale_moments : bool;
  check_stability : bool;
  sparse : bool;
  reduce_degenerate : bool;
  expansion_shift : float;
}

let default_options =
  { match_slope = false;
    scale_moments = true;
    check_stability = true;
    sparse = false;
    reduce_degenerate = true;
    expansion_shift = 0. }

type t = {
  sys : Circuit.Mna.t;
  node : Circuit.Element.node;
  q : int;
  response : Approx.response;
  base : Approx.transient;
}

exception Degenerate of string

exception Unstable_fit of Cx.t list

(* Fit one subproblem's moment sequence at order [q], optionally
   retrying at lower orders when the moment matrix is singular (the
   subproblem has fewer than [q] active poles). *)
let fit_sequence ~opts ~q ~slope mu =
  let slope = if opts.match_slope then slope else None in
  let rec attempt q =
    if q < 1 then raise (Degenerate "no usable order for moment sequence")
    else begin
      match
        Moment_match.fit ~scale:opts.scale_moments
          ~check_stability:opts.check_stability
          ~shift:opts.expansion_shift ?slope ~q
          (Array.sub mu 0 (2 * q))
      with
      | terms -> terms
      | exception Moment_match.No_fit msg ->
        if opts.reduce_degenerate then begin
          Stats.record_fit_retry ();
          attempt (q - 1)
        end
        else raise (Degenerate msg)
      | exception Moment_match.Unstable ps -> raise (Unstable_fit ps)
    end
  in
  attempt q

type observable =
  | Node of Circuit.Element.node
  | Branch_current of int (* element index with a branch unknown *)

let observable_var sys = function
  | Node node ->
    let v = Circuit.Mna.node_var sys node in
    if v < 0 then
      invalid_arg "Awe.approximate: output cannot be the ground node";
    (v, node)
  | Branch_current idx -> (
    match Circuit.Mna.branch_var sys idx with
    | Some v -> (v, Circuit.Element.ground)
    | None ->
      invalid_arg
        "Awe.approximate: element carries no branch current (only V \
         sources, inductors, VCVS and CCVS do)")

(* ------------------------------------------------------------------ *)
(* The shared engine: one MNA factorization, one operating-point pair,
   and one lazily extended moment-vector sequence per subproblem,
   shared by every output node and every approximation order asked of
   this system (paper, Section 3.2: after the single LU, each moment
   is one substitution). *)

type source_kernel = { kprob : Moments.problem; kseq : Moments.seq }

type engine = {
  eng_sys : Circuit.Mna.t;
  eng_options : options;
  moments : Moments.engine;
  base_prob : Moments.problem;
  base_seq : Moments.seq;
  source_breaks : (float * float) list array;
      (* canonicalized slope breaks per source column *)
  kernels : source_kernel option array; (* ramp kernels, created on demand *)
}

module Engine = struct
  let create ?(options = default_options) ?symbolic sys =
    let moments =
      Moments.make ~sparse:options.sparse ?symbolic
        ~shift:options.expansion_shift sys
    in
    let op0 = Circuit.Dc.initial sys in
    let op0p = Circuit.Dc.at_zero_plus sys op0 in
    let base_prob = Moments.base_problem moments op0p in
    let nsrc = Circuit.Mna.source_count sys in
    let source_breaks =
      Array.init nsrc (fun col ->
          (Circuit.Element.canonicalize (Circuit.Mna.source_waveform sys col))
            .Circuit.Element.breaks)
    in
    { eng_sys = sys;
      eng_options = options;
      moments;
      base_prob;
      base_seq = Moments.seq moments base_prob;
      source_breaks;
      kernels = Array.make nsrc None }

  let sys e = e.eng_sys

  let options e = e.eng_options

  let symbolic e = Moments.symbolic e.moments

  let kernel e col =
    match e.kernels.(col) with
    | Some k -> k
    | None ->
      let kprob = Moments.ramp_kernel e.moments ~src_col:col in
      let k = { kprob; kseq = Moments.seq e.moments kprob } in
      e.kernels.(col) <- Some k;
      k

  (* fit one subproblem at order [q] from a prefix of its shared
     sequence; escalating later only extends the sequence *)
  let fit_prefix e ~out_var ~q prob sq =
    let mu = Moments.mu (Moments.prefix sq ~count:(2 * q)) ~out_var in
    if Moments.is_negligible mu then []
    else
      fit_sequence ~opts:e.eng_options ~q
        ~slope:(Moments.mu_slope prob ~out_var)
        mu

  let approximate_observable e ~observable ~q =
    if q < 1 then invalid_arg "Awe.approximate: order must be >= 1";
    let out_var, node = observable_var e.eng_sys observable in
    let base_terms = fit_prefix e ~out_var ~q e.base_prob e.base_seq in
    let base_component =
      { Approx.t_shift = 0.;
        scale = 1.;
        p_const = e.base_prob.Moments.d0.(out_var);
        p_slope = e.base_prob.Moments.d1.(out_var);
        transient = base_terms }
    in
    let break_components = ref [] in
    Array.iteri
      (fun col breaks ->
        match breaks with
        | [] -> ()
        | breaks ->
          let k = kernel e col in
          let kterms = fit_prefix e ~out_var ~q k.kprob k.kseq in
          List.iter
            (fun (t_k, dr) ->
              break_components :=
                { Approx.t_shift = t_k;
                  scale = dr;
                  p_const = k.kprob.Moments.d0.(out_var);
                  p_slope = k.kprob.Moments.d1.(out_var);
                  transient = kterms }
                :: !break_components)
            breaks)
      e.source_breaks;
    { sys = e.eng_sys;
      node;
      q;
      response = base_component :: List.rev !break_components;
      base = base_terms }

  let approximate e ~node ~q =
    approximate_observable e ~observable:(Node node) ~q

  let elmore e ~node =
    let out_var = Circuit.Mna.node_var e.eng_sys node in
    if out_var < 0 then
      invalid_arg "Awe.Engine.elmore: output cannot be ground";
    let mu = Moments.mu (Moments.prefix e.base_seq ~count:2) ~out_var in
    if Float.abs mu.(0) < 1e-300 then 0. else -.(mu.(1) /. mu.(0))

  (* The q-vs-(q+1) error of the whole response (paper, Section 3.4).

     Estimating on the base transient alone is wrong twice over for
     ramp/PWL excitations: (1) with no jump at t = 0 and a circuit at
     rest the base transient is identically zero, its self-distance is
     zero at every order, and order control would accept an order-1
     fit of an arbitrarily bad ramp kernel; (2) a PWL staircase
     superposes large-slope shifted copies of the kernel with opposite
     signs, so even a small *per-kernel* relative error is amplified
     by the cancellation between copies — the response can be wrong by
     far more than any subproblem is.

     So: when the response is break-free (step/DC excitation — every
     configuration in the paper's tables) the estimate is the exact
     closed-form relative L2 distance between the two base transients,
     the paper's arithmetic.  When slope breaks superpose shifted
     kernels, the two assembled *models* are compared on a time grid
     instead — still pure reduced-model evaluation, no circuit
     integration; the closed form does not extend to shifted cross
     terms.  The grid spans the last activation plus a settle
     allowance of the slowest pole of either model, and the distance
     is normalized by the transient part of the (q+1) model. *)
  let response_error (a_q : t) (a_q1 : t) =
    let has_breaks =
      List.exists (fun (c : Approx.component) -> c.Approx.t_shift > 0.)
        a_q.response
    in
    if not has_breaks then
      let exact = a_q1.base and approx = a_q.base in
      if Error_est.l2_norm_sq exact <= 0. then
        if Error_est.l2_norm_sq approx <= 0. then 0. else infinity
      else Error_est.relative_error ~exact approx
    else begin
      let tau =
        List.fold_left
          (fun acc (c : Approx.component) ->
            List.fold_left
              (fun acc (p : Linalg.Cx.t) ->
                Float.max acc (1. /. Float.max (Float.abs p.Linalg.Cx.re) 1e-300))
              acc
              (Approx.transient_poles c.Approx.transient))
          0.
          (a_q.response @ a_q1.response)
      in
      let t_last =
        List.fold_left
          (fun acc (c : Approx.component) -> Float.max acc c.Approx.t_shift)
          0. a_q1.response
      in
      let t_stop = t_last +. (8. *. Float.max tau 1e-300) in
      (* the particular (DC + ramp) parts of the two models are
         identical — same operating points, scales, and shifts — so
         their difference is the transient difference.  The normalizer
         is the (q+1) model's excursion from its steady value: the
         same measure an external reference would be compared against.
         (Subtracting the per-component particular parts instead would
         inflate the normalizer with the large slope-cancellation
         terms of the PWL decomposition and mask real error; it
         remains the fallback when no steady value exists.) *)
      let offset =
        match Approx.steady_value a_q1.response with
        | v -> fun _ -> v
        | exception Invalid_argument _ ->
          let particular =
            List.map
              (fun (c : Approx.component) -> { c with Approx.transient = [] })
              a_q1.response
          in
          fun t -> Approx.eval particular t
      in
      let n = 256 in
      let dt = t_stop /. float_of_int n in
      let num = ref 0. and den = ref 0. in
      for k = 0 to n do
        let t = dt *. float_of_int k in
        let w = if k = 0 || k = n then 0.5 else 1. in
        let d = Approx.eval a_q.response t -. Approx.eval a_q1.response t in
        let x = Approx.eval a_q1.response t -. offset t in
        num := !num +. (w *. d *. d);
        den := !den +. (w *. x *. x)
      done;
      if !den <= 0. then if !num <= 0. then 0. else infinity
      else sqrt (!num /. !den)
    end

  let error_estimate e ~node ~q =
    let a_q = approximate e ~node ~q in
    let a_q1 = approximate e ~node ~q:(q + 1) in
    response_error a_q a_q1

  let auto ?(tol = 0.02) ?(q_max = 8) e ~node =
    let rec search q best =
      if q > q_max then
        match best with
        | Some (a, err) -> (a, err)
        | None ->
          raise (Degenerate "no stable approximation up to the maximum order")
      else begin
        match
          let a = approximate e ~node ~q in
          let a' = approximate e ~node ~q:(q + 1) in
          (a, response_error a a')
        with
        | a, err when err <= tol -> (a, err)
        | a, err ->
          Stats.record_order_escalation ();
          let best =
            match best with
            | Some (_, best_err) when best_err <= err -> best
            | _ -> Some (a, err)
          in
          search (q + 1) best
        | exception (Unstable_fit _ | Degenerate _) ->
          Stats.record_order_escalation ();
          search (q + 1) best
      end
    in
    search 1 None

end

(* ------------------------------------------------------------------ *)
(* One-shot entry points: build a throwaway engine.  Callers that
   evaluate several nodes or orders of the same system should create
   the engine once (see {!Engine} and {!Batch}). *)

let approximate_observable ?options sys ~observable ~q =
  Engine.approximate_observable (Engine.create ?options sys) ~observable ~q

let approximate ?options sys ~node ~q =
  approximate_observable ?options sys ~observable:(Node node) ~q

let eval t time = Approx.eval t.response time

let waveform t ~t_stop ~samples = Approx.waveform t.response ~t_stop ~samples

let poles t = Approx.transient_poles t.base

let residues t = Approx.dc_gain_residues t.base

let steady_state t = Approx.steady_value t.response

let delay t ~threshold ~t_max =
  Approx.crossing_time t.response ~threshold ~t_max

let error_estimate ?options sys ~node ~q =
  Engine.error_estimate (Engine.create ?options sys) ~node ~q

let auto ?options ?tol ?q_max sys ~node =
  Engine.auto ?tol ?q_max (Engine.create ?options sys) ~node

let elmore_equivalent sys ~node = Elmore.scaled_delay sys ~node

(* ------------------------------------------------------------------ *)
module Batch = struct
  type result = { node : Circuit.Element.node; outcome : outcome }

  and outcome = Approximation of t | Failed of string

  let engine_of ?options ?engine sys =
    match engine with Some e -> e | None -> Engine.create ?options sys

  let approximate_all ?options ?engine sys ~nodes ~q =
    if q < 1 then invalid_arg "Batch.approximate_all: order must be >= 1";
    let e = engine_of ?options ?engine sys in
    List.map
      (fun node ->
        match Engine.approximate e ~node ~q with
        | a -> { node; outcome = Approximation a }
        | exception Degenerate msg -> { node; outcome = Failed msg }
        | exception Unstable_fit _ ->
          { node; outcome = Failed "unstable fit" })
      nodes

  let delays_all ?options ?engine sys ~nodes ~q ~threshold ~t_max =
    let e = engine_of ?options ?engine sys in
    approximate_all ~engine:e sys ~nodes ~q
    |> List.map (fun r ->
           match r.outcome with
           | Approximation a -> (r.node, delay a ~threshold ~t_max)
           | Failed _ -> (
             (* a node whose fixed-order fit is degenerate or unstable
                gets individual order escalation (paper, Section 3.3)
                on the same engine: the shared moments are reused *)
             match Engine.auto e ~node:r.node with
             | a, _ -> (r.node, delay a ~threshold ~t_max)
             | exception (Degenerate _ | Unstable_fit _) -> (r.node, None)))

  let elmore_all ?options ?engine sys =
    let e = engine_of ?options ?engine sys in
    let sys = e.eng_sys in
    let ws = Moments.prefix e.base_seq ~count:2 in
    let ckt = Circuit.Mna.circuit sys in
    List.init (ckt.Circuit.Netlist.node_count - 1) (fun i ->
        let node = i + 1 in
        let v = Circuit.Mna.node_var sys node in
        let mu0 = ws.(0).(v) and mu1 = ws.(1).(v) in
        let td = if Float.abs mu0 < 1e-300 then 0. else -.(mu1 /. mu0) in
        (node, td))

end
