(** The structure-sharing cache (two tiers, frozen views, shards).

    Timing designs are template-heavy: the same few interconnect
    shapes are stamped out thousands of times.  The cache lets an
    analysis done once serve every later instance, at two strengths:

    - {e pattern} tier — keyed on a topology-only hash
      ({!Circuit.Canon.pattern_hash}), it stores symbolic sparse
      factorizations ({!Sparse.Slu.symbolic}).  A hit skips the
      ordering + static pivoting + fill analysis; the numeric
      refactorization still runs, so the resulting factors are
      bit-identical to an uncached run.
    - {e exact} tier — keyed on a value-exact hash plus a bit-exact
      guard signature ({!Circuit.Canon.exact_signature}), it stores an
      arbitrary payload (the STA layer caches a whole fitted engine
      with its per-sink results).  A hit skips everything.

    {b Determinism.}  Lookups go through a {!view}: an immutable
    snapshot of the cache contents at the moment {!view} was taken.
    Parallel tasks all read one view frozen before they were spawned,
    so what each task sees — and therefore every hit/miss counter and
    every numeric result — depends only on the snapshot, never on how
    concurrently running tasks interleave.  Publication is the
    coordinator's job, done sequentially between waves in a fixed
    order (first publication wins, duplicates are dropped), so the
    cache contents after each wave are a pure function of the input.

    {b Shards.}  A {!Shard.t} is a task-private overlay: a worker
    publishes into its own shard during a wave (no locks, no
    contention) and the coordinator folds the shards back with
    {!absorb} at the wave boundary, replaying each shard's
    publications in insertion order under the same first-wins rule.
    When shards are absorbed in a deterministic order that matches the
    sequential sweep (e.g. contiguous sorted ranges, in range order),
    the resulting cache contents are identical to sequential
    publication — see THEORY.md, "Sharded publication".

    The cache itself is not thread-safe: publish from one domain.
    Views are immutable and safe to share with any number of domains;
    a shard must be used by one domain at a time. *)

type 'a t
(** A cache whose exact tier carries payloads of type ['a]. *)

type patterns
(** A pattern-tier store, shareable between caches.  Corner analyses
    perturb element values but never topology, so the symbolic sparse
    factorizations the pattern tier holds are corner-invariant: give
    each corner its own cache (the exact tier is value-keyed and must
    stay per-corner) but one shared [patterns] store, and every
    topology pays for its symbolic analysis exactly once across all
    corners.  Like the cache itself, a [patterns] store must be
    published into from one domain at a time; views taken from any
    sharing cache snapshot it safely. *)

val create_patterns : unit -> patterns

val create : ?patterns:patterns -> unit -> 'a t
(** [patterns] (default: a fresh private store) is the pattern-tier
    store this cache publishes symbolics into and reads them from —
    pass the same store to several caches to share symbolic analyses
    across them. *)

val patterns : 'a t -> patterns
(** The pattern-tier store this cache reads and publishes. *)

type 'a view
(** An immutable snapshot of a cache's contents. *)

val view : 'a t -> 'a view
(** Snapshot the current contents.  Later publications do not appear
    in previously taken views. *)

val find_exact : 'a view -> hash:string -> signature:string -> 'a option
(** Exact-tier lookup: the payload published under this hash whose
    guard signature is byte-identical to [signature], if any.  The
    signature comparison is what makes a hit sound — two circuits with
    equal signatures assemble identical systems, so a hash collision
    (or a WL-equivalent but differently-labeled instance, whose matrix
    is a permutation with different rounding) can never return wrong
    results: it simply misses. *)

val find_symbolic : 'a view -> hash:string -> Sparse.Slu.symbolic list
(** Pattern-tier lookup: all symbolic analyses published under this
    pattern hash (usually zero or one).  Callers must probe each
    candidate with {!Sparse.Slu.pattern_matches} before use — the hash
    is a heuristic index, the pattern check is the guarantee. *)

val publish_exact : 'a t -> hash:string -> signature:string -> 'a -> bool
(** Publish a payload under (hash, signature).  First publication
    wins: returns [false] (and keeps the existing entry) when the pair
    is already present. *)

val publish_symbolic : 'a t -> hash:string -> Sparse.Slu.symbolic -> bool
(** Publish a symbolic analysis under a pattern hash.  Returns [false]
    when an analysis of the identical pattern is already stored under
    the hash ({!Sparse.Slu.same_analysis}), so concurrent misses on
    one template publish a single copy. *)

val remove_exact : 'a t -> hash:string -> signature:string -> bool
(** Retire the exact-tier entry published under (hash, signature), if
    present.  Returns whether an entry was removed.  Incremental
    sessions use this to keep the exact tier equal to what a cold run
    of the {e current} design would publish: when an edit changes a
    net's value-exact key and no other net still maps to the old key,
    the stale entry is removed rather than left to shadow the tier's
    fingerprint. *)

val remove_symbolic : 'a t -> hash:string -> int
(** Retire {e all} symbolic analyses stored under a pattern hash (a
    topology edit changed the last net with that pattern).  Returns
    how many analyses were dropped (0 when the hash was absent).
    Affects every cache sharing this pattern store — callers
    refcount hashes across exactly the nets served by the store. *)

val bytes : 'a t -> int
(** Approximate heap footprint of everything the cache retains, in
    bytes (transitively reachable words).  Computed lazily: the
    reachability sweep runs at most once per publication epoch —
    repeated calls between publications return a memoized value, and
    any publication invalidates it.  Structure shared across entries
    is counted once (the sweep walks the object graph), so this is a
    retention figure, not a sum of per-entry sizes. *)

val exact_entries : 'a t -> int
(** Number of exact-tier entries currently stored. *)

val symbolic_entries : 'a t -> int
(** Number of pattern-tier analyses currently stored. *)

val exact_keys : 'a t -> (string * string) list
(** All (hash, signature) pairs in the exact tier, sorted — a
    payload-free fingerprint of the tier's contents, for equality
    checks in tests. *)

val symbolic_keys : 'a t -> string list
(** Pattern hashes of the symbolic tier, one per stored analysis,
    sorted. *)

(** Task-private publication overlays (see the header notes). *)
module Shard : sig
  type 'a t
  (** A private shard: local lookup index plus an ordered publication
      log.  Lookups see only what this shard published — composing
      with the frozen shared view is the caller's job. *)

  val create : unit -> 'a t

  val find_exact : 'a t -> hash:string -> signature:string -> 'a option
  (** Exact lookup among this shard's own publications (same signature
      guard as the shared tier). *)

  val find_symbolic : 'a t -> hash:string -> Sparse.Slu.symbolic list
  (** Pattern lookup among this shard's own publications.  Probe
      candidates with {!Sparse.Slu.pattern_matches} before use. *)

  val publish_exact : 'a t -> hash:string -> signature:string -> 'a -> unit
  (** Record a publication in the shard (first-wins within the
      shard). *)

  val publish_symbolic : 'a t -> hash:string -> Sparse.Slu.symbolic -> unit
  (** Record a symbolic publication in the shard (deduplicated within
      the shard by {!Sparse.Slu.same_analysis}). *)
end

val absorb : 'a t -> 'a Shard.t -> unit
(** Replay a shard's publications into the cache, in the shard's
    insertion order, under the cache's first-wins rules.  Absorbing
    shards in task order reproduces exactly the contents a sequential
    sweep would have published. *)
