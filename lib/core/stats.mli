(** Observability counters for the AWE pipeline.

    Every factorization ({!Moments.make}), moment substitution
    ({!Moments.advance}), moment-matching fit ({!Moment_match.fit}),
    in-fit order reduction, and order escalation ({!Awe.auto}) bumps a
    global counter; phase CPU time accumulates under a phase name.
    [Sta.analyze] additionally counts MNA assemblies.

    The counters exist to make the paper's central economy checkable:
    timing a net with N sinks must show exactly one factorization, and
    escalating from order [q] to [q + 1] must add two moment solves,
    not a recomputation (see the [test/sta] and [bench] assertions). *)

type snapshot = {
  factorizations : int;  (** LU/sparse-LU factorizations of the DC matrix *)
  moment_solves : int;  (** forward/back substitutions [w -> A^-1 w] *)
  fits : int;  (** moment-matching fit attempts *)
  fit_retries : int;  (** in-fit order reductions on singular moment matrices *)
  order_escalations : int;  (** [q -> q + 1] steps taken by [Awe.auto] *)
  mna_builds : int;  (** MNA assemblies (counted by [Sta]) *)
  phase_seconds : (string * float) list;  (** CPU seconds per phase *)
}

val reset : unit -> unit
(** Zero all counters and phase timers. *)

val snapshot : unit -> snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff after before] — per-analysis deltas. *)

val record_factorization : unit -> unit

val record_moment_solve : unit -> unit

val record_fit : unit -> unit

val record_fit_retry : unit -> unit

val record_order_escalation : unit -> unit

val record_mna_build : unit -> unit

val time : string -> (unit -> 'a) -> 'a
(** [time phase f] runs [f], accumulating its CPU time under [phase]. *)

val pp : Format.formatter -> snapshot -> unit
