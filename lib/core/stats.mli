(** Observability counters for the AWE pipeline.

    Every factorization ({!Moments.make}), moment substitution
    ({!Moments.advance}), moment-matching fit ({!Moment_match.fit}),
    in-fit order reduction, and order escalation ({!Awe.auto}) bumps a
    counter; phase CPU time accumulates under a phase name.
    [Sta.analyze] additionally counts MNA assemblies.

    The counters are {e domain-local}: each domain owns an independent
    counter record, so concurrent solves in a {!Parallel} pool never
    contend or interleave.  Within one domain the counters are
    monotone and the classic before/after [snapshot] + [diff] idiom
    measures a region of code.  Parallel drivers instead wrap each
    task in [scoped] — which observes exactly that task's counts,
    wherever it ran — and combine the per-task windows with the
    commutative, associative [merge], so reported totals are identical
    for any execution schedule and any job count.  ([phase_seconds] is
    per-domain CPU time and is summed by [merge]; unlike the integer
    counters it is measurement, not arithmetic, and may vary run to
    run.)

    The counters exist to make the paper's central economy checkable:
    timing a net with N sinks must show exactly one factorization, and
    escalating from order [q] to [q + 1] must add two moment solves,
    not a recomputation (see the [test/sta] and [bench] assertions). *)

type snapshot = {
  factorizations : int;  (** LU/sparse-LU factorizations of the DC matrix *)
  moment_solves : int;  (** forward/back substitutions [w -> A^-1 w] *)
  fits : int;  (** moment-matching fit attempts *)
  fit_retries : int;  (** in-fit order reductions on singular moment matrices *)
  order_escalations : int;  (** [q -> q + 1] steps taken by [Awe.auto] *)
  mna_builds : int;  (** MNA assemblies (counted by [Sta]) *)
  cache_exact_hits : int;
      (** structure-cache hits that reused a whole engine *)
  cache_pattern_hits : int;
      (** structure-cache hits that reused a symbolic factorization *)
  cache_misses : int;  (** structure-cache lookups that found nothing *)
  cache_bytes : int;
      (** approximate heap footprint of the structure cache, recorded
          once per analysis by the coordinator *)
  reduce_nodes_eliminated : int;
      (** nodes removed by the pre-AWE [Circuit.Reduce] pass *)
  reduce_elements_eliminated : int;
      (** elements removed by the pre-AWE [Circuit.Reduce] pass *)
  reduce_parallel_merges : int;  (** parallel element groups merged *)
  reduce_series_merges : int;
      (** capacitor-free resistor runs collapsed (exact) *)
  reduce_chain_lumps : int;  (** series RC runs lumped to a T section *)
  reduce_star_merges : int;  (** hubs whose RC legs were merged *)
  eco_edits : int;  (** edits applied to a {!Sta.Session} *)
  eco_dirty_nets : int;
      (** nets re-solved by an incremental re-time (the dirty cone) *)
  eco_reused_nets : int;
      (** nets served from the session memo without re-solving *)
  eco_full_fallbacks : int;
      (** incremental re-times abandoned for a full cold re-analysis *)
  phase_seconds : (string * float) list;  (** CPU seconds per phase *)
}

val reset : unit -> unit
(** Zero the calling domain's counters and phase timers. *)

val snapshot : unit -> snapshot
(** The calling domain's counters. *)

val zero : snapshot
(** The all-zero snapshot — the identity of {!merge}. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff after before] — per-region deltas within one domain. *)

val merge : snapshot -> snapshot -> snapshot
(** Pointwise sum; phase lists are unioned by name.  Commutative and
    associative on the integer counters, so folding per-task [scoped]
    windows in any order yields the same totals. *)

val scoped : (unit -> 'a) -> 'a * snapshot
(** [scoped f] runs [f] against a fresh counter window and returns its
    result together with exactly the counts [f] produced, independent
    of which domain ran it or what ran before.  The window is folded
    back into the enclosing record afterwards, so an outer
    [snapshot]/[diff] still sees the work.  Exception-safe (the window
    is folded back, the exception re-raised). *)

val record_factorization : unit -> unit

val record_moment_solve : unit -> unit

val record_fit : unit -> unit

val record_fit_retry : unit -> unit

val record_order_escalation : unit -> unit

val record_mna_build : unit -> unit

val record_cache_exact_hit : unit -> unit

val record_cache_pattern_hit : unit -> unit

val record_cache_miss : unit -> unit

val record_reduction :
  nodes:int ->
  elements:int ->
  parallels:int -> series:int -> chains:int -> stars:int -> unit
(** Accumulate one net's [Circuit.Reduce] report.  Reduction always
    runs {e before} the structure-cache lookup, so these counters are
    deliberately outside {!replay}: a cache hit still pays (and
    counts) its own reduction. *)

val record_eco :
  edits:int -> dirty_nets:int -> reused_nets:int -> full_fallbacks:int -> unit
(** Accumulate one incremental re-time's ECO tallies ([Sta.Session]).
    Outside {!replay} for the same reason as the cache fields: these
    describe session bookkeeping, not solver work a hit stands for. *)

val replay : snapshot -> unit
(** Re-record the engine counters of a snapshot — the six work
    counters only, not the cache fields or phase timers — into the
    calling domain's record.  Used by the structure cache: serving a
    net from the exact tier replays the counters of the computation
    that produced the entry, so a cached analysis reports the same
    solve counts as an uncached one (the hit {e stands for} that
    work), and the cache's effect shows up in wall-clock and in its
    own hit counters rather than as silently vanishing solves. *)

val record_cache_bytes : int -> unit
(** Accumulate a cache-footprint measurement (bytes).  Recorded once
    per analysis from a single window, so merged totals report the
    final footprint rather than a sum of samples. *)

val time : string -> (unit -> 'a) -> 'a
(** [time phase f] runs [f], accumulating its CPU time under [phase]
    in the calling domain's record. *)

val pp : Format.formatter -> snapshot -> unit
