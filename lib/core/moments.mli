(** The AWE moment engine (paper, Sections 3.1-3.2).

    The homogeneous response of the MNA descriptor system
    [G x + C x' = B u] is characterized by the vectors

    {v w_0 = x_h(0),   w_(j+1) = -G^-1 (C w_j) v}

    (the action of [A^-1], eq. 32, never forming [A] or inverting the
    energy-storage matrix).  The scalar moment sequence of an output is
    the projection [mu_j = w_j(out)]: [mu_0] is the initial transient
    value (the paper's [m_(-1)]), and [mu_(j+1) = -m_j] in the paper's
    numbering.  In terms of the reduced model
    [x_h(t) = sum_l k_l exp(p_l t)], the [mu_j] are the power sums
    [sum_l k_l z_l^j] in the reciprocal poles [z_l = 1/p_l] — the form
    consumed by moment matching and residue recovery.

    One [Mna.dc_factor] LU factorization is shared by every solve: the
    steady state, the particular solution, and all [2q] moments (the
    paper's central complexity claim, Section 3.2). *)

type engine

val make :
  ?sparse:bool ->
  ?symbolic:Sparse.Slu.symbolic ->
  ?shift:float ->
  Circuit.Mna.t ->
  engine
(** Factor the (augmented) conductance matrix once.  Raises
    [Circuit.Mna.Singular_dc] when the circuit has no unique DC
    solution.

    [symbolic] offers a cached pattern analysis to the sparse path
    (see {!Circuit.Mna.dc_factor}); it is ignored unless [sparse] and
    the pattern matches, and never changes the computed factors.

    [shift] (default [0.]) expands the moments about [s0 = shift]
    instead of the origin: the recursion becomes
    [w_(j+1) = -(G + s0 C)^-1 (C w_j)], whose power sums are in
    [z = 1/(p - s0)].  A negative real shift near the frequency band of
    interest sharpens the resolution of fast poles that an expansion
    about DC sees only weakly — the direction later formalized as
    multipoint moment matching (CFH).  The particular solution and
    steady state always use the true DC solve. *)

val shift : engine -> float

val sys : engine -> Circuit.Mna.t

val symbolic : engine -> Sparse.Slu.symbolic option
(** The pattern analysis the sparse factorization ran through ([None]
    on the dense path).  Physically equal to an accepted [symbolic]
    argument, so callers can distinguish reuse from a fresh analysis. *)

val advance : engine -> Linalg.Vec.t -> Linalg.Vec.t
(** One application of [A^-1]: [advance e w = -G^-1 (C w)], with zero
    conserved charge on floating groups (the homogeneous subspace). *)

(** A transient subproblem: one excitation whose homogeneous response
    AWE will reduce.  [x_h0] is the homogeneous initial vector
    (eq. 8), [d0]/[d1] the affine particular solution
    [x_p(t) = d0 + d1 t] (eq. 6), and [xdot_h0] the homogeneous initial
    derivative when available — the paper's [m_(-2)] term
    (Section 4.3). *)
type problem = {
  x_h0 : Linalg.Vec.t;
  d0 : Linalg.Vec.t;
  d1 : Linalg.Vec.t;
  xdot_h0 : (Linalg.Vec.t * bool array) option;
}

val base_problem : engine -> Circuit.Dc.op -> problem
(** [base_problem e op_0plus]: the transient launched at
    [t = 0] by the input jumps and the nonequilibrium initial
    conditions, with every source frozen to its [0+] value and initial
    slope.  The particular solution accounts for floating-group charge
    conservation (charge at infinity = charge at [0+]). *)

val ramp_kernel : engine -> src_col:int -> problem
(** The zero-state response to a unit ramp (slope 1, starting at
    [t = 0]) on source column [src_col]: the building block of the
    paper's ramp superposition (Fig. 13).  Scaled and time-shifted
    copies of this kernel assemble any piecewise-linear excitation. *)

val vectors : engine -> problem -> count:int -> Linalg.Vec.t array
(** [vectors e p ~count] is [[| w_0; ...; w_(count-1) |]]. *)

type seq
(** A lazily extended moment-vector sequence for one subproblem.
    Vectors are computed on first demand and cached, so requesting a
    longer prefix later (order escalation: [2q -> 2q + 2] moments)
    costs only the extra substitutions — the paper's incremental-order
    economy (Section 3.4). *)

val seq : engine -> problem -> seq
(** Start a sequence at [w_0 = x_h(0)] (no solve). *)

val prefix : seq -> count:int -> Linalg.Vec.t array
(** [prefix s ~count] is [[| w_0; ...; w_(count-1) |]], extending the
    sequence as needed.  Already-computed vectors are never
    recomputed. *)

val computed : seq -> int
(** Number of vectors computed so far. *)

val mu : Linalg.Vec.t array -> out_var:int -> float array
(** Project moment vectors on one output unknown. *)

val mu_slope : problem -> out_var:int -> float option
(** The initial transient slope at the output ([sum_l k_l p_l] in the
    reduced model), when the output position is dynamic. *)

val is_negligible : float array -> bool
(** True when a moment sequence is numerically zero — the subproblem
    excites no transient at this output and should be skipped. *)
