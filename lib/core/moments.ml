open Linalg

type moment_solver =
  | Dc_based of Circuit.Mna.dc_solver (* expansion about s = 0 *)
  | Shifted of Lu.t (* LU of (G + s0 C); nonsingular off the spectrum *)

type engine = {
  sys : Circuit.Mna.t;
  solver : Circuit.Mna.dc_solver; (* true DC solves: particular, steady *)
  moment_solver : moment_solver;
  shift : float;
  c_csr : Sparse.Csr.t;
  no_charge : float array; (* zero conserved charge per floating group *)
}

let make ?(sparse = false) ?symbolic ?(shift = 0.) sys =
  Stats.time "factor" @@ fun () ->
  Stats.record_factorization ();
  let solver = Circuit.Mna.dc_factor ~sparse ?symbolic sys in
  let moment_solver =
    if shift = 0. then Dc_based solver
    else begin
      Stats.record_factorization ();
      let m =
        Matrix.add (Circuit.Mna.g sys)
          (Matrix.scale shift (Circuit.Mna.c sys))
      in
      match Lu.factor m with
      | f -> Shifted f
      | exception Lu.Singular v ->
        raise
          (Circuit.Mna.Singular_dc
             (Printf.sprintf
                "shifted matrix G + s0 C is singular at %s (s0 on the \
                 spectrum?)"
                (Circuit.Mna.describe_var sys v)))
    end
  in
  { sys;
    solver;
    moment_solver;
    shift;
    c_csr = Circuit.Mna.c_csr sys;
    no_charge = Array.make (Circuit.Mna.charge_group_count sys) 0. }

let sys e = e.sys

let shift e = e.shift

let symbolic e = Circuit.Mna.dc_symbolic e.solver

let advance e w =
  Stats.time "moments" @@ fun () ->
  Stats.record_moment_solve ();
  let cw = Sparse.Csr.mul_vec e.c_csr w in
  match e.moment_solver with
  | Dc_based solver ->
    Vec.neg (Circuit.Mna.dc_solve solver ~rhs:cw ~charges:e.no_charge)
  | Shifted f -> Vec.neg (Lu.solve f cw)

type problem = {
  x_h0 : Vec.t;
  d0 : Vec.t;
  d1 : Vec.t;
  xdot_h0 : (Vec.t * bool array) option;
}

(* particular solution x_p(t) = d0 + d1 t for excitation u0 + u1 t:
     G d1 = B u1              (zero conserved charge: the particular
                               must not carry group charge drift)
     G d0 = B u0 - C d1       (group charge = the charge of the true
                               solution, so x_h(0) is charge-neutral) *)
let particular e ~u0 ~u1 ~charges =
  let b = Circuit.Mna.b e.sys in
  let d1 =
    Circuit.Mna.dc_solve e.solver ~rhs:(Matrix.mul_vec b u1)
      ~charges:e.no_charge
  in
  let rhs0 =
    Vec.sub (Matrix.mul_vec b u0) (Sparse.Csr.mul_vec e.c_csr d1)
  in
  let d0 = Circuit.Mna.dc_solve e.solver ~rhs:rhs0 ~charges in
  (d0, d1)

let base_problem e (op0p : Circuit.Dc.op) =
  let sys = e.sys in
  let nsrc = Circuit.Mna.source_count sys in
  let canon =
    Array.init nsrc (fun col ->
        Circuit.Element.canonicalize (Circuit.Mna.source_waveform sys col))
  in
  let u0 = Array.map (fun c -> c.Circuit.Element.v0) canon in
  let u1 = Array.map (fun c -> c.Circuit.Element.slope0) canon in
  let x0 = op0p.Circuit.Dc.x in
  let charges = Circuit.Mna.charges_of sys x0 in
  let d0, d1 = particular e ~u0 ~u1 ~charges in
  let x_h0 = Vec.sub x0 d0 in
  let xdot_h0 =
    match Circuit.Mna.state_derivative sys ~x:x0 ~u:u0 with
    | None -> None
    | Some (xdot, mask) -> Some (Vec.sub xdot d1, mask)
  in
  { x_h0; d0; d1; xdot_h0 }

let ramp_kernel e ~src_col =
  let sys = e.sys in
  let nsrc = Circuit.Mna.source_count sys in
  if src_col < 0 || src_col >= nsrc then
    invalid_arg "Moments.ramp_kernel: bad source column";
  let u0 = Vec.create nsrc in
  let u1 = Vec.basis nsrc src_col in
  let d0, d1 = particular e ~u0 ~u1 ~charges:e.no_charge in
  (* zero state: x(0+) = 0, and x'(0+) = 0 on the dynamic subspace *)
  let x_h0 = Vec.neg d0 in
  let xdot_h0 =
    let n = Circuit.Mna.size sys in
    match Circuit.Mna.state_derivative sys ~x:(Vec.create n) ~u:u0 with
    | None -> None
    | Some (xdot, mask) -> Some (Vec.sub xdot d1, mask)
  in
  { x_h0; d0; d1; xdot_h0 }

let vectors e p ~count =
  if count < 1 then invalid_arg "Moments.vectors: count must be >= 1";
  let ws = Array.make count p.x_h0 in
  for j = 1 to count - 1 do
    ws.(j) <- advance e ws.(j - 1)
  done;
  ws

(* A moment-vector sequence that grows on demand: each [prefix] call
   reuses every vector already computed, so escalating from order [q]
   to [q + 1] costs exactly the two extra substitutions (eq. 32-34),
   never a recomputation. *)
type seq = {
  seq_engine : engine;
  seq_problem : problem;
  mutable ws : Vec.t array; (* backing store, valid up to [len] *)
  mutable len : int;
}

let seq e p = { seq_engine = e; seq_problem = p; ws = [| p.x_h0 |]; len = 1 }

let computed s = s.len

let prefix s ~count =
  if count < 1 then invalid_arg "Moments.prefix: count must be >= 1";
  if count > Array.length s.ws then begin
    let cap = Stdlib.max count (2 * Array.length s.ws) in
    let ws' = Array.make cap s.seq_problem.x_h0 in
    Array.blit s.ws 0 ws' 0 s.len;
    s.ws <- ws'
  end;
  while s.len < count do
    s.ws.(s.len) <- advance s.seq_engine s.ws.(s.len - 1);
    s.len <- s.len + 1
  done;
  Array.sub s.ws 0 count

let mu ws ~out_var = Array.map (fun w -> w.(out_var)) ws

let mu_slope p ~out_var =
  match p.xdot_h0 with
  | Some (xdot, mask) when mask.(out_var) -> Some xdot.(out_var)
  | Some _ | None -> None

let is_negligible mu =
  Array.for_all (fun v -> Float.abs v < 1e-200) mu
