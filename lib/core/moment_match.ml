open Linalg

exception No_fit of string

exception Unstable of Cx.t list

let scale_factor mu =
  let n = Array.length mu in
  let rec find i =
    if i + 1 >= n then 1.
    else begin
      let a = mu.(i) and b = mu.(i + 1) in
      if Float.abs a > 1e-300 && Float.abs b > 1e-300 then
        Float.abs (b /. a)
      else find (i + 1)
    end
  in
  let tau = find 0 in
  if Float.is_finite tau && tau > 0. then tau else 1.

let scaled_mu ~scale mu =
  if not scale then (Array.copy mu, 1.)
  else begin
    let tau = scale_factor mu in
    let out = Array.mapi (fun j v -> v /. Float.pow tau (float_of_int j)) mu in
    (out, tau)
  end

let reciprocal_roots ~q mus =
  let cp =
    try Hankel.char_poly ~q mus
    with Hankel.Deficient k ->
      raise
        (No_fit
           (Printf.sprintf "moment matrix singular at order %d (step %d)" q k))
  in
  Poly.roots cp

let poles ?(scale = true) ?(shift = 0.) ~q mu =
  if Array.length mu < 2 * q then
    invalid_arg "Moment_match.poles: need at least 2q moments";
  let mus, tau = scaled_mu ~scale mu in
  reciprocal_roots ~q mus
  |> List.map (fun z ->
         let z = Cx.scale tau z in
         if Cx.abs z = 0. then raise (No_fit "zero reciprocal pole")
         else Cx.(re shift +: inv z))
  |> List.sort Cx.compare_by_magnitude

let fit ?(scale = true) ?(check_stability = true) ?(shift = 0.) ?slope ~q mu
    =
  if Array.length mu < 2 * q then
    invalid_arg "Moment_match.fit: need at least 2q moments";
  Stats.record_fit ();
  Stats.time "fit" @@ fun () ->
  let mus, tau = scaled_mu ~scale mu in
  let zs = Array.of_list (reciprocal_roots ~q mus) in
  (* cluster repeated reciprocal poles, then solve the (confluent)
     Vandermonde residue system in the scaled variable *)
  let clusters = Vandermonde.cluster_nodes zs in
  let rhs = Array.init q (fun j -> Cx.re mus.(j)) in
  let slope_scaled =
    (* the slope condition is sum k p = d; with expansion point s0 the
       z-form reads sum k/z = d - s0 mu_0, and in scaled variables
       z' = z / tau the right-hand side gains a factor tau *)
    Option.map
      (fun d -> Cx.re ((d -. (shift *. mu.(0))) *. tau))
      slope
  in
  let groups =
    try Vandermonde.solve_confluent clusters ~slope:slope_scaled rhs
    with Cmatrix.Singular _ -> raise (No_fit "residue system singular")
  in
  (* unscale: z = z' * tau, then p = shift + 1/z; the coefficient of
     t^i e^(pt)/i! scales as K' / tau^i because t' = t / tau *)
  let terms =
    Array.to_list
      (Array.mapi
         (fun c cl ->
           let z = Cx.scale tau cl.Vandermonde.node in
           if Cx.abs z = 0. then raise (No_fit "zero reciprocal pole");
           let pole = Cx.(re shift +: inv z) in
           let coeffs =
             Array.mapi
               (fun i k -> Cx.scale (Float.pow tau (-.float_of_int i)) k)
               groups.(c)
           in
           { Approx.pole; coeffs })
         clusters)
  in
  if check_stability && not (Approx.transient_stable terms) then
    raise (Unstable (Approx.transient_poles terms));
  terms

let condition_number ?(scale = true) ~q mu =
  let mus, _ = scaled_mu ~scale mu in
  Hankel.rcond ~q mus
