(* Instrumentation counters for the AWE pipeline.

   Counters are DOMAIN-LOCAL: each domain increments its own counter
   record (no atomics, no contention, no torn reads), and parallel
   drivers combine per-task [scoped] windows with the commutative
   [merge] — so reported totals are identical whatever the execution
   schedule.  Within one domain the counters are monotone, and the
   classic snapshot/diff idiom keeps working unchanged. *)

type snapshot = {
  factorizations : int;
  moment_solves : int;
  fits : int;
  fit_retries : int;
  order_escalations : int;
  mna_builds : int;
  cache_exact_hits : int;
  cache_pattern_hits : int;
  cache_misses : int;
  cache_bytes : int;
  reduce_nodes_eliminated : int;
  reduce_elements_eliminated : int;
  reduce_parallel_merges : int;
  reduce_series_merges : int;
  reduce_chain_lumps : int;
  reduce_star_merges : int;
  eco_edits : int;
  eco_dirty_nets : int;
  eco_reused_nets : int;
  eco_full_fallbacks : int;
  phase_seconds : (string * float) list;
}

type counters = {
  mutable factorizations_c : int;
  mutable moment_solves_c : int;
  mutable fits_c : int;
  mutable fit_retries_c : int;
  mutable order_escalations_c : int;
  mutable mna_builds_c : int;
  mutable cache_exact_hits_c : int;
  mutable cache_pattern_hits_c : int;
  mutable cache_misses_c : int;
  mutable cache_bytes_c : int;
  mutable reduce_nodes_c : int;
  mutable reduce_elements_c : int;
  mutable reduce_parallels_c : int;
  mutable reduce_series_c : int;
  mutable reduce_chains_c : int;
  mutable reduce_stars_c : int;
  mutable eco_edits_c : int;
  mutable eco_dirty_c : int;
  mutable eco_reused_c : int;
  mutable eco_fallbacks_c : int;
  phases : (string, float) Hashtbl.t; (* phase name -> CPU seconds *)
}

let fresh () =
  { factorizations_c = 0;
    moment_solves_c = 0;
    fits_c = 0;
    fit_retries_c = 0;
    order_escalations_c = 0;
    mna_builds_c = 0;
    cache_exact_hits_c = 0;
    cache_pattern_hits_c = 0;
    cache_misses_c = 0;
    cache_bytes_c = 0;
    reduce_nodes_c = 0;
    reduce_elements_c = 0;
    reduce_parallels_c = 0;
    reduce_series_c = 0;
    reduce_chains_c = 0;
    reduce_stars_c = 0;
    eco_edits_c = 0;
    eco_dirty_c = 0;
    eco_reused_c = 0;
    eco_fallbacks_c = 0;
    phases = Hashtbl.create 8 }

(* one counter record per domain, created on first use *)
let key = Domain.DLS.new_key fresh

let current () = Domain.DLS.get key

let reset () =
  let c = current () in
  c.factorizations_c <- 0;
  c.moment_solves_c <- 0;
  c.fits_c <- 0;
  c.fit_retries_c <- 0;
  c.order_escalations_c <- 0;
  c.mna_builds_c <- 0;
  c.cache_exact_hits_c <- 0;
  c.cache_pattern_hits_c <- 0;
  c.cache_misses_c <- 0;
  c.cache_bytes_c <- 0;
  c.reduce_nodes_c <- 0;
  c.reduce_elements_c <- 0;
  c.reduce_parallels_c <- 0;
  c.reduce_series_c <- 0;
  c.reduce_chains_c <- 0;
  c.reduce_stars_c <- 0;
  c.eco_edits_c <- 0;
  c.eco_dirty_c <- 0;
  c.eco_reused_c <- 0;
  c.eco_fallbacks_c <- 0;
  Hashtbl.reset c.phases

let record_factorization () =
  let c = current () in
  c.factorizations_c <- c.factorizations_c + 1

let record_moment_solve () =
  let c = current () in
  c.moment_solves_c <- c.moment_solves_c + 1

let record_fit () =
  let c = current () in
  c.fits_c <- c.fits_c + 1

let record_fit_retry () =
  let c = current () in
  c.fit_retries_c <- c.fit_retries_c + 1

let record_order_escalation () =
  let c = current () in
  c.order_escalations_c <- c.order_escalations_c + 1

let record_mna_build () =
  let c = current () in
  c.mna_builds_c <- c.mna_builds_c + 1

let record_cache_exact_hit () =
  let c = current () in
  c.cache_exact_hits_c <- c.cache_exact_hits_c + 1

let record_cache_pattern_hit () =
  let c = current () in
  c.cache_pattern_hits_c <- c.cache_pattern_hits_c + 1

let record_cache_miss () =
  let c = current () in
  c.cache_misses_c <- c.cache_misses_c + 1

let record_cache_bytes n =
  let c = current () in
  c.cache_bytes_c <- c.cache_bytes_c + n

let record_reduction ~nodes ~elements ~parallels ~series ~chains ~stars =
  let c = current () in
  c.reduce_nodes_c <- c.reduce_nodes_c + nodes;
  c.reduce_elements_c <- c.reduce_elements_c + elements;
  c.reduce_parallels_c <- c.reduce_parallels_c + parallels;
  c.reduce_series_c <- c.reduce_series_c + series;
  c.reduce_chains_c <- c.reduce_chains_c + chains;
  c.reduce_stars_c <- c.reduce_stars_c + stars

let record_eco ~edits ~dirty_nets ~reused_nets ~full_fallbacks =
  let c = current () in
  c.eco_edits_c <- c.eco_edits_c + edits;
  c.eco_dirty_c <- c.eco_dirty_c + dirty_nets;
  c.eco_reused_c <- c.eco_reused_c + reused_nets;
  c.eco_fallbacks_c <- c.eco_fallbacks_c + full_fallbacks

let replay s =
  let c = current () in
  c.factorizations_c <- c.factorizations_c + s.factorizations;
  c.moment_solves_c <- c.moment_solves_c + s.moment_solves;
  c.fits_c <- c.fits_c + s.fits;
  c.fit_retries_c <- c.fit_retries_c + s.fit_retries;
  c.order_escalations_c <- c.order_escalations_c + s.order_escalations;
  c.mna_builds_c <- c.mna_builds_c + s.mna_builds

let add_phase phases phase dt =
  let prev = Option.value ~default:0. (Hashtbl.find_opt phases phase) in
  Hashtbl.replace phases phase (prev +. dt)

let time phase f =
  let t0 = Sys.time () in
  Fun.protect
    ~finally:(fun () -> add_phase (current ()).phases phase (Sys.time () -. t0))
    f

let snapshot_of c =
  { factorizations = c.factorizations_c;
    moment_solves = c.moment_solves_c;
    fits = c.fits_c;
    fit_retries = c.fit_retries_c;
    order_escalations = c.order_escalations_c;
    mna_builds = c.mna_builds_c;
    cache_exact_hits = c.cache_exact_hits_c;
    cache_pattern_hits = c.cache_pattern_hits_c;
    cache_misses = c.cache_misses_c;
    cache_bytes = c.cache_bytes_c;
    reduce_nodes_eliminated = c.reduce_nodes_c;
    reduce_elements_eliminated = c.reduce_elements_c;
    reduce_parallel_merges = c.reduce_parallels_c;
    reduce_series_merges = c.reduce_series_c;
    reduce_chain_lumps = c.reduce_chains_c;
    reduce_star_merges = c.reduce_stars_c;
    eco_edits = c.eco_edits_c;
    eco_dirty_nets = c.eco_dirty_c;
    eco_reused_nets = c.eco_reused_c;
    eco_full_fallbacks = c.eco_fallbacks_c;
    phase_seconds =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.phases []
      |> List.sort compare }

let snapshot () = snapshot_of (current ())

let zero =
  { factorizations = 0;
    moment_solves = 0;
    fits = 0;
    fit_retries = 0;
    order_escalations = 0;
    mna_builds = 0;
    cache_exact_hits = 0;
    cache_pattern_hits = 0;
    cache_misses = 0;
    cache_bytes = 0;
    reduce_nodes_eliminated = 0;
    reduce_elements_eliminated = 0;
    reduce_parallel_merges = 0;
    reduce_series_merges = 0;
    reduce_chain_lumps = 0;
    reduce_star_merges = 0;
    eco_edits = 0;
    eco_dirty_nets = 0;
    eco_reused_nets = 0;
    eco_full_fallbacks = 0;
    phase_seconds = [] }

let diff a b =
  let sub l l' =
    (* phases present in [a] minus their value in [b] *)
    List.map
      (fun (k, v) ->
        (k, v -. Option.value ~default:0. (List.assoc_opt k l')))
      l
  in
  { factorizations = a.factorizations - b.factorizations;
    moment_solves = a.moment_solves - b.moment_solves;
    fits = a.fits - b.fits;
    fit_retries = a.fit_retries - b.fit_retries;
    order_escalations = a.order_escalations - b.order_escalations;
    mna_builds = a.mna_builds - b.mna_builds;
    cache_exact_hits = a.cache_exact_hits - b.cache_exact_hits;
    cache_pattern_hits = a.cache_pattern_hits - b.cache_pattern_hits;
    cache_misses = a.cache_misses - b.cache_misses;
    cache_bytes = a.cache_bytes - b.cache_bytes;
    reduce_nodes_eliminated =
      a.reduce_nodes_eliminated - b.reduce_nodes_eliminated;
    reduce_elements_eliminated =
      a.reduce_elements_eliminated - b.reduce_elements_eliminated;
    reduce_parallel_merges =
      a.reduce_parallel_merges - b.reduce_parallel_merges;
    reduce_series_merges = a.reduce_series_merges - b.reduce_series_merges;
    reduce_chain_lumps = a.reduce_chain_lumps - b.reduce_chain_lumps;
    reduce_star_merges = a.reduce_star_merges - b.reduce_star_merges;
    eco_edits = a.eco_edits - b.eco_edits;
    eco_dirty_nets = a.eco_dirty_nets - b.eco_dirty_nets;
    eco_reused_nets = a.eco_reused_nets - b.eco_reused_nets;
    eco_full_fallbacks = a.eco_full_fallbacks - b.eco_full_fallbacks;
    phase_seconds = sub a.phase_seconds b.phase_seconds }

let merge a b =
  let phases =
    (* union by phase name; keys of both lists, each counted once *)
    let tbl = Hashtbl.create 8 in
    List.iter (fun (k, v) -> add_phase tbl k v) a.phase_seconds;
    List.iter (fun (k, v) -> add_phase tbl k v) b.phase_seconds;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
  in
  { factorizations = a.factorizations + b.factorizations;
    moment_solves = a.moment_solves + b.moment_solves;
    fits = a.fits + b.fits;
    fit_retries = a.fit_retries + b.fit_retries;
    order_escalations = a.order_escalations + b.order_escalations;
    mna_builds = a.mna_builds + b.mna_builds;
    cache_exact_hits = a.cache_exact_hits + b.cache_exact_hits;
    cache_pattern_hits = a.cache_pattern_hits + b.cache_pattern_hits;
    cache_misses = a.cache_misses + b.cache_misses;
    cache_bytes = a.cache_bytes + b.cache_bytes;
    reduce_nodes_eliminated =
      a.reduce_nodes_eliminated + b.reduce_nodes_eliminated;
    reduce_elements_eliminated =
      a.reduce_elements_eliminated + b.reduce_elements_eliminated;
    reduce_parallel_merges =
      a.reduce_parallel_merges + b.reduce_parallel_merges;
    reduce_series_merges = a.reduce_series_merges + b.reduce_series_merges;
    reduce_chain_lumps = a.reduce_chain_lumps + b.reduce_chain_lumps;
    reduce_star_merges = a.reduce_star_merges + b.reduce_star_merges;
    eco_edits = a.eco_edits + b.eco_edits;
    eco_dirty_nets = a.eco_dirty_nets + b.eco_dirty_nets;
    eco_reused_nets = a.eco_reused_nets + b.eco_reused_nets;
    eco_full_fallbacks = a.eco_full_fallbacks + b.eco_full_fallbacks;
    phase_seconds = phases }

let scoped f =
  let outer = current () in
  let inner = fresh () in
  Domain.DLS.set key inner;
  let restore () =
    Domain.DLS.set key outer;
    (* fold the window back in so the domain's counters stay monotone
       and an enclosing snapshot/diff still sees this work *)
    outer.factorizations_c <- outer.factorizations_c + inner.factorizations_c;
    outer.moment_solves_c <- outer.moment_solves_c + inner.moment_solves_c;
    outer.fits_c <- outer.fits_c + inner.fits_c;
    outer.fit_retries_c <- outer.fit_retries_c + inner.fit_retries_c;
    outer.order_escalations_c <-
      outer.order_escalations_c + inner.order_escalations_c;
    outer.mna_builds_c <- outer.mna_builds_c + inner.mna_builds_c;
    outer.cache_exact_hits_c <-
      outer.cache_exact_hits_c + inner.cache_exact_hits_c;
    outer.cache_pattern_hits_c <-
      outer.cache_pattern_hits_c + inner.cache_pattern_hits_c;
    outer.cache_misses_c <- outer.cache_misses_c + inner.cache_misses_c;
    outer.cache_bytes_c <- outer.cache_bytes_c + inner.cache_bytes_c;
    outer.reduce_nodes_c <- outer.reduce_nodes_c + inner.reduce_nodes_c;
    outer.reduce_elements_c <-
      outer.reduce_elements_c + inner.reduce_elements_c;
    outer.reduce_parallels_c <-
      outer.reduce_parallels_c + inner.reduce_parallels_c;
    outer.reduce_series_c <- outer.reduce_series_c + inner.reduce_series_c;
    outer.reduce_chains_c <- outer.reduce_chains_c + inner.reduce_chains_c;
    outer.reduce_stars_c <- outer.reduce_stars_c + inner.reduce_stars_c;
    outer.eco_edits_c <- outer.eco_edits_c + inner.eco_edits_c;
    outer.eco_dirty_c <- outer.eco_dirty_c + inner.eco_dirty_c;
    outer.eco_reused_c <- outer.eco_reused_c + inner.eco_reused_c;
    outer.eco_fallbacks_c <- outer.eco_fallbacks_c + inner.eco_fallbacks_c;
    Hashtbl.iter (fun k v -> add_phase outer.phases k v) inner.phases
  in
  match f () with
  | v ->
    let s = snapshot_of inner in
    restore ();
    (v, s)
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    restore ();
    Printexc.raise_with_backtrace e bt

let pp ppf s =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "mna builds:        %d@," s.mna_builds;
  Format.fprintf ppf "factorizations:    %d@," s.factorizations;
  Format.fprintf ppf "moment solves:     %d@," s.moment_solves;
  Format.fprintf ppf "fits:              %d@," s.fits;
  Format.fprintf ppf "fit retries:       %d@," s.fit_retries;
  Format.fprintf ppf "order escalations: %d" s.order_escalations;
  if s.cache_exact_hits + s.cache_pattern_hits + s.cache_misses > 0 then begin
    Format.fprintf ppf "@,cache exact hits:  %d" s.cache_exact_hits;
    Format.fprintf ppf "@,cache pattern hits:%d" s.cache_pattern_hits;
    Format.fprintf ppf "@,cache misses:      %d" s.cache_misses;
    Format.fprintf ppf "@,cache bytes:       %d" s.cache_bytes
  end;
  if
    s.reduce_nodes_eliminated + s.reduce_elements_eliminated
    + s.reduce_parallel_merges + s.reduce_series_merges
    + s.reduce_chain_lumps + s.reduce_star_merges
    > 0
  then begin
    Format.fprintf ppf "@,reduce nodes:      %d" s.reduce_nodes_eliminated;
    Format.fprintf ppf "@,reduce elements:   %d" s.reduce_elements_eliminated;
    Format.fprintf ppf
      "@,reduce transforms: %d parallel, %d series, %d chain, %d star"
      s.reduce_parallel_merges s.reduce_series_merges s.reduce_chain_lumps
      s.reduce_star_merges
  end;
  if
    s.eco_edits + s.eco_dirty_nets + s.eco_reused_nets + s.eco_full_fallbacks
    > 0
  then begin
    Format.fprintf ppf "@,eco edits:         %d" s.eco_edits;
    Format.fprintf ppf "@,eco dirty nets:    %d" s.eco_dirty_nets;
    Format.fprintf ppf "@,eco reused nets:   %d" s.eco_reused_nets;
    Format.fprintf ppf "@,eco fallbacks:     %d" s.eco_full_fallbacks
  end;
  List.iter
    (fun (phase, secs) ->
      if secs > 0. then
        Format.fprintf ppf "@,%-8s time:     %.3g ms" phase (1e3 *. secs))
    s.phase_seconds;
  Format.fprintf ppf "@]"
