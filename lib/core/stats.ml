(* Global instrumentation counters for the AWE pipeline.  The counters
   are monotone; callers that want per-analysis numbers take a snapshot
   before and after and subtract (see [diff]).  Single-threaded, like
   the rest of the library. *)

type snapshot = {
  factorizations : int;
  moment_solves : int;
  fits : int;
  fit_retries : int;
  order_escalations : int;
  mna_builds : int;
  phase_seconds : (string * float) list;
}

let factorizations = ref 0

let moment_solves = ref 0

let fits = ref 0

let fit_retries = ref 0

let order_escalations = ref 0

let mna_builds = ref 0

(* phase name -> accumulated CPU seconds *)
let phases : (string, float) Hashtbl.t = Hashtbl.create 8

let reset () =
  factorizations := 0;
  moment_solves := 0;
  fits := 0;
  fit_retries := 0;
  order_escalations := 0;
  mna_builds := 0;
  Hashtbl.reset phases

let record_factorization () = incr factorizations

let record_moment_solve () = incr moment_solves

let record_fit () = incr fits

let record_fit_retry () = incr fit_retries

let record_order_escalation () = incr order_escalations

let record_mna_build () = incr mna_builds

let time phase f =
  let t0 = Sys.time () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Sys.time () -. t0 in
      let prev = Option.value ~default:0. (Hashtbl.find_opt phases phase) in
      Hashtbl.replace phases phase (prev +. dt))
    f

let snapshot () =
  { factorizations = !factorizations;
    moment_solves = !moment_solves;
    fits = !fits;
    fit_retries = !fit_retries;
    order_escalations = !order_escalations;
    mna_builds = !mna_builds;
    phase_seconds =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) phases []
      |> List.sort compare }

let diff a b =
  let sub l l' =
    (* phases present in [a] minus their value in [b] *)
    List.map
      (fun (k, v) ->
        (k, v -. Option.value ~default:0. (List.assoc_opt k l')))
      l
  in
  { factorizations = a.factorizations - b.factorizations;
    moment_solves = a.moment_solves - b.moment_solves;
    fits = a.fits - b.fits;
    fit_retries = a.fit_retries - b.fit_retries;
    order_escalations = a.order_escalations - b.order_escalations;
    mna_builds = a.mna_builds - b.mna_builds;
    phase_seconds = sub a.phase_seconds b.phase_seconds }

let pp ppf s =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "mna builds:        %d@," s.mna_builds;
  Format.fprintf ppf "factorizations:    %d@," s.factorizations;
  Format.fprintf ppf "moment solves:     %d@," s.moment_solves;
  Format.fprintf ppf "fits:              %d@," s.fits;
  Format.fprintf ppf "fit retries:       %d@," s.fit_retries;
  Format.fprintf ppf "order escalations: %d" s.order_escalations;
  List.iter
    (fun (phase, secs) ->
      if secs > 0. then
        Format.fprintf ppf "@,%-8s time:     %.3g ms" phase (1e3 *. secs))
    s.phase_seconds;
  Format.fprintf ppf "@]"
