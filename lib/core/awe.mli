(** Asymptotic Waveform Evaluation — the top-level driver.

    Given a circuit, an output node, and an approximation order [q],
    [approximate] produces an evaluable reduced-order response:

    + the operating points at [0-] and [0+] fix the initial conditions
      and input jumps (paper, eq. 8);
    + one moment sequence is reduced for the base transient (sources at
      their [0+] values and slopes), and one per ramp-slope break of
      each source waveform, shifted and scaled by superposition (paper,
      Section 4.3, eqs. 63-66);
    + each sequence is moment-matched to [q] poles and residues (paper,
      eqs. 24-29), with frequency scaling (eq. 47).

    The order-control loop [auto] implements Section 3.3-3.4: escalate
    [q] until the (q+1)-vs-q error estimate drops below tolerance,
    treating unstable or degenerate fits as escalation signals. *)

(* Submodules re-exported at the library root. *)
module Moments : module type of Moments
module Approx : module type of Approx
module Moment_match : module type of Moment_match
module Error_est : module type of Error_est
module Elmore : module type of Elmore
module Tree_link : module type of Tree_link
module Two_pole : module type of Two_pole
module Ac : module type of Ac
module Stats : module type of Stats
module Cache : module type of Cache


type options = {
  match_slope : bool;
      (** replace the highest moment by the initial-derivative condition
          (the paper's [m_(-2)] matching, Section 4.3); removes the
          [t = 0] glitch of ramp responses.  Default [false]. *)
  scale_moments : bool;  (** frequency scaling, eq. 47.  Default [true]. *)
  check_stability : bool;
      (** raise on right-half-plane poles.  Default [true]. *)
  sparse : bool;  (** sparse LU for the moment solves.  Default [false]. *)
  reduce_degenerate : bool;
      (** when a subproblem's moment matrix is singular at order [q]
          (fewer than [q] poles participate), retry it at decreasing
          order instead of failing.  Default [true]. *)
  expansion_shift : float;
      (** expansion point [s0] for the moment recursion (default [0.],
          the paper's Maclaurin expansion).  A negative real shift near
          the band of interest resolves fast poles that the DC
          expansion sees weakly — see {!Moments.make}. *)
}

val default_options : options

type t = {
  sys : Circuit.Mna.t;
  node : Circuit.Element.node;
  q : int;
  response : Approx.response;
  base : Approx.transient;
      (** the base component's transient: its poles are "the" AWE poles
          reported in the paper's tables *)
}

exception Degenerate of string
(** No usable fit at any order for a required subproblem. *)

exception Unstable_fit of Linalg.Cx.t list
(** Re-raise of {!Moment_match.Unstable} with the offending poles;
    escalate the order (paper, Section 3.3). *)

(** What to observe: a node voltage, or the branch current of a
    voltage-defined element (independent V source, inductor, VCVS,
    CCVS).  Observing the input source's current yields the
    driving-point (input admittance) reduction — total delivered
    charge, effective capacitance, supply-current waveforms. *)
type observable =
  | Node of Circuit.Element.node
  | Branch_current of int  (** element index *)

type engine
(** The shared analysis state of one system: the single factorization,
    the 0-/0+ operating points, and one lazily extended moment-vector
    sequence per transient subproblem (base plus one ramp kernel per
    breaking source).  Every output node and every order requested of
    the same engine reuses them: evaluating N sinks costs one
    factorization, and escalating from order [q] to [q + 1] costs two
    extra substitutions, not a recomputation (paper, Sections 3.2 and
    3.4). *)

(** Create an engine once per system; the one-shot entry points below
    ([approximate], [auto], ...) are wrappers that build a throwaway
    engine. *)
module Engine : sig
  val create :
    ?options:options -> ?symbolic:Sparse.Slu.symbolic -> Circuit.Mna.t -> engine
  (** Factor once; raises [Circuit.Mna.Singular_dc] like
      {!Moments.make}.  [symbolic] offers a cached pattern analysis to
      the sparse path; it is used only when the system's matrix has
      exactly the analyzed pattern, and never changes the factors. *)

  val sys : engine -> Circuit.Mna.t

  val options : engine -> options

  val symbolic : engine -> Sparse.Slu.symbolic option
  (** The pattern analysis the sparse factorization ran through
      ([None] on the dense path); physically equal to an accepted
      [symbolic] argument, so callers can detect reuse. *)

  val approximate_observable : engine -> observable:observable -> q:int -> t

  val approximate : engine -> node:Circuit.Element.node -> q:int -> t

  val elmore : engine -> node:Circuit.Element.node -> float
  (** Generalized Elmore delay [-mu_1/mu_0] from the first two shared
      moment vectors (no extra factorization). *)

  val error_estimate : engine -> node:Circuit.Element.node -> q:int -> float
  (** The q-vs-(q+1) error term; the two fits share all but two
      moments. *)

  val auto :
    ?tol:float ->
    ?q_max:int ->
    engine ->
    node:Circuit.Element.node ->
    t * float
  (** Incremental order control: same policy as {!Awe.auto}, but each
      escalation extends the shared moment sequence instead of
      recomputing it, so reaching order [q] performs at most
      [2q + 2] moment solves in total. *)

end

val approximate_observable :
  ?options:options -> Circuit.Mna.t -> observable:observable -> q:int -> t
(** Reduce any observable's response.  For [Branch_current] the [node]
    field of the result is meaningless (ground). *)

val approximate :
  ?options:options -> Circuit.Mna.t -> node:Circuit.Element.node -> q:int -> t

val eval : t -> float -> float
(** The approximate output voltage at time [t >= 0]. *)

val waveform : t -> t_stop:float -> samples:int -> Waveform.t

val poles : t -> Linalg.Cx.t list
(** Approximating poles of the base transient, ascending magnitude
    (dominant first). *)

val residues : t -> (Linalg.Cx.t * Linalg.Cx.t) list
(** [(pole, residue)] of the base transient. *)

val steady_state : t -> float
(** Final value of the approximation; exact by construction (moment 0
    matching — paper, Section 3.3). *)

val delay : t -> threshold:float -> t_max:float -> float option
(** First rising crossing of [threshold]. *)

val error_estimate :
  ?options:options ->
  Circuit.Mna.t ->
  node:Circuit.Element.node ->
  q:int ->
  float
(** The paper's error term for order [q] (Section 3.4), as a
    fraction.  For break-free (step/DC) excitations this is the exact
    closed-form relative L2 distance between the order-[q] and
    order-[q+1] base transients — the paper's arithmetic.  When the
    excitation has slope breaks (ramp/PWL), the two assembled
    response {e models} are compared on a time grid instead, because
    (a) the base transient can be identically zero there, making its
    self-distance blind to kernel error, and (b) the superposition of
    large-slope shifted kernel copies amplifies per-kernel error
    through cancellation.  The grid comparison is still pure
    reduced-model evaluation — no circuit integration. *)

val auto :
  ?options:options ->
  ?tol:float ->
  ?q_max:int ->
  Circuit.Mna.t ->
  node:Circuit.Element.node ->
  t * float
(** Adaptive order control: starting at [q = 1], escalate while the
    error estimate exceeds [tol] (default [0.02]) or the fit is
    unstable/degenerate, up to [q_max] (default [8]).  Returns the
    chosen approximation and its error estimate. *)

val elmore_equivalent : Circuit.Mna.t -> node:Circuit.Element.node -> float
(** The generalized Elmore delay [-mu_1 / mu_0] obtained from the first
    two moments (equal to the classical Elmore delay on RC trees, and
    to the steady-state-scaled delay of eq. 3 with grounded
    resistors). *)

(** Batched AWE over many outputs: one moment computation shared by
    every observation node (paper, Section IV / eq. 56). *)
module Batch : sig
  (** Batched AWE over many outputs.

      The expensive work — factoring the DC matrix and running the moment
      recursion — is independent of the observation node: the recursion
      produces full moment *vectors* and each output only projects them
      (paper, Section IV: one tree/link solve yields the Elmore delays of
      {e all} nodes, eq. 56).  This module amortizes that work across all
      requested outputs, which is how a timing analyzer evaluates every
      sink of a net from a single analysis. *)

  type result = {
    node : Circuit.Element.node;
    outcome : outcome;
  }

  and outcome =
    | Approximation of t
    | Failed of string
        (** degenerate or unstable at the requested order even after
            in-scope reduction; the node needs individual escalation *)

  val approximate_all :
    ?options:options ->
    ?engine:engine ->
    Circuit.Mna.t ->
    nodes:Circuit.Element.node list ->
    q:int ->
    result list
  (** One moment computation, one fit per node.  Results are in the order
      of [nodes].  Raises [Invalid_argument] if any node is ground.
      When [engine] is given it is used as-is (it must belong to the
      same system) and [options] is ignored. *)

  val delays_all :
    ?options:options ->
    ?engine:engine ->
    Circuit.Mna.t ->
    nodes:Circuit.Element.node list ->
    q:int ->
    threshold:float ->
    t_max:float ->
    (Circuit.Element.node * float option) list
  (** Threshold-crossing delay at every node from one batched analysis.
      Nodes whose fixed-order fit fails are retried with adaptive order
      escalation on the same engine before reporting [None]. *)

  val elmore_all :
    ?options:options ->
    ?engine:engine ->
    Circuit.Mna.t ->
    (Circuit.Element.node * float) list
  (** Generalized Elmore delay [-mu_1/mu_0] of every non-ground node from
      a single pair of shared moment vectors.  [options] selects the
      sparse solver and expansion shift like the other entry points
      (with a nonzero shift the ratio is about [s0], not DC). *)

end
