(* Two-tier structure cache (see cache.mli).  Both tiers are
   persistent maps so [view] is a pointer copy: tasks running in other
   domains read the frozen snapshot while the coordinator keeps
   publishing into the mutable roots. *)

module Smap = Map.Make (String)

type 'a exact_entry = { e_sig : string; e_payload : 'a }

(* The pattern tier lives in its own store so several caches can share
   one: corner analyses change element values, never topology, so the
   symbolic factorizations are corner-invariant — N per-corner caches
   pointing at one [patterns] store pay for each topology's symbolic
   analysis exactly once across all corners.  The epoch counts
   publications, so caches sharing the store can tell their memoized
   footprint is stale without seeing each other. *)
type patterns = {
  mutable p_symbolics : Sparse.Slu.symbolic list Smap.t;
      (* pattern hash -> analyses *)
  mutable p_epoch : int;
}

type 'a t = {
  mutable exact : 'a exact_entry list Smap.t; (* exact hash -> entries *)
  pats : patterns; (* possibly shared with other caches *)
  mutable bytes_memo : (int * int) option;
      (* (pattern epoch, footprint): lazily computed, invalidated by
         exact publication (dropped) or pattern publication through
         any sharer (epoch mismatch) *)
}

type 'a view = {
  v_exact : 'a exact_entry list Smap.t;
  v_symbolics : Sparse.Slu.symbolic list Smap.t;
}

let create_patterns () = { p_symbolics = Smap.empty; p_epoch = 0 }

let create ?patterns () =
  let pats =
    match patterns with Some p -> p | None -> create_patterns ()
  in
  { exact = Smap.empty; pats; bytes_memo = None }

let patterns t = t.pats

let view t = { v_exact = t.exact; v_symbolics = t.pats.p_symbolics }

let find_exact v ~hash ~signature =
  match Smap.find_opt hash v.v_exact with
  | None -> None
  | Some entries ->
    List.find_map
      (fun e ->
        if String.equal e.e_sig signature then Some e.e_payload else None)
      entries

let find_symbolic v ~hash =
  Option.value ~default:[] (Smap.find_opt hash v.v_symbolics)

let publish_exact t ~hash ~signature payload =
  let entries = Option.value ~default:[] (Smap.find_opt hash t.exact) in
  if List.exists (fun e -> String.equal e.e_sig signature) entries then false
  else begin
    t.exact <-
      Smap.add hash ({ e_sig = signature; e_payload = payload } :: entries)
        t.exact;
    t.bytes_memo <- None;
    true
  end

let publish_symbolic t ~hash s =
  let p = t.pats in
  let entries = Option.value ~default:[] (Smap.find_opt hash p.p_symbolics) in
  if List.exists (fun s' -> Sparse.Slu.same_analysis s' s) entries then false
  else begin
    p.p_symbolics <- Smap.add hash (s :: entries) p.p_symbolics;
    p.p_epoch <- p.p_epoch + 1;
    t.bytes_memo <- None;
    true
  end

(* Removal exists for incremental sessions: an edit that changes a
   net's exact key retires the old entry once no live net references
   it, keeping the key set equal to what a cold run of the edited
   design would publish.  Both removers bump the pattern epoch /
   drop the byte memo like publication does. *)
let remove_exact t ~hash ~signature =
  match Smap.find_opt hash t.exact with
  | None -> false
  | Some entries ->
    let kept =
      List.filter (fun e -> not (String.equal e.e_sig signature)) entries
    in
    if List.length kept = List.length entries then false
    else begin
      t.exact <-
        (if kept = [] then Smap.remove hash t.exact
         else Smap.add hash kept t.exact);
      t.bytes_memo <- None;
      true
    end

let remove_symbolic t ~hash =
  let p = t.pats in
  match Smap.find_opt hash p.p_symbolics with
  | None -> 0
  | Some entries ->
    p.p_symbolics <- Smap.remove hash p.p_symbolics;
    p.p_epoch <- p.p_epoch + 1;
    t.bytes_memo <- None;
    List.length entries

(* The reachability sweep is linear in the cache size; memoizing it
   turns repeated stats-time queries (one per [analyze]) into a single
   sweep per publication epoch instead of one per call.  The memo
   carries the pattern epoch so a publication through a cache sharing
   the same pattern store invalidates it too. *)
let bytes t =
  match t.bytes_memo with
  | Some (epoch, b) when epoch = t.pats.p_epoch -> b
  | _ ->
    let b =
      Obj.reachable_words (Obj.repr (t.exact, t.pats.p_symbolics))
      * (Sys.word_size / 8)
    in
    t.bytes_memo <- Some (t.pats.p_epoch, b);
    b

let exact_entries t =
  Smap.fold (fun _ entries n -> n + List.length entries) t.exact 0

let symbolic_entries t =
  Smap.fold (fun _ entries n -> n + List.length entries) t.pats.p_symbolics 0

let exact_keys t =
  Smap.fold
    (fun hash entries acc ->
      List.fold_left (fun acc e -> (hash, e.e_sig) :: acc) acc entries)
    t.exact []
  |> List.sort compare

let symbolic_keys t =
  Smap.fold
    (fun hash entries acc ->
      List.rev_append (List.map (fun _ -> hash) entries) acc)
    t.pats.p_symbolics []
  |> List.sort compare

(* Shards: per-task private overlays.  A shard records its own
   publications in insertion order (the log) and indexes them for
   intra-task lookup.  Lookups are local-only — the caller decides how
   the frozen shared view composes with the shard, because the
   determinism contract distinguishes the two tiers. *)
module Shard = struct
  type 'a publication =
    | P_exact of { hash : string; signature : string; payload : 'a }
    | P_symbolic of { hash : string; s : Sparse.Slu.symbolic }

  type 'a t = {
    s_exact : (string, 'a exact_entry list) Hashtbl.t;
    s_symbolics : (string, Sparse.Slu.symbolic list) Hashtbl.t;
    mutable log : 'a publication list; (* newest first *)
  }

  let create () =
    { s_exact = Hashtbl.create 16;
      s_symbolics = Hashtbl.create 16;
      log = [] }

  let find_exact t ~hash ~signature =
    match Hashtbl.find_opt t.s_exact hash with
    | None -> None
    | Some entries ->
      List.find_map
        (fun e ->
          if String.equal e.e_sig signature then Some e.e_payload else None)
        entries

  let find_symbolic t ~hash =
    Option.value ~default:[] (Hashtbl.find_opt t.s_symbolics hash)

  let publish_exact t ~hash ~signature payload =
    let entries = Option.value ~default:[] (Hashtbl.find_opt t.s_exact hash) in
    if not (List.exists (fun e -> String.equal e.e_sig signature) entries)
    then begin
      Hashtbl.replace t.s_exact hash
        ({ e_sig = signature; e_payload = payload } :: entries);
      t.log <- P_exact { hash; signature; payload } :: t.log
    end

  let publish_symbolic t ~hash s =
    let entries =
      Option.value ~default:[] (Hashtbl.find_opt t.s_symbolics hash)
    in
    if not (List.exists (fun s' -> Sparse.Slu.same_analysis s' s) entries)
    then begin
      Hashtbl.replace t.s_symbolics hash (s :: entries);
      t.log <- P_symbolic { hash; s } :: t.log
    end

  let publications t = List.rev t.log
end

let absorb t shard =
  List.iter
    (function
      | Shard.P_exact { hash; signature; payload } ->
        ignore (publish_exact t ~hash ~signature payload)
      | Shard.P_symbolic { hash; s } -> ignore (publish_symbolic t ~hash s))
    (Shard.publications shard)
