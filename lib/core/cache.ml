(* Two-tier structure cache (see cache.mli).  Both tiers are
   persistent maps so [view] is a pointer copy: tasks running in other
   domains read the frozen snapshot while the coordinator keeps
   publishing into the mutable roots. *)

module Smap = Map.Make (String)

type 'a exact_entry = { e_sig : string; e_payload : 'a }

type 'a t = {
  mutable exact : 'a exact_entry list Smap.t; (* exact hash -> entries *)
  mutable symbolics : Sparse.Slu.symbolic list Smap.t;
      (* pattern hash -> analyses *)
}

type 'a view = {
  v_exact : 'a exact_entry list Smap.t;
  v_symbolics : Sparse.Slu.symbolic list Smap.t;
}

let create () = { exact = Smap.empty; symbolics = Smap.empty }

let view t = { v_exact = t.exact; v_symbolics = t.symbolics }

let find_exact v ~hash ~signature =
  match Smap.find_opt hash v.v_exact with
  | None -> None
  | Some entries ->
    List.find_map
      (fun e ->
        if String.equal e.e_sig signature then Some e.e_payload else None)
      entries

let find_symbolic v ~hash =
  Option.value ~default:[] (Smap.find_opt hash v.v_symbolics)

let publish_exact t ~hash ~signature payload =
  let entries = Option.value ~default:[] (Smap.find_opt hash t.exact) in
  if List.exists (fun e -> String.equal e.e_sig signature) entries then false
  else begin
    t.exact <-
      Smap.add hash ({ e_sig = signature; e_payload = payload } :: entries)
        t.exact;
    true
  end

let publish_symbolic t ~hash s =
  let entries = Option.value ~default:[] (Smap.find_opt hash t.symbolics) in
  if List.exists (fun s' -> Sparse.Slu.same_analysis s' s) entries then false
  else begin
    t.symbolics <- Smap.add hash (s :: entries) t.symbolics;
    true
  end

let bytes t =
  Obj.reachable_words (Obj.repr (t.exact, t.symbolics))
  * (Sys.word_size / 8)
