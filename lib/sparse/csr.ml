type t = {
  nrows : int;
  ncols : int;
  row_ptr : int array; (* length nrows+1 *)
  col_idx : int array; (* length nnz, ascending within each row *)
  values : float array;
}

let rows m = m.nrows

let cols m = m.ncols

let nnz m = m.row_ptr.(m.nrows)

let of_entries ~nrows ~ncols entries =
  (* entries: (i, j, v) list; sum duplicates, drop zeros, sort columns *)
  let per_row = Array.make nrows [] in
  List.iter (fun (i, j, v) -> per_row.(i) <- (j, v) :: per_row.(i)) entries;
  let compact =
    Array.map
      (fun cells ->
        let sorted = List.sort (fun (a, _) (b, _) -> compare a b) cells in
        let rec merge = function
          | [] -> []
          | [ (j, v) ] -> if v = 0. then [] else [ (j, v) ]
          | (j1, v1) :: (j2, v2) :: rest when j1 = j2 ->
            merge ((j1, v1 +. v2) :: rest)
          | (j, v) :: rest ->
            if v = 0. then merge rest else (j, v) :: merge rest
        in
        merge sorted)
      per_row
  in
  let total = Array.fold_left (fun acc l -> acc + List.length l) 0 compact in
  let row_ptr = Array.make (nrows + 1) 0 in
  let col_idx = Array.make (Stdlib.max total 1) 0 in
  let values = Array.make (Stdlib.max total 1) 0. in
  let pos = ref 0 in
  Array.iteri
    (fun i cells ->
      row_ptr.(i) <- !pos;
      List.iter
        (fun (j, v) ->
          col_idx.(!pos) <- j;
          values.(!pos) <- v;
          incr pos)
        cells)
    compact;
  row_ptr.(nrows) <- !pos;
  { nrows; ncols; row_ptr; col_idx; values }

let of_coo coo =
  of_entries ~nrows:(Coo.rows coo) ~ncols:(Coo.cols coo) (Coo.entries coo)

let of_dense ?(drop_tol = 0.) d =
  let nrows = Linalg.Matrix.rows d and ncols = Linalg.Matrix.cols d in
  let entries = ref [] in
  for i = nrows - 1 downto 0 do
    for j = ncols - 1 downto 0 do
      let v = Linalg.Matrix.get d i j in
      if Float.abs v > drop_tol then entries := (i, j, v) :: !entries
    done
  done;
  of_entries ~nrows ~ncols !entries

let get m i j =
  if i < 0 || i >= m.nrows || j < 0 || j >= m.ncols then
    invalid_arg "Csr.get: index out of bounds";
  let lo = ref m.row_ptr.(i) and hi = ref (m.row_ptr.(i + 1) - 1) in
  let found = ref 0. in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = compare m.col_idx.(mid) j in
    if c = 0 then begin
      found := m.values.(mid);
      lo := !hi + 1
    end
    else if c < 0 then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let mul_vec m x =
  if Array.length x <> m.ncols then invalid_arg "Csr.mul_vec: dim mismatch";
  Array.init m.nrows (fun i ->
      let acc = ref 0. in
      for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
        acc := !acc +. (m.values.(k) *. x.(m.col_idx.(k)))
      done;
      !acc)

let mul_vec_transpose m x =
  if Array.length x <> m.nrows then
    invalid_arg "Csr.mul_vec_transpose: dim mismatch";
  let y = Array.make m.ncols 0. in
  for i = 0 to m.nrows - 1 do
    let xi = x.(i) in
    if xi <> 0. then
      for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
        y.(m.col_idx.(k)) <- y.(m.col_idx.(k)) +. (m.values.(k) *. xi)
      done
  done;
  y

let to_dense m =
  let d = Linalg.Matrix.create m.nrows m.ncols in
  for i = 0 to m.nrows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      Linalg.Matrix.set d i m.col_idx.(k) m.values.(k)
    done
  done;
  d

let row_iter m i f =
  for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    f m.col_idx.(k) m.values.(k)
  done

let pattern m = (m.row_ptr, m.col_idx)

let values m = m.values

let same_pattern a b =
  a.nrows = b.nrows && a.ncols = b.ncols
  && nnz a = nnz b
  && (a.row_ptr == b.row_ptr
     || Array.for_all2 (fun x y -> x = y) a.row_ptr b.row_ptr)
  && (a.col_idx == b.col_idx
     ||
     let n = nnz a in
     let rec eq k = k >= n || (a.col_idx.(k) = b.col_idx.(k) && eq (k + 1)) in
     eq 0)

let transpose m =
  let entries = ref [] in
  for i = m.nrows - 1 downto 0 do
    for k = m.row_ptr.(i + 1) - 1 downto m.row_ptr.(i) do
      entries := (m.col_idx.(k), i, m.values.(k)) :: !entries
    done
  done;
  of_entries ~nrows:m.ncols ~ncols:m.nrows !entries

let permute m ~rows ~cols =
  if Array.length rows <> m.nrows || Array.length cols <> m.ncols then
    invalid_arg "Csr.permute: permutation size mismatch";
  let inv_cols = Array.make m.ncols 0 in
  Array.iteri (fun pos j -> inv_cols.(j) <- pos) cols;
  let entries = ref [] in
  for pos = m.nrows - 1 downto 0 do
    let i = rows.(pos) in
    for k = m.row_ptr.(i + 1) - 1 downto m.row_ptr.(i) do
      entries := (pos, inv_cols.(m.col_idx.(k)), m.values.(k)) :: !entries
    done
  done;
  of_entries ~nrows:m.nrows ~ncols:m.ncols !entries
