(** Sparse LU factorization (left-looking Gilbert-Peierls) with an
    explicit symbolic/numeric split.

    The AWE moment recursion factors the DC conductance matrix once and
    then performs [2q] forward/back substitutions (paper, Section 3.2);
    circuit matrices are very sparse, so a sparse factorization keeps
    the whole moment computation near-linear in circuit size.

    The factorization is split into two phases.  {!symbolic} derives
    everything that depends on the nonzero pattern alone: the
    fill-reducing ordering, a {e static} pivot assignment (a maximum
    matching that places every pivot on a stored entry, preferring the
    diagonal — the numerically dominant choice for MNA node rows), and
    the per-column reach sets discovered by depth-first search on the
    pattern of the partially built [L] (Gilbert & Peierls' algorithm,
    run once on the pattern instead of once per matrix).  {!refactor}
    replays only the numeric scatter/update/gather against a
    precomputed symbolic — the phase that is repeated when many
    matrices share one sparsity pattern, as the structurally identical
    per-net MNA systems of a timing design do.  {!factor} is the
    one-shot composition of the two. *)

type t
(** A factorization [P A = L U] of a square sparse matrix. *)

exception Singular of int
(** Raised when no nonzero pivot exists, carrying the failing column
    in the {e original} (unpermuted) numbering — i.e. the index of the
    unknown whose equation set is rank deficient, which MNA callers
    map back to a node name or branch element.  Raised by {!symbolic}
    on structural deficiency (no perfect matching exists — no value
    assignment can make the matrix nonsingular) and by {!refactor}
    when a structurally present pivot cancels to exactly zero. *)

val min_degree_order : Csr.t -> int array
(** Greedy minimum-degree ordering of the symmetrized nonzero
    pattern, the fill-reducing permutation [factor] applies by
    default.  Pivot selection uses degree buckets (a doubly-linked
    vertex list per degree), so picking each pivot is O(1) amortized
    rather than a scan over all remaining vertices. *)

type symbolic
(** The pattern-only half of a factorization: ordering, static pivot
    assignment, elimination (fill) structure, and the scatter map from
    stored entries to pivot positions.  Immutable and safe to share
    across domains; every matrix with the same stored pattern reuses
    it through {!refactor}. *)

val symbolic : ?order:int array -> Csr.t -> symbolic
(** Analyze a square CSR pattern.  Raises [Singular] on structural
    rank deficiency ({!Matching.structurally_singular} predicts
    exactly these failures).  [order] overrides the fill-reducing
    symmetric permutation (default {!min_degree_order}); it must be a
    permutation of [0 .. n-1].  Entry values are never read. *)

val refactor : symbolic -> Csr.t -> t
(** [refactor s a] runs the numeric factorization of [a] through the
    precomputed analysis [s].  The stored pattern of [a] must be
    identical to the pattern [s] analyzed: a mismatched matrix is
    rejected with [Invalid_argument] naming the first mismatching
    column (silently scattering into wrong positions would corrupt
    the factors).  Raises [Singular] when an assigned pivot evaluates
    to exactly zero. *)

val pattern_matches : symbolic -> Csr.t -> bool
(** Whether [refactor] would accept the matrix: its stored pattern is
    identical to the one the symbolic analyzed.  Cheap (linear scan,
    no allocation); use it to probe cached symbolics. *)

val same_analysis : symbolic -> symbolic -> bool
(** Whether two symbolics analyzed the identical stored pattern (and
    are therefore interchangeable for {!refactor}).  Used by caches to
    avoid storing duplicate analyses of one pattern. *)

val symbolic_dim : symbolic -> int

val symbolic_nnz : symbolic -> int
(** Stored positions in the symbolic's predicted [L] and [U] patterns
    (including the diagonal) — the fill the numeric phase will fill. *)

val factor : ?order:int array -> Csr.t -> t
(** [symbolic] followed by [refactor] on the same matrix.  Raises
    [Singular] on structural or numerical rank deficiency.
    {!Matching.structurally_singular} on the same pattern predicts the
    structural subset of these failures without any arithmetic.

    [order] overrides the fill-reducing symmetric permutation (default
    {!min_degree_order}); it must be a permutation of [0 .. n-1].
    Exposed so orderings can be compared by the fill they produce. *)

val solve : t -> Linalg.Vec.t -> Linalg.Vec.t
(** [solve f b] returns [x] with [A x = b]. *)

val dim : t -> int

val nnz_factors : t -> int
(** Stored nonzeros in [L] and [U] together — the fill-in metric
    reported by the scaling benchmark. *)

val solve_system : Csr.t -> Linalg.Vec.t -> Linalg.Vec.t
(** One-shot [factor] + [solve]. *)
