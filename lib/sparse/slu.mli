(** Sparse LU factorization (left-looking Gilbert-Peierls) with partial
    pivoting.

    The AWE moment recursion factors the DC conductance matrix once and
    then performs [2q] forward/back substitutions (paper, Section 3.2);
    circuit matrices are very sparse, so a sparse factorization keeps
    the whole moment computation near-linear in circuit size.  Each
    column is computed by a sparse triangular solve whose nonzero
    pattern is discovered by depth-first search on the partially built
    [L] (Gilbert & Peierls' algorithm). *)

type t
(** A factorization [P A = L U] of a square sparse matrix. *)

exception Singular of int
(** Raised when no nonzero pivot exists, carrying the failing column
    in the {e original} (unpermuted) numbering — i.e. the index of the
    unknown whose equation set is rank deficient, which MNA callers
    map back to a node name or branch element. *)

val min_degree_order : Csr.t -> int array
(** Greedy minimum-degree ordering of the symmetrized nonzero
    pattern, the fill-reducing permutation [factor] applies by
    default.  Pivot selection uses degree buckets (a doubly-linked
    vertex list per degree), so picking each pivot is O(1) amortized
    rather than a scan over all remaining vertices. *)

val factor : ?order:int array -> Csr.t -> t
(** Factor a square CSR matrix.  Raises [Singular] on structural or
    numerical rank deficiency.  {!Matching.structurally_singular} on
    the same pattern predicts the structural subset of these failures
    without any arithmetic.

    [order] overrides the fill-reducing symmetric permutation (default
    {!min_degree_order}); it must be a permutation of [0 .. n-1].
    Exposed so orderings can be compared by the fill they produce. *)

val solve : t -> Linalg.Vec.t -> Linalg.Vec.t
(** [solve f b] returns [x] with [A x = b]. *)

val dim : t -> int

val nnz_factors : t -> int
(** Stored nonzeros in [L] and [U] together — the fill-in metric
    reported by the scaling benchmark. *)

val solve_system : Csr.t -> Linalg.Vec.t -> Linalg.Vec.t
(** One-shot [factor] + [solve]. *)
