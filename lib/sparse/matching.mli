(** Maximum bipartite matching on a sparse nonzero pattern.

    A perfect matching between the rows and columns of a square
    pattern is a transversal: a way to place every pivot on a stored
    entry.  Its maximum size is the {e structural rank} — an upper
    bound on the numerical rank that depends only on the sparsity
    structure.  When it falls short of the dimension, {!Slu.factor}
    is guaranteed to hit an empty pivot column no matter what the
    entry values are, so rank deficiency found here {e predicts} a
    [Slu.Singular] outcome without performing any arithmetic. *)

type result = {
  size : int;  (** cardinality of the maximum matching *)
  row_of_col : int array;  (** column -> matched row, or [-1] *)
  col_of_row : int array;  (** row -> matched column, or [-1] *)
}

val max_matching : Csr.t -> result
(** Kuhn's augmenting-path algorithm over the stored-entry bipartite
    graph; [O(rows * nnz)] worst case. *)

val structural_rank : Csr.t -> int

val unmatched_rows : Csr.t -> int list
(** Rows left unmatched by one maximum matching (a certificate of the
    deficiency; which rows are reported may depend on row order). *)

val unmatched_cols : Csr.t -> int list

val structurally_singular : Csr.t -> bool
(** [true] when the pattern admits no perfect matching (non-square or
    structural rank below the dimension): every LU factorization of a
    matrix with this pattern fails. *)
