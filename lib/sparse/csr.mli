(** Compressed sparse row matrices.

    The workhorse format for the moment recursion's repeated
    [C * vector] products: rows are contiguous, duplicates from the
    stamping phase are summed, and structural zeros are dropped. *)

type t

val of_coo : Coo.t -> t
(** Convert, summing duplicates and dropping exact zeros. *)

val of_dense : ?drop_tol:float -> Linalg.Matrix.t -> t
(** Entries of magnitude [<= drop_tol] (default [0.]) are dropped. *)

val rows : t -> int

val cols : t -> int

val nnz : t -> int

val get : t -> int -> int -> float
(** [get m i j] is the stored value or [0.]; O(log nnz(row)). *)

val mul_vec : t -> Linalg.Vec.t -> Linalg.Vec.t

val mul_vec_transpose : t -> Linalg.Vec.t -> Linalg.Vec.t

val to_dense : t -> Linalg.Matrix.t

val row_iter : t -> int -> (int -> float -> unit) -> unit
(** [row_iter m i f] applies [f j v] to every stored entry of row [i],
    in ascending column order. *)

val pattern : t -> int array * int array
(** [(row_ptr, col_idx)] of the stored pattern: entry positions of row
    [i] are [row_ptr.(i) .. row_ptr.(i+1) - 1], with ascending column
    indices in [col_idx].  The arrays are the matrix's own backing
    store — callers must treat them as read-only. *)

val values : t -> float array
(** The stored entry values, indexed by the entry positions of
    {!pattern}.  The matrix's own backing store — read-only. *)

val same_pattern : t -> t -> bool
(** Whether two matrices have identical dimensions and stored nonzero
    patterns (positions compare equal entry-for-entry; values are
    ignored). *)

val transpose : t -> t

val permute : t -> rows:int array -> cols:int array -> t
(** [permute m ~rows ~cols] is the matrix [p] with
    [p(i,j) = m(rows.(i), cols.(j))]; both index arrays must be
    permutations of [0 .. n-1]. *)
