exception Singular of int

module Iset = Set.Make (Int)

(* Greedy minimum-degree ordering on the symmetrized nonzero pattern:
   eliminating low-degree vertices first keeps the LU factors of
   tree-like circuit matrices nearly fill-free.

   The pivot pick uses degree buckets — doubly-linked vertex lists
   threaded through [bnext]/[bprev], one list per degree, with a
   monotone-up minimum-degree cursor — so selecting each pivot is
   O(1) amortized instead of the former O(n) scan over all remaining
   vertices (which made the ordering itself quadratic on large meshes
   and dominated the factorization it was meant to cheapen).  The
   elimination-graph update keeps the invariant that [adj.(v)] holds
   only live (uneliminated) vertices, so a vertex's degree is exactly
   [Iset.cardinal adj.(v)] and bucket moves happen only for the
   pivot's neighbors — the vertices whose degree can change. *)
let min_degree_order a =
  let n = Csr.rows a in
  let adj = Array.make n Iset.empty in
  for i = 0 to n - 1 do
    Csr.row_iter a i (fun j _ ->
        if i <> j then begin
          adj.(i) <- Iset.add j adj.(i);
          adj.(j) <- Iset.add i adj.(j)
        end)
  done;
  (* degree buckets: head.(d) is the first vertex of degree d, the
     rest chained through bnext/bprev (-1 terminates) *)
  let head = Array.make (Stdlib.max n 1) (-1) in
  let bnext = Array.make n (-1) in
  let bprev = Array.make n (-1) in
  let deg = Array.make n 0 in
  let bucket_insert v d =
    deg.(v) <- d;
    bnext.(v) <- head.(d);
    bprev.(v) <- -1;
    if head.(d) >= 0 then bprev.(head.(d)) <- v;
    head.(d) <- v
  in
  let bucket_remove v =
    let d = deg.(v) in
    if bprev.(v) >= 0 then bnext.(bprev.(v)) <- bnext.(v)
    else head.(d) <- bnext.(v);
    if bnext.(v) >= 0 then bprev.(bnext.(v)) <- bprev.(v)
  in
  for v = 0 to n - 1 do
    bucket_insert v (Iset.cardinal adj.(v))
  done;
  let order = Array.make n 0 in
  let mind = ref 0 in
  for k = 0 to n - 1 do
    (* the cursor only moves up here; eliminations that lower a
       neighbor's degree pull it back down at the bucket move *)
    while head.(!mind) < 0 do
      incr mind
    done;
    let v = head.(!mind) in
    bucket_remove v;
    order.(k) <- v;
    let nbrs = adj.(v) in
    adj.(v) <- Iset.empty;
    (* connect the neighbors of v into a clique (the fill v causes) *)
    Iset.iter
      (fun w ->
        let adj_w = Iset.union (Iset.remove v adj.(w)) (Iset.remove w nbrs) in
        adj.(w) <- adj_w;
        let d = Iset.cardinal adj_w in
        if d <> deg.(w) then begin
          bucket_remove w;
          bucket_insert w d;
          if d < !mind then mind := d
        end)
      nbrs
  done;
  order

(* ------------------------------------------------------------------ *)
(* Symbolic analysis: everything about the factorization that depends
   on the nonzero pattern alone — the fill-reducing ordering, a static
   pivot assignment, the per-column elimination (reach) sets, and a
   scatter map from the matrix's stored entries into pivot positions.
   Matrices sharing a pattern share one symbolic analysis; [refactor]
   replays only the numeric phase. *)

type symbolic = {
  sn : int;
  sord : int array;  (* fill-reducing symmetric permutation *)
  srow_of_pos : int array;  (* pivot position -> permuted row *)
  (* the analyzed pattern, in original numbering, for validation *)
  srow_ptr : int array;
  scol_idx : int array;
  snnz : int;
  (* permuted column j: destination pivot positions and source entry
     indices (into [Csr.values]) of the matrix entries it scatters *)
  sscat_pos : int array array;
  sscat_idx : int array array;
  (* pivotal update positions of column j, in topological order (an
     update's source column precedes every column it fills) *)
  stopo : int array array;
  (* L rows of column j (positions > j), ascending *)
  slpat : int array array;
}

let symbolic_dim s = s.sn

let symbolic_nnz s =
  Array.fold_left (fun acc l -> acc + Array.length l) 0 s.slpat
  + Array.fold_left (fun acc t -> acc + Array.length t) 0 s.stopo
  + s.sn

(* Static pivot assignment: a perfect matching between pivot positions
   (columns of the permuted matrix) and permuted rows, placing every
   pivot on a stored entry.  Diagonal entries are claimed first — for
   the diagonally dominant node block of an MNA matrix the diagonal is
   also the numerically dominant choice — and Kuhn augmenting paths
   place the rest (the zero-diagonal branch rows of voltage-defined
   elements).  Failure to match a column is a structural-rank
   certificate: no value assignment makes the matrix nonsingular. *)
let static_pivots ~n ~col_rows ~ord =
  let row_match = Array.make n (-1) in
  (* column -> matched row *)
  let col_match = Array.make n (-1) in
  for j = 0 to n - 1 do
    if col_match.(j) < 0 && row_match.(j) < 0 then
      if Array.exists (fun r -> r = j) col_rows.(j) then begin
        col_match.(j) <- j;
        row_match.(j) <- j
      end
  done;
  let stamp = Array.make n (-1) in
  let rec augment epoch j =
    let rows = col_rows.(j) in
    let nr = Array.length rows in
    let rec try_row t =
      if t >= nr then false
      else begin
        let r = rows.(t) in
        if stamp.(r) <> epoch then begin
          stamp.(r) <- epoch;
          if row_match.(r) < 0 || augment epoch row_match.(r) then begin
            row_match.(r) <- j;
            col_match.(j) <- r;
            true
          end
          else try_row (t + 1)
        end
        else try_row (t + 1)
      end
    in
    try_row 0
  in
  for j = 0 to n - 1 do
    if col_match.(j) < 0 && not (augment j j) then
      (* structurally singular; report in original numbering *)
      raise (Singular ord.(j))
  done;
  (row_match, col_match)

let symbolic ?order a =
  let n = Csr.rows a in
  if Csr.cols a <> n then invalid_arg "Slu.symbolic: matrix not square";
  let ord =
    match order with
    | None -> min_degree_order a
    | Some o ->
      if Array.length o <> n then
        invalid_arg "Slu.symbolic: order is not a permutation of the columns";
      o
  in
  let inv_ord = Array.make n 0 in
  Array.iteri (fun pos v -> inv_ord.(v) <- pos) ord;
  let row_ptr, col_idx = Csr.pattern a in
  let nnz = row_ptr.(n) in
  (* permuted CSC with original entry indices: entry k of original row
     [i], column [c] lands in permuted column [inv_ord.(c)] at
     permuted row [inv_ord.(i)] *)
  let col_count = Array.make n 0 in
  for i = 0 to n - 1 do
    for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
      let pj = inv_ord.(col_idx.(k)) in
      col_count.(pj) <- col_count.(pj) + 1
    done
  done;
  let col_rows = Array.init n (fun j -> Array.make col_count.(j) 0) in
  let col_entry = Array.init n (fun j -> Array.make col_count.(j) 0) in
  let cursor = Array.make n 0 in
  for i = 0 to n - 1 do
    let pi = inv_ord.(i) in
    for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
      let pj = inv_ord.(col_idx.(k)) in
      let t = cursor.(pj) in
      col_rows.(pj).(t) <- pi;
      col_entry.(pj).(t) <- k;
      cursor.(pj) <- t + 1
    done
  done;
  let row_match, col_match = static_pivots ~n ~col_rows ~ord in
  let pos_of_row = row_match and row_of_pos = col_match in
  (* scatter map in pivot positions *)
  let sscat_pos =
    Array.map (fun rows -> Array.map (fun r -> pos_of_row.(r)) rows) col_rows
  in
  (* per-column reach sets under the static pivot order *)
  let slpat = Array.make n [||] in
  let stopo = Array.make n [||] in
  let seen = Array.make n (-1) in
  let touched = Array.make n 0 in
  let is_touched = Array.make n (-1) in
  for j = 0 to n - 1 do
    let ntouched = ref 0 in
    let touch p =
      if is_touched.(p) <> j then begin
        is_touched.(p) <- j;
        touched.(!ntouched) <- p;
        incr ntouched
      end
    in
    let topo = ref [] in
    let rec dfs k =
      if seen.(k) <> j then begin
        seen.(k) <- j;
        Array.iter
          (fun r ->
            touch r;
            if r < j then dfs r)
          slpat.(k);
        topo := k :: !topo
      end
    in
    Array.iter
      (fun p ->
        touch p;
        if p < j then dfs p)
      sscat_pos.(j);
    (* position [j] is always reached: the static pivot sits on a
       stored entry of column [j] by construction *)
    let ls = ref [] in
    for t = !ntouched - 1 downto 0 do
      let p = touched.(t) in
      if p > j then ls := p :: !ls
    done;
    let lpat = Array.of_list !ls in
    Array.sort compare lpat;
    slpat.(j) <- lpat;
    stopo.(j) <- Array.of_list !topo
  done;
  { sn = n;
    sord = ord;
    srow_of_pos = row_of_pos;
    srow_ptr = row_ptr;
    scol_idx = col_idx;
    snnz = nnz;
    sscat_pos;
    sscat_idx = col_entry;
    stopo;
    slpat }

let same_analysis a b =
  a == b
  || a.sn = b.sn && a.snnz = b.snnz
     && (a.srow_ptr == b.srow_ptr
        || Array.for_all2 (fun x y -> x = y) a.srow_ptr b.srow_ptr)
     && (a.scol_idx == b.scol_idx
        ||
        let rec eq k =
          k >= a.snnz || (a.scol_idx.(k) = b.scol_idx.(k) && eq (k + 1))
        in
        eq 0)

let pattern_matches s a =
  Csr.rows a = s.sn && Csr.cols a = s.sn
  &&
  let row_ptr, col_idx = Csr.pattern a in
  row_ptr == s.srow_ptr && col_idx == s.scol_idx
  || row_ptr.(s.sn) = s.snnz
     && (let ok = ref true in
         let i = ref 0 in
         while !ok && !i <= s.sn do
           if row_ptr.(!i) <> s.srow_ptr.(!i) then ok := false;
           incr i
         done;
         let k = ref 0 in
         while !ok && !k < s.snnz do
           if col_idx.(!k) <> s.scol_idx.(!k) then ok := false;
           incr k
         done;
         !ok)

(* first structural difference between the symbolic's pattern and a
   matrix's, described by the column (and row) where they diverge *)
let describe_mismatch s a =
  let row_ptr, col_idx = Csr.pattern a in
  let exception Found of string in
  try
    if Csr.rows a <> s.sn || Csr.cols a <> s.sn then
      raise
        (Found
           (Printf.sprintf "matrix is %dx%d but the symbolic analyzed %dx%d"
              (Csr.rows a) (Csr.cols a) s.sn s.sn));
    for i = 0 to s.sn - 1 do
      let s0 = s.srow_ptr.(i) and s1 = s.srow_ptr.(i + 1) in
      let m0 = row_ptr.(i) and m1 = row_ptr.(i + 1) in
      let ls = s1 - s0 and lm = m1 - m0 in
      for t = 0 to Stdlib.min ls lm - 1 do
        let cs = s.scol_idx.(s0 + t) and cm = col_idx.(m0 + t) in
        if cs <> cm then
          raise
            (Found
               (Printf.sprintf
                  "first mismatch in column %d of row %d (the symbolic \
                   expects column %d)"
                  cm i cs))
      done;
      if lm > ls then
        raise
          (Found
             (Printf.sprintf "first mismatch in column %d of row %d (entry \
                              absent from the symbolic pattern)"
                col_idx.(m0 + ls) i))
      else if ls > lm then
        raise
          (Found
             (Printf.sprintf "first mismatch in column %d of row %d (entry \
                              missing from the matrix)"
                s.scol_idx.(s0 + lm) i))
    done;
    "patterns are identical"
  with Found msg -> msg

type t = {
  n : int;
  (* L is unit lower triangular, stored by column in pivot-position row
     indices (strictly below the diagonal); U is upper triangular with
     the diagonal stored separately.  The factorization applies to the
     symmetrically permuted matrix A(ord, ord). *)
  l_cols : (int * float) array array;
  u_cols : (int * float) array array;
  u_diag : float array;
  row_of_pos : int array; (* pivot position -> permuted row index *)
  ord : int array; (* fill-reducing symmetric permutation *)
}

let dim f = f.n

let nnz_factors f =
  let count cols =
    Array.fold_left (fun acc c -> acc + Array.length c) 0 cols
  in
  count f.l_cols + count f.u_cols + f.n

let refactor s a =
  if not (pattern_matches s a) then
    invalid_arg ("Slu.refactor: pattern mismatch: " ^ describe_mismatch s a);
  let n = s.sn in
  let vals = Csr.values a in
  let l_cols = Array.make n [||] in
  let u_cols = Array.make n [||] in
  let u_diag = Array.make n 0. in
  (* dense accumulator over pivot positions; cleared per column via the
     symbolic reach sets, which cover every scattered and filled
     position.  Inner loops use unchecked accesses: every index is a
     pivot position in [0, n) fixed by the symbolic analysis, and the
     dimension agreement with [a] was checked above. *)
  let x = Array.make n 0. in
  for j = 0 to n - 1 do
    let spos = s.sscat_pos.(j) and sidx = s.sscat_idx.(j) in
    let nscat = Array.length spos in
    for t = 0 to nscat - 1 do
      let p = Array.unsafe_get spos t in
      Array.unsafe_set x p
        (Array.unsafe_get x p +. Array.unsafe_get vals (Array.unsafe_get sidx t))
    done;
    (* numeric left-looking updates in topological order *)
    let topo = s.stopo.(j) in
    let ntopo = Array.length topo in
    for t = 0 to ntopo - 1 do
      let k = Array.unsafe_get topo t in
      let xk = Array.unsafe_get x k in
      if xk <> 0. then begin
        let lk = Array.unsafe_get l_cols k in
        let nl = Array.length lk in
        for u = 0 to nl - 1 do
          let r, m = Array.unsafe_get lk u in
          Array.unsafe_set x r (Array.unsafe_get x r -. (m *. xk))
        done
      end
    done;
    let pivot = x.(j) in
    (* the pivot is structurally present but its value can still cancel
       to zero; report in original numbering like [factor] *)
    if pivot = 0. then raise (Singular s.sord.(j));
    u_diag.(j) <- pivot;
    u_cols.(j) <- Array.map (fun k -> (k, x.(k))) s.stopo.(j);
    l_cols.(j) <- Array.map (fun r -> (r, x.(r) /. pivot)) s.slpat.(j);
    (* reset the accumulator over exactly the touched positions *)
    x.(j) <- 0.;
    Array.iter (fun k -> x.(k) <- 0.) s.stopo.(j);
    Array.iter (fun r -> x.(r) <- 0.) s.slpat.(j)
  done;
  { n; l_cols; u_cols; u_diag; row_of_pos = s.srow_of_pos; ord = s.sord }

let factor ?order a = refactor (symbolic ?order a) a

let solve f b =
  let n = f.n in
  if Array.length b <> n then invalid_arg "Slu.solve: dimension mismatch";
  (* y = P (b permuted by the fill-reducing ordering) *)
  let y = Array.init n (fun k -> b.(f.ord.(f.row_of_pos.(k)))) in
  (* forward: L y' = y, unit diagonal, column-oriented.  Stored row
     indices are pivot positions in [0, n) by construction and [y] has
     length [n] (checked above), so the inner loops skip bounds
     checks. *)
  let l_cols = f.l_cols in
  for k = 0 to n - 1 do
    let yk = Array.unsafe_get y k in
    if yk <> 0. then begin
      let lk = Array.unsafe_get l_cols k in
      let nl = Array.length lk in
      for t = 0 to nl - 1 do
        let i, m = Array.unsafe_get lk t in
        Array.unsafe_set y i (Array.unsafe_get y i -. (m *. yk))
      done
    end
  done;
  (* backward: U x = y', column-oriented *)
  let u_cols = f.u_cols and u_diag = f.u_diag in
  for k = n - 1 downto 0 do
    let yk = Array.unsafe_get y k /. Array.unsafe_get u_diag k in
    Array.unsafe_set y k yk;
    if yk <> 0. then begin
      let uk = Array.unsafe_get u_cols k in
      let nu = Array.length uk in
      for t = 0 to nu - 1 do
        let i, u = Array.unsafe_get uk t in
        Array.unsafe_set y i (Array.unsafe_get y i -. (u *. yk))
      done
    end
  done;
  (* undo the column side of the symmetric permutation *)
  let x = Array.make n 0. in
  for k = 0 to n - 1 do
    x.(f.ord.(k)) <- y.(k)
  done;
  x

let solve_system a b = solve (factor a) b
