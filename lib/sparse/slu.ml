exception Singular of int

module Iset = Set.Make (Int)

(* Greedy minimum-degree ordering on the symmetrized nonzero pattern:
   eliminating low-degree vertices first keeps the LU factors of
   tree-like circuit matrices nearly fill-free.

   The pivot pick uses degree buckets — doubly-linked vertex lists
   threaded through [bnext]/[bprev], one list per degree, with a
   monotone-up minimum-degree cursor — so selecting each pivot is
   O(1) amortized instead of the former O(n) scan over all remaining
   vertices (which made the ordering itself quadratic on large meshes
   and dominated the factorization it was meant to cheapen).  The
   elimination-graph update keeps the invariant that [adj.(v)] holds
   only live (uneliminated) vertices, so a vertex's degree is exactly
   [Iset.cardinal adj.(v)] and bucket moves happen only for the
   pivot's neighbors — the vertices whose degree can change. *)
let min_degree_order a =
  let n = Csr.rows a in
  let adj = Array.make n Iset.empty in
  for i = 0 to n - 1 do
    Csr.row_iter a i (fun j _ ->
        if i <> j then begin
          adj.(i) <- Iset.add j adj.(i);
          adj.(j) <- Iset.add i adj.(j)
        end)
  done;
  (* degree buckets: head.(d) is the first vertex of degree d, the
     rest chained through bnext/bprev (-1 terminates) *)
  let head = Array.make (Stdlib.max n 1) (-1) in
  let bnext = Array.make n (-1) in
  let bprev = Array.make n (-1) in
  let deg = Array.make n 0 in
  let bucket_insert v d =
    deg.(v) <- d;
    bnext.(v) <- head.(d);
    bprev.(v) <- -1;
    if head.(d) >= 0 then bprev.(head.(d)) <- v;
    head.(d) <- v
  in
  let bucket_remove v =
    let d = deg.(v) in
    if bprev.(v) >= 0 then bnext.(bprev.(v)) <- bnext.(v)
    else head.(d) <- bnext.(v);
    if bnext.(v) >= 0 then bprev.(bnext.(v)) <- bprev.(v)
  in
  for v = 0 to n - 1 do
    bucket_insert v (Iset.cardinal adj.(v))
  done;
  let order = Array.make n 0 in
  let mind = ref 0 in
  for k = 0 to n - 1 do
    (* the cursor only moves up here; eliminations that lower a
       neighbor's degree pull it back down at the bucket move *)
    while head.(!mind) < 0 do
      incr mind
    done;
    let v = head.(!mind) in
    bucket_remove v;
    order.(k) <- v;
    let nbrs = adj.(v) in
    adj.(v) <- Iset.empty;
    (* connect the neighbors of v into a clique (the fill v causes) *)
    Iset.iter
      (fun w ->
        let adj_w = Iset.union (Iset.remove v adj.(w)) (Iset.remove w nbrs) in
        adj.(w) <- adj_w;
        let d = Iset.cardinal adj_w in
        if d <> deg.(w) then begin
          bucket_remove w;
          bucket_insert w d;
          if d < !mind then mind := d
        end)
      nbrs
  done;
  order

type t = {
  n : int;
  (* L is unit lower triangular, stored by column in pivot-position row
     indices (strictly below the diagonal); U is upper triangular with
     the diagonal stored separately.  The factorization applies to the
     symmetrically permuted matrix A(ord, ord). *)
  l_cols : (int * float) array array;
  u_cols : (int * float) array array;
  u_diag : float array;
  row_of_pos : int array; (* pivot position -> permuted row index *)
  ord : int array; (* fill-reducing symmetric permutation *)
}

let dim f = f.n

let nnz_factors f =
  let count cols =
    Array.fold_left (fun acc c -> acc + Array.length c) 0 cols
  in
  count f.l_cols + count f.u_cols + f.n

let factor ?order a0 =
  let n = Csr.rows a0 in
  if Csr.cols a0 <> n then invalid_arg "Slu.factor: matrix not square";
  let ord =
    match order with
    | None -> min_degree_order a0
    | Some o ->
      if Array.length o <> n then
        invalid_arg "Slu.factor: order is not a permutation of the columns";
      o
  in
  let a = Csr.permute a0 ~rows:ord ~cols:ord in
  let acsc = Csr.transpose a in
  (* column j of [a] = row j of [acsc] *)
  let pos_of_row = Array.make n (-1) in
  let row_of_pos = Array.make n (-1) in
  (* growing factors; L columns hold ORIGINAL row indices during the
     factorization and are remapped to positions at the end *)
  let l_cols = Array.make n [||] in
  let u_cols = Array.make n [||] in
  let u_diag = Array.make n 0. in
  (* dense accumulator and touched stack for the sparse solve *)
  let x = Array.make n 0. in
  let touched = Array.make n 0 in
  let is_touched = Array.make n false in
  (* symbolic-DFS visit marks, reused across columns: [seen.(k) = j]
     means pivot position [k] was reached while processing column [j].
     A stamp compare replaces the per-column scratch Hashtbl the DFS
     used to allocate (and rehash) inside the factorization loop. *)
  let seen = Array.make n (-1) in
  for j = 0 to n - 1 do
    let ntouched = ref 0 in
    let touch r =
      if not is_touched.(r) then begin
        is_touched.(r) <- true;
        touched.(!ntouched) <- r;
        incr ntouched
      end
    in
    (* scatter A(:, j) *)
    Csr.row_iter acsc j (fun r v ->
        touch r;
        x.(r) <- x.(r) +. v);
    (* symbolic phase: DFS from the pivotal rows present in the pattern,
       collecting a reverse-postorder = topological order of updates *)
    let order = ref [] in
    let rec dfs k =
      if seen.(k) <> j then begin
        seen.(k) <- j;
        Array.iter
          (fun (r, _) ->
            touch r;
            let k' = pos_of_row.(r) in
            if k' >= 0 then dfs k')
          l_cols.(k);
        order := k :: !order
      end
    in
    for t = 0 to !ntouched - 1 do
      let k = pos_of_row.(touched.(t)) in
      if k >= 0 then dfs k
    done;
    (* numeric phase: x <- L^-1 x in topological order *)
    List.iter
      (fun k ->
        let xk = x.(row_of_pos.(k)) in
        if xk <> 0. then
          Array.iter
            (fun (r, m) ->
              touch r;
              x.(r) <- x.(r) -. (m *. xk))
            l_cols.(k))
      !order;
    (* pivot: largest magnitude among not-yet-pivotal touched rows *)
    let piv = ref (-1) in
    let best = ref 0. in
    for t = 0 to !ntouched - 1 do
      let r = touched.(t) in
      if pos_of_row.(r) < 0 then begin
        let v = Float.abs x.(r) in
        if v > !best then begin
          best := v;
          piv := r
        end
      end
    done;
    (* report the failing unknown in ORIGINAL numbering: permuted
       column [j] is original column [ord.(j)], which callers can map
       back to a node or branch variable *)
    if !piv < 0 || !best = 0. then raise (Singular ord.(j));
    let pivot_row = !piv in
    let pivot_val = x.(pivot_row) in
    pos_of_row.(pivot_row) <- j;
    row_of_pos.(j) <- pivot_row;
    u_diag.(j) <- pivot_val;
    (* gather U(:, j) (pivotal rows, position < j) and L(:, j) *)
    let us = ref [] and ls = ref [] in
    for t = 0 to !ntouched - 1 do
      let r = touched.(t) in
      let v = x.(r) in
      if v <> 0. then begin
        let k = pos_of_row.(r) in
        if k >= 0 && k < j then us := (k, v) :: !us
        else if r <> pivot_row then ls := (r, v /. pivot_val) :: !ls
      end;
      (* reset accumulator *)
      x.(r) <- 0.;
      is_touched.(r) <- false
    done;
    u_cols.(j) <- Array.of_list !us;
    l_cols.(j) <- Array.of_list !ls
  done;
  (* remap L's original row indices to pivot positions *)
  let l_cols =
    Array.map (Array.map (fun (r, m) -> (pos_of_row.(r), m))) l_cols
  in
  { n; l_cols; u_cols; u_diag; row_of_pos; ord }

let solve f b =
  let n = f.n in
  if Array.length b <> n then invalid_arg "Slu.solve: dimension mismatch";
  (* y = P (b permuted by the fill-reducing ordering) *)
  let y = Array.init n (fun k -> b.(f.ord.(f.row_of_pos.(k)))) in
  (* forward: L y' = y, unit diagonal, column-oriented *)
  for k = 0 to n - 1 do
    let yk = y.(k) in
    if yk <> 0. then
      Array.iter (fun (i, m) -> y.(i) <- y.(i) -. (m *. yk)) f.l_cols.(k)
  done;
  (* backward: U x = y', column-oriented *)
  for k = n - 1 downto 0 do
    y.(k) <- y.(k) /. f.u_diag.(k);
    let xk = y.(k) in
    if xk <> 0. then
      Array.iter (fun (i, u) -> y.(i) <- y.(i) -. (u *. xk)) f.u_cols.(k)
  done;
  (* undo the column side of the symmetric permutation *)
  let x = Array.make n 0. in
  for k = 0 to n - 1 do
    x.(f.ord.(k)) <- y.(k)
  done;
  x

let solve_system a b = solve (factor a) b
