(* Maximum bipartite matching on the nonzero pattern of a sparse
   matrix (rows on one side, columns on the other, an edge per stored
   entry), by Kuhn's augmenting-path algorithm.  O(rows * nnz) worst
   case — plenty for circuit-sized systems, and the DFS tends to
   terminate immediately on the nearly triangular patterns MNA
   produces.

   The size of the maximum matching is the structural (generic) rank:
   the largest rank the matrix can attain for any choice of its
   nonzero values.  A deficiency is therefore a proof that LU
   factorization fails *whatever the element values are* — the
   predictor the lint layer runs before ever calling [Slu.factor]. *)

type result = {
  size : int;
  row_of_col : int array; (* column -> matched row, or -1 *)
  col_of_row : int array; (* row -> matched column, or -1 *)
}

let max_matching a =
  let m = Csr.rows a and n = Csr.cols a in
  let row_of_col = Array.make n (-1) in
  let col_of_row = Array.make m (-1) in
  let visited = Array.make n false in
  (* find an augmenting path from row [i] *)
  let rec try_row i =
    let found = ref false in
    Csr.row_iter a i (fun j _ ->
        if (not !found) && not visited.(j) then begin
          visited.(j) <- true;
          if row_of_col.(j) < 0 || try_row row_of_col.(j) then begin
            row_of_col.(j) <- i;
            col_of_row.(i) <- j;
            found := true
          end
        end);
    !found
  in
  let size = ref 0 in
  for i = 0 to m - 1 do
    Array.fill visited 0 n false;
    if try_row i then incr size
  done;
  { size = !size; row_of_col; col_of_row }

let structural_rank a = (max_matching a).size

let unmatched_rows a =
  let r = max_matching a in
  let acc = ref [] in
  for i = Array.length r.col_of_row - 1 downto 0 do
    if r.col_of_row.(i) < 0 then acc := i :: !acc
  done;
  !acc

let unmatched_cols a =
  let r = max_matching a in
  let acc = ref [] in
  for j = Array.length r.row_of_col - 1 downto 0 do
    if r.row_of_col.(j) < 0 then acc := j :: !acc
  done;
  !acc

let structurally_singular a =
  Csr.rows a <> Csr.cols a || structural_rank a < Csr.rows a
