(* Parser fuzzing: the [.sp] deck parser and the [.sta] design-file
   parser must either parse their input or raise their own
   [Parse_error] with a line attribution — no other exception may
   escape, whatever the input.

   Inputs mix three strategies: token-soup lines built from a
   vocabulary of plausible names, nodes, malformed values (nan, inf,
   overflow exponents, suffix typos) and waveform fragments; raw
   printable garbage; and single-character mutations of a known-valid
   deck (which exercises the deep, almost-correct paths a pure random
   generator never reaches).  qcheck shrinking reduces any escaping
   input to a minimal reproduction, which the driver writes out as a
   [decks/repro_*.sp] regression deck. *)

open QCheck2

(* --- classification ------------------------------------------------ *)

(* anything the parser accepts, the lint layer must analyze without an
   escaping exception either — garbage decks are lint's daily diet *)
let sp_escapes src =
  match Circuit.Parser.parse_string src with
  | deck -> (
    match Lint.check_circuit deck.Circuit.Parser.circuit with
    | _ -> None
    | exception e -> Some e)
  | exception Circuit.Parser.Parse_error _ -> None
  | exception e -> Some e

let sta_escapes src =
  match Sta.Design_file.parse_string src with
  | design -> (
    match Lint.check_design design with
    | _ -> None
    | exception e -> Some e)
  | exception Sta.Design_file.Parse_error _ -> None
  | exception e -> Some e

(* --- generators ---------------------------------------------------- *)

let g_name =
  Gen.oneofl
    [ "r1"; "R1"; "c1"; "cc"; "l1"; "v1"; "VIN"; "i1"; "e1"; "g1"; "h1";
      "f1"; "k1"; "kx"; "q1"; "x7"; "zz"; "r"; "v" ]

let g_node =
  Gen.oneofl [ "0"; "1"; "2"; "n1"; "n2"; "n99"; "in"; "out"; "gnd"; "a"; "" ]

let g_value =
  Gen.oneofl
    [ "1k"; "100"; "0.5"; "1e-12"; "2.2meg"; "4u"; "100nF"; "-5"; "0";
      "nan"; "NaN"; "inf"; "-inf"; "1e999"; "-1e999"; "1e-999"; "abc";
      "1..2"; "-"; "+"; "1k5"; "3p"; "9e18"; "0x10"; "1_000"; "ic=nan";
      "ic=2" ]

let g_wave =
  Gen.oneofl
    [ "5"; "dc 5"; "dc nan"; "step(0 5)"; "step(0"; "step()"; "STEP(0 inf)";
      "ramp(0 5 0 1n)"; "ramp(0 5 -1n 1n)"; "ramp(0 5 0 0)";
      "ramp(0 5 0 nan)"; "pwl(0 0 1n 5)"; "pwl(0 0 0 5 1n 3)"; "pwl(1)";
      "pwl()"; "pwl(0 0 1n nan)"; "foo(1 2)"; "step 0 5" ]

let g_directive =
  Gen.oneofl
    [ ".tran 1u 100"; ".tran"; ".tran nan 10"; ".tran 1u 1e99";
      ".tran 0 10"; ".tran 1u 0"; ".awe out"; ".awe out 4"; ".awe out 99";
      ".awe"; ".awe out nan"; ".ic v(n1)=2"; ".ic v()=1"; ".ic v(n1)=nan";
      ".ic v(n1)="; ".ic"; ".ic x=2"; ".end"; ".op"; ".print tran v(1)" ]

(* a token-soup line: 1-7 tokens drawn from every vocabulary *)
let g_soup_line =
  let g_tok = Gen.oneof [ g_name; g_node; g_value; g_wave; g_directive ] in
  Gen.(map (String.concat " ") (list_size (1 -- 7) g_tok))

(* an element-shaped line: name, two nodes, then value-ish tail *)
let g_element_line =
  Gen.(
    map
      (fun (n, (a, b), v) -> Printf.sprintf "%s %s %s %s" n a b v)
      (triple g_name (pair g_node g_node) (oneof [ g_value; g_wave ])))

let g_garbage_line =
  Gen.(
    string_size ~gen:
      (oneofl
         [ 'a'; 'r'; 'v'; '('; ')'; '='; '.'; '*'; '+'; ';'; '\t'; ' ';
           '0'; '1'; '-'; 'e'; 'n'; 'k'; ','; '"' ])
      (0 -- 40))

let base_sp_deck =
  "* fig4-style deck\n\
   v1 in 0 step(0 5)\n\
   r1 in n1 1k\n\
   c1 n1 0 0.1u ic=1.5\n\
   r2 n1 n2 1k\n\
   c2 n2 0 0.1u\n\
   l1 n2 n3 1m\n\
   c3 n3 0 0.1u\n\
   .ic v(n2)=0.5\n\
   .tran 5m 200\n\
   .awe n3 3\n\
   .end\n"

(* single-character mutations of a valid deck: replace, insert, or
   delete at a random position *)
let g_mutated base =
  let len = String.length base in
  Gen.(
    let* pos = 0 -- (len - 1) in
    let* op = 0 -- 2 in
    let* c =
      oneofl [ 'x'; '0'; '('; ')'; '='; '.'; '\n'; ' '; '-'; 'n'; 'k' ]
    in
    pure
      (match op with
      | 0 -> String.mapi (fun i old -> if i = pos then c else old) base
      | 1 ->
        String.sub base 0 pos ^ String.make 1 c
        ^ String.sub base pos (len - pos)
      | _ -> String.sub base 0 pos ^ String.sub base (pos + 1) (len - pos - 1)))

let sp_gen =
  let g_lines =
    Gen.(
      map (String.concat "\n")
        (list_size (0 -- 12)
           (frequency
              [ (3, g_element_line); (3, g_soup_line); (2, g_directive);
                (1, g_garbage_line); (1, pure "+ 1k 2k");
                (1, pure "* comment") ])))
  in
  Gen.(
    frequency
      [ (3, g_lines); (2, g_mutated base_sp_deck); (1, g_garbage_line) ])

(* --- .sta design files --------------------------------------------- *)

let g_sta_card =
  Gen.oneofl
    [ "vdd 5"; "vdd nan"; "vdd -1"; "vdd"; "vdd 5 5"; "threshold 0.5";
      "threshold 1.5"; "threshold nan"; "threshold"; "cell inv 1k 10f 50p";
      "cell inv nan 10f 50p"; "cell inv 1k"; "cell"; "gate u1 inv y a";
      "gate u1 nosuch y a"; "gate u1 inv y"; "gate"; "net y drv u1 1k 100f";
      "net y drv u1 1k 100f ; u1 w2 2k 50f"; "net y drv u1 nan 100f";
      "net y drv u1 1k"; "net y ;"; "net"; "input a"; "input a arrival=1n";
      "input a arrival=nan"; "input a slew=-1"; "input a bogus=1"; "input";
      "output y"; "output"; "constraint y 1n"; "constraint y nan";
      "constraint y -1n"; "constraint y"; "constraint"; "constraint y 1n 2n";
      "constraint nosuch 1n"; "clock 1n"; "clock 0"; "clock -1n";
      "clock nan"; "clock"; "clock 1n 1n"; "* comment" ]

let base_sta_deck =
  "* two-stage chain\n\
   vdd 5\n\
   threshold 0.5\n\
   cell inv 500 20f 50p\n\
   cell buf 200 40f 80p\n\
   gate u1 inv net_mid net_in\n\
   gate u2 buf net_out net_mid\n\
   net net_in drv u1 100 30f\n\
   net net_mid drv w1 200 50f ; w1 u2 150 40f\n\
   net net_out drv end 300 60f\n\
   input net_in\n\
   output net_out\n\
   constraint net_out 2n\n\
   clock 5n\n"

let sta_gen =
  let g_soup =
    let g_tok =
      Gen.oneof [ g_sta_card; g_name; g_node; g_value ]
    in
    Gen.(map (String.concat " ") (list_size (1 -- 6) g_tok))
  in
  let g_lines =
    Gen.(
      map (String.concat "\n")
        (list_size (0 -- 12)
           (frequency [ (4, g_sta_card); (2, g_soup); (1, g_garbage_line) ])))
  in
  Gen.(
    frequency
      [ (3, g_lines); (2, g_mutated base_sta_deck); (1, g_garbage_line) ])

(* --- the serve line protocol --------------------------------------- *)

(* [Sta.Serve.handle] is documented total: whatever the request line,
   it answers a structured [{"ok":...}] JSON response, never raises,
   and never corrupts the loaded session (a later valid command still
   works).  Scripts are command sequences against one server, so
   malformed lines interleave with genuine load/edit/timing traffic
   and hit every state the protocol can reach. *)

(* a real design file to load mid-script (lazily written to a temp
   file): without it, the fuzzer would only ever see the empty-session
   states *)
let serve_deck_path =
  lazy
    (let path = Filename.temp_file "awesim_fuzz" ".sta" in
     at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
     let oc = open_out path in
     output_string oc base_sta_deck;
     close_out oc;
     path)

let serve_escapes script =
  let t = Sta.Serve.create ~reduce:false () in
  let bad =
    List.find_map
      (fun line ->
        match Sta.Serve.handle t line with
        | r ->
          let body = r.Sta.Serve.body in
          let pfx = {|{"ok":|} in
          if
            String.length body >= String.length pfx
            && String.sub body 0 (String.length pfx) = pfx
          then None
          else Some (Failure (Printf.sprintf "non-JSON response: %s" body))
        | exception e -> Some e)
      script
  in
  match bad with
  | Some _ -> bad
  | None -> (
    (* the session survives the script: a plain status query answers *)
    match Sta.Serve.handle t "stats" with
    | _ -> None
    | exception e -> Some e)

let g_serve_line =
  let g_known =
    Gen.oneofl
      [ "load"; "load /nonexistent/x.sta"; "load a b c";
        "edit set_r net_mid 0 500"; "edit set_r net_mid 99 500";
        "edit set_r nosuch 0 500"; "edit set_r net_mid 0 nan";
        "edit set_r net_mid 0 -5"; "edit set_r net_mid 0";
        "edit set_c net_out 0 4e-14"; "edit set_c net_out zero 4e-14";
        "edit reroute net_mid 1 w1 u2"; "edit reroute net_mid 0 drv w9";
        "edit reroute net_mid 1 w1"; "edit swap_sink u2 net_mid net_in";
        "edit swap_sink u2"; "edit set_drive u1 300"; "edit set_drive u1 0";
        "edit set_drive u1 inf"; "edit set_pin_cap u2 1e-14";
        "edit set_intrinsic u1 1e-11"; "edit set_intrinsic u1 -1";
        "edit set_constraint net_out 1e-9"; "edit set_constraint net_out";
        "edit remove_constraint net_out"; "edit remove_constraint";
        "edit set_clock 2e-9"; "edit set_clock 0"; "edit remove_clock";
        "edit remove_clock now"; "edit"; "edit teleport u1";
        "timing"; "timing --slack"; "timing --top-k 2"; "timing --top-k -2";
        "timing --top-k"; "timing --top-k 2 --slack"; "timing --bogus";
        "stats"; "stats verbose"; "revert"; "revert all"; "revert some";
        "quit"; "quit now"; ""; " "; "\t \t" ]
  in
  let g_load_real =
    Gen.pure ("load " ^ Lazy.force serve_deck_path)
  in
  let g_soup =
    let g_tok =
      Gen.oneofl
        [ "edit"; "timing"; "load"; "revert"; "set_r"; "set_clock";
          "net_mid"; "u1"; "0"; "-1"; "nan"; "1e999"; "--slack"; "--top-k";
          "all"; "\"quoted\""; "{"; "}" ]
    in
    Gen.(map (String.concat " ") (list_size (1 -- 6) g_tok))
  in
  Gen.(
    frequency
      [ (6, g_known); (2, g_load_real); (2, g_soup); (1, g_garbage_line) ])

let serve_gen = Gen.(list_size (0 -- 20) g_serve_line)

(* --- qcheck tests -------------------------------------------------- *)

let escape_message = function
  | None -> true
  | Some e ->
    (* the counterexample printer shows the input; the message names
       the escaping exception *)
    ignore (Printexc.to_string e);
    false

let sp_test ~count =
  Test.make ~name:"fuzz .sp parser: parse or Parse_error" ~count
    ~print:(fun s -> s)
    sp_gen
    (fun src -> escape_message (sp_escapes src))

let sta_test ~count =
  Test.make ~name:"fuzz .sta parser: parse or Parse_error" ~count
    ~print:(fun s -> s)
    sta_gen
    (fun src -> escape_message (sta_escapes src))

let serve_test ~count =
  Test.make ~name:"fuzz serve protocol: always a JSON response" ~count
    ~print:(String.concat "\n")
    serve_gen
    (fun script -> escape_message (serve_escapes script))

(* --- driver entry -------------------------------------------------- *)

type failure = {
  parser : string;  (** ".sp" or ".sta" *)
  input : string;  (** the shrunk escaping input *)
  exn_text : string;  (** the escaping exception *)
}

let shrunk_failure ~parser escapes (cell_input : string) =
  let exn_text =
    match escapes cell_input with
    | Some e -> Printexc.to_string e
    | None -> "(not reproduced on the shrunk input)"
  in
  { parser; input = cell_input; exn_text }

(* QCheck2's [Test_fail] carries the printed (shrunk) counterexamples;
   with [~print:Fun.id] those are the deck texts themselves. *)
let run_test ~rand ~parser ~escapes test =
  match Test.check_exn ~rand test with
  | () -> []
  | exception Test.Test_fail (_, args) ->
    List.map (shrunk_failure ~parser escapes) args
  | exception Test.Test_error (_, arg, e, _) ->
    [ { parser; input = arg; exn_text = Printexc.to_string e } ]

(* counterexamples are printed scripts: one command line per line *)
let serve_escapes_text s = serve_escapes (String.split_on_char '\n' s)

let run_parser ~parser ~seed ~count =
  (* a fresh generator per parser keeps the sweeps independent of each
     other's draw counts (and lets them run concurrently) *)
  let rand = Random.State.make [| seed; Hashtbl.hash parser |] in
  match parser with
  | ".sp" -> run_test ~rand ~parser ~escapes:sp_escapes (sp_test ~count)
  | ".sta" -> run_test ~rand ~parser ~escapes:sta_escapes (sta_test ~count)
  | "serve" ->
    run_test ~rand ~parser ~escapes:serve_escapes_text (serve_test ~count)
  | _ ->
    invalid_arg "Fuzz.run_parser: parser must be \".sp\", \".sta\" or \"serve\""

let run ~seed ~count =
  run_parser ~parser:".sp" ~seed ~count
  @ run_parser ~parser:".sta" ~seed ~count
  @ run_parser ~parser:"serve" ~seed ~count
