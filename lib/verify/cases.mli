(** Seeded random verification cases: one circuit + excitation +
    observation node per seed, drawn from the generator families of
    {!Circuit.Samples} (RC trees with and without nonequilibrium
    initial conditions, RC meshes, floating-coupling-cap circuits,
    underdamped RLC ladders) with random step/ramp/PWL excitations.
    Fully deterministic in [seed]. *)

type case = {
  seed : int;
  label : string;  (** generator family and sizes, for reports *)
  circuit : Circuit.Netlist.circuit;
  node : Circuit.Element.node;  (** the observed output *)
}

val random_wave : Random.State.t -> Circuit.Element.waveform
(** A random excitation: ideal step (possibly from a nonzero 0-
    level), finite-rise ramp, or piecewise-linear staircase, with
    transition times in the generators' natural sub-ns regime. *)

val random_case : seed:int -> case
(** The case for [seed]; the same seed always reproduces the same
    circuit, waveform, and observation node. *)

val pp : Format.formatter -> case -> unit
