(* Metamorphic properties of the AWE pipeline.

   Each property is a deterministic [seed -> unit] check that raises
   [Failure] with a diagnostic on violation; [tests] wraps them as
   qcheck properties over random seeds so the suite gets shrinking to
   a smallest failing seed for free.

   The properties exploit invariances a correct implementation must
   satisfy without knowing the exact answer:

   - linearity: scaling the input scales the response and leaves the
     poles untouched (the system matrices do not see the source
     amplitude);
   - superposition: the response to two sources is the sum of the
     single-source responses (checked tightly on the trapezoidal
     simulator, which is linear per step, and loosely on AWE);
   - eq. 47 moment scaling is a pure conditioning transform: fits
     with and without it must agree at orders where both are stable;
   - time scaling: multiplying every capacitance by [beta] divides
     every pole by [beta] and stretches the waveform by [beta];
   - batched evaluation equals per-node recomputation;
   - the STA net timer's batched sink timings equal a per-sink
     rebuild of the same stage circuit;
   - the Cauchy pairing bound (eqs. 40-46) dominates the exact
     relative L2 error it bounds. *)

let failf fmt = Printf.ksprintf failwith fmt

let rel_diff a b = Float.abs (a -. b) /. Float.max 1e-30 (Float.max (Float.abs a) (Float.abs b))

let cx_rel_diff (a : Linalg.Cx.t) (b : Linalg.Cx.t) =
  Linalg.Cx.abs Linalg.Cx.(a -: b)
  /. Float.max 1e-30 (Float.max (Linalg.Cx.abs a) (Linalg.Cx.abs b))

let sorted_poles a = List.sort Linalg.Cx.compare_by_magnitude (Awe.poles a)

let check_pole_match ~what ~tol p1 p2 =
  if List.length p1 <> List.length p2 then
    failf "%s: pole counts differ (%d vs %d)" what (List.length p1)
      (List.length p2);
  List.iter2
    (fun a b ->
      let d = cx_rel_diff a b in
      if d > tol then
        failf "%s: poles differ by %.3g (%s vs %s)" what d
          (Format.asprintf "%a" Linalg.Cx.pp a)
          (Format.asprintf "%a" Linalg.Cx.pp b))
    p1 p2

let dominant_tau a =
  let poles =
    List.concat_map
      (fun (c : Awe.Approx.component) ->
        Awe.Approx.transient_poles c.Awe.Approx.transient)
      a.Awe.response
  in
  List.fold_left
    (fun acc p ->
      Float.max acc (1. /. Float.max (Float.abs p.Linalg.Cx.re) 1e-30))
    1e-12 poles

(* --- linearity: v(alpha * u) = alpha * v(u), poles invariant ------- *)

let linearity ~seed =
  let st = Random.State.make [| seed; 0x11ea |] in
  let n = 2 + Random.State.int st 9 in
  let alpha =
    (if Random.State.bool st then 1. else -1.)
    *. (0.25 +. Random.State.float st 3.75)
  in
  let sub = (seed * 5) + 3 in
  let base_wave = Circuit.Element.Step { v0 = 0.; v1 = 1. } in
  let scaled_wave = Circuit.Element.Step { v0 = 0.; v1 = alpha } in
  let c1, node = Circuit.Samples.random_rc_tree ~seed:sub ~wave:base_wave ~n () in
  let c2, _ = Circuit.Samples.random_rc_tree ~seed:sub ~wave:scaled_wave ~n () in
  let s1 = Circuit.Mna.build c1 and s2 = Circuit.Mna.build c2 in
  let a1, _ = Awe.auto s1 ~node in
  let a2 = Awe.approximate s2 ~node ~q:a1.Awe.q in
  (* the two fits solve differently-scaled systems, so the match is
     only as tight as the moment matrix conditioning (observed up to
     ~1.5e-4 on deep trees), not machine epsilon *)
  check_pole_match ~what:"linearity" ~tol:5e-4 (sorted_poles a1)
    (sorted_poles a2);
  let t_stop = 8. *. dominant_tau a1 in
  let scale = Float.max (Float.abs alpha) 1. in
  for i = 0 to 16 do
    let t = t_stop *. float_of_int i /. 16. in
    let v1 = Awe.eval a1 t and v2 = Awe.eval a2 t in
    if Float.abs (v2 -. (alpha *. v1)) > 1e-4 *. scale then
      failf "linearity: v(%g)=%g but alpha*v=%g at t=%g" alpha v2
        (alpha *. v1) t
  done

(* --- superposition on a two-source chain --------------------------- *)

let superposition ~seed =
  let st = Random.State.make [| seed; 0x50be |] in
  let n = 2 + Random.State.int st 6 in
  let rs = Array.init n (fun _ -> 50. +. Random.State.float st 1950.) in
  let cs = Array.init n (fun _ -> 10e-15 +. Random.State.float st 490e-15) in
  let inject = 1 + Random.State.int st n in
  let av = 0.5 +. Random.State.float st 4.5 in
  let ai = (0.2 +. Random.State.float st 2.) *. 1e-3 in
  let build ~v_on ~i_on =
    let b = Circuit.Netlist.create () in
    let wave_v =
      if v_on then Circuit.Element.Step { v0 = 0.; v1 = av }
      else Circuit.Element.Dc 0.
    in
    let wave_i =
      if i_on then Circuit.Element.Step { v0 = 0.; v1 = ai }
      else Circuit.Element.Dc 0.
    in
    Circuit.Netlist.add_v b "vin" "in" "0" wave_v;
    let name k = Printf.sprintf "n%d" k in
    for k = 1 to n do
      let parent = if k = 1 then "in" else name (k - 1) in
      Circuit.Netlist.add_r b (Printf.sprintf "r%d" k) parent (name k) rs.(k - 1);
      Circuit.Netlist.add_c b (Printf.sprintf "c%d" k) (name k) "0" cs.(k - 1)
    done;
    Circuit.Netlist.add_i b "iinj" "0" (name inject) wave_i;
    let circuit = Circuit.Netlist.freeze b in
    (Circuit.Mna.build circuit, Option.get (Circuit.Netlist.find_node circuit (name n)))
  in
  let s_both, node = build ~v_on:true ~i_on:true in
  let s_v, _ = build ~v_on:true ~i_on:false in
  let s_i, _ = build ~v_on:false ~i_on:true in
  let t_stop =
    10. *. Array.fold_left ( +. ) 0. rs *. Array.fold_left ( +. ) 0. cs
  in
  let steps = 400 in
  let sim s = Transim.Transient.node_waveform (Transim.Transient.simulate s ~t_stop ~steps) node in
  let w_both = sim s_both and w_v = sim s_v and w_i = sim s_i in
  let scale =
    Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 1e-9
      w_both.Waveform.values
  in
  (* the integrator is linear step by step: superposition holds to
     rounding *)
  Array.iteri
    (fun k t ->
      let sum = w_v.Waveform.values.(k) +. w_i.Waveform.values.(k) in
      if Float.abs (w_both.Waveform.values.(k) -. sum) > 1e-9 *. scale then
        failf "superposition(sim): %g vs %g at t=%g" w_both.Waveform.values.(k)
          sum t)
    w_both.Waveform.times;
  (* AWE is linear too, but each reduced model carries its own
     truncation error; a loose bound still catches gross breakage *)
  let a_both, _ = Awe.auto s_both ~node in
  let a_v, _ = Awe.auto s_v ~node in
  let a_i, _ = Awe.auto s_i ~node in
  for k = 0 to 16 do
    let t = t_stop *. float_of_int k /. 16. in
    let sum = Awe.eval a_v t +. Awe.eval a_i t in
    if Float.abs (Awe.eval a_both t -. sum) > 0.15 *. scale then
      failf "superposition(awe): %g vs %g at t=%g" (Awe.eval a_both t) sum t
  done

(* --- eq. 47 moment scaling is conditioning only -------------------- *)

let moment_scaling ~seed =
  let st = Random.State.make [| seed; 0x47 |] in
  let n = 3 + Random.State.int st 6 in
  let sub = (seed * 3) + 7 in
  let circuit, node = Circuit.Samples.random_rc_tree ~seed:sub ~n () in
  let sys = Circuit.Mna.build circuit in
  let q = 1 + Random.State.int st 2 in
  (* either fit can be degenerate or unstable at a fixed order ([auto]
     would escalate past it), and raw (unscaled) moments can look
     singular, or fit spurious right-half-plane poles, where scaled
     ones do not — those are the conditioning failures eq. 47 exists
     to solve, not correctness bugs; the invariance claim only applies
     when both fits exist and keep the full order *)
  match
    ( Awe.approximate sys ~node ~q,
      Awe.approximate
        ~options:{ Awe.default_options with scale_moments = false }
        sys ~node ~q )
  with
  | exception (Awe.Degenerate _ | Awe.Unstable_fit _) -> ()
  | scaled, raw ->
  if List.length (sorted_poles scaled) = List.length (sorted_poles raw) then begin
    check_pole_match ~what:"moment_scaling" ~tol:1e-5 (sorted_poles scaled)
      (sorted_poles raw);
    let t_stop = 8. *. dominant_tau scaled in
    for k = 0 to 16 do
      let t = t_stop *. float_of_int k /. 16. in
      if Float.abs (Awe.eval scaled t -. Awe.eval raw t) > 1e-5 then
        failf "moment_scaling: eval differs %g vs %g at t=%g"
          (Awe.eval scaled t) (Awe.eval raw t) t
    done
  end

(* --- time scaling: C -> beta*C divides poles by beta --------------- *)

let time_scaling ~seed =
  let st = Random.State.make [| seed; 0x7153 |] in
  let n = 2 + Random.State.int st 6 in
  let beta = 10. ** (Random.State.float st 4. -. 2.) in
  let rs = Array.init n (fun _ -> 50. +. Random.State.float st 1950.) in
  let cs = Array.init n (fun _ -> 10e-15 +. Random.State.float st 490e-15) in
  let build beta =
    let b = Circuit.Netlist.create () in
    Circuit.Netlist.add_v b "vin" "in" "0"
      (Circuit.Element.Step { v0 = 0.; v1 = 1. });
    let name k = Printf.sprintf "n%d" k in
    for k = 1 to n do
      let parent = if k = 1 then "in" else name (k - 1) in
      Circuit.Netlist.add_r b (Printf.sprintf "r%d" k) parent (name k) rs.(k - 1);
      Circuit.Netlist.add_c b
        (Printf.sprintf "c%d" k)
        (name k) "0"
        (beta *. cs.(k - 1))
    done;
    let circuit = Circuit.Netlist.freeze b in
    (Circuit.Mna.build circuit, Option.get (Circuit.Netlist.find_node circuit (name n)))
  in
  let s1, node = build 1. in
  let s2, _ = build beta in
  let a1, _ = Awe.auto s1 ~node in
  let a2 = Awe.approximate s2 ~node ~q:a1.Awe.q in
  let p1 = sorted_poles a1 in
  let p2 = sorted_poles a2 in
  check_pole_match ~what:"time_scaling" ~tol:1e-6 p2
    (List.map (fun p -> Linalg.Cx.scale (1. /. beta) p) p1);
  let t_stop = 8. *. dominant_tau a1 in
  for k = 0 to 16 do
    let t = t_stop *. float_of_int k /. 16. in
    let v1 = Awe.eval a1 t and v2 = Awe.eval a2 (beta *. t) in
    if Float.abs (v1 -. v2) > 1e-6 then
      failf "time_scaling: v(t)=%g but v_beta(beta t)=%g at t=%g" v1 v2 t
  done

(* --- batched evaluation = per-node recomputation ------------------- *)

let batch_parity ~seed =
  let st = Random.State.make [| seed; 0xba7c |] in
  let sub = (seed * 11) + 5 in
  let circuit, _ =
    if Random.State.bool st then
      Circuit.Samples.random_rc_tree ~seed:sub ~n:(3 + Random.State.int st 7) ()
    else
      Circuit.Samples.random_rc_mesh ~seed:sub
        ~n:(3 + Random.State.int st 7)
        ~extra:(1 + Random.State.int st 2) ()
  in
  let sys = Circuit.Mna.build circuit in
  let q = 2 + Random.State.int st 2 in
  let nodes =
    List.init (circuit.Circuit.Netlist.node_count - 1) (fun i -> i + 1)
  in
  let batched = Awe.Batch.approximate_all sys ~nodes ~q in
  List.iter
    (fun (r : Awe.Batch.result) ->
      let node = r.Awe.Batch.node in
      let individual =
        match Awe.approximate sys ~node ~q with
        | a -> Ok a
        | exception Awe.Degenerate m -> Error m
        | exception Awe.Unstable_fit _ -> Error "unstable"
      in
      match (r.Awe.Batch.outcome, individual) with
      | Awe.Batch.Failed _, Error _ -> ()
      | Awe.Batch.Failed m, Ok _ ->
        failf "batch_parity: node %d failed batched (%s) but fits alone" node m
      | Awe.Batch.Approximation _, Error m ->
        failf "batch_parity: node %d fits batched but fails alone (%s)" node m
      | Awe.Batch.Approximation a, Ok b ->
        check_pole_match
          ~what:(Printf.sprintf "batch_parity node %d" node)
          ~tol:1e-9 (sorted_poles a) (sorted_poles b);
        let t_stop = 8. *. dominant_tau a in
        for k = 0 to 8 do
          let t = t_stop *. float_of_int k /. 8. in
          if rel_diff (Awe.eval a t) (Awe.eval b t) > 1e-9 then
            failf "batch_parity: node %d eval differs at t=%g" node t
        done)
    batched

(* --- STA: batched sink timings = per-sink rebuild ------------------ *)

let sta_parity ~seed =
  let st = Random.State.make [| seed; 0x57a |] in
  let d = Sta.create ~vdd:5. ~threshold:0.5 () in
  let k = 1 + Random.State.int st 4 in
  let m = Random.State.int st 4 in
  let seg from_ to_ =
    { Sta.seg_from = from_;
      seg_to = to_;
      res = 50. +. Random.State.float st 450.;
      cap = 5e-15 +. Random.State.float st 95e-15 }
  in
  (* a random wire tree on internal nodes w1..wm rooted at drv, with
     one leaf segment per sink instance *)
  let internal = Array.init (m + 1) (fun i -> if i = 0 then "drv" else Printf.sprintf "w%d" i) in
  let segments = ref [] in
  for i = 1 to m do
    segments := seg internal.(Random.State.int st i) internal.(i) :: !segments
  done;
  for j = 0 to k - 1 do
    segments :=
      seg internal.(Random.State.int st (m + 1)) (Printf.sprintf "u%d" j)
      :: !segments
  done;
  for j = 0 to k - 1 do
    let cell =
      Sta.cell
        ~name:(Printf.sprintf "cell%d" j)
        ~drive_res:(100. +. Random.State.float st 900.)
        ~input_cap:(2e-15 +. Random.State.float st 30e-15)
        ~intrinsic:10e-12
    in
    Sta.add_gate d ~inst:(Printf.sprintf "u%d" j) ~cell
      ~inputs:[ "a" ]
      ~output:(Printf.sprintf "y%d" j);
    Sta.add_net d
      ~name:(Printf.sprintf "y%d" j)
      ~segments:
        [ { Sta.seg_from = "drv";
            seg_to = Printf.sprintf "o%d" j;
            res = 10.;
            cap = 1e-15 } ]
  done;
  Sta.add_net d ~name:"a" ~segments:(List.rev !segments);
  Sta.add_primary_input d ~net:"a" ();
  let q = 3 in
  (* reduce off: the per-sink rebuild below runs on the unreduced
     stage circuit at 1e-6 — batching parity, not reduction accuracy
     (reduce_equivalence owns that) *)
  let report = Sta.analyze ~model:(Sta.Awe_model q) ~reduce:false d in
  let nt =
    List.find (fun nt -> nt.Sta.net_name = "a") report.Sta.nets
  in
  if List.length nt.Sta.sinks <> k then
    failf "sta_parity: expected %d sinks, got %d" k (List.length nt.Sta.sinks);
  (* rebuild the same stage circuit and time each sink on its own
     engine: one factorization and one moment sequence per sink, the
     configuration the batched path must reproduce exactly *)
  let circuit, sink_nodes =
    Sta.net_circuit d ~net:"a" ~driver_res:1e-3 ~slew:0.
  in
  let sys = Circuit.Mna.build circuit in
  List.iter
    (fun (s : Sta.sink_timing) ->
      let node = List.assoc s.Sta.sink_inst sink_nodes in
      let a =
        match Awe.approximate sys ~node ~q with
        | a -> a
        | exception (Awe.Degenerate _ | Awe.Unstable_fit _) ->
          fst (Awe.auto sys ~node)
      in
      let tau = Float.max (Awe.elmore_equivalent sys ~node) 1e-15 in
      let t_max = 50. *. tau in
      let delay =
        match Awe.delay a ~threshold:2.5 ~t_max with
        | Some t -> t
        | None -> failf "sta_parity: sink %s never crosses alone" s.Sta.sink_inst
      in
      if rel_diff delay s.Sta.net_delay > 1e-6 then
        failf "sta_parity: sink %s delay %.9g (batched) vs %.9g (rebuilt)"
          s.Sta.sink_inst s.Sta.net_delay delay;
      let slew =
        match
          ( Awe.Approx.crossing_time a.Awe.response ~threshold:0.5 ~t_max,
            Awe.Approx.crossing_time a.Awe.response ~threshold:4.5 ~t_max )
        with
        | Some t10, Some t90 when t90 > t10 -> t90 -. t10
        | _ -> tau *. log 9.
      in
      if rel_diff slew s.Sta.sink_slew > 1e-6 then
        failf "sta_parity: sink %s slew %.9g (batched) vs %.9g (rebuilt)"
          s.Sta.sink_inst s.Sta.sink_slew slew)
    nt.Sta.sinks

(* --- the Cauchy pairing bound dominates the exact error ------------ *)

let cauchy_dominates ~seed =
  let st = Random.State.make [| seed; 0xca0c |] in
  let sub = (seed * 13) + 1 in
  let circuit, node =
    if Random.State.int st 3 = 0 then
      Circuit.Samples.random_rlc_ladder ~seed:sub
        ~sections:(1 + Random.State.int st 3)
        ()
    else Circuit.Samples.random_rc_tree ~seed:sub ~n:(3 + Random.State.int st 8) ()
  in
  let sys = Circuit.Mna.build circuit in
  let engine = Awe.Engine.create sys in
  let a, _ = Awe.Engine.auto engine ~node in
  match Awe.Engine.approximate engine ~node ~q:(a.Awe.q + 1) with
  | exception (Awe.Degenerate _ | Awe.Unstable_fit _) ->
    (* no usable (q+1) reference at this seed; nothing to compare *)
    ()
  | a1 ->
    let exact = a1.Awe.base in
    let rel = Awe.Error_est.relative_error ~exact a.Awe.base in
    let bound = Awe.Error_est.cauchy_bound ~exact a.Awe.base in
    (* below ~1e-6 both quantities are rounding noise of numerically
       identical models (e.g. a reduced (q+1) fit equal to the q fit) *)
    if rel > 1e-6 && bound < rel *. (1. -. 1e-6) then
      failf "cauchy_dominates: bound %.6g < exact relative error %.6g" bound
        rel

(* --- lint soundness: a lint-clean circuit factors ------------------ *)

(* the static checks promise that a circuit with no lint error never
   hits a singular factorization: no [Sparse.Slu.Singular], no
   [Linalg.Lu.Singular], no [Circuit.Mna.Singular_dc] — across every
   random topology family, including the meshes and coupled trees whose
   floating groups exercise the charge-row machinery *)
let lint_soundness ~seed =
  let st = Random.State.make [| seed; 0x117 |] in
  let sub = (seed * 7) + 3 in
  let circuit, _ =
    match Random.State.int st 4 with
    | 0 ->
      Circuit.Samples.random_rc_tree ~seed:sub ~n:(2 + Random.State.int st 10) ()
    | 1 ->
      Circuit.Samples.random_coupled_tree ~seed:sub
        ~n:(3 + Random.State.int st 8)
        ~couplings:(1 + Random.State.int st 3)
        ()
    | 2 ->
      Circuit.Samples.random_rlc_ladder ~seed:sub
        ~sections:(1 + Random.State.int st 4)
        ()
    | _ ->
      Circuit.Samples.random_rc_mesh ~seed:sub
        ~n:(3 + Random.State.int st 8)
        ~extra:(1 + Random.State.int st 3)
        ()
  in
  let diags = Lint.check_circuit circuit in
  match Lint.errors diags with
  | _ :: _ -> () (* lint objects: no factorization promise to check *)
  | [] -> (
    match
      let sys = Circuit.Mna.build circuit in
      ignore (Circuit.Mna.dc_factor sys);
      ignore (Circuit.Mna.dc_factor ~sparse:true sys)
    with
    | () -> ()
    | exception Circuit.Mna.Singular_dc msg ->
      failf "lint_soundness: lint-clean circuit is singular (%s)" msg
    | exception Invalid_argument msg ->
      failf "lint_soundness: lint-clean circuit rejected by Mna (%s)" msg)

(* --- model-order reduction preserves the port response ------------- *)

(* [Circuit.Reduce] promises that collapsing chains, stars and
   parallels leaves the AWE response at every preserved port within
   the oracle's transient-normalized L2 tolerance: exact transforms
   change nothing, the lumping transforms keep the low-order moments,
   and the ports themselves are never eliminated *)
let reduce_equivalence ~seed =
  let st = Random.State.make [| seed; 0x4ed |] in
  let n = 3 + Random.State.int st 10 in
  let sub = (seed * 11) + 5 in
  let circuit, leaf = Circuit.Samples.random_rc_tree ~seed:sub ~n () in
  let r = Circuit.Reduce.reduce ~ports:[ leaf ] circuit in
  let rc = r.Circuit.Reduce.circuit in
  if
    rc.Circuit.Netlist.node_count > circuit.Circuit.Netlist.node_count
    || Array.length rc.Circuit.Netlist.elements
       > Array.length circuit.Circuit.Netlist.elements
  then failf "reduce_equivalence: reduction grew the circuit";
  let leaf' = r.Circuit.Reduce.node_map.(leaf) in
  if leaf' < 0 then failf "reduce_equivalence: port was eliminated";
  let a1, _ = Awe.auto (Circuit.Mna.build circuit) ~node:leaf in
  let a2, _ = Awe.auto (Circuit.Mna.build rc) ~node:leaf' in
  let t_stop = 8. *. dominant_tau a1 in
  let num = ref 0. and den = ref 0. in
  for i = 0 to 32 do
    let t = t_stop *. float_of_int i /. 32. in
    let v1 = Awe.eval a1 t and v2 = Awe.eval a2 t in
    num := !num +. ((v1 -. v2) *. (v1 -. v2));
    den := !den +. (v1 *. v1)
  done;
  let rel = sqrt (!num /. Float.max !den 1e-30) in
  if rel > Oracle.default_tol.Oracle.rel_l2 then
    failf
      "reduce_equivalence: reduced response deviates rel_l2 = %.3g \
       (tolerance %.3g; %d nodes eliminated)"
      rel Oracle.default_tol.Oracle.rel_l2
      r.Circuit.Reduce.report.Circuit.Reduce.nodes_eliminated

(* ------------------------------------------------------------------ *)

let all =
  [ ("linearity", linearity);
    ("superposition", superposition);
    ("moment_scaling", moment_scaling);
    ("time_scaling", time_scaling);
    ("batch_parity", batch_parity);
    ("sta_parity", sta_parity);
    ("cauchy_dominates", cauchy_dominates);
    ("lint_soundness", lint_soundness);
    ("reduce_equivalence", reduce_equivalence) ]

let tests ~count =
  List.map
    (fun (name, prop) ->
      QCheck2.Test.make ~name ~count ~print:string_of_int
        QCheck2.Gen.(0 -- 1_000_000)
        (fun seed ->
          prop ~seed;
          true))
    all
