(** Differential verification harness: random-circuit oracles,
    metamorphic properties, and parser/protocol fuzzing.

    Three layers, all deterministic in one seed:

    + {!Oracle}: random circuits from {!Cases} checked against the
      in-repo transient simulator — waveform agreement, final-value
      agreement, error-estimate sanity;
    + {!Props}: metamorphic invariances (linearity, superposition,
      scaling rules, batch/STA parity, the Cauchy bound);
    + {!Fuzz}: the [.sp] and [.sta] parsers must parse or raise their
      own [Parse_error], never anything else.

    [run] drives all three and accumulates failures into a {!report}
    instead of raising, so one sweep reports everything at once. *)

module Cases = Cases
module Oracle = Oracle
module Props = Props
module Fuzz = Fuzz

type config = {
  seed : int;
  count : int;  (** oracle cases *)
  prop_count : int;  (** seeds per metamorphic property *)
  fuzz_count : int;  (** fuzz inputs per fuzzer (parsers, serve protocol) *)
  tol : Oracle.tol;
  repro_dir : string option;  (** where to write shrunk fuzz decks *)
  jobs : int;  (** parallel fan-out across cases/props/fuzzers *)
}

val default_config : config
(** seed 42, 200 oracle cases, 60 seeds per property, 1000 fuzz
    inputs per fuzzer, {!Oracle.default_tol}, no repro directory,
    jobs 1. *)

type prop_failure = {
  prop : string;
  prop_seed : int;
  message : string;
}

type report = {
  config : config;
  oracle_run : int;
  oracle_failures : Oracle.outcome list;
  worst_measured : float;  (** largest oracle rel-L2 error observed *)
  worst_case : Cases.case option;
  prop_run : int;
  prop_failures : prop_failure list;
  fuzz_run : int;
  fuzz_failures : Fuzz.failure list;
  repro_files : string list;  (** decks written for fuzz failures *)
}

val passed : report -> bool

val run : ?progress:(string -> unit) -> config -> report
(** Run the full sweep.  [progress] receives one-line status messages
    as layers advance (default: silent).  Failures accumulate in the
    report; [run] itself only raises on I/O errors writing repro
    decks.

    [config.jobs] > 1 fans the individual oracle cases, property
    runs, and the three fuzzers across a {!Parallel} pool.  Each
    task derives its RNG from its own seed and results fold in index
    order, so the report is bit-identical for any job count. *)

val pp_report : Format.formatter -> report -> unit
