(* The differential oracle: AWE against the in-repo transient
   simulator.

   For each case the adaptive-order AWE response ([Awe.auto], the
   paper's Section 3.3-3.4 policy) is compared against a
   variable-step trapezoidal integration of the same MNA system
   ([Transient.simulate_adaptive]) over a horizon of the excitation's
   last slope break plus several dominant time constants.  Three
   checks per case:

   - waveform agreement, as L2 error normalized by the transient part
     of the reference (the paper's eq. 35 error term; normalizing by
     the full waveform would let a large DC level mask transient
     disagreement);
   - final-value agreement: [Awe.steady_state] is exact by moment-0
     matching, so it must land on the simulator's settled value;
   - error-estimate sanity: the q-vs-(q+1) estimate returned by
     [auto] must bound the measured error up to a documented slack
     factor.  The estimate is a self-consistency measure, not a
     guaranteed bound (THEORY.md, verification section), hence
     [est_slack] and the [est_floor] absolute floor. *)

type tol = {
  rel_l2 : float;  (** max transient-normalized L2 error *)
  final_frac : float;  (** max final-value error / response scale *)
  est_slack : float;  (** measured <= est_slack * max(est, est_floor) *)
  est_floor : float;
  sim_tol : float;  (** oracle LTE tolerance per step *)
}

(* [rel_l2 = 0.15]: the q-vs-(q+1) estimate that drives [Awe.auto] is
   self-referential — when a fast mode is weakly observable in the DC
   moments, the q and (q+1) fits miss it the same way and their
   distance stays under the 0.02 escalation tolerance while the true
   error does not.  Over large seed sweeps the worst such excess
   measured ~0.12 (the pinned regression deck
   decks/regress_est_blindspot.sp reproduces one); 0.15 passes the
   honest cases and still fails anything structurally wrong, whose
   errors measure well above 0.3.  Rationale in THEORY.md
   (verification methodology). *)
let default_tol =
  { rel_l2 = 0.15;
    final_frac = 0.02;
    est_slack = 10.;
    est_floor = 0.02;
    sim_tol = 1e-5 }

type outcome = {
  case : Cases.case;
  q : int;  (** chosen approximation order (0 when AWE failed) *)
  est : float;  (** AWE's own q-vs-(q+1) error estimate *)
  measured : float;  (** transient-normalized L2 error vs the oracle *)
  max_abs : float;  (** max pointwise error, volts *)
  final_awe : float;
  final_sim : float;
  t_stop : float;
  oracle_points : int;  (** accepted adaptive-simulation points *)
  failures : string list;  (** empty means the case passed *)
}

let passed o = o.failures = []

(* every pole of the response, across all components: the base
   transient is empty for ramp/PWL excitations of a circuit at rest,
   so [Awe.poles] (base only) would miss the dynamics entirely *)
let response_poles (a : Awe.t) =
  List.concat_map
    (fun (c : Awe.Approx.component) ->
      Awe.Approx.transient_poles c.Awe.Approx.transient)
    a.Awe.response

(* the horizon: the excitation's last slope break plus a settle
   allowance of dominant time constants *)
let horizon circuit poles =
  let wave_end =
    Array.fold_left
      (fun acc e ->
        match e with
        | Circuit.Element.Vsource { wave; _ } | Circuit.Element.Isource { wave; _ }
          ->
          let c = Circuit.Element.canonicalize wave in
          List.fold_left (fun acc (t, _) -> Float.max acc t) acc c.breaks
        | _ -> acc)
      0. circuit.Circuit.Netlist.elements
  in
  let tau =
    List.fold_left
      (fun acc p -> Float.max acc (1. /. Float.max (Float.abs p.Linalg.Cx.re) 1e-30))
      0. poles
  in
  wave_end +. (8. *. Float.max tau 1e-12)

let shift_by off (w : Waveform.t) =
  Waveform.create w.Waveform.times
    (Array.map (fun v -> v -. off) w.Waveform.values)

let failed case msg =
  { case;
    q = 0;
    est = Float.nan;
    measured = Float.nan;
    max_abs = Float.nan;
    final_awe = Float.nan;
    final_sim = Float.nan;
    t_stop = 0.;
    oracle_points = 0;
    failures = [ msg ] }

let check ?(tol = default_tol) (case : Cases.case) =
  let sys = Circuit.Mna.build case.circuit in
  match Awe.auto sys ~node:case.node with
  | exception Awe.Degenerate msg ->
    failed case (Printf.sprintf "awe degenerate: %s" msg)
  | exception Awe.Unstable_fit _ ->
    failed case "awe unstable at every order up to q_max"
  | exception Circuit.Mna.Singular_dc msg ->
    failed case ("singular dc system: " ^ msg)
  | a, est ->
    let t_stop = horizon case.circuit (response_poles a) in
    let sim =
      Transim.Transient.simulate_adaptive ~tol:tol.sim_tol sys ~t_stop
    in
    let sim_w = Transim.Transient.node_waveform sim case.node in
    let awe_w =
      Waveform.create sim_w.Waveform.times
        (Array.map (Awe.eval a) sim_w.Waveform.times)
    in
    let final_sim = Waveform.final_value sim_w in
    let final_awe =
      match Awe.steady_state a with
      | v -> v
      | exception Invalid_argument _ -> Awe.eval a t_stop
    in
    let scale =
      Array.fold_left
        (fun acc v -> Float.max acc (Float.abs v))
        1e-9 sim_w.Waveform.values
    in
    let vrange =
      let lo, hi =
        Array.fold_left
          (fun (lo, hi) v -> (Float.min lo v, Float.max hi v))
          (infinity, neg_infinity) sim_w.Waveform.values
      in
      hi -. lo
    in
    let max_abs = Waveform.max_abs_error sim_w awe_w in
    let transient_norm = Waveform.l2_norm (shift_by final_sim sim_w) in
    let measured =
      if transient_norm > 1e-6 *. scale *. sqrt t_stop then
        Waveform.l2_error sim_w awe_w /. transient_norm
      else
        (* an (almost) flat response: fall back to pointwise error
           against the level *)
        max_abs /. scale
    in
    let failures = ref [] in
    let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
    if not (measured <= tol.rel_l2) then
      fail "waveform disagrees: rel L2 %.4g > %.4g" measured tol.rel_l2;
    let final_err = Float.abs (final_awe -. final_sim) in
    if not (final_err <= tol.final_frac *. Float.max vrange scale) then
      fail "final value disagrees: awe %.6g vs sim %.6g" final_awe final_sim;
    if not (measured <= tol.est_slack *. Float.max est tol.est_floor) then
      fail "error estimate %.4g does not cover measured %.4g (slack %.1f)" est
        measured tol.est_slack;
    { case;
      q = a.Awe.q;
      est;
      measured;
      max_abs;
      final_awe;
      final_sim;
      t_stop;
      oracle_points = Array.length sim.Transim.Transient.times;
      failures = List.rev !failures }

let pp_outcome ppf o =
  Format.fprintf ppf "@[<v2>%a: %s@," Cases.pp o.case
    (if passed o then "ok" else "FAIL");
  Format.fprintf ppf "q=%d est=%.4g measured=%.4g max|e|=%.4g@," o.q o.est
    o.measured o.max_abs;
  Format.fprintf ppf "final awe=%.6g sim=%.6g t_stop=%.3g pts=%d" o.final_awe
    o.final_sim o.t_stop o.oracle_points;
  List.iter (fun m -> Format.fprintf ppf "@,%s" m) o.failures;
  Format.fprintf ppf "@]"
