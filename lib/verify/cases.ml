(* Seeded random verification cases.

   Each case is one circuit drawn from the generator families of
   Circuit.Samples — RC trees, meshes, coupled/floating-cap circuits,
   underdamped RLC ladders — combined with a random excitation (ideal
   step, finite-rise ramp, piecewise-linear staircase, nonzero 0-
   level) and, for one family, nonequilibrium initial conditions on a
   random subset of capacitors (the paper's Section 5.2
   configuration).  Everything derives deterministically from [seed]:
   the same seed always builds the same circuit, waveform, and
   observation node, so a failure report is a complete reproduction
   recipe. *)

type case = {
  seed : int;
  label : string;  (** generator family and sizes, for reports *)
  circuit : Circuit.Netlist.circuit;
  node : Circuit.Element.node;  (** the observed output *)
}

(* Excitation time scales sit in the generators' natural regime:
   50-2000 Ohm against 1-500 fF gives sub-ns Elmore delays, and the
   RLC ladders ring at ~sqrt(LC) ~ 0.1-0.2 ns, so transitions of
   20 ps - 2 ns exercise both the ideal-step limit and rise times
   comparable to the circuit's own response. *)
let random_wave st =
  let amp () =
    let sign = if Random.State.bool st then 1. else -1. in
    sign *. (0.5 +. Random.State.float st 4.5)
  in
  match Random.State.int st 5 with
  | 0 -> Circuit.Element.Step { v0 = 0.; v1 = amp () }
  | 1 ->
    (* nonzero pre level: the 0- operating point differs from rest *)
    Circuit.Element.Step { v0 = amp (); v1 = amp () }
  | 2 ->
    Circuit.Element.Ramp
      { v0 = 0.;
        v1 = amp ();
        t_delay = Random.State.float st 0.5e-9;
        t_rise = 20e-12 +. Random.State.float st 2e-9 }
  | 3 ->
    Circuit.Element.Ramp
      { v0 = amp ();
        v1 = amp ();
        t_delay = 0.;
        t_rise = 50e-12 +. Random.State.float st 1e-9 }
  | _ ->
    (* a staircase: constant 0 before the first point, then a few
       random levels joined by linear pieces *)
    let t = ref 0. and pts = ref [ (0., 0.) ] in
    let k = 2 + Random.State.int st 3 in
    for _ = 1 to k do
      t := !t +. (50e-12 +. Random.State.float st 1e-9);
      pts := (!t, amp ()) :: !pts
    done;
    Circuit.Element.Pwl (List.rev !pts)

let random_case ~seed =
  let st = Random.State.make [| seed; 0x5eed |] in
  let wave = random_wave st in
  (* sub-seed for the structural generator, decorrelated from [seed]
     steps of 1 so neighbouring seeds differ structurally too *)
  let sub = (seed * 7) + 13 in
  match Random.State.int st 5 with
  | 0 ->
    let n = 2 + Random.State.int st 10 in
    let circuit, node = Circuit.Samples.random_rc_tree ~seed:sub ~wave ~n () in
    { seed; label = Printf.sprintf "rc_tree[n=%d]" n; circuit; node }
  | 1 ->
    let n = 2 + Random.State.int st 8 in
    let ic_frac = 0.3 +. Random.State.float st 0.6 in
    let circuit, node =
      Circuit.Samples.random_rc_tree ~seed:sub ~wave ~ic_frac ~n ()
    in
    { seed;
      label = Printf.sprintf "rc_tree_ic[n=%d,f=%.2f]" n ic_frac;
      circuit;
      node }
  | 2 ->
    let n = 3 + Random.State.int st 8 in
    let extra = 1 + Random.State.int st 3 in
    let circuit, node = Circuit.Samples.random_rc_mesh ~seed:sub ~n ~extra () in
    { seed; label = Printf.sprintf "rc_mesh[n=%d,x=%d]" n extra; circuit; node }
  | 3 ->
    let n = 3 + Random.State.int st 7 in
    let couplings = 1 + Random.State.int st 3 in
    let circuit, node =
      Circuit.Samples.random_coupled_tree ~seed:sub ~wave ~n ~couplings ()
    in
    { seed;
      label = Printf.sprintf "coupled[n=%d,k=%d]" n couplings;
      circuit;
      node }
  | _ ->
    let sections = 1 + Random.State.int st 3 in
    let circuit, node =
      Circuit.Samples.random_rlc_ladder ~seed:sub ~wave ~sections ()
    in
    { seed; label = Printf.sprintf "rlc[s=%d]" sections; circuit; node }

let pp ppf c =
  Format.fprintf ppf "case %d: %s, observing %s" c.seed c.label
    (Circuit.Netlist.node_name c.circuit c.node)
