(** Parser fuzzing: whatever the input, {!Circuit.Parser} and
    {!Sta.Design_file} must either parse it or raise their own
    [Parse_error] — no other exception may escape.  Inputs mix
    token-soup lines from a vocabulary of plausible and malformed
    fragments, raw garbage, and single-character mutations of valid
    decks; qcheck shrinking reduces escaping inputs to minimal
    reproductions. *)

val sp_escapes : string -> exn option
(** [None] when the [.sp] parser parses or raises [Parse_error];
    [Some e] when any other exception [e] escapes. *)

val sta_escapes : string -> exn option
(** Same contract for the [.sta] design-file parser. *)

val serve_escapes : string list -> exn option
(** The [awesim serve] protocol robustness contract: feed the script's
    lines to a fresh {!Sta.Serve.t}; every line — malformed, truncated,
    or interleaved with genuine load/edit/timing traffic — must yield
    a structured [{"ok":...}] JSON response, no exception may escape,
    and the session must stay answerable afterwards.  [None] when the
    contract held; [Some e] with the escaping (or synthesized)
    exception otherwise. *)

val sp_gen : string QCheck2.Gen.t

val sta_gen : string QCheck2.Gen.t

val serve_gen : string list QCheck2.Gen.t
(** Scripts mixing known commands (valid and broken), a genuine [load]
    of a real on-disk design, token soup over the protocol vocabulary,
    and raw garbage. *)

val sp_test : count:int -> QCheck2.Test.t

val sta_test : count:int -> QCheck2.Test.t

val serve_test : count:int -> QCheck2.Test.t

type failure = {
  parser : string;  (** ".sp", ".sta" or "serve" *)
  input : string;  (** the shrunk escaping input *)
  exn_text : string;  (** the escaping exception *)
}

val run_parser : parser:string -> seed:int -> count:int -> failure list
(** Run one fuzzer ([".sp"], [".sta"] or ["serve"]) for [count] inputs
    with a deterministic generator derived from [seed] and the fuzzer
    name — so the sweeps are independent and may run concurrently. *)

val run : seed:int -> count:int -> failure list
(** Run all three fuzzers for [count] inputs each with a deterministic
    generator seeded by [seed]; returns the shrunk failures (empty
    when every invariant held throughout). *)
