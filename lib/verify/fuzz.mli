(** Parser fuzzing: whatever the input, {!Circuit.Parser} and
    {!Sta.Design_file} must either parse it or raise their own
    [Parse_error] — no other exception may escape.  Inputs mix
    token-soup lines from a vocabulary of plausible and malformed
    fragments, raw garbage, and single-character mutations of valid
    decks; qcheck shrinking reduces escaping inputs to minimal
    reproductions. *)

val sp_escapes : string -> exn option
(** [None] when the [.sp] parser parses or raises [Parse_error];
    [Some e] when any other exception [e] escapes. *)

val sta_escapes : string -> exn option
(** Same contract for the [.sta] design-file parser. *)

val sp_gen : string QCheck2.Gen.t

val sta_gen : string QCheck2.Gen.t

val sp_test : count:int -> QCheck2.Test.t

val sta_test : count:int -> QCheck2.Test.t

type failure = {
  parser : string;  (** ".sp" or ".sta" *)
  input : string;  (** the shrunk escaping input *)
  exn_text : string;  (** the escaping exception *)
}

val run_parser : parser:string -> seed:int -> count:int -> failure list
(** Run one parser's fuzzer ([".sp"] or [".sta"]) for [count] inputs
    with a deterministic generator derived from [seed] and the parser
    name — so the two sweeps are independent and may run
    concurrently. *)

val run : seed:int -> count:int -> failure list
(** Run both fuzzers for [count] inputs each with a deterministic
    generator seeded by [seed]; returns the shrunk failures (empty
    when the parse-or-clean-error invariant held throughout). *)
