(** The differential oracle: the adaptive-order AWE response of a
    random case checked against a variable-step trapezoidal
    integration of the same MNA system.

    Three checks per case: waveform agreement (L2 error normalized by
    the {e transient part} of the reference — the paper's eq. 35 error
    term), final-value agreement ({!Awe.steady_state} is exact by
    moment-0 matching), and error-estimate sanity (the q-vs-(q+1)
    estimate must cover the measured error up to a documented slack,
    since it is a self-consistency measure rather than a guaranteed
    bound — see THEORY.md). *)

type tol = {
  rel_l2 : float;  (** max transient-normalized L2 error *)
  final_frac : float;  (** max final-value error / response scale *)
  est_slack : float;  (** measured <= est_slack * max(est, est_floor) *)
  est_floor : float;
  sim_tol : float;  (** oracle LTE tolerance per step *)
}

val default_tol : tol

type outcome = {
  case : Cases.case;
  q : int;  (** chosen approximation order (0 when AWE failed) *)
  est : float;  (** AWE's own q-vs-(q+1) error estimate *)
  measured : float;  (** transient-normalized L2 error vs the oracle *)
  max_abs : float;  (** max pointwise error, volts *)
  final_awe : float;
  final_sim : float;
  t_stop : float;
  oracle_points : int;  (** accepted adaptive-simulation points *)
  failures : string list;  (** empty means the case passed *)
}

val passed : outcome -> bool

val check : ?tol:tol -> Cases.case -> outcome
(** Run the oracle on one case.  AWE failures (degenerate at every
    order, unstable at every order, singular DC) are reported as
    outcome failures, never raised. *)

val pp_outcome : Format.formatter -> outcome -> unit
