(** Metamorphic properties of the AWE pipeline: invariances a correct
    implementation must satisfy without knowing the exact answer.
    Each property is a deterministic [seed -> unit] check raising
    [Failure] with a diagnostic on violation. *)

val linearity : seed:int -> unit
(** Scaling the input amplitude scales the response and leaves the
    poles untouched. *)

val superposition : seed:int -> unit
(** The response to two simultaneous sources equals the sum of the
    single-source responses: exactly (to rounding) on the trapezoidal
    simulator, loosely on the reduced models (each carries its own
    truncation error). *)

val moment_scaling : seed:int -> unit
(** The eq. 47 frequency scaling of the moments is a conditioning
    transform only: fits with and without it agree at orders where
    both are stable. *)

val time_scaling : seed:int -> unit
(** Multiplying every capacitance by [beta] divides every pole by
    [beta] and stretches the response in time by [beta]. *)

val batch_parity : seed:int -> unit
(** {!Awe.Batch.approximate_all} over all nodes equals per-node
    {!Awe.approximate}, including which nodes fail. *)

val sta_parity : seed:int -> unit
(** The STA net timer's batched sink delays and slews on a random
    fanout net equal a per-sink rebuild of the same stage circuit. *)

val cauchy_dominates : seed:int -> unit
(** {!Awe.Error_est.cauchy_bound} dominates
    {!Awe.Error_est.relative_error} against the same (q+1)-pole
    reference. *)

val all : (string * (seed:int -> unit)) list
(** Every property with its report name. *)

val tests : count:int -> QCheck2.Test.t list
(** The properties as qcheck tests over random seeds ([count] trials
    each), for the alcotest suite. *)
