(* Differential verification harness — the library root.

   [run] drives the three layers against a seeded configuration:

   1. oracle: random circuits (Cases) checked AWE-vs-simulator
      (Oracle.check), one case per seed in [seed .. seed+count-1];
   2. properties: every metamorphic property in Props.all over
      [prop_count] derived seeds;
   3. fuzzing: both parser fuzzers for [fuzz_count] inputs.

   Failures never raise out of [run]; they accumulate into the report
   so a sweep always completes and reports everything at once.  Fuzz
   failures are additionally written as [repro_*.sp] / [repro_*.sta]
   decks under [repro_dir] when one is configured. *)

module Cases = Cases
module Oracle = Oracle
module Props = Props
module Fuzz = Fuzz

type config = {
  seed : int;
  count : int;  (** oracle cases *)
  prop_count : int;  (** seeds per metamorphic property *)
  fuzz_count : int;  (** fuzz inputs per parser *)
  tol : Oracle.tol;
  repro_dir : string option;  (** where to write shrunk fuzz decks *)
  jobs : int;  (** parallel fan-out across cases/props/fuzzers *)
}

let default_config =
  { seed = 42;
    count = 200;
    prop_count = 60;
    fuzz_count = 1000;
    tol = Oracle.default_tol;
    repro_dir = None;
    jobs = 1 }

type prop_failure = {
  prop : string;
  prop_seed : int;
  message : string;
}

type report = {
  config : config;
  oracle_run : int;
  oracle_failures : Oracle.outcome list;
  worst_measured : float;  (** largest oracle rel-L2 error observed *)
  worst_case : Cases.case option;
  prop_run : int;
  prop_failures : prop_failure list;
  fuzz_run : int;
  fuzz_failures : Fuzz.failure list;
  repro_files : string list;  (** decks written for fuzz failures *)
}

let passed r =
  r.oracle_failures = [] && r.prop_failures = [] && r.fuzz_failures = []

let write_repros ~dir failures =
  if failures = [] then []
  else begin
    (match Sys.is_directory dir with
    | true -> ()
    | false -> failwith (dir ^ " is not a directory")
    | exception Sys_error _ -> Sys.mkdir dir 0o755);
    List.mapi
      (fun i (f : Fuzz.failure) ->
        let ext =
          match f.Fuzz.parser with
          | ".sta" -> "sta"
          | "serve" -> "serve.txt"  (* a protocol script, not a deck *)
          | _ -> "sp"
        in
        let path = Filename.concat dir (Printf.sprintf "repro_%d.%s" i ext) in
        let oc = open_out path in
        Printf.fprintf oc "* escaping exception: %s\n%s\n" f.Fuzz.exn_text
          f.Fuzz.input;
        close_out oc;
        path)
      failures
  end

let run ?(progress = fun _ -> ()) config =
  Parallel.with_pool ~jobs:config.jobs @@ fun pool ->
  (* Every task is a pure function of (config, index) — each oracle
     case, property run, and fuzzer derives its own RNG from its seed
     — and results fold sequentially in index order, so the report is
     bit-identical for any [jobs]. *)
  (* layer 1: the differential oracle over random circuits, in chunks
     of 50 so the progress cadence survives the fan-out *)
  let oracle_failures = ref [] in
  let worst = ref (neg_infinity, None) in
  let chunk = 50 in
  let i = ref 0 in
  while !i < config.count do
    let base = !i in
    let len = Stdlib.min chunk (config.count - base) in
    let outcomes =
      Parallel.map
        ~label:(fun k -> Printf.sprintf "case %d" (config.seed + base + k))
        pool
        (fun seed ->
          let case = Cases.random_case ~seed in
          (case, Oracle.check ~tol:config.tol case))
        (Array.init len (fun k -> config.seed + base + k))
    in
    Array.iter
      (fun (case, o) ->
        if
          Float.is_finite o.Oracle.measured && o.Oracle.measured > fst !worst
        then worst := (o.Oracle.measured, Some case);
        if not (Oracle.passed o) then oracle_failures := o :: !oracle_failures)
      outcomes;
    i := base + len;
    if !i mod chunk = 0 then
      progress
        (Printf.sprintf "oracle: %d/%d cases, %d failures" !i config.count
           (List.length !oracle_failures))
  done;
  (* layer 2: metamorphic properties, one task per (property, seed) *)
  let prop_tasks =
    Array.of_list
      (List.concat_map
         (fun (name, prop) ->
           List.init config.prop_count (fun j ->
               (name, prop, config.seed + j)))
         Props.all)
  in
  let prop_outcomes =
    Parallel.map
      ~label:(fun k ->
        let name, _, seed = prop_tasks.(k) in
        Printf.sprintf "%s seed %d" name seed)
      pool
      (fun (name, prop, prop_seed) ->
        match prop ~seed:prop_seed with
        | () -> None
        | exception e ->
          Some { prop = name; prop_seed; message = Printexc.to_string e })
      prop_tasks
  in
  let prop_failures = ref [] in
  Array.iter
    (function
      | Some f -> prop_failures := f :: !prop_failures
      | None -> ())
    prop_outcomes;
  let prop_run = ref (Array.length prop_tasks) in
  List.iter
    (fun (name, _) ->
      progress (Printf.sprintf "prop %s: %d seeds" name config.prop_count))
    Props.all;
  (* layer 3: fuzzing — the two parsers and the serve protocol use
     independent generators, so they are three tasks *)
  let fuzzers = [| ".sp"; ".sta"; "serve" |] in
  let fuzz_failures =
    Parallel.map
      ~label:(fun k -> "fuzz " ^ fuzzers.(k))
      pool
      (fun parser ->
        Fuzz.run_parser ~parser ~seed:config.seed ~count:config.fuzz_count)
      fuzzers
    |> Array.to_list |> List.concat
  in
  progress
    (Printf.sprintf "fuzz: %d inputs per fuzzer, %d escapes"
       config.fuzz_count
       (List.length fuzz_failures));
  let repro_files =
    match config.repro_dir with
    | Some dir -> write_repros ~dir fuzz_failures
    | None -> []
  in
  let worst_measured, worst_case = !worst in
  { config;
    oracle_run = config.count;
    oracle_failures = List.rev !oracle_failures;
    worst_measured =
      (if Float.is_finite worst_measured then worst_measured else 0.);
    worst_case;
    prop_run = !prop_run;
    prop_failures = List.rev !prop_failures;
    fuzz_run = 3 * config.fuzz_count;
    fuzz_failures;
    repro_files }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>verification sweep (seed %d)@," r.config.seed;
  Format.fprintf ppf "oracle:     %d cases, %d failures" r.oracle_run
    (List.length r.oracle_failures);
  (match r.worst_case with
  | Some c when r.oracle_failures = [] ->
    Format.fprintf ppf " (worst rel L2 %.4g on %s)" r.worst_measured c.Cases.label
  | _ -> ());
  Format.fprintf ppf "@,properties: %d runs, %d failures" r.prop_run
    (List.length r.prop_failures);
  Format.fprintf ppf "@,fuzzing:    %d inputs, %d escapes" r.fuzz_run
    (List.length r.fuzz_failures);
  List.iter
    (fun o -> Format.fprintf ppf "@,@,%a" Oracle.pp_outcome o)
    r.oracle_failures;
  List.iter
    (fun f ->
      Format.fprintf ppf "@,@,property %s failed at seed %d:@,  %s" f.prop
        f.prop_seed f.message)
    r.prop_failures;
  List.iter
    (fun (f : Fuzz.failure) ->
      Format.fprintf ppf "@,@,%s parser escape: %s@,input:@,%s" f.Fuzz.parser
        f.Fuzz.exn_text f.Fuzz.input)
    r.fuzz_failures;
  List.iter
    (fun p -> Format.fprintf ppf "@,repro deck written: %s" p)
    r.repro_files;
  Format.fprintf ppf "@,%s@]"
    (if passed r then "VERIFY PASS" else "VERIFY FAIL")
