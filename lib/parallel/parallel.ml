(* Fixed-size domain pool.

   The pool is a plain mutex/condition work queue: [create] parks
   [jobs - 1] worker domains on the queue, [map] pushes one closure
   per input element and then has the calling domain drain the queue
   alongside the workers, so a [jobs]-pool really runs [jobs] tasks at
   a time.  Task closures never raise — each one stores [Ok]/[Error]
   into its own slot of a results array — so the only synchronization
   that matters is the pending-task counter, and result publication is
   ordered by the final mutex hand-off before [map] returns.

   Failure policy: run everything, then re-raise the lowest-indexed
   failure (what a sequential sweep would have hit first), wrapped in
   [Task_failure] with the caller's provenance label. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t;  (* signaled when tasks arrive or on shutdown *)
  finished : Condition.t;  (* signaled when [pending] reaches 0 *)
  queue : (unit -> unit) Queue.t;
  mutable pending : int;  (* submitted tasks not yet completed *)
  mutable closed : bool;
  mutable workers : unit Domain.t array;
}

exception Task_failure of { index : int; label : string; exn : exn }

let () =
  Printexc.register_printer (function
    | Task_failure { index; label; exn } ->
      Some
        (Printf.sprintf "Parallel.Task_failure (task %d [%s]: %s)" index label
           (Printexc.to_string exn))
    | _ -> None)

let default_jobs () = Domain.recommended_domain_count ()

(* run one task and account for its completion; the closure itself
   never raises (map wraps it) *)
let complete t task =
  task ();
  Mutex.lock t.mutex;
  t.pending <- t.pending - 1;
  if t.pending = 0 then Condition.broadcast t.finished;
  Mutex.unlock t.mutex

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.work t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex (* closed: exit *)
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    complete t task;
    worker_loop t
  end

(* the sequential fallback below would otherwise make the domain
   machinery untestable on single-core CI runners *)
let force_domains () =
  match Sys.getenv_opt "AWESIM_FORCE_DOMAINS" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let create ?jobs () =
  (* uniform [jobs] convention across the tree: negative is a caller
     bug, 0 means "the recommended count for this machine" *)
  let requested =
    match jobs with
    | None | Some 0 -> default_jobs ()
    | Some j when j < 0 ->
      invalid_arg
        (Printf.sprintf "Parallel.create: jobs must be >= 0 (got %d)" j)
    | Some j -> j
  in
  (* on a single-core machine extra domains only add spawn cost and
     scheduler churn; fall back to sequential (results are identical
     by construction, so this is purely an execution choice) *)
  let jobs =
    if requested > 1 && default_jobs () = 1 && not (force_domains ()) then 1
    else requested
  in
  let t =
    { jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      queue = Queue.create ();
      pending = 0;
      closed = false;
      workers = [||] }
  in
  if jobs > 1 then
    t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* run [task 0 .. task (n-1)], all of them, across the pool *)
let execute t n task =
  if t.closed then
    invalid_arg "Parallel.map: pool is shut down"
  else if Array.length t.workers = 0 then
    for i = 0 to n - 1 do
      task i
    done
  else begin
    Mutex.lock t.mutex;
    if t.pending > 0 then begin
      Mutex.unlock t.mutex;
      invalid_arg "Parallel.map: pool already has a map in flight"
    end;
    t.pending <- n;
    for i = 0 to n - 1 do
      Queue.add (fun () -> task i) t.queue
    done;
    Condition.broadcast t.work;
    (* the caller works the queue too, then waits out the stragglers *)
    while not (Queue.is_empty t.queue) do
      let job = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      complete t job;
      Mutex.lock t.mutex
    done;
    while t.pending > 0 do
      Condition.wait t.finished t.mutex
    done;
    Mutex.unlock t.mutex
  end

let mapi ?(label = fun i -> string_of_int i) t f xs =
  let n = Array.length xs in
  if t.closed then invalid_arg "Parallel.map: pool is shut down";
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let task i =
      results.(i) <-
        Some
          (match f i xs.(i) with
          | v -> Ok v
          | exception exn -> Error (exn, Printexc.get_raw_backtrace ()))
    in
    execute t n task;
    (* funnel: the lowest-indexed failure wins, deterministically *)
    Array.iteri
      (fun i slot ->
        match slot with
        | Some (Error (exn, bt)) ->
          Printexc.raise_with_backtrace
            (Task_failure { index = i; label = label i; exn })
            bt
        | Some (Ok _) | None -> ())
      results;
    Array.map
      (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
      results
  end

let map ?label t f xs = mapi ?label t (fun _ x -> f x) xs

let map_reduce ?label t ~map:f ~reduce ~init xs =
  Array.fold_left reduce init (map ?label t f xs)
