(** A small fixed-size domain pool for embarrassingly parallel fan-out.

    The AWE timing kernel is net-parallel: each net (and each
    verification case) is an independent solve, so the natural
    execution model is an ordered [map] over an indexed work list,
    spread across a handful of worker domains.  This module provides
    exactly that and nothing more — no futures, no work stealing
    between pools, no external dependencies.

    {b Determinism contract.}  [map] returns results in input order,
    whatever the execution schedule; tasks must be pure functions of
    their input (the callers seed any per-task RNG from the task
    index).  Under that contract every derived quantity — timing
    reports, merged {!Awe.Stats} totals, verification verdicts — is
    bit-identical between [jobs = 1] and [jobs = N].

    {b Failure funneling.}  A task that raises does not abort its
    siblings: every task runs to completion (or failure), then the
    {e lowest-indexed} failure is re-raised as {!Task_failure} with
    its index and label — the same failure a sequential left-to-right
    sweep would have surfaced first.

    {b Concurrency.}  A pool is owned by the domain that created it;
    [map] may not be called concurrently from several domains, and
    tasks must not submit to the pool they run on. *)

type t
(** A pool of worker domains (none when [jobs = 1]). *)

exception Task_failure of { index : int; label : string; exn : exn }
(** The first (lowest-index) task failure of a [map], with the
    caller-supplied provenance label (a net name, a case seed). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the CLI default for
    [--jobs 0]. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (the calling
    domain participates in every [map], so total parallelism is
    [jobs]).  [jobs] follows the tree-wide convention: omitted or [0]
    means {!default_jobs}, [1] creates a worker-free pool whose [map]
    runs sequentially in the caller, and negative values raise
    [Invalid_argument] — the same validation every [--jobs] flag gets.
    When {!default_jobs} is 1 (a single-core machine) any requested
    [jobs] also falls back to the worker-free pool — extra domains
    could only add overhead, and by the determinism contract the
    results are identical; set [AWESIM_FORCE_DOMAINS=1] to override
    (used by the test suite to exercise the domain machinery on
    single-core CI runners).  Pools hold OS resources: release with
    {!shutdown}, or use {!with_pool}. *)

val jobs : t -> int
(** The parallelism the pool was created with (always [>= 1]). *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent.  A shut-down pool is dead:
    calling [map] on it raises [Invalid_argument] — silently running
    sequentially would mask a lifecycle bug in the caller. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create] / run / [shutdown], exception-safe. *)

val map : ?label:(int -> string) -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f xs] applies [f] to every element, in parallel across
    the pool, and returns the results {e in input order}.  [label i]
    names task [i] in {!Task_failure} (default: the index). *)

val mapi : ?label:(int -> string) -> t -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** [map] with the task index, for index-seeded work. *)

val map_reduce :
  ?label:(int -> string) ->
  t -> map:('a -> 'b) -> reduce:('b -> 'b -> 'b) -> init:'b -> 'a array -> 'b
(** Ordered reduction [reduce (.. (reduce init y0) ..) yn] of the
    mapped results — with an associative [reduce] the result is
    schedule-independent; with a merely commutative one it is still
    deterministic because the fold order is the input order. *)
