type t = {
  lu : Matrix.t; (* packed L (unit diagonal, below) and U (on/above) *)
  perm : int array; (* perm.(i) = original row index now in position i *)
  sign : float; (* parity of the permutation, for det *)
}

exception Singular of int

let dim f = Array.length f.perm

let factor ?(pivot_tol = 1e-300) a =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Lu.factor: matrix not square";
  let lu = Matrix.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1. in
  let scale = Float.max (Matrix.max_abs a) 1e-300 in
  for k = 0 to n - 1 do
    (* pivot selection: largest magnitude in column k at or below row k *)
    let piv = ref k in
    let best = ref (Float.abs lu.(k).(k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs lu.(i).(k) in
      if v > !best then begin
        best := v;
        piv := i
      end
    done;
    if !best <= pivot_tol *. scale then raise (Singular k);
    if !piv <> k then begin
      Matrix.swap_rows lu k !piv;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!piv);
      perm.(!piv) <- tmp;
      sign := -. !sign
    end;
    let pivot = lu.(k).(k) in
    for i = k + 1 to n - 1 do
      let m = lu.(i).(k) /. pivot in
      lu.(i).(k) <- m;
      if m <> 0. then
        for j = k + 1 to n - 1 do
          lu.(i).(j) <- lu.(i).(j) -. (m *. lu.(k).(j))
        done
    done
  done;
  { lu; perm; sign = !sign }

(* The triangular solves run once per moment of every net (the AWE
   inner loop), so after the single dimension check the substitution
   loops use unchecked accesses: [x]/[y] have length [n] (checked),
   [f.lu] is [n x n] by construction, and every index is bounded by
   [n]. *)

let solve f b =
  let n = dim f in
  if Vec.dim b <> n then invalid_arg "Lu.solve: dimension mismatch";
  let lu = f.lu in
  let x = Array.init n (fun i -> b.(f.perm.(i))) in
  (* forward substitution, L has unit diagonal *)
  for i = 1 to n - 1 do
    let row = Array.unsafe_get lu i in
    let acc = ref (Array.unsafe_get x i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Array.unsafe_get row j *. Array.unsafe_get x j)
    done;
    Array.unsafe_set x i !acc
  done;
  (* back substitution *)
  for i = n - 1 downto 0 do
    let row = Array.unsafe_get lu i in
    let acc = ref (Array.unsafe_get x i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Array.unsafe_get row j *. Array.unsafe_get x j)
    done;
    Array.unsafe_set x i (!acc /. Array.unsafe_get row i)
  done;
  x

let solve_transpose f b =
  let n = dim f in
  if Vec.dim b <> n then invalid_arg "Lu.solve_transpose: dimension mismatch";
  (* A^T = U^T L^T P, so solve U^T y = b, L^T z = y, then x = P^T z *)
  let lu = f.lu in
  let y = Array.copy b in
  for i = 0 to n - 1 do
    let acc = ref (Array.unsafe_get y i) in
    for j = 0 to i - 1 do
      acc :=
        !acc -. (Array.unsafe_get (Array.unsafe_get lu j) i *. Array.unsafe_get y j)
    done;
    Array.unsafe_set y i (!acc /. Array.unsafe_get (Array.unsafe_get lu i) i)
  done;
  for i = n - 1 downto 0 do
    let acc = ref (Array.unsafe_get y i) in
    for j = i + 1 to n - 1 do
      acc :=
        !acc -. (Array.unsafe_get (Array.unsafe_get lu j) i *. Array.unsafe_get y j)
    done;
    Array.unsafe_set y i !acc
  done;
  let x = Vec.create n in
  for i = 0 to n - 1 do
    x.(f.perm.(i)) <- y.(i)
  done;
  x

let solve_matrix f b =
  let n = dim f in
  if Matrix.rows b <> n then invalid_arg "Lu.solve_matrix: dimension mismatch";
  let c = Matrix.cols b in
  let out = Matrix.create n c in
  for j = 0 to c - 1 do
    let xj = solve f (Matrix.col b j) in
    for i = 0 to n - 1 do
      out.(i).(j) <- xj.(i)
    done
  done;
  out

let det f =
  let n = dim f in
  let d = ref f.sign in
  for i = 0 to n - 1 do
    d := !d *. f.lu.(i).(i)
  done;
  !d

let inverse f = solve_matrix f (Matrix.identity (dim f))

let solve_system a b = solve (factor a) b

let rcond_estimate a f =
  let n = dim f in
  if n = 0 then 1.
  else begin
    let norm_a = Matrix.norm_inf a in
    (* probe ||A^-1|| with the all-ones vector and alternating signs *)
    let probes =
      [ Array.make n 1.;
        Array.init n (fun i -> if i mod 2 = 0 then 1. else -1.) ]
    in
    let inv_norm =
      List.fold_left
        (fun acc e -> Float.max acc (Vec.norm_inf (solve f e)))
        0. probes
    in
    if norm_a = 0. || inv_norm = 0. then 1.
    else 1. /. (norm_a *. inv_norm)
  end
