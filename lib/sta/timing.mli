(** A small static timing analyzer built on AWE net-delay evaluation —
    the application context of the paper's introduction: a design is
    divided into stages, each a gate output driving an interconnect
    path (Fig. 1), and the per-stage delay comes from a reduced-order
    model of the stage's linear circuit.

    Gates use the classical linear model (paper, Section II): an
    output ("drive") resistance, an input capacitance per pin, and an
    intrinsic delay.  Nets are resistive trees (or meshes) with
    distributed capacitance.  Per-net delays are measured at a logic
    threshold on the AWE waveform; arrival times propagate through the
    gate/net DAG in topological order. *)

type cell = {
  cell_name : string;
  drive_res : float;  (** Thevenin output resistance, Ohms *)
  input_cap : float;  (** capacitance of each input pin, Farads *)
  intrinsic : float;  (** gate-internal delay, seconds *)
}

val cell : name:string -> drive_res:float -> input_cap:float -> intrinsic:float -> cell

type segment = {
  seg_from : string;
  seg_to : string;
  res : float;
  cap : float;  (** grounded capacitance at [seg_to] *)
}
(** One RC wire segment of a net; [seg_from]/[seg_to] are net-local
    node names, with ["drv"] the driver pin. *)

type delay_model =
  | Elmore_model  (** first-order: Elmore delay at each sink *)
  | Awe_model of int  (** AWE at a fixed order *)
  | Awe_auto  (** AWE with adaptive order control *)

type design

val create : ?vdd:float -> ?threshold:float -> unit -> design
(** [threshold] is the switching threshold as a fraction of [vdd]
    (default 0.5). *)

val add_gate :
  design -> inst:string -> cell:cell -> inputs:string list -> output:string -> unit
(** Declare a gate instance: [inputs] and [output] are net names.  The
    output net must be driven by exactly one gate or primary input. *)

val add_net : design -> name:string -> segments:segment list -> unit
(** Declare a net's interconnect tree.  Sinks attach (with their input
    capacitance) at the net-local node that carries the sink gate's
    name, i.e. a segment whose [seg_to] equals the sink instance
    name. *)

val add_primary_input : design -> net:string -> ?arrival:float -> ?slew:float -> unit -> unit
(** Drive a net from outside the design ([slew] is the input rise time
    seen by the net, default 0 = ideal step).  Raises [Malformed] on a
    duplicate declaration for the same net, or on a negative [arrival]
    or [slew]. *)

val add_primary_output : design -> net:string -> unit
(** Raises [Malformed] on a duplicate declaration for the same net. *)

val add_constraint : ?line:int -> design -> net:string -> required:float -> unit
(** Require the signal on [net] to settle by [required] seconds: the
    net becomes a timing endpoint, and {!analyze} back-propagates the
    requirement into per-pin slacks.  The requirement binds at the
    net's sink pins (where arrivals are measured), or at the driver
    pin when the net has no sinks (a primary-output stub).  [line]
    records the source line of the card for diagnostics.  Raises
    [Malformed] on a duplicate constraint for the same net or a
    negative/non-finite time. *)

val set_clock : ?line:int -> design -> period:float -> unit
(** Give every {e unconstrained} primary output a default required
    time of one clock period — the usual single-cycle constraint.
    Explicit {!add_constraint} cards win over the clock default.
    [line] records the source line of the card for diagnostics.
    Raises [Malformed] when a clock was already set or the period is
    not positive. *)

val clock_period : design -> float option

val constraints : design -> (string * float) list
(** All explicit constraints, sorted by net name. *)

val constraint_line : design -> string -> int option
(** Source line of the [constraint] card naming the net, when the
    design came from a parsed file (or the card was added with
    [~line]). *)

val clock_line : design -> int option
(** Source line of the [clock] card, when recorded. *)

(** {2 In-place edits}

    The ECO vocabulary ({!Session}): each mutator validates first and
    mutates only on success, so a rejected edit (raised [Malformed])
    leaves the design untouched.  Gate edits preserve declaration
    order — sink order, DAG edge order and worst-input tie-breaks all
    follow it, so an edited design analyzes exactly like a design
    built with the new values from scratch. *)

val replace_net_segments : design -> net:string -> segments:segment list -> unit
(** Replace a declared net's wire model.  Raises [Malformed] on an
    unknown net, an empty segment list, or non-positive resistance /
    negative capacitance values. *)

val set_gate_cell : design -> inst:string -> cell:cell -> unit
(** Replace a gate instance's cell (drive resistance, pin capacitance,
    intrinsic delay).  Raises [Malformed] on an unknown instance. *)

val set_gate_inputs : design -> inst:string -> inputs:string list -> unit
(** Replace a gate instance's input net list (pin order preserved as
    given).  Raises [Malformed] on an unknown instance or an empty
    list; net existence is the caller's contract (as for
    {!add_gate}). *)

val set_required : design -> net:string -> required:float option -> unit
(** Set, update, or ([None]) remove the required-time constraint on a
    net.  Unlike {!add_constraint} this overwrites an existing
    constraint; the source-line attribution is dropped (the card no
    longer matches the value).  Raises [Malformed] on a
    negative/non-finite time. *)

val update_clock : design -> period:float option -> unit
(** Set, update, or ([None]) remove the clock period.  Unlike
    {!set_clock} this overwrites; the source-line attribution is
    dropped.  Raises [Malformed] on a non-positive period. *)

val primary_input : design -> string -> (float * float) option
(** [(arrival, slew)] of a primary-input net, if the net is one. *)

val gate_details : design -> (string * cell * string list * string) list
(** [(instance, cell, input nets, output net)] per gate, in
    declaration order — the full-record counterpart of
    {!gate_views}/{!gate_cells} for layers that need the numeric cell
    values (the {!Session} layer's connectivity tables). *)

(** {2 Structural views}

    Read-only projections of a design's connectivity, for static
    analysis (the lint layer) without running any timing. *)

type gate_view = {
  gv_inst : string;
  gv_cell : string;
  gv_inputs : string list;  (** net names *)
  gv_output : string;  (** net name *)
}

val gate_views : design -> gate_view list
(** All gate instances, in declaration order. *)

val net_names : design -> string list
(** Names of all nets with a declared wire model, sorted. *)

val net_segments : design -> string -> segment list option
(** The wire segments of a net, if it has a declared wire model. *)

val primary_input_nets : design -> string list
(** Nets driven from outside the design, sorted. *)

val primary_output_nets : design -> string list
(** Declared primary outputs, in declaration order. *)

val gate_cells : design -> (string * cell) list
(** [(instance, cell)] per gate, in declaration order — the bulk
    accessor static analyses use to build their own lookup tables
    without going quadratic. *)

(** The net-level timing DAG {!analyze} orders its Kahn waves over:
    one vertex per referenced net name (declared nets, PI/PO and
    constraint targets, every gate pin), sorted; one edge from each
    distinct input net of a gate to its output net.  Exported so
    fixpoint passes (lint's cycle check and the backward
    constraint-coverage family) can run over the same graph the
    engine schedules on.  Cyclic designs still build a [t] — the
    edges simply close a cycle — so static analyses can diagnose
    them before {!analyze} raises [Not_a_dag]. *)
module Dag : sig
  type t = private {
    nets : string array;  (** sorted, unique *)
    index_tbl : (string, int) Hashtbl.t;
    succs : int array array;
    preds : int array array;
  }

  val of_design : design -> t

  val index : t -> string -> int option
end

exception Not_a_dag of string list
(** Combinational cycle through the named instances. *)

exception Malformed of string

type transition = Rise | Fall
(** Which signal edge a delay or slack refers to.  The stage circuits
    are linear, so a falling waveform is the rising one reflected
    about [vdd/2]: the fall delay is the rising response's crossing of
    the complementary level [(1 - threshold) * vdd].  At threshold 0.5
    the pair coincides; away from it min/max delays are distinct. *)

val transition_string : transition -> string
(** ["rise"] or ["fall"]. *)

type sink_timing = {
  sink_inst : string;
  net_delay : float;  (** rise threshold-crossing delay through the net *)
  net_delay_fall : float;  (** fall delay: the complementary crossing *)
  sink_slew : float;
      (** 10-90 transition time at the sink pin (reflection-invariant:
          one value serves both edges) *)
  arrival : float;  (** absolute rise arrival at the sink input *)
  arrival_fall : float;  (** absolute fall arrival at the sink input *)
}

type net_timing = {
  net_name : string;
  driver_arrival : float;  (** rise arrival at the driver pin *)
  driver_arrival_fall : float;  (** fall arrival at the driver pin *)
  sinks : sink_timing list;
}

type net_failure = {
  failed_net : string;
  reason : string;  (** the net's own diagnostic, or a propagation note *)
}
(** A net that could not be timed (non-strict mode only). *)

type pin_slack = {
  sp_net : string;
  sp_pin : string option;  (** sink instance; [None] = the driver pin *)
  sp_transition : transition;
      (** the {e binding} transition — the edge with less slack (ties
          go to rise) *)
  sp_arrival : float;
  sp_required : float;
  sp_slack : float;  (** [sp_required - sp_arrival]; negative = violated *)
}

type report = {
  nets : net_timing list;
  critical_arrival : float;  (** latest arrival at any primary output *)
  critical_path : string list;  (** nets on the latest path, source first *)
  slacks : pin_slack list;
      (** every pin a finite required time reaches (endpoint pins and
          everything upstream of them), at its binding transition,
          sorted worst slack first (ties by net then pin); empty when
          the design has no constraints and no clock *)
  worst_slack : float;
      (** minimum over [slacks]; [infinity] when unconstrained *)
  failures : net_failure list;
      (** nets skipped in non-strict mode, with their diagnostics;
          always empty when [strict] (the default) *)
  stats : Awe.Stats.snapshot;
      (** engine counters for this analysis: one MNA build and one
          factorization per net, however many sinks it has *)
}

type path_stage = {
  st_net : string;  (** the net this stage traverses *)
  st_pin : string option;
      (** arrival pin on [st_net]: a sink instance, or [None] for the
          driver pin (sinkless endpoint stub) *)
  st_gate_delay : float;
      (** intrinsic delay of the gate driving [st_net] (0 at a
          primary-input stage) *)
  st_net_delay : float;
      (** wire delay from the net's driver pin to [st_pin], at the
          path's transition (0 when [st_pin] is [None]) *)
  st_arrival : float;  (** absolute arrival at [st_pin] *)
}

type path = {
  path_endpoint : string;  (** endpoint net *)
  path_pin : string option;  (** endpoint pin ([None] = driver pin) *)
  path_transition : transition;  (** the endpoint pin's binding edge *)
  path_input_arrival : float;
      (** arrival card of the primary input sourcing the path *)
  path_arrival : float;
  path_required : float;
  path_slack : float;
  path_stages : path_stage list;
      (** source first; [path_input_arrival] plus the sum of every
          stage's gate and net delay reproduces [path_arrival] (up to
          floating-point re-association) *)
}

type cache
(** A structure-sharing cache across nets (and across [analyze]
    calls).  Two tiers: an {e exact} tier keyed on the value-exact
    canonical hash of the stage circuit (plus model, threshold, vdd,
    input slew and sink set), which serves a whole net's timings from
    the first identical instance; and a {e pattern} tier keyed on the
    topology-only hash, which reuses the symbolic sparse factorization
    across structurally identical nets ([sparse] runs only).  Guarded
    so hits are bit-identical to recomputation: the exact tier
    compares full construction-order signatures, the pattern tier
    re-checks the matrix pattern before reuse. *)

val create_cache : ?patterns:Awe.Cache.patterns -> unit -> cache
(** [patterns] (default: a fresh private store) is the pattern-tier
    store the cache shares — pass one store to several caches to share
    symbolic factorizations across them (see {!analyze_corners}: the
    exact tier is value-keyed and must stay per-corner, but topology
    is corner-invariant). *)

val cache_fingerprint : cache -> (string * string) list * string list
(** A payload-free fingerprint of the cache contents: the sorted
    (hash, signature) pairs of the exact tier and the sorted pattern
    hashes of the symbolic tier.  Two caches populated by equivalent
    publication sequences compare equal — used by tests to assert that
    shard-merged contents match sequential publication for every
    [jobs] value. *)

(** {2 Incremental hooks}

    The Session layer re-times dirty cones by running exactly the
    per-net solve [analyze] runs — same frozen-view / private-shard
    cache discipline, same options derivation — through {!solve_net},
    and keeps the cache's key set equal to what a cold analyze of the
    current design would publish by refcounting the {!solve_keys} each
    live net uses and retiring entries at refcount zero. *)

type cache_view
(** An immutable snapshot of a cache's contents ({!Awe.Cache.view}),
    frozen once per wave. *)

type cache_shard
(** A task-private publication overlay ({!Awe.Cache.Shard}). *)

val cache_view : cache -> cache_view

val cache_shard : unit -> cache_shard

val cache_absorb : cache -> cache_shard -> unit
(** Replay a shard's publications into the cache in insertion order
    (first-wins) — absorb shards in chunk order to reproduce
    sequential publication (THEORY.md, "Sharded publication"). *)

val cache_remove_exact : cache -> hash:string -> signature:string -> bool
(** Retire one exact-tier entry; [true] when it existed. *)

val cache_remove_pattern : cache -> hash:string -> int
(** Retire all symbolic analyses under a pattern hash; returns how
    many were dropped. *)

val cache_bytes : cache -> int
(** Approximate heap footprint of the cache ({!Awe.Cache.bytes}). *)

val critical_candidates : design -> string list
(** The candidate nets the critical-arrival fold scans, in the exact
    order [analyze] scans them: declared primary outputs in raw
    (newest-first) declaration order, or — when none are marked —
    every declared net in the net table's stable enumeration order.
    Selection is by strict [>] (first seen wins), so replicating the
    order replicates the tie-breaks. *)

type solve_keys = {
  sk_exact : (string * string) option;
      (** (hash, signature) of the exact-tier entry this solve hit or
          published; [None] when no cache view was consulted or the
          net has no sinks *)
  sk_pattern : string option;
      (** pattern hash of the symbolic entry ([sparse] runs only) *)
}

val solve_net :
  design ->
  model:delay_model ->
  sparse:bool ->
  reduce:bool ->
  view:cache_view option ->
  shard:cache_shard option ->
  net:string ->
  driver_res:float ->
  slew:float ->
  (string * float * float * float) list * solve_keys
(** Time one net — [(sink_inst, rise delay, fall delay, slew)] per
    sink, in sink order — through the exact per-net pipeline
    [analyze] uses: reduction (when [reduce]), cache lookup against
    the frozen [view] then the private [shard], compute on miss,
    publication into the shard.  Counters (cache verdicts, solver
    work) are recorded into the calling domain's {!Awe.Stats} window
    exactly as during [analyze], so a Session wave that wraps chunks
    in [Awe.Stats.scoped] and absorbs shards in chunk order is
    bit-identical — results, counters, and final cache contents — to
    the corresponding wave of a cold [analyze].  Raises [Malformed]
    as [analyze] does (unknown nets, unattached sinks, thresholds
    never crossed). *)

val analyze :
  ?model:delay_model -> ?sparse:bool -> ?jobs:int -> ?strict:bool ->
  ?reduce:bool ->
  ?cache:cache ->
  design -> report
(** Topological timing propagation.  Raises [Not_a_dag] on cycles and
    [Malformed] on dangling references (undriven nets, unknown sinks).
    Default model is [Awe_auto].

    [reduce] (default [true]) runs {!Circuit.Reduce} on every stage
    circuit before MNA stamping: parallel and unloaded-series merges
    are exact (sink timings bit-identical to within 1e-12 relative);
    RC chain lumping and star-leg merging preserve the low-order
    moments at the driver and every sink pin (which are ports and are
    never eliminated), so AWE delays agree within the verification
    harness tolerance.  Reduction happens {e before} cache keying, so
    stages that become isomorphic after reduction share pattern-tier
    entries; the per-net reduction report accumulates into
    [stats] ([reduce_nodes_eliminated] and friends).

    Each net is timed through one shared {!Awe.Engine}: one MNA build,
    one factorization, and one moment-vector sequence evaluated at
    every sink; adaptive order escalation extends the shared sequence
    instead of recomputing it.  [sparse] (default [false]) routes the
    per-net factorization through the sparse LU — worthwhile on large
    nets.

    [jobs] (default 1) fans the solves of each topological wave across
    a {!Parallel} pool, in contiguous chunks of the wave's sorted net
    list (one task per pool slot, not per net, so dispatch overhead
    amortizes over many solves).  Nets of one wave are independent —
    their driver arrivals and slews were fixed by earlier waves — and
    results are recorded in sorted net order, so the report (and its
    merged [stats]) is bit-identical for every [jobs] value.  [jobs]
    follows the tree-wide convention: [0] means the machine's
    recommended domain count, negative raises [Invalid_argument].

    [strict] (default [true]) governs per-net failures: strict raises
    [Malformed] for the first (lowest-sorted) failing net, matching a
    sequential sweep; non-strict records the diagnostic in [failures],
    keeps timing the sibling nets, and lists everything downstream of
    a failed net as "not timed".

    [cache] (default none) threads a structure-sharing cache through
    the analysis.  Tasks of one topological wave read a view frozen at
    wave start and publish into a private per-chunk shard (no
    contention inside a wave; a template stamped several times within
    one chunk is computed once and served from the shard); the
    coordinator absorbs the shards at the wave boundary in chunk
    order, which replays publications in exactly sorted net order,
    first-wins — so the report, every hit/miss counter in [stats], and
    the final cache contents are bit-identical for every [jobs] value
    (hit/miss verdicts come from the frozen view alone; shard hits
    replay the verdict and solve counters of the computation that
    populated the entry), and identical to an uncached run except for
    the cache-counter fields themselves (exact hits replay the solve
    counters of the computation that populated the entry, so the work
    counters match an uncached run; only the phase CPU timers shrink
    with the work actually skipped).  See THEORY.md, "Sharded
    publication".  Passing the same cache to a second [analyze] of the
    same design serves every net from the exact tier.

    When the design carries constraints (or a clock), the forward pass
    is followed by a sequential backward pass on the coordinator:
    required times flow from the endpoints toward the inputs in
    reverse wave-retirement order — through a sink gate, the output
    requirement less the intrinsic; across a net, the sink requirement
    less that sink's per-transition wire delay, min'ed over sinks —
    filling [slacks] and [worst_slack].  The min-plus dual of the
    max-plus arrival pass, so the worst pin slack equals the worst
    endpoint slack up to floating-point re-association. *)

val net_circuit :
  design -> net:string -> driver_res:float -> slew:float ->
  Circuit.Netlist.circuit * (string * Circuit.Element.node) list
(** The stage circuit a net analysis solves (exposed for inspection and
    testing): Thevenin driver, wire segments, sink load capacitances.
    Returns the circuit and the sink-name to node mapping. *)

val critical_paths : design -> report -> k:int -> path list
(** The [k] worst slack paths, worst first — a pure function of an
    existing report (no re-analysis).  One candidate per endpoint pin,
    at its binding transition; candidates are peeled in
    (slack, net, pin) order, so the result is sorted, its endpoints
    are distinct, and ties break deterministically.  Each path is
    traced endpoint-to-source by replaying the arrival pass's
    worst-input selection, so its stages are exactly the nets whose
    arrivals produced the endpoint arrival.  Returns fewer than [k]
    paths when the design has fewer (timed) endpoint pins; the empty
    list when it is unconstrained.  Raises [Invalid_argument] on
    negative [k]. *)

(** {2 Multi-corner analysis} *)

val corner_design : design -> Circuit.Corner.t -> design
(** The design with every element value derated by the corner's
    multipliers: wire segment res/cap, cell drive resistance, pin
    capacitance and intrinsic delay.  Topology, primary inputs
    (arrival and slew cards), outputs, constraints and clock carry
    over unchanged. *)

type corner_run = {
  run_corner : Circuit.Corner.t;
  run_report : report;
  run_cache : cache option;
      (** this corner's private cache (pattern tier shared across the
          run's corners), for fingerprinting in differential tests;
          [None] when caching was disabled *)
}

type corner_summary = {
  cs_name : string;
  cs_critical_arrival : float;
  cs_worst_slack : float;
}

type corners_report = {
  runs : corner_run list;  (** in spec order *)
  summary : corner_summary list;  (** in spec order *)
  worst_corner : string;
      (** name of the corner with the minimum worst slack (ties go to
          spec order) *)
  worst_slack_overall : float;
  critical_arrival_overall : float;  (** max across corners *)
}

val analyze_corners :
  ?model:delay_model -> ?sparse:bool -> ?jobs:int -> ?strict:bool ->
  ?reduce:bool ->
  ?cache:bool ->
  design -> Circuit.Corner.t list -> corners_report
(** One full {!analyze} per corner over {!corner_design}, sequentially
    in spec order (each corner's waves still fan out across the
    [jobs] pool).  With [cache] (default [true]), every corner gets a
    private exact tier but all corners share one pattern-tier store:
    corners derate values, never topology, so each distinct topology
    pays for its symbolic sparse analysis once across all corners
    ([sparse] runs) — corner 2..N pattern-hit every template corner 1
    analyzed.  Reports, stats and cache contents are bit-identical to
    N independent [analyze] calls over [corner_design]s threading
    caches that share a patterns store ({!create_cache}).  Raises
    [Invalid_argument] on an empty corner list or duplicate corner
    names. *)

val pp_report : ?verbose:bool -> Format.formatter -> report -> unit
(** [verbose] (default [false]) appends the {!Awe.Stats} engine
    counters of the analysis.  Prints per-sink rise/fall delays, the
    critical path, and — when the design is constrained — the slack
    table, worst first. *)

val pp_paths : Format.formatter -> path list -> unit
(** Stage-by-stage rendering of {!critical_paths} output. *)

val pp_corners : Format.formatter -> corners_report -> unit
(** Per-corner summary lines plus the merged cross-corner verdict. *)

(** Text format for timing designs; see the format notes inside. *)
module Design_file : sig
  (** Text format for timing designs.

      Line-oriented; [*] starts a comment line, [;] separates wire
      segments, values accept SPICE magnitude suffixes.  Cards:

      {v
      vdd <volts>                      supply (default 5)
      threshold <fraction>             switching threshold (default 0.5)
      cell <name> <drive_res> <input_cap> <intrinsic>
      gate <inst> <cell> <output-net> <input-net> ...
      net <name> <from> <to> <r> <c> [; <from> <to> <r> <c>] ...
      input <net> [arrival=<t>] [slew=<t>]
      output <net>
      constraint <net> <time>          required arrival at an endpoint
      clock <period>                   default requirement for outputs
      v}

      A net's sinks attach at wire nodes named after the sink gate
      instances (see {!Sta.add_net}). *)

  exception Parse_error of int * string

  val parse_string : string -> design

  val parse_file : string -> design

end

(** Synthetic designs at scale, for benchmarks and parallel tests. *)
module Synth : sig
  (** Generators for 10k-100k-net synthetic designs with wide
      topological waves — the workloads on which wave-parallel
      analysis (and the structure cache) must actually pay.  Every
      generator is deterministic: the same parameters (and [seed],
      where one exists) always build the identical design, so reports
      are comparable across runs and across [jobs] values. *)

  val grid : rows:int -> cols:int -> unit -> design
  (** A [rows] x [cols] datapath-style grid: one 2-input gate per
      position, listening to its north and west neighbors (boundary
      positions listen to primary-input nets), driving a short RC
      trunk with arms to its south and east sinks.  Wire values repeat
      along anti-diagonals — i.e. within topological waves — so the
      design has the template regularity the structure cache exploits.
      Nets: [rows * cols + rows + cols] (10,200 at 100 x 100); wave
      width up to [min rows cols]. *)

  val clock_tree : levels:int -> fanout:int -> unit -> design
  (** An H-tree-style clock distribution: a root buffer fans out to
      [fanout] child buffers per level, [levels] levels deep, with
      drive strength and wire width tapering toward the leaves.  One
      cell and one wire template per level, so every net of a
      topological wave is the identical stage circuit — the
      best case for exact-tier sharing.  Nets:
      [(fanout^levels - 1) / (fanout - 1) + 1] (21,846 at
      [levels:8 ~fanout:4]); wave width grows geometrically to
      [fanout^(levels-1)]. *)

  val buffered_mesh : ?seed:int -> rows:int -> cols:int -> unit -> design
  (** The irregular counterpart of {!grid}: seeded random wire values
      (few repeated templates — the cache-hostile case) and random
      extra diagonal edges, so gates have two or three inputs and
      waves are ragged.  Deterministic per [seed]. *)

  val rc_ladder : stages:int -> length:int -> fanout:int -> unit -> design
  (** A chain of [stages] buffers, each driving a long uniform RC
      trunk ([length + stage mod 3] segments — long-chain interconnect
      in the style of arXiv 2508.13159) that ends in a hub carrying
      [fanout - 1] capacitive side stubs plus the arm to the next
      stage.  The workload where {!Circuit.Reduce} dominates: trunk
      interiors are chain-lump material, stubs are star-leg material,
      and the three unreduced trunk-length classes all reduce to one
      T-section template, so reduction also raises the pattern-tier
      hit rate.  Needs [stages >= 1], [length >= 3], [fanout >= 1]. *)

  val net_count : design -> int
  (** Number of nets with a declared wire model. *)
end
