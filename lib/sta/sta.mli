(** Static timing analysis on AWE net-delay evaluation.

    The engine itself lives in {!Timing} (a library's sibling modules
    cannot depend on its main module, and the incremental layers need
    the engine); this root re-exports it wholesale, so the public
    surface is unchanged: [Sta.analyze], [Sta.Design_file],
    [Sta.Synth], ... — see {!Timing} for the engine documentation —
    plus the incremental layers:

    - {!Session} — long-lived ECO sessions: load once, apply typed
      edits, re-time only the dirty cone;
    - {!Serve} — the [awesim serve] line protocol over a session. *)

include module type of struct
  include Timing
end

module Session : module type of struct
  include Session
end

module Serve : module type of struct
  include Serve
end
