(** A small static timing analyzer built on AWE net-delay evaluation —
    the application context of the paper's introduction: a design is
    divided into stages, each a gate output driving an interconnect
    path (Fig. 1), and the per-stage delay comes from a reduced-order
    model of the stage's linear circuit.

    Gates use the classical linear model (paper, Section II): an
    output ("drive") resistance, an input capacitance per pin, and an
    intrinsic delay.  Nets are resistive trees (or meshes) with
    distributed capacitance.  Per-net delays are measured at a logic
    threshold on the AWE waveform; arrival times propagate through the
    gate/net DAG in topological order. *)

type cell = {
  cell_name : string;
  drive_res : float;  (** Thevenin output resistance, Ohms *)
  input_cap : float;  (** capacitance of each input pin, Farads *)
  intrinsic : float;  (** gate-internal delay, seconds *)
}

val cell : name:string -> drive_res:float -> input_cap:float -> intrinsic:float -> cell

type segment = {
  seg_from : string;
  seg_to : string;
  res : float;
  cap : float;  (** grounded capacitance at [seg_to] *)
}
(** One RC wire segment of a net; [seg_from]/[seg_to] are net-local
    node names, with ["drv"] the driver pin. *)

type delay_model =
  | Elmore_model  (** first-order: Elmore delay at each sink *)
  | Awe_model of int  (** AWE at a fixed order *)
  | Awe_auto  (** AWE with adaptive order control *)

type design

val create : ?vdd:float -> ?threshold:float -> unit -> design
(** [threshold] is the switching threshold as a fraction of [vdd]
    (default 0.5). *)

val add_gate :
  design -> inst:string -> cell:cell -> inputs:string list -> output:string -> unit
(** Declare a gate instance: [inputs] and [output] are net names.  The
    output net must be driven by exactly one gate or primary input. *)

val add_net : design -> name:string -> segments:segment list -> unit
(** Declare a net's interconnect tree.  Sinks attach (with their input
    capacitance) at the net-local node that carries the sink gate's
    name, i.e. a segment whose [seg_to] equals the sink instance
    name. *)

val add_primary_input : design -> net:string -> ?arrival:float -> ?slew:float -> unit -> unit
(** Drive a net from outside the design ([slew] is the input rise time
    seen by the net, default 0 = ideal step).  Raises [Malformed] on a
    duplicate declaration for the same net, or on a negative [arrival]
    or [slew]. *)

val add_primary_output : design -> net:string -> unit
(** Raises [Malformed] on a duplicate declaration for the same net. *)

(** {2 Structural views}

    Read-only projections of a design's connectivity, for static
    analysis (the lint layer) without running any timing. *)

type gate_view = {
  gv_inst : string;
  gv_cell : string;
  gv_inputs : string list;  (** net names *)
  gv_output : string;  (** net name *)
}

val gate_views : design -> gate_view list
(** All gate instances, in declaration order. *)

val net_names : design -> string list
(** Names of all nets with a declared wire model, sorted. *)

val net_segments : design -> string -> segment list option
(** The wire segments of a net, if it has a declared wire model. *)

val primary_input_nets : design -> string list
(** Nets driven from outside the design, sorted. *)

val primary_output_nets : design -> string list
(** Declared primary outputs, in declaration order. *)

exception Not_a_dag of string list
(** Combinational cycle through the named instances. *)

exception Malformed of string

type sink_timing = {
  sink_inst : string;
  net_delay : float;  (** threshold-crossing delay through the net *)
  sink_slew : float;  (** 10-90 rise time at the sink pin *)
  arrival : float;  (** absolute arrival at the sink input *)
}

type net_timing = {
  net_name : string;
  driver_arrival : float;  (** arrival at the driver pin *)
  sinks : sink_timing list;
}

type net_failure = {
  failed_net : string;
  reason : string;  (** the net's own diagnostic, or a propagation note *)
}
(** A net that could not be timed (non-strict mode only). *)

type report = {
  nets : net_timing list;
  critical_arrival : float;  (** latest arrival at any primary output *)
  critical_path : string list;  (** nets on the latest path, source first *)
  failures : net_failure list;
      (** nets skipped in non-strict mode, with their diagnostics;
          always empty when [strict] (the default) *)
  stats : Awe.Stats.snapshot;
      (** engine counters for this analysis: one MNA build and one
          factorization per net, however many sinks it has *)
}

type cache
(** A structure-sharing cache across nets (and across [analyze]
    calls).  Two tiers: an {e exact} tier keyed on the value-exact
    canonical hash of the stage circuit (plus model, threshold, vdd,
    input slew and sink set), which serves a whole net's timings from
    the first identical instance; and a {e pattern} tier keyed on the
    topology-only hash, which reuses the symbolic sparse factorization
    across structurally identical nets ([sparse] runs only).  Guarded
    so hits are bit-identical to recomputation: the exact tier
    compares full construction-order signatures, the pattern tier
    re-checks the matrix pattern before reuse. *)

val create_cache : unit -> cache

val cache_fingerprint : cache -> (string * string) list * string list
(** A payload-free fingerprint of the cache contents: the sorted
    (hash, signature) pairs of the exact tier and the sorted pattern
    hashes of the symbolic tier.  Two caches populated by equivalent
    publication sequences compare equal — used by tests to assert that
    shard-merged contents match sequential publication for every
    [jobs] value. *)

val analyze :
  ?model:delay_model -> ?sparse:bool -> ?jobs:int -> ?strict:bool ->
  ?cache:cache ->
  design -> report
(** Topological timing propagation.  Raises [Not_a_dag] on cycles and
    [Malformed] on dangling references (undriven nets, unknown sinks).
    Default model is [Awe_auto].

    Each net is timed through one shared {!Awe.Engine}: one MNA build,
    one factorization, and one moment-vector sequence evaluated at
    every sink; adaptive order escalation extends the shared sequence
    instead of recomputing it.  [sparse] (default [false]) routes the
    per-net factorization through the sparse LU — worthwhile on large
    nets.

    [jobs] (default 1) fans the solves of each topological wave across
    a {!Parallel} pool, in contiguous chunks of the wave's sorted net
    list (one task per pool slot, not per net, so dispatch overhead
    amortizes over many solves).  Nets of one wave are independent —
    their driver arrivals and slews were fixed by earlier waves — and
    results are recorded in sorted net order, so the report (and its
    merged [stats]) is bit-identical for every [jobs] value.  [jobs]
    follows the tree-wide convention: [0] means the machine's
    recommended domain count, negative raises [Invalid_argument].

    [strict] (default [true]) governs per-net failures: strict raises
    [Malformed] for the first (lowest-sorted) failing net, matching a
    sequential sweep; non-strict records the diagnostic in [failures],
    keeps timing the sibling nets, and lists everything downstream of
    a failed net as "not timed".

    [cache] (default none) threads a structure-sharing cache through
    the analysis.  Tasks of one topological wave read a view frozen at
    wave start and publish into a private per-chunk shard (no
    contention inside a wave; a template stamped several times within
    one chunk is computed once and served from the shard); the
    coordinator absorbs the shards at the wave boundary in chunk
    order, which replays publications in exactly sorted net order,
    first-wins — so the report, every hit/miss counter in [stats], and
    the final cache contents are bit-identical for every [jobs] value
    (hit/miss verdicts come from the frozen view alone; shard hits
    replay the verdict and solve counters of the computation that
    populated the entry), and identical to an uncached run except for
    the cache-counter fields themselves (exact hits replay the solve
    counters of the computation that populated the entry, so the work
    counters match an uncached run; only the phase CPU timers shrink
    with the work actually skipped).  See THEORY.md, "Sharded
    publication".  Passing the same cache to a second [analyze] of the
    same design serves every net from the exact tier. *)

val net_circuit :
  design -> net:string -> driver_res:float -> slew:float ->
  Circuit.Netlist.circuit * (string * Circuit.Element.node) list
(** The stage circuit a net analysis solves (exposed for inspection and
    testing): Thevenin driver, wire segments, sink load capacitances.
    Returns the circuit and the sink-name to node mapping. *)

val pp_report : ?verbose:bool -> Format.formatter -> report -> unit
(** [verbose] (default [false]) appends the {!Awe.Stats} engine
    counters of the analysis. *)

(** Text format for timing designs; see the format notes inside. *)
module Design_file : sig
  (** Text format for timing designs.

      Line-oriented; [*] starts a comment line, [;] separates wire
      segments, values accept SPICE magnitude suffixes.  Cards:

      {v
      vdd <volts>                      supply (default 5)
      threshold <fraction>             switching threshold (default 0.5)
      cell <name> <drive_res> <input_cap> <intrinsic>
      gate <inst> <cell> <output-net> <input-net> ...
      net <name> <from> <to> <r> <c> [; <from> <to> <r> <c>] ...
      input <net> [arrival=<t>] [slew=<t>]
      output <net>
      v}

      A net's sinks attach at wire nodes named after the sink gate
      instances (see {!Sta.add_net}). *)

  exception Parse_error of int * string

  val parse_string : string -> design

  val parse_file : string -> design

end

(** Synthetic designs at scale, for benchmarks and parallel tests. *)
module Synth : sig
  (** Generators for 10k-100k-net synthetic designs with wide
      topological waves — the workloads on which wave-parallel
      analysis (and the structure cache) must actually pay.  Every
      generator is deterministic: the same parameters (and [seed],
      where one exists) always build the identical design, so reports
      are comparable across runs and across [jobs] values. *)

  val grid : rows:int -> cols:int -> unit -> design
  (** A [rows] x [cols] datapath-style grid: one 2-input gate per
      position, listening to its north and west neighbors (boundary
      positions listen to primary-input nets), driving a short RC
      trunk with arms to its south and east sinks.  Wire values repeat
      along anti-diagonals — i.e. within topological waves — so the
      design has the template regularity the structure cache exploits.
      Nets: [rows * cols + rows + cols] (10,200 at 100 x 100); wave
      width up to [min rows cols]. *)

  val clock_tree : levels:int -> fanout:int -> unit -> design
  (** An H-tree-style clock distribution: a root buffer fans out to
      [fanout] child buffers per level, [levels] levels deep, with
      drive strength and wire width tapering toward the leaves.  One
      cell and one wire template per level, so every net of a
      topological wave is the identical stage circuit — the
      best case for exact-tier sharing.  Nets:
      [(fanout^levels - 1) / (fanout - 1) + 1] (21,846 at
      [levels:8 ~fanout:4]); wave width grows geometrically to
      [fanout^(levels-1)]. *)

  val buffered_mesh : ?seed:int -> rows:int -> cols:int -> unit -> design
  (** The irregular counterpart of {!grid}: seeded random wire values
      (few repeated templates — the cache-hostile case) and random
      extra diagonal edges, so gates have two or three inputs and
      waves are ragged.  Deterministic per [seed]. *)

  val net_count : design -> int
  (** Number of nets with a declared wire model. *)
end
