(* Incremental ECO timing (see session.mli).  The session keeps, per
   net, everything [Timing.analyze] would have computed for it —
   arrival tuple, solved sink delays, required times, slack entries —
   plus the memo inputs the solve depended on (input slew, driver
   resistance, the cache keys it hit or published).  A re-time then
   re-solves exactly the nets whose solve inputs changed, re-adds
   arrivals through the cone that actually moved (bitwise compare),
   and re-runs the min-plus backward pass over the same frontier.
   Everything recomputed goes through the code paths a cold [analyze]
   runs — same wave partition, same chunk bounds, frozen views,
   per-chunk shards absorbed in chunk order — which is what makes the
   bit-identity contract hold for every [jobs] value. *)

open Timing

type edit =
  | Set_resistance of { net : string; index : int; value : float }
  | Set_capacitance of { net : string; index : int; value : float }
  | Reroute of { net : string; index : int; seg_from : string; seg_to : string }
  | Swap_sink of { inst : string; from_net : string; to_net : string }
  | Set_inputs of { inst : string; inputs : string list }
  | Set_drive of { inst : string; value : float }
  | Set_pin_cap of { inst : string; value : float }
  | Set_intrinsic of { inst : string; value : float }
  | Set_constraint of { net : string; required : float }
  | Remove_constraint of { net : string }
  | Set_clock of { period : float }
  | Remove_clock

type totals = {
  total_edits : int;
  total_retimes : int;
  total_dirty : int;
  total_reused : int;
  total_fallbacks : int;
}

type gate_info = {
  mutable gi_cell : cell;
  mutable gi_inputs : string list;
  gi_output : string;
}

(* What a net's last solve depended on (beyond upstream arrivals,
   which enter additively) and what it produced.  [m_valid = false]
   means the net's own content changed: the timings can no longer be
   served and the net must be re-solved. *)
type memo = {
  mutable m_valid : bool;
  mutable m_slew : float;
  mutable m_driver_res : float;
  mutable m_timings : (string * float * float * float) list;
  mutable m_keys : solve_keys;
}

type t = {
  d : design;
  model : delay_model;
  sparse : bool;
  reduce : bool;
  jobs : int;
  mutable cache : cache;
  gate_tbl : (string, gate_info) Hashtbl.t;
  driver_tbl : (string, string) Hashtbl.t; (* net -> driving instance *)
  mutable waves : string list list; (* sorted within each wave *)
  mutable schedule_valid : bool;
  memo : (string, memo) Hashtbl.t;
  arrival : (string, float * float * float * string list) Hashtbl.t;
      (* net -> driver-pin rise, fall, slew, path (newest first), as
         [analyze]'s arrival_at_net *)
  timed : (string, net_timing) Hashtbl.t;
  sink_results : (string * string, sink_timing) Hashtbl.t;
      (* entries for sinks a topology edit removed linger; they are
         unreachable (all reads go through current gate inputs or
         current [timed] sinks) and carry no report state *)
  req_driver : (string, float * float) Hashtbl.t;
  req_sink : (string * string, float * float) Hashtbl.t;
  endpoint_req : (string, float) Hashtbl.t;
  mutable endpoints_stale : bool;
  slack_by_net : (string, pin_slack list) Hashtbl.t;
  (* cache-key refcounts over live nets: entries are retired at zero
     so the cache's key set always equals what a cold cached analyze
     of the current design would publish *)
  exact_refs : (string * string, int) Hashtbl.t;
  pattern_refs : (string, int) Hashtbl.t;
  req_seed : (string, unit) Hashtbl.t;
      (* nets whose required-time inputs changed without a re-solve
         (intrinsic edits, endpoint diffs); consumed by the next
         backward pass *)
  mutable undo : (edit * edit) list; (* (applied, inverse), newest first *)
  mutable undo_saved : (edit * edit) list; (* at last successful re-time *)
  mutable rollback : edit list;
      (* inverses restoring the last successfully-timed design,
         newest first; cleared on success, replayed on fallback *)
  mutable pending : int;
  mutable last_report : report option;
  mutable tot_edits : int;
  mutable tot_retimes : int;
  mutable tot_dirty : int;
  mutable tot_reused : int;
  mutable tot_fallbacks : int;
}

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let no_keys = { sk_exact = None; sk_pattern = None }

let gate_of t inst =
  match Hashtbl.find_opt t.gate_tbl inst with
  | Some gi -> gi
  | None -> fail "unknown gate instance %s" inst

let segments_of t net =
  match net_segments t.d net with
  | Some s -> s
  | None -> fail "unknown net %s" net

let sink_insts_of t net =
  Hashtbl.fold
    (fun inst gi acc -> if List.mem net gi.gi_inputs then inst :: acc else acc)
    t.gate_tbl []

let distinct nets = List.sort_uniq compare nets

let rec replace_first lst a b =
  match lst with
  | [] -> []
  | x :: rest -> if x = a then b :: rest else x :: replace_first rest a b

(* --- schedule ----------------------------------------------------- *)

(* Replicates [analyze]'s Kahn partition: a net is ready once all of
   its driver gate's inputs retired in earlier waves; primary-input
   nets are the roots.  Waves inherit the sorted order of the net
   list, exactly like the partition over [arrival_at_net]. *)
let compute_waves t =
  let d = t.d in
  let timed_mark : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let ready_p net =
    if primary_input d net <> None then true
    else
      match Hashtbl.find_opt t.driver_tbl net with
      | None -> false
      | Some inst ->
        let gi = Hashtbl.find t.gate_tbl inst in
        (* a zero-input gate never fires in [analyze] (propagation is
           sink-driven), so its output is never ready *)
        gi.gi_inputs <> []
        && List.for_all (fun inp -> Hashtbl.mem timed_mark inp) gi.gi_inputs
  in
  let remaining = ref (net_names d) in
  let waves = ref [] in
  let progress = ref true in
  while !remaining <> [] && !progress do
    progress := false;
    let ready, blocked = List.partition ready_p !remaining in
    if ready <> [] then begin
      progress := true;
      List.iter (fun n -> Hashtbl.replace timed_mark n ()) ready;
      waves := ready :: !waves;
      remaining := blocked
    end
  done;
  if !remaining <> [] then raise (Not_a_dag !remaining);
  t.waves <- List.rev !waves;
  t.schedule_valid <- true

(* --- forward-pass helpers ----------------------------------------- *)

(* Pull-based arrival: the tuple [analyze]'s record phase pushes into
   [arrival_at_net], recomputed from the (current) sink results of the
   driver gate's inputs.  Same worst-input selection: strict [>] over
   rise arrivals in input order, first wins. *)
let compute_arrival t net =
  match primary_input t.d net with
  | Some (arr, slew) -> (arr, arr, slew, [ net ])
  | None ->
    let inst = Hashtbl.find t.driver_tbl net in
    let gi = Hashtbl.find t.gate_tbl inst in
    let worst, worst_net =
      List.fold_left
        (fun (acc, accn) inp ->
          let s = Hashtbl.find t.sink_results (inp, inst) in
          if s.arrival > acc then (s.arrival, inp) else (acc, accn))
        (neg_infinity, "") gi.gi_inputs
    in
    let worst_sink = Hashtbl.find t.sink_results (worst_net, inst) in
    let _, _, _, worst_path =
      match Hashtbl.find_opt t.arrival worst_net with
      | Some v -> v
      | None -> (0., 0., 0., [])
    in
    ( worst +. gi.gi_cell.intrinsic,
      worst_sink.arrival_fall +. gi.gi_cell.intrinsic,
      worst_sink.sink_slew,
      net :: worst_path )

let driver_res_of t net =
  match Hashtbl.find_opt t.driver_tbl net with
  | Some inst -> (Hashtbl.find t.gate_tbl inst).gi_cell.drive_res
  | None -> 1e-3 (* ideal primary input, as in [analyze] *)

(* --- cache-key refcounting ---------------------------------------- *)

let incr_ref tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let decr_ref tbl key =
  match Hashtbl.find_opt tbl key with
  | None -> false
  | Some n when n <= 1 ->
    Hashtbl.remove tbl key;
    true
  | Some n ->
    Hashtbl.replace tbl key (n - 1);
    false

let claim_keys t (keys : solve_keys) =
  (match keys.sk_exact with
  | Some k -> incr_ref t.exact_refs k
  | None -> ());
  match keys.sk_pattern with
  | Some h -> incr_ref t.pattern_refs h
  | None -> ()

(* Always called after [claim_keys] for the same net's new keys, so a
   re-solve landing on its old key goes 1 -> 2 -> 1 and never retires
   an entry that is still live. *)
let retire_keys t (keys : solve_keys) =
  (match keys.sk_exact with
  | Some (hash, signature) ->
    if decr_ref t.exact_refs (hash, signature) then
      ignore (cache_remove_exact t.cache ~hash ~signature)
  | None -> ());
  match keys.sk_pattern with
  | Some hash ->
    if decr_ref t.pattern_refs hash then
      ignore (cache_remove_pattern t.cache ~hash)
  | None -> ()

(* --- per-net record rebuild --------------------------------------- *)

(* The bookkeeping half of [analyze]'s record_net: absolute arrivals
   from the (already updated) arrival tuple plus the (possibly memoed)
   relative delays.  Returns whether the published record changed. *)
let rebuild_net t net timings =
  let ar, af, _, _ = Hashtbl.find t.arrival net in
  let sinks =
    List.map
      (fun (inst, delay, delay_fall, sink_slew) ->
        { sink_inst = inst;
          net_delay = delay;
          net_delay_fall = delay_fall;
          sink_slew;
          arrival = ar +. delay;
          arrival_fall = af +. delay_fall })
      timings
  in
  let nt = { net_name = net; driver_arrival = ar; driver_arrival_fall = af; sinks } in
  let changed =
    match Hashtbl.find_opt t.timed net with Some old -> old <> nt | None -> true
  in
  if changed then begin
    Hashtbl.replace t.timed net nt;
    List.iter (fun st -> Hashtbl.replace t.sink_results (net, st.sink_inst) st) sinks
  end;
  changed

(* --- endpoints ----------------------------------------------------- *)

(* Rebuild the endpoint requirement table ([analyze]'s endpoint_req:
   explicit constraints, then the clock period for unconstrained
   primary outputs) and seed the backward pass with every net whose
   endpoint value changed, appeared, or disappeared. *)
let rebuild_endpoints t =
  let d = t.d in
  let fresh : (string, float) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun (net, tt) -> Hashtbl.replace fresh net tt) (constraints d);
  (match clock_period d with
  | None -> ()
  | Some period ->
    List.iter
      (fun net ->
        if not (Hashtbl.mem fresh net) then Hashtbl.replace fresh net period)
      (primary_output_nets d));
  Hashtbl.iter
    (fun net v ->
      match Hashtbl.find_opt t.endpoint_req net with
      | Some v' when v' = v -> ()
      | _ -> Hashtbl.replace t.req_seed net ())
    fresh;
  Hashtbl.iter
    (fun net _ ->
      if not (Hashtbl.mem fresh net) then Hashtbl.replace t.req_seed net ())
    t.endpoint_req;
  Hashtbl.reset t.endpoint_req;
  Hashtbl.iter (fun net v -> Hashtbl.replace t.endpoint_req net v) fresh

(* --- the re-time pass --------------------------------------------- *)

let retime_now t =
  let d = t.d in
  let full = t.last_report = None in
  if not t.schedule_valid then compute_waves t;
  let solved : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let timing_changed : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let dirty = ref 0 and reused = ref 0 in
  let windows = ref [] in
  (* forward: wave by wave, classify every net by pulling its arrival
     tuple and memo inputs, batch-solve the dirty ones through the
     exact chunked/sharded discipline of [analyze], and rebuild the
     records of nets whose arrivals moved from the memo. *)
  Parallel.with_pool ~jobs:t.jobs (fun pool ->
      List.iter
        (fun wave ->
          let solves = ref [] and arith = ref [] in
          List.iter
            (fun net ->
              let tuple = compute_arrival t net in
              let changed =
                match Hashtbl.find_opt t.arrival net with
                | Some old -> old <> tuple
                | None -> true
              in
              if changed then Hashtbl.replace t.arrival net tuple;
              let _, _, slew, _ = tuple in
              let dres = driver_res_of t net in
              let need =
                match Hashtbl.find_opt t.memo net with
                | None -> true
                | Some m ->
                  (not m.m_valid) || m.m_slew <> slew || m.m_driver_res <> dres
              in
              if need then solves := (net, slew, dres) :: !solves
              else if changed then arith := net :: !arith
              else incr reused (* untouched: last result stands as-is *))
            wave;
          let solves = Array.of_list (List.rev !solves) in
          let n = Array.length solves in
          if n > 0 then begin
            (* identical chunking, view freeze, shard and window
               discipline to [analyze]'s wave loop *)
            let view = cache_view t.cache in
            let nchunks =
              let j = Parallel.jobs pool in
              if j <= 1 then 1 else Stdlib.min n j
            in
            let bounds = Array.init (nchunks + 1) (fun i -> i * n / nchunks) in
            let labels =
              Array.init nchunks (fun ci ->
                  let net, _, _ = solves.(bounds.(ci)) in
                  "net " ^ net)
            in
            let chunk_results =
              Parallel.mapi
                ~label:(fun ci -> labels.(ci))
                pool
                (fun ci () ->
                  let lo = bounds.(ci) and hi = bounds.(ci + 1) in
                  let shard = cache_shard () in
                  Awe.Stats.scoped (fun () ->
                      let outcomes = Array.make (hi - lo) (Error "") in
                      for k = 0 to hi - lo - 1 do
                        let net, slew, dres = solves.(lo + k) in
                        labels.(ci) <- "net " ^ net;
                        outcomes.(k) <-
                          (match
                             solve_net d ~model:t.model ~sparse:t.sparse
                               ~reduce:t.reduce ~view:(Some view)
                               ~shard:(Some shard) ~net ~driver_res:dres ~slew
                           with
                          | r -> Ok r
                          | exception Malformed msg -> Error msg)
                      done;
                      (outcomes, shard)))
                (Array.make nchunks ())
            in
            Array.iteri
              (fun ci ((outcomes, shard), window) ->
                windows := window :: !windows;
                cache_absorb t.cache shard;
                Array.iteri
                  (fun k outcome ->
                    let net, slew, dres = solves.(bounds.(ci) + k) in
                    match outcome with
                    | Error msg -> raise (Malformed msg)
                    | Ok (timings, keys) ->
                      incr dirty;
                      Hashtbl.replace solved net ();
                      let m =
                        match Hashtbl.find_opt t.memo net with
                        | Some m -> m
                        | None ->
                          let m =
                            { m_valid = false;
                              m_slew = 0.;
                              m_driver_res = 0.;
                              m_timings = [];
                              m_keys = no_keys }
                          in
                          Hashtbl.replace t.memo net m;
                          m
                      in
                      claim_keys t keys;
                      retire_keys t m.m_keys;
                      m.m_valid <- true;
                      m.m_slew <- slew;
                      m.m_driver_res <- dres;
                      m.m_timings <- timings;
                      m.m_keys <- keys;
                      if rebuild_net t net timings then
                        Hashtbl.replace timing_changed net ())
                  outcomes)
              chunk_results
          end;
          List.iter
            (fun net ->
              incr reused;
              let m = Hashtbl.find t.memo net in
              if rebuild_net t net m.m_timings then
                Hashtbl.replace timing_changed net ())
            (List.rev !arith))
        t.waves);
  if t.endpoints_stale then begin
    rebuild_endpoints t;
    t.endpoints_stale <- false
  end;
  (* backward: [analyze]'s min-plus pass over the dirty frontier.
     Visits are seeded by re-solved nets, intrinsic/endpoint seeds,
     and propagate upstream only while a net's driver requirement
     actually changed (bitwise).  The recomputed values are the same
     deterministic function [analyze] evaluates, so skipped nets hold
     exactly the values a full pass would rewrite. *)
  let min2 (a, b) (c, e) = (Float.min a c, Float.min b e) in
  let inf2 = (infinity, infinity) in
  let changed_req : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let slack_dirty : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let visit net =
    match Hashtbl.find_opt t.timed net with
    | None -> ()
    | Some nt ->
      let ep2 =
        match Hashtbl.find_opt t.endpoint_req net with
        | Some tt -> (tt, tt)
        | None -> inf2
      in
      let sink_reqs =
        List.map
          (fun st ->
            let through =
              match Hashtbl.find_opt t.gate_tbl st.sink_inst with
              | None -> inf2
              | Some gi -> (
                match Hashtbl.find_opt t.req_driver gi.gi_output with
                | None -> inf2
                | Some (rr, rf) ->
                  (rr -. gi.gi_cell.intrinsic, rf -. gi.gi_cell.intrinsic))
            in
            let rq = min2 ep2 through in
            (match Hashtbl.find_opt t.req_sink (net, st.sink_inst) with
            | Some old when old = rq -> ()
            | _ ->
              Hashtbl.replace t.req_sink (net, st.sink_inst) rq;
              Hashtbl.replace slack_dirty net ());
            (st, rq))
          nt.sinks
      in
      let dr =
        match sink_reqs with
        | [] -> ep2
        | _ ->
          List.fold_left
            (fun acc (st, (rr, rf)) ->
              min2 acc (rr -. st.net_delay, rf -. st.net_delay_fall))
            inf2 sink_reqs
      in
      (match Hashtbl.find_opt t.req_driver net with
      | Some old when old = dr -> ()
      | _ ->
        Hashtbl.replace t.req_driver net dr;
        Hashtbl.replace changed_req net ();
        Hashtbl.replace slack_dirty net ())
  in
  List.iter
    (fun wave ->
      List.iter
        (fun net ->
          let need =
            full
            || Hashtbl.mem solved net
            || Hashtbl.mem t.req_seed net
            ||
            match Hashtbl.find_opt t.timed net with
            | None -> false
            | Some nt ->
              List.exists
                (fun st ->
                  match Hashtbl.find_opt t.gate_tbl st.sink_inst with
                  | None -> false
                  | Some gi -> Hashtbl.mem changed_req gi.gi_output)
                nt.sinks
          in
          if need then visit net)
        wave)
    (List.rev t.waves);
  Hashtbl.reset t.req_seed;
  (* slack entries: rebuilt per dirty net with [analyze]'s exact emit
     logic; the global sort key (slack, net, pin) is unique per pin,
     so assembling from per-net buckets reproduces the sorted list. *)
  let rebuild_slack net =
    match Hashtbl.find_opt t.timed net with
    | None -> Hashtbl.remove t.slack_by_net net
    | Some nt ->
      let entries = ref [] in
      let emit ~pin ~transition ~arrival ~required =
        entries :=
          { sp_net = net;
            sp_pin = pin;
            sp_transition = transition;
            sp_arrival = arrival;
            sp_required = required;
            sp_slack = required -. arrival }
          :: !entries
      in
      let binding ~pin ~ar ~af (rr, rf) =
        let sr = rr -. ar and sf = rf -. af in
        if Float.is_finite sf && sf < sr then
          emit ~pin ~transition:Fall ~arrival:af ~required:rf
        else if Float.is_finite sr then
          emit ~pin ~transition:Rise ~arrival:ar ~required:rr
      in
      (match nt.sinks with
      | [] -> (
        match Hashtbl.find_opt t.req_driver net with
        | Some rq ->
          binding ~pin:None ~ar:nt.driver_arrival ~af:nt.driver_arrival_fall rq
        | None -> ())
      | sinks ->
        List.iter
          (fun st ->
            match Hashtbl.find_opt t.req_sink (net, st.sink_inst) with
            | Some rq ->
              binding ~pin:(Some st.sink_inst) ~ar:st.arrival
                ~af:st.arrival_fall rq
            | None -> ())
          sinks);
      if !entries = [] then Hashtbl.remove t.slack_by_net net
      else Hashtbl.replace t.slack_by_net net !entries
  in
  if full then List.iter (fun w -> List.iter rebuild_slack w) t.waves
  else begin
    Hashtbl.iter (fun net () -> Hashtbl.replace slack_dirty net ()) timing_changed;
    Hashtbl.iter (fun net () -> rebuild_slack net) slack_dirty
  end;
  let slacks =
    Hashtbl.fold (fun _ entries acc -> List.rev_append entries acc) t.slack_by_net []
    |> List.sort (fun a b ->
           compare (a.sp_slack, a.sp_net, a.sp_pin) (b.sp_slack, b.sp_net, b.sp_pin))
  in
  let worst_slack = match slacks with [] -> infinity | s :: _ -> s.sp_slack in
  (* critical selection: same candidate order, same strict-[>]
     tie-break as [analyze] *)
  let critical_arrival, critical_net =
    List.fold_left
      (fun (acc, accn) net ->
        match Hashtbl.find_opt t.timed net with
        | None -> (acc, accn)
        | Some nt ->
          let worst =
            List.fold_left
              (fun m (s : sink_timing) -> Float.max m s.arrival)
              nt.driver_arrival nt.sinks
          in
          if worst > acc then (worst, Some net) else (acc, accn))
      (neg_infinity, None) (critical_candidates d)
  in
  let critical_path =
    match critical_net with
    | None -> []
    | Some net -> (
      match Hashtbl.find_opt t.arrival net with
      | Some (_, _, _, path) -> List.rev path
      | None -> [ net ])
  in
  let nets = List.filter_map (Hashtbl.find_opt t.timed) (net_names d) in
  let edits = t.pending in
  Awe.Stats.record_eco ~edits ~dirty_nets:!dirty ~reused_nets:!reused
    ~full_fallbacks:0;
  t.tot_retimes <- t.tot_retimes + 1;
  t.tot_dirty <- t.tot_dirty + !dirty;
  t.tot_reused <- t.tot_reused + !reused;
  let stats = List.fold_left Awe.Stats.merge Awe.Stats.zero (List.rev !windows) in
  let stats =
    Awe.Stats.merge stats
      { Awe.Stats.zero with
        Awe.Stats.cache_bytes = cache_bytes t.cache;
        eco_edits = edits;
        eco_dirty_nets = !dirty;
        eco_reused_nets = !reused }
  in
  let report =
    { nets; critical_arrival; critical_path; slacks; worst_slack; failures = [];
      stats }
  in
  t.last_report <- Some report;
  report

(* --- edits --------------------------------------------------------- *)

let invalidate t net =
  match Hashtbl.find_opt t.memo net with
  | Some m -> m.m_valid <- false
  | None -> ()

(* Validate-then-mutate; returns the inverse edit.  Raises [Malformed]
   without touching anything on a rejected edit: all validation reads
   come first, the [Timing] mutators themselves validate before
   mutating, and the session-table updates after them cannot fail. *)
let rec apply_edit t edit =
  match edit with
  | Set_resistance { net; index; value } ->
    let segs = segments_of t net in
    if index < 0 || index >= List.length segs then
      fail "net %s has no segment %d" net index;
    let old = (List.nth segs index).res in
    let segments =
      List.mapi (fun i s -> if i = index then { s with res = value } else s) segs
    in
    replace_net_segments t.d ~net ~segments;
    invalidate t net;
    Set_resistance { net; index; value = old }
  | Set_capacitance { net; index; value } ->
    let segs = segments_of t net in
    if index < 0 || index >= List.length segs then
      fail "net %s has no segment %d" net index;
    let old = (List.nth segs index).cap in
    let segments =
      List.mapi (fun i s -> if i = index then { s with cap = value } else s) segs
    in
    replace_net_segments t.d ~net ~segments;
    invalidate t net;
    Set_capacitance { net; index; value = old }
  | Reroute { net; index; seg_from; seg_to } ->
    let segs = segments_of t net in
    if index < 0 || index >= List.length segs then
      fail "net %s has no segment %d" net index;
    let old = List.nth segs index in
    let segments =
      List.mapi
        (fun i s -> if i = index then { s with seg_from; seg_to } else s)
        segs
    in
    List.iter
      (fun inst ->
        if not (List.exists (fun s -> s.seg_to = inst) segments) then
          fail "reroute would detach sink %s from net %s" inst net)
      (sink_insts_of t net);
    replace_net_segments t.d ~net ~segments;
    invalidate t net;
    Reroute { net; index; seg_from = old.seg_from; seg_to = old.seg_to }
  | Swap_sink { inst; from_net; to_net } ->
    let gi = gate_of t inst in
    if not (List.mem from_net gi.gi_inputs) then
      fail "gate %s has no input pin on net %s" inst from_net;
    let inputs = replace_first gi.gi_inputs from_net to_net in
    apply_edit t (Set_inputs { inst; inputs })
  | Set_inputs { inst; inputs } ->
    let gi = gate_of t inst in
    if inputs = [] then fail "gate %s has no inputs" inst;
    List.iter
      (fun net ->
        match net_segments t.d net with
        | None -> fail "gate %s references unknown net %s" inst net
        | Some segs ->
          if not (List.exists (fun s -> s.seg_to = inst) segs) then
            fail "net %s has no segment reaching sink %s" net inst)
      inputs;
    let old = gi.gi_inputs in
    set_gate_inputs t.d ~inst ~inputs;
    gi.gi_inputs <- inputs;
    (* nets whose sink membership changed get a new stage circuit *)
    let removed = List.filter (fun n -> not (List.mem n inputs)) (distinct old) in
    let added = List.filter (fun n -> not (List.mem n old)) (distinct inputs) in
    List.iter (invalidate t) (removed @ added);
    if removed <> [] || added <> [] then t.schedule_valid <- false;
    Set_inputs { inst; inputs = old }
  | Set_drive { inst; value } ->
    let gi = gate_of t inst in
    if not (Float.is_finite value && value > 0.) then
      fail "gate %s: drive resistance must be positive" inst;
    let old = gi.gi_cell.drive_res in
    let cell = { gi.gi_cell with drive_res = value } in
    set_gate_cell t.d ~inst ~cell;
    gi.gi_cell <- cell;
    invalidate t gi.gi_output;
    Set_drive { inst; value = old }
  | Set_pin_cap { inst; value } ->
    let gi = gate_of t inst in
    if not (Float.is_finite value && value >= 0.) then
      fail "gate %s: input pin capacitance must be non-negative" inst;
    let old = gi.gi_cell.input_cap in
    let cell = { gi.gi_cell with input_cap = value } in
    set_gate_cell t.d ~inst ~cell;
    gi.gi_cell <- cell;
    List.iter (invalidate t) (distinct gi.gi_inputs);
    Set_pin_cap { inst; value = old }
  | Set_intrinsic { inst; value } ->
    let gi = gate_of t inst in
    if not (Float.is_finite value && value >= 0.) then
      fail "gate %s: intrinsic delay must be non-negative" inst;
    let old = gi.gi_cell.intrinsic in
    let cell = { gi.gi_cell with intrinsic = value } in
    set_gate_cell t.d ~inst ~cell;
    gi.gi_cell <- cell;
    (* no re-solve: the intrinsic enters arrivals (pulled bitwise by
       the forward sweep) and the backward through-requirement at the
       gate's input nets, which must be re-visited *)
    List.iter
      (fun n -> Hashtbl.replace t.req_seed n ())
      (distinct gi.gi_inputs);
    Set_intrinsic { inst; value = old }
  | Set_constraint { net; required } ->
    let old = List.assoc_opt net (constraints t.d) in
    set_required t.d ~net ~required:(Some required);
    t.endpoints_stale <- true;
    (match old with
    | Some v -> Set_constraint { net; required = v }
    | None -> Remove_constraint { net })
  | Remove_constraint { net } -> (
    match List.assoc_opt net (constraints t.d) with
    | None -> fail "no constraint on net %s" net
    | Some v ->
      set_required t.d ~net ~required:None;
      t.endpoints_stale <- true;
      Set_constraint { net; required = v })
  | Set_clock { period } ->
    let old = clock_period t.d in
    update_clock t.d ~period:(Some period);
    t.endpoints_stale <- true;
    (match old with Some p -> Set_clock { period = p } | None -> Remove_clock)
  | Remove_clock -> (
    match clock_period t.d with
    | None -> fail "no clock to remove"
    | Some p ->
      update_clock t.d ~period:None;
      t.endpoints_stale <- true;
      Set_clock { period = p })

(* --- session lifecycle -------------------------------------------- *)

let reset_analysis t =
  Hashtbl.reset t.memo;
  Hashtbl.reset t.arrival;
  Hashtbl.reset t.timed;
  Hashtbl.reset t.sink_results;
  Hashtbl.reset t.req_driver;
  Hashtbl.reset t.req_sink;
  Hashtbl.reset t.endpoint_req;
  Hashtbl.reset t.slack_by_net;
  Hashtbl.reset t.exact_refs;
  Hashtbl.reset t.pattern_refs;
  Hashtbl.reset t.req_seed;
  t.cache <- create_cache ();
  t.schedule_valid <- false;
  t.endpoints_stale <- true;
  t.last_report <- None

let commit t =
  t.pending <- 0;
  t.rollback <- [];
  t.undo_saved <- t.undo

(* Roll the design back to the last successfully-timed state and
   rebuild the analysis cold.  The replayed inverses restore a state
   that timed successfully before, so the recovery re-time succeeds
   barring a broken invariant (in which case its exception escapes). *)
let fallback t msg =
  t.tot_fallbacks <- t.tot_fallbacks + 1;
  Awe.Stats.record_eco ~edits:0 ~dirty_nets:0 ~reused_nets:0 ~full_fallbacks:1;
  List.iter (fun e -> ignore (apply_edit t e)) t.rollback;
  t.undo <- t.undo_saved;
  reset_analysis t;
  ignore (retime_now t);
  commit t;
  Error msg

let retime t =
  if t.pending = 0 then Ok (Option.get t.last_report)
  else
    match retime_now t with
    | report ->
      commit t;
      Ok report
    | exception Malformed msg -> fallback t msg
    | exception Not_a_dag insts ->
      fallback t
        (Printf.sprintf "combinational cycle through %s"
           (String.concat ", " insts))
    | exception Parallel.Task_failure { label; exn; _ } ->
      fallback t (Printf.sprintf "%s: %s" label (Printexc.to_string exn))

let apply t edit =
  match apply_edit t edit with
  | inverse ->
    t.undo <- (edit, inverse) :: t.undo;
    t.rollback <- inverse :: t.rollback;
    t.pending <- t.pending + 1;
    t.tot_edits <- t.tot_edits + 1;
    Ok ()
  | exception Malformed msg -> Error msg

let revert t =
  match t.undo with
  | [] -> Error "nothing to revert"
  | (edit, inverse) :: rest -> (
    match apply_edit t inverse with
    | _reinverse ->
      t.undo <- rest;
      t.rollback <- edit :: t.rollback;
      t.pending <- t.pending + 1;
      t.tot_edits <- t.tot_edits + 1;
      Ok edit
    | exception Malformed msg -> Error ("revert failed: " ^ msg))

let revert_all t =
  let rec go n = match revert t with Ok _ -> go (n + 1) | Error _ -> n in
  go 0

let create ?(model = Awe_auto) ?(sparse = false) ?(jobs = 1) ?(reduce = true)
    (d : design) =
  if jobs < 0 then
    invalid_arg "Sta.Session.create: jobs must be non-negative";
  let details = gate_details d in
  (* same upfront reference validation as [analyze], same order *)
  List.iter
    (fun (inst, _cell, inputs, output) ->
      List.iter
        (fun net ->
          if net_segments d net = None then
            fail "gate %s references unknown net %s" inst net)
        (output :: inputs))
    details;
  let t =
    { d;
      model;
      sparse;
      reduce;
      jobs;
      cache = create_cache ();
      gate_tbl = Hashtbl.create 256;
      driver_tbl = Hashtbl.create 256;
      waves = [];
      schedule_valid = false;
      memo = Hashtbl.create 256;
      arrival = Hashtbl.create 256;
      timed = Hashtbl.create 256;
      sink_results = Hashtbl.create 256;
      req_driver = Hashtbl.create 256;
      req_sink = Hashtbl.create 256;
      endpoint_req = Hashtbl.create 8;
      endpoints_stale = true;
      slack_by_net = Hashtbl.create 64;
      exact_refs = Hashtbl.create 256;
      pattern_refs = Hashtbl.create 64;
      req_seed = Hashtbl.create 16;
      undo = [];
      undo_saved = [];
      rollback = [];
      pending = 0;
      last_report = None;
      tot_edits = 0;
      tot_retimes = 0;
      tot_dirty = 0;
      tot_reused = 0;
      tot_fallbacks = 0 }
  in
  List.iter
    (fun (inst, cell, inputs, output) ->
      (match Hashtbl.find_opt t.driver_tbl output with
      | Some other -> fail "net %s is driven by both %s and %s" output other inst
      | None -> ());
      if primary_input d output <> None then
        fail "net %s is both a primary input and the output of gate %s" output
          inst;
      Hashtbl.replace t.driver_tbl output inst;
      Hashtbl.replace t.gate_tbl inst
        { gi_cell = cell; gi_inputs = inputs; gi_output = output })
    details;
  ignore (retime_now t);
  commit t;
  t

let design t = t.d

let report t = Option.get t.last_report

let pending_edits t = t.pending

let cache t = t.cache

let totals t =
  { total_edits = t.tot_edits;
    total_retimes = t.tot_retimes;
    total_dirty = t.tot_dirty;
    total_reused = t.tot_reused;
    total_fallbacks = t.tot_fallbacks }
