type cell = {
  cell_name : string;
  drive_res : float;
  input_cap : float;
  intrinsic : float;
}

let cell ~name ~drive_res ~input_cap ~intrinsic =
  (* negated comparisons so NaN values are rejected too *)
  if
    not
      (Float.is_finite drive_res && drive_res > 0.
      && Float.is_finite input_cap && input_cap >= 0.
      && Float.is_finite intrinsic && intrinsic >= 0.)
  then
    invalid_arg
      "Sta.cell: drive_res must be positive, input_cap and intrinsic \
       non-negative";
  { cell_name = name; drive_res; input_cap; intrinsic }

type segment = { seg_from : string; seg_to : string; res : float; cap : float }

type delay_model = Elmore_model | Awe_model of int | Awe_auto

type gate = {
  inst : string;
  cell : cell;
  inputs : string list; (* net names *)
  output : string; (* net name *)
}

type pi = { pi_arrival : float; pi_slew : float }

type design = {
  vdd : float;
  threshold : float;
  mutable gates : gate list;
  nets : (string, segment list) Hashtbl.t;
  pis : (string, pi) Hashtbl.t;
  mutable pos : string list;
  required : (string, float) Hashtbl.t;
      (* net -> required arrival time (a timing constraint endpoint) *)
  required_lines : (string, int) Hashtbl.t;
      (* net -> source line of the constraint card, when parsed *)
  mutable clock : float option;
      (* default required time for unconstrained primary outputs *)
  mutable clock_ln : int option;
      (* source line of the clock card, when parsed *)
}

exception Not_a_dag of string list

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let create ?(vdd = 5.) ?(threshold = 0.5) () =
  if not (Float.is_finite vdd && vdd > 0.) then
    invalid_arg "Sta.create: vdd must be positive";
  if not (threshold > 0. && threshold < 1.) then
    invalid_arg "Sta.create: threshold must be in (0, 1)";
  { vdd;
    threshold;
    gates = [];
    nets = Hashtbl.create 16;
    pis = Hashtbl.create 4;
    pos = [];
    required = Hashtbl.create 4;
    required_lines = Hashtbl.create 4;
    clock = None;
    clock_ln = None }

let add_gate (d : design) ~inst ~cell ~inputs ~output =
  if List.exists (fun g -> g.inst = inst) d.gates then
    malformed "duplicate gate instance %s" inst;
  d.gates <- { inst; cell; inputs; output } :: d.gates

let add_net (d : design) ~name ~segments =
  if Hashtbl.mem d.nets name then malformed "duplicate net %s" name;
  Hashtbl.replace d.nets name segments

let add_primary_input (d : design) ~net ?(arrival = 0.) ?(slew = 0.) () =
  if Hashtbl.mem d.pis net then malformed "duplicate primary input %s" net;
  if not (Float.is_finite arrival && arrival >= 0.) then
    malformed "primary input %s: arrival must be non-negative" net;
  if not (Float.is_finite slew && slew >= 0.) then
    malformed "primary input %s: slew must be non-negative" net;
  Hashtbl.replace d.pis net { pi_arrival = arrival; pi_slew = slew }

let add_primary_output (d : design) ~net =
  if List.mem net d.pos then malformed "duplicate primary output %s" net;
  d.pos <- net :: d.pos

let add_constraint ?line (d : design) ~net ~required =
  if Hashtbl.mem d.required net then
    malformed "duplicate constraint on net %s" net;
  if not (Float.is_finite required && required >= 0.) then
    malformed "constraint on net %s: required time must be non-negative" net;
  Hashtbl.replace d.required net required;
  match line with
  | Some ln -> Hashtbl.replace d.required_lines net ln
  | None -> ()

let set_clock ?line (d : design) ~period =
  (match d.clock with
  | Some _ -> malformed "duplicate clock card"
  | None -> ());
  if not (Float.is_finite period && period > 0.) then
    malformed "clock period must be positive";
  d.clock <- Some period;
  d.clock_ln <- line

let clock_period (d : design) = d.clock

let constraint_line (d : design) net = Hashtbl.find_opt d.required_lines net

let clock_line (d : design) = d.clock_ln

let constraints (d : design) =
  Hashtbl.fold (fun net t acc -> (net, t) :: acc) d.required []
  |> List.sort compare

(* --- in-place edits (the Session layer's vocabulary) ---------------
   Each mutator validates first and only then mutates, so a rejected
   edit leaves the design untouched.  [update_gate] maps over the gate
   list in place of the edited record: gate order is load-bearing
   (sink order, DAG edge order, worst-input tie-breaks all follow
   declaration order), so edits must never reorder it. *)

let validate_segments net segments =
  if segments = [] then malformed "net %s has no segments" net;
  List.iter
    (fun s ->
      if not (Float.is_finite s.res && s.res > 0.) then
        malformed "net %s: segment resistance must be positive" net;
      if not (Float.is_finite s.cap && s.cap >= 0.) then
        malformed "net %s: segment capacitance must be non-negative" net)
    segments

let replace_net_segments (d : design) ~net ~segments =
  if not (Hashtbl.mem d.nets net) then malformed "unknown net %s" net;
  validate_segments net segments;
  Hashtbl.replace d.nets net segments

let update_gate (d : design) ~inst f =
  let found = ref false in
  let gates =
    List.map
      (fun g ->
        if g.inst = inst then begin
          found := true;
          f g
        end
        else g)
      d.gates
  in
  if not !found then malformed "unknown gate instance %s" inst;
  d.gates <- gates

let set_gate_cell (d : design) ~inst ~cell =
  update_gate d ~inst (fun g -> { g with cell })

let set_gate_inputs (d : design) ~inst ~inputs =
  if inputs = [] then malformed "gate %s has no inputs" inst;
  update_gate d ~inst (fun g -> { g with inputs })

let set_required (d : design) ~net ~required =
  match required with
  | None ->
    Hashtbl.remove d.required net;
    Hashtbl.remove d.required_lines net
  | Some t ->
    if not (Float.is_finite t && t >= 0.) then
      malformed "constraint on net %s: required time must be non-negative" net;
    Hashtbl.replace d.required net t;
    Hashtbl.remove d.required_lines net

let update_clock (d : design) ~period =
  (match period with
  | Some p when not (Float.is_finite p && p > 0.) ->
    malformed "clock period must be positive"
  | _ -> ());
  d.clock <- period;
  d.clock_ln <- None

let primary_input (d : design) net =
  Option.map
    (fun pi -> (pi.pi_arrival, pi.pi_slew))
    (Hashtbl.find_opt d.pis net)

let gate_details (d : design) =
  List.rev_map (fun g -> (g.inst, g.cell, g.inputs, g.output)) d.gates

type transition = Rise | Fall

let transition_string = function Rise -> "rise" | Fall -> "fall"

type sink_timing = {
  sink_inst : string;
  net_delay : float;
  net_delay_fall : float;
  sink_slew : float;
  arrival : float;
  arrival_fall : float;
}

type net_timing = {
  net_name : string;
  driver_arrival : float;
  driver_arrival_fall : float;
  sinks : sink_timing list;
}

type net_failure = { failed_net : string; reason : string }

type pin_slack = {
  sp_net : string;
  sp_pin : string option;
  sp_transition : transition;
  sp_arrival : float;
  sp_required : float;
  sp_slack : float;
}

type report = {
  nets : net_timing list;
  critical_arrival : float;
  critical_path : string list;
  slacks : pin_slack list;
  worst_slack : float;
  failures : net_failure list;
  stats : Awe.Stats.snapshot;
}

type path_stage = {
  st_net : string;
  st_pin : string option;
  st_gate_delay : float;
  st_net_delay : float;
  st_arrival : float;
}

type path = {
  path_endpoint : string;
  path_pin : string option;
  path_transition : transition;
  path_input_arrival : float;
  path_arrival : float;
  path_required : float;
  path_slack : float;
  path_stages : path_stage list;
}

(* read-only structural views, for the lint layer *)
type gate_view = {
  gv_inst : string;
  gv_cell : string;
  gv_inputs : string list;
  gv_output : string;
}

let gate_views (d : design) =
  List.rev_map
    (fun g ->
      { gv_inst = g.inst;
        gv_cell = g.cell.cell_name;
        gv_inputs = g.inputs;
        gv_output = g.output })
    d.gates

let net_names (d : design) =
  Hashtbl.fold (fun k _ acc -> k :: acc) d.nets [] |> List.sort compare

let net_segments (d : design) net = Hashtbl.find_opt d.nets net

let primary_input_nets (d : design) =
  Hashtbl.fold (fun k _ acc -> k :: acc) d.pis [] |> List.sort compare

let primary_output_nets (d : design) = List.rev d.pos

let gate_cells (d : design) =
  List.rev_map (fun g -> (g.inst, g.cell)) d.gates

(* the sinks of a net are the gates listing it among their inputs *)
let sinks_of (d : design) net = List.filter (fun g -> List.mem net g.inputs) d.gates

(* The candidate-net enumeration the critical-arrival fold runs over.
   Selection is by strict [>], first-seen wins, so the order is part of
   the tie-break contract: primary outputs in raw (newest-first)
   declaration order, or every declared net in the net table's
   enumeration order when none are marked.  Exposed so the Session
   layer's incremental critical recomputation ties exactly like
   [analyze]. *)
let critical_candidates (d : design) =
  if d.pos = [] then Hashtbl.fold (fun k _ acc -> k :: acc) d.nets []
  else d.pos

let driver_of (d : design) net = List.find_opt (fun g -> g.output = net) d.gates

(* --- the net-level timing DAG, exported for fixpoint passes -------- *)

(* Sta.analyze orders its Kahn waves over exactly this graph: one
   vertex per referenced net name (declared nets, PI/PO/constraint
   targets, and every gate pin), one edge from each input net of a
   gate to its output net.  The lint layer's backward passes
   (constraint coverage, dominated constraints) and the cycle check
   run over it; building it is one pass over the gates, so it is safe
   to rebuild per analysis. *)
module Dag = struct
  type t = {
    nets : string array;  (* sorted, unique *)
    index_tbl : (string, int) Hashtbl.t;
    succs : int array array;
    preds : int array array;
  }

  let of_design (d : design) =
    let names = Hashtbl.create 64 in
    let add n = if not (Hashtbl.mem names n) then Hashtbl.replace names n () in
    Hashtbl.iter (fun n _ -> add n) d.nets;
    Hashtbl.iter (fun n _ -> add n) d.pis;
    List.iter add d.pos;
    Hashtbl.iter (fun n _ -> add n) d.required;
    List.iter
      (fun g ->
        add g.output;
        List.iter add g.inputs)
      d.gates;
    let nets =
      Hashtbl.fold (fun k () acc -> k :: acc) names []
      |> List.sort compare |> Array.of_list
    in
    let index_tbl = Hashtbl.create (Array.length nets) in
    Array.iteri (fun i n -> Hashtbl.replace index_tbl n i) nets;
    let n = Array.length nets in
    let succ_lists = Array.make n [] and pred_lists = Array.make n [] in
    List.iter
      (fun g ->
        let oi = Hashtbl.find index_tbl g.output in
        (* one edge per distinct input net, even when a gate lists a
           net on several pins *)
        let seen = Hashtbl.create 4 in
        List.iter
          (fun inp ->
            if not (Hashtbl.mem seen inp) then begin
              Hashtbl.replace seen inp ();
              let ii = Hashtbl.find index_tbl inp in
              succ_lists.(ii) <- oi :: succ_lists.(ii);
              pred_lists.(oi) <- ii :: pred_lists.(oi)
            end)
          g.inputs)
      (List.rev d.gates);
    { nets;
      index_tbl;
      succs = Array.map (fun l -> Array.of_list (List.rev l)) succ_lists;
      preds = Array.map (fun l -> Array.of_list (List.rev l)) pred_lists }

  let index t net = Hashtbl.find_opt t.index_tbl net
end

let net_circuit (d : design) ~net ~driver_res ~slew =
  let segments =
    match Hashtbl.find_opt d.nets net with
    | Some s -> s
    | None -> malformed "net %s has no wire model" net
  in
  let b = Circuit.Netlist.create () in
  let wave =
    if slew <= 0. then Circuit.Element.Step { v0 = 0.; v1 = d.vdd }
    else
      Circuit.Element.Ramp { v0 = 0.; v1 = d.vdd; t_delay = 0.; t_rise = slew }
  in
  Circuit.Netlist.add_v b "vdrv" "src" "0" wave;
  Circuit.Netlist.add_r b "rdrv" "src" "drv" driver_res;
  List.iteri
    (fun i seg ->
      Circuit.Netlist.add_r b
        (Printf.sprintf "rw%d" i)
        seg.seg_from seg.seg_to seg.res;
      if seg.cap > 0. then
        Circuit.Netlist.add_c b
          (Printf.sprintf "cw%d" i)
          seg.seg_to "0" seg.cap)
    segments;
  (* sink loads *)
  let sink_nodes = ref [] in
  List.iteri
    (fun i g ->
      (* a sink attaches at the net node named after the instance *)
      let attached =
        List.exists (fun seg -> seg.seg_to = g.inst) segments
      in
      if not attached then
        malformed "net %s has no segment reaching sink %s" net g.inst;
      if g.cell.input_cap > 0. then
        Circuit.Netlist.add_c b
          (Printf.sprintf "cpin%d" i)
          g.inst "0" g.cell.input_cap;
      sink_nodes := (g.inst, Circuit.Netlist.node b g.inst) :: !sink_nodes)
    (sinks_of d net);
  (Circuit.Netlist.freeze b, List.rev !sink_nodes)

(* ------------------------------------------------------------------ *)
(* Structure-sharing cache.  Timing designs stamp the same few
   interconnect templates thousands of times; the cache lets the
   analysis done for one instance serve every relabeled copy.

   Exact tier: the whole per-net result — the fitted engine and each
   sink's (delay, slew) keyed by sink node id.  The key folds in
   everything the numbers depend on beyond the circuit: delay model,
   threshold, vdd, input slew, sparse flag, and the ordered sink node
   ids (a zero-cap sink adds no element, so the sink set is not
   derivable from the circuit alone).  The guard signature makes a hit
   sound and bit-exact: equal signatures mean the instance stamps an
   MNA system identical entry for entry, so the cached numbers are the
   ones recomputation would produce.  A merely isomorphic instance
   (relabeled nodes — a permuted matrix with different rounding)
   shares the hash but fails the guard and misses.

   Pattern tier: the symbolic sparse analysis keyed on the
   topology-only hash.  A hit skips ordering/pivoting/fill analysis;
   the numeric refactorization still runs, so the factors are
   bit-identical to an uncached run. *)

type cache_payload = {
  cp_engine : Awe.engine;
      (* factors, moment sequences and fitted models of the first
         instance.  Kept so the whole reduced model survives with the
         entry; hits are served from [cp_sinks] and never mutate it
         (it is shared across domains). *)
  cp_sinks : (Circuit.Element.node * (float * float * float)) list;
      (* sink node id -> (rise delay, fall delay, slew); complete for
         any instance that passes the guard, because the signature
         fixes the node ids *)
  cp_stats : Awe.Stats.snapshot;
      (* the work counters of the computation that built this entry;
         replayed on every exact hit so cached and uncached analyses
         report identical solve counts (see {!Awe.Stats.replay}) *)
  cp_pattern_hit : bool;
      (* whether the computation that built this entry reused a
         symbolic from the frozen view.  A shard-level exact hit
         stands for recomputing against the same frozen view, which
         would have reached the same verdict (same circuit, same view,
         deterministic pattern probe) — so the hit replays this
         verdict into the pattern-hit/miss counters, keeping them
         bit-identical to a run without shard dedup. *)
}

type cache = cache_payload Awe.Cache.t

let create_cache ?patterns () : cache = Awe.Cache.create ?patterns ()

let cache_fingerprint (c : cache) =
  (Awe.Cache.exact_keys c, Awe.Cache.symbolic_keys c)

(* Narrow wrappers over the abstract [cache] so the Session layer can
   run the exact per-wave freeze/shard/absorb discipline [analyze]
   uses, and retire entries its refcounts prove dead, without the
   payload type escaping this module. *)

type cache_view = cache_payload Awe.Cache.view

type cache_shard = cache_payload Awe.Cache.Shard.t

let cache_view (c : cache) : cache_view = Awe.Cache.view c

let cache_shard () : cache_shard = Awe.Cache.Shard.create ()

let cache_absorb (c : cache) (sh : cache_shard) = Awe.Cache.absorb c sh

let cache_remove_exact (c : cache) ~hash ~signature =
  Awe.Cache.remove_exact c ~hash ~signature

let cache_remove_pattern (c : cache) ~hash = Awe.Cache.remove_symbolic c ~hash

let cache_bytes (c : cache) = Awe.Cache.bytes c

type solve_keys = {
  sk_exact : (string * string) option;
  sk_pattern : string option;
}

let no_keys = { sk_exact = None; sk_pattern = None }

let cache_keys (d : design) ~model ~options ~slew ~circuit ~sink_nodes =
  let tag =
    match model with
    | Elmore_model -> "E"
    | Awe_model q -> "Q" ^ string_of_int q
    | Awe_auto -> "A"
  in
  let ctx =
    Printf.sprintf "%s:%b:%Lx:%Lx:%Lx:%s" tag options.Awe.sparse
      (Int64.bits_of_float slew)
      (Int64.bits_of_float d.threshold)
      (Int64.bits_of_float d.vdd)
      (String.concat ","
         (List.map (fun (_, n) -> string_of_int n) sink_nodes))
  in
  let h = Circuit.Canon.hashes circuit in
  let exact = Digest.to_hex (Digest.string (ctx ^ "|" ^ h.Circuit.Canon.exact)) in
  let signature = ctx ^ "|" ^ h.Circuit.Canon.signature in
  (exact, signature, h.Circuit.Canon.pattern)

(* threshold delay and output slew of every sink of one net, from ONE
   MNA build, one factorization, and one shared moment-vector sequence
   (paper, Section 3.2 / eq. 56).  The AWE models analyze the net with
   its actual (possibly ramped) excitation; the Elmore model analyzes
   the net driven by an ideal step and adds half the input transition
   (paper Section 4.3 / Cirit's correction), so the step variant of
   the stage circuit is only built when that model asks for it.

   Each sink gets a rise/fall transition pair from the same response
   model: the stage circuit is linear, so the falling waveform is the
   rising one reflected about vdd/2 — the fall delay is the rising
   response's crossing of the complementary level (1 - threshold)*vdd.
   At threshold 0.5 the pair coincides; away from it the min/max
   delays are distinct.  (The 10-90 slew is reflection-invariant, so
   one slew serves both transitions.)

   Returns [(sink_inst, rise_delay, fall_delay, slew)] per sink, plus
   the engine. *)
let compute_sink_timings (d : design) ~model ~options ~symbolic ~net ~slew
    ~circuit ~sink_nodes =
  let threshold_v = d.threshold *. d.vdd in
  let fall_v = (1. -. d.threshold) *. d.vdd in
  try
    Awe.Stats.record_mna_build ();
    let sys = Circuit.Mna.build circuit in
    let engine = Awe.Engine.create ~options ?symbolic sys in
    let timings =
      match model with
      | Elmore_model ->
        let elmore = Awe.Batch.elmore_all ~engine sys in
        (* single-exponential threshold crossing plus half the input
           transition, and the single-exponential 10-90 slew.  The
           falling exponential vdd*exp(-t/tau) crosses threshold*vdd
           at -tau*ln(threshold). *)
        let frac = d.threshold in
        List.map
          (fun (inst, node) ->
            let td = List.assoc node elmore in
            ( inst,
              (-.td *. log (1. -. frac)) +. (0.5 *. slew),
              (-.td *. log frac) +. (0.5 *. slew),
              td *. log 9. ))
          sink_nodes
      | Awe_model _ | Awe_auto ->
        let fixed_order =
          match model with
          | Awe_model q ->
            Awe.Batch.approximate_all ~engine sys
              ~nodes:(List.map snd sink_nodes)
              ~q
          | Awe_auto | Elmore_model -> []
        in
        List.map
          (fun (inst, node) ->
            let a =
              match
                List.find_opt (fun r -> r.Awe.Batch.node = node) fixed_order
              with
              | Some { Awe.Batch.outcome = Awe.Batch.Approximation a; _ } -> a
              | Some { Awe.Batch.outcome = Awe.Batch.Failed _; _ } | None ->
                (* adaptive model, or a sink whose fixed-order fit is
                   degenerate/unstable: escalate on the same engine — the
                   shared moments are extended, never recomputed *)
                fst (Awe.Engine.auto engine ~node)
            in
            (* search horizon: generous multiple of the first-order time
               scale, extended by the input transition itself *)
            let tau = Float.max (Awe.Engine.elmore engine ~node) 1e-15 in
            let t_max = (50. *. tau) +. (2. *. slew) in
            let delay =
              match Awe.delay a ~threshold:threshold_v ~t_max with
              | Some t -> t
              | None -> malformed "net never crosses the threshold"
            in
            (* the complementary crossing of the same response; a
               non-monotone fit can miss it within the horizon — fall
               back to the rise value to stay total *)
            let delay_fall =
              match Awe.delay a ~threshold:fall_v ~t_max with
              | Some t -> t
              | None -> delay
            in
            let t10 =
              Awe.Approx.crossing_time a.Awe.response ~threshold:(0.1 *. d.vdd)
                ~t_max
            in
            let t90 =
              Awe.Approx.crossing_time a.Awe.response ~threshold:(0.9 *. d.vdd)
                ~t_max
            in
            let slew =
              match (t10, t90) with
              | Some a, Some b when b > a -> b -. a
              | _ -> tau *. log 9.
            in
            (inst, delay, delay_fall, slew))
          sink_nodes
    in
    (timings, engine)
  with
  (* funnel sparse-layer singularities into the STA's own error
     vocabulary: the stage circuit's node names are net-local, so the
     message already points at the offending pin *)
  | Circuit.Mna.Singular_dc msg -> malformed "net %s: %s" net msg
  | Invalid_argument msg -> malformed "net %s: %s" net msg

(* Time one net, consulting the frozen cache view when there is one
   and the task's private shard after it.  Cache counters are recorded
   here, inside the caller's per-task stats window, so they merge as
   deterministically as every other counter — and they are recorded
   from the {e frozen-view} verdict alone: whether a chunk-mate's
   shard entry happened to short-circuit the work is an execution
   detail that must not (and does not) show up in any counter, or the
   counters would vary with the chunking and therefore with [jobs]. *)
let net_sink_timings_keyed (d : design) ~model ~options ~reduce ~view ~shard
    ~net ~driver_res ~slew =
  (* the Elmore model analyzes the ideal-step drive; the AWE models the
     actual (possibly ramped) excitation *)
  let wire_slew =
    match model with Elmore_model -> 0. | Awe_model _ | Awe_auto -> slew
  in
  let circuit, sink_nodes = net_circuit d ~net ~driver_res ~slew:wire_slew in
  if sink_nodes = [] then ([], no_keys)
  else
    (* model-order reduction before stamping (and before the cache
       keys are derived, so isomorphic-after-reduction stages share
       pattern-tier entries).  Sink pins are ports: never eliminated,
       only renumbered. *)
    let circuit, sink_nodes =
      if not reduce then (circuit, sink_nodes)
      else begin
        let r =
          Circuit.Reduce.reduce ~ports:(List.map snd sink_nodes) circuit
        in
        let rep = r.Circuit.Reduce.report in
        Awe.Stats.record_reduction
          ~nodes:rep.Circuit.Reduce.nodes_eliminated
          ~elements:rep.Circuit.Reduce.elements_eliminated
          ~parallels:rep.Circuit.Reduce.parallel_merges
          ~series:rep.Circuit.Reduce.series_merges
          ~chains:rep.Circuit.Reduce.chain_lumps
          ~stars:rep.Circuit.Reduce.star_merges;
        ( r.Circuit.Reduce.circuit,
          List.map
            (fun (inst, n) -> (inst, r.Circuit.Reduce.node_map.(n)))
            sink_nodes )
      end
    in
    match view with
    | None ->
      let timings, _engine =
        compute_sink_timings d ~model ~options ~symbolic:None ~net ~slew
          ~circuit ~sink_nodes
      in
      (timings, no_keys)
    | Some v -> (
      let exact_hash, signature, pattern =
        cache_keys d ~model ~options ~slew ~circuit ~sink_nodes
      in
      let keys =
        { sk_exact = Some (exact_hash, signature);
          sk_pattern = (if options.Awe.sparse then Some pattern else None) }
      in
      (* serve a whole net from a payload (view or shard tier): equal
         signatures fix the sink node ids, so the cached per-node
         numbers are the ones recomputation would produce *)
      let serve payload =
        List.map
          (fun (inst, node) ->
            match List.assoc_opt node payload.cp_sinks with
            | Some (dly, dlf, slw) -> (inst, dly, dlf, slw)
            | None ->
              (* unreachable: equal signatures fix the sink node set.
                 Kept total by re-deriving a single-pole answer from
                 the cached engine's (already computed) moments. *)
              let tau =
                Float.max (Awe.Engine.elmore payload.cp_engine ~node) 1e-15
              in
              ( inst,
                (-.tau *. log (1. -. d.threshold)) +. (0.5 *. slew),
                (-.tau *. log d.threshold) +. (0.5 *. slew),
                tau *. log 9. ))
          sink_nodes
      in
      match Awe.Cache.find_exact v ~hash:exact_hash ~signature with
      | Some payload ->
        Awe.Stats.record_cache_exact_hit ();
        (* the hit stands for the original computation: replay its
           work counters so the report's solve counts are identical
           to an uncached run *)
        Awe.Stats.replay payload.cp_stats;
        (serve payload, keys)
      | None -> (
        let shard_exact =
          match shard with
          | None -> None
          | Some sh -> Awe.Cache.Shard.find_exact sh ~hash:exact_hash ~signature
        in
        match shard_exact with
        | Some payload ->
          (* A chunk-mate computed this exact stage earlier in the
             wave.  Recomputing against the same frozen view would
             have reached the same verdict and the same work counts
             (same circuit, same view, deterministic pattern probe),
             so replay both: the counters cannot tell the dedup
             happened. *)
          if payload.cp_pattern_hit then Awe.Stats.record_cache_pattern_hit ()
          else Awe.Stats.record_cache_miss ();
          Awe.Stats.replay payload.cp_stats;
          (serve payload, keys)
        | None ->
          let view_candidate =
            if options.Awe.sparse then
              match Awe.Cache.find_symbolic v ~hash:pattern with
              | s :: _ -> Some s
              | [] -> None
            else None
          in
          (* a chunk-mate's symbolic is only consulted when the view
             offers nothing, so the view-verdict (and the counters) are
             untouched; reusing it instead of analyzing afresh is
             counter-neutral because [Moments.make] records one
             factorization either way and the numeric refactorization
             produces bit-identical factors *)
          let shard_candidate =
            match (view_candidate, shard) with
            | None, Some sh when options.Awe.sparse -> (
              match Awe.Cache.Shard.find_symbolic sh ~hash:pattern with
              | s :: _ -> Some s
              | [] -> None)
            | _ -> None
          in
          let candidate =
            match view_candidate with
            | Some _ -> view_candidate
            | None -> shard_candidate
          in
          let before = Awe.Stats.snapshot () in
          let timings, engine =
            compute_sink_timings d ~model ~options ~symbolic:candidate ~net
              ~slew ~circuit ~sink_nodes
          in
          let work = Awe.Stats.diff (Awe.Stats.snapshot ()) before in
          let used = Awe.Engine.symbolic engine in
          let reused_from_view =
            match (used, view_candidate) with
            | Some u, Some s -> u == s
            | _ -> false
          in
          if reused_from_view then Awe.Stats.record_cache_pattern_hit ()
          else Awe.Stats.record_cache_miss ();
          let payload =
            { cp_engine = engine;
              cp_sinks =
                List.map2
                  (fun (_, node) (_, dly, dlf, slw) -> (node, (dly, dlf, slw)))
                  sink_nodes timings;
              cp_stats = work;
              cp_pattern_hit = reused_from_view }
          in
          (match shard with
          | None -> ()
          | Some sh ->
            Awe.Cache.Shard.publish_exact sh ~hash:exact_hash ~signature
              payload;
            (match used with
            | Some u when not reused_from_view ->
              (* freshly analyzed (or taken from the shard — the
                 shard's own dedup drops that republication) *)
              Awe.Cache.Shard.publish_symbolic sh ~hash:pattern u
            | _ -> ()));
          (timings, keys)))

let net_sink_timings (d : design) ~model ~options ~reduce ~view ~shard ~net
    ~driver_res ~slew =
  fst
    (net_sink_timings_keyed d ~model ~options ~reduce ~view ~shard ~net
       ~driver_res ~slew)

(* The Session layer's entry to the per-net solver: identical to what
   [analyze] runs per net (same options derivation, same cache
   discipline), plus the cache keys the lookup used so the session can
   refcount live entries. *)
let solve_net (d : design) ~model ~sparse ~reduce ~view ~shard ~net ~driver_res
    ~slew =
  let options = { Awe.default_options with Awe.sparse } in
  net_sink_timings_keyed d ~model ~options ~reduce ~view ~shard ~net
    ~driver_res ~slew

let analyze ?(model = Awe_auto) ?(sparse = false) ?(jobs = 1) ?(strict = true)
    ?(reduce = true) ?cache (d : design) =
  let options = { Awe.default_options with Awe.sparse } in
  (* topological order over nets *)
  let gates = List.rev d.gates in
  List.iter
    (fun g ->
      List.iter
        (fun net ->
          if not (Hashtbl.mem d.nets net) then
            malformed "gate %s references unknown net %s" g.inst net)
        (g.output :: g.inputs))
    gates;
  (* net is ready when its driver's inputs are all timed; PIs are roots *)
  let arrival_at_net :
      (string, float * float * float * string list) Hashtbl.t =
    (* net -> driver-pin rise arrival, fall arrival, slew, path (nets,
       source first).  Fall arrivals ride along the rise-worst path:
       input selection is by rise arrival, so both transitions
       telescope along the same net sequence (see the backward pass). *)
    Hashtbl.create 16
  in
  Hashtbl.iter
    (fun net pi ->
      Hashtbl.replace arrival_at_net net
        (pi.pi_arrival, pi.pi_arrival, pi.pi_slew, [ net ]))
    d.pis;
  let timed : (string, net_timing) Hashtbl.t = Hashtbl.create 16 in
  let sink_results : (string * string, sink_timing) Hashtbl.t =
    Hashtbl.create 16
  in
  let merged_stats = ref Awe.Stats.zero in
  let failures = ref [] in
  (* bookkeeping half of timing one net: publish sink timings and
     propagate arrivals through the sink gates.  Runs sequentially, in
     sorted net order, on the calling domain. *)
  let record_net net driver_arrival driver_arrival_fall timings =
    let sinks =
      List.map
        (fun (inst, delay, delay_fall, sink_slew) ->
          let st =
            { sink_inst = inst;
              net_delay = delay;
              net_delay_fall = delay_fall;
              sink_slew;
              arrival = driver_arrival +. delay;
              arrival_fall = driver_arrival_fall +. delay_fall }
          in
          Hashtbl.replace sink_results (net, inst) st;
          st)
        timings
    in
    Hashtbl.replace timed net
      { net_name = net; driver_arrival; driver_arrival_fall; sinks };
    (* propagate through sink gates *)
    List.iter
      (fun g ->
        match Hashtbl.find_opt sink_results (net, g.inst) with
        | None -> ()
        | Some _ ->
          (* gate output net arrival = max over timed inputs + intrinsic;
             only update when all inputs are timed *)
          let all_inputs_timed =
            List.for_all
              (fun inp -> Hashtbl.mem sink_results (inp, g.inst))
              g.inputs
          in
          if all_inputs_timed then begin
            let worst, worst_net =
              List.fold_left
                (fun (acc, accn) inp ->
                  let s = Hashtbl.find sink_results (inp, g.inst) in
                  if s.arrival > acc then (s.arrival, inp) else (acc, accn))
                (neg_infinity, net) g.inputs
            in
            let worst_sink = Hashtbl.find sink_results (worst_net, g.inst) in
            let _, _, _, worst_path =
              match Hashtbl.find_opt arrival_at_net worst_net with
              | Some v -> v
              | None -> (0., 0., 0., [])
            in
            Hashtbl.replace arrival_at_net g.output
              ( worst +. g.cell.intrinsic,
                worst_sink.arrival_fall +. g.cell.intrinsic,
                worst_sink.sink_slew,
                (g.output :: worst_path) )
          end)
      (sinks_of d net)
  in
  (* Kahn-style scheduling over nets, one wave at a time.  All nets of
     a wave are ready simultaneously — their driver arrivals and slews
     were frozen by earlier waves — so the expensive per-net solve
     (MNA build, factorization, moment fits) is a pure function of the
     wave-start state and fans out across the pool.  The wave's sorted
     net list is split into contiguous chunks, one task per chunk (not
     per net), so dispatch, DLS window and cache-shard overhead
     amortize over many solves.  Results are recorded sequentially in
     sorted net order, so reports and merged counters are
     bit-identical to a sequential run for any [jobs]. *)
  let all_nets = Hashtbl.fold (fun k _ acc -> k :: acc) d.nets [] in
  let remaining = ref (List.sort compare all_nets) in
  (* wave retirement order, newest wave first: the backward
     required-time pass walks it as-is, so every net is visited after
     all nets downstream of it (they retired in later waves) *)
  let retired = ref [] in
  Parallel.with_pool ~jobs (fun pool ->
      let progress = ref true in
      while !remaining <> [] && !progress do
        progress := false;
        let ready, blocked =
          List.partition (fun net -> Hashtbl.mem arrival_at_net net) !remaining
        in
        if ready <> [] then begin
          progress := true;
          (* Freeze the cache view once per wave: every task of the
             wave — on any domain, in any order — sees exactly the
             entries published by earlier waves, so lookups, counters
             and numeric results are independent of scheduling and of
             [jobs]. *)
          let view = Option.map Awe.Cache.view cache in
          let prep =
            Array.of_list
              (List.map
                 (fun net ->
                   let driver_arrival, driver_fall, slew, _path =
                     Hashtbl.find arrival_at_net net
                   in
                   let driver_res =
                     match driver_of d net with
                     | Some g -> g.cell.drive_res
                     | None ->
                       if Hashtbl.mem d.pis net then 1e-3
                         (* ideal primary input *)
                       else malformed "net %s is undriven" net
                   in
                   (net, driver_arrival, driver_fall, slew, driver_res))
                 ready)
          in
          (* contiguous chunks of the sorted wave, one per pool slot:
             chunk ci covers [bounds.(ci), bounds.(ci + 1)).  Tasks
             process their range in ascending (sorted) order, so each
             shard's publication log is a contiguous slice of the
             sequential publication order. *)
          let n = Array.length prep in
          let nchunks =
            let j = Parallel.jobs pool in
            if j <= 1 then 1 else Stdlib.min n j
          in
          let bounds = Array.init (nchunks + 1) (fun i -> i * n / nchunks) in
          (* per-chunk failure label, updated as the chunk advances so
             an unexpected exception is attributed to the exact net it
             escaped from (each task writes only its own slot; the
             funnel reads after the map's final hand-off) *)
          let labels =
            Array.init nchunks (fun ci ->
                let net, _, _, _, _ = prep.(bounds.(ci)) in
                "net " ^ net)
          in
          let chunk_results =
            Parallel.mapi
              ~label:(fun ci -> labels.(ci))
              pool
              (fun ci () ->
                let lo = bounds.(ci) and hi = bounds.(ci + 1) in
                (* private shard: wave-local publications accumulate
                   here, lock-free, and intra-chunk duplicates of one
                   template are served instead of recomputed *)
                let shard =
                  Option.map (fun _ -> Awe.Cache.Shard.create ()) view
                in
                Awe.Stats.scoped (fun () ->
                    let outcomes = Array.make (hi - lo) (Error "") in
                    for k = 0 to hi - lo - 1 do
                      let net, _, _, slew, driver_res = prep.(lo + k) in
                      labels.(ci) <- "net " ^ net;
                      outcomes.(k) <-
                        (match
                           net_sink_timings d ~model ~options ~reduce ~view
                             ~shard ~net ~driver_res ~slew
                         with
                        | timings -> Ok timings
                        | exception Malformed msg -> Error msg)
                    done;
                    (outcomes, shard)))
              (Array.make nchunks ())
          in
          Array.iteri
            (fun ci ((outcomes, shard), window) ->
              (* counter merge in chunk order: integer sums commute, so
                 the total is independent of the chunking and of the
                 schedule *)
              merged_stats := Awe.Stats.merge !merged_stats window;
              (* absorb shards in chunk order: chunks are contiguous
                 sorted ranges and each log is in intra-chunk sorted
                 order, so the replayed publication sequence is exactly
                 the sorted net order a sequential sweep publishes in —
                 first-wins then yields identical cache contents *)
              (match (cache, shard) with
              | Some c, Some sh -> Awe.Cache.absorb c sh
              | _ -> ());
              Array.iteri
                (fun k outcome ->
                  let net, driver_arrival, driver_fall, _, _ =
                    prep.(bounds.(ci) + k)
                  in
                  match outcome with
                  | Ok timings -> record_net net driver_arrival driver_fall timings
                  | Error msg ->
                    (* a failed net reports its diagnostic; siblings
                       keep their (already computed) results either
                       way *)
                    if strict then raise (Malformed msg)
                    else
                      failures :=
                        { failed_net = net; reason = msg } :: !failures)
                outcomes)
            chunk_results;
          retired := ready :: !retired;
          remaining := blocked
        end
      done);
  if !remaining <> [] then begin
    if !failures = [] then raise (Not_a_dag !remaining)
    else
      (* downstream of a failed net: nothing to time, but say why *)
      List.iter
        (fun net ->
          failures :=
            { failed_net = net; reason = "not timed: an upstream net failed" }
            :: !failures)
        !remaining
  end;
  (* critical arrival over primary outputs (or all sinks if none marked) *)
  let candidate_nets = critical_candidates d in
  let critical_arrival, critical_net =
    List.fold_left
      (fun (acc, accn) net ->
        match Hashtbl.find_opt timed net with
        | None -> (acc, accn)
        | Some nt ->
          let worst =
            List.fold_left
              (fun m s -> Float.max m s.arrival)
              nt.driver_arrival nt.sinks
          in
          if worst > acc then (worst, Some net) else (acc, accn))
      (neg_infinity, None) candidate_nets
  in
  let critical_path =
    match critical_net with
    | None -> []
    | Some net -> (
      match Hashtbl.find_opt arrival_at_net net with
      | Some (_, _, _, path) -> List.rev path
      | None -> [ net ])
  in
  (* ---- required-time back-propagation ----------------------------
     Endpoints are the explicitly constrained nets, plus (when a clock
     card set a default period) every unconstrained primary output.
     The requirement applies at a net's sink pins — the points its
     arrivals are measured at — or at the driver pin when the net is a
     sinkless leaf (a primary-output stub).  Requirements then flow
     backward per transition: through a sink gate, the gate's output
     requirement less its intrinsic; across a net, the sink-pin
     requirement less that sink's (per-transition) wire delay, min'ed
     over sinks.  Walking nets in reverse wave-retirement order
     guarantees each net's downstream requirements are final when it
     is visited — the min-plus dual of the forward max-plus pass. *)
  let endpoint_req : (string, float) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun (net, t) -> Hashtbl.replace endpoint_req net t) (constraints d);
  (match d.clock with
  | None -> ()
  | Some period ->
    List.iter
      (fun net ->
        if not (Hashtbl.mem endpoint_req net) then
          Hashtbl.replace endpoint_req net period)
      (primary_output_nets d));
  let gate_by_inst : (string, gate) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun g -> Hashtbl.replace gate_by_inst g.inst g) gates;
  let driver_gate : (string, gate) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun g -> Hashtbl.replace driver_gate g.output g) gates;
  let min2 (a, b) (c, e) = (Float.min a c, Float.min b e) in
  let inf2 = (infinity, infinity) in
  (* (rise, fall) required times at driver pins and sink pins *)
  let req_driver : (string, float * float) Hashtbl.t = Hashtbl.create 16 in
  let req_sink : (string * string, float * float) Hashtbl.t =
    Hashtbl.create 16
  in
  let backward net =
    match Hashtbl.find_opt timed net with
    | None -> () (* failed / untimed: no requirements to propagate *)
    | Some nt ->
      let ep2 =
        match Hashtbl.find_opt endpoint_req net with
        | Some t -> (t, t)
        | None -> inf2
      in
      let sink_reqs =
        List.map
          (fun st ->
            let through =
              match Hashtbl.find_opt gate_by_inst st.sink_inst with
              | None -> inf2
              | Some g -> (
                match Hashtbl.find_opt req_driver g.output with
                | None -> inf2
                | Some (rr, rf) ->
                  (rr -. g.cell.intrinsic, rf -. g.cell.intrinsic))
            in
            let rq = min2 ep2 through in
            Hashtbl.replace req_sink (net, st.sink_inst) rq;
            (st, rq))
          nt.sinks
      in
      let dr =
        match sink_reqs with
        | [] -> ep2 (* sinkless leaf: the constraint binds the driver pin *)
        | _ ->
          List.fold_left
            (fun acc (st, (rr, rf)) ->
              min2 acc (rr -. st.net_delay, rf -. st.net_delay_fall))
            inf2 sink_reqs
      in
      Hashtbl.replace req_driver net dr
  in
  List.iter (List.iter backward) !retired;
  (* per-pin slacks at the binding transition, worst first *)
  let slack_entries = ref [] in
  let () =
    let entries = slack_entries in
    List.iter
      (fun net ->
        match Hashtbl.find_opt timed net with
        | None -> ()
        | Some nt ->
          let emit ~pin ~transition ~arrival ~required =
            entries :=
              { sp_net = net;
                sp_pin = pin;
                sp_transition = transition;
                sp_arrival = arrival;
                sp_required = required;
                sp_slack = required -. arrival }
              :: !entries
          in
          let binding ~pin ~ar ~af (rr, rf) =
            (* the binding transition is the one with less slack; ties
               go to rise.  Skip unconstrained pins (both infinite). *)
            let sr = rr -. ar and sf = rf -. af in
            if Float.is_finite sf && sf < sr then
              emit ~pin ~transition:Fall ~arrival:af ~required:rf
            else if Float.is_finite sr then
              emit ~pin ~transition:Rise ~arrival:ar ~required:rr
          in
          (match nt.sinks with
          | [] -> (
            match Hashtbl.find_opt req_driver net with
            | Some rq ->
              binding ~pin:None ~ar:nt.driver_arrival
                ~af:nt.driver_arrival_fall rq
            | None -> ())
          | sinks ->
            List.iter
              (fun st ->
                match Hashtbl.find_opt req_sink (net, st.sink_inst) with
                | Some rq ->
                  binding ~pin:(Some st.sink_inst) ~ar:st.arrival
                    ~af:st.arrival_fall rq
                | None -> ())
              sinks))
      (List.sort compare all_nets)
  in
  let slacks =
    List.sort
      (fun a b ->
        compare
          (a.sp_slack, a.sp_net, a.sp_pin)
          (b.sp_slack, b.sp_net, b.sp_pin))
      !slack_entries
  in
  let worst_slack =
    match slacks with [] -> infinity | s :: _ -> s.sp_slack
  in
  (* the cache's heap footprint, measured once by the coordinator so
     merged stats report the final size, not a sum of samples *)
  (match cache with
  | Some c ->
    merged_stats :=
      Awe.Stats.merge !merged_stats
        { Awe.Stats.zero with Awe.Stats.cache_bytes = Awe.Cache.bytes c }
  | None -> ());
  let nets =
    List.filter_map (Hashtbl.find_opt timed) (List.sort compare all_nets)
  in
  { nets;
    critical_arrival;
    critical_path;
    slacks;
    worst_slack;
    failures = List.rev !failures;
    stats = !merged_stats }

(* ------------------------------------------------------------------ *)
(* Top-K critical paths.  A pure function of (design, report): the
   report already holds every per-pin arrival, so path extraction is a
   backward trace, not a re-analysis.  Candidates are the endpoint
   pins (the pins a constraint or the clock period binds directly),
   each at its binding transition; the K worst are peeled in
   (slack, net, pin) order — distinct endpoints, deterministic ties —
   and each is traced source-ward by replaying the forward pass's
   worst-input selection (strict >, first wins), so the reported
   stages are exactly the nets whose arrivals produced the endpoint's
   arrival. *)
let critical_paths (d : design) (r : report) ~k =
  if k < 0 then invalid_arg "Sta.critical_paths: k must be non-negative";
  let gates = List.rev d.gates in
  let gate_by_inst : (string, gate) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun g -> Hashtbl.replace gate_by_inst g.inst g) gates;
  let driver_gate : (string, gate) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun g -> Hashtbl.replace driver_gate g.output g) gates;
  let timed : (string, net_timing) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun nt -> Hashtbl.replace timed nt.net_name nt) r.nets;
  let sink_results : (string * string, sink_timing) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun nt ->
      List.iter
        (fun st -> Hashtbl.replace sink_results (nt.net_name, st.sink_inst) st)
        nt.sinks)
    r.nets;
  let endpoint_req : (string, float) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun (net, t) -> Hashtbl.replace endpoint_req net t) (constraints d);
  (match d.clock with
  | None -> ()
  | Some period ->
    List.iter
      (fun net ->
        if not (Hashtbl.mem endpoint_req net) then
          Hashtbl.replace endpoint_req net period)
      (primary_output_nets d));
  let endpoints =
    Hashtbl.fold (fun net t acc -> (net, t) :: acc) endpoint_req []
    |> List.sort compare
  in
  let candidates =
    List.concat_map
      (fun (net, t) ->
        match Hashtbl.find_opt timed net with
        | None -> [] (* untimed endpoint (failed upstream): no path *)
        | Some nt ->
          let pins =
            match nt.sinks with
            | [] -> [ (None, nt.driver_arrival, nt.driver_arrival_fall) ]
            | sinks ->
              List.map
                (fun st -> (Some st.sink_inst, st.arrival, st.arrival_fall))
                sinks
          in
          List.map
            (fun (pin, ar, af) ->
              let sr = t -. ar and sf = t -. af in
              let tr, arr, sl =
                if sf < sr then (Fall, af, sf) else (Rise, ar, sr)
              in
              (net, pin, tr, arr, t, sl))
            pins)
      endpoints
  in
  let candidates =
    List.sort
      (fun (n1, p1, _, _, _, s1) (n2, p2, _, _, _, s2) ->
        compare (s1, n1, p1) (s2, n2, p2))
      candidates
  in
  let rec take n l =
    match (n, l) with
    | 0, _ | _, [] -> []
    | n, x :: tl -> x :: take (n - 1) tl
  in
  let arrival_of tr (st : sink_timing) =
    match tr with Rise -> st.arrival | Fall -> st.arrival_fall
  in
  let delay_of tr (st : sink_timing) =
    match tr with Rise -> st.net_delay | Fall -> st.net_delay_fall
  in
  let trace endpoint_net pin tr =
    (* walk from the endpoint to a primary input, building stages
       newest-first; [up] receives the pin the path arrives at *)
    let rec up net pin_opt acc =
      let net_delay, arrival =
        match pin_opt with
        | Some inst ->
          let st = Hashtbl.find sink_results (net, inst) in
          (delay_of tr st, arrival_of tr st)
        | None ->
          let nt = Hashtbl.find timed net in
          ( 0.,
            match tr with
            | Rise -> nt.driver_arrival
            | Fall -> nt.driver_arrival_fall )
      in
      match Hashtbl.find_opt driver_gate net with
      | None ->
        (* a primary input sources the path; its arrival card is the
           path's input arrival (same for both transitions) *)
        let input_arrival =
          match Hashtbl.find_opt timed net with
          | Some nt -> (
            match tr with
            | Rise -> nt.driver_arrival
            | Fall -> nt.driver_arrival_fall)
          | None -> 0.
        in
        let stage =
          { st_net = net;
            st_pin = pin_opt;
            st_gate_delay = 0.;
            st_net_delay = net_delay;
            st_arrival = arrival }
        in
        (input_arrival, stage :: acc)
      | Some g ->
        let stage =
          { st_net = net;
            st_pin = pin_opt;
            st_gate_delay = g.cell.intrinsic;
            st_net_delay = net_delay;
            st_arrival = arrival }
        in
        (* replay the forward fold: worst input by RISE arrival,
           strict >, first wins — fall arrivals rode the same path *)
        let worst_net, _ =
          List.fold_left
            (fun (accn, acca) inp ->
              match Hashtbl.find_opt sink_results (inp, g.inst) with
              | None -> (accn, acca)
              | Some s ->
                if s.arrival > acca then (inp, s.arrival) else (accn, acca))
            (net, neg_infinity) g.inputs
        in
        up worst_net (Some g.inst) (stage :: acc)
    in
    up endpoint_net pin []
  in
  List.map
    (fun (net, pin, tr, arr, req, slack) ->
      let input_arrival, stages = trace net pin tr in
      { path_endpoint = net;
        path_pin = pin;
        path_transition = tr;
        path_input_arrival = input_arrival;
        path_arrival = arr;
        path_required = req;
        path_slack = slack;
        path_stages = stages })
    (take k candidates)

(* ------------------------------------------------------------------ *)
(* Multi-corner analysis.  A corner derates element values but never
   topology, so the N per-corner analyses share one pattern-tier store
   (each corner keeps a private exact tier — exact keys are
   value-sensitive).  Corners run sequentially, each with the full
   wave-parallel fan-out of [analyze]: the result is bit-identical to
   N independent [analyze] calls over [corner_design]s sharing a
   patterns store, which is the determinism contract the differential
   tests pin down. *)
let corner_design (d : design) (c : Circuit.Corner.t) =
  let d' = create ~vdd:d.vdd ~threshold:d.threshold () in
  List.iter
    (fun g ->
      let cl = g.cell in
      add_gate d' ~inst:g.inst
        ~cell:
          (cell ~name:cl.cell_name
             ~drive_res:(cl.drive_res *. c.Circuit.Corner.cell_drive)
             ~input_cap:(cl.input_cap *. c.Circuit.Corner.cell_cap)
             ~intrinsic:(cl.intrinsic *. c.Circuit.Corner.cell_intrinsic))
        ~inputs:g.inputs ~output:g.output)
    (List.rev d.gates);
  Hashtbl.iter
    (fun name segs ->
      add_net d' ~name
        ~segments:
          (List.map
             (fun s ->
               { s with
                 res = s.res *. c.Circuit.Corner.wire_res;
                 cap = s.cap *. c.Circuit.Corner.wire_cap })
             segs))
    d.nets;
  Hashtbl.iter
    (fun net pi ->
      add_primary_input d' ~net ~arrival:pi.pi_arrival ~slew:pi.pi_slew ())
    d.pis;
  List.iter (fun net -> add_primary_output d' ~net) (List.rev d.pos);
  Hashtbl.iter (fun net t -> Hashtbl.replace d'.required net t) d.required;
  Hashtbl.iter
    (fun net ln -> Hashtbl.replace d'.required_lines net ln)
    d.required_lines;
  d'.clock <- d.clock;
  d'.clock_ln <- d.clock_ln;
  d'

type corner_run = {
  run_corner : Circuit.Corner.t;
  run_report : report;
  run_cache : cache option;
      (* this corner's private cache (shared pattern tier), exposed so
         differential tests can fingerprint it *)
}

type corner_summary = {
  cs_name : string;
  cs_critical_arrival : float;
  cs_worst_slack : float;
}

type corners_report = {
  runs : corner_run list; (* spec order *)
  summary : corner_summary list; (* spec order *)
  worst_corner : string; (* minimum worst slack; ties to spec order *)
  worst_slack_overall : float;
  critical_arrival_overall : float;
}

let analyze_corners ?(model = Awe_auto) ?(sparse = false) ?(jobs = 1)
    ?(strict = true) ?(reduce = true) ?(cache = true) (d : design) corners =
  if corners = [] then
    invalid_arg "Sta.analyze_corners: need at least one corner";
  let names = List.map (fun c -> c.Circuit.Corner.name) corners in
  List.iter
    (fun n ->
      if List.length (List.filter (String.equal n) names) > 1 then
        invalid_arg
          (Printf.sprintf "Sta.analyze_corners: duplicate corner name %S" n))
    names;
  let patterns = Awe.Cache.create_patterns () in
  let runs =
    List.map
      (fun c ->
        let dc = corner_design d c in
        let corner_cache =
          if cache then Some (create_cache ~patterns ()) else None
        in
        let r =
          analyze ~model ~sparse ~jobs ~strict ~reduce ?cache:corner_cache dc
        in
        { run_corner = c; run_report = r; run_cache = corner_cache })
      corners
  in
  let summary =
    List.map
      (fun run ->
        { cs_name = run.run_corner.Circuit.Corner.name;
          cs_critical_arrival = run.run_report.critical_arrival;
          cs_worst_slack = run.run_report.worst_slack })
      runs
  in
  let worst_corner, worst_slack_overall =
    List.fold_left
      (fun (wn, ws) s ->
        if s.cs_worst_slack < ws then (s.cs_name, s.cs_worst_slack)
        else (wn, ws))
      ((List.hd summary).cs_name, (List.hd summary).cs_worst_slack)
      (List.tl summary)
  in
  let critical_arrival_overall =
    List.fold_left
      (fun acc s -> Float.max acc s.cs_critical_arrival)
      neg_infinity summary
  in
  { runs;
    summary;
    worst_corner;
    worst_slack_overall;
    critical_arrival_overall }

let pin_string = function None -> "(driver)" | Some inst -> inst

let pp_report ?(verbose = false) ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun nt ->
      Format.fprintf ppf "net %-10s driver@@%.4g ns@," nt.net_name
        (nt.driver_arrival *. 1e9);
      List.iter
        (fun s ->
          Format.fprintf ppf
            "  -> %-8s delay %.4g/%.4g ns  slew %.4g ns  arrival %.4g ns@,"
            s.sink_inst (s.net_delay *. 1e9) (s.net_delay_fall *. 1e9)
            (s.sink_slew *. 1e9) (s.arrival *. 1e9))
        nt.sinks)
    r.nets;
  List.iter
    (fun f ->
      Format.fprintf ppf "net %-10s FAILED: %s@," f.failed_net f.reason)
    r.failures;
  Format.fprintf ppf "critical arrival: %.4g ns via %a"
    (r.critical_arrival *. 1e9)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " -> ")
       Format.pp_print_string)
    r.critical_path;
  if r.slacks <> [] then begin
    Format.fprintf ppf "@,slack (worst first):";
    List.iter
      (fun s ->
        Format.fprintf ppf
          "@,  %-10s %-8s %-4s arrival %.4g ns  required %.4g ns  slack \
           %.4g ns"
          s.sp_net (pin_string s.sp_pin)
          (transition_string s.sp_transition)
          (s.sp_arrival *. 1e9) (s.sp_required *. 1e9) (s.sp_slack *. 1e9))
      r.slacks;
    Format.fprintf ppf "@,worst slack: %.4g ns%s" (r.worst_slack *. 1e9)
      (if r.worst_slack < 0. then "  (VIOLATED)" else "")
  end;
  if verbose then
    Format.fprintf ppf "@,engine counters (%d nets):@,%a"
      (List.length r.nets) Awe.Stats.pp r.stats;
  Format.fprintf ppf "@]"

let pp_paths ppf paths =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i p ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf
        "path %d: %s %s %s  arrival %.4g ns  required %.4g ns  slack %.4g \
         ns%s@,"
        (i + 1) p.path_endpoint (pin_string p.path_pin)
        (transition_string p.path_transition)
        (p.path_arrival *. 1e9) (p.path_required *. 1e9)
        (p.path_slack *. 1e9)
        (if p.path_slack < 0. then "  (VIOLATED)" else "");
      Format.fprintf ppf "  input arrival %.4g ns" (p.path_input_arrival *. 1e9);
      List.iter
        (fun st ->
          Format.fprintf ppf
            "@,  %-10s %-8s gate %.4g ns  net %.4g ns  arrival %.4g ns"
            st.st_net (pin_string st.st_pin) (st.st_gate_delay *. 1e9)
            (st.st_net_delay *. 1e9) (st.st_arrival *. 1e9))
        p.path_stages)
    paths;
  Format.fprintf ppf "@]"

let pp_corners ppf cr =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun s ->
      Format.fprintf ppf
        "corner %-10s critical arrival %.4g ns  worst slack %.4g ns%s@,"
        s.cs_name
        (s.cs_critical_arrival *. 1e9)
        (s.cs_worst_slack *. 1e9)
        (if s.cs_worst_slack < 0. then "  (VIOLATED)" else ""))
    cr.summary;
  Format.fprintf ppf
    "across corners: critical arrival %.4g ns, worst slack %.4g ns at %s"
    (cr.critical_arrival_overall *. 1e9)
    (cr.worst_slack_overall *. 1e9)
    cr.worst_corner;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
module Design_file = struct
  exception Parse_error of int * string

  let fail line fmt = Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

  let value_exn line tok =
    match Circuit.Parser.parse_value tok with
    | Some v -> v
    | None -> fail line "cannot parse value %S" tok

  let tokens_of line =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")

  let parse_string text =
    let lines =
      String.split_on_char '\n' text
      |> List.mapi (fun i l -> (i + 1, String.trim l))
      |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '*')
    in
    (* first pass: header values, validated where they appear so a bad
       vdd/threshold reports its own line instead of [create] raising
       after the pass *)
    let vdd = ref 5. and threshold = ref 0.5 in
    List.iter
      (fun (ln, l) ->
        match tokens_of l with
        | [ "vdd"; v ] ->
          let x = value_exn ln v in
          if not (Float.is_finite x && x > 0.) then
            fail ln "vdd must be positive";
          vdd := x
        | [ "threshold"; v ] ->
          let x = value_exn ln v in
          if not (x > 0. && x < 1.) then fail ln "threshold must be in (0, 1)";
          threshold := x
        | "vdd" :: _ -> fail ln "vdd expects one value"
        | "threshold" :: _ -> fail ln "threshold expects one value"
        | _ -> ())
      lines;
    let d = create ~vdd:!vdd ~threshold:!threshold () in
    let cells = Hashtbl.create 8 in
    let key_value ln tok =
      match String.split_on_char '=' tok with
      | [ k; v ] -> (String.lowercase_ascii k, value_exn ln v)
      | _ -> fail ln "expected key=value, got %S" tok
    in
    List.iter
      (fun (ln, l) ->
        (* card handlers validate as they build; report their
           complaints (duplicate declarations, bad values) with the
           offending line *)
        try
          match tokens_of l with
          | "vdd" :: _ | "threshold" :: _ -> ()
          | [ "cell"; name; dr; cap; intr ] ->
          if Hashtbl.mem cells name then fail ln "duplicate cell %s" name;
          Hashtbl.replace cells name
            (cell ~name ~drive_res:(value_exn ln dr)
               ~input_cap:(value_exn ln cap)
               ~intrinsic:(value_exn ln intr))
        | "gate" :: inst :: cell_name :: output :: inputs ->
          let cell =
            match Hashtbl.find_opt cells cell_name with
            | Some c -> c
            | None -> fail ln "unknown cell %s" cell_name
          in
          if inputs = [] then fail ln "gate %s has no inputs" inst;
          add_gate d ~inst ~cell ~inputs ~output
        | "net" :: name :: rest ->
          (* segments separated by ";" tokens, each: from to r c *)
          let groups =
            List.fold_left
              (fun acc tok ->
                if tok = ";" then [] :: acc
                else
                  match acc with
                  | g :: acc' -> (tok :: g) :: acc'
                  | [] -> [ [ tok ] ])
              [ [] ] rest
            |> List.rev_map List.rev
            |> List.filter (fun g -> g <> [])
          in
          let segments =
            List.map
              (fun g ->
                match g with
                | [ from_; to_; r; c ] ->
                  let res = value_exn ln r and cap = value_exn ln c in
                  if not (Float.is_finite res && res > 0.) then
                    fail ln "segment resistance must be positive";
                  if not (Float.is_finite cap && cap >= 0.) then
                    fail ln "segment capacitance must be non-negative";
                  { seg_from = from_; seg_to = to_; res; cap }
                | _ -> fail ln "net segment needs <from> <to> <r> <c>")
              groups
          in
          if segments = [] then fail ln "net %s has no segments" name;
          add_net d ~name ~segments
        | [ "constraint"; net; t ] ->
          add_constraint ~line:ln d ~net ~required:(value_exn ln t)
        | [ "clock"; p ] -> set_clock ~line:ln d ~period:(value_exn ln p)
        | "constraint" :: _ -> fail ln "constraint expects <net> <time>"
        | "clock" :: _ -> fail ln "clock expects one period value"
        | "input" :: net :: params ->
          let arrival = ref 0. and slew = ref 0. in
          List.iter
            (fun p ->
              match key_value ln p with
              | "arrival", v -> arrival := v
              | "slew", v -> slew := v
              | k, _ -> fail ln "unknown input parameter %S" k)
            params;
          add_primary_input d ~net ~arrival:!arrival ~slew:!slew ()
        | [ "output"; net ] -> add_primary_output d ~net
        | card :: _ -> fail ln "unknown card %S" card
        | [] -> ()
        with
        | Malformed msg | Invalid_argument msg -> fail ln "%s" msg)
      lines;
    d

  let parse_file path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> parse_string (really_input_string ic (in_channel_length ic)))

end

(* ------------------------------------------------------------------ *)
(* Synthetic designs at scale.  The paper's figures and the test decks
   are tens of nets; making parallel analysis pay (or regress) only
   shows up on designs big enough that per-wave fan-out dominates the
   fixed costs.  These generators stamp the regular structures real
   designs are made of — datapath grids, clock trees, irregular
   meshes — at 10k-100k nets, with wide topological waves. *)
module Synth = struct
  let net_count (d : design) = Hashtbl.length d.nets

  (* values in the chain-design regime: ~100 Ohm gates, fF-scale wire
     and pin caps, ps-scale intrinsics — AWE's comfortable range *)
  let grid_cells =
    [| cell ~name:"sg_nand" ~drive_res:150. ~input_cap:7e-15
         ~intrinsic:25e-12;
       cell ~name:"sg_nor" ~drive_res:200. ~input_cap:9e-15
         ~intrinsic:35e-12 |]

  let grid ~rows ~cols () =
    if rows < 1 || cols < 1 then
      invalid_arg "Sta.Synth.grid: need rows >= 1 and cols >= 1";
    let d = create () in
    let gate_name r c = Printf.sprintf "g%d_%d" r c in
    let net_name r c = Printf.sprintf "w%d_%d" r c in
    let pi_north c = Printf.sprintf "pn%d" c in
    let pi_west r = Printf.sprintf "pw%d" r in
    for r = 0 to rows - 1 do
      for c = 0 to cols - 1 do
        let north = if r = 0 then pi_north c else net_name (r - 1) c in
        let west = if c = 0 then pi_west r else net_name r (c - 1) in
        add_gate d ~inst:(gate_name r c)
          ~cell:grid_cells.((r + c) mod 2)
          ~inputs:[ north; west ]
          ~output:(net_name r c)
      done
    done;
    (* each output net runs a short trunk, then arms to its south and
       east sinks.  Values repeat along anti-diagonals ((r + c) mod 4),
       i.e. within topological waves — the template regularity real
       datapaths have, which the structure cache exists to exploit. *)
    let wire r c sinks =
      let v = float_of_int ((r + c) mod 4) in
      let trunk = { seg_from = "drv"; seg_to = "t"; res = 80. +. (10. *. v); cap = 4e-15 } in
      trunk
      :: List.map
           (fun s ->
             { seg_from = "t"; seg_to = s; res = 120. +. (15. *. v); cap = 3e-15 })
           sinks
    in
    for r = 0 to rows - 1 do
      for c = 0 to cols - 1 do
        let sinks =
          (if r + 1 < rows then [ gate_name (r + 1) c ] else [])
          @ if c + 1 < cols then [ gate_name r (c + 1) ] else []
        in
        add_net d ~name:(net_name r c) ~segments:(wire r c sinks)
      done
    done;
    for c = 0 to cols - 1 do
      add_net d ~name:(pi_north c)
        ~segments:
          [ { seg_from = "drv"; seg_to = gate_name 0 c; res = 100.; cap = 5e-15 } ];
      add_primary_input d ~net:(pi_north c) ();
      add_primary_output d ~net:(net_name (rows - 1) c)
    done;
    for r = 0 to rows - 1 do
      add_net d ~name:(pi_west r)
        ~segments:
          [ { seg_from = "drv"; seg_to = gate_name r 0; res = 100.; cap = 5e-15 } ];
      add_primary_input d ~net:(pi_west r) ();
      if r < rows - 1 then add_primary_output d ~net:(net_name r (cols - 1))
    done;
    d

  let clock_tree ~levels ~fanout () =
    if levels < 1 then invalid_arg "Sta.Synth.clock_tree: need levels >= 1";
    if fanout < 2 then invalid_arg "Sta.Synth.clock_tree: need fanout >= 2";
    let d = create () in
    (* drive strength tapers toward the leaves, wire width with it:
       one cell and one wire template per level, so every net of a
       topological wave is the identical stage circuit *)
    let buf_cell =
      Array.init levels (fun lvl ->
          cell
            ~name:(Printf.sprintf "ct_buf%d" lvl)
            ~drive_res:(80. +. (25. *. float_of_int lvl))
            ~input_cap:5e-15 ~intrinsic:15e-12)
    in
    let rec build lvl inst in_net =
      let out_net = "n_" ^ inst in
      add_gate d ~inst ~cell:buf_cell.(lvl) ~inputs:[ in_net ] ~output:out_net;
      if lvl = levels - 1 then begin
        (* leaf buffer: a stub load net, marked as a primary output *)
        add_net d ~name:out_net
          ~segments:
            [ { seg_from = "drv"; seg_to = "t"; res = 60.; cap = 8e-15 } ];
        add_primary_output d ~net:out_net
      end
      else begin
        let children =
          List.init fanout (fun k -> Printf.sprintf "%s_%d" inst k)
        in
        let lv = float_of_int lvl in
        let segments =
          { seg_from = "drv"; seg_to = "t"; res = 40. +. (8. *. lv); cap = 6e-15 }
          :: List.concat
               (List.mapi
                  (fun k child ->
                    (* two arm templates per level (H-tree near/far
                       arms), identical across the wave's nets *)
                    let arm = Printf.sprintf "a%d" k in
                    let stretch = if k mod 2 = 0 then 1. else 1.4 in
                    [ { seg_from = "t";
                        seg_to = arm;
                        res = (70. +. (10. *. lv)) *. stretch;
                        cap = 4e-15 };
                      { seg_from = arm; seg_to = child; res = 50.; cap = 3e-15 } ])
                  children)
        in
        add_net d ~name:out_net ~segments;
        List.iter (fun child -> build (lvl + 1) child out_net) children
      end
    in
    add_net d ~name:"clk"
      ~segments:[ { seg_from = "drv"; seg_to = "b"; res = 30.; cap = 10e-15 } ];
    add_primary_input d ~net:"clk" ();
    build 0 "b" "clk";
    d

  let buffered_mesh ?(seed = 91) ~rows ~cols () =
    if rows < 2 || cols < 2 then
      invalid_arg "Sta.Synth.buffered_mesh: need rows >= 2 and cols >= 2";
    let st = Random.State.make [| seed |] in
    let d = create () in
    let gate_name r c = Printf.sprintf "m%d_%d" r c in
    let net_name r c = Printf.sprintf "x%d_%d" r c in
    let pi_north c = Printf.sprintf "qn%d" c in
    let pi_west r = Printf.sprintf "qw%d" r in
    (* irregular counterpart of [grid]: seeded per-net wire values (few
       repeated templates — the cache-hostile case) and random extra
       diagonal listeners.  All flags are drawn up front, row-major,
       so the stream — and therefore the design — is a pure function
       of [seed]. *)
    let diag = Array.init rows (fun _ -> Array.init cols (fun _ -> false)) in
    for r = 1 to rows - 1 do
      for c = 1 to cols - 1 do
        diag.(r).(c) <- Random.State.float st 1. < 0.3
      done
    done;
    for r = 0 to rows - 1 do
      for c = 0 to cols - 1 do
        let north = if r = 0 then pi_north c else net_name (r - 1) c in
        let west = if c = 0 then pi_west r else net_name r (c - 1) in
        let inputs =
          (north :: west
           :: (if diag.(r).(c) then [ net_name (r - 1) (c - 1) ] else []))
        in
        add_gate d ~inst:(gate_name r c)
          ~cell:grid_cells.(((r * 3) + c) mod 2)
          ~inputs ~output:(net_name r c)
      done
    done;
    let wire sinks =
      let trunk =
        { seg_from = "drv";
          seg_to = "t";
          res = 60. +. Random.State.float st 120.;
          cap = 2e-15 +. Random.State.float st 6e-15 }
      in
      trunk
      :: List.map
           (fun s ->
             { seg_from = "t";
               seg_to = s;
               res = 90. +. Random.State.float st 140.;
               cap = 2e-15 +. Random.State.float st 5e-15 })
           sinks
    in
    for r = 0 to rows - 1 do
      for c = 0 to cols - 1 do
        let sinks =
          (if r + 1 < rows then [ gate_name (r + 1) c ] else [])
          @ (if c + 1 < cols then [ gate_name r (c + 1) ] else [])
          @
          if r + 1 < rows && c + 1 < cols && diag.(r + 1).(c + 1) then
            [ gate_name (r + 1) (c + 1) ]
          else []
        in
        add_net d ~name:(net_name r c) ~segments:(wire sinks)
      done
    done;
    for c = 0 to cols - 1 do
      add_net d ~name:(pi_north c)
        ~segments:
          [ { seg_from = "drv";
              seg_to = gate_name 0 c;
              res = 80. +. Random.State.float st 60.;
              cap = 4e-15 } ];
      add_primary_input d ~net:(pi_north c) ();
      add_primary_output d ~net:(net_name (rows - 1) c)
    done;
    for r = 0 to rows - 1 do
      add_net d ~name:(pi_west r)
        ~segments:
          [ { seg_from = "drv";
              seg_to = gate_name r 0;
              res = 80. +. Random.State.float st 60.;
              cap = 4e-15 } ];
      add_primary_input d ~net:(pi_west r) ();
      if r < rows - 1 then add_primary_output d ~net:(net_name r (cols - 1))
    done;
    d

  let ladder_cell =
    cell ~name:"rl_buf" ~drive_res:120. ~input_cap:6e-15 ~intrinsic:20e-12

  let rc_ladder ~stages ~length ~fanout () =
    if stages < 1 then invalid_arg "Sta.Synth.rc_ladder: need stages >= 1";
    if length < 3 then invalid_arg "Sta.Synth.rc_ladder: need length >= 3";
    if fanout < 1 then invalid_arg "Sta.Synth.rc_ladder: need fanout >= 1";
    let d = create () in
    let gate_name i = Printf.sprintf "rl%d" i in
    let net_name i = Printf.sprintf "ln%d" i in
    (* each stage drives a long uniform RC trunk (the 2508.13159
       long-chain regime: every trunk interior node is chain-interior
       material) ending in a hub with [fanout - 1] capacitive side
       stubs (star-leg material) plus the arm to the next stage's
       input pin.  Trunk length and values vary with [stage mod 3], so
       the unreduced design has three stage-circuit topology classes —
       after reduction every stage lumps to the same T-section
       template, which is exactly the canonicalization the pattern
       tier rewards. *)
    let ladder i sinks =
      let cls = i mod 3 in
      let len = length + cls in
      let v = float_of_int cls in
      let seg k =
        { seg_from = (if k = 0 then "drv" else Printf.sprintf "t%d" k);
          seg_to = Printf.sprintf "t%d" (k + 1);
          res = 45. +. (7. *. v);
          cap = 2.5e-15 +. (0.4e-15 *. v) }
      in
      let hub = Printf.sprintf "t%d" len in
      let stubs =
        List.init (fanout - 1) (fun j ->
            { seg_from = hub;
              seg_to = Printf.sprintf "s%d" j;
              res = 90. +. (12. *. float_of_int j);
              cap = 5e-15 +. (0.6e-15 *. float_of_int j) })
      in
      let arms =
        List.map
          (fun s -> { seg_from = hub; seg_to = s; res = 70.; cap = 3e-15 })
          sinks
      in
      List.init len seg @ stubs @ arms
    in
    for i = 0 to stages - 1 do
      let input = if i = 0 then "lin" else net_name (i - 1) in
      add_gate d ~inst:(gate_name i) ~cell:ladder_cell ~inputs:[ input ]
        ~output:(net_name i)
    done;
    add_net d ~name:"lin"
      ~segments:
        [ { seg_from = "drv"; seg_to = gate_name 0; res = 60.; cap = 4e-15 } ];
    add_primary_input d ~net:"lin" ();
    for i = 0 to stages - 1 do
      let sinks = if i + 1 < stages then [ gate_name (i + 1) ] else [] in
      add_net d ~name:(net_name i) ~segments:(ladder i sinks)
    done;
    add_primary_output d ~net:(net_name (stages - 1));
    d
end
