(* The serve line protocol (see serve.mli).  Pure string -> response:
   the CLI owns the sockets and the read loop, tests and the fuzzer
   drive [handle] directly. *)

type t = {
  model : Timing.delay_model;
  sparse : bool;
  jobs : int;
  reduce : bool;
  gate : Timing.design -> (unit, string) result;
  mutable sess : Session.t option;
}

type response = { body : string; quit : bool }

let create ?(model = Timing.Awe_auto) ?(sparse = false) ?(jobs = 1)
    ?(reduce = true) ?(gate = fun _ -> Ok ()) () =
  { model; sparse; jobs; reduce; gate; sess = None }

let session t = t.sess

(* --- tiny JSON emission -------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = "\"" ^ json_escape s ^ "\""

let jfloat v =
  if Float.is_finite v then Printf.sprintf "%.17g" v
  else if v = infinity then jstr "inf"
  else if v = neg_infinity then jstr "-inf"
  else jstr "nan"

let jlist f xs = "[" ^ String.concat "," (List.map f xs) ^ "]"

let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields) ^ "}"

let ok ?(quit = false) fields =
  { body = obj (("ok", "true") :: fields); quit }

let err fmt =
  Printf.ksprintf
    (fun msg -> { body = obj [ ("ok", "false"); ("error", jstr msg) ]; quit = false })
    fmt

(* --- request parsing ----------------------------------------------- *)

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

(* Result-style edit parsing: [Error] is the protocol diagnostic. *)
let edit_of toks : (Session.edit, string) result =
  let flt name s k =
    match float_of_string_opt s with
    | Some v -> k v
    | None -> Error (Printf.sprintf "%s: not a number: %s" name s)
  in
  let int name s k =
    match int_of_string_opt s with
    | Some v -> k v
    | None -> Error (Printf.sprintf "%s: not an integer: %s" name s)
  in
  match toks with
  | [ "set_r"; net; index; value ] ->
    int "index" index (fun index ->
        flt "value" value (fun value ->
            Ok (Session.Set_resistance { net; index; value })))
  | [ "set_c"; net; index; value ] ->
    int "index" index (fun index ->
        flt "value" value (fun value ->
            Ok (Session.Set_capacitance { net; index; value })))
  | [ "reroute"; net; index; seg_from; seg_to ] ->
    int "index" index (fun index ->
        Ok (Session.Reroute { net; index; seg_from; seg_to }))
  | [ "swap_sink"; inst; from_net; to_net ] ->
    Ok (Session.Swap_sink { inst; from_net; to_net })
  | [ "set_drive"; inst; value ] ->
    flt "value" value (fun value -> Ok (Session.Set_drive { inst; value }))
  | [ "set_pin_cap"; inst; value ] ->
    flt "value" value (fun value -> Ok (Session.Set_pin_cap { inst; value }))
  | [ "set_intrinsic"; inst; value ] ->
    flt "value" value (fun value -> Ok (Session.Set_intrinsic { inst; value }))
  | [ "set_constraint"; net; value ] ->
    flt "value" value (fun required ->
        Ok (Session.Set_constraint { net; required }))
  | [ "remove_constraint"; net ] -> Ok (Session.Remove_constraint { net })
  | [ "set_clock"; value ] ->
    flt "period" value (fun period -> Ok (Session.Set_clock { period }))
  | [ "remove_clock" ] -> Ok Session.Remove_clock
  | kind :: _ -> Error (Printf.sprintf "unknown or malformed edit: %s" kind)
  | [] -> Error "edit: missing kind"

(* --- command handlers ---------------------------------------------- *)

let with_session t k =
  match t.sess with None -> err "no design loaded" | Some s -> k s

let summary_fields r =
  [ ("critical", jfloat r.Timing.critical_arrival);
    ("critical_path", jlist jstr r.Timing.critical_path);
    ("worst_slack", jfloat r.Timing.worst_slack) ]

let do_load t path =
  match Timing.Design_file.parse_file path with
  | exception Timing.Design_file.Parse_error (ln, msg) ->
    err "%s:%d: %s" path ln msg
  | exception Sys_error msg -> err "%s" msg
  | d -> (
    match t.gate d with
    | Error msg -> err "lint gate: %s" msg
    | Ok () -> (
      match
        Session.create ~model:t.model ~sparse:t.sparse ~jobs:t.jobs
          ~reduce:t.reduce d
      with
      | exception Timing.Malformed msg -> err "%s" msg
      | exception Timing.Not_a_dag insts ->
        err "combinational cycle through %s" (String.concat ", " insts)
      | s ->
        t.sess <- Some s;
        let r = Session.report s in
        ok
          (("cmd", jstr "load")
          :: ("design", jstr path)
          :: ("nets", string_of_int (List.length r.Timing.nets))
          :: summary_fields r)))

let do_edit t toks =
  with_session t (fun s ->
      match edit_of toks with
      | Error msg -> err "%s" msg
      | Ok e -> (
        match Session.apply s e with
        | Error msg -> err "%s" msg
        | Ok () ->
          ok
            [ ("cmd", jstr "edit");
              ("pending", string_of_int (Session.pending_edits s)) ]))

let slack_json (sl : Timing.pin_slack) =
  obj
    [ ("net", jstr sl.Timing.sp_net);
      ( "pin",
        match sl.Timing.sp_pin with None -> jstr "driver" | Some p -> jstr p );
      ("transition", jstr (Timing.transition_string sl.Timing.sp_transition));
      ("arrival", jfloat sl.Timing.sp_arrival);
      ("required", jfloat sl.Timing.sp_required);
      ("slack", jfloat sl.Timing.sp_slack) ]

let path_json (p : Timing.path) =
  obj
    [ ("endpoint", jstr p.Timing.path_endpoint);
      ( "pin",
        match p.Timing.path_pin with None -> jstr "driver" | Some x -> jstr x );
      ("transition", jstr (Timing.transition_string p.Timing.path_transition));
      ("arrival", jfloat p.Timing.path_arrival);
      ("required", jfloat p.Timing.path_required);
      ("slack", jfloat p.Timing.path_slack);
      ("stages", jlist (fun st -> jstr st.Timing.st_net) p.Timing.path_stages) ]

let do_timing t opts =
  (* options: --slack, --top-k K *)
  let rec parse opts ~slack ~top_k =
    match opts with
    | [] -> Ok (slack, top_k)
    | "--slack" :: rest -> parse rest ~slack:true ~top_k
    | "--top-k" :: k :: rest -> (
      match int_of_string_opt k with
      | Some k when k >= 0 -> parse rest ~slack ~top_k:(Some k)
      | _ -> Error (Printf.sprintf "--top-k: not a non-negative integer: %s" k))
    | [ "--top-k" ] -> Error "--top-k: missing argument"
    | o :: _ -> Error (Printf.sprintf "unknown timing option: %s" o)
  in
  match parse opts ~slack:false ~top_k:None with
  | Error msg -> err "%s" msg
  | Ok (slack, top_k) ->
    with_session t (fun s ->
        match Session.retime s with
        | Error msg -> err "re-time failed (session rolled back): %s" msg
        | Ok r ->
          let base =
            ("cmd", jstr "timing")
            :: summary_fields r
            @ [ ("dirty_nets", string_of_int r.Timing.stats.Awe.Stats.eco_dirty_nets);
                ("reused_nets", string_of_int r.Timing.stats.Awe.Stats.eco_reused_nets)
              ]
          in
          let base =
            if slack then
              base @ [ ("slacks", jlist slack_json r.Timing.slacks) ]
            else base
          in
          let base =
            match top_k with
            | None -> base
            | Some k ->
              let paths = Timing.critical_paths (Session.design s) r ~k in
              base @ [ ("paths", jlist path_json paths) ]
          in
          ok base)

let do_stats t =
  with_session t (fun s ->
      let tot = Session.totals s in
      let exact, pats = Timing.cache_fingerprint (Session.cache s) in
      ok
        [ ("cmd", jstr "stats");
          ("eco_edits", string_of_int tot.Session.total_edits);
          ("retimes", string_of_int tot.Session.total_retimes);
          ("eco_dirty_nets", string_of_int tot.Session.total_dirty);
          ("eco_reused_nets", string_of_int tot.Session.total_reused);
          ("eco_full_fallbacks", string_of_int tot.Session.total_fallbacks);
          ("pending", string_of_int (Session.pending_edits s));
          ("cache_exact_entries", string_of_int (List.length exact));
          ("cache_pattern_entries", string_of_int (List.length pats));
          ("cache_bytes", string_of_int (Timing.cache_bytes (Session.cache s)))
        ])

let do_revert t toks =
  with_session t (fun s ->
      match toks with
      | [ "all" ] ->
        let n = Session.revert_all s in
        ok
          [ ("cmd", jstr "revert");
            ("reverted", string_of_int n);
            ("pending", string_of_int (Session.pending_edits s)) ]
      | [] -> (
        match Session.revert s with
        | Error msg -> err "%s" msg
        | Ok _ ->
          ok
            [ ("cmd", jstr "revert");
              ("reverted", "1");
              ("pending", string_of_int (Session.pending_edits s)) ])
      | o :: _ -> err "unknown revert argument: %s" o)

let handle t line =
  (* total: whatever arrives, answer with a structured response and
     keep the session consistent.  The catch-all is the protocol's
     last line of defense — individual paths return typed errors. *)
  match
    match tokens line with
    | [] -> err "empty command"
    | [ "load" ] -> err "load: missing path"
    | [ "load"; path ] -> do_load t path
    | "load" :: _ -> err "load: expected one path"
    | "edit" :: toks -> do_edit t toks
    | "timing" :: opts -> do_timing t opts
    | [ "stats" ] -> do_stats t
    | "stats" :: _ -> err "stats takes no arguments"
    | "revert" :: toks -> do_revert t toks
    | [ "quit" ] -> ok ~quit:true [ ("cmd", jstr "quit") ]
    | "quit" :: _ -> err "quit takes no arguments"
    | cmd :: _ -> err "unknown command: %s" cmd
  with
  | r -> r
  | exception e -> err "internal error: %s" (Printexc.to_string e)
