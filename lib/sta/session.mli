(** Incremental ECO timing sessions.

    A session loads a design once — connectivity tables, Kahn wave
    schedule, full initial analysis against a private structure cache
    — then accepts a stream of typed {!edit}s and re-times only the
    {e dirty cone}: a net is re-solved exactly when its own content
    changed (wire values or topology, sink pin caps, driver strength)
    or its input slew changed bitwise; everything else is served from
    the per-net memo, and arrival changes propagate forward only while
    a net's timing tuple actually changed (bitwise).  The min-plus
    required-time/slack pass back-propagates over the same frontier.

    {b Bit-identity contract.}  After any sequence of applied edits,
    {!retime}'s report has bit-identical [nets], [critical_arrival],
    [critical_path], [slacks], [worst_slack] and [failures] to a cold
    {!Timing.analyze} of the edited design, for every [jobs] value
    (dirty-cone waves reuse the chunked pool and sharded publication
    of [analyze]); only [stats] differs — it reports the incremental
    work actually done (the [eco_*] counters) instead of the cold
    solve counts.  The session cache's {!Timing.cache_fingerprint} is
    kept equal to what a cold cached analyze of the {e current} design
    would publish, by refcounting each live net's cache keys and
    retiring entries at refcount zero — so edit-then-revert restores
    the original fingerprint exactly.  See THEORY.md, "Incremental
    timing and dirty cones".

    Sessions are strict: a failing net rolls the session back to the
    last successfully-timed state (a {e full fallback}: the design
    edits since then are undone and the analysis rebuilt cold), and
    the failure is reported as an [Error].

    Not thread-safe: drive a session from one domain. *)

type edit =
  | Set_resistance of { net : string; index : int; value : float }
      (** set segment [index] (0-based) of [net]'s wire to [value] Ohms *)
  | Set_capacitance of { net : string; index : int; value : float }
      (** set segment [index]'s grounded capacitance to [value] Farads *)
  | Reroute of { net : string; index : int; seg_from : string; seg_to : string }
      (** re-anchor segment [index] between two net-local nodes,
          keeping its R/C values *)
  | Swap_sink of { inst : string; from_net : string; to_net : string }
      (** re-connect the first [from_net] input pin of gate [inst] to
          [to_net] *)
  | Set_inputs of { inst : string; inputs : string list }
      (** replace gate [inst]'s whole input list (the general form
          {!Swap_sink} is sugar for; also its undo image) *)
  | Set_drive of { inst : string; value : float }  (** drive resistance *)
  | Set_pin_cap of { inst : string; value : float }  (** input pin cap *)
  | Set_intrinsic of { inst : string; value : float }  (** intrinsic delay *)
  | Set_constraint of { net : string; required : float }
      (** add or overwrite a required-time constraint *)
  | Remove_constraint of { net : string }
  | Set_clock of { period : float }  (** set or overwrite the clock *)
  | Remove_clock

type totals = {
  total_edits : int;  (** edits applied (reverts included) *)
  total_retimes : int;  (** successful re-times, initial load included *)
  total_dirty : int;  (** nets re-solved across all re-times *)
  total_reused : int;
      (** nets whose solve was reused: untouched, or re-timed from the
          memo by arrival arithmetic alone *)
  total_fallbacks : int;  (** full fallbacks taken *)
}

type t

val create :
  ?model:Timing.delay_model ->
  ?sparse:bool ->
  ?jobs:int ->
  ?reduce:bool ->
  Timing.design ->
  t
(** Load a design: build connectivity tables and the wave schedule,
    then run the full initial analysis (a cold [analyze] against the
    session's fresh cache).  The session owns the design — callers
    must not mutate it behind the session's back.  Raises what
    [analyze] raises ([Malformed], [Not_a_dag], [Invalid_argument] on
    negative [jobs]); additionally rejects ([Malformed]) designs where
    a net has several drivers or a primary input is also a gate output
    — multi-driver anomalies [analyze] resolves by declaration-order
    accident, which a persistent session refuses to depend on. *)

val design : t -> Timing.design
(** The session's (edited) design — the exact object a scratch
    [analyze] must agree with. *)

val apply : t -> edit -> (unit, string) result
(** Validate and apply one edit.  [Error] leaves the session (and the
    design) untouched; [Ok] records the edit (and its undo image) and
    marks the affected cone dirty.  Re-timing is deferred to
    {!retime}, so an edit burst pays one propagation. *)

val retime : t -> (Timing.report, string) result
(** Re-time the dirty cone (no-op when nothing is pending) and return
    the report.  On a per-net failure (e.g. an edit made a threshold
    unreachable), rolls every edit since the last successful re-time
    back, rebuilds the analysis cold ({!totals}[.total_fallbacks]),
    and returns the failing net's diagnostic as [Error] — the session
    stays usable at its last good state. *)

val report : t -> Timing.report
(** The last successfully computed report (without re-timing; use
    {!retime} after edits). *)

val pending_edits : t -> int
(** Edits applied since the last successful re-time. *)

val revert : t -> (edit, string) result
(** Undo the most recent applied edit (reverts cross re-time
    boundaries: a session remembers its whole edit history since
    load).  Returns the edit that was undone.  [Error] when the
    history is empty. *)

val revert_all : t -> int
(** Undo the entire edit history, newest first; returns how many
    edits were undone.  A subsequent {!retime} restores the original
    report and cache fingerprint exactly. *)

val cache : t -> Timing.cache
(** The session's structure cache, for fingerprinting — equal, as a
    key set, to what a cold cached [analyze] of the current design
    publishes. *)

val totals : t -> totals
(** Cumulative ECO tallies since load. *)
