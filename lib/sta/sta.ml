(* Library root: the timing engine lives in [Timing] (sibling modules
   cannot depend on a library's main module, and [Session] needs the
   engine), re-exported here so the public face stays [Sta.*]. *)

include Timing
module Session = Session
module Serve = Serve
