(** The [awesim serve] line protocol: a pure request handler over a
    {!Session}, one command line in, one JSON line out.  The CLI wraps
    it in a stdin/stdout loop or a Unix-socket accept loop; keeping
    the handler free of I/O makes it directly fuzzable (the protocol
    robustness contract: {e any} input line yields a structured error
    response, never an exception or a corrupted session).

    {b Protocol.}  Requests are whitespace-separated tokens:

    {v
    load <path>                          parse, gate, load into a session
    edit set_r <net> <index> <ohms>      segment resistance
    edit set_c <net> <index> <farads>    segment capacitance
    edit reroute <net> <index> <from> <to>
    edit swap_sink <inst> <from-net> <to-net>
    edit set_drive <inst> <ohms>
    edit set_pin_cap <inst> <farads>
    edit set_intrinsic <inst> <seconds>
    edit set_constraint <net> <seconds>
    edit remove_constraint <net>
    edit set_clock <seconds>
    edit remove_clock
    timing [--slack] [--top-k <K>]       re-time the dirty cone, report
    stats                                session + cache counters
    revert [all]                         undo the last (or every) edit
    quit
    v}

    Responses are single-line JSON objects: [{"ok":true,...}] on
    success, [{"ok":false,"error":"..."}] on failure.  Edits are
    applied eagerly but re-timed lazily — a burst of [edit] commands
    pays one dirty-cone propagation at the next [timing].  Non-finite
    floats (unconstrained slack is [infinity]) are encoded as the
    strings ["inf"], ["-inf"], ["nan"]. *)

type t

type response = {
  body : string;  (** one line of JSON, no trailing newline *)
  quit : bool;  (** [true] after a [quit] command: close the stream *)
}

val create :
  ?model:Timing.delay_model ->
  ?sparse:bool ->
  ?jobs:int ->
  ?reduce:bool ->
  ?gate:(Timing.design -> (unit, string) result) ->
  unit ->
  t
(** A fresh server with no design loaded.  [gate] (default: accept)
    screens a parsed design before the session is built — the CLI
    passes the lint gate here, so a design that fails lint is rejected
    by [load] with the lint diagnostic, exactly like batch [analyze].
    The analysis options are fixed for the server's lifetime; every
    [load] builds its session with them. *)

val handle : t -> string -> response
(** Process one request line.  Total: malformed, truncated, or
    unknown commands (and failing loads, edits or re-times) produce an
    [{"ok":false}] response and leave the loaded session at its last
    consistent state. *)

val session : t -> Session.t option
(** The currently loaded session, for tests and the CLI's exit
    summary. *)
