(* Static timing analysis with AWE net delays: the application the
   paper's introduction motivates.  A small combinational block is
   decomposed into stages; each net's delay and output slew come from
   an AWE reduced-order model, and arrival times propagate through the
   gate-level DAG.

   Run with:  dune exec examples/timing_analysis.exe *)

let inv =
  Sta.cell ~name:"inv_x1" ~drive_res:600. ~input_cap:15e-15
    ~intrinsic:40e-12

let nand =
  Sta.cell ~name:"nand2_x2" ~drive_res:350. ~input_cap:25e-15
    ~intrinsic:60e-12

let buf =
  Sta.cell ~name:"buf_x4" ~drive_res:150. ~input_cap:45e-15
    ~intrinsic:90e-12

let seg from_ to_ r c = { Sta.seg_from = from_; seg_to = to_; res = r; cap = c }

let build () =
  let d = Sta.create ~vdd:5. ~threshold:0.5 () in
  (*      a ---[u1 inv]--- n1 ---+--[u3 nand]--- n3 --[u4 buf]--- out
          b ---[u2 inv]--- n2 ---+                                      *)
  Sta.add_gate d ~inst:"u1" ~cell:inv ~inputs:[ "a" ] ~output:"n1";
  Sta.add_gate d ~inst:"u2" ~cell:inv ~inputs:[ "b" ] ~output:"n2";
  Sta.add_gate d ~inst:"u3" ~cell:nand ~inputs:[ "n1"; "n2" ] ~output:"n3";
  Sta.add_gate d ~inst:"u4" ~cell:buf ~inputs:[ "n3" ] ~output:"out";
  Sta.add_gate d ~inst:"u5" ~cell:inv ~inputs:[ "out" ] ~output:"sink";
  Sta.add_net d ~name:"a" ~segments:[ seg "drv" "u1" 80. 20e-15 ];
  Sta.add_net d ~name:"b" ~segments:[ seg "drv" "u2" 120. 35e-15 ];
  (* n1 is a long route: three segments *)
  Sta.add_net d ~name:"n1"
    ~segments:
      [ seg "drv" "w1" 250. 60e-15;
        seg "w1" "w2" 250. 60e-15;
        seg "w2" "u3" 180. 40e-15 ];
  Sta.add_net d ~name:"n2" ~segments:[ seg "drv" "u3" 150. 30e-15 ];
  Sta.add_net d ~name:"n3" ~segments:[ seg "drv" "u4" 200. 55e-15 ];
  Sta.add_net d ~name:"out" ~segments:[ seg "drv" "u5" 300. 70e-15 ];
  Sta.add_net d ~name:"sink" ~segments:[ seg "drv" "end" 10. 2e-15 ];
  Sta.add_primary_input d ~net:"a" ~slew:100e-12 ();
  Sta.add_primary_input d ~net:"b" ~slew:250e-12 ();
  Sta.add_primary_output d ~net:"out";
  d

let () =
  let d = build () in
  print_endline "== AWE-based timing (adaptive order) ==";
  let r = Sta.analyze ~model:Sta.Awe_auto d in
  Format.printf "%a@." (Sta.pp_report ~verbose:true) r;

  print_endline "\n== Elmore-based timing (first-order baseline) ==";
  let r_elmore = Sta.analyze ~model:Sta.Elmore_model d in
  Format.printf "critical arrival: %.4g ns (AWE: %.4g ns)@."
    (r_elmore.Sta.critical_arrival *. 1e9)
    (r.Sta.critical_arrival *. 1e9);
  Format.printf "Elmore pessimism on this design: %+.1f%%@."
    (100.
    *. (r_elmore.Sta.critical_arrival -. r.Sta.critical_arrival)
    /. r.Sta.critical_arrival)
