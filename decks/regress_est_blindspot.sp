* estimator blind spot: q and q+1 both miss a weakly observable fast mode
vin in 0 pwl(0 0 5.2803676022384594e-10 -1.30696018821854 1.2339261014923092e-09 4.8725384508366503 1.3262750170684569e-09 2.6861095940549169)
r1 in n1 1183.1616430907698
c1 n1 0 1.7531086647221292e-13
r2 n1 n2 1721.0975399346153
c2 n2 0 1.6828361649975721e-13
r3 n2 n3 1151.8543004363653
c3 n3 0 3.225798212707767e-13
r4 n1 n4 611.20624718722195
c4 n4 0 1.8098568733524859e-13
r5 n2 n5 1456.7246958601852
c5 n5 0 4.8238356405989537e-13
r6 n5 n6 1268.257146382849
c6 n6 0 2.8083263428187754e-13
* regression for the base-only error estimate: the 92 ps PWL swing leaves
* the base transient empty-to-tiny, so comparing q against q+1 on the base
* alone reads 0.005 and the adaptive order control stops at q=1 while the
* true relative L2 error vs a transient reference is ~0.055 (peak error
* ~0.49 V).  The fixed estimator compares the assembled response models on
* a time grid and escalates to q=4 (rel L2 ~6e-5).  See THEORY.md,
* verification methodology.  Pinned by test/verify.
.awe n6
.tran 40n 400
.end
