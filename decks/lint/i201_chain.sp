* AWE-I201: interior nodes n2 and n3 carry exactly two resistors and
* grounded capacitance each — the run collapses into one
* moment-preserving equivalent node (the Circuit.Reduce work-list)
v1 1 0 dc 1
r1 1 2 1k
c2 2 0 1p
r2 2 3 1k
c3 3 0 1p
r3 3 4 1k
c4 4 0 1p
.awe v(4)
.end
