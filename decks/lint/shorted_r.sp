* AWE-W001: resistor with both terminals on one node stamps nothing
v1 1 0 dc 1
r1 1 2 1k
r2 2 2 1k
c1 2 0 1p
.awe v(2)
.end
