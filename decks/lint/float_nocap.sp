* AWE-E003 (and AWE-E007): nodes 2-3 have no DC path to ground and no
* bridging capacitance, so the charge-conservation row is empty
v1 1 0 dc 1
r1 1 0 1k
r2 2 3 1k
c3 2 3 1p
.awe v(1)
.end
