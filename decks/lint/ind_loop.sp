* AWE-E005: two parallel inductors close an inductor loop — the DC
* circulating current is undetermined (repeated pole at s = 0)
v1 1 0 dc 1
r1 1 2 1k
l1 2 0 1u
l2 2 0 1u
c1 2 0 1p
.awe v(2)
.end
