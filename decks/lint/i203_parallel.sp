* AWE-I203: r1 and r2 share both endpoints and combine by the
* parallel rule into one equivalent element
v1 1 0 dc 1
r1 1 2 2k
r2 1 2 2k
c1 2 0 1p
.awe v(2)
.end
