* AWE-I001 control deck: nodes 2-3 float at DC but a capacitor bridges
* the group, so charge conservation resolves the steady state — this
* deck must lint clean (info only), even under --strict
v1 1 0 dc 1
r1 1 0 1k
r2 2 3 1k
c2 2 0 1p
c3 3 0 1p
.awe v(2)
.end
