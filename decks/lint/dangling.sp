* AWE-W002: node 3 is a dead-end resistor terminal — no current flows,
* the node voltage merely copies node 2
v1 1 0 dc 1
r1 1 2 1k
c1 2 0 1p
r2 2 3 1k
.awe v(2)
.end
