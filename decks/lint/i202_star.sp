* AWE-I202: two single-resistor RC legs (n2, n3) hang off hub n1 and
* merge into one equivalent leg
v1 1 0 dc 1
r1 1 2 1k
c2 2 0 1p
r2 1 3 1k
c3 3 0 1p
.awe v(2)
.end
