* AWE-W203: structural taus occupy 7 distinct decades (caps step x10
* down a uniform 1k ladder), so the adaptive fit must escalate order
* to resolve every cluster — yet the total spread stays ~2e6, far
* below the W003/W201 conditioning limit: escalation without spread
v1 1 0 dc 1
r1 1 2 1k
c2 2 0 1p
r2 2 3 1k
c3 3 0 10p
r3 3 4 1k
c4 4 0 100p
r4 4 5 1k
c5 5 0 1n
r5 5 6 1k
c6 6 0 10n
r6 6 7 1k
c7 7 0 100n
r7 7 8 1k
c8 8 0 1u
.awe v(8)
.end
