* AWE-E006: two voltage sources in parallel form a zero-resistance
* loop — their branch rows are linearly dependent for every value
v1 1 0 dc 1
v2 1 0 dc 2
r1 1 2 1k
c1 2 0 1p
.awe v(2)
.end
