* AWE-E004: a current source drives the DC-floating group {2, 3} — the
* injected charge has no return path
v1 1 0 dc 1
r1 1 0 1k
i1 0 2 dc 1m
r2 2 3 1k
c2 2 0 1p
.awe v(2)
.end
