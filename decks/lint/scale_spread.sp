* AWE-W003: node time constants 11 decades apart — moment ratios
* overflow double precision despite eq. 47 frequency scaling
v1 1 0 dc 1
r1 1 2 1k
c2 2 0 100u
r3 2 3 1k
c3 3 0 1f
.awe v(3)
.end
