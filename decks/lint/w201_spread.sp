* AWE-W201: structural Elmore bounds already show the time-constant
* spread (1e-15 s at n2 vs 1e2 s at n3, 17 decades) without assembling
* or factoring MNA; W003 confirms the same verdict post-assembly
v1 1 0 dc 1
r1 1 2 1
c2 2 0 1f
r3 2 3 1meg
c3 3 0 100u
.awe v(3)
.end
