* AWE-W202: the 10n/1p tank behind r1 sees only 2 ohm of series
* damping on its min-plus path from the source — Q ~ sqrt(L/C)/R = 50,
* so the dominant poles hug the imaginary axis and low-order AWE fits
* risk unstable pole estimates
v1 1 0 dc 1
r1 1 2 2
l1 2 3 10n
c1 3 0 1p
.awe v(3)
.end
