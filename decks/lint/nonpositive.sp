* AWE-E001: zero-valued resistor (caught at deck validation, reported
* by lint under its registry code)
v1 1 0 dc 1
r1 1 2 0
c1 2 0 1p
.awe v(2)
.end
