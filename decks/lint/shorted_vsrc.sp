* AWE-E002 (and AWE-E007): voltage source shorted onto one node — its
* branch equation is structurally empty, LU must fail
v1 1 0 dc 1
r1 1 2 1k
c1 2 0 1p
v2 2 2 dc 0
.awe v(2)
.end
