(* awesim — command-line front end: parse a SPICE-style deck, run AWE,
   compare against the built-in transient simulator, report poles,
   delays, and waveforms. *)

open Cmdliner

let read_deck path =
  match Circuit.Parser.parse_file path with
  | deck -> deck
  | exception Circuit.Parser.Parse_error (line, msg) ->
    Printf.eprintf "%s:%d: %s\n" path line msg;
    exit 2
  | exception Sys_error msg ->
    Printf.eprintf "%s\n" msg;
    exit 2

let read_design path =
  match Sta.Design_file.parse_file path with
  | d -> d
  | exception Sta.Design_file.Parse_error (line, msg) ->
    Printf.eprintf "%s:%d: %s\n" path line msg;
    exit 2
  | exception Sys_error msg ->
    Printf.eprintf "%s\n" msg;
    exit 2

(* refuse to run a solve that static analysis proves (or strongly
   predicts) will fail: print the offending diagnostics and stop
   before any factorization *)
let lint_gate path diags =
  (* normalize first: duplicates collapse per finding identity, not
     per traversal, and the report order is the documented one *)
  match Lint.gate ~strict:false (Lint.normalize diags) with
  | Ok () -> ()
  | Error offending ->
    Format.eprintf "%s: lint found blocking problems:@.%a@." path
      Lint.Diagnostic.pp_list offending;
    Format.eprintf "(run `awesim lint %s` for the full report)@." path;
    exit 1

let resolve_node deck node_opt =
  let circuit = deck.Circuit.Parser.circuit in
  let from_directive () =
    List.find_map
      (function
        | Circuit.Parser.Awe_node { node; _ } -> Some node
        | Circuit.Parser.Tran _ -> None)
      deck.Circuit.Parser.directives
  in
  let name =
    match node_opt with
    | Some n -> n
    | None -> (
      match from_directive () with
      | Some n -> n
      | None ->
        Printf.eprintf
          "no output node: pass --node or add a .awe directive\n";
        exit 2)
  in
  match Circuit.Netlist.find_node circuit name with
  | Some n -> (name, n)
  | None ->
    Printf.eprintf "unknown node %S\n" name;
    exit 2

let resolve_order deck order_opt =
  match order_opt with
  | Some q -> Some q
  | None ->
    List.find_map
      (function
        | Circuit.Parser.Awe_node { order; _ } -> order
        | Circuit.Parser.Tran _ -> None)
      deck.Circuit.Parser.directives

let resolve_tstop deck tstop_opt sys node =
  match tstop_opt with
  | Some t -> t
  | None -> (
    match
      List.find_map
        (function
          | Circuit.Parser.Tran { t_stop; _ } -> Some t_stop
          | Circuit.Parser.Awe_node _ -> None)
        deck.Circuit.Parser.directives
    with
    | Some t -> t
    | None ->
      (* heuristic horizon: 10x the generalized Elmore delay *)
      10. *. Float.max (Awe.elmore_equivalent sys ~node) 1e-12)

let deck_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"DECK" ~doc:"SPICE-style netlist file.")

let node_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "n"; "node" ] ~docv:"NODE" ~doc:"Output node name.")

let order_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "q"; "order" ] ~docv:"Q" ~doc:"Approximation order.")

let tstop_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "t"; "tstop" ] ~docv:"SECONDS" ~doc:"Time horizon.")

let samples_arg =
  Arg.(
    value & opt int 500
    & info [ "samples" ] ~docv:"N" ~doc:"Waveform samples.")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Write the waveform(s) as CSV.")

let sparse_arg =
  Arg.(
    value & flag
    & info [ "sparse" ]
        ~doc:"Use the sparse LU for the moment solves (large circuits).")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print the Awe.Stats engine counters (factorizations, moment \
           solves, fits, escalations).")

let reduce_arg =
  Arg.(
    value
    & vflag true
        [ ( true,
            info [ "reduce" ]
              ~doc:
                "Run the model-order reduction pass before stamping (the \
                 default): parallel and unloaded series merges are exact; \
                 chain lumping and star merging preserve the low-order \
                 moments at every observed node.  --stats shows the \
                 node/element elimination counters." );
          ( false,
            info [ "no-reduce" ]
              ~doc:"Analyze the netlist exactly as written." ) ])

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel fan-out (results are identical \
           for any value).  0 = one per recommended core.")

(* the tree-wide --jobs convention, identical for analyze/timing/verify:
   0 (the CLI default) means "ask the runtime", negatives are rejected
   up front rather than raising from inside the pool *)
let resolve_jobs j =
  if j < 0 then begin
    Printf.eprintf "--jobs must be >= 0 (got %d); 0 = one per recommended core\n" j;
    exit 2
  end;
  if j = 0 then Parallel.default_jobs () else j

(* The analysis options shared by analyze/timing/serve, parsed and
   validated in one place (invalid values exit 2 before any command
   body runs).  [use_cache] only has a flag where a command can run
   cacheless — the sessions behind [serve] own their cache. *)
type common = {
  sparse : bool;
  stats : bool;
  reduce : bool;
  jobs : int;  (* resolved: >= 1 *)
  use_cache : bool;
}

let cache_flag =
  Arg.(
    value
    & vflag true
        [ ( true,
            info [ "cache" ]
              ~doc:
                "Enable the structure-sharing cache (the default): \
                 identical nets reuse one engine, structurally identical \
                 nets reuse one symbolic factorization.  Results are \
                 bit-identical with or without it; --stats shows the \
                 hit/miss counters." );
          ( false,
            info [ "no-cache" ]
              ~doc:"Disable the structure-sharing cache." ) ])

let common_term ?(cache = false) () =
  let mk sparse stats reduce jobs use_cache =
    { sparse; stats; reduce; jobs = resolve_jobs jobs; use_cache }
  in
  Term.(
    const mk $ sparse_arg $ stats_arg $ reduce_arg $ jobs_arg
    $ (if cache then cache_flag else const true))

let model_arg =
  Arg.(
    value & opt string "auto"
    & info [ "model" ] ~docv:"MODEL"
        ~doc:"Net delay model: elmore, auto, or a fixed AWE order.")

let resolve_model s =
  match String.lowercase_ascii s with
  | "elmore" -> Sta.Elmore_model
  | "auto" -> Sta.Awe_auto
  | s -> (
    match int_of_string_opt s with
    | Some q when q >= 1 -> Sta.Awe_model q
    | _ ->
      Printf.eprintf "bad --model %S (elmore | auto | <order>)\n" s;
      exit 2)

let pp_pole ppf (p : Linalg.Cx.t) =
  if p.Linalg.Cx.im = 0. then Format.fprintf ppf "%.5e" p.Linalg.Cx.re
  else Format.fprintf ppf "%.5e %+.5ej" p.Linalg.Cx.re p.Linalg.Cx.im

(* ------------------------------------------------------------------ *)

(* which checker a file gets: .sta designs get the design checks,
   anything else parses as a SPICE-style deck *)
let is_design path = Filename.check_suffix (String.lowercase_ascii path) ".sta"

let lint_file path =
  if is_design path then Lint.check_design (read_design path)
  else
    match Circuit.Parser.parse_file path with
    | deck -> Lint.check_circuit deck.Circuit.Parser.circuit
    | exception Circuit.Parser.Parse_error (line, msg) -> (
      (* value complaints are lint findings, not syntax errors *)
      match Lint.diagnostic_of_parse_error ~line msg with
      | Some d -> [ d ]
      | None ->
        Printf.eprintf "%s:%d: %s\n" path line msg;
        exit 2)
    | exception Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2

let cmd_lint paths strict json quiet sarif baseline write_baseline =
  if json && sarif then begin
    Printf.eprintf "--json and --sarif are mutually exclusive\n";
    exit 2
  end;
  let base =
    match baseline with
    | None -> Lint.Baseline.empty
    | Some path -> (
      match Lint.Baseline.load path with
      | b -> b
      | exception Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2)
  in
  let results =
    List.map (fun path -> (path, Lint.normalize (lint_file path))) paths
  in
  (* the baseline accepts the full current finding set; the filtered
     view below is what gets reported and gated *)
  (match write_baseline with
  | Some path -> Lint.Baseline.save path results
  | None -> ());
  let results =
    List.map
      (fun (path, diags) ->
        (path, Lint.Baseline.filter base ~file:path diags))
      results
  in
  let failed = ref false in
  List.iter
    (fun (_path, diags) ->
      match Lint.gate ~strict diags with
      | Ok () -> ()
      | Error _ -> failed := true)
    results;
  if sarif then begin
    print_endline (Lint.Sarif.report results)
  end
  else if json then begin
    let objects =
      List.map
        (fun (path, diags) ->
          Lint.Diagnostic.list_to_json ~file:path diags)
        results
    in
    match objects with
    | [ one ] -> print_endline one
    | many -> Printf.printf "[%s]\n" (String.concat ", " many)
  end
  else
    List.iter
      (fun (path, diags) ->
        let shown =
          if quiet then
            List.filter
              (fun d ->
                Lint.Diagnostic.effective_severity ~strict d
                = Lint.Diagnostic.Error)
              diags
          else diags
        in
        match shown with
        | [] -> Format.printf "%s: clean@." path
        | ds -> Format.printf "%s:@.%a@." path Lint.Diagnostic.pp_list ds)
      results;
  if !failed then exit 1

let cmd_analyze deck_path node_opt order_opt tstop_opt samples csv compare
    threshold shift { sparse; stats; reduce; jobs; use_cache = _ } =
  let deck = read_deck deck_path in
  (* lint always sees the netlist as written; reduction happens after *)
  lint_gate deck_path (Lint.check_circuit deck.Circuit.Parser.circuit);
  let name, node = resolve_node deck node_opt in
  let stats_before = Awe.Stats.snapshot () in
  let circuit, node =
    if not reduce then (deck.Circuit.Parser.circuit, node)
    else begin
      let circuit = deck.Circuit.Parser.circuit in
      (* preserve every .awe observation node, not just the one shown,
         so a later --node run on the same deck sees the same answer *)
      let ports =
        node
        :: List.filter_map
             (function
               | Circuit.Parser.Awe_node { node = n; _ } ->
                 Circuit.Netlist.find_node circuit n
               | Circuit.Parser.Tran _ -> None)
             deck.Circuit.Parser.directives
      in
      let r = Circuit.Reduce.reduce ~ports circuit in
      let rep = r.Circuit.Reduce.report in
      Awe.Stats.record_reduction
        ~nodes:rep.Circuit.Reduce.nodes_eliminated
        ~elements:rep.Circuit.Reduce.elements_eliminated
        ~parallels:rep.Circuit.Reduce.parallel_merges
        ~series:rep.Circuit.Reduce.series_merges
        ~chains:rep.Circuit.Reduce.chain_lumps
        ~stars:rep.Circuit.Reduce.star_merges;
      (r.Circuit.Reduce.circuit, r.Circuit.Reduce.node_map.(node))
    end
  in
  let sys = Circuit.Mna.build circuit in
  Awe.Stats.record_mna_build ();
  let options =
    { Awe.default_options with Awe.expansion_shift = shift; sparse }
  in
  let engine = Awe.Engine.create ~options sys in
  let a, err =
    match resolve_order deck order_opt with
    | Some q ->
      let a = Awe.Engine.approximate engine ~node ~q in
      (a, Awe.Engine.error_estimate engine ~node ~q)
    | None -> Awe.Engine.auto engine ~node
  in
  let t_stop = resolve_tstop deck tstop_opt sys node in
  Format.printf "node %s: order %d approximation@." name a.Awe.q;
  Format.printf "error estimate: %.3g%%@." (100. *. err);
  if stats then
    Format.printf "engine counters:@.%a@." Awe.Stats.pp
      (Awe.Stats.diff (Awe.Stats.snapshot ()) stats_before);
  Format.printf "steady state: %.6g V@." (Awe.steady_state a);
  Format.printf "poles (dominant first):@.";
  List.iter (fun p -> Format.printf "  %a@." pp_pole p) (Awe.poles a);
  (match threshold with
  | Some th -> (
    match Awe.delay a ~threshold:th ~t_max:t_stop with
    | Some t -> Format.printf "delay to %.3g V: %.6g s@." th t
    | None -> Format.printf "threshold %.3g V never crossed@." th)
  | None -> ());
  if compare then begin
    (* the reference simulation is independent of the AWE waveform
       sampling — overlap the two on the pool *)
    let wa, ws =
      Parallel.with_pool ~jobs (fun pool ->
          match
            Parallel.map pool
              (function
                | `Awe -> `Wa (Awe.waveform a ~t_stop ~samples)
                | `Sim ->
                  let r =
                    Transim.Transient.simulate sys ~t_stop
                      ~steps:(8 * samples)
                  in
                  `Ws (Transim.Transient.node_waveform r node))
              [| `Awe; `Sim |]
          with
          | [| `Wa wa; `Ws ws |] -> (wa, ws)
          | _ -> assert false)
    in
    Format.printf "relative L2 error vs simulation: %.3g%%@."
      (100. *. Waveform.relative_l2_error ws wa);
    print_string
      (Waveform.ascii_plot ~label:"awe (*) vs simulation (+)" [ wa; ws ]);
    match csv with
    | Some file ->
      let oc = open_out file in
      output_string oc (Waveform.pair_to_csv ~labels:("awe", "sim") wa ws);
      close_out oc;
      Format.printf "wrote %s@." file
    | None -> ()
  end
  else begin
    let wa = Awe.waveform a ~t_stop ~samples in
    print_string (Waveform.ascii_plot ~label:"awe approximation" [ wa ]);
    match csv with
    | Some file ->
      let oc = open_out file in
      output_string oc (Waveform.to_csv wa);
      close_out oc;
      Format.printf "wrote %s@." file
    | None -> ()
  end

let cmd_poles deck_path node_opt order_opt actual =
  let deck = read_deck deck_path in
  let name, node = resolve_node deck node_opt in
  let sys = Circuit.Mna.build deck.Circuit.Parser.circuit in
  let q = Option.value ~default:2 (resolve_order deck order_opt) in
  (match Awe.approximate sys ~node ~q with
  | a ->
    Format.printf "AWE order-%d poles at %s:@." q name;
    List.iter2
      (fun p (_, k) ->
        Format.printf "  pole %a   residue %a@." pp_pole p pp_pole k)
      (Awe.poles a) (Awe.residues a);
    (match Awe.Approx.zeros a.Awe.base with
    | [] -> ()
    | zs ->
      Format.printf "model zeros:@.";
      List.iter (fun z -> Format.printf "  %a@." pp_pole z) zs
    | exception Invalid_argument _ -> ())
  | exception Awe.Unstable_fit ps ->
    Format.printf "order %d fit is unstable (poles:" q;
    List.iter (Format.printf " %a" pp_pole) ps;
    Format.printf "); increase the order@."
  | exception Awe.Degenerate msg ->
    Format.printf "order %d fit is degenerate: %s@." q msg);
  if actual then begin
    let g = Circuit.Mna.g sys and c = Circuit.Mna.c sys in
    let f = Linalg.Lu.factor g in
    let n = Circuit.Mna.size sys in
    let m = Linalg.Matrix.create n n in
    for j = 0 to n - 1 do
      let col = Linalg.Lu.solve f (Linalg.Matrix.col c j) in
      for i = 0 to n - 1 do
        m.(i).(j) <- -.col.(i)
      done
    done;
    Format.printf "actual circuit poles:@.";
    List.iter
      (fun p -> Format.printf "  %a@." pp_pole p)
      (Linalg.Eigen.circuit_poles m)
  end

let cmd_sim deck_path node_opt tstop_opt samples csv =
  let deck = read_deck deck_path in
  let name, node = resolve_node deck node_opt in
  let sys = Circuit.Mna.build deck.Circuit.Parser.circuit in
  let t_stop = resolve_tstop deck tstop_opt sys node in
  let r = Transim.Transient.simulate sys ~t_stop ~steps:(8 * samples) in
  let w = Transim.Transient.node_waveform r node in
  Format.printf "transient at %s over %.4g s@." name t_stop;
  (match Waveform.delay_50pct w with
  | Some d -> Format.printf "50%% delay: %.6g s@." d
  | None -> ());
  print_string (Waveform.ascii_plot ~label:("v(" ^ name ^ ")") [ w ]);
  match csv with
  | Some file ->
    let oc = open_out file in
    output_string oc (Waveform.to_csv w);
    close_out oc;
    Format.printf "wrote %s@." file
  | None -> ()

let cmd_moments deck_path node_opt count =
  let deck = read_deck deck_path in
  let name, node = resolve_node deck node_opt in
  let sys = Circuit.Mna.build deck.Circuit.Parser.circuit in
  let out_var = Circuit.Mna.node_var sys node in
  let engine = Awe.Moments.make sys in
  let op0 = Circuit.Dc.initial sys in
  let op0p = Circuit.Dc.at_zero_plus sys op0 in
  let prob = Awe.Moments.base_problem engine op0p in
  let mu = Awe.Moments.mu (Awe.Moments.vectors engine prob ~count) ~out_var in
  Format.printf "moment power sums at %s (mu_j = sum_l k_l z_l^j):@." name;
  Array.iteri (fun j v -> Format.printf "  mu_%d = %.12e@." j v) mu;
  if Float.abs mu.(0) > 1e-300 && count > 1 then
    Format.printf "generalized Elmore delay -mu_1/mu_0 = %.6g s@."
      (-.(mu.(1) /. mu.(0)))

(* minimal JSON emission for the timing command: numbers print
   round-trippable (%.17g), non-finite values become null (a design
   with no constraints has infinite slack) *)
let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.17g" f else "null"

let json_pin = function
  | None -> "null"
  | Some inst -> json_string inst

let slack_json (s : Sta.pin_slack) =
  Printf.sprintf
    "{\"net\":%s,\"pin\":%s,\"transition\":%s,\"arrival\":%s,\"required\":%s,\
     \"slack\":%s}"
    (json_string s.Sta.sp_net) (json_pin s.Sta.sp_pin)
    (json_string (Sta.transition_string s.Sta.sp_transition))
    (json_float s.Sta.sp_arrival)
    (json_float s.Sta.sp_required)
    (json_float s.Sta.sp_slack)

let path_json (p : Sta.path) =
  let stage (st : Sta.path_stage) =
    Printf.sprintf
      "{\"net\":%s,\"pin\":%s,\"gate_delay\":%s,\"net_delay\":%s,\"arrival\":%s}"
      (json_string st.Sta.st_net) (json_pin st.Sta.st_pin)
      (json_float st.Sta.st_gate_delay)
      (json_float st.Sta.st_net_delay)
      (json_float st.Sta.st_arrival)
  in
  Printf.sprintf
    "{\"endpoint\":%s,\"pin\":%s,\"transition\":%s,\"input_arrival\":%s,\
     \"arrival\":%s,\"required\":%s,\"slack\":%s,\"stages\":[%s]}"
    (json_string p.Sta.path_endpoint)
    (json_pin p.Sta.path_pin)
    (json_string (Sta.transition_string p.Sta.path_transition))
    (json_float p.Sta.path_input_arrival)
    (json_float p.Sta.path_arrival)
    (json_float p.Sta.path_required)
    (json_float p.Sta.path_slack)
    (String.concat "," (List.map stage p.Sta.path_stages))

let report_json (r : Sta.report) paths =
  Printf.sprintf
    "{\"critical_arrival\":%s,\"critical_path\":[%s],\"worst_slack\":%s,\
     \"slacks\":[%s],\"paths\":[%s],\"failures\":[%s]}"
    (json_float r.Sta.critical_arrival)
    (String.concat "," (List.map json_string r.Sta.critical_path))
    (json_float r.Sta.worst_slack)
    (String.concat "," (List.map slack_json r.Sta.slacks))
    (String.concat "," (List.map path_json paths))
    (String.concat ","
       (List.map
          (fun f ->
            Printf.sprintf "{\"net\":%s,\"reason\":%s}"
              (json_string f.Sta.failed_net)
              (json_string f.Sta.reason))
          r.Sta.failures))

let corners_json (cr : Sta.corners_report) paths =
  Printf.sprintf
    "{\"corners\":[%s],\"worst_corner\":%s,\"worst_slack\":%s,\
     \"critical_arrival\":%s,\"paths\":[%s]}"
    (String.concat ","
       (List.map
          (fun (s : Sta.corner_summary) ->
            Printf.sprintf
              "{\"name\":%s,\"critical_arrival\":%s,\"worst_slack\":%s}"
              (json_string s.Sta.cs_name)
              (json_float s.Sta.cs_critical_arrival)
              (json_float s.Sta.cs_worst_slack))
          cr.Sta.summary))
    (json_string cr.Sta.worst_corner)
    (json_float cr.Sta.worst_slack_overall)
    (json_float cr.Sta.critical_arrival_overall)
    (String.concat "," (List.map path_json paths))

let pp_slack_table ppf (r : Sta.report) =
  Format.fprintf ppf "@[<v>slack (worst first):";
  List.iter
    (fun (s : Sta.pin_slack) ->
      Format.fprintf ppf
        "@,  %-10s %-8s %-4s arrival %.4g ns  required %.4g ns  slack %.4g \
         ns"
        s.Sta.sp_net
        (match s.Sta.sp_pin with None -> "(driver)" | Some i -> i)
        (Sta.transition_string s.Sta.sp_transition)
        (s.Sta.sp_arrival *. 1e9)
        (s.Sta.sp_required *. 1e9)
        (s.Sta.sp_slack *. 1e9))
    r.Sta.slacks;
  Format.fprintf ppf "@,worst slack: %.4g ns%s@]" (r.Sta.worst_slack *. 1e9)
    (if r.Sta.worst_slack < 0. then "  (VIOLATED)" else "")

let cmd_timing design_path model { sparse; stats; reduce; jobs; use_cache }
    strict slack_only top_k corners_path json =
  let design = read_design design_path in
  lint_gate design_path (Lint.check_design design);
  let model = resolve_model model in
  if top_k < 0 then begin
    Printf.eprintf "--top-k must be non-negative\n";
    exit 2
  end;
  let timing_failure = function
    | Sta.Not_a_dag nets ->
      Printf.eprintf "combinational cycle through: %s\n"
        (String.concat ", " nets);
      exit 1
    | Sta.Malformed msg ->
      Printf.eprintf "malformed design: %s\n" msg;
      exit 1
    | e -> raise e
  in
  match corners_path with
  | None -> (
    let cache = if use_cache then Some (Sta.create_cache ()) else None in
    match Sta.analyze ~model ~sparse ~jobs ~strict ~reduce ?cache design with
    | report ->
      let paths =
        if top_k > 0 then Sta.critical_paths design report ~k:top_k else []
      in
      if json then print_endline (report_json report paths)
      else begin
        if slack_only then Format.printf "%a@." pp_slack_table report
        else Format.printf "%a@." (Sta.pp_report ~verbose:stats) report;
        if paths <> [] then Format.printf "%a@." Sta.pp_paths paths
      end;
      (* tolerant mode still fails the run — it just times what it can
         and reports every diagnostic first; a violated constraint
         fails it too (signoff semantics) *)
      if report.Sta.failures <> [] then exit 1;
      if report.Sta.worst_slack < 0. then exit 1
    | exception e -> timing_failure e)
  | Some path -> (
    let corners =
      match Circuit.Corner.parse_file path with
      | corners -> corners
      | exception Circuit.Corner.Parse_error (line, msg) ->
        Printf.eprintf "%s:%d: %s\n" path line msg;
        exit 2
      | exception Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
    in
    match
      Sta.analyze_corners ~model ~sparse ~jobs ~strict ~reduce
        ~cache:use_cache design corners
    with
    | cr ->
      (* top-K paths are reported at the worst corner: the one whose
         violations (if any) bind the signoff *)
      let worst_run =
        List.find
          (fun (r : Sta.corner_run) ->
            r.Sta.run_corner.Circuit.Corner.name = cr.Sta.worst_corner)
          cr.Sta.runs
      in
      let paths =
        if top_k > 0 then
          Sta.critical_paths
            (Sta.corner_design design worst_run.Sta.run_corner)
            worst_run.Sta.run_report ~k:top_k
        else []
      in
      if json then print_endline (corners_json cr paths)
      else begin
        Format.printf "%a@." Sta.pp_corners cr;
        if slack_only then
          List.iter
            (fun (r : Sta.corner_run) ->
              Format.printf "corner %s:@.%a@."
                r.Sta.run_corner.Circuit.Corner.name pp_slack_table
                r.Sta.run_report)
            cr.Sta.runs;
        if paths <> [] then
          Format.printf "critical paths at corner %s:@.%a@."
            cr.Sta.worst_corner Sta.pp_paths paths;
        if stats then
          List.iter
            (fun (r : Sta.corner_run) ->
              Format.printf "corner %s counters:@.%a@."
                r.Sta.run_corner.Circuit.Corner.name Awe.Stats.pp
                r.Sta.run_report.Sta.stats)
            cr.Sta.runs
      end;
      if List.exists (fun (r : Sta.corner_run) -> r.Sta.run_report.Sta.failures <> []) cr.Sta.runs
      then exit 1;
      if cr.Sta.worst_slack_overall < 0. then exit 1
    | exception e -> timing_failure e)

let cmd_verify seed count prop_count fuzz_count rel_l2 repro_dir quiet jobs =
  let config =
    { Verify.seed;
      count;
      prop_count;
      fuzz_count;
      tol = { Verify.Oracle.default_tol with Verify.Oracle.rel_l2 };
      repro_dir;
      jobs = resolve_jobs jobs }
  in
  let progress =
    if quiet then None else Some (fun msg -> Printf.eprintf "%s\n%!" msg)
  in
  let report = Verify.run ?progress config in
  Format.printf "%a@." Verify.pp_report report;
  if not (Verify.passed report) then exit 1

(* awesim serve: a long-lived ECO session daemon.  One Serve.t (and so
   at most one loaded session) per process; the protocol itself is in
   Sta.Serve, the CLI only owns the transport — stdin/stdout by
   default, a Unix-domain socket with --socket (connections are served
   one at a time and the session persists across them). *)
let cmd_serve { sparse; stats; reduce; jobs; use_cache = _ } model socket_path
    design_path =
  let model = resolve_model model in
  let gate d =
    match Lint.gate ~strict:false (Lint.normalize (Lint.check_design d)) with
    | Ok () -> Ok ()
    | Error offending ->
      Error (Format.asprintf "@[<v>%a@]" Lint.Diagnostic.pp_list offending)
  in
  let stats_before = Awe.Stats.snapshot () in
  let t = Sta.Serve.create ~model ~sparse ~jobs ~reduce ~gate () in
  (match design_path with
  | None -> ()
  | Some path ->
    let r = Sta.Serve.handle t ("load " ^ path) in
    print_endline r.Sta.Serve.body);
  (* one request line in, one JSON line out; returns true on [quit] *)
  let serve_channel ic oc =
    let rec loop () =
      match input_line ic with
      | exception End_of_file -> false
      | line ->
        let r = Sta.Serve.handle t line in
        output_string oc r.Sta.Serve.body;
        output_char oc '\n';
        flush oc;
        if r.Sta.Serve.quit then true else loop ()
    in
    loop ()
  in
  (match socket_path with
  | None -> ignore (serve_channel stdin stdout)
  | Some path ->
    (* reclaim a stale socket file, and only a socket file *)
    (match (Unix.stat path).Unix.st_kind with
    | Unix.S_SOCK -> Sys.remove path
    | _ ->
      Printf.eprintf "%s exists and is not a socket\n" path;
      exit 2
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind sock (Unix.ADDR_UNIX path);
    Unix.listen sock 1;
    Printf.eprintf "awesim serve: listening on %s\n%!" path;
    let rec accept_loop () =
      let fd, _ = Unix.accept sock in
      let quit =
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        (* a dropped connection ends the connection, not the server *)
        try serve_channel ic oc with Sys_error _ -> false
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if not quit then accept_loop ()
    in
    accept_loop ();
    Unix.close sock;
    try Sys.remove path with Sys_error _ -> ());
  if stats then
    Format.eprintf "engine counters:@.%a@." Awe.Stats.pp
      (Awe.Stats.diff (Awe.Stats.snapshot ()) stats_before)

let cmd_elmore deck_path =
  let deck = read_deck deck_path in
  let circuit = deck.Circuit.Parser.circuit in
  match Awe.Elmore.delays circuit with
  | tds ->
    Format.printf "Elmore delays:@.";
    Array.iteri
      (fun node td ->
        if node <> Circuit.Element.ground && tds.(node) > 0. then
          Format.printf "  %-10s %.6g s@."
            (Circuit.Netlist.node_name circuit node)
            td)
      tds
  | exception Invalid_argument msg ->
    Format.printf "not an RC tree (%s); falling back to moment-based delays@."
      msg;
    let sys = Circuit.Mna.build circuit in
    for node = 1 to circuit.Circuit.Netlist.node_count - 1 do
      match Awe.elmore_equivalent sys ~node with
      | td ->
        Format.printf "  %-10s %.6g s@."
          (Circuit.Netlist.node_name circuit node)
          td
      | exception _ -> ()
    done

(* ------------------------------------------------------------------ *)

let analyze_t =
  let compare =
    Arg.(value & flag & info [ "compare" ] ~doc:"Also run the simulator.")
  in
  let threshold =
    Arg.(
      value
      & opt (some float) None
      & info [ "threshold" ] ~docv:"VOLTS" ~doc:"Report delay to a level.")
  in
  let shift =
    Arg.(
      value & opt float 0.
      & info [ "shift" ] ~docv:"RAD/S"
          ~doc:"Moment expansion point s0 (default 0, the paper's choice).")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"AWE-approximate a node's response")
    Term.(
      const cmd_analyze $ deck_arg $ node_arg $ order_arg $ tstop_arg
      $ samples_arg $ csv_arg $ compare $ threshold $ shift
      $ common_term ())

let poles_t =
  let actual =
    Arg.(
      value & flag
      & info [ "actual" ] ~doc:"Also print the exact circuit poles.")
  in
  Cmd.v
    (Cmd.info "poles" ~doc:"Print AWE poles and residues")
    Term.(const cmd_poles $ deck_arg $ node_arg $ order_arg $ actual)

let sim_t =
  Cmd.v
    (Cmd.info "sim" ~doc:"Run the built-in transient simulator")
    Term.(
      const cmd_sim $ deck_arg $ node_arg $ tstop_arg $ samples_arg $ csv_arg)

let elmore_t =
  Cmd.v
    (Cmd.info "elmore" ~doc:"Print per-node Elmore delays")
    Term.(const cmd_elmore $ deck_arg)

let moments_t =
  let count =
    Arg.(
      value & opt int 6
      & info [ "count" ] ~docv:"N" ~doc:"Number of moments to print.")
  in
  Cmd.v
    (Cmd.info "moments" ~doc:"Print the raw moment sequence at a node")
    Term.(const cmd_moments $ deck_arg $ node_arg $ count)

let timing_t =
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Abort on the first net that fails to time.  The default keeps \
             timing sibling nets and reports every per-net diagnostic \
             (still exiting nonzero).")
  in
  let slack =
    Arg.(
      value & flag
      & info [ "slack" ]
          ~doc:
            "Print only the slack table (per-pin required/arrival/slack at \
             the binding transition, worst first) instead of the full \
             per-net report.  Slack comes from the design's constraint and \
             clock cards.")
  in
  let top_k =
    Arg.(
      value & opt int 0
      & info [ "top-k" ] ~docv:"K"
          ~doc:
            "Also print the K worst critical paths, stage by stage (with \
             --corners: at the worst corner).")
  in
  let corners =
    Arg.(
      value
      & opt (some file) None
      & info [ "corners" ] ~docv:"SPEC"
          ~doc:
            "Analyze at every corner of a JSON corner spec (named derate \
             sets for wire R/C and cell drive/cap/intrinsic).  Corners \
             share one pattern-tier cache store; each keeps a private \
             exact tier.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the report as JSON on stdout (non-finite values become \
             null).")
  in
  Cmd.v
    (Cmd.info "timing" ~doc:"Static timing analysis of a design file")
    Term.(
      const cmd_timing $ deck_arg $ model_arg $ common_term ~cache:true ()
      $ strict $ slack $ top_k $ corners $ json)

let lint_t =
  let paths =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:"SPICE-style decks, or timing designs (.sta).")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Treat warnings as errors (the CI gate mode).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Machine-readable diagnostics on stdout.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"Only print blocking diagnostics.")
  in
  let sarif =
    Arg.(
      value & flag
      & info [ "sarif" ]
          ~doc:
            "Emit a SARIF 2.1.0 log on stdout (mutually exclusive \
             with $(b,--json)).")
  in
  let baseline =
    Arg.(
      value
      & opt (some file) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Suppress findings whose fingerprints appear in this \
             baseline file; only new findings are reported and gated.")
  in
  let write_baseline =
    Arg.(
      value
      & opt (some string) None
      & info [ "write-baseline" ] ~docv:"FILE"
          ~doc:
            "Write the fingerprints of the current findings to FILE \
             (accepting them for future $(b,--baseline) runs).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically predict singular solves and degenerate AWE models \
          from the parsed deck, before any factorization")
    Term.(
      const cmd_lint $ paths $ strict $ json $ quiet $ sarif $ baseline
      $ write_baseline)

let verify_t =
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N" ~doc:"Base seed; the sweep is deterministic in it.")
  in
  let count =
    Arg.(
      value & opt int 200
      & info [ "count" ] ~docv:"K"
          ~doc:"Random circuits checked against the transient oracle.")
  in
  let prop_count =
    Arg.(
      value & opt int 60
      & info [ "prop-count" ] ~docv:"K"
          ~doc:"Seeds tried per metamorphic property.")
  in
  let fuzz_count =
    Arg.(
      value & opt int 1000
      & info [ "fuzz-count" ] ~docv:"K" ~doc:"Fuzz inputs per parser.")
  in
  let rel_l2 =
    Arg.(
      value
      & opt float Verify.Oracle.default_tol.Verify.Oracle.rel_l2
      & info [ "rel-l2" ] ~docv:"FRAC"
          ~doc:"Oracle waveform tolerance (transient-normalized L2).")
  in
  let repro_dir =
    Arg.(
      value
      & opt (some string) (Some "decks")
      & info [ "repro-dir" ] ~docv:"DIR"
          ~doc:"Where shrunk fuzz failures are written as repro decks.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress progress on stderr.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Run the differential verification sweep: random circuits against \
          the transient oracle, metamorphic properties, and parser fuzzing")
    Term.(
      const cmd_verify $ seed $ count $ prop_count $ fuzz_count $ rel_l2
      $ repro_dir $ quiet $ jobs_arg)

let serve_t =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket instead of stdin/stdout.  \
             Connections are served one at a time; the loaded session \
             (and its warm incremental state) persists across them.")
  in
  let design =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"DESIGN"
          ~doc:"Design file to load on startup (optional; the $(b,load) \
                command loads or replaces a design at any time).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a long-lived ECO timing session: load a design once, then \
          stream edit/timing/revert commands over a line protocol and pay \
          only dirty-cone re-analysis per query.  One command line in, one \
          JSON line out; see the protocol reference in the README.")
    Term.(const cmd_serve $ common_term () $ model_arg $ socket $ design)

let () =
  let doc = "asymptotic waveform evaluation for timing analysis" in
  let group =
    Cmd.group (Cmd.info "awesim" ~version:"1.0.0" ~doc)
      [ analyze_t; poles_t; sim_t; elmore_t; moments_t; timing_t; lint_t;
        verify_t; serve_t ]
  in
  exit
    (try Cmd.eval group with
    (* lint-clean decks can still be numerically singular for one
       specific value assignment; keep the typed message, not a trace *)
    | Circuit.Mna.Singular_dc msg ->
      Printf.eprintf "error: %s\n" msg;
      1)
