(* Integration tests: every shipped deck parses, and the full
   deck -> MNA -> AWE -> delay pipeline matches the simulator. *)

open Circuit

(* `dune runtest` runs in the test's build directory (decks two levels
   up); `dune exec` runs from the workspace root *)
let deck name =
  let candidates =
    [ Filename.concat "../../decks" name; Filename.concat "decks" name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> Parser.parse_file path
  | None -> Alcotest.failf "deck %s not found" name

let awe_target d =
  (* resolve the .awe directive: node and order *)
  List.find_map
    (function
      | Parser.Awe_node { node; order } -> Some (node, order)
      | Parser.Tran _ -> None)
    d.Parser.directives

let tran_stop d =
  List.find_map
    (function
      | Parser.Tran { t_stop; _ } -> Some t_stop
      | Parser.Awe_node _ -> None)
    d.Parser.directives

let all_decks =
  [ "fig4.sp"; "fig9.sp"; "fig16.sp"; "fig22.sp"; "fig25.sp";
    "charge_share.sp"; "coupled_lines.sp" ]

let test_all_parse () =
  List.iter
    (fun name ->
      let d = deck name in
      Alcotest.(check bool)
        (name ^ " has elements")
        true
        (Netlist.element_count d.Parser.circuit > 0);
      Alcotest.(check bool)
        (name ^ " has directives")
        true
        (awe_target d <> None && tran_stop d <> None))
    all_decks

let test_pipeline_matches_simulator () =
  List.iter
    (fun name ->
      let d = deck name in
      let sys = Mna.build d.Parser.circuit in
      let node_name, order =
        match awe_target d with Some t -> t | None -> assert false
      in
      let node =
        match Netlist.find_node d.Parser.circuit node_name with
        | Some n -> n
        | None -> Alcotest.failf "%s: unknown awe node" name
      in
      let q = Option.value order ~default:2 in
      let t_stop = Option.get (tran_stop d) in
      match Awe.approximate sys ~node ~q with
      | a ->
        let r = Transim.Transient.simulate sys ~t_stop ~steps:4000 in
        let wex = Transim.Transient.node_waveform r node in
        let wap = Awe.waveform a ~t_stop ~samples:4001 in
        let range =
          Array.fold_left Float.max neg_infinity wex.Waveform.values
          -. Array.fold_left Float.min infinity wex.Waveform.values
        in
        let err = Waveform.max_abs_error wex wap in
        Alcotest.(check bool)
          (Printf.sprintf "%s: AWE q%d tracks simulation (err %.3g of %.3g)"
             name q err range)
          true
          (err < 0.12 *. Float.max range 1e-3)
      | exception Awe.Degenerate _ -> Alcotest.failf "%s: degenerate" name)
    all_decks

let test_fig4_deck_is_tree () =
  let d = deck "fig4.sp" in
  Alcotest.(check bool) "rc tree" true
    (Topology.analyze d.Parser.circuit).Topology.is_rc_tree

let test_fig22_deck_has_floating_group () =
  let d = deck "fig22.sp" in
  let sys = Mna.build d.Parser.circuit in
  Alcotest.(check int) "one charge group" 1 (Mna.charge_group_count sys)

let test_charge_share_ics_applied () =
  let d = deck "charge_share.sp" in
  let sys = Mna.build d.Parser.circuit in
  let op = Dc.initial sys in
  (* C6's node starts at 5 V, C7's at 0 *)
  let v name =
    match Netlist.find_node d.Parser.circuit name with
    | Some n -> Mna.voltage sys op.Dc.x n
    | None -> nan
  in
  Alcotest.(check (float 1e-9)) "n6 at 5" 5. (v "n6");
  Alcotest.(check (float 1e-9)) "n7 at 0" 0. (v "n7")

let () =
  Alcotest.run "decks"
    [ ( "decks",
        [ Alcotest.test_case "all parse" `Quick test_all_parse;
          Alcotest.test_case "pipeline vs simulator" `Slow
            test_pipeline_matches_simulator;
          Alcotest.test_case "fig4 topology" `Quick test_fig4_deck_is_tree;
          Alcotest.test_case "fig22 floating group" `Quick
            test_fig22_deck_has_floating_group;
          Alcotest.test_case "charge-share ICs" `Quick
            test_charge_share_ics_applied ] ) ]
