(* Tests for the transient simulator against closed-form circuit
   solutions. *)

open Circuit

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let max_err wave f =
  let m = ref 0. in
  Array.iteri
    (fun i t ->
      m := Float.max !m (Float.abs (wave.Waveform.values.(i) -. f t)))
    wave.Waveform.times;
  !m

(* ------------------------------------------------------------------ *)

let rc_lowpass () =
  let b = Netlist.create () in
  Netlist.add_v b "v1" "in" "0" (Element.Step { v0 = 0.; v1 = 1. });
  Netlist.add_r b "r1" "in" "out" 1e3;
  Netlist.add_c b "c1" "out" "0" 1e-6;
  let out = Netlist.node b "out" in
  (Netlist.freeze b, out)

let test_rc_step_trapezoidal () =
  let ckt, out = rc_lowpass () in
  let sys = Mna.build ckt in
  let r = Transim.Transient.simulate sys ~t_stop:5e-3 ~steps:2000 in
  let w = Transim.Transient.node_waveform r out in
  Alcotest.(check bool) "accurate" true
    (max_err w (fun t -> 1. -. exp (-.t /. 1e-3)) < 1e-5)

let test_rc_step_backward_euler () =
  let ckt, out = rc_lowpass () in
  let sys = Mna.build ckt in
  let r =
    Transim.Transient.simulate ~integration:Transim.Transient.Backward_euler
      sys ~t_stop:5e-3 ~steps:5000
  in
  let w = Transim.Transient.node_waveform r out in
  (* BE is first order: looser tolerance *)
  Alcotest.(check bool) "be accurate" true
    (max_err w (fun t -> 1. -. exp (-.t /. 1e-3)) < 1e-3)

let test_rc_discharge_with_ic () =
  let b = Netlist.create () in
  Netlist.add_r b "r1" "out" "0" 1e3;
  Netlist.add_c ~ic:2. b "c1" "out" "0" 1e-6;
  let out = Netlist.node b "out" in
  let sys = Mna.build (Netlist.freeze b) in
  let r = Transim.Transient.simulate sys ~t_stop:5e-3 ~steps:2000 in
  let w = Transim.Transient.node_waveform r out in
  Alcotest.(check bool) "discharge" true
    (max_err w (fun t -> 2. *. exp (-.t /. 1e-3)) < 1e-5)

let test_rl_current_rise () =
  (* series RL driven by step: i(t) = V/R (1 - e^(-Rt/L)) *)
  let b = Netlist.create () in
  Netlist.add_v b "v1" "in" "0" (Element.Step { v0 = 0.; v1 = 1. });
  Netlist.add_r b "r1" "in" "m" 10.;
  Netlist.add_l b "l1" "m" "0" 1e-3;
  let ckt = Netlist.freeze b in
  let sys = Mna.build ckt in
  let r = Transim.Transient.simulate sys ~t_stop:1e-3 ~steps:4000 in
  let l_idx =
    match Netlist.inductors ckt with (i, _) :: _ -> i | [] -> assert false
  in
  let w = Transim.Transient.branch_current_waveform r l_idx in
  Alcotest.(check bool) "rl current" true
    (max_err w (fun t -> 0.1 *. (1. -. exp (-1e4 *. t))) < 1e-4)

let test_lc_oscillation () =
  (* lossless LC with charged cap: v(t) = cos(w0 t), w0 = 1/sqrt(LC) *)
  let b = Netlist.create () in
  Netlist.add_l b "l1" "out" "0" 1e-3;
  Netlist.add_c ~ic:1. b "c1" "out" "0" 1e-6;
  let out = Netlist.node b "out" in
  let sys = Mna.build (Netlist.freeze b) in
  let w0 = 1. /. sqrt (1e-3 *. 1e-6) in
  let period = 2. *. Float.pi /. w0 in
  let r = Transim.Transient.simulate sys ~t_stop:(3. *. period) ~steps:30000 in
  let w = Transim.Transient.node_waveform r out in
  Alcotest.(check bool) "lc oscillation" true
    (max_err w (fun t -> cos (w0 *. t)) < 2e-2);
  (* trapezoidal integration conserves the oscillation amplitude *)
  let late_peak =
    Array.fold_left Float.max neg_infinity
      (Array.sub w.Waveform.values 20000 10000)
  in
  Alcotest.(check bool) "amplitude preserved" true (late_peak > 0.98)

let test_series_rlc_underdamped () =
  (* R-L-C series, step: analytic underdamped response at the cap *)
  let rr = 100. and ll = 1e-3 and cc = 1e-8 in
  let b = Netlist.create () in
  Netlist.add_v b "v1" "in" "0" (Element.Step { v0 = 0.; v1 = 1. });
  Netlist.add_r b "r1" "in" "a" rr;
  Netlist.add_l b "l1" "a" "out" ll;
  Netlist.add_c b "c1" "out" "0" cc;
  let out = Netlist.node b "out" in
  let sys = Mna.build (Netlist.freeze b) in
  let alpha = rr /. (2. *. ll) in
  let w0 = 1. /. sqrt (ll *. cc) in
  let wd = sqrt ((w0 *. w0) -. (alpha *. alpha)) in
  let exact t =
    1.
    -. (exp (-.alpha *. t)
       *. (cos (wd *. t) +. (alpha /. wd *. sin (wd *. t))))
  in
  let r = Transim.Transient.simulate sys ~t_stop:5e-4 ~steps:20000 in
  let w = Transim.Transient.node_waveform r out in
  Alcotest.(check bool) "rlc underdamped" true (max_err w exact < 2e-3)

let test_ramp_input () =
  (* RC driven by a unit ramp r(t)=t/T: v = (t - tau(1 - e^(-t/tau)))/T
     during the ramp *)
  let tau = 1e-3 and t_rise = 4e-3 in
  let b = Netlist.create () in
  Netlist.add_v b "v1" "in" "0"
    (Element.Ramp { v0 = 0.; v1 = 1.; t_delay = 0.; t_rise });
  Netlist.add_r b "r1" "in" "out" 1e3;
  Netlist.add_c b "c1" "out" "0" 1e-6;
  let out = Netlist.node b "out" in
  let sys = Mna.build (Netlist.freeze b) in
  let r = Transim.Transient.simulate sys ~t_stop:t_rise ~steps:8000 in
  let w = Transim.Transient.node_waveform r out in
  let exact t = (t -. (tau *. (1. -. exp (-.t /. tau)))) /. t_rise in
  Alcotest.(check bool) "ramp response" true (max_err w exact < 1e-5)

let test_charge_sharing_two_caps () =
  (* C1 (1 uF, 2 V) dumped through R into C2 (1 uF, 0 V): final 1 V *)
  let b = Netlist.create () in
  Netlist.add_c ~ic:2. b "c1" "a" "0" 1e-6;
  Netlist.add_r b "r1" "a" "b" 1e3;
  Netlist.add_c ~ic:0. b "c2" "b" "0" 1e-6;
  let a = Netlist.node b "a" in
  let bn = Netlist.node b "b" in
  let sys = Mna.build (Netlist.freeze b) in
  let r = Transim.Transient.simulate sys ~t_stop:10e-3 ~steps:4000 in
  let wa = Transim.Transient.node_waveform r a in
  let wb = Transim.Transient.node_waveform r bn in
  check_close ~tol:1e-4 "a settles to 1" 1. (Waveform.final_value wa);
  check_close ~tol:1e-4 "b settles to 1" 1. (Waveform.final_value wb)

let test_floating_island_charge_conserved () =
  let f22, victim = Samples.fig22 () in
  let sys = Mna.build f22.Samples.circuit in
  let r = Transim.Transient.simulate sys ~t_stop:20e-9 ~steps:8000 in
  let wv = Transim.Transient.node_waveform r victim in
  (* steady state of the C11/C12 divider from 5 V: 5 * 85/(85+255) *)
  check_close ~tol:1e-3 "victim final" 1.25 (Waveform.final_value wv)

let test_voltage_across () =
  let ckt, _ = rc_lowpass () in
  let sys = Mna.build ckt in
  let r = Transim.Transient.simulate sys ~t_stop:5e-3 ~steps:1000 in
  (* element 1 is r1: voltage across it decays from 1 to 0 *)
  let w = Transim.Transient.voltage_across r 1 in
  Alcotest.(check bool) "initial drop" true (w.Waveform.values.(1) > 0.9);
  Alcotest.(check bool) "final drop" true (Waveform.final_value w < 1e-2)

let test_invalid_args () =
  let ckt, _ = rc_lowpass () in
  let sys = Mna.build ckt in
  Alcotest.check_raises "bad steps"
    (Invalid_argument "Transient.simulate: steps must be >= 1") (fun () ->
      ignore (Transim.Transient.simulate sys ~t_stop:1. ~steps:0));
  Alcotest.check_raises "bad t_stop"
    (Invalid_argument "Transient.simulate: t_stop must be > 0") (fun () ->
      ignore (Transim.Transient.simulate sys ~t_stop:0. ~steps:10))

let prop_final_value_matches_dc =
  QCheck2.Test.make
    ~name:"random RC tree settles to the source voltage" ~count:25
    QCheck2.Gen.(int_range 2 12)
    (fun n ->
      let ckt, leaf = Samples.random_rc_tree ~seed:n ~n () in
      let sys = Mna.build ckt in
      (* pick a horizon ~ 20x the leaf Elmore delay *)
      let r = Transim.Transient.simulate sys ~t_stop:1e-7 ~steps:2000 in
      let w = Transim.Transient.node_waveform r leaf in
      Float.abs (Waveform.final_value w -. 1.) < 1e-3)

let prop_tr_matches_be =
  QCheck2.Test.make
    ~name:"trapezoidal and backward Euler agree in the limit" ~count:10
    QCheck2.Gen.(int_range 2 8)
    (fun n ->
      let ckt, leaf = Samples.random_rc_tree ~seed:(100 + n) ~n () in
      let sys = Mna.build ckt in
      let tr = Transim.Transient.simulate sys ~t_stop:1e-8 ~steps:4000 in
      let be =
        Transim.Transient.simulate
          ~integration:Transim.Transient.Backward_euler sys ~t_stop:1e-8
          ~steps:4000
      in
      let wtr = Transim.Transient.node_waveform tr leaf in
      let wbe = Transim.Transient.node_waveform be leaf in
      Waveform.max_abs_error wtr wbe < 5e-2)

let () =
  Alcotest.run ~and_exit:false "transim"
    [ ( "analytic",
        [ Alcotest.test_case "RC step (TR)" `Quick test_rc_step_trapezoidal;
          Alcotest.test_case "RC step (BE)" `Quick
            test_rc_step_backward_euler;
          Alcotest.test_case "RC discharge from IC" `Quick
            test_rc_discharge_with_ic;
          Alcotest.test_case "RL current" `Quick test_rl_current_rise;
          Alcotest.test_case "LC oscillation" `Quick test_lc_oscillation;
          Alcotest.test_case "series RLC" `Quick
            test_series_rlc_underdamped;
          Alcotest.test_case "ramp input" `Quick test_ramp_input ] );
      ( "behavior",
        [ Alcotest.test_case "charge sharing" `Quick
            test_charge_sharing_two_caps;
          Alcotest.test_case "floating island" `Quick
            test_floating_island_charge_conserved;
          Alcotest.test_case "voltage across" `Quick test_voltage_across;
          Alcotest.test_case "argument validation" `Quick test_invalid_args ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_final_value_matches_dc; prop_tr_matches_be ] ) ]

(* ------------------------------------------------------------------ *)
(* Adaptive stepping (appended suite) *)

let test_adaptive_rc () =
  let ckt, out = rc_lowpass () in
  let sys = Mna.build ckt in
  let r = Transim.Transient.simulate_adaptive ~tol:1e-6 sys ~t_stop:5e-3 in
  let w = Transim.Transient.node_waveform r out in
  Alcotest.(check bool) "adaptive accurate" true
    (max_err w (fun t -> 1. -. exp (-.t /. 1e-3)) < 1e-4);
  (* nonuniform grid: early steps shorter than late ones *)
  let n = Array.length r.Transim.Transient.times in
  let first_step = r.Transim.Transient.times.(2) -. r.Transim.Transient.times.(1) in
  let last_step =
    r.Transim.Transient.times.(n - 1) -. r.Transim.Transient.times.(n - 2)
  in
  Alcotest.(check bool) "steps grow as the transient settles" true
    (last_step > 3. *. first_step)

let test_adaptive_stiff_matches_fixed () =
  (* stiff fig16 tree: adaptive grid resolves the fast start *)
  let f = Samples.fig16 () in
  let sys = Mna.build f.Samples.circuit in
  let fixed = Transim.Transient.simulate sys ~t_stop:6e-9 ~steps:12000 in
  let adapt = Transim.Transient.simulate_adaptive ~tol:1e-7 sys ~t_stop:6e-9 in
  let wf = Transim.Transient.node_waveform fixed f.Samples.output in
  let wa = Transim.Transient.node_waveform adapt f.Samples.output in
  Alcotest.(check bool) "adaptive matches fixed" true
    (Waveform.max_abs_error wf wa < 5e-3);
  Alcotest.(check bool) "uses fewer points than fixed" true
    (Array.length adapt.Transim.Transient.times < 12000)

let test_adaptive_validates_args () =
  let ckt, _ = rc_lowpass () in
  let sys = Mna.build ckt in
  Alcotest.check_raises "bad t_stop"
    (Invalid_argument "Transient.simulate_adaptive: t_stop must be > 0")
    (fun () ->
      ignore (Transim.Transient.simulate_adaptive sys ~t_stop:(-1.)))

let prop_superposition =
  QCheck2.Test.make
    ~name:"two sources superpose linearly" ~count:20
    QCheck2.Gen.(pair (float_range 0.5 5.) (float_range 0.5 5.))
    (fun (v1, v2) ->
      (* T network driven from both ends *)
      let build a_amp b_amp =
        let b = Netlist.create () in
        Netlist.add_v b "va" "a" "0" (Element.Step { v0 = 0.; v1 = a_amp });
        Netlist.add_v b "vb" "b" "0" (Element.Step { v0 = 0.; v1 = b_amp });
        Netlist.add_r b "r1" "a" "m" 1e3;
        Netlist.add_r b "r2" "b" "m" 2e3;
        Netlist.add_c b "c1" "m" "0" 1e-7;
        let m = Netlist.node b "m" in
        (Mna.build (Netlist.freeze b), m)
      in
      let run a_amp b_amp =
        let sys, m = build a_amp b_amp in
        let r = Transim.Transient.simulate sys ~t_stop:1e-3 ~steps:500 in
        Transim.Transient.node_waveform r m
      in
      let w_both = run v1 v2 in
      let w_a = run v1 0. in
      let w_b = run 0. v2 in
      let ok = ref true in
      Array.iteri
        (fun i _ ->
          let sum = w_a.Waveform.values.(i) +. w_b.Waveform.values.(i) in
          if Float.abs (sum -. w_both.Waveform.values.(i)) > 1e-9 then
            ok := false)
        w_both.Waveform.times;
      !ok)

let prop_time_scaling =
  QCheck2.Test.make
    ~name:"scaling all capacitances scales time" ~count:15
    QCheck2.Gen.(float_range 2. 50.)
    (fun alpha ->
      (* v_alpha(alpha * t) = v_1(t) for an RC circuit with C *= alpha *)
      let build scale =
        let b = Netlist.create () in
        Netlist.add_v b "v" "in" "0" (Element.Step { v0 = 0.; v1 = 1. });
        Netlist.add_r b "r1" "in" "x" 1e3;
        Netlist.add_c b "c1" "x" "0" (1e-7 *. scale);
        Netlist.add_r b "r2" "x" "y" 2e3;
        Netlist.add_c b "c2" "y" "0" (5e-8 *. scale);
        let y = Netlist.node b "y" in
        (Mna.build (Netlist.freeze b), y)
      in
      let sys1, y1 = build 1. in
      let sysa, ya = build alpha in
      let w1 =
        Transim.Transient.node_waveform
          (Transim.Transient.simulate sys1 ~t_stop:2e-3 ~steps:1000)
          y1
      in
      let wa =
        Transim.Transient.node_waveform
          (Transim.Transient.simulate sysa ~t_stop:(2e-3 *. alpha) ~steps:1000)
          ya
      in
      let ok = ref true in
      Array.iteri
        (fun i t ->
          let v1 = w1.Waveform.values.(i) in
          let va = Waveform.value_at wa (alpha *. t) in
          if Float.abs (v1 -. va) > 1e-6 then ok := false)
        w1.Waveform.times;
      !ok)

let () =
  Alcotest.run ~and_exit:false "transim-adaptive"
    [ ( "adaptive",
        [ Alcotest.test_case "RC accuracy" `Quick test_adaptive_rc;
          Alcotest.test_case "stiff tree" `Quick
            test_adaptive_stiff_matches_fixed;
          Alcotest.test_case "argument validation" `Quick
            test_adaptive_validates_args ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_superposition; prop_time_scaling ] ) ]
