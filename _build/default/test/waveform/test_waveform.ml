(* Tests for sampled-waveform measurements. *)

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let exp_wave tau =
  Waveform.of_fun ~t_stop:(10. *. tau) ~samples:4001 (fun t ->
      1. -. exp (-.t /. tau))

let test_create_validation () =
  Alcotest.check_raises "decreasing times"
    (Invalid_argument "Waveform.create: times must be strictly increasing")
    (fun () -> ignore (Waveform.create [| 0.; 1.; 1. |] [| 0.; 0.; 0. |]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Waveform.create: length mismatch") (fun () ->
      ignore (Waveform.create [| 0.; 1. |] [| 0. |]))

let test_value_at_interpolates () =
  let w = Waveform.create [| 0.; 1.; 2. |] [| 0.; 10.; 0. |] in
  check_close "mid" 5. (Waveform.value_at w 0.5);
  check_close "clamp low" 0. (Waveform.value_at w (-1.));
  check_close "clamp high" 0. (Waveform.value_at w 99.);
  check_close "exact sample" 10. (Waveform.value_at w 1.)

let test_l2_norm_analytic () =
  (* integral of (1 - e^(-t))^2 over [0, T] ~ T - 2(1-e^-T) + (1-e^-2T)/2 *)
  let tau = 1. in
  let w = exp_wave tau in
  let t_final = 10. in
  let expected =
    t_final
    -. (2. *. (1. -. exp (-.t_final)))
    +. (0.5 *. (1. -. exp (-2. *. t_final)))
  in
  check_close ~tol:1e-4 "l2 norm" (sqrt expected) (Waveform.l2_norm w)

let test_relative_l2_error_zero_for_self () =
  let w = exp_wave 2. in
  check_close "self error" 0. (Waveform.relative_l2_error w w)

let test_relative_l2_error_known () =
  let w = exp_wave 1. in
  let flat =
    Waveform.create w.Waveform.times
      (Array.map (fun _ -> 0.) w.Waveform.values)
  in
  check_close ~tol:1e-6 "error vs zero is 1" 1.
    (Waveform.relative_l2_error w flat)

let test_crossing_time () =
  let tau = 1e-3 in
  let w = exp_wave tau in
  (match Waveform.crossing_time w 0.5 with
  | Some t -> check_close ~tol:1e-5 "50% crossing" (tau *. log 2.) t
  | None -> Alcotest.fail "should cross");
  Alcotest.(check (option (float 1.))) "never crosses" None
    (Waveform.crossing_time w 2.);
  (* falling crossing *)
  let fall =
    Waveform.of_fun ~t_stop:5e-3 ~samples:1001 (fun t -> exp (-.t /. tau))
  in
  match Waveform.crossing_time ~rising:false fall 0.5 with
  | Some t -> check_close ~tol:1e-5 "falling crossing" (tau *. log 2.) t
  | None -> Alcotest.fail "should cross falling"

let test_delay_50pct () =
  let tau = 1e-3 in
  let w = exp_wave tau in
  match Waveform.delay_50pct w with
  | Some d ->
    (* final sampled value is 1 - e^-10, midpoint slightly below 0.5 *)
    Alcotest.(check bool) "near ln2 tau" true
      (Float.abs (d -. (tau *. log 2.)) < 1e-4 *. tau *. 10.)
  | None -> Alcotest.fail "expected delay"

let test_overshoot_monotone () =
  let w = exp_wave 1. in
  check_close "no overshoot" 0. (Waveform.overshoot w);
  Alcotest.(check bool) "monotone" true (Waveform.is_monotone w);
  let ring =
    Waveform.of_fun ~t_stop:10. ~samples:2001 (fun t ->
        1. -. (exp (-.t) *. cos (5. *. t)))
  in
  Alcotest.(check bool) "ringing not monotone" false
    (Waveform.is_monotone ring);
  Alcotest.(check bool) "has overshoot" true (Waveform.overshoot ring > 0.1)

let test_rise_time () =
  let tau = 1. in
  let w = exp_wave tau in
  match Waveform.rise_time_10_90 w with
  | Some rt -> check_close ~tol:1e-2 "10-90 rise" (tau *. log 9.) rt
  | None -> Alcotest.fail "expected rise time"

let test_settling_time () =
  let tau = 1. in
  let w = exp_wave tau in
  (match Waveform.settling_time ~band:0.05 w with
  | Some t ->
    (* 1 - e^(-t) within 5% of ~1: t ~ -ln(0.05) = 3.0 *)
    check_close ~tol:2e-2 "5% settling" (-.log 0.05) t
  | None -> Alcotest.fail "expected settling");
  (* constant waveform never defines a transition *)
  let flat = Waveform.create [| 0.; 1. |] [| 2.; 2. |] in
  Alcotest.(check bool) "flat has no settling" true
    (Waveform.settling_time flat = None)

let test_glitch_area () =
  (* triangular pulse 0 -> 1 -> 0 over [0, 2]: area 1 *)
  let w = Waveform.create [| 0.; 1.; 2. |] [| 0.; 1.; 0. |] in
  check_close "triangle area" 1. (Waveform.glitch_area w)

let test_resample_and_csv () =
  let w = Waveform.create [| 0.; 1.; 2. |] [| 0.; 2.; 4. |] in
  let r = Waveform.resample w [| 0.5; 1.5 |] in
  check_close "resampled 0" 1. r.Waveform.values.(0);
  check_close "resampled 1" 3. r.Waveform.values.(1);
  let csv = Waveform.to_csv w in
  Alcotest.(check bool) "csv header" true
    (String.length csv > 10 && String.sub csv 0 10 = "time,value");
  let paired = Waveform.pair_to_csv ~labels:("a", "b") w w in
  Alcotest.(check bool) "pair header" true
    (String.sub paired 0 9 = "time,a,b\n" |> fun _ -> true);
  Alcotest.(check int) "pair lines" 4
    (List.length (String.split_on_char '\n' (String.trim paired)))

let test_ascii_plot_renders () =
  let w = exp_wave 1. in
  let plot = Waveform.ascii_plot ~width:40 ~height:10 ~label:"test" [ w ] in
  Alcotest.(check bool) "has label" true
    (String.length plot > 0 && String.sub plot 0 4 = "test");
  Alcotest.(check bool) "has glyphs" true (String.contains plot '*')

let prop_l2_triangle =
  QCheck2.Test.make ~name:"l2 error satisfies triangle inequality" ~count:100
    QCheck2.Gen.(pair (float_range 0.1 5.) (float_range 0.1 5.))
    (fun (t1, t2) ->
      let a = exp_wave t1 in
      let b = exp_wave t2 in
      (* resample b on a's grid implicitly via l2_error *)
      let zero =
        Waveform.create a.Waveform.times
          (Array.map (fun _ -> 0.) a.Waveform.values)
      in
      Waveform.l2_error a b
      <= Waveform.l2_error a zero +. Waveform.l2_error zero b +. 1e-9)

let prop_crossing_monotone_exists =
  QCheck2.Test.make
    ~name:"monotone rising waveform crosses every interior level" ~count:100
    QCheck2.Gen.(float_range 0.05 0.95)
    (fun level ->
      let w = exp_wave 1. in
      match Waveform.crossing_time w level with
      | Some t ->
        let analytic = -.log (1. -. level) in
        Float.abs (t -. analytic) < 1e-2
      | None -> false)

let () =
  Alcotest.run "waveform"
    [ ( "measure",
        [ Alcotest.test_case "create validation" `Quick
            test_create_validation;
          Alcotest.test_case "interpolation" `Quick
            test_value_at_interpolates;
          Alcotest.test_case "l2 norm" `Quick test_l2_norm_analytic;
          Alcotest.test_case "self error" `Quick
            test_relative_l2_error_zero_for_self;
          Alcotest.test_case "known error" `Quick
            test_relative_l2_error_known;
          Alcotest.test_case "crossing time" `Quick test_crossing_time;
          Alcotest.test_case "50% delay" `Quick test_delay_50pct;
          Alcotest.test_case "overshoot/monotone" `Quick
            test_overshoot_monotone;
          Alcotest.test_case "rise time" `Quick test_rise_time;
          Alcotest.test_case "settling time" `Quick test_settling_time;
          Alcotest.test_case "glitch area" `Quick test_glitch_area;
          Alcotest.test_case "resample/csv" `Quick test_resample_and_csv;
          Alcotest.test_case "ascii plot" `Quick test_ascii_plot_renders ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_l2_triangle; prop_crossing_monotone_exists ] ) ]
