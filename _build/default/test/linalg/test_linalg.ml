(* Unit and property tests for the dense linear-algebra substrate. *)

open Linalg

let check_float = Alcotest.(check (float 1e-9))

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec_basic () =
  let x = Vec.of_list [ 1.; 2.; 3. ] in
  let y = Vec.of_list [ 4.; 5.; 6. ] in
  check_float "dot" 32. (Vec.dot x y);
  check_float "norm2" (sqrt 14.) (Vec.norm2 x);
  check_float "norm_inf" 3. (Vec.norm_inf x);
  Alcotest.(check bool)
    "add" true
    (Vec.approx_equal (Vec.of_list [ 5.; 7.; 9. ]) (Vec.add x y));
  Alcotest.(check bool)
    "sub" true
    (Vec.approx_equal (Vec.of_list [ -3.; -3.; -3. ]) (Vec.sub x y));
  let z = Vec.copy y in
  Vec.axpy 2. x z;
  Alcotest.(check bool)
    "axpy" true
    (Vec.approx_equal (Vec.of_list [ 6.; 9.; 12. ]) z)

let test_vec_basis () =
  let e = Vec.basis 4 2 in
  check_float "basis component" 1. (Vec.get e 2);
  check_float "basis others" 0. (Vec.get e 0);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Vec.basis: index out of range") (fun () ->
      ignore (Vec.basis 3 5))

let test_vec_mismatch () =
  let x = Vec.create 2 and y = Vec.create 3 in
  Alcotest.check_raises "dot mismatch"
    (Invalid_argument "Vec.dot: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Vec.dot x y))

(* ------------------------------------------------------------------ *)
(* Matrix *)

let test_matrix_mul () =
  let a = Matrix.of_rows [ [ 1.; 2. ]; [ 3.; 4. ] ] in
  let b = Matrix.of_rows [ [ 5.; 6. ]; [ 7.; 8. ] ] in
  let c = Matrix.mul a b in
  Alcotest.(check bool)
    "product" true
    (Matrix.approx_equal (Matrix.of_rows [ [ 19.; 22. ]; [ 43.; 50. ] ]) c)

let test_matrix_vec () =
  let a = Matrix.of_rows [ [ 1.; 2.; 3. ]; [ 4.; 5.; 6. ] ] in
  let x = Vec.of_list [ 1.; 1.; 1. ] in
  Alcotest.(check bool)
    "mul_vec" true
    (Vec.approx_equal (Vec.of_list [ 6.; 15. ]) (Matrix.mul_vec a x));
  let y = Vec.of_list [ 1.; 1. ] in
  Alcotest.(check bool)
    "mul_vec_transpose" true
    (Vec.approx_equal (Vec.of_list [ 5.; 7.; 9. ])
       (Matrix.mul_vec_transpose a y))

let test_matrix_transpose_submatrix () =
  let a = Matrix.of_rows [ [ 1.; 2.; 3. ]; [ 4.; 5.; 6. ] ] in
  let at = Matrix.transpose a in
  Alcotest.(check (pair int int)) "dims" (3, 2) (Matrix.dims at);
  check_float "entry" 6. (Matrix.get at 2 1);
  let s = Matrix.submatrix a [| 1 |] [| 0; 2 |] in
  Alcotest.(check bool)
    "submatrix" true
    (Matrix.approx_equal (Matrix.of_rows [ [ 4.; 6. ] ]) s)

let test_matrix_symmetry () =
  let sym = Matrix.of_rows [ [ 2.; -1. ]; [ -1.; 2. ] ] in
  let asym = Matrix.of_rows [ [ 2.; -1. ]; [ 1.; 2. ] ] in
  Alcotest.(check bool) "symmetric" true (Matrix.is_symmetric sym);
  Alcotest.(check bool) "asymmetric" false (Matrix.is_symmetric asym)

let test_matrix_norms () =
  let a = Matrix.of_rows [ [ 1.; -2. ]; [ 3.; 4. ] ] in
  check_float "inf norm" 7. (Matrix.norm_inf a);
  check_float "frobenius" (sqrt 30.) (Matrix.norm_frobenius a);
  check_float "max abs" 4. (Matrix.max_abs a)

(* ------------------------------------------------------------------ *)
(* LU *)

let test_lu_solve_known () =
  let a = Matrix.of_rows [ [ 2.; 1. ]; [ 1.; 3. ] ] in
  let b = Vec.of_list [ 3.; 5. ] in
  let x = Lu.solve_system a b in
  Alcotest.(check bool)
    "solution" true
    (Vec.approx_equal (Vec.of_list [ 0.8; 1.4 ]) x)

let test_lu_pivoting () =
  (* leading zero forces a row exchange *)
  let a = Matrix.of_rows [ [ 0.; 1. ]; [ 1.; 0. ] ] in
  let x = Lu.solve_system a (Vec.of_list [ 2.; 3. ]) in
  Alcotest.(check bool)
    "swap solve" true
    (Vec.approx_equal (Vec.of_list [ 3.; 2. ]) x)

let test_lu_det () =
  let a = Matrix.of_rows [ [ 1.; 2. ]; [ 3.; 4. ] ] in
  check_float "det" (-2.) (Lu.det (Lu.factor a));
  let p = Matrix.of_rows [ [ 0.; 1. ]; [ 1.; 0. ] ] in
  check_float "permutation det" (-1.) (Lu.det (Lu.factor p))

let test_lu_singular () =
  let a = Matrix.of_rows [ [ 1.; 2. ]; [ 2.; 4. ] ] in
  (match Lu.factor a with
  | _ -> Alcotest.fail "expected Singular"
  | exception Lu.Singular _ -> ())

let test_lu_inverse () =
  let a = Matrix.of_rows [ [ 4.; 7. ]; [ 2.; 6. ] ] in
  let inv = Lu.inverse (Lu.factor a) in
  Alcotest.(check bool)
    "a * a^-1 = I" true
    (Matrix.approx_equal ~tol:1e-12 (Matrix.identity 2) (Matrix.mul a inv))

let test_lu_transpose_solve () =
  let a = Matrix.of_rows [ [ 2.; 1.; 0. ]; [ 0.; 3.; 1. ]; [ 1.; 0.; 4. ] ] in
  let f = Lu.factor a in
  let b = Vec.of_list [ 1.; 2.; 3. ] in
  let x = Lu.solve_transpose f b in
  Alcotest.(check bool)
    "A^T x = b" true
    (Vec.approx_equal ~tol:1e-12 b
       (Matrix.mul_vec (Matrix.transpose a) x))

let rand_state = Random.State.make [| 0x5eed |]

let random_matrix n =
  Matrix.init n n (fun _ _ -> Random.State.float rand_state 2. -. 1.)

let prop_lu_roundtrip =
  QCheck2.Test.make ~name:"lu solve round-trips random systems" ~count:100
    QCheck2.Gen.(int_range 1 12)
    (fun n ->
      let a = random_matrix n in
      let x = Vec.init n (fun _ -> Random.State.float rand_state 2. -. 1.) in
      let b = Matrix.mul_vec a x in
      match Lu.solve_system a b with
      | x' -> Vec.dist_inf x x' <= 1e-6 *. Float.max 1. (Vec.norm_inf x)
      | exception Lu.Singular _ -> true (* rare: random matrix singular *))

let prop_lu_transpose =
  QCheck2.Test.make ~name:"transpose solve agrees with explicit transpose"
    ~count:50
    QCheck2.Gen.(int_range 1 10)
    (fun n ->
      let a = random_matrix n in
      let b = Vec.init n (fun _ -> Random.State.float rand_state 2. -. 1.) in
      match Lu.factor a with
      | f ->
        let x1 = Lu.solve_transpose f b in
        let x2 = Lu.solve_system (Matrix.transpose a) b in
        Vec.dist_inf x1 x2 <= 1e-6
      | exception Lu.Singular _ -> true)

let test_cholesky_known () =
  let a = Matrix.of_rows [ [ 4.; 2. ]; [ 2.; 3. ] ] in
  let f = Cholesky.factor a in
  check_float "det" 8. (Cholesky.det f);
  let x = Cholesky.solve f (Vec.of_list [ 8.; 7. ]) in
  Alcotest.(check bool) "solve" true
    (Vec.approx_equal ~tol:1e-12 (Matrix.mul_vec a x) (Vec.of_list [ 8.; 7. ]))

let test_cholesky_rejects_indefinite () =
  let a = Matrix.of_rows [ [ 1.; 2. ]; [ 2.; 1. ] ] in
  Alcotest.(check bool) "indefinite" false (Cholesky.is_positive_definite a);
  match Cholesky.factor a with
  | _ -> Alcotest.fail "expected rejection"
  | exception Cholesky.Not_positive_definite 1 -> ()
  | exception Cholesky.Not_positive_definite _ -> ()

let prop_cholesky_matches_lu =
  QCheck2.Test.make ~name:"cholesky solve equals LU solve on random SPD"
    ~count:80
    QCheck2.Gen.(int_range 1 15)
    (fun n ->
      (* SPD via B^T B + I *)
      let b0 = random_matrix n in
      let a =
        Matrix.add (Matrix.mul (Matrix.transpose b0) b0) (Matrix.identity n)
      in
      let rhs = Vec.init n (fun i -> Float.of_int (i + 1)) in
      let x1 = Cholesky.solve (Cholesky.factor a) rhs in
      let x2 = Lu.solve_system a rhs in
      Vec.dist_inf x1 x2 <= 1e-8 *. Float.max 1. (Vec.norm_inf x2))

let prop_cholesky_det_positive =
  QCheck2.Test.make ~name:"cholesky determinant matches LU and is positive"
    ~count:50
    QCheck2.Gen.(int_range 1 10)
    (fun n ->
      let b0 = random_matrix n in
      let a =
        Matrix.add (Matrix.mul (Matrix.transpose b0) b0) (Matrix.identity n)
      in
      let dc = Cholesky.det (Cholesky.factor a) in
      let dl = Lu.det (Lu.factor a) in
      dc > 0. && Float.abs (dc -. dl) <= 1e-6 *. Float.abs dl)

(* ------------------------------------------------------------------ *)
(* Cx *)

let test_cx_arith () =
  let open Cx in
  let a = make 1. 2. and b = make 3. (-1.) in
  Alcotest.(check bool) "add" true (approx_equal (make 4. 1.) (a +: b));
  Alcotest.(check bool) "mul" true (approx_equal (make 5. 5.) (a *: b));
  Alcotest.(check bool)
    "div round trip" true
    (approx_equal a (a *: b /: b));
  check_float "abs" (Stdlib.sqrt 5.) (abs a)

let test_cx_pow_int () =
  let open Cx in
  let z = make 0. 1. in
  Alcotest.(check bool) "i^2 = -1" true (approx_equal (re (-1.)) (pow_int z 2));
  Alcotest.(check bool) "i^0 = 1" true (approx_equal one (pow_int z 0));
  Alcotest.(check bool)
    "i^-1 = -i" true
    (approx_equal (make 0. (-1.)) (pow_int z (-1)));
  Alcotest.(check bool)
    "z^5 via repeated mul" true
    (approx_equal
       (z *: z *: z *: z *: z)
       (pow_int z 5))

let test_cx_is_real () =
  Alcotest.(check bool) "real" true (Cx.is_real (Cx.make 5. 1e-12));
  Alcotest.(check bool) "complex" false (Cx.is_real (Cx.make 5. 1.))

(* ------------------------------------------------------------------ *)
(* Cmatrix *)

let test_cmatrix_solve () =
  let open Cx in
  let a =
    Cmatrix.init 2 2 (fun i j ->
        if i = j then make 2. 1. else make 0. (-1.))
  in
  let x = [| make 1. 0.; make 0. 1. |] in
  let b = Cmatrix.mul_vec a x in
  let x' = Cmatrix.solve a b in
  Alcotest.(check bool) "complex solve" true
    (Cmatrix.vec_approx_equal ~tol:1e-12 x x')

let test_cmatrix_singular () =
  let a = Cmatrix.init 2 2 (fun _ _ -> Cx.one) in
  (match Cmatrix.solve a [| Cx.one; Cx.one |] with
  | _ -> Alcotest.fail "expected Singular"
  | exception Cmatrix.Singular _ -> ())

(* ------------------------------------------------------------------ *)
(* Poly *)

let sorted_roots p = Poly.roots p

let test_poly_eval () =
  let p = [| 1.; -3.; 2. |] in
  (* 2x^2 - 3x + 1 *)
  check_float "at 0" 1. (Poly.eval p 0.);
  check_float "at 1" 0. (Poly.eval p 1.);
  check_float "at 0.5" 0. (Poly.eval p 0.5);
  Alcotest.(check int) "degree" 2 (Poly.degree p);
  Alcotest.(check int) "degree with trailing zeros" 1
    (Poly.degree [| 1.; 2.; 0.; 0. |])

let test_poly_derivative () =
  let p = [| 1.; 2.; 3. |] in
  let d = Poly.derivative p in
  check_float "constant term" 2. d.(0);
  check_float "linear term" 6. d.(1)

let test_poly_quadratic_real () =
  match sorted_roots [| 6.; -5.; 1. |] (* (x-2)(x-3) *) with
  | [ r1; r2 ] ->
    check_close "small root" 2. r1.Cx.re;
    check_close "large root" 3. r2.Cx.re;
    check_close "imag 1" 0. r1.Cx.im;
    check_close "imag 2" 0. r2.Cx.im
  | _ -> Alcotest.fail "expected two roots"

let test_poly_quadratic_complex () =
  match sorted_roots [| 5.; 2.; 1. |] (* roots -1 +- 2j *) with
  | [ r1; r2 ] ->
    check_close "re" (-1.) r1.Cx.re;
    check_close "im magnitude" 2. (Float.abs r1.Cx.im);
    Alcotest.(check bool) "conjugates" true
      (Cx.approx_equal r1 (Cx.conj r2))
  | _ -> Alcotest.fail "expected two roots"

let test_poly_cancellation_stability () =
  (* (x - 1e8)(x - 1e-8): naive formula loses the small root *)
  match sorted_roots [| 1.; -.(1e8 +. 1e-8); 1. |] with
  | [ r1; r2 ] ->
    check_close ~tol:1e-14 "tiny root" 1e-8 r1.Cx.re;
    check_close ~tol:1e2 "huge root" 1e8 r2.Cx.re
  | _ -> Alcotest.fail "expected two roots"

let test_poly_zero_roots_deflated () =
  (* x^2 (x - 4) *)
  match sorted_roots [| 0.; 0.; -4.; 1. |] with
  | [ z1; z2; r ] ->
    check_close "zero 1" 0. (Cx.abs z1);
    check_close "zero 2" 0. (Cx.abs z2);
    check_close "nonzero root" 4. r.Cx.re
  | _ -> Alcotest.fail "expected three roots"

let test_poly_cubic () =
  let p = Poly.of_roots [ Cx.re 1.; Cx.re (-2.); Cx.re 0.5 ] in
  let rs = sorted_roots p in
  Alcotest.(check int) "count" 3 (List.length rs);
  List.iter
    (fun r -> check_close ~tol:1e-8 "residual" 0. (Cx.abs (Poly.eval_cx p r)))
    rs

let test_poly_complex_quartic () =
  (* two complex pairs, well separated in magnitude: typical AWE
     reciprocal-pole configurations for underdamped RLC (Table II) *)
  let roots =
    [ Cx.make (-1.) 2.; Cx.make (-1.) (-2.);
      Cx.make (-30.) 40.; Cx.make (-30.) (-40.) ]
  in
  let p = Poly.of_roots roots in
  let found = sorted_roots p in
  Alcotest.(check int) "count" 4 (List.length found);
  List.iter
    (fun r ->
      check_close ~tol:1e-6 "residual" 0.
        (Cx.abs (Poly.eval_cx p r) /. 5e3))
    found;
  (* conjugate symmetry was enforced *)
  let ims = List.map (fun r -> r.Cx.im) found in
  check_close ~tol:1e-9 "imag parts cancel" 0. (List.fold_left ( +. ) 0. ims)

let test_poly_of_roots_real () =
  let p = Poly.of_roots [ Cx.make 0. 1.; Cx.make 0. (-1.) ] in
  (* (x - i)(x + i) = x^2 + 1 *)
  check_close "c0" 1. p.(0);
  check_close "c1" 0. p.(1);
  check_close "c2" 1. p.(2)

let prop_poly_roundtrip =
  QCheck2.Test.make
    ~name:"roots of of_roots recover the roots (real, separated)" ~count:100
    QCheck2.Gen.(list_size (int_range 1 6) (float_range (-10.) (-0.1)))
    (fun raw ->
      (* separate the roots to avoid ill-conditioned clusters *)
      let roots =
        List.sort compare raw
        |> List.mapi (fun i r -> r -. (3. *. float_of_int i))
      in
      let p = Poly.of_roots (List.map Cx.re roots) in
      let found = Poly.roots p in
      List.length found = List.length roots
      && List.for_all2
           (fun expected got ->
             Cx.abs Cx.(re expected -: got)
             <= 1e-4 *. Float.max 1. (Float.abs expected))
           (List.sort compare roots)
           (List.sort
              (fun (a : Cx.t) (b : Cx.t) -> Float.compare a.re b.re)
              found))

let test_poly_ops () =
  (* (1 + x)(2 + 3x) = 2 + 5x + 3x^2 *)
  let p = Poly.mul [| 1.; 1. |] [| 2.; 3. |] in
  check_float "c0" 2. p.(0);
  check_float "c1" 5. p.(1);
  check_float "c2" 3. p.(2);
  let s = Poly.add [| 1.; 2. |] [| 0.; 0.; 4. |] in
  check_float "sum c2" 4. s.(2);
  let sc = Poly.scale 2. [| 1.; -3. |] in
  check_float "scaled" (-6.) sc.(1);
  (* pretty printer renders nonzero terms and skips zero ones *)
  let repr = Format.asprintf "%a" Poly.pp [| 1.; 0.; 2. |] in
  Alcotest.(check bool) "pp nontrivial" true (String.length repr >= 5)

let test_matrix_of_rows_ragged () =
  Alcotest.check_raises "ragged"
    (Invalid_argument "Matrix.of_rows: ragged row lengths") (fun () ->
      ignore (Matrix.of_rows [ [ 1. ]; [ 1.; 2. ] ]))

let test_lu_solve_matrix () =
  let a = Matrix.of_rows [ [ 2.; 0. ]; [ 0.; 4. ] ] in
  let b = Matrix.of_rows [ [ 2.; 4. ]; [ 8.; 12. ] ] in
  let x = Lu.solve_matrix (Lu.factor a) b in
  Alcotest.(check bool) "columnwise solve" true
    (Matrix.approx_equal (Matrix.of_rows [ [ 1.; 2. ]; [ 2.; 3. ] ]) x)

let test_cmatrix_solve_many () =
  let a = Cmatrix.of_real (Matrix.of_rows [ [ 2.; 1. ]; [ 0.; 3. ] ]) in
  let b1 = Cmatrix.vec_of_real [| 3.; 3. |] in
  let b2 = Cmatrix.vec_of_real [| 5.; 6. |] in
  (match Cmatrix.solve_many a [ b1; b2 ] with
  | [ x1; x2 ] ->
    Alcotest.(check bool) "x1" true
      (Cmatrix.vec_approx_equal ~tol:1e-12
         (Cmatrix.vec_of_real [| 1.; 1. |]) x1);
    Alcotest.(check bool) "x2" true
      (Cmatrix.vec_approx_equal ~tol:1e-12
         (Cmatrix.vec_of_real [| 1.5; 2. |]) x2)
  | _ -> Alcotest.fail "expected two solutions")

(* ------------------------------------------------------------------ *)
(* Eigen *)

let test_eigen_diagonal () =
  let a = Matrix.of_rows [ [ 3.; 0. ]; [ 0.; -1. ] ] in
  match Eigen.eigenvalues a with
  | [ e1; e2 ] ->
    check_close "small" (-1.) e1.Cx.re;
    check_close "large" 3. e2.Cx.re
  | _ -> Alcotest.fail "expected two eigenvalues"

let test_eigen_rotation () =
  (* rotation-scaling matrix: eigenvalues 1 +- 2j *)
  let a = Matrix.of_rows [ [ 1.; -2. ]; [ 2.; 1. ] ] in
  match Eigen.eigenvalues a with
  | [ e1; e2 ] ->
    check_close "re" 1. e1.Cx.re;
    check_close "im magnitude" 2. (Float.abs e1.Cx.im);
    Alcotest.(check bool) "conjugate pair" true
      (Cx.approx_equal ~tol:1e-9 e1 (Cx.conj e2))
  | _ -> Alcotest.fail "expected two eigenvalues"

let test_eigen_companion () =
  (* companion matrix of (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6 *)
  let a =
    Matrix.of_rows [ [ 0.; 0.; 6. ]; [ 1.; 0.; -11. ]; [ 0.; 1.; 6. ] ]
  in
  let es = Eigen.eigenvalues a in
  let res = List.map (fun e -> e.Cx.re) es in
  List.iter2 (fun want got -> check_close ~tol:1e-8 "eigenvalue" want got)
    [ 1.; 2.; 3. ] res

let test_eigen_defective () =
  (* Jordan block: double eigenvalue 2, defective *)
  let a = Matrix.of_rows [ [ 2.; 1. ]; [ 0.; 2. ] ] in
  match Eigen.eigenvalues a with
  | [ e1; e2 ] ->
    check_close ~tol:1e-7 "first" 2. e1.Cx.re;
    check_close ~tol:1e-7 "second" 2. e2.Cx.re
  | _ -> Alcotest.fail "expected two eigenvalues"

let test_eigen_larger_spectrum () =
  (* similarity transform of a known diagonal: eigenvalues preserved *)
  let n = 8 in
  let diag = Array.init n (fun i -> -.Float.of_int (i + 1)) in
  let s = random_matrix n in
  let f = Lu.factor s in
  let d = Matrix.init n n (fun i j -> if i = j then diag.(i) else 0.) in
  let a = Matrix.mul (Matrix.mul s d) (Lu.inverse f) in
  let es = Eigen.eigenvalues a in
  Alcotest.(check int) "count" n (List.length es);
  List.iteri
    (fun i e ->
      check_close ~tol:1e-6 "eigenvalue magnitude"
        (Float.of_int (i + 1))
        (Cx.abs e))
    es

let test_circuit_poles_drops_zeros () =
  (* operator with two finite natural frequencies and one algebraic
     (zero) eigenvalue, as produced by MNA with a voltage source *)
  let m =
    Matrix.of_rows
      [ [ -0.5; 0.; 0. ]; [ 0.; -0.01; 0. ]; [ 0.; 0.; 0. ] ]
  in
  match Eigen.circuit_poles m with
  | [ p1; p2 ] ->
    check_close "dominant pole" (-2.) p1.Cx.re;
    check_close "fast pole" (-100.) p2.Cx.re
  | ps ->
    Alcotest.failf "expected two poles, got %d" (List.length ps)

let prop_eigen_trace =
  QCheck2.Test.make
    ~name:"sum of eigenvalues equals trace (random matrices)" ~count:60
    QCheck2.Gen.(int_range 2 10)
    (fun n ->
      let a = random_matrix n in
      let es = Eigen.eigenvalues a in
      let sum = List.fold_left Cx.( +: ) Cx.zero es in
      let trace = ref 0. in
      for i = 0 to n - 1 do
        trace := !trace +. a.(i).(i)
      done;
      Float.abs (sum.Cx.re -. !trace) <= 1e-6 *. Float.max 1. (Float.abs !trace)
      && Float.abs sum.Cx.im <= 1e-6)

let prop_eigen_det =
  QCheck2.Test.make
    ~name:"product of eigenvalues equals determinant" ~count:60
    QCheck2.Gen.(int_range 2 8)
    (fun n ->
      let a = random_matrix n in
      match Lu.factor a with
      | f ->
        let det = Lu.det f in
        let es = Eigen.eigenvalues a in
        let prod = List.fold_left Cx.( *: ) Cx.one es in
        Float.abs (prod.Cx.re -. det) <= 1e-5 *. Float.max 1. (Float.abs det)
      | exception Lu.Singular _ -> true)

(* ------------------------------------------------------------------ *)
(* Vandermonde *)

let test_vandermonde_power_sums () =
  (* known residues at distinct nodes *)
  let z = [| Cx.re 2.; Cx.re (-1.); Cx.re 0.5 |] in
  let k = [| Cx.re 1.; Cx.re 3.; Cx.re (-2.) |] in
  let mu =
    Array.init 3 (fun j ->
        Array.to_list (Array.mapi (fun l zl -> Cx.(k.(l) *: pow_int zl j)) z)
        |> List.fold_left Cx.( +: ) Cx.zero)
  in
  let k' = Vandermonde.solve_power_sums z mu in
  Alcotest.(check bool) "recovered residues" true
    (Cmatrix.vec_approx_equal ~tol:1e-10 k k')

let test_vandermonde_cluster () =
  let z = [| Cx.re 1.; Cx.re 1.0000000001; Cx.re 5. |] in
  let cs = Vandermonde.cluster_nodes z in
  Alcotest.(check int) "two clusters" 2 (Array.length cs);
  let multiplicities =
    Array.to_list cs
    |> List.map (fun c -> c.Vandermonde.multiplicity)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "multiplicities" [ 1; 2 ] multiplicities

let test_vandermonde_confluent_matches_simple () =
  (* all-distinct clusters must agree with the plain solver *)
  let z = [| Cx.re 2.; Cx.re (-1.) |] in
  let mu = [| Cx.re 3.; Cx.re 1. |] in
  let plain = Vandermonde.solve_power_sums z mu in
  let clusters =
    Array.map (fun node -> { Vandermonde.node; multiplicity = 1 }) z
  in
  let grouped = Vandermonde.solve_confluent clusters ~slope:None mu in
  Alcotest.(check bool) "k0" true
    (Cx.approx_equal ~tol:1e-10 plain.(0) grouped.(0).(0));
  Alcotest.(check bool) "k1" true
    (Cx.approx_equal ~tol:1e-10 plain.(1) grouped.(1).(0))

let test_vandermonde_confluent_double_pole () =
  (* model x(t) = (k1 + k2 t) e^{pt} with p = -2 (z = -0.5).
     Conditions: mu_0 = x(0) = k1;
     mu_j = k1 z^j - k2 z^{j+1} * j ... derive from formula instead:
     column for ii=0: z^j; ii=1: -C(j, j-1) z^{j+1} = -j z^{j+1}. *)
  let z = Cx.re (-0.5) in
  let k1 = Cx.re 2. and k2 = Cx.re 3. in
  let mu =
    Array.init 2 (fun j ->
        if j = 0 then k1
        else
          Cx.(
            (k1 *: pow_int z j)
            +: Cx.scale (-.float_of_int j) (k2 *: pow_int z (j + 1))))
  in
  let clusters = [| { Vandermonde.node = z; multiplicity = 2 } |] in
  let grouped = Vandermonde.solve_confluent clusters ~slope:None mu in
  Alcotest.(check bool) "k1" true
    (Cx.approx_equal ~tol:1e-10 k1 grouped.(0).(0));
  Alcotest.(check bool) "k2" true
    (Cx.approx_equal ~tol:1e-10 k2 grouped.(0).(1))

let test_vandermonde_slope_row () =
  (* single pole with slope matching: k = mu_0 and the slope condition
     k p = d must be satisfied by construction when consistent *)
  let z = [| Cx.re (-0.25) |] in
  let clusters =
    Array.map (fun node -> { Vandermonde.node; multiplicity = 1 }) z
  in
  let k = Cx.re 4. in
  let d = Cx.(k *: inv z.(0)) in
  let grouped =
    Vandermonde.solve_confluent clusters ~slope:(Some d) [| Cx.re 0. |]
  in
  (* with q = 1 the slope row replaces the only row: k p = d *)
  Alcotest.(check bool) "k from slope row" true
    (Cx.approx_equal ~tol:1e-10 k grouped.(0).(0))

(* ------------------------------------------------------------------ *)
(* Hankel *)

let mu_of_poles_residues poles residues count =
  Array.init count (fun j ->
      List.fold_left2
        (fun acc p k -> acc +. (k *. Float.pow (1. /. p) (float_of_int j)))
        0. poles residues)

let test_hankel_recovers_poles () =
  let poles = [ -1.; -10. ] in
  let residues = [ 2.; 3. ] in
  let mu = mu_of_poles_residues poles residues 4 in
  let cp = Hankel.char_poly ~q:2 mu in
  let zs = Poly.roots cp in
  let ps = List.map (fun z -> (Cx.inv z).Cx.re) zs in
  let ps = List.sort (fun a b -> Float.compare (Float.abs a) (Float.abs b)) ps in
  (match ps with
  | [ p1; p2 ] ->
    check_close ~tol:1e-6 "dominant" (-1.) p1;
    check_close ~tol:1e-5 "second" (-10.) p2
  | _ -> Alcotest.fail "expected 2 poles")

let test_hankel_deficient () =
  (* moments of a single exponential: the order-2 moment matrix is
     exactly rank one *)
  let mu = mu_of_poles_residues [ -2. ] [ 5. ] 4 in
  (match Hankel.char_poly ~q:2 mu with
  | _ -> Alcotest.fail "expected Deficient"
  | exception Hankel.Deficient _ -> ())

let test_hankel_matrix_shape () =
  let mu = [| 1.; 2.; 3.; 4. |] in
  let h = Hankel.moment_matrix ~q:2 mu in
  check_float "h00" 1. (Matrix.get h 0 0);
  check_float "h01" 2. (Matrix.get h 0 1);
  check_float "h10" 2. (Matrix.get h 1 0);
  check_float "h11" 3. (Matrix.get h 1 1)

let prop_hankel_roundtrip =
  QCheck2.Test.make
    ~name:"hankel + roots recover separated real poles" ~count:80
    QCheck2.Gen.(int_range 1 4)
    (fun q ->
      let poles = List.init q (fun i -> -.Float.pow 6. (float_of_int i)) in
      let residues = List.init q (fun i -> 1. +. float_of_int i) in
      let mu = mu_of_poles_residues poles residues (2 * q) in
      match Hankel.char_poly ~q mu with
      | cp ->
        let ps =
          Poly.roots cp
          |> List.map (fun z -> (Cx.inv z).Cx.re)
          |> List.sort (fun a b ->
                 Float.compare (Float.abs a) (Float.abs b))
        in
        List.for_all2
          (fun want got -> Float.abs (want -. got) <= 1e-3 *. Float.abs want)
          poles ps
      | exception Hankel.Deficient _ -> false)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "linalg"
    [ ( "vec",
        [ Alcotest.test_case "basic ops" `Quick test_vec_basic;
          Alcotest.test_case "basis" `Quick test_vec_basis;
          Alcotest.test_case "dimension mismatch" `Quick test_vec_mismatch ] );
      ( "matrix",
        [ Alcotest.test_case "mul" `Quick test_matrix_mul;
          Alcotest.test_case "mat-vec" `Quick test_matrix_vec;
          Alcotest.test_case "transpose/submatrix" `Quick
            test_matrix_transpose_submatrix;
          Alcotest.test_case "symmetry" `Quick test_matrix_symmetry;
          Alcotest.test_case "norms" `Quick test_matrix_norms;
          Alcotest.test_case "ragged rows rejected" `Quick
            test_matrix_of_rows_ragged ] );
      ( "lu",
        [ Alcotest.test_case "known system" `Quick test_lu_solve_known;
          Alcotest.test_case "pivoting" `Quick test_lu_pivoting;
          Alcotest.test_case "determinant" `Quick test_lu_det;
          Alcotest.test_case "singular" `Quick test_lu_singular;
          Alcotest.test_case "inverse" `Quick test_lu_inverse;
          Alcotest.test_case "transpose solve" `Quick test_lu_transpose_solve;
          Alcotest.test_case "matrix solve" `Quick test_lu_solve_matrix ]
        @ qsuite [ prop_lu_roundtrip; prop_lu_transpose ] );
      ( "cholesky",
        [ Alcotest.test_case "known system" `Quick test_cholesky_known;
          Alcotest.test_case "indefinite rejected" `Quick
            test_cholesky_rejects_indefinite ]
        @ qsuite [ prop_cholesky_matches_lu; prop_cholesky_det_positive ] );
      ( "cx",
        [ Alcotest.test_case "arithmetic" `Quick test_cx_arith;
          Alcotest.test_case "integer powers" `Quick test_cx_pow_int;
          Alcotest.test_case "is_real" `Quick test_cx_is_real ] );
      ( "cmatrix",
        [ Alcotest.test_case "solve" `Quick test_cmatrix_solve;
          Alcotest.test_case "singular" `Quick test_cmatrix_singular;
          Alcotest.test_case "solve many" `Quick test_cmatrix_solve_many ] );
      ( "poly",
        [ Alcotest.test_case "eval/degree" `Quick test_poly_eval;
          Alcotest.test_case "derivative" `Quick test_poly_derivative;
          Alcotest.test_case "quadratic real" `Quick test_poly_quadratic_real;
          Alcotest.test_case "quadratic complex" `Quick
            test_poly_quadratic_complex;
          Alcotest.test_case "cancellation stability" `Quick
            test_poly_cancellation_stability;
          Alcotest.test_case "zero-root deflation" `Quick
            test_poly_zero_roots_deflated;
          Alcotest.test_case "cubic" `Quick test_poly_cubic;
          Alcotest.test_case "complex quartic" `Quick
            test_poly_complex_quartic;
          Alcotest.test_case "of_roots real coefficients" `Quick
            test_poly_of_roots_real;
          Alcotest.test_case "arithmetic/pp" `Quick test_poly_ops ]
        @ qsuite [ prop_poly_roundtrip ] );
      ( "eigen",
        [ Alcotest.test_case "diagonal" `Quick test_eigen_diagonal;
          Alcotest.test_case "complex pair" `Quick test_eigen_rotation;
          Alcotest.test_case "companion" `Quick test_eigen_companion;
          Alcotest.test_case "defective" `Quick test_eigen_defective;
          Alcotest.test_case "similarity-preserved spectrum" `Quick
            test_eigen_larger_spectrum;
          Alcotest.test_case "circuit poles drop algebraic zeros" `Quick
            test_circuit_poles_drops_zeros ]
        @ qsuite [ prop_eigen_trace; prop_eigen_det ] );
      ( "vandermonde",
        [ Alcotest.test_case "power sums" `Quick test_vandermonde_power_sums;
          Alcotest.test_case "clustering" `Quick test_vandermonde_cluster;
          Alcotest.test_case "confluent = simple when distinct" `Quick
            test_vandermonde_confluent_matches_simple;
          Alcotest.test_case "double pole" `Quick
            test_vandermonde_confluent_double_pole;
          Alcotest.test_case "slope row" `Quick test_vandermonde_slope_row ] );
      ( "hankel",
        [ Alcotest.test_case "recovers poles" `Quick test_hankel_recovers_poles;
          Alcotest.test_case "deficient detection" `Quick test_hankel_deficient;
          Alcotest.test_case "matrix shape" `Quick test_hankel_matrix_shape ]
        @ qsuite [ prop_hankel_roundtrip ] ) ]
