* Charge sharing: C6 precharged to 5 V, input held low (Figs. 20-21)
vin in 0 dc 0
r1 in n1 100
r2 n1 n2 200
r3 n2 n3 200
r4 n1 n4 1k
r5 n3 n5 300
r6 n3 n6 500
r7 n5 n7 200
r8 n5 n8 50
r9 n7 n9 400
r10 n9 n10 600
c1 n1 0 42f ic=0
c2 n2 0 85f ic=0
c3 n3 0 128f ic=0
c4 n4 0 17f ic=0
c5 n5 0 170f ic=0
c6 n6 0 340f ic=5
c7 n7 0 212f ic=0
c8 n8 0 0.85f ic=0
c9 n9 0 68f ic=0
c10 n10 0 25f ic=0
.tran 5n
.awe n7 3
.end
