* Paper Fig. 25 - underdamped RLC ladder with complex pole pairs
vin in 0 step(0 5)
r1 in m1 45
l1 m1 n1 7n
c1 n1 0 1p
l2 n1 n2 10n
c2 n2 0 1.8p
l3 n2 n3 16n
c3 n3 0 4.4p
.tran 10n
.awe n3 4
.end
