* Two magnetically and capacitively coupled PCB traces: the aggressor
* switches, the victim is terminated; K elements couple the inductors.
vagg asrc 0 ramp(0 5 0 100p)
rdrva asrc a0 30
la1 a0 a1 4n
ca1 a1 0 0.8p
la2 a1 a2 4n
ca2 a2 0 0.8p
rterm_a a2 0 70
rdrvv v0 0 60
lv1 v0 v1 4n
cv1 v1 0 0.8p
lv2 v1 v2 4n
cv2 v2 0 0.8p
rterm_v v2 0 70
cc1 a1 v1 0.15p
cc2 a2 v2 0.15p
k1 la1 lv1 0.35
k2 la2 lv2 0.35
.tran 4n
.awe v2 8
.end
