* Paper Fig. 22 - Fig. 16 plus a floating coupling path C11/C12
vin in 0 ramp(0 5 0 1n)
r1 in n1 100
r2 n1 n2 200
r3 n2 n3 200
r4 n1 n4 1k
r5 n3 n5 300
r6 n3 n6 500
r7 n5 n7 200
r8 n5 n8 50
r9 n7 n9 400
r10 n9 n10 600
c1 n1 0 42f
c2 n2 0 85f
c3 n3 0 128f
c4 n4 0 17f
c5 n5 0 170f
c6 n6 0 340f
c7 n7 0 212f
c8 n8 0 0.85f
c9 n9 0 68f
c10 n10 0 25f
c11 n7 n12 85f
c12 n12 0 255f
.tran 8n
.awe n12 3
.end
