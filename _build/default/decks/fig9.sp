* Paper Fig. 9 - the Fig. 4 tree with a grounded resistor at the output
vin in 0 step(0 5)
r1 in n1 1k
c1 n1 0 0.1u
r2 n1 n2 1k
c2 n2 0 0.1u
r3 in n3 1k
c3 n3 0 0.1u
r4 n3 n4 1k
c4 n4 0 0.1u
r5 n4 0 4k
.tran 4m
.awe n4 1
.end
