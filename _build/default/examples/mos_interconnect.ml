(* MOS interconnect analysis (paper, Section 5.1-5.2): a stiff RC tree
   with widely varying time constants, driven by a finite-rise-time
   input, with and without nonequilibrium initial conditions.

   Run with:  dune exec examples/mos_interconnect.exe *)

open Circuit

let pp_poles label poles =
  Printf.printf "%s\n" label;
  List.iter
    (fun (p : Linalg.Cx.t) ->
      if p.Linalg.Cx.im = 0. then Printf.printf "  %.4e\n" p.Linalg.Cx.re
      else Printf.printf "  %.4e %+.4ej\n" p.Linalg.Cx.re p.Linalg.Cx.im)
    poles

let () =
  (* the Fig. 16 tree: 10 capacitors, time constants spread over four
     decades, 5 V input ramp with 1 ns rise time *)
  let f = Samples.fig16 () in
  let sys = Mna.build f.Samples.circuit in
  let out = f.Samples.output in

  Printf.printf "== stiff RC tree, 1 ns input ramp ==\n";
  let a1 = Awe.approximate sys ~node:out ~q:1 in
  let a2 = Awe.approximate sys ~node:out ~q:2 in
  pp_poles "order 1 poles:" (Awe.poles a1);
  pp_poles "order 2 poles:" (Awe.poles a2);
  Printf.printf "error estimates: q1 %.2f%%, q2 %.3f%%\n"
    (100. *. Awe.error_estimate sys ~node:out ~q:1)
    (100. *. Awe.error_estimate sys ~node:out ~q:2);

  let r = Transim.Transient.simulate sys ~t_stop:6e-9 ~steps:6000 in
  let exact = Transim.Transient.node_waveform r out in
  (match (Waveform.crossing_time exact 4.0, Awe.delay a2 ~threshold:4.0 ~t_max:6e-9) with
  | Some ts, Some ta ->
    Printf.printf "4.0 V threshold: simulator %.3f ns, AWE q2 %.3f ns\n"
      (ts *. 1e9) (ta *. 1e9)
  | _ -> ());
  print_string
    (Waveform.ascii_plot ~width:64 ~height:14
       ~label:"v(C7): AWE q2 (*) vs simulation (+)"
       [ Awe.waveform a2 ~t_stop:6e-9 ~samples:1200; exact ]);

  (* nonequilibrium initial conditions: C6 precharged to 5 V while the
     input is held low -> a charge-sharing glitch at the output that no
     single exponential can represent (paper, Figs. 20-21) *)
  Printf.printf "\n== charge sharing: C6 at 5 V, input low ==\n";
  let g = Samples.fig16 ~v_c6:5.0 ~wave:(Element.Dc 0.) () in
  let sys_g = Mna.build g.Samples.circuit in
  let r_g = Transim.Transient.simulate sys_g ~t_stop:5e-9 ~steps:5000 in
  let glitch = Transim.Transient.node_waveform r_g g.Samples.output in
  Printf.printf "response monotone: %b; peak %.3f V\n"
    (Waveform.is_monotone glitch)
    (Array.fold_left Float.max 0. glitch.Waveform.values);
  (match Awe.approximate sys_g ~node:g.Samples.output ~q:1 with
  | _ -> ()
  | exception Awe.Degenerate _ ->
    print_endline
      "order 1: no single-exponential fit exists (as the paper predicts)");
  let a2g = Awe.approximate sys_g ~node:g.Samples.output ~q:2 in
  let w2g = Awe.waveform a2g ~t_stop:5e-9 ~samples:1000 in
  Printf.printf "order 2 captures the glitch: max error %.3f V\n"
    (Waveform.max_abs_error glitch w2g);
  print_string
    (Waveform.ascii_plot ~width:64 ~height:14
       ~label:"charge-sharing glitch: AWE q2 (*) vs simulation (+)"
       [ w2g; glitch ])
