(* Clock-tree skew analysis: one driver fans out through an H-tree-like
   RC network to many leaf registers with mismatched loads.  The skew
   (spread of leaf arrival times) is the quantity a clock designer
   cares about; every leaf's delay comes from one batched moment
   computation (Awe.Batch), and the Elmore first-order estimates are
   compared against the higher-order AWE values.

   Run with:  dune exec examples/clock_skew.exe *)

open Circuit

(* a 3-level binary tree: root -> 2 -> 4 -> 8 leaves, with wire
   segments that get narrower (more resistive) toward the leaves and
   deliberately unbalanced leaf loads *)
let build () =
  let b = Netlist.create () in
  Netlist.add_v b "vclk" "src" "0"
    (Element.Ramp { v0 = 0.; v1 = 5.; t_delay = 0.; t_rise = 150e-12 });
  Netlist.add_r b "rdrv" "src" "root" 120.;
  Netlist.add_c b "croot" "root" "0" 30e-15;
  let seg_r = [| 80.; 160.; 320. |] in
  let seg_c = [| 25e-15; 15e-15; 8e-15 |] in
  let leaves = ref [] in
  let rec grow parent level index =
    if level = 3 then begin
      (* leaf register: load mismatch up to 2x *)
      let load = 20e-15 *. (1. +. (float_of_int (index mod 5) /. 4.)) in
      Netlist.add_c b (Printf.sprintf "cl%d" index) parent "0" load;
      leaves := (index, Netlist.node b parent) :: !leaves
    end
    else begin
      List.iter
        (fun side ->
          let child = Printf.sprintf "%s_%d" parent side in
          Netlist.add_r b
            (Printf.sprintf "rw%s" child)
            parent child seg_r.(level);
          Netlist.add_c b
            (Printf.sprintf "cw%s" child)
            child "0" seg_c.(level);
          grow child (level + 1) ((2 * index) + side))
        [ 0; 1 ]
    end
  in
  grow "root" 0 1;
  (Netlist.freeze b, List.rev !leaves)

let () =
  let circuit, leaves = build () in
  let sys = Mna.build circuit in
  Printf.printf "clock tree: %d nodes, %d elements, %d leaves\n"
    circuit.Netlist.node_count
    (Netlist.element_count circuit)
    (List.length leaves);

  let nodes = List.map snd leaves in
  let threshold = 2.5 in

  (* AWE: all leaves from one batched order-3 analysis *)
  let awe_delays =
    Awe.Batch.delays_all sys ~nodes ~q:3 ~threshold ~t_max:5e-9
    |> List.map (fun (_, d) -> Option.value d ~default:nan)
  in
  (* Elmore first-order estimates, also from one moment computation *)
  let elmore_all = Awe.Batch.elmore_all sys in
  let elmore_delays =
    List.map
      (fun node ->
        let td = List.assoc node elmore_all in
        (* single-exponential 50% crossing plus half the input ramp *)
        (td *. log 2.) +. (0.5 *. 150e-12))
      nodes
  in
  Printf.printf "%6s %14s %14s\n" "leaf" "AWE (ps)" "Elmore (ps)";
  List.iteri
    (fun i (idx, _) ->
      Printf.printf "%6d %14.1f %14.1f\n" idx
        (List.nth awe_delays i *. 1e12)
        (List.nth elmore_delays i *. 1e12))
    leaves;
  let spread ds =
    let mx = List.fold_left Float.max neg_infinity ds in
    let mn = List.fold_left Float.min infinity ds in
    mx -. mn
  in
  Printf.printf "skew: AWE %.1f ps, Elmore estimate %.1f ps\n"
    (spread awe_delays *. 1e12)
    (spread elmore_delays *. 1e12);

  (* validate the extreme leaves against the simulator *)
  let r = Transim.Transient.simulate sys ~t_stop:5e-9 ~steps:10000 in
  let sim_delay node =
    match
      Waveform.crossing_time (Transim.Transient.node_waveform r node) threshold
    with
    | Some t -> t
    | None -> nan
  in
  let sim_delays = List.map sim_delay nodes in
  let max_err =
    List.fold_left2
      (fun acc a s -> Float.max acc (Float.abs (a -. s)))
      0. awe_delays sim_delays
  in
  Printf.printf "max |AWE - simulator| over all leaves: %.2f ps\n"
    (max_err *. 1e12);
  Printf.printf "simulated skew: %.1f ps\n" (spread sim_delays *. 1e12)
