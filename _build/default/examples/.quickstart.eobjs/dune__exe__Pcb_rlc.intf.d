examples/pcb_rlc.mli:
