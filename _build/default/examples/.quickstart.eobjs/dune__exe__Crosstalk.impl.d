examples/crosstalk.ml: Array Awe Circuit Element Float List Mna Netlist Printf Transim Waveform
