examples/quickstart.mli:
