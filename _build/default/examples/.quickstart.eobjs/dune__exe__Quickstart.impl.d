examples/quickstart.ml: Awe Circuit Element Linalg Mna Netlist Printf Transim Waveform
