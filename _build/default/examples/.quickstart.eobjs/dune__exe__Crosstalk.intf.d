examples/crosstalk.mli:
