examples/clock_skew.mli:
