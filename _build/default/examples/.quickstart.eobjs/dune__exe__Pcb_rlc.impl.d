examples/pcb_rlc.ml: Array Awe Circuit Element Linalg List Mna Printf Samples Transim Waveform
