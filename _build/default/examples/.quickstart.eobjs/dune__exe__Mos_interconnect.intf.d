examples/mos_interconnect.mli:
