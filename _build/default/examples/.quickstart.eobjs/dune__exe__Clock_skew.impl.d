examples/clock_skew.ml: Array Awe Circuit Element Float List Mna Netlist Option Printf Transim Waveform
