examples/charge_sharing.ml: Awe Circuit List Mna Printf Samples Transim Waveform
