examples/charge_sharing.mli:
