examples/mos_interconnect.ml: Array Awe Circuit Element Float Linalg List Mna Printf Samples Transim Waveform
