examples/timing_analysis.ml: Format Sta
