(* Floating coupling capacitance (paper, Section 5.3): charge dumped
   through a floating capacitor onto a victim node changes the delay at
   the aggressor and builds a residual voltage on the victim.  The
   victim island has no DC path to ground, so its steady state comes
   from charge conservation — which AWE preserves exactly.

   Run with:  dune exec examples/charge_sharing.exe *)

open Circuit

let () =
  (* base tree vs the same tree with a C11/C12 coupling path *)
  let base = Samples.fig16 () in
  let coupled, victim = Samples.fig22 () in
  let sys_base = Mna.build base.Samples.circuit in
  let sys_cpl = Mna.build coupled.Samples.circuit in

  Printf.printf "floating groups detected: %d\n"
    (Mna.charge_group_count sys_cpl);

  (* aggressor delay shift at the 4.0 V logic threshold *)
  let delay sys node =
    let a = Awe.approximate sys ~node ~q:3 in
    match Awe.delay a ~threshold:4.0 ~t_max:10e-9 with
    | Some t -> t
    | None -> nan
  in
  let d_base = delay sys_base base.Samples.output in
  let d_cpl = delay sys_cpl coupled.Samples.output in
  Printf.printf "output delay to 4.0 V: %.3f ns -> %.3f ns with coupling\n"
    (d_base *. 1e9) (d_cpl *. 1e9);

  (* victim waveform: rises to the capacitive-divider value *)
  let av = Awe.approximate sys_cpl ~node:victim ~q:3 in
  Printf.printf "victim steady state (charge conservation): %.4f V\n"
    (Awe.steady_state av);
  Printf.printf "  (capacitive divider check: 5 * 85f/(85f+255f) = %.4f V)\n"
    (5. *. 85e-15 /. (85e-15 +. 255e-15));

  (* the area under the victim's voltage (total charge transferred) is
     exact because AWE matches the zeroth moment (paper, Fig. 24) *)
  let r = Transim.Transient.simulate sys_cpl ~t_stop:10e-9 ~steps:8000 in
  let wex = Transim.Transient.node_waveform r victim in
  let wav = Awe.waveform av ~t_stop:10e-9 ~samples:8001 in
  Printf.printf "victim waveform max error vs simulation: %.4f V\n"
    (Waveform.max_abs_error wex wav);
  print_string
    (Waveform.ascii_plot ~width:64 ~height:14
       ~label:"victim node: AWE q3 (*) vs simulation (+)" [ wav; wex ]);

  (* error terms mirror the paper's Fig. 23 story: the coupling path
     makes low orders work harder *)
  List.iter
    (fun q ->
      Printf.printf "aggressor error estimate at order %d: %.2f%%\n" q
        (100. *. Awe.error_estimate sys_cpl ~node:coupled.Samples.output ~q))
    [ 1; 2; 3 ]
