(* Crosstalk between coupled interconnect lines: the "coupling
   capacitance cannot always be neglected" scenario of the paper's
   introduction and Section 5.3, on a larger structure — two parallel
   five-segment RC lines coupled by floating capacitors along their
   length.  The aggressor switches; the victim is held low by its
   driver and picks up a noise pulse through the coupling.

   Uses Awe.Batch to evaluate every node of both lines from a single
   moment computation.

   Run with:  dune exec examples/crosstalk.exe *)

open Circuit

let segments = 5

let build () =
  let b = Netlist.create () in
  (* aggressor: driven by a fast 5 V ramp through its driver resistance *)
  Netlist.add_v b "vagg" "asrc" "0"
    (Element.Ramp { v0 = 0.; v1 = 5.; t_delay = 0.; t_rise = 100e-12 });
  Netlist.add_r b "rdrv_a" "asrc" "a0" 250.;
  (* victim: its driver holds it at 0 V (low-impedance path to ground) *)
  Netlist.add_r b "rdrv_v" "v0" "0" 400.;
  for k = 1 to segments do
    let prev s = Printf.sprintf "%s%d" s (k - 1) in
    let cur s = Printf.sprintf "%s%d" s k in
    Netlist.add_r b (Printf.sprintf "ra%d" k) (prev "a") (cur "a") 120.;
    Netlist.add_c b (Printf.sprintf "ca%d" k) (cur "a") "0" 40e-15;
    Netlist.add_r b (Printf.sprintf "rv%d" k) (prev "v") (cur "v") 120.;
    Netlist.add_c b (Printf.sprintf "cv%d" k) (cur "v") "0" 40e-15;
    (* coupling capacitor between the facing segments *)
    Netlist.add_c b (Printf.sprintf "cc%d" k) (cur "a") (cur "v") 25e-15
  done;
  let agg_end = Netlist.node b (Printf.sprintf "a%d" segments) in
  let vic_end = Netlist.node b (Printf.sprintf "v%d" segments) in
  let vic_nodes =
    List.init segments (fun k -> Netlist.node b (Printf.sprintf "v%d" (k + 1)))
  in
  (Netlist.freeze b, agg_end, vic_end, vic_nodes)

let () =
  let circuit, agg_end, vic_end, vic_nodes = build () in
  let sys = Mna.build circuit in
  Printf.printf "coupled lines: %d nodes, %d elements\n"
    circuit.Netlist.node_count
    (Netlist.element_count circuit);

  (* aggressor delay with the coupling load *)
  let a_agg = Awe.approximate sys ~node:agg_end ~q:3 in
  (match Awe.delay a_agg ~threshold:2.5 ~t_max:3e-9 with
  | Some d -> Printf.printf "aggressor 50%% delay: %.1f ps\n" (d *. 1e12)
  | None -> ());

  (* victim noise along the line, all nodes from one batched analysis *)
  let results = Awe.Batch.approximate_all sys ~nodes:vic_nodes ~q:4 in
  Printf.printf "victim noise peak along the line:\n";
  List.iteri
    (fun k r ->
      match r.Awe.Batch.outcome with
      | Awe.Batch.Approximation a ->
        let w = Awe.waveform a ~t_stop:3e-9 ~samples:3000 in
        let peak = Array.fold_left Float.max neg_infinity w.Waveform.values in
        Printf.printf "  v%d: %.1f mV\n" (k + 1) (peak *. 1e3)
      | Awe.Batch.Failed msg -> Printf.printf "  v%d: %s\n" (k + 1) msg)
    results;

  (* compare the far-end victim pulse against the simulator *)
  let r = Transim.Transient.simulate sys ~t_stop:3e-9 ~steps:6000 in
  let wex = Transim.Transient.node_waveform r vic_end in
  let a_vic =
    match
      List.find
        (fun r -> r.Awe.Batch.node = vic_end)
        results
    with
    | { Awe.Batch.outcome = Awe.Batch.Approximation a; _ } -> a
    | _ -> failwith "victim approximation failed"
  in
  let wap = Awe.waveform a_vic ~t_stop:3e-9 ~samples:6001 in
  Printf.printf "far-end victim: AWE vs simulation max error %.2f mV\n"
    (Waveform.max_abs_error wex wap *. 1e3);
  Printf.printf "victim pulse returns to zero: final %.3f mV\n"
    (Waveform.final_value wex *. 1e3);
  print_string
    (Waveform.ascii_plot ~width:64 ~height:14
       ~label:"far-end victim noise: AWE q4 (*) vs simulation (+)"
       [ wap; wex ])
