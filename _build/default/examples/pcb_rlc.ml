(* Printed-circuit-board interconnect (paper, Section 5.4): an
   underdamped RLC ladder whose response rings.  A single time constant
   is useless here; AWE escalates the order until the complex pole
   pairs are captured.

   Run with:  dune exec examples/pcb_rlc.exe *)

open Circuit

let transient_error exact approx =
  let vf = Waveform.final_value exact in
  Waveform.l2_error exact approx
  /. Waveform.l2_norm
       (Waveform.create exact.Waveform.times
          (Array.map (fun v -> v -. vf) exact.Waveform.values))

let () =
  let f = Samples.fig25 () in
  let sys = Mna.build f.Samples.circuit in
  let out = f.Samples.out in
  let r = Transim.Transient.simulate sys ~t_stop:10e-9 ~steps:10000 in
  let exact = Transim.Transient.node_waveform r out in
  Printf.printf "step response overshoot: %.2f V over the 5 V final value\n"
    (Waveform.overshoot exact);

  List.iter
    (fun q ->
      match Awe.approximate sys ~node:out ~q with
      | a ->
        let w = Awe.waveform a ~t_stop:10e-9 ~samples:10001 in
        Printf.printf "order %d: %d poles (%d complex), transient error %.1f%%\n"
          q (List.length (Awe.poles a))
          (List.length
             (List.filter (fun (p : Linalg.Cx.t) -> p.Linalg.Cx.im <> 0.)
                (Awe.poles a)))
          (100. *. transient_error exact w)
      | exception Awe.Unstable_fit _ ->
        Printf.printf "order %d: unstable fit, escalate\n" q
      | exception Awe.Degenerate _ ->
        Printf.printf "order %d: degenerate fit, escalate\n" q)
    [ 1; 2; 4; 6 ];

  let a4 = Awe.approximate sys ~node:out ~q:4 in
  print_string
    (Waveform.ascii_plot ~width:64 ~height:16
       ~label:"underdamped RLC: AWE q4 (*) vs simulation (+)"
       [ Awe.waveform a4 ~t_stop:10e-9 ~samples:1200; exact ]);

  (* a finite input rise time damps the high-frequency ringing so a
     lower order suffices (paper, Fig. 27) *)
  Printf.printf "\n== 1 ns input rise time ==\n";
  let ramp =
    Element.Ramp { v0 = 0.; v1 = 5.; t_delay = 0.; t_rise = 1e-9 }
  in
  let fr = Samples.fig25 ~wave:ramp () in
  let sys_r = Mna.build fr.Samples.circuit in
  let rr = Transim.Transient.simulate sys_r ~t_stop:10e-9 ~steps:10000 in
  let exact_r = Transim.Transient.node_waveform rr fr.Samples.out in
  let a2r = Awe.approximate sys_r ~node:fr.Samples.out ~q:2 in
  let w2r = Awe.waveform a2r ~t_stop:10e-9 ~samples:10001 in
  Printf.printf "order 2 with ramp input: transient error %.1f%%\n"
    (100. *. transient_error exact_r w2r);
  Printf.printf "overshoot shrinks from %.2f V (step) to %.2f V (ramp)\n"
    (Waveform.overshoot exact) (Waveform.overshoot exact_r)
