(* Quickstart: build an RC tree, approximate a node response with AWE,
   and check it against the built-in transient simulator.

   Run with:  dune exec examples/quickstart.exe *)

open Circuit

let () =
  (* the paper's Fig. 4 tree: a 5 V step driving four RC sections *)
  let b = Netlist.create () in
  Netlist.add_v b "vin" "in" "0" (Element.Step { v0 = 0.; v1 = 5. });
  Netlist.add_r b "r1" "in" "n1" 1e3;
  Netlist.add_c b "c1" "n1" "0" 0.1e-6;
  Netlist.add_r b "r2" "n1" "n2" 1e3;
  Netlist.add_c b "c2" "n2" "0" 0.1e-6;
  Netlist.add_r b "r3" "n1" "n3" 1e3;
  Netlist.add_c b "c3" "n3" "0" 0.1e-6;
  Netlist.add_r b "r4" "n3" "n4" 1e3;
  Netlist.add_c b "c4" "n4" "0" 0.1e-6;
  let out = Netlist.node b "n4" in
  let circuit = Netlist.freeze b in

  (* assemble the MNA system once; AWE and the simulator share it *)
  let sys = Mna.build circuit in

  (* first-order AWE: the Elmore delay as a single pole (paper, S IV) *)
  let a1 = Awe.approximate sys ~node:out ~q:1 in
  (match Awe.poles a1 with
  | [ p ] ->
    Printf.printf "first-order pole: %.1f 1/s  (Elmore delay %.2g s)\n"
      p.Linalg.Cx.re
      (Awe.elmore_equivalent sys ~node:out)
  | _ -> assert false);

  (* second order is usually visually indistinguishable from SPICE *)
  let a2 = Awe.approximate sys ~node:out ~q:2 in
  Printf.printf "order-2 error estimate: %.2f%%\n"
    (100. *. Awe.error_estimate sys ~node:out ~q:2);

  (* or let AWE pick the order *)
  let auto, err = Awe.auto ~tol:0.01 sys ~node:out in
  Printf.printf "auto selected order %d (error estimate %.2f%%)\n"
    auto.Awe.q (100. *. err);

  (* delay to a 4.0 V logic threshold *)
  (match Awe.delay a2 ~threshold:4.0 ~t_max:5e-3 with
  | Some d -> Printf.printf "delay to 4.0 V: %.4g s\n" d
  | None -> print_endline "threshold not crossed");

  (* validate against the transient simulator *)
  let r = Transim.Transient.simulate sys ~t_stop:5e-3 ~steps:4000 in
  let exact = Transim.Transient.node_waveform r out in
  let approx = Awe.waveform a2 ~t_stop:5e-3 ~samples:4001 in
  Printf.printf "relative L2 error vs simulation: %.3f%%\n"
    (100. *. Waveform.relative_l2_error exact approx);
  print_string
    (Waveform.ascii_plot ~width:64 ~height:16
       ~label:"v(n4): AWE order 2 (*) vs simulation (+)"
       [ approx; exact ])
