bench/util.ml: Analyze Array Bechamel Benchmark Circuit Format Hashtbl Linalg List Measure Mna Staged Stdlib Test Time Toolkit Transim Waveform
