bench/main.mli:
