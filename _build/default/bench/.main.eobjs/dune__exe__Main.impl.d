bench/main.ml: Array Awe Circuit Dc Element Float Format Linalg List Mna Netlist Option Samples Sparse Sta Sys Util Waveform
