(** Linear transient circuit simulation — the in-repo stand-in for
    SPICE.

    The paper validates every AWE approximation against a SPICE
    transient run of the same linear netlist; this module provides that
    exact reference.  It integrates the MNA descriptor system
    [G x + C x' = B u(t)] with the trapezoidal rule (SPICE's default)
    or backward Euler, on a fixed step.  The companion linear system
    [(C + a G)] is factored once and reused for every step.  The first
    step after [t = 0] always uses backward Euler so that the jump in
    the algebraic variables at an input step does not inject the
    trapezoidal rule's spurious oscillation. *)

type integration = Backward_euler | Trapezoidal

type result = {
  sys : Circuit.Mna.t;
  times : float array;
  states : Linalg.Vec.t array;  (** one MNA vector per time point *)
}

val simulate :
  ?integration:integration ->
  ?initial:Circuit.Dc.op ->
  Circuit.Mna.t ->
  t_stop:float ->
  steps:int ->
  result
(** [simulate sys ~t_stop ~steps] integrates from [0] to [t_stop] with
    [steps] uniform steps (so [steps + 1] stored points), starting from
    the given operating point (default [Circuit.Dc.initial sys]).
    Default integration is [Trapezoidal].  Raises [Invalid_argument]
    for non-positive [t_stop] or [steps < 1]. *)

val node_waveform : result -> Circuit.Element.node -> Waveform.t
(** Voltage waveform of a node. *)

val branch_current_waveform : result -> int -> Waveform.t
(** Current waveform of an element with a branch unknown (V source,
    inductor, VCVS, CCVS); raises [Invalid_argument] otherwise. *)

val voltage_across : result -> int -> Waveform.t
(** Voltage across any two-terminal element, by element index. *)

val simulate_adaptive :
  ?initial:Circuit.Dc.op ->
  ?tol:float ->
  ?dt_min:float ->
  ?dt_max:float ->
  Circuit.Mna.t ->
  t_stop:float ->
  result
(** Variable-step trapezoidal integration with local-truncation-error
    control by step doubling: each accepted step satisfies
    [||x_full - x_two_halves||_inf <= tol * scale].  [tol] defaults to
    [1e-4]; [dt_min]/[dt_max] default to [t_stop/1e7] and [t_stop/50].
    Produces a nonuniform time grid concentrated where the solution
    moves fast — the practical configuration for stiff interconnect
    circuits whose time constants span several decades (paper,
    Section 5.1). *)
