lib/transim/transient.mli: Circuit Linalg Waveform
