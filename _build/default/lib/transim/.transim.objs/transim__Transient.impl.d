lib/transim/transient.ml: Array Circuit Float Hashtbl Linalg List Lu Matrix Option Vec Waveform
